package demaq

import (
	"strings"
	"testing"
	"time"
)

const quickApp = `
create queue in  kind basic mode persistent;
create queue out kind basic mode persistent;
create rule respond for in
  if (//ping) then do enqueue <pong>{//ping/text()}</pong> into out;
`

func TestPublicAPIRoundTrip(t *testing.T) {
	srv, err := Open(t.TempDir(), quickApp, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Start()
	if _, err := srv.Enqueue("in", `<ping>hi</ping>`, nil); err != nil {
		t.Fatal(err)
	}
	if !srv.Drain(5 * time.Second) {
		t.Fatal("drain")
	}
	msgs, err := srv.Queue("out")
	if err != nil || len(msgs) != 1 {
		t.Fatalf("out: %v %v", msgs, err)
	}
	if !strings.Contains(msgs[0].XML, "<pong>hi</pong>") {
		t.Fatalf("xml: %s", msgs[0].XML)
	}
	st := srv.Stats()
	if st.Processed == 0 || st.Enqueued < 2 {
		t.Fatalf("stats: %s", FormatStats(st))
	}
	if len(srv.Queues()) != 2 {
		t.Fatal("queues")
	}
}

func TestPublicAPIRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := Open(dir, quickApp, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	srv.Enqueue("in", `<ping>persisted</ping>`, nil)
	srv.Drain(5 * time.Second)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := Open(dir, quickApp, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	msgs, _ := srv2.Queue("out")
	if len(msgs) != 1 || !strings.Contains(msgs[0].XML, "persisted") {
		t.Fatalf("after restart: %v", msgs)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(quickApp); err != nil {
		t.Fatal(err)
	}
	if err := Validate(`create queue q kind wrong mode persistent;`); err == nil {
		t.Fatal("bad app accepted")
	}
	if err := Validate(`
		create queue q kind basic mode persistent;
		create rule r for q do enqueue <x/> into missing;`); err == nil {
		t.Fatal("unknown enqueue target accepted")
	}
}

func TestMasterDataAndGC(t *testing.T) {
	srv, err := Open(t.TempDir(), `
		create queue in kind basic mode persistent;
		create queue out kind basic mode persistent;
		create collection prices;
		create rule lookup for in
		  if (//q) then
		    do enqueue <price>{collection("prices")//p[@sku = "A"]/text()}</price> into out;
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.AddMasterData("prices", `<list><p sku="A">42</p></list>`); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	srv.Enqueue("in", `<q/>`, nil)
	srv.Drain(5 * time.Second)
	msgs, _ := srv.Queue("out")
	if len(msgs) != 1 || !strings.Contains(msgs[0].XML, ">42<") {
		t.Fatalf("master data lookup: %v", msgs)
	}
	// The input is processed and sliceless: collectable.
	if n, err := srv.CollectGarbage(); err != nil || n == 0 {
		t.Fatalf("gc: %d %v", n, err)
	}
}

func TestReloadThroughPublicAPI(t *testing.T) {
	srv, err := Open(t.TempDir(), `
		create queue in kind basic mode persistent;
		create queue out kind basic mode persistent;
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Start()
	srv.Enqueue("in", `<m/>`, nil)
	srv.Drain(5 * time.Second)
	if err := srv.Reload(`
		create queue in kind basic mode persistent;
		create queue out kind basic mode persistent;
		create rule fwd for in if (//m) then do enqueue <seen/> into out;
	`); err != nil {
		t.Fatal(err)
	}
	srv.Enqueue("in", `<m/>`, nil)
	srv.Drain(5 * time.Second)
	msgs, _ := srv.Queue("out")
	if len(msgs) != 1 {
		t.Fatalf("reloaded rule output: %d", len(msgs))
	}
}

func TestExplicitProps(t *testing.T) {
	srv, err := Open(t.TempDir(), `
		create queue in kind basic mode persistent;
		create property level as xs:integer queue in value 0;
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	id, err := srv.Enqueue("in", `<m/>`, map[string]string{"level": "7"})
	if err != nil {
		t.Fatal(err)
	}
	msgs, _ := srv.Queue("in")
	if len(msgs) != 1 || msgs[0].ID != id || msgs[0].Props["level"] != "7" {
		t.Fatalf("props: %+v", msgs)
	}
}

func TestFormatStatsDegraded(t *testing.T) {
	st := Stats{Processed: 3}
	if s := FormatStats(st); strings.Contains(s, "DEGRADED") {
		t.Fatalf("healthy stats flagged degraded: %s", s)
	}
	st.Degraded = true
	st.StorageError = "store: disk failure"
	s := FormatStats(st)
	if !strings.Contains(s, "DEGRADED") || !strings.Contains(s, "disk failure") {
		t.Fatalf("degraded stats not surfaced: %s", s)
	}
}
