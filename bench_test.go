package demaq

// Benchmark harness: one benchmark per experiment in DESIGN.md §6,
// regenerating the measurements recorded in EXPERIMENTS.md. The paper
// (CIDR 2007) publishes no quantitative tables; these benchmarks quantify
// its performance *claims* (Sections 2-4). cmd/demaq-bench runs the same
// experiments as parameter sweeps and prints result tables.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"demaq/internal/baseline"
	"demaq/internal/engine"
	"demaq/internal/gateway"
	"demaq/internal/msgstore"
	"demaq/internal/property"
	"demaq/internal/qdl"
	"demaq/internal/rule"
	"demaq/internal/slicing"
	"demaq/internal/store"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xquery"
)

// --- E1: materialized slices vs merged slice queries (Sec. 4.3) ---

func setupSliceBench(b *testing.B, nMsgs, nSlices int, materialized, noIndex bool) *slicing.Manager {
	b.Helper()
	opts := msgstore.DefaultOptions()
	opts.Store.SyncCommits = false
	opts.NoPropertyIndex = noIndex
	ms, err := msgstore.Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ms.Close() })
	props := property.NewManager()
	props.Define(&property.Def{
		Name: "k", Type: xdm.TypeString, Fixed: true,
		PerQueue: map[string]*xquery.Compiled{
			"q": xquery.MustCompile(`//k`, xquery.CompileOptions{}),
		},
	})
	sm := slicing.NewManager(ms, props, materialized)
	sm.Define("byK", "k")
	ms.CreateQueue("q", msgstore.Persistent, 0)
	tx := ms.Begin()
	ids := make([]msgstore.MsgID, 0, nMsgs)
	pvs := make([]map[string]xdm.Value, 0, nMsgs)
	for i := 0; i < nMsgs; i++ {
		key := fmt.Sprintf("s%d", i%nSlices)
		doc := xmldom.MustParse(fmt.Sprintf(`<m><k>%s</k><data>payload %d</data></m>`, key, i))
		pv := map[string]xdm.Value{"k": xdm.NewString(key)}
		id, err := tx.Enqueue("q", doc, pv, time.Now())
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
		pvs = append(pvs, pv)
	}
	if _, err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	for i, id := range ids {
		sm.OnEnqueue(id, "q", pvs[i])
	}
	return sm
}

func BenchmarkE1SliceAccess(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		for _, mat := range []bool{true, false} {
			name := fmt.Sprintf("msgs=%d/materialized=%v", n, mat)
			b.Run(name, func(b *testing.B) {
				// noIndex keeps the merged baseline a pure queue scan; the
				// merged-with-property-index contrast is E17's.
				sm := setupSliceBench(b, n, n/10, mat, true)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					members := sm.SliceMembers("byK", fmt.Sprintf("s%d", i%(n/10)))
					if len(members) != 10 {
						b.Fatalf("slice size %d", len(members))
					}
				}
			})
		}
	}
}

// --- E2: slice- vs queue-granularity locking (Sec. 4.3) ---

func BenchmarkE2LockGranularity(b *testing.B) {
	app := `
		create queue in kind basic mode persistent;
		create queue out kind basic mode persistent;
		create property k as xs:string fixed queue in value //k;
		create slicing byK on k;
		create rule check for byK
		  if (qs:slice()[/m] and not(qs:slice()[/never])) then ();
		create rule fwd for in
		  if (//m) then do enqueue <done/> into out;
	`
	for _, coarse := range []bool{false, true} {
		name := "slice"
		if coarse {
			name = "queue"
		}
		b.Run("locking="+name, func(b *testing.B) {
			srv, err := Open(b.TempDir(), app, &Options{
				Workers: 8, CoarseLocking: coarse, NoSync: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			srv.Start()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.Enqueue("in", fmt.Sprintf(`<m><k>k%d</k></m>`, i%64), nil)
			}
			if !srv.Drain(120 * time.Second) {
				b.Fatal("drain")
			}
		})
	}
}

// --- E3: append-only logging and unlogged retention deletes (Sec. 4.1) ---

func BenchmarkE3LoggingRecovery(b *testing.B) {
	payload := []byte(fmt.Sprintf("<m>%s</m>", stringsRepeat("x", 900)))
	for _, unlogged := range []bool{true, false} {
		name := "deletes=unlogged"
		if !unlogged {
			name = "deletes=logged"
		}
		b.Run(name, func(b *testing.B) {
			opts := store.DefaultOptions()
			opts.SyncCommits = false
			opts.UnloggedDeletes = unlogged
			s, err := store.Open(b.TempDir(), opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			h, _ := s.CreateHeap("q")
			rids := make([]store.RID, 0, b.N)
			tx := s.Begin()
			for i := 0; i < b.N; i++ {
				rid, err := tx.Insert(h, payload)
				if err != nil {
					b.Fatal(err)
				}
				rids = append(rids, rid)
			}
			tx.Commit()
			before := s.LogBytes()
			b.ResetTimer()
			if err := s.BatchDelete(h, rids); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(s.LogBytes()-before)/float64(b.N), "logB/op")
		})
	}
}

func BenchmarkE3Recovery(b *testing.B) {
	// Time to recover a store with N committed messages after a crash.
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("msgs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				opts := store.DefaultOptions()
				opts.SyncCommits = false
				s, _ := store.Open(dir, opts)
				h, _ := s.CreateHeap("q")
				tx := s.Begin()
				for j := 0; j < n; j++ {
					tx.Insert(h, []byte("<m>recovery payload</m>"))
				}
				tx.Commit()
				s.CrashForTest()
				b.StartTimer()
				s2, err := store.Open(dir, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				s2.Close()
			}
		})
	}
}

// --- E4: rule compiler condition dispatch (Sec. 4.4.1) ---

func BenchmarkE4RuleCompiler(b *testing.B) {
	mkApp := func(nRules int) string {
		app := "create queue in kind basic mode persistent;\ncreate queue out kind basic mode persistent;\n"
		for i := 0; i < nRules; i++ {
			app += fmt.Sprintf(
				"create rule r%d for in if (//type%d) then do enqueue <hit n=\"%d\"/> into out;\n", i, i, i)
		}
		return app
	}
	for _, nRules := range []int{4, 16, 64} {
		for _, optimized := range []bool{true, false} {
			name := fmt.Sprintf("rules=%d/dispatch=%v", nRules, optimized)
			b.Run(name, func(b *testing.B) {
				srv, err := Open(b.TempDir(), mkApp(nRules), &Options{
					Workers: 2, NoSync: true, NoRuleOptimizations: !optimized,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				srv.Start()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					srv.Enqueue("in", fmt.Sprintf(`<type%d>x</type%d>`, i%nRules, i%nRules), nil)
				}
				if !srv.Drain(120 * time.Second) {
					b.Fatal("drain")
				}
			})
		}
	}
}

// --- E5: priority scheduling (Sec. 3.1/4.4.2) ---

func BenchmarkE5Scheduler(b *testing.B) {
	app := `
		create queue low kind basic mode persistent priority 1;
		create queue high kind basic mode persistent priority 10;
		create queue sink kind basic mode persistent;
		create rule rl for low if (//m) then do enqueue <l/> into sink;
		create rule rh for high if (//m) then do enqueue <h/> into sink;
	`
	b.Run("high-priority-latency-under-flood", func(b *testing.B) {
		srv, err := Open(b.TempDir(), app, &Options{Workers: 2, NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		// Flood the low-priority queue before starting.
		for i := 0; i < 2000; i++ {
			srv.Enqueue("low", `<m/>`, nil)
		}
		srv.Start()
		var totalLatency time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			srv.Enqueue("high", `<m/>`, nil)
			// Wait until this high message is processed.
			for {
				st := srv.Stats()
				msgs, _ := srv.eng.MessageStore().Messages("high")
				done := true
				for _, m := range msgs {
					if !m.Processed {
						done = false
					}
				}
				_ = st
				if done {
					break
				}
				time.Sleep(50 * time.Microsecond)
			}
			totalLatency += time.Since(start)
		}
		b.StopTimer()
		b.ReportMetric(float64(totalLatency.Microseconds())/float64(b.N), "µs/high-msg")
		srv.Drain(120 * time.Second)
	})
}

// --- E6: state-as-messages vs dehydration store (Sec. 2.1) ---

func BenchmarkE6StateModel(b *testing.B) {
	const eventsPerInstance = 20
	b.Run("demaq-messages", func(b *testing.B) {
		srv, err := Open(b.TempDir(), `
			create queue events kind basic mode persistent;
			create property inst as xs:string fixed queue events value //inst;
			create slicing byInst on inst;
		`, &Options{Workers: 4, NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		srv.Start()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inst := (i / eventsPerInstance) % 1000
			srv.Enqueue("events", fmt.Sprintf(`<event><inst>i%d</inst><data>payload</data></event>`, inst), nil)
		}
		srv.Drain(120 * time.Second)
	})
	b.Run("dehydration-store", func(b *testing.B) {
		opts := store.DefaultOptions()
		opts.SyncCommits = false
		eng, err := baseline.Open(b.TempDir(), opts)
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		ev := xmldom.MustParse(`<event><data>payload</data></event>`)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inst := fmt.Sprintf("i%d", (i/eventsPerInstance)%1000)
			if err := eng.HandleEvent(inst, ev); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E7: end-to-end pipeline throughput (Sec. 1/3) ---

func BenchmarkE7Pipeline(b *testing.B) {
	app := `
		create queue inbox kind basic mode persistent;
		create queue stage1 kind basic mode persistent;
		create queue stage2 kind basic mode persistent;
		create queue outbox kind basic mode persistent;
		create rule s0 for inbox if (//order) then
		  do enqueue <checked>{//order/id}</checked> into stage1;
		create rule s1 for stage1 if (//checked) then
		  do enqueue <priced>{//checked/id}</priced> into stage2;
		create rule s2 for stage2 if (//priced) then
		  do enqueue <done>{//priced/id}</done> into outbox;
	`
	for _, size := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("payload=%dB", size), func(b *testing.B) {
			srv, err := Open(b.TempDir(), app, &Options{Workers: 4, NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			srv.Start()
			pad := stringsRepeat("p", size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.Enqueue("inbox", fmt.Sprintf(`<order><id>%d</id><pad>%s</pad></order>`, i, pad), nil)
			}
			if !srv.Drain(300 * time.Second) {
				b.Fatal("drain")
			}
		})
	}
}

// --- E8: retention garbage collection off the critical path (Sec. 2.3.3) ---

func BenchmarkE8RetentionGC(b *testing.B) {
	srv, err := Open(b.TempDir(), `
		create queue in kind basic mode persistent;
		create property k as xs:string fixed queue in value //k;
		create slicing byK on k;
		create rule done for byK
		  if (qs:slice()[/finish]) then do reset;
	`, &Options{Workers: 4, NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.Start()
	b.ResetTimer()
	collected := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 100; j++ {
			srv.Enqueue("in", fmt.Sprintf(`<m><k>g%d-%d</k></m>`, i, j%10), nil)
		}
		for j := 0; j < 10; j++ {
			srv.Enqueue("in", fmt.Sprintf(`<finish><k>g%d-%d</k></finish>`, i, j), nil)
		}
		srv.Drain(60 * time.Second)
		b.StartTimer()
		n, err := srv.CollectGarbage()
		if err != nil {
			b.Fatal(err)
		}
		collected += n
	}
	b.StopTimer()
	b.ReportMetric(float64(collected)/float64(b.N), "collected/pass")
}

// --- E9: reliable messaging under loss (Sec. 4.2) ---

func BenchmarkE9ReliableMessaging(b *testing.B) {
	for _, loss := range []float64{0, 0.1, 0.3} {
		b.Run(fmt.Sprintf("loss=%.0f%%", loss*100), func(b *testing.B) {
			net := gateway.NewNetwork(99)
			defer net.Close()
			net.SetLossRate(loss)
			recv, _ := gateway.NewReliable(net, "sim://b/in", 2*time.Millisecond, 200)
			defer recv.Close()
			recv.Subscribe(func([]byte, map[string]string) error { return nil })
			send, _ := gateway.NewReliable(net, "sim://a/out", 2*time.Millisecond, 200)
			defer send.Close()
			send.Subscribe(func([]byte, map[string]string) error { return nil })
			payload := []byte("<m>reliable payload</m>")
			var wg sync.WaitGroup
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				wg.Add(1)
				send.SendAsync("sim://b/in", payload, nil, func(err error) {
					if err != nil {
						b.Error(err)
					}
					wg.Done()
				})
			}
			wg.Wait()
			b.StopTimer()
			_, retransmits, _ := send.Stats()
			b.ReportMetric(float64(retransmits)/float64(b.N), "retransmits/op")
		})
	}
}

// --- A2: buffer pool size ablation ---

func BenchmarkA2BufferPool(b *testing.B) {
	for _, pages := range []int{32, 4096} {
		b.Run(fmt.Sprintf("pool=%dpages", pages), func(b *testing.B) {
			opts := store.DefaultOptions()
			opts.SyncCommits = false
			opts.BufferPages = pages
			s, err := store.Open(b.TempDir(), opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			h, _ := s.CreateHeap("q")
			payload := []byte(stringsRepeat("d", 2000))
			tx := s.Begin()
			for i := 0; i < 2000; i++ { // ~500 pages, far beyond the small pool
				tx.Insert(h, payload)
			}
			tx.Commit()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				s.Scan(h, func(store.RID, []byte) bool { n++; return true })
				if n != 2000 {
					b.Fatal("scan count")
				}
			}
		})
	}
}

// --- A3: commit durability policy ablation ---

func BenchmarkA3CommitPolicy(b *testing.B) {
	for _, sync := range []bool{true, false} {
		name := "fsync=on"
		if !sync {
			name = "fsync=off"
		}
		b.Run(name, func(b *testing.B) {
			opts := store.DefaultOptions()
			opts.SyncCommits = sync
			s, err := store.Open(b.TempDir(), opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			h, _ := s.CreateHeap("q")
			payload := []byte("<m>committed message</m>")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := s.Begin()
				if _, err := tx.Insert(h, payload); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E10: concurrent commit throughput and fsync coalescing ---
//
// Measures the three-phase commit pipeline: N workers commit independent
// one-message transactions with SyncCommits enabled. Because the message
// store holds no lock across the page-store commit, workers overlap inside
// the WAL and group commit coalesces their fsyncs; the fsyncs/commit
// metric drops below 1 as workers increase, and commit throughput scales
// instead of serializing behind a single store mutex.

func BenchmarkE10ConcurrentCommit(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := msgstore.DefaultOptions()
			opts.Store.SyncCommits = true
			ms, err := msgstore.Open(b.TempDir(), opts)
			if err != nil {
				b.Fatal(err)
			}
			defer ms.Close()
			if _, err := ms.CreateQueue("q", msgstore.Persistent, 0); err != nil {
				b.Fatal(err)
			}
			doc := xmldom.MustParse(`<order><id>42</id><total>99.50</total></order>`)
			before := ms.PageStore().Stats()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				share := b.N / workers
				if w < b.N%workers {
					share++
				}
				wg.Add(1)
				go func(share int) {
					defer wg.Done()
					for i := 0; i < share; i++ {
						tx := ms.Begin()
						if _, err := tx.Enqueue("q", doc, nil, time.Now()); err != nil {
							b.Error(err)
							return
						}
						if _, err := tx.Commit(); err != nil {
							b.Error(err)
							return
						}
					}
				}(share)
			}
			wg.Wait()
			b.StopTimer()
			after := ms.PageStore().Stats()
			commits := after.Commits - before.Commits
			fsyncs := after.WALFsyncs - before.WALFsyncs
			if commits > 0 {
				b.ReportMetric(float64(fsyncs)/float64(commits), "fsyncs/commit")
			}
		})
	}
}

// --- E11: compiled rule programs vs the AST interpreter (Sec. 4.4.1) ---
//
// Measures pure rule-evaluation throughput on the E7 pipeline workload:
// the three stage rules are compiled once and evaluated against their
// triggering messages, comparing the flat instruction backend (default)
// with the reference AST interpreter (the NoRuleOptimizations path). The
// store and scheduler are deliberately out of the loop so the metric
// isolates what the compilation tentpole changes.

type benchRuntime struct{ doc *xmldom.Node }

func (r benchRuntime) Message() (*xmldom.Node, error)          { return r.doc, nil }
func (benchRuntime) Queue(string) ([]*xmldom.Node, error)      { return nil, nil }
func (benchRuntime) Property(string) (xdm.Value, error)        { return xdm.Value{}, fmt.Errorf("no props") }
func (benchRuntime) Slice() ([]*xmldom.Node, error)            { return nil, nil }
func (benchRuntime) SliceKey() (xdm.Value, error)              { return xdm.Value{}, nil }
func (benchRuntime) Collection(string) ([]*xmldom.Node, error) { return nil, nil }
func (benchRuntime) Now() time.Time                            { return time.Unix(0, 0).UTC() }

func BenchmarkE11CompiledRules(b *testing.B) {
	const pipelineApp = `
		create queue inbox kind basic mode persistent;
		create queue stage1 kind basic mode persistent;
		create queue stage2 kind basic mode persistent;
		create queue outbox kind basic mode persistent;
		create rule s0 for inbox if (//order) then
		  do enqueue <checked>{//order/id}</checked> into stage1;
		create rule s1 for stage1 if (//checked) then
		  do enqueue <priced>{//checked/id}</priced> into stage2;
		create rule s2 for stage2 if (//priced) then
		  do enqueue <done>{//priced/id}</done> into outbox;
	`
	app, err := qdl.Parse(pipelineApp)
	if err != nil {
		b.Fatal(err)
	}
	pad := stringsRepeat("p", 4096)
	msgs := map[string]*xmldom.Node{
		"inbox":  xmldom.MustParse(fmt.Sprintf(`<order><id>7</id><pad>%s</pad></order>`, pad)),
		"stage1": xmldom.MustParse(fmt.Sprintf(`<checked><id>7</id><pad>%s</pad></checked>`, pad)),
		"stage2": xmldom.MustParse(fmt.Sprintf(`<priced><id>7</id><pad>%s</pad></priced>`, pad)),
	}
	queues := []string{"inbox", "stage1", "stage2"}

	for _, compiled := range []bool{false, true} {
		name := "backend=interpreted"
		opts := rule.Options{Dispatch: true, InlineFixedProps: true}
		if compiled {
			name = "backend=compiled"
			opts = rule.DefaultOptions()
		}
		b.Run(name, func(b *testing.B) {
			prog, err := rule.Compile(app, opts)
			if err != nil {
				b.Fatal(err)
			}
			evaluated := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queues {
					doc := msgs[q]
					plan := prog.QueuePlans[q]
					for _, r := range plan.RulesFor(rule.ElementNames(doc)) {
						_, ups, err := xquery.Eval(r.Body, benchRuntime{doc: doc}, xquery.EvalOptions{ContextDoc: doc})
						if err != nil {
							b.Fatal(err)
						}
						if ups.Len() != 1 {
							b.Fatalf("rule %s produced %d updates", r.Name, ups.Len())
						}
						evaluated++
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(evaluated)/b.Elapsed().Seconds(), "rules/sec")
		})
	}
}

// --- E12: native binary document storage vs text-parse rehydration ---
//
// Measures cold-cache Store.Doc: the cost of turning a stored payload back
// into a usable tree. The binary tree encoding (default) materializes with
// one arena allocation and sliced strings; the TextPayloads baseline pays
// a full character-level XML parse with per-node allocations. Payload
// sizes bracket typical messages (4KB) and large documents (64KB).

// e12Payload builds a structured order document of roughly size bytes.
func e12Payload(size int) string {
	const item = `<item sku="A-1001" qty="3"><name>article</name><price cur="EUR">19.90</price><note>mixed <b>content</b> tail</note></item>`
	n := size / len(item)
	if n < 1 {
		n = 1
	}
	out := make([]byte, 0, size+128)
	out = append(out, `<order id="42" state="open">`...)
	for i := 0; i < n; i++ {
		out = append(out, item...)
	}
	out = append(out, `</order>`...)
	return string(out)
}

func BenchmarkE12Rehydration(b *testing.B) {
	for _, size := range []int{4 << 10, 64 << 10} {
		for _, text := range []bool{false, true} {
			format := "binary"
			if text {
				format = "text"
			}
			b.Run(fmt.Sprintf("size=%dKB/format=%s", size>>10, format), func(b *testing.B) {
				opts := msgstore.DefaultOptions()
				opts.TextPayloads = text
				opts.CacheDocs = 2 // force every timed Doc onto the cold path
				ms, err := msgstore.Open(b.TempDir(), opts)
				if err != nil {
					b.Fatal(err)
				}
				defer ms.Close()
				if _, err := ms.CreateQueue("q", msgstore.Persistent, 0); err != nil {
					b.Fatal(err)
				}
				doc := xmldom.MustParse(e12Payload(size))
				const nMsgs = 64
				ids := make([]msgstore.MsgID, nMsgs)
				for i := range ids {
					tx := ms.Begin()
					id, err := tx.Enqueue("q", doc, nil, time.Now())
					if err != nil {
						b.Fatal(err)
					}
					if _, err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
					ids[i] = id
				}
				ms.FlushDocCache()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ms.Doc(ids[i%nMsgs]); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := ms.Stats()
				payload := st.PayloadEncodedBytes
				if text {
					payload = st.PayloadTextBytes
				}
				b.ReportMetric(float64(payload)/nMsgs/1024, "KB/doc")
			})
		}
	}
}

// --- E13: set-oriented batch execution on the pipeline workload ---
//
// Measures end-to-end processing throughput of the E7 pipeline with
// durable commits, sweeping Config.BatchSize: batch=1 is the
// tuple-at-a-time baseline (one transaction ID, one lock round, one WAL
// commit per message), batch=32 claims, evaluates and commits whole
// groups. The workload is preloaded (untimed) so the timed region is pure
// set-oriented processing: Start + Drain over b.N input messages, each
// traversing three rule stages (4·b.N processed messages). fsyncs/msg and
// allocs are reported to show where the batch amortization lands.

func BenchmarkE13BatchPipeline(b *testing.B) {
	app := `
		create queue inbox kind basic mode persistent;
		create queue stage1 kind basic mode persistent;
		create queue stage2 kind basic mode persistent;
		create queue outbox kind basic mode persistent;
		create rule s0 for inbox if (//order) then
		  do enqueue <checked>{//order/id}</checked> into stage1;
		create rule s1 for stage1 if (//checked) then
		  do enqueue <priced>{//checked/id}</priced> into stage2;
		create rule s2 for stage2 if (//priced) then
		  do enqueue <done>{//priced/id}</done> into outbox;
	`
	for _, batch := range []int{1, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			srv, err := Open(b.TempDir(), app, &Options{Workers: 8, BatchSize: batch})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			// Preload b.N messages (untimed); 8 concurrent enqueuers let
			// the ingest commits coalesce in the WAL.
			pad := stringsRepeat("p", 1024)
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				share := b.N / 8
				if w < b.N%8 {
					share++
				}
				wg.Add(1)
				go func(w, share int) {
					defer wg.Done()
					for i := 0; i < share; i++ {
						if _, err := srv.Enqueue("inbox",
							fmt.Sprintf(`<order><id>%d-%d</id><pad>%s</pad></order>`, w, i, pad), nil); err != nil {
							b.Error(err)
							return
						}
					}
				}(w, share)
			}
			wg.Wait()
			before := srv.PageStats()
			st0 := srv.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			srv.Start()
			if !srv.Drain(600 * time.Second) {
				b.Fatal("drain")
			}
			b.StopTimer()
			after := srv.PageStats()
			st1 := srv.Stats()
			processed := st1.Processed - st0.Processed
			if processed > 0 {
				b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "msgs/sec")
				b.ReportMetric(float64(after.WALFsyncs-before.WALFsyncs)/float64(processed), "fsyncs/msg")
			}
			b.ReportMetric(st1.AvgBatchSize, "avgbatch")
		})
	}
}

func stringsRepeat(s string, n int) string {
	out := make([]byte, 0, len(s)*n)
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return string(out)
}

// --- E14: fine-grained page-store concurrency (per-page latches) ---
//
// Measures raw page-store parallelism on the doc-cache-miss rehydration
// path: N goroutines issue cold record reads against a buffer pool far
// smaller than the working set, so every read runs the full miss path
// (pool probe, disk I/O, eviction write-back). The latched engine is
// compared against the pre-E14 single store mutex, reachable via
// store.Options.GlobalLock. The mixed variant adds committing inserters
// next to the readers.
//
// Miss I/O is modeled with store.Options.BenchIODelay (100µs, an
// NVMe-class random read): benchmark machines serve the working set from
// the OS page cache, where preads never block, which would measure memcpy
// speed instead of the thing E14 changed — whether a goroutine waiting on
// the device blocks every other store operation (global mutex) or only
// readers of that one page (per-page latches).

const e14IODelay = 100 * time.Microsecond

func setupE14Store(b *testing.B, globalLock bool) (*store.Store, []store.RID) {
	b.Helper()
	opts := store.DefaultOptions()
	opts.BufferPages = 64 // working set ~1000 pages: reads stay cold
	opts.SyncCommits = false
	opts.GlobalLock = globalLock
	opts.BenchIODelay = e14IODelay
	s, err := store.Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	h, err := s.CreateHeap("q")
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte(stringsRepeat("x", 1900)) // ~4 records per page
	tx := s.Begin()
	rids := make([]store.RID, 0, 4000)
	for i := 0; i < 4000; i++ {
		rid, err := tx.Insert(h, payload)
		if err != nil {
			b.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	return s, rids
}

func BenchmarkE14StoreScalability(b *testing.B) {
	for _, mode := range []struct {
		name       string
		globalLock bool
	}{{"latched", false}, {"globalmutex", true}} {
		for _, workers := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("coldread/%s/gr=%d", mode.name, workers), func(b *testing.B) {
				s, rids := setupE14Store(b, mode.globalLock)
				defer s.Close()
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					share := b.N / workers
					if w < b.N%workers {
						share++
					}
					// Disjoint rid partitions per goroutine: every worker
					// misses on its own pages instead of drafting behind
					// frames another worker just loaded.
					chunk := rids[w*len(rids)/workers : (w+1)*len(rids)/workers]
					wg.Add(1)
					go func(w, share int, chunk []store.RID) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(w)))
						for i := 0; i < share; i++ {
							if _, err := s.Read(chunk[rng.Intn(len(chunk))]); err != nil {
								b.Error(err)
								return
							}
						}
					}(w, share, chunk)
				}
				wg.Wait()
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/sec")
			})
		}
	}
	for _, mode := range []struct {
		name       string
		globalLock bool
	}{{"latched", false}, {"globalmutex", true}} {
		b.Run(fmt.Sprintf("mixed/%s/gr=8", mode.name), func(b *testing.B) {
			s, rids := setupE14Store(b, mode.globalLock)
			defer s.Close()
			h, _ := s.Heap("q")
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				share := b.N / 8
				if w < b.N%8 {
					share++
				}
				wg.Add(1)
				go func(w, share int) {
					defer wg.Done()
					if w%2 == 0 { // reader
						chunk := rids[w*len(rids)/8 : (w+1)*len(rids)/8]
						rng := rand.New(rand.NewSource(int64(w)))
						for i := 0; i < share; i++ {
							if _, err := s.Read(chunk[rng.Intn(len(chunk))]); err != nil {
								b.Error(err)
								return
							}
						}
						return
					}
					payload := []byte(stringsRepeat("y", 400))
					for i := 0; i < share; i++ { // inserter
						tx := s.Begin()
						if _, err := tx.Insert(h, payload); err != nil {
							b.Error(err)
							return
						}
						if err := tx.Commit(); err != nil {
							b.Error(err)
							return
						}
					}
				}(w, share)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
		})
	}
}

// --- E17: index-backed dispatch and merged slice access ---
//
// BenchmarkE17IndexedDispatch measures backlog drain throughput of a
// property-prefiltered routing rule: the default engine resolves the ~99%
// non-matching messages with secondary-index range probes over each claimed
// batch and never fetches their documents; the ScanDispatch baseline
// fetches and decodes every claimed document before the same prefilter.
// The // descents keep the queue unprojected so the baseline pays the full
// decode. cmd/demaq-bench -e E17 runs the same contrast as a backlog sweep.

const e17BenchApp = `
	create queue inbox kind basic mode persistent;
	create queue hits kind basic mode persistent;
	create property route as xs:string queue inbox value //route;
	create rule hot for inbox
	  if (qs:property("route") = "hot") then do enqueue <hit>{//id/text()}</hit> into hits;
`

func BenchmarkE17IndexedDispatch(b *testing.B) {
	filler := stringsRepeat(`<i a="7"><b>19.9</b><c>EA</c><d>2</d><e>ok</e></i>`, 120)
	for _, scan := range []bool{false, true} {
		name := "mode=indexed"
		if scan {
			name = "mode=scan"
		}
		b.Run(name, func(b *testing.B) {
			srv, err := Open(b.TempDir(), e17BenchApp, &Options{
				Workers: 8, BatchSize: 128, NoSync: true, ScanDispatch: scan,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			// Preload b.N messages (untimed): the timed region is pure
			// backlog drain, where dispatch strategy is the variable.
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				share := b.N / 8
				if w < b.N%8 {
					share++
				}
				wg.Add(1)
				go func(w, share int) {
					defer wg.Done()
					for i := 0; i < share; i++ {
						route := "cold"
						if i%100 == 0 {
							route = "hot"
						}
						doc := fmt.Sprintf(`<order><id>%d-%d</id><route>%s</route>%s</order>`, w, i, route, filler)
						if _, err := srv.Enqueue("inbox", doc, nil); err != nil {
							b.Error(err)
							return
						}
					}
				}(w, share)
			}
			wg.Wait()
			st0 := srv.Stats()
			b.ResetTimer()
			srv.Start()
			if !srv.Drain(600 * time.Second) {
				b.Fatal("drain")
			}
			b.StopTimer()
			processed := srv.Stats().Processed - st0.Processed
			if processed > 0 {
				b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "msgs/sec")
			}
		})
	}
}

func BenchmarkE17MergedSliceAccess(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		for _, noIndex := range []bool{false, true} {
			name := fmt.Sprintf("msgs=%d/mode=indexed", n)
			if noIndex {
				name = fmt.Sprintf("msgs=%d/mode=scan", n)
			}
			b.Run(name, func(b *testing.B) {
				sm := setupSliceBench(b, n, n/10, false, noIndex)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					members := sm.SliceMembers("byK", fmt.Sprintf("s%d", i%(n/10)))
					if len(members) != 10 {
						b.Fatalf("slice size %d", len(members))
					}
				}
			})
		}
	}
}

// --- E16: streaming ingest with per-queue path projection ---

// e16App references only the order id: the projection analysis keeps the
// <order> spine and its id attribute and prunes the item subtrees into
// opaque byte spans at ingest.
const e16App = `
	create queue in kind basic mode persistent;
	create queue out kind basic mode persistent;
	create rule route for in if (exists(/order/@id)) then
	  do enqueue <routed>{string(/order/@id)}</routed> into out;
`

// e16AppStreaming uses a // descent, which defeats the static analysis:
// the queue streams into the full binary encoding (no DOM tree either),
// but without projection.
const e16AppStreaming = `
	create queue in kind basic mode persistent;
	create queue out kind basic mode persistent;
	create rule route for in if (//order) then
	  do enqueue <routed>seen</routed> into out;
`

// BenchmarkE16Ingest measures pure ingest cost (the engine is never
// started, so no rules run): wire XML in, committed message out.
//
//	legacy-dom: parse into a DOM tree, encode the tree (Config.FullIngest)
//	streaming:  SAX-style streaming encode, full document kept
//	projected:  streaming encode, unreferenced subtrees stored as spans
func BenchmarkE16Ingest(b *testing.B) {
	for _, size := range []int{4 << 10, 64 << 10} {
		payload := []byte(e12Payload(size))
		for _, mode := range []string{"legacy-dom", "streaming", "projected"} {
			b.Run(fmt.Sprintf("size=%dKB/mode=%s", size>>10, mode), func(b *testing.B) {
				src := e16App
				if mode == "streaming" {
					src = e16AppStreaming
				}
				app, err := qdl.Parse(src)
				if err != nil {
					b.Fatal(err)
				}
				cfg := engine.Config{Dir: b.TempDir(), Workers: 1, FullIngest: mode == "legacy-dom"}
				cfg.Store = msgstore.DefaultOptions()
				cfg.Store.Store.SyncCommits = false
				e, err := engine.New(cfg, app)
				if err != nil {
					b.Fatal(err)
				}
				defer e.Stop()
				switch mode {
				case "projected":
					if e.Projection("in") == nil {
						b.Fatal("e16App must yield a projection for queue in")
					}
				default:
					if e.Projection("in") != nil {
						b.Fatalf("mode %s must not project", mode)
					}
				}
				b.SetBytes(int64(len(payload)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.EnqueueWire("in", payload, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
