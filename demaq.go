// Package demaq is a declarative XML message processing system: a Go
// implementation of the Demaq model from "Demaq: A Foundation for
// Declarative XML Message Processing" (Böhm, Kanne, Moerkotte, CIDR 2007).
//
// A Demaq application is a set of XML message queues and fully declarative
// rules: queues (and slicings — virtual queues grouping correlated
// messages) are declared in the Queue Definition Language, application
// logic is expressed as XQuery-based rules that react to message arrival
// exclusively by creating new messages. The engine persists messages in a
// recoverable append-only store, schedules rule evaluation with
// transactional exactly-once semantics, retains messages according to
// declarative slice lifetimes, and talks to remote nodes through gateway
// queues.
//
//	srv, err := demaq.Open(dir, `
//	    create queue in  kind basic mode persistent;
//	    create queue out kind basic mode persistent;
//	    create rule respond for in
//	      if (//ping) then do enqueue <pong>{//ping/text()}</pong> into out;
//	`, nil)
//	srv.Start()
//	srv.Enqueue("in", "<ping>hello</ping>", nil)
//	srv.Drain(time.Second)
//	msgs, _ := srv.Queue("out")
package demaq

import (
	"fmt"
	"io/fs"
	"log/slog"
	"time"

	"demaq/internal/engine"
	"demaq/internal/gateway"
	"demaq/internal/msgstore"
	"demaq/internal/qdl"
	"demaq/internal/rule"
	"demaq/internal/store"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// Options configure a server. The zero value (nil pointer) gives production
// defaults: 4 workers, slice-granularity locking, durable commits,
// materialized slices, all rule optimizations.
type Options struct {
	// Workers sets the number of concurrent message processors.
	Workers int
	// BatchSize caps how many messages a worker claims, evaluates and
	// commits as one set-oriented unit (0 = tuned default, currently 32;
	// 1 = tuple-at-a-time processing, the pre-batching behavior). Larger
	// batches amortize transaction, locking and WAL-commit overhead;
	// failures bisect back to single-message semantics, and batches of
	// low-priority work yield to higher-priority arrivals between
	// messages.
	BatchSize int
	// CoarseLocking switches from slice- to queue-granularity locks
	// (the experiment E2 baseline; slower under contention).
	CoarseLocking bool
	// NoSync disables fsync on commit, trading the durability of the most
	// recent transactions for throughput (experiment A3).
	NoSync bool
	// NoMaterializedSlices evaluates slice access by re-running the slice
	// definition instead of maintaining the B-tree index (experiment E1).
	NoMaterializedSlices bool
	// NoRuleOptimizations disables condition dispatch, property inlining
	// and the compiled rule backend (experiment E4/E11 baseline): rule
	// bodies then run on the reference AST interpreter.
	NoRuleOptimizations bool
	// FullIngest disables streaming ingest and per-queue path projection
	// (the experiment E16 baseline): incoming wire XML is parsed into a
	// DOM tree and re-encoded instead of being encoded in one streaming
	// pass.
	FullIngest bool
	// ScanDispatch disables the secondary (property, value) → message
	// index and the index-backed dispatch built on it (the experiment E17
	// baseline): property prefilters are checked per message against the
	// property map, merged slice access scans whole queues, and every
	// claimed message's document is fetched eagerly.
	ScanDispatch bool
	// GCInterval enables periodic retention garbage collection.
	GCInterval time.Duration
	// MaxIngestBacklog bounds the scheduler backlog admission control
	// tolerates: further external enqueues are shed with engine.ErrOverloaded
	// (HTTP: 429 with Retry-After) until workers catch up. Zero disables
	// the bound.
	MaxIngestBacklog int
	// WALSoftBudget and WALHardBudget bound the live WAL (the bytes a
	// crash right now would replay through) in bytes. Past the soft budget
	// commits are throttled and the background checkpointer runs; at the
	// hard budget new ingest is shed with engine.ErrOverloaded (HTTP: 429
	// with Retry-After) until a checkpoint advances the log head. A soft
	// budget of zero with a hard budget set defaults to half the hard
	// budget. Zero for both leaves the WAL unbudgeted.
	WALSoftBudget int64
	WALHardBudget int64
	// CheckpointInterval runs a fuzzy checkpoint at least this often,
	// bounding crash-recovery replay even on an idle node. Zero disables
	// the time trigger (budget triggers, if configured, still apply).
	CheckpointInterval time.Duration
	// NoDurableSessions disables persisting reliable-messaging session
	// state; exactly-once across a whole-node crash-restart then degrades
	// to at-least-once (experiment E18 baseline).
	NoDurableSessions bool
	// Resources resolves WSDL, policy and schema files referenced by the
	// application.
	Resources fs.FS
	// NetworkSeed, when non-zero, attaches the simulated network transport
	// (addresses "sim://...") with deterministic behavior.
	NetworkSeed int64
	// EnableHTTP attaches the HTTP transport (addresses "http://...").
	EnableHTTP bool
	// Logger receives engine diagnostics.
	Logger *slog.Logger
}

// Message is a queued message as seen through the public API.
type Message struct {
	ID        uint64
	Queue     string
	XML       string
	Props     map[string]string
	Enqueued  time.Time
	Processed bool
}

// Stats reports engine counters.
type Stats = engine.Stats

// Server is a running Demaq node.
type Server struct {
	eng  *engine.Engine
	net  *SimNetwork
	http *gateway.HTTPTransport
}

// Open loads (or re-loads after a restart) the application program in
// source form and opens the data directory, running crash recovery. The
// server does not process messages until Start is called.
func Open(dir, source string, opts *Options) (*Server, error) {
	app, err := qdl.Parse(source)
	if err != nil {
		return nil, err
	}
	return OpenApplication(dir, app, opts)
}

// OpenApplication is Open for a pre-parsed application.
func OpenApplication(dir string, app *qdl.Application, opts *Options) (*Server, error) {
	if opts == nil {
		opts = &Options{}
	}
	storeOpts := msgstore.DefaultOptions()
	storeOpts.Store.SyncCommits = !opts.NoSync
	storeOpts.Store.WALSoftBudget = opts.WALSoftBudget
	storeOpts.Store.WALHardBudget = opts.WALHardBudget
	storeOpts.NoPropertyIndex = opts.ScanDispatch
	ruleOpts := rule.DefaultOptions()
	if opts.NoRuleOptimizations {
		ruleOpts = rule.Options{}
	}
	gran := engine.LockSlice
	if opts.CoarseLocking {
		gran = engine.LockQueue
	}
	materialized := !opts.NoMaterializedSlices
	cfg := engine.Config{
		Dir:                dir,
		Workers:            opts.Workers,
		BatchSize:          opts.BatchSize,
		Granularity:        gran,
		Store:              storeOpts,
		Rules:              ruleOpts,
		Materialized:       &materialized,
		GCInterval:         opts.GCInterval,
		Logger:             opts.Logger,
		Resources:          opts.Resources,
		FullIngest:         opts.FullIngest,
		ScanDispatch:       opts.ScanDispatch,
		MaxBacklog:         opts.MaxIngestBacklog,
		NoDurableSessions:  opts.NoDurableSessions,
		CheckpointInterval: opts.CheckpointInterval,
	}
	srv := &Server{}
	reg := gateway.NewRegistry()
	if opts.NetworkSeed != 0 {
		srv.net = &SimNetwork{n: gateway.NewNetwork(opts.NetworkSeed)}
		reg.Add(srv.net.n)
	}
	if opts.EnableHTTP {
		srv.http = gateway.NewHTTPTransport()
		reg.Add(srv.http)
	}
	cfg.Transports = reg
	eng, err := engine.New(cfg, app)
	if err != nil {
		return nil, err
	}
	srv.eng = eng
	return srv, nil
}

// Start launches message processing and background services.
func (s *Server) Start() { s.eng.Start() }

// Close stops the server and closes the store. The data directory can be
// re-opened with the same application to resume processing.
func (s *Server) Close() error {
	err := s.eng.Stop()
	if s.net != nil {
		s.net.n.Close()
	}
	if s.http != nil {
		s.http.Close()
	}
	return err
}

// Shutdown stops the server gracefully: new ingest is refused (HTTP: 503),
// incoming gateway endpoints stop acknowledging, in-flight batches and
// outgoing transfers get up to drainTimeout to finish, and the store is
// closed with the WAL flushed. It reports whether the drain completed —
// on false, leftover work stays unprocessed in its persistent queues and
// resumes on the next Open/Start, exactly as after a crash.
func (s *Server) Shutdown(drainTimeout time.Duration) (bool, error) {
	drained, err := s.eng.Shutdown(drainTimeout)
	if s.net != nil {
		s.net.n.Close()
	}
	if s.http != nil {
		s.http.Close()
	}
	return drained, err
}

// Drain waits until no messages are pending or in flight (timers excluded),
// or the timeout elapses; it reports whether the system became idle.
func (s *Server) Drain(timeout time.Duration) bool { return s.eng.Drain(timeout) }

// Enqueue inserts an XML message into a queue; props set explicit property
// values (they must be declared on the queue, or be system properties such
// as "Sender", "timeout", "target").
func (s *Server) Enqueue(queue, xml string, props map[string]string) (uint64, error) {
	var explicit map[string]xdm.Value
	if len(props) > 0 {
		explicit = make(map[string]xdm.Value, len(props))
		for k, v := range props {
			explicit[k] = xdm.NewString(v)
		}
	}
	id, err := s.eng.EnqueueXML(queue, xml, explicit)
	return uint64(id), err
}

// Queue returns the live messages of a queue in arrival order.
func (s *Server) Queue(name string) ([]Message, error) {
	msgs, err := s.eng.MessageStore().Messages(name)
	if err != nil {
		return nil, err
	}
	out := make([]Message, 0, len(msgs))
	for _, m := range msgs {
		doc, err := s.eng.MessageStore().Doc(m.ID)
		if err != nil {
			return nil, err
		}
		props := make(map[string]string, len(m.Props))
		for k, v := range m.Props {
			props[k] = v.StringValue()
		}
		out = append(out, Message{
			ID: uint64(m.ID), Queue: m.Queue, XML: xmldom.Serialize(doc),
			Props: props, Enqueued: m.Enqueued, Processed: m.Processed,
		})
	}
	return out, nil
}

// Queues lists the declared queue names.
func (s *Server) Queues() []string { return s.eng.MessageStore().QueueNames() }

// SliceMembers returns the IDs of the messages currently visible in a
// slice (introspection).
func (s *Server) SliceMembers(slicing, key string) []uint64 {
	ids := s.eng.Slices().SliceMembers(slicing, key)
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	return out
}

// AddMasterData appends a document to a collection (fn:collection).
func (s *Server) AddMasterData(collection, xml string) error {
	doc, err := xmldom.ParseString(xml)
	if err != nil {
		return err
	}
	return s.eng.MessageStore().AddToCollection(collection, doc)
}

// CollectGarbage runs one retention GC pass and returns the number of
// messages physically removed.
func (s *Server) CollectGarbage() (int, error) { return s.eng.CollectGarbage() }

// PageStats returns the page-store counters (commits, WAL fsyncs and
// group-commit coalescing) for benchmarks and operational tooling.
func (s *Server) PageStats() store.Stats { return s.eng.MessageStore().PageStore().Stats() }

// Reload replaces the application program at runtime — the dynamic rule
// evolution the paper lists as future work (Sec. 5). The engine must be
// idle (Drain first); queues can be added but not removed or re-typed;
// rules, properties, slicings and collections may change freely.
func (s *Server) Reload(source string) error {
	app, err := qdl.Parse(source)
	if err != nil {
		return err
	}
	return s.eng.Reload(app)
}

// Stats returns engine counters.
func (s *Server) Stats() Stats { return s.eng.Stats() }

// Network returns the simulated network attached via Options.NetworkSeed,
// or nil.
func (s *Server) Network() *SimNetwork { return s.net }

// ConnectTo shares this server's simulated network with another server
// configuration: pass the returned value as the Transports of a second
// node. Used by multi-node examples.
func (s *Server) shareNet() *gateway.Network {
	if s.net == nil {
		return nil
	}
	return s.net.n
}

// OpenPeer opens a second node sharing this server's transports (simulated
// network and/or HTTP), so multi-node applications run in one process.
func (s *Server) OpenPeer(dir, source string, opts *Options) (*Server, error) {
	app, err := qdl.Parse(source)
	if err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &Options{}
	}
	storeOpts := msgstore.DefaultOptions()
	storeOpts.Store.SyncCommits = !opts.NoSync
	storeOpts.Store.WALSoftBudget = opts.WALSoftBudget
	storeOpts.Store.WALHardBudget = opts.WALHardBudget
	storeOpts.NoPropertyIndex = opts.ScanDispatch
	ruleOpts := rule.DefaultOptions()
	if opts.NoRuleOptimizations {
		ruleOpts = rule.Options{}
	}
	materialized := !opts.NoMaterializedSlices
	reg := gateway.NewRegistry()
	peer := &Server{}
	if n := s.shareNet(); n != nil {
		peer.net = s.net
		reg.Add(n)
	}
	if s.http != nil {
		peer.http = s.http
		reg.Add(s.http)
	}
	cfg := engine.Config{
		Dir: dir, Workers: opts.Workers, BatchSize: opts.BatchSize,
		Store: storeOpts, Rules: ruleOpts, Materialized: &materialized,
		GCInterval: opts.GCInterval, Logger: opts.Logger,
		Resources: opts.Resources, Transports: reg, FullIngest: opts.FullIngest,
		ScanDispatch: opts.ScanDispatch, MaxBacklog: opts.MaxIngestBacklog,
		NoDurableSessions:  opts.NoDurableSessions,
		CheckpointInterval: opts.CheckpointInterval,
	}
	eng, err := engine.New(cfg, app)
	if err != nil {
		return nil, err
	}
	peer.eng = eng
	return peer, nil
}

// SimNetwork exposes the failure-injection knobs of the simulated network.
type SimNetwork struct {
	n *gateway.Network
}

// SetLatency sets the one-way delivery delay.
func (sn *SimNetwork) SetLatency(d time.Duration) { sn.n.SetLatency(d) }

// SetLossRate silently drops the given fraction of transmissions.
func (sn *SimNetwork) SetLossRate(p float64) { sn.n.SetLossRate(p) }

// SetDupRate duplicates the given fraction of transmissions.
func (sn *SimNetwork) SetDupRate(p float64) { sn.n.SetDupRate(p) }

// SetDown marks an endpoint address unreachable.
func (sn *SimNetwork) SetDown(addr string, down bool) { sn.n.SetDown(addr, down) }

// ProcurementApplication is the complete QDL/QML source of the paper's
// running example (Figs. 3-10, Examples 3.1-3.5): the chemical-industry
// procurement scenario with parallel checks joined through a slicing,
// payment reminders via an echo queue, and error handling. It is used by
// examples/procurement and the integration tests.
const ProcurementApplication = qdl.ProcurementApp

// Validate parses and compiles an application without opening a store;
// useful for "demaqd -check".
func Validate(source string) error {
	app, err := qdl.Parse(source)
	if err != nil {
		return err
	}
	if _, err := rule.Compile(app, rule.DefaultOptions()); err != nil {
		return err
	}
	return nil
}

// FormatStats renders stats for human consumption.
func FormatStats(st Stats) string {
	s := fmt.Sprintf("processed=%d rules=%d fired=%d enqueued=%d resets=%d errors=%d deadlocks=%d dlrequeues=%d collected=%d backlog=%d batches=%d avgbatch=%.1f",
		st.Processed, st.RulesEvaluated, st.RulesFired, st.Enqueued, st.Resets,
		st.Errors, st.Deadlocks, st.DeadlockRequeues, st.Collected, st.Backlog,
		st.BatchesClaimed, st.AvgBatchSize)
	s += fmt.Sprintf(" wal-live=%d segs=%d dirty=%d ckpts=%d",
		st.WALLiveBytes, st.WALSegments, st.DirtyPages, st.Checkpoints)
	if st.WALThrottles > 0 || st.WALShed > 0 {
		s += fmt.Sprintf(" throttled=%d wal-shed=%d", st.WALThrottles, st.WALShed)
	}
	if st.LastCheckpoint > 0 {
		s += fmt.Sprintf(" last-ckpt=%s", st.LastCheckpoint.Round(time.Microsecond))
	}
	if st.RecoveryReplayed > 0 || st.LastRecovery > 0 {
		s += fmt.Sprintf(" recovered=%d in %s", st.RecoveryReplayed, st.LastRecovery.Round(time.Microsecond))
	}
	if st.Degraded {
		s += fmt.Sprintf(" DEGRADED(read-only: %s)", st.StorageError)
	}
	return s
}
