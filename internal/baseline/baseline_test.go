package baseline

import (
	"fmt"
	"testing"

	"demaq/internal/store"
	"demaq/internal/xmldom"
)

func TestContextEngineAccumulatesEvents(t *testing.T) {
	e, err := Open(t.TempDir(), store.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 10; i++ {
		ev := xmldom.MustParse(fmt.Sprintf(`<event n="%d">payload</event>`, i))
		if err := e.HandleEvent("inst-1", ev); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e.EventCount("inst-1")
	if err != nil || n != 10 {
		t.Fatalf("events: %d %v", n, err)
	}
	if e.Instances() != 1 {
		t.Fatal("instances")
	}
}

func TestContextEngineMultiInstanceAndRestart(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir, store.DefaultOptions())
	for i := 0; i < 5; i++ {
		inst := fmt.Sprintf("inst-%d", i)
		for j := 0; j <= i; j++ {
			e.HandleEvent(inst, xmldom.MustParse(`<event/>`))
		}
	}
	e.Close()
	e2, err := Open(dir, store.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Instances() != 5 {
		t.Fatalf("instances after restart: %d", e2.Instances())
	}
	n, _ := e2.EventCount("inst-4")
	if n != 5 {
		t.Fatalf("inst-4 events: %d", n)
	}
}
