// Package baseline implements the comparison system for experiment E6: a
// BPEL-style "instance context" engine in the spirit of the Oracle BPEL
// dehydration store the paper discusses (Sec. 2.1). Every process instance
// owns one monolithic runtime-context document; handling an event loads
// (rehydrates) the full context from the store, materializes it, appends
// the event, re-encodes the whole document and writes it back
// (dehydrates). Contexts use the same binary storage format as Demaq
// message payloads, so the comparison isolates the state model.
//
// Demaq's claim is that representing state as regular messages — appended
// once, queried declaratively — scales better with instance count and
// history length than constantly loading, manipulating and saving opaque
// monolithic contexts. The benchmark harness drives both engines with the
// same event stream.
package baseline

import (
	"fmt"
	"sync"

	"demaq/internal/store"
	"demaq/internal/xmldom"
)

// ContextEngine is the dehydration-store baseline.
type ContextEngine struct {
	ps   *store.Store
	heap store.HeapID

	mu    sync.Mutex
	index map[string]store.RID // instance → current context record
}

// Open creates a context engine backed by a page store in dir.
func Open(dir string, opts store.Options) (*ContextEngine, error) {
	ps, err := store.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	h, err := ps.CreateHeap("contexts")
	if err != nil {
		ps.Close()
		return nil, err
	}
	e := &ContextEngine{ps: ps, heap: h, index: map[string]store.RID{}}
	// Rehydrate the index (instance id is the context root's id attribute).
	// Contexts are stored in the same binary tree encoding as Demaq message
	// payloads (Materialize dispatches, so text records from older stores
	// still load) — the E-series comparison measures the state models, not
	// a storage-format handicap.
	err = ps.Scan(h, func(rid store.RID, data []byte) bool {
		doc, err := xmldom.Materialize(data)
		if err != nil {
			return true
		}
		if id, ok := doc.Root().Attr("id"); ok {
			e.index[id] = rid
		}
		return true
	})
	if err != nil {
		ps.Close()
		return nil, err
	}
	return e, nil
}

// Close closes the engine.
func (e *ContextEngine) Close() error { return e.ps.Close() }

// HandleEvent processes one event for an instance: rehydrate, mutate,
// dehydrate. The instance context is created on first use.
func (e *ContextEngine) HandleEvent(instance string, event *xmldom.Node) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	tx := e.ps.Begin()
	rid, exists := e.index[instance]

	var doc *xmldom.Node
	if exists {
		data, err := e.ps.Read(rid)
		if err != nil {
			tx.Abort()
			return err
		}
		doc, err = xmldom.Materialize(data) // rehydration: structural decode
		if err != nil {
			tx.Abort()
			return fmt.Errorf("baseline: context of %s corrupt: %w", instance, err)
		}
	} else {
		b := xmldom.NewBuilder()
		b.StartElement(xmldom.Name{Local: "context"})
		b.Attribute(xmldom.Name{Local: "id"}, instance)
		b.EndElement()
		doc = b.Done()
	}

	// Mutate: append the event to the context's history.
	b := xmldom.NewBuilder()
	b.StartElement(xmldom.Name{Local: "context"})
	b.Attribute(xmldom.Name{Local: "id"}, instance)
	for _, c := range doc.Root().Children {
		b.Subtree(c)
	}
	b.Subtree(event.Root())
	b.EndElement()
	newDoc := b.Done()

	// Dehydrate: full rewrite of the context record.
	if exists {
		if err := tx.Delete(e.heap, rid); err != nil {
			tx.Abort()
			return err
		}
	}
	newRID, err := tx.Insert(e.heap, xmldom.Encode(newDoc))
	if err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	e.index[instance] = newRID
	return nil
}

// EventCount returns the number of events recorded for an instance.
func (e *ContextEngine) EventCount(instance string) (int, error) {
	e.mu.Lock()
	rid, ok := e.index[instance]
	e.mu.Unlock()
	if !ok {
		return 0, nil
	}
	data, err := e.ps.Read(rid)
	if err != nil {
		return 0, err
	}
	doc, err := xmldom.Materialize(data)
	if err != nil {
		return 0, err
	}
	return len(doc.Root().ChildElements()), nil
}

// Instances returns the number of known instances.
func (e *ContextEngine) Instances() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.index)
}
