package slicing

import (
	"fmt"
	"testing"
	"time"

	"demaq/internal/msgstore"
	"demaq/internal/property"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xquery"
)

func setup(t *testing.T, materialized bool) (*msgstore.Store, *property.Manager, *Manager) {
	t.Helper()
	ms, err := msgstore.Open(t.TempDir(), msgstore.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	props := property.NewManager()
	props.Define(&property.Def{
		Name: "requestID", Type: xdm.TypeString, Fixed: true,
		PerQueue: map[string]*xquery.Compiled{
			"crm":      xquery.MustCompile(`//requestID`, xquery.CompileOptions{}),
			"customer": xquery.MustCompile(`//requestID`, xquery.CompileOptions{}),
		},
	})
	sm := NewManager(ms, props, materialized)
	sm.Define("requestMsgs", "requestID")
	ms.CreateQueue("crm", msgstore.Persistent, 0)
	ms.CreateQueue("customer", msgstore.Persistent, 0)
	return ms, props, sm
}

func put(t *testing.T, ms *msgstore.Store, props *property.Manager, sm *Manager, queue, xml string) msgstore.MsgID {
	t.Helper()
	doc := xmldom.MustParse(xml)
	pv, err := props.Evaluate(queue, doc, nil, nil, nil, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	tx := ms.Begin()
	id, err := tx.Enqueue(queue, doc, pv, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	sm.OnEnqueue(id, queue, pv)
	return id
}

func testMembership(t *testing.T, materialized bool) {
	ms, props, sm := setup(t, materialized)
	a := put(t, ms, props, sm, "crm", `<m><requestID>r1</requestID></m>`)
	b := put(t, ms, props, sm, "customer", `<m><requestID>r1</requestID></m>`)
	c := put(t, ms, props, sm, "crm", `<m><requestID>r2</requestID></m>`)

	got := sm.SliceMembers("requestMsgs", "r1")
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("slice r1: %v", got)
	}
	if got := sm.SliceMembers("requestMsgs", "r2"); len(got) != 1 || got[0] != c {
		t.Fatalf("slice r2: %v", got)
	}
	if got := sm.SliceMembers("requestMsgs", "r9"); len(got) != 0 {
		t.Fatalf("empty slice: %v", got)
	}
	// Cross-queue grouping (the paper's Fig. 2): same key unites messages
	// from different physical queues.
	if len(sm.SlicesOf(a)) != 1 || sm.SlicesOf(a)[0].Key != "r1" {
		t.Fatalf("slicesOf: %v", sm.SlicesOf(a))
	}
}

func TestMembershipMaterialized(t *testing.T) { testMembership(t, true) }
func TestMembershipMerged(t *testing.T)       { testMembership(t, false) }

func TestResetLifetimes(t *testing.T) {
	for _, mat := range []bool{true, false} {
		t.Run(fmt.Sprintf("materialized=%v", mat), func(t *testing.T) {
			ms, props, sm := setup(t, mat)
			a := put(t, ms, props, sm, "crm", `<m><requestID>r1</requestID></m>`)
			sm.Reset("requestMsgs", "r1", a) // watermark = a
			if got := sm.SliceMembers("requestMsgs", "r1"); len(got) != 0 {
				t.Fatalf("after reset: %v", got)
			}
			// New lifetime: a later message is visible again.
			b := put(t, ms, props, sm, "crm", `<m><requestID>r1</requestID></m>`)
			got := sm.SliceMembers("requestMsgs", "r1")
			if len(got) != 1 || got[0] != b {
				t.Fatalf("new lifetime: %v", got)
			}
		})
	}
}

func TestRetention(t *testing.T) {
	ms, props, sm := setup(t, true)
	a := put(t, ms, props, sm, "crm", `<m><requestID>r1</requestID></m>`)
	noSlice := put(t, ms, props, sm, "crm", `<m>plain</m>`)

	// Unprocessed: never collected.
	if n, _ := sm.CollectGarbage(); n != 0 {
		t.Fatalf("collected unprocessed: %d", n)
	}
	tx := ms.Begin()
	tx.MarkProcessed(a)
	tx.MarkProcessed(noSlice)
	tx.Commit()

	// a is in a live slice: retained. noSlice: removable.
	if sm.Removable(a) {
		t.Fatal("slice member must be retained")
	}
	if !sm.Removable(noSlice) {
		t.Fatal("sliceless processed message must be removable")
	}
	n, err := sm.CollectGarbage()
	if err != nil || n != 1 {
		t.Fatalf("gc: %d %v", n, err)
	}
	if _, ok := ms.Get(noSlice); ok {
		t.Fatal("collected message still visible")
	}
	if _, ok := ms.Get(a); !ok {
		t.Fatal("retained message lost")
	}

	// After reset, a becomes collectable.
	sm.Reset("requestMsgs", "r1", a)
	n, _ = sm.CollectGarbage()
	if n != 1 {
		t.Fatalf("gc after reset: %d", n)
	}
	if _, ok := ms.Get(a); ok {
		t.Fatal("a should be gone")
	}
}

func TestMultiSliceRetention(t *testing.T) {
	// A message in two slices is retained until *both* are reset
	// (Sec. 2.3.3: "as long as it is contained in at least one slice").
	ms, err := msgstore.Open(t.TempDir(), msgstore.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	props := property.NewManager()
	props.Define(&property.Def{Name: "p1", Type: xdm.TypeString, PerQueue: map[string]*xquery.Compiled{
		"q": xquery.MustCompile(`//a`, xquery.CompileOptions{}),
	}})
	props.Define(&property.Def{Name: "p2", Type: xdm.TypeString, PerQueue: map[string]*xquery.Compiled{
		"q": xquery.MustCompile(`//b`, xquery.CompileOptions{}),
	}})
	sm := NewManager(ms, props, true)
	sm.Define("s1", "p1")
	sm.Define("s2", "p2")
	ms.CreateQueue("q", msgstore.Persistent, 0)

	id := put(t, ms, props, sm, "q", `<m><a>x</a><b>y</b></m>`)
	tx := ms.Begin()
	tx.MarkProcessed(id)
	tx.Commit()

	if sm.Removable(id) {
		t.Fatal("member of two live slices")
	}
	sm.Reset("s1", "x", id)
	if sm.Removable(id) {
		t.Fatal("still member of s2")
	}
	sm.Reset("s2", "y", id)
	if !sm.Removable(id) {
		t.Fatal("all slices reset: removable")
	}
}

func TestRebuildAfterRestart(t *testing.T) {
	dir := t.TempDir()
	ms, err := msgstore.Open(dir, msgstore.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	props := property.NewManager()
	props.Define(&property.Def{
		Name: "requestID", Type: xdm.TypeString, Fixed: true,
		PerQueue: map[string]*xquery.Compiled{
			"crm": xquery.MustCompile(`//requestID`, xquery.CompileOptions{}),
		},
	})
	sm := NewManager(ms, props, true)
	sm.Define("requestMsgs", "requestID")
	ms.CreateQueue("crm", msgstore.Persistent, 0)

	a := put(t, ms, props, sm, "crm", `<m><requestID>r1</requestID></m>`)
	put(t, ms, props, sm, "crm", `<m><requestID>r1</requestID></m>`)

	// Persist a reset of r1 up to message a, through the txn path.
	tx := ms.Begin()
	tx.RecordReset("requestMsgs", "r1")
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Note: this reset's watermark covers both messages (high-water mark).
	ms.Crash()

	ms2, err := msgstore.Open(dir, msgstore.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ms2.Close()
	ms2.CreateQueue("crm", msgstore.Persistent, 0)
	sm2 := NewManager(ms2, props, true)
	sm2.Define("requestMsgs", "requestID")
	if err := sm2.Rebuild(); err != nil {
		t.Fatal(err)
	}
	events, err := ms2.ResetEvents()
	if err != nil || len(events) != 1 {
		t.Fatalf("reset events: %v %v", events, err)
	}
	for _, e := range events {
		sm2.Reset(e.Slicing, e.Key, e.Watermark)
	}
	// Both messages predate the persisted watermark: slice empty.
	if got := sm2.SliceMembers("requestMsgs", "r1"); len(got) != 0 {
		t.Fatalf("reset lost across restart: %v", got)
	}
	_ = a
}

func TestMaterializedAndMergedAgree(t *testing.T) {
	ms, props, sm := setup(t, true)
	var want []msgstore.MsgID
	for i := 0; i < 30; i++ {
		id := put(t, ms, props, sm, "crm", fmt.Sprintf(`<m><requestID>r%d</requestID></m>`, i%5))
		if i%5 == 3 {
			want = append(want, id)
		}
	}
	mat := sm.SliceMembers("requestMsgs", "r3")
	sm.SetMaterialized(false)
	merged := sm.SliceMembers("requestMsgs", "r3")
	if len(mat) != len(want) || len(merged) != len(want) {
		t.Fatalf("sizes: mat=%d merged=%d want=%d", len(mat), len(merged), len(want))
	}
	for i := range want {
		if mat[i] != want[i] || merged[i] != want[i] {
			t.Fatalf("disagreement at %d: %v vs %v", i, mat, merged)
		}
	}
}
