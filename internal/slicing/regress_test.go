package slicing

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"demaq/internal/msgstore"
	"demaq/internal/property"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xquery"
)

// putProps enqueues with a hand-built property map (bypassing Evaluate) and
// feeds OnEnqueue of every given manager, so materialized and merged
// managers observe the identical commit.
func putProps(t *testing.T, ms *msgstore.Store, queue string, props map[string]xdm.Value, sms ...*Manager) msgstore.MsgID {
	t.Helper()
	tx := ms.Begin()
	id, err := tx.Enqueue(queue, xmldom.MustParse(`<m/>`), props, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, sm := range sms {
		sm.OnEnqueue(id, queue, props)
	}
	return id
}

// TestUndeclaredPropertyFormsNoSlice pins the materialized/merged divergence:
// OnEnqueue used to record membership when props.Def returned !ok, while the
// merged path (which derives the slice from def.Queues()) returned nil for
// the same slice — the E1 ablation paths disagreed, and retention held such
// messages forever on the materialized side.
func TestUndeclaredPropertyFormsNoSlice(t *testing.T) {
	ms, _, _ := setup(t, true)
	props := property.NewManager() // "ghost" never declared
	mat := NewManager(ms, props, true)
	mat.Define("ghosts", "ghost")
	mer := NewManager(ms, props, false)
	mer.Define("ghosts", "ghost")

	id := putProps(t, ms, "crm", map[string]xdm.Value{"ghost": xdm.NewString("g1")}, mat, mer)

	matGot := mat.SliceMembers("ghosts", "g1")
	merGot := mer.SliceMembers("ghosts", "g1")
	if len(matGot) != 0 || len(merGot) != 0 {
		t.Fatalf("undeclared property formed a slice: materialized=%v merged=%v", matGot, merGot)
	}
	tx := ms.Begin()
	tx.MarkProcessed(id)
	tx.Commit()
	if !mat.Removable(id) {
		t.Fatal("phantom membership blocks retention")
	}
}

// TestMaterializedMergedDifferential drives the same workload — several
// keys, several queues, an off-queue property, a reset — through a
// materialized manager, a merged manager using the store's property index,
// and a merged manager on a scan-only store, and demands identical slice
// views from all three.
func TestMaterializedMergedDifferential(t *testing.T) {
	scanOpts := msgstore.DefaultOptions()
	scanOpts.NoPropertyIndex = true
	stores := map[string]*msgstore.Store{}
	for name, opts := range map[string]msgstore.Options{"indexed": msgstore.DefaultOptions(), "scan": scanOpts} {
		ms, err := msgstore.Open(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ms.Close() })
		ms.CreateQueue("crm", msgstore.Persistent, 0)
		ms.CreateQueue("customer", msgstore.Persistent, 0)
		ms.CreateQueue("other", msgstore.Persistent, 0)
		stores[name] = ms
	}
	props := property.NewManager()
	props.Define(&property.Def{
		Name: "requestID", Type: xdm.TypeString,
		PerQueue: map[string]*xquery.Compiled{
			"crm":      xquery.MustCompile(`//requestID`, xquery.CompileOptions{}),
			"customer": xquery.MustCompile(`//requestID`, xquery.CompileOptions{}),
			// "other" deliberately absent: the property is not defined there.
		},
	})
	managers := map[string]*Manager{}
	perStore := map[string][]*Manager{"indexed": nil, "scan": nil}
	for _, mode := range []string{"materialized", "merged-indexed", "merged-scan"} {
		storeName := "indexed"
		if mode == "merged-scan" {
			storeName = "scan"
		}
		sm := NewManager(stores[storeName], props, mode == "materialized")
		sm.Define("requestMsgs", "requestID")
		managers[mode] = sm
		perStore[storeName] = append(perStore[storeName], sm)
	}
	if !stores["indexed"].PropertyIndexEnabled() || stores["scan"].PropertyIndexEnabled() {
		t.Fatal("store index setup wrong")
	}

	keys := []string{"r1", "r2", "r\x00odd", ""}
	for i := 0; i < 20; i++ {
		key := keys[i%len(keys)]
		queue := []string{"crm", "customer", "other"}[i%3]
		pv := map[string]xdm.Value{"requestID": xdm.NewString(key)}
		for storeName, ms := range stores {
			putProps(t, ms, queue, pv, perStore[storeName]...)
		}
	}
	check := func(stage string) {
		t.Helper()
		for _, key := range keys {
			want := fmt.Sprint(managers["materialized"].SliceMembers("requestMsgs", key))
			for _, mode := range []string{"merged-indexed", "merged-scan"} {
				if got := fmt.Sprint(managers[mode].SliceMembers("requestMsgs", key)); got != want {
					t.Fatalf("%s: key %q: %s=%s, materialized=%s", stage, key, mode, got, want)
				}
			}
		}
	}
	check("initial")
	for _, sm := range managers {
		sm.Reset("requestMsgs", "r1", 10)
	}
	check("after reset")
}

// TestSliceKeySeparatorIsolation pins the indexKey codec fix: under the old
// "\x00"-separated keys the pairs (slicing "s", key "k\x00x") and (slicing
// "s\x00k", key "x") encoded to the same scan prefix, so each slice leaked
// the other's members.
func TestSliceKeySeparatorIsolation(t *testing.T) {
	ms, err := msgstore.Open(t.TempDir(), msgstore.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	ms.CreateQueue("q", msgstore.Persistent, 0)
	props := property.NewManager()
	for _, p := range []string{"p1", "p2"} {
		props.Define(&property.Def{Name: p, Type: xdm.TypeString, PerQueue: map[string]*xquery.Compiled{
			"q": xquery.MustCompile(`//x`, xquery.CompileOptions{}),
		}})
	}
	sm := NewManager(ms, props, true)
	sm.Define("s", "p1")
	sm.Define("s\x00k", "p2")

	a := putProps(t, ms, "q", map[string]xdm.Value{"p1": xdm.NewString("k\x00x")}, sm)
	b := putProps(t, ms, "q", map[string]xdm.Value{"p2": xdm.NewString("x")}, sm)

	if got := sm.SliceMembers("s", "k\x00x"); len(got) != 1 || got[0] != a {
		t.Fatalf("slice s/k\\0x: %v (leak from sibling pair)", got)
	}
	if got := sm.SliceMembers("s\x00k", "x"); len(got) != 1 || got[0] != b {
		t.Fatalf("slice s\\0k/x: %v (leak from sibling pair)", got)
	}
}

// TestSliceMembersWatermarkRace pins the single-lock watermark read: a
// writer interleaves Reset with sentinel memberships while readers assert
// that any view containing sentinel n holds no member at or below the
// watermark that preceded n. With the watermark read under one RLock and
// the index scanned under a second, a Reset landing between them produces
// exactly such a stale view. Run under -race in CI.
func TestSliceMembersWatermarkRace(t *testing.T) {
	_, _, sm := setup(t, true)
	pv := map[string]xdm.Value{"requestID": xdm.NewString("r1")}

	var mu sync.Mutex
	wmOf := map[msgstore.MsgID]msgstore.MsgID{}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last msgstore.MsgID
		for n := msgstore.MsgID(1); ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			sm.Reset("requestMsgs", "r1", last)
			mu.Lock()
			wmOf[n] = last
			mu.Unlock()
			sm.OnEnqueue(n, "crm", pv)
			last = n
		}
	}()
	for i := 0; i < 5000; i++ {
		got := sm.SliceMembers("requestMsgs", "r1")
		if len(got) == 0 {
			continue
		}
		mu.Lock()
		var maxWM msgstore.MsgID
		for _, id := range got {
			if wm := wmOf[id]; wm > maxWM {
				maxWM = wm
			}
		}
		mu.Unlock()
		for _, id := range got {
			if id <= maxWM {
				t.Fatalf("member %d visible alongside a sentinel whose reset watermark is %d", id, maxWM)
			}
		}
	}
	close(stop)
	<-done
}

// TestSortIDs pins enqueue-order output for the merged queue-scan path,
// which interleaves queues and relies on the sort.
func TestSortIDs(t *testing.T) {
	ids := []msgstore.MsgID{9, 3, 7, 1, 8, 2, 2, 5}
	sortIDs(ids)
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("unsorted: %v", ids)
		}
	}
}

// TestRemovableSetMatchesRemovable pins the batched GC candidate pass
// against the per-ID predicate it replaced.
func TestRemovableSetMatchesRemovable(t *testing.T) {
	ms, _, sm := setup(t, true)
	var all []msgstore.MsgID
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("r%d", i%3)
		all = append(all, putProps(t, ms, "crm", map[string]xdm.Value{"requestID": xdm.NewString(key)}, sm))
	}
	sm.Reset("requestMsgs", "r1", all[len(all)-1])
	got := map[msgstore.MsgID]bool{}
	for _, id := range sm.removableSet(all) {
		got[id] = true
	}
	for _, id := range all {
		if want := sm.Removable(id); got[id] != want {
			t.Fatalf("id %d: removableSet=%v Removable=%v", id, got[id], want)
		}
	}
}
