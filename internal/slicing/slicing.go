// Package slicing implements Demaq slicings (paper Sec. 2.3): families of
// virtual queues that group messages across physical queues by the value of
// a property (the slice key). Slices have lifetimes delimited by reset
// operations; a message is visible in a slice only if it was added after
// the last reset, and the retention rule guarantees a processed message is
// physically removable only once it belongs to no live slice (Sec. 2.3.3).
//
// The manager supports two implementations of slice access, the subject of
// experiment E1:
//
//   - materialized: a B+tree index keyed (slicing, key, msgID), maintained
//     on enqueue — the paper's "physical representation of the slices ...
//     using a B-Tree indexed by the slice key" (Sec. 4.3);
//   - merged: no index; each access re-evaluates the slice definition by
//     scanning the queues the slicing property is defined on, the
//     "merging the slice definition into the rules" baseline.
//
// Slice state is derived data rebuilt on startup from the message store;
// resets are persisted as watermark events so slice visibility survives
// restarts.
package slicing

import (
	"encoding/binary"
	"sync"

	"demaq/internal/msgstore"
	"demaq/internal/property"
	"demaq/internal/store"
	"demaq/internal/xdm"
)

// Slicing is one slicing declaration.
type Slicing struct {
	Name     string
	Property string
}

// membership records that a message belongs to a slice.
type membership struct {
	slicing string
	key     string
}

// Manager tracks slice membership, lifetimes and retention.
type Manager struct {
	mu        sync.RWMutex
	ms        *msgstore.Store
	props     *property.Manager
	slicings  map[string]*Slicing
	byProp    map[string][]*Slicing
	index     *store.BTree // (slicing \x00 key \x00 msgID) → nil
	memberOf  map[msgstore.MsgID][]membership
	watermark map[string]msgstore.MsgID // slicing \x00 key → last reset watermark

	materialized bool
}

// NewManager creates a slicing manager. materialized selects the indexed
// implementation (the default and the paper's recommendation).
func NewManager(ms *msgstore.Store, props *property.Manager, materialized bool) *Manager {
	return &Manager{
		ms:           ms,
		props:        props,
		slicings:     map[string]*Slicing{},
		byProp:       map[string][]*Slicing{},
		index:        store.NewBTree(),
		memberOf:     map[msgstore.MsgID][]membership{},
		watermark:    map[string]msgstore.MsgID{},
		materialized: materialized,
	}
}

// SetMaterialized switches the slice access implementation (E1 ablation).
func (m *Manager) SetMaterialized(on bool) { m.materialized = on }

// Materialized reports the current implementation.
func (m *Manager) Materialized() bool { return m.materialized }

// Define registers a slicing over a property.
func (m *Manager) Define(name, prop string) *Slicing {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.slicings[name]; ok {
		return s
	}
	s := &Slicing{Name: name, Property: prop}
	m.slicings[name] = s
	m.byProp[prop] = append(m.byProp[prop], s)
	return s
}

// Get returns a slicing by name.
func (m *Manager) Get(name string) (*Slicing, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.slicings[name]
	return s, ok
}

// Names lists declared slicings.
func (m *Manager) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.slicings))
	for n := range m.slicings {
		out = append(out, n)
	}
	return out
}

func sliceID(slicing, key string) string { return slicing + "\x00" + key }

func indexKey(slicing, key string, id msgstore.MsgID) []byte {
	out := make([]byte, 0, len(slicing)+len(key)+10)
	out = append(out, slicing...)
	out = append(out, 0)
	out = append(out, key...)
	out = append(out, 0)
	var idb [8]byte
	binary.BigEndian.PutUint64(idb[:], uint64(id))
	return append(out, idb[:]...)
}

// OnEnqueue records slice memberships for a newly committed message, based
// on its evaluated properties. The engine calls it while holding the locks
// of the affected slices.
func (m *Manager) OnEnqueue(id msgstore.MsgID, queue string, props map[string]xdm.Value) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for propName, v := range props {
		slicings := m.byProp[propName]
		if len(slicings) == 0 {
			continue
		}
		// Membership requires the property to be defined on the queue.
		if def, ok := m.props.Def(propName); ok {
			if _, onQueue := def.PerQueue[queue]; !onQueue {
				continue
			}
		}
		key := v.StringValue()
		for _, s := range slicings {
			if m.materialized {
				m.index.Insert(indexKey(s.Name, key, id), nil)
			}
			m.memberOf[id] = append(m.memberOf[id], membership{slicing: s.Name, key: key})
		}
	}
}

// OnRemove drops index entries of physically deleted messages.
func (m *Manager) OnRemove(ids []msgstore.MsgID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, id := range ids {
		for _, mb := range m.memberOf[id] {
			m.index.Delete(indexKey(mb.slicing, mb.key, id))
		}
		delete(m.memberOf, id)
	}
}

// SliceMembers returns the IDs of messages visible in the slice (current
// lifetime only), in enqueue order.
func (m *Manager) SliceMembers(slicing, key string) []msgstore.MsgID {
	m.mu.RLock()
	s, ok := m.slicings[slicing]
	wm := m.watermark[sliceID(slicing, key)]
	materialized := m.materialized
	m.mu.RUnlock()
	if !ok {
		return nil
	}
	if materialized {
		var out []msgstore.MsgID
		m.mu.RLock()
		m.index.ScanPrefix(indexKey(slicing, key, 0)[:len(slicing)+len(key)+2], func(k, _ []byte) bool {
			id := msgstore.MsgID(binary.BigEndian.Uint64(k[len(k)-8:]))
			if id > wm {
				out = append(out, id)
			}
			return true
		})
		m.mu.RUnlock()
		return out
	}
	// Merged evaluation: scan every queue the slicing property is defined
	// on and compare property values — the unindexed baseline.
	def, ok := m.props.Def(s.Property)
	if !ok {
		return nil
	}
	var out []msgstore.MsgID
	for _, queue := range def.Queues() {
		msgs, err := m.ms.Messages(queue)
		if err != nil {
			continue
		}
		for _, msg := range msgs {
			if v, ok := msg.Props[s.Property]; ok && v.StringValue() == key && msg.ID > wm {
				out = append(out, msg.ID)
			}
		}
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []msgstore.MsgID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// SlicesOf returns the (slicing, key) pairs the message belongs to,
// restricted to current lifetimes.
func (m *Manager) SlicesOf(id msgstore.MsgID) []struct{ Slicing, Key string } {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []struct{ Slicing, Key string }
	for _, mb := range m.memberOf[id] {
		if id > m.watermark[sliceID(mb.slicing, mb.key)] {
			out = append(out, struct{ Slicing, Key string }{mb.slicing, mb.key})
		}
	}
	return out
}

// Reset begins a new lifetime for a slice: messages at or below the
// watermark disappear from slice view and become retention-eligible.
// The watermark is the message-store ID high-water mark at reset time.
func (m *Manager) Reset(slicing, key string, watermark msgstore.MsgID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sid := sliceID(slicing, key)
	if watermark > m.watermark[sid] {
		m.watermark[sid] = watermark
	}
}

// Watermark returns the current reset watermark for a slice.
func (m *Manager) Watermark(slicing, key string) msgstore.MsgID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.watermark[sliceID(slicing, key)]
}

// Removable reports whether a processed message may be physically deleted:
// it must belong to no live slice (Sec. 2.3.3). Messages that were never in
// any slice are removable once processed.
func (m *Manager) Removable(id msgstore.MsgID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, mb := range m.memberOf[id] {
		if id > m.watermark[sliceID(mb.slicing, mb.key)] {
			return false
		}
	}
	return true
}

// CollectGarbage scans the processed messages of every queue and physically
// removes those no longer held by any live slice, using the redo-only
// batch delete. It returns the number of messages removed. This is the
// background task of Sec. 4.4.2 / experiment E8; it runs decoupled from
// message processing.
func (m *Manager) CollectGarbage() (int, error) {
	total := 0
	for _, queue := range m.ms.QueueNames() {
		ids := m.ms.ProcessedIDs(queue)
		var removable []msgstore.MsgID
		for _, id := range ids {
			if m.Removable(id) {
				removable = append(removable, id)
			}
		}
		if len(removable) == 0 {
			continue
		}
		if err := m.ms.Remove(queue, removable); err != nil {
			return total, err
		}
		m.OnRemove(removable)
		total += len(removable)
	}
	return total, nil
}

// Rebuild reconstructs memberships and the index from the message store
// (startup path: slice state is derived data).
func (m *Manager) Rebuild() error {
	m.mu.Lock()
	m.index = store.NewBTree()
	m.memberOf = map[msgstore.MsgID][]membership{}
	m.mu.Unlock()
	for _, queue := range m.ms.QueueNames() {
		msgs, err := m.ms.Messages(queue)
		if err != nil {
			return err
		}
		for _, msg := range msgs {
			m.OnEnqueue(msg.ID, queue, msg.Props)
		}
	}
	return nil
}
