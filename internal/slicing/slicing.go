// Package slicing implements Demaq slicings (paper Sec. 2.3): families of
// virtual queues that group messages across physical queues by the value of
// a property (the slice key). Slices have lifetimes delimited by reset
// operations; a message is visible in a slice only if it was added after
// the last reset, and the retention rule guarantees a processed message is
// physically removable only once it belongs to no live slice (Sec. 2.3.3).
//
// The manager supports two implementations of slice access, the subject of
// experiment E1:
//
//   - materialized: a B+tree index keyed (slicing, key, msgID), maintained
//     on enqueue — the paper's "physical representation of the slices ...
//     using a B-Tree indexed by the slice key" (Sec. 4.3);
//   - merged: no index; each access re-evaluates the slice definition by
//     scanning the queues the slicing property is defined on, the
//     "merging the slice definition into the rules" baseline.
//
// Slice state is derived data rebuilt on startup from the message store;
// resets are persisted as watermark events so slice visibility survives
// restarts.
package slicing

import (
	"sort"
	"sync"

	"demaq/internal/msgstore"
	"demaq/internal/property"
	"demaq/internal/store"
	"demaq/internal/xdm"
)

// Slicing is one slicing declaration.
type Slicing struct {
	Name     string
	Property string
}

// membership records that a message belongs to a slice.
type membership struct {
	slicing string
	key     string
}

// Manager tracks slice membership, lifetimes and retention.
type Manager struct {
	mu        sync.RWMutex
	ms        *msgstore.Store
	props     *property.Manager
	slicings  map[string]*Slicing
	byProp    map[string][]*Slicing
	index     *store.BTree // IndexKey(msgID, slicing, key) → nil
	memberOf  map[msgstore.MsgID][]membership
	watermark map[string]msgstore.MsgID // slicing \x00 key → last reset watermark

	materialized bool
}

// NewManager creates a slicing manager. materialized selects the indexed
// implementation (the default and the paper's recommendation).
func NewManager(ms *msgstore.Store, props *property.Manager, materialized bool) *Manager {
	return &Manager{
		ms:           ms,
		props:        props,
		slicings:     map[string]*Slicing{},
		byProp:       map[string][]*Slicing{},
		index:        store.NewBTree(),
		memberOf:     map[msgstore.MsgID][]membership{},
		watermark:    map[string]msgstore.MsgID{},
		materialized: materialized,
	}
}

// SetMaterialized switches the slice access implementation (E1 ablation).
func (m *Manager) SetMaterialized(on bool) { m.materialized = on }

// Materialized reports the current implementation.
func (m *Manager) Materialized() bool { return m.materialized }

// Define registers a slicing over a property.
func (m *Manager) Define(name, prop string) *Slicing {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.slicings[name]; ok {
		return s
	}
	s := &Slicing{Name: name, Property: prop}
	m.slicings[name] = s
	m.byProp[prop] = append(m.byProp[prop], s)
	return s
}

// Get returns a slicing by name.
func (m *Manager) Get(name string) (*Slicing, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.slicings[name]
	return s, ok
}

// Names lists declared slicings.
func (m *Manager) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.slicings))
	for n := range m.slicings {
		out = append(out, n)
	}
	return out
}

func sliceID(slicing, key string) string { return slicing + "\x00" + key }

// indexKey builds the B-tree key of one membership row using the shared
// length-prefixed codec. The previous "\x00"-separated layout was ambiguous:
// a slice key embedding NUL made one slice's prefix cover another's rows
// (slicing "s", key "k\x00x" collided with slicing "s\x00k", key "x"), so
// ScanPrefix leaked entries across (slicing, key) pairs. Length prefixes are
// prefix-free for any byte content.
func indexKey(slicing, key string, id msgstore.MsgID) []byte {
	return store.IndexKey(uint64(id), slicing, key)
}

// OnEnqueue records slice memberships for a newly committed message, based
// on its evaluated properties. The engine calls it while holding the locks
// of the affected slices.
func (m *Manager) OnEnqueue(id msgstore.MsgID, queue string, props map[string]xdm.Value) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for propName, v := range props {
		slicings := m.byProp[propName]
		if len(slicings) == 0 {
			continue
		}
		// Membership requires a declared property defined on this queue.
		// An undeclared property must not form a slice: the merged path
		// re-derives membership by scanning def.Queues(), so anything it
		// cannot see must not be materialized either, or the two E1
		// implementations diverge.
		def, ok := m.props.Def(propName)
		if !ok {
			continue
		}
		if _, onQueue := def.PerQueue[queue]; !onQueue {
			continue
		}
		key := v.StringValue()
		for _, s := range slicings {
			if m.materialized {
				m.index.Insert(indexKey(s.Name, key, id), nil)
			}
			m.memberOf[id] = append(m.memberOf[id], membership{slicing: s.Name, key: key})
		}
	}
}

// OnRemove drops index entries of physically deleted messages.
func (m *Manager) OnRemove(ids []msgstore.MsgID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, id := range ids {
		for _, mb := range m.memberOf[id] {
			m.index.Delete(indexKey(mb.slicing, mb.key, id))
		}
		delete(m.memberOf, id)
	}
}

// SliceMembers returns the IDs of messages visible in the slice (current
// lifetime only), in enqueue order.
func (m *Manager) SliceMembers(slicing, key string) []msgstore.MsgID {
	m.mu.RLock()
	s, ok := m.slicings[slicing]
	if !ok {
		m.mu.RUnlock()
		return nil
	}
	if m.materialized {
		// Watermark read and index scan happen under the same lock
		// acquisition. Reading the watermark under one RLock and scanning
		// under a second let a concurrent Reset land in the gap, returning
		// members of the new lifetime filtered by the old lifetime's
		// watermark.
		wm := m.watermark[sliceID(slicing, key)]
		var out []msgstore.MsgID
		m.index.ScanPrefix(store.IndexKeyPrefix(slicing, key), func(k, _ []byte) bool {
			if id := msgstore.MsgID(store.IndexKeyID(k)); id > wm {
				out = append(out, id)
			}
			return true
		})
		m.mu.RUnlock()
		return out
	}
	wm := m.watermark[sliceID(slicing, key)]
	prop := s.Property
	m.mu.RUnlock()

	// Merged evaluation: re-derive the slice from the message store. With
	// the store's property index this is one contiguous (property, value)
	// range scan already bounded below by the watermark, filtered to the
	// queues the property is defined on; without it, the unindexed E1
	// baseline scans every such queue.
	def, ok := m.props.Def(prop)
	if !ok {
		return nil
	}
	if m.ms.PropertyIndexEnabled() {
		ids := m.ms.PropertyIDsAfter(prop, key, wm, nil)
		out := ids[:0]
		for _, id := range ids {
			if msg, live := m.ms.Get(id); live {
				if _, onQueue := def.PerQueue[msg.Queue]; onQueue {
					out = append(out, id)
				}
			}
		}
		return out // index scans ascend by id, so enqueue order is free
	}
	var out []msgstore.MsgID
	for _, queue := range def.Queues() {
		msgs, err := m.ms.Messages(queue)
		if err != nil {
			continue
		}
		for _, msg := range msgs {
			if v, ok := msg.Props[prop]; ok && v.StringValue() == key && msg.ID > wm {
				out = append(out, msg.ID)
			}
		}
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []msgstore.MsgID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// SlicesOf returns the (slicing, key) pairs the message belongs to,
// restricted to current lifetimes.
func (m *Manager) SlicesOf(id msgstore.MsgID) []struct{ Slicing, Key string } {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []struct{ Slicing, Key string }
	for _, mb := range m.memberOf[id] {
		if id > m.watermark[sliceID(mb.slicing, mb.key)] {
			out = append(out, struct{ Slicing, Key string }{mb.slicing, mb.key})
		}
	}
	return out
}

// Reset begins a new lifetime for a slice: messages at or below the
// watermark disappear from slice view and become retention-eligible.
// The watermark is the message-store ID high-water mark at reset time.
func (m *Manager) Reset(slicing, key string, watermark msgstore.MsgID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sid := sliceID(slicing, key)
	if watermark > m.watermark[sid] {
		m.watermark[sid] = watermark
	}
}

// Watermark returns the current reset watermark for a slice.
func (m *Manager) Watermark(slicing, key string) msgstore.MsgID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.watermark[sliceID(slicing, key)]
}

// Removable reports whether a processed message may be physically deleted:
// it must belong to no live slice (Sec. 2.3.3). Messages that were never in
// any slice are removable once processed.
func (m *Manager) Removable(id msgstore.MsgID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, mb := range m.memberOf[id] {
		if id > m.watermark[sliceID(mb.slicing, mb.key)] {
			return false
		}
	}
	return true
}

// CollectGarbage scans the processed messages of every queue and physically
// removes those no longer held by any live slice, using the redo-only
// batch delete. It returns the number of messages removed. This is the
// background task of Sec. 4.4.2 / experiment E8; it runs decoupled from
// message processing.
func (m *Manager) CollectGarbage() (int, error) {
	total := 0
	for _, queue := range m.ms.QueueNames() {
		removable := m.removableSet(m.ms.ProcessedIDs(queue))
		if len(removable) == 0 {
			continue
		}
		if err := m.ms.Remove(queue, removable); err != nil {
			return total, err
		}
		m.OnRemove(removable)
		total += len(removable)
	}
	return total, nil
}

// removableSet filters ids down to those no longer held by any live slice
// under one lock acquisition — the GC candidate pass over a whole queue used
// to pay an RLock round-trip per message via Removable.
func (m *Manager) removableSet(ids []msgstore.MsgID) []msgstore.MsgID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []msgstore.MsgID
	for _, id := range ids {
		held := false
		for _, mb := range m.memberOf[id] {
			if id > m.watermark[sliceID(mb.slicing, mb.key)] {
				held = true
				break
			}
		}
		if !held {
			out = append(out, id)
		}
	}
	return out
}

// Rebuild reconstructs memberships and the index from the message store
// (startup path: slice state is derived data).
func (m *Manager) Rebuild() error {
	m.mu.Lock()
	m.index = store.NewBTree()
	m.memberOf = map[msgstore.MsgID][]membership{}
	m.mu.Unlock()
	for _, queue := range m.ms.QueueNames() {
		msgs, err := m.ms.Messages(queue)
		if err != nil {
			return err
		}
		for _, msg := range msgs {
			m.OnEnqueue(msg.ID, queue, msg.Props)
		}
	}
	return nil
}
