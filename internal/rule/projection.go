package rule

import (
	"demaq/internal/xmldom"
	"demaq/internal/xquery"
)

// QueueProjection computes the static path projection of a queue: the union
// of every element path that any expression evaluated against the queue's
// messages can reference — the queue's rule bodies, the property value
// expressions bound to the queue, and the bodies of all slicing rules
// (slice membership is property-driven and properties can arrive explicitly
// with an enqueue, so a slicing rule may run against any queue's messages).
//
// The result is nil when the analysis is imprecise (for example a `//`
// descent or an externally bound variable) or when the union covers the
// whole document anyway; callers then use full ingest for the queue. The
// returned projection is finalized (fingerprinted) and safe to share
// read-only across goroutines.
func (p *Program) QueueProjection(queue string) *xmldom.Projection {
	plan, ok := p.QueuePlans[queue]
	if !ok {
		return nil
	}
	b := xquery.NewProjectionBuilder()
	for _, r := range plan.Rules {
		b.Add(r.Body)
	}
	for _, def := range p.Properties.DefsForQueue(queue) {
		b.Add(def.PerQueue[queue])
	}
	for _, sp := range p.SlicePlans {
		for _, r := range sp.Rules {
			b.Add(r.Body)
		}
	}
	return b.Build()
}
