package rule

import (
	"testing"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// TestPlanAccessPaths pins the planner's access-path choice: prefiltered
// rules become index probes (the plan fits the uint64 mask), unfiltered
// rules stay scans, and the probe list mirrors the predicates.
func TestPlanAccessPaths(t *testing.T) {
	prog := MustCompile(propPredApp, DefaultOptions())
	plan := prog.QueuePlans["orders"]
	byName := map[string]*Rule{}
	for _, r := range plan.Rules {
		byName[r.Name] = r
	}
	if got := byName["euOrders"].Access; got != AccessIndexProbe {
		t.Fatalf("euOrders access %d", got)
	}
	if got := byName["usOrders"].Access; got != AccessIndexProbe {
		t.Fatalf("usOrders access %d", got)
	}
	if got := byName["bigOrders"].Access; got != AccessScan {
		t.Fatalf("bigOrders (no pred) access %d", got)
	}
	if !plan.IndexDispatchable() {
		t.Fatal("plan with probes must be index-dispatchable")
	}
	probes := plan.IndexProbes()
	if len(probes) != 2 {
		t.Fatalf("probes: %+v", probes)
	}
	for _, pr := range probes {
		r := plan.Rules[pr.Rule]
		if len(r.PropPreds) != 1 || r.PropPreds[0].Name != pr.Name || r.PropPreds[0].Value != pr.Value {
			t.Fatalf("probe %+v does not mirror rule %q preds %+v", pr, r.Name, r.PropPreds)
		}
	}
	// A plan without prefilters offers nothing to probe.
	if prog.QueuePlans["eu"].IndexDispatchable() {
		t.Fatal("plan without preds must not be index-dispatchable")
	}
}

// TestSelectIndexedEquivalence pins that SelectIndexed picks exactly the
// rules Select picks, for every sound probe mask: a set bit asserts what
// propMatch would conclude anyway, and an unset bit falls back to the map
// check.
func TestSelectIndexedEquivalence(t *testing.T) {
	prog := MustCompile(propPredApp, DefaultOptions())
	plan := prog.QueuePlans["orders"]
	doc := xmldom.MustParse(`<order><region>eu</region><amount>100</amount></order>`)
	names := func() map[string]bool { return ElementNames(doc) }

	cases := []map[string]xdm.Value{
		{"region": xdm.NewString("eu")},
		{"region": xdm.NewString("us")},
		{"region": xdm.NewString("apac")},
		{"amount": xdm.NewInteger(3)}, // property absent: admits
		nil,
	}
	for _, props := range cases {
		want := planNames(plan.Select(props, names))
		// Sound masks: bit i may be set only when rule i's preds hold.
		var sound uint64
		for i, r := range plan.Rules {
			if r.Access == AccessIndexProbe && len(props) > 0 {
				ok := true
				for _, pp := range r.PropPreds {
					v, present := props[pp.Name]
					if !present || v.StringValue() != pp.Value {
						ok = false
					}
				}
				if ok {
					sound |= 1 << uint(i)
				}
			}
		}
		for _, mask := range []uint64{0, sound} {
			got := planNames(plan.SelectIndexed(props, mask, names))
			if len(got) != len(want) {
				t.Fatalf("props %v mask %b: indexed %v, scan %v", props, mask, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("props %v mask %b: indexed %v, scan %v", props, mask, got, want)
				}
			}
		}
	}
}
