package rule

import (
	"testing"

	"demaq/internal/qdl"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xpath"
)

const miniApp = `
create queue crm kind basic mode persistent;
create queue finance kind basic mode persistent;
create queue audit kind basic mode persistent;
create property requestID as xs:string fixed
  queue crm value //requestID;
create slicing reqs on requestID;
create rule r1 for crm
  if (//offerRequest) then do enqueue <a/> into finance;
create rule r2 for crm
  if (//payment) then do enqueue <b/> into finance;
create rule r3 for crm
  do enqueue <log>{qs:property("requestID")}</log> into audit;
create rule r4 for reqs
  if (qs:slice()[/done]) then do reset;
`

func TestCompileProgram(t *testing.T) {
	prog := MustCompile(miniApp, DefaultOptions())
	if len(prog.QueuePlans) != 3 || len(prog.SlicePlans) != 1 {
		t.Fatalf("plans: %d queue, %d slice", len(prog.QueuePlans), len(prog.SlicePlans))
	}
	crm := prog.QueuePlans["crm"]
	if len(crm.Rules) != 3 {
		t.Fatalf("crm rules: %d", len(crm.Rules))
	}
	if !prog.SlicePlans["reqs"].Rules[0].Body.UsesSlice() {
		t.Fatal("slice rule should be flagged")
	}
	if _, ok := prog.Properties.Def("requestID"); !ok {
		t.Fatal("property not deployed")
	}
}

func TestDispatchIndex(t *testing.T) {
	prog := MustCompile(miniApp, DefaultOptions())
	crm := prog.QueuePlans["crm"]
	// r1 triggers on offerRequest, r2 on payment, r3 always.
	doc := xmldom.MustParse(`<offerRequest><requestID>r</requestID></offerRequest>`)
	rules := crm.RulesFor(ElementNames(doc))
	if len(rules) != 2 || rules[0].Name != "r1" || rules[1].Name != "r3" {
		names := []string{}
		for _, r := range rules {
			names = append(names, r.Name)
		}
		t.Fatalf("dispatch selected: %v", names)
	}
	// Declaration order preserved.
	doc2 := xmldom.MustParse(`<all><offerRequest/><payment/></all>`)
	rules = crm.RulesFor(ElementNames(doc2))
	if len(rules) != 3 || rules[0].Name != "r1" || rules[1].Name != "r2" || rules[2].Name != "r3" {
		t.Fatalf("order: %v", rules)
	}
}

func TestDispatchDisabledEvaluatesAll(t *testing.T) {
	prog := MustCompile(miniApp, Options{Dispatch: false})
	crm := prog.QueuePlans["crm"]
	doc := xmldom.MustParse(`<unrelated/>`)
	if got := len(crm.RulesFor(ElementNames(doc))); got != 3 {
		t.Fatalf("canonical plan must keep all rules: %d", got)
	}
}

func TestTriggerAnalysis(t *testing.T) {
	cases := map[string]string{
		`if (//offerRequest) then do enqueue <x/> into q`:                  "offerRequest",
		`if (/order/item) then do enqueue <x/> into q`:                     "order",
		`if (//a and //b) then do enqueue <x/> into q`:                     "a",
		`if (exists(//pay)) then do enqueue <x/> into q`:                   "pay",
		`if (//amount = 3) then do enqueue <x/> into q`:                    "amount",
		`if (//a) then do enqueue <x/> into q else do enqueue <y/> into q`: "", // else branch: must always run
		`if (qs:queue("z")[//a]) then do enqueue <x/> into q`:              "",
		`do enqueue <x/> into q`:                                           "",
		`if (not(//a)) then do enqueue <x/> into q`:                        "", // negation is not a presence condition
	}
	for src, want := range cases {
		e, err := xpath.ParseExprString(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := analyzeTrigger(e); got != want {
			t.Errorf("trigger(%s) = %q, want %q", src, got, want)
		}
	}
}

func TestQsQueueDefaulting(t *testing.T) {
	prog := MustCompile(`
		create queue q kind basic mode persistent;
		create rule r for q
		  if (qs:queue()[//x]) then do enqueue <y/> into q;
	`, DefaultOptions())
	body := prog.QueuePlans["q"].Rules[0].Body.AST()
	found := false
	rewriteExpr(body, func(e xpath.Expr) xpath.Expr {
		if fc, ok := e.(*xpath.FuncCall); ok && fc.Prefix == "qs" && fc.Local == "queue" {
			if len(fc.Args) == 1 {
				if lit, ok := fc.Args[0].(*xpath.Literal); ok && lit.Value.S == "q" {
					found = true
				}
			}
		}
		return e
	})
	if !found {
		t.Fatal("qs:queue() not defaulted to the rule's queue")
	}
}

func TestFixedPropertyInlining(t *testing.T) {
	prog := MustCompile(`
		create queue crm kind basic mode persistent;
		create property requestID as xs:string fixed
		  queue crm value //requestID;
		create rule r for crm
		  do enqueue <log>{qs:property("requestID")}</log> into crm;
	`, DefaultOptions())
	body := prog.QueuePlans["crm"].Rules[0].Body.AST()
	stillThere := false
	rewriteExpr(body, func(e xpath.Expr) xpath.Expr {
		if fc, ok := e.(*xpath.FuncCall); ok && fc.Prefix == "qs" && fc.Local == "property" {
			stillThere = true
		}
		return e
	})
	if stillThere {
		t.Fatal("fixed string property should be inlined")
	}
	// With the optimization off the call survives.
	prog2 := MustCompile(`
		create queue crm kind basic mode persistent;
		create property requestID as xs:string fixed
		  queue crm value //requestID;
		create rule r for crm
		  do enqueue <log>{qs:property("requestID")}</log> into crm;
	`, Options{Dispatch: true, InlineFixedProps: false})
	still2 := false
	rewriteExpr(prog2.QueuePlans["crm"].Rules[0].Body.AST(), func(e xpath.Expr) xpath.Expr {
		if fc, ok := e.(*xpath.FuncCall); ok && fc.Prefix == "qs" && fc.Local == "property" {
			still2 = true
		}
		return e
	})
	if !still2 {
		t.Fatal("inlining should be off")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		// rule targets unknown queue
		`create rule r for nowhere do enqueue <x/> into nowhere;`,
		// enqueue into unknown queue
		`create queue q kind basic mode persistent;
		 create rule r for q do enqueue <x/> into missing;`,
		// qs:slice in a queue rule
		`create queue q kind basic mode persistent;
		 create rule r for q if (qs:slice()[/a]) then do enqueue <x/> into q;`,
		// slicing over unknown property
		`create queue q kind basic mode persistent;
		 create slicing s on nothing;`,
		// duplicate queue
		`create queue q kind basic mode persistent;
		 create queue q kind basic mode persistent;`,
		// property on unknown queue
		`create property p as xs:string queue ghost value //x;`,
		// unknown error queue on rule
		`create queue q kind basic mode persistent;
		 create rule r for q errorqueue ghost do enqueue <x/> into q;`,
	}
	for _, src := range bad {
		app, err := qdl.Parse(src)
		if err != nil {
			continue // parse-level rejection also acceptable
		}
		if _, err := Compile(app, DefaultOptions()); err == nil {
			t.Errorf("expected compile error for %q", src)
		}
	}
}

const propPredApp = `
create queue orders kind basic mode persistent;
create queue eu kind basic mode persistent;
create queue us kind basic mode persistent;
create property region as xs:string queue orders value //region;
create property amount as xs:integer queue orders value //amount;
create rule euOrders for orders
  if (qs:property("region") = "eu" and //order) then do enqueue <eu/> into eu;
create rule usOrders for orders
  if ("us" = qs:property("region")) then do enqueue <us/> into us;
create rule bigOrders for orders
  if (qs:property("amount") = 100) then do enqueue <big/> into us;
create rule lateTest for orders
  if (//order and qs:property("region") = "eu") then do enqueue <late/> into eu;
`

func TestPropPredAnalysis(t *testing.T) {
	prog := MustCompile(propPredApp, DefaultOptions())
	rules := prog.QueuePlans["orders"].Rules
	byName := map[string]*Rule{}
	for _, r := range rules {
		byName[r.Name] = r
	}
	if got := byName["euOrders"].PropPreds; len(got) != 1 || got[0] != (PropPred{Name: "region", Value: "eu"}) {
		t.Fatalf("euOrders preds: %+v", got)
	}
	if got := byName["usOrders"].PropPreds; len(got) != 1 || got[0] != (PropPred{Name: "region", Value: "us"}) {
		t.Fatalf("usOrders preds (mirrored operands): %+v", got)
	}
	// Non-string property types never become prefilters: their general
	// comparison is not plain string equality.
	if got := byName["bigOrders"].PropPreds; len(got) != 0 {
		t.Fatalf("bigOrders must not carry preds: %+v", got)
	}
	// A property test that is not the leftmost conjunct is refused: an
	// earlier conjunct could raise a dynamic error that the interpreter
	// would route to an error queue, so skipping is unsound.
	if got := byName["lateTest"].PropPreds; len(got) != 0 {
		t.Fatalf("non-leftmost property test must not carry preds: %+v", got)
	}
}

// TestPropPredSkipsInlinedProperties pins the soundness rule: a fixed
// string property that InlineFixedProps rewrites into its defining
// expression must not become a prefilter — the inlined body re-evaluates
// the expression against the document and can error (e.g. string() over a
// multi-node match) where the materialized property map cannot, and
// skipping the rule would swallow that error-queue message.
func TestPropPredSkipsInlinedProperties(t *testing.T) {
	const app = `
		create queue orders kind basic mode persistent;
		create queue eu kind basic mode persistent;
		create property region as xs:string fixed queue orders value //region;
		create rule euOrders for orders
		  if (qs:property("region") = "eu") then do enqueue <eu/> into eu;
	`
	prog := MustCompile(app, DefaultOptions())
	if got := prog.QueuePlans["orders"].Rules[0].PropPreds; len(got) != 0 {
		t.Fatalf("inlined fixed property must not become a prefilter: %+v", got)
	}
	// Without inlining the runtime lookup agrees with the property map,
	// so the prefilter is sound and kept.
	prog2 := MustCompile(app, Options{Dispatch: true, InlineFixedProps: false, Compile: true})
	if got := prog2.QueuePlans["orders"].Rules[0].PropPreds; len(got) != 1 {
		t.Fatalf("non-inlined fixed property should carry a prefilter: %+v", got)
	}
}

func TestSelectPropertyPrefilter(t *testing.T) {
	prog := MustCompile(propPredApp, DefaultOptions())
	plan := prog.QueuePlans["orders"]
	doc := xmldom.MustParse(`<order><region>eu</region><amount>100</amount></order>`)
	names := func() map[string]bool { return ElementNames(doc) }

	sel := planNames(plan.Select(map[string]xdm.Value{"region": xdm.NewString("eu")}, names))
	if len(sel) != 3 || sel[0] != "euOrders" || sel[1] != "bigOrders" || sel[2] != "lateTest" {
		t.Fatalf("eu message selected %v", sel)
	}
	// A message without the property runs every rule: absence proves
	// nothing, only a present different value does.
	sel = planNames(plan.Select(map[string]xdm.Value{"amount": xdm.NewInteger(3)}, names))
	if len(sel) != 4 {
		t.Fatalf("propertyless message selected %v", sel)
	}
	// RulesFor (no property view) keeps the legacy behavior.
	if got := len(plan.RulesFor(ElementNames(doc))); got != 4 {
		t.Fatalf("RulesFor: %d", got)
	}
}

// TestSelectLazyNames asserts that plans without element triggers never
// compute the element-name set.
func TestSelectLazyNames(t *testing.T) {
	prog := MustCompile(`
		create queue q kind basic mode persistent;
		create rule r for q do enqueue <x/> into q;
	`, Options{Dispatch: false, Compile: true})
	plan := prog.QueuePlans["q"]
	called := false
	sel := plan.Select(nil, func() map[string]bool { called = true; return nil })
	if called {
		t.Fatal("element names must not be computed without element triggers")
	}
	if len(sel) != 1 {
		t.Fatalf("selected %d rules", len(sel))
	}
}

func TestCompileDisabledKeepsInterpreter(t *testing.T) {
	prog := MustCompile(miniApp, Options{Dispatch: true, InlineFixedProps: true})
	for _, r := range prog.QueuePlans["crm"].Rules {
		if r.Body.HasProgram() {
			t.Fatalf("rule %s compiled despite Compile=false", r.Name)
		}
	}
	prog2 := MustCompile(miniApp, DefaultOptions())
	for _, r := range prog2.QueuePlans["crm"].Rules {
		if !r.Body.HasProgram() {
			t.Fatalf("rule %s not compiled under default options", r.Name)
		}
	}
}

func planNames(rules []*Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Name
	}
	return out
}

func TestCompileProcurement(t *testing.T) {
	prog := MustCompile(qdl.ProcurementApp, DefaultOptions())
	if len(prog.QueuePlans["crm"].Rules) != 2 { // newOfferRequest, confirmOrder
		t.Fatalf("crm rules: %d", len(prog.QueuePlans["crm"].Rules))
	}
	if len(prog.SlicePlans["requestMsgs"].Rules) != 2 { // joinOrder, cleanupRequest
		t.Fatalf("requestMsgs rules: %d", len(prog.SlicePlans["requestMsgs"].Rules))
	}
	// newOfferRequest is dispatchable on offerRequest.
	var newOffer *Rule
	for _, r := range prog.QueuePlans["crm"].Rules {
		if r.Name == "newOfferRequest" {
			newOffer = r
		}
	}
	if newOffer == nil || newOffer.Trigger != "offerRequest" {
		t.Fatalf("newOfferRequest trigger: %+v", newOffer)
	}
}
