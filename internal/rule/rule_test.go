package rule

import (
	"testing"

	"demaq/internal/qdl"
	"demaq/internal/xmldom"
	"demaq/internal/xpath"
)

const miniApp = `
create queue crm kind basic mode persistent;
create queue finance kind basic mode persistent;
create queue audit kind basic mode persistent;
create property requestID as xs:string fixed
  queue crm value //requestID;
create slicing reqs on requestID;
create rule r1 for crm
  if (//offerRequest) then do enqueue <a/> into finance;
create rule r2 for crm
  if (//payment) then do enqueue <b/> into finance;
create rule r3 for crm
  do enqueue <log>{qs:property("requestID")}</log> into audit;
create rule r4 for reqs
  if (qs:slice()[/done]) then do reset;
`

func TestCompileProgram(t *testing.T) {
	prog := MustCompile(miniApp, DefaultOptions())
	if len(prog.QueuePlans) != 3 || len(prog.SlicePlans) != 1 {
		t.Fatalf("plans: %d queue, %d slice", len(prog.QueuePlans), len(prog.SlicePlans))
	}
	crm := prog.QueuePlans["crm"]
	if len(crm.Rules) != 3 {
		t.Fatalf("crm rules: %d", len(crm.Rules))
	}
	if !prog.SlicePlans["reqs"].Rules[0].Body.UsesSlice() {
		t.Fatal("slice rule should be flagged")
	}
	if _, ok := prog.Properties.Def("requestID"); !ok {
		t.Fatal("property not deployed")
	}
}

func TestDispatchIndex(t *testing.T) {
	prog := MustCompile(miniApp, DefaultOptions())
	crm := prog.QueuePlans["crm"]
	// r1 triggers on offerRequest, r2 on payment, r3 always.
	doc := xmldom.MustParse(`<offerRequest><requestID>r</requestID></offerRequest>`)
	rules := crm.RulesFor(ElementNames(doc))
	if len(rules) != 2 || rules[0].Name != "r1" || rules[1].Name != "r3" {
		names := []string{}
		for _, r := range rules {
			names = append(names, r.Name)
		}
		t.Fatalf("dispatch selected: %v", names)
	}
	// Declaration order preserved.
	doc2 := xmldom.MustParse(`<all><offerRequest/><payment/></all>`)
	rules = crm.RulesFor(ElementNames(doc2))
	if len(rules) != 3 || rules[0].Name != "r1" || rules[1].Name != "r2" || rules[2].Name != "r3" {
		t.Fatalf("order: %v", rules)
	}
}

func TestDispatchDisabledEvaluatesAll(t *testing.T) {
	prog := MustCompile(miniApp, Options{Dispatch: false})
	crm := prog.QueuePlans["crm"]
	doc := xmldom.MustParse(`<unrelated/>`)
	if got := len(crm.RulesFor(ElementNames(doc))); got != 3 {
		t.Fatalf("canonical plan must keep all rules: %d", got)
	}
}

func TestTriggerAnalysis(t *testing.T) {
	cases := map[string]string{
		`if (//offerRequest) then do enqueue <x/> into q`:                  "offerRequest",
		`if (/order/item) then do enqueue <x/> into q`:                     "order",
		`if (//a and //b) then do enqueue <x/> into q`:                     "a",
		`if (exists(//pay)) then do enqueue <x/> into q`:                   "pay",
		`if (//amount = 3) then do enqueue <x/> into q`:                    "amount",
		`if (//a) then do enqueue <x/> into q else do enqueue <y/> into q`: "", // else branch: must always run
		`if (qs:queue("z")[//a]) then do enqueue <x/> into q`:              "",
		`do enqueue <x/> into q`:                                           "",
		`if (not(//a)) then do enqueue <x/> into q`:                        "", // negation is not a presence condition
	}
	for src, want := range cases {
		e, err := xpath.ParseExprString(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := analyzeTrigger(e); got != want {
			t.Errorf("trigger(%s) = %q, want %q", src, got, want)
		}
	}
}

func TestQsQueueDefaulting(t *testing.T) {
	prog := MustCompile(`
		create queue q kind basic mode persistent;
		create rule r for q
		  if (qs:queue()[//x]) then do enqueue <y/> into q;
	`, DefaultOptions())
	body := prog.QueuePlans["q"].Rules[0].Body.AST()
	found := false
	rewriteExpr(body, func(e xpath.Expr) xpath.Expr {
		if fc, ok := e.(*xpath.FuncCall); ok && fc.Prefix == "qs" && fc.Local == "queue" {
			if len(fc.Args) == 1 {
				if lit, ok := fc.Args[0].(*xpath.Literal); ok && lit.Value.S == "q" {
					found = true
				}
			}
		}
		return e
	})
	if !found {
		t.Fatal("qs:queue() not defaulted to the rule's queue")
	}
}

func TestFixedPropertyInlining(t *testing.T) {
	prog := MustCompile(`
		create queue crm kind basic mode persistent;
		create property requestID as xs:string fixed
		  queue crm value //requestID;
		create rule r for crm
		  do enqueue <log>{qs:property("requestID")}</log> into crm;
	`, DefaultOptions())
	body := prog.QueuePlans["crm"].Rules[0].Body.AST()
	stillThere := false
	rewriteExpr(body, func(e xpath.Expr) xpath.Expr {
		if fc, ok := e.(*xpath.FuncCall); ok && fc.Prefix == "qs" && fc.Local == "property" {
			stillThere = true
		}
		return e
	})
	if stillThere {
		t.Fatal("fixed string property should be inlined")
	}
	// With the optimization off the call survives.
	prog2 := MustCompile(`
		create queue crm kind basic mode persistent;
		create property requestID as xs:string fixed
		  queue crm value //requestID;
		create rule r for crm
		  do enqueue <log>{qs:property("requestID")}</log> into crm;
	`, Options{Dispatch: true, InlineFixedProps: false})
	still2 := false
	rewriteExpr(prog2.QueuePlans["crm"].Rules[0].Body.AST(), func(e xpath.Expr) xpath.Expr {
		if fc, ok := e.(*xpath.FuncCall); ok && fc.Prefix == "qs" && fc.Local == "property" {
			still2 = true
		}
		return e
	})
	if !still2 {
		t.Fatal("inlining should be off")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		// rule targets unknown queue
		`create rule r for nowhere do enqueue <x/> into nowhere;`,
		// enqueue into unknown queue
		`create queue q kind basic mode persistent;
		 create rule r for q do enqueue <x/> into missing;`,
		// qs:slice in a queue rule
		`create queue q kind basic mode persistent;
		 create rule r for q if (qs:slice()[/a]) then do enqueue <x/> into q;`,
		// slicing over unknown property
		`create queue q kind basic mode persistent;
		 create slicing s on nothing;`,
		// duplicate queue
		`create queue q kind basic mode persistent;
		 create queue q kind basic mode persistent;`,
		// property on unknown queue
		`create property p as xs:string queue ghost value //x;`,
		// unknown error queue on rule
		`create queue q kind basic mode persistent;
		 create rule r for q errorqueue ghost do enqueue <x/> into q;`,
	}
	for _, src := range bad {
		app, err := qdl.Parse(src)
		if err != nil {
			continue // parse-level rejection also acceptable
		}
		if _, err := Compile(app, DefaultOptions()); err == nil {
			t.Errorf("expected compile error for %q", src)
		}
	}
}

func TestCompileProcurement(t *testing.T) {
	prog := MustCompile(qdl.ProcurementApp, DefaultOptions())
	if len(prog.QueuePlans["crm"].Rules) != 2 { // newOfferRequest, confirmOrder
		t.Fatalf("crm rules: %d", len(prog.QueuePlans["crm"].Rules))
	}
	if len(prog.SlicePlans["requestMsgs"].Rules) != 2 { // joinOrder, cleanupRequest
		t.Fatalf("requestMsgs rules: %d", len(prog.SlicePlans["requestMsgs"].Rules))
	}
	// newOfferRequest is dispatchable on offerRequest.
	var newOffer *Rule
	for _, r := range prog.QueuePlans["crm"].Rules {
		if r.Name == "newOfferRequest" {
			newOffer = r
		}
	}
	if newOffer == nil || newOffer.Trigger != "offerRequest" {
		t.Fatalf("newOfferRequest trigger: %+v", newOffer)
	}
}
