// Package rule implements the Demaq rule compiler (paper Sec. 4.4.1).
//
// On deployment it turns a parsed application (internal/qdl) into an
// executable Program: for each queue and slicing it collects the attached
// rules, rewrites their bodies (defaulting context-dependent functions like
// qs:queue(), inlining fixed properties like view merging), statically
// checks them, and builds a combined per-queue plan. The plan optionally
// carries a condition-dispatch index in the spirit of XML filtering: rules
// whose condition requires the presence of a specific element are only
// evaluated when the triggering message contains that element (experiment
// E4 measures the effect).
package rule

import (
	"fmt"

	"demaq/internal/property"
	"demaq/internal/qdl"
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xpath"
	"demaq/internal/xquery"
)

// Options control the compiler's optimizations (E4 ablation knobs).
type Options struct {
	// Dispatch builds the condition-dispatch index (element triggers and
	// property prefilters).
	Dispatch bool
	// InlineFixedProps rewrites qs:property("p") for fixed string
	// properties into the property's defining expression (view merging).
	InlineFixedProps bool
	// Compile lowers rule bodies and property expressions to the xquery
	// compiled backend; disabled they run on the reference AST interpreter.
	Compile bool
}

// DefaultOptions enables all optimizations.
func DefaultOptions() Options {
	return Options{Dispatch: true, InlineFixedProps: true, Compile: true}
}

// PropPred is a necessary property condition of a rule: the rule can only
// fire when the message property Name, if present, equals Value. It is
// checked against the already-materialized property map, before the
// message document is touched.
type PropPred struct {
	Name  string
	Value string
}

// AccessPath is the planner's choice of how dispatch establishes a rule's
// property prefilter (E17): probing the message's materialized property map
// one message at a time, or answering the whole claimed batch with range
// scans of the message store's (property, value) secondary index.
type AccessPath uint8

const (
	// AccessScan: no property prefilter; the rule is evaluated for every
	// message (element triggers still apply).
	AccessScan AccessPath = iota
	// AccessPropFilter: check PropPreds against the property map per
	// message.
	AccessPropFilter
	// AccessIndexProbe: the batch executor may resolve PropPreds for all
	// claimed messages at once by probing the secondary index over the
	// batch's id window; per-message propMatch remains the fallback for
	// messages the probe did not cover.
	AccessIndexProbe
)

// Rule is one compiled rule.
type Rule struct {
	Name       string
	Target     string // queue or slicing name
	OnSlicing  bool
	ErrorQueue string
	Body       *xquery.Compiled
	// Trigger is the local element name whose presence in the message is a
	// necessary condition for the rule to produce updates; "" means the
	// rule must always be evaluated.
	Trigger string
	// PropPreds are cheap property equality prefilters (see PropPred).
	PropPreds []PropPred
	// Access is the planner-chosen prefilter strategy (see AccessPath).
	Access AccessPath
	// Order is the declaration position, preserved when combining plans.
	Order int
}

// propMatch reports whether the property prefilters admit a message with
// the given properties. An absent property admits the rule: only a present,
// different value proves the condition false.
func (r *Rule) propMatch(props map[string]xdm.Value) bool {
	for _, pp := range r.PropPreds {
		if v, ok := props[pp.Name]; ok &&
			(v.T == xdm.TypeString || v.T == xdm.TypeUntyped) && v.StringValue() != pp.Value {
			return false
		}
	}
	return true
}

// Plan is the combined execution plan of one queue or slicing: all attached
// rules in declaration order, with cached dispatch capabilities.
type Plan struct {
	Target    string
	OnSlicing bool
	Rules     []*Rule
	// hasTriggers / hasPropPreds cache whether any rule carries an element
	// trigger / a property prefilter, enabling the no-dispatch fast path.
	hasTriggers  bool
	hasPropPreds bool
	// probes are the posting lists backing AccessIndexProbe rules.
	probes []IndexProbe
}

// IndexProbe names the (property, value) posting list whose range scan
// answers the prefilter of one rule (Plan.Rules[Rule]) during batch
// dispatch. A rule with several predicates contributes several probes; its
// mask bit is set only when all of them hit.
type IndexProbe struct {
	Rule        int
	Name, Value string
}

// IndexProbes returns the plan's posting-list probes, in rule order.
func (p *Plan) IndexProbes() []IndexProbe { return p.probes }

// IndexDispatchable reports whether batch dispatch may resolve this plan's
// property prefilters through index probes: at least one rule chose
// AccessIndexProbe and the rule count fits the uint64 probe mask.
func (p *Plan) IndexDispatchable() bool {
	return len(p.probes) > 0 && len(p.Rules) <= 64
}

// planAccess assigns each rule its access path. Index probes are chosen for
// every prefiltered rule when the plan fits the probe mask; past 64 rules
// the per-message map check stays in place.
func (p *Plan) planAccess() {
	wide := len(p.Rules) > 64
	for i, r := range p.Rules {
		switch {
		case len(r.PropPreds) == 0:
			r.Access = AccessScan
		case wide:
			r.Access = AccessPropFilter
		default:
			r.Access = AccessIndexProbe
			for _, pp := range r.PropPreds {
				p.probes = append(p.probes, IndexProbe{Rule: i, Name: pp.Name, Value: pp.Value})
			}
		}
	}
}

// Program is a fully compiled application.
type Program struct {
	App        *qdl.Application
	Properties *property.Manager
	QueuePlans map[string]*Plan
	SlicePlans map[string]*Plan
	// SlicingProps maps slicing name → property name.
	SlicingProps map[string]string
	opts         Options
}

// Compile deploys an application.
func Compile(app *qdl.Application, opts Options) (*Program, error) {
	prog := &Program{
		App:          app,
		Properties:   property.NewManager(),
		QueuePlans:   map[string]*Plan{},
		SlicePlans:   map[string]*Plan{},
		SlicingProps: map[string]string{},
		opts:         opts,
	}
	queues := map[string]*qdl.QueueDecl{}
	for _, q := range app.Queues {
		if _, dup := queues[q.Name]; dup {
			return nil, fmt.Errorf("rule: queue %q declared twice", q.Name)
		}
		queues[q.Name] = q
		prog.QueuePlans[q.Name] = &Plan{Target: q.Name}
	}
	for _, q := range app.Queues {
		if q.ErrorQueue != "" {
			if _, ok := queues[q.ErrorQueue]; !ok {
				return nil, fmt.Errorf("rule: queue %q: unknown error queue %q", q.Name, q.ErrorQueue)
			}
		}
	}

	// Properties: compile value expressions per queue.
	for _, pd := range app.Properties {
		def := &property.Def{
			Name: pd.Name, Type: pd.Type,
			Inherited: pd.Inherited, Fixed: pd.Fixed,
			PerQueue: map[string]*xquery.Compiled{},
		}
		for _, b := range pd.Bindings {
			compiled, err := xquery.Compile(b.Value, xquery.CompileOptions{NoProgram: !opts.Compile})
			if err != nil {
				return nil, fmt.Errorf("rule: property %q: %v", pd.Name, err)
			}
			if compiled.Updating() {
				return nil, fmt.Errorf("rule: property %q: value expression must not be updating", pd.Name)
			}
			for _, q := range b.Queues {
				if _, ok := queues[q]; !ok {
					return nil, fmt.Errorf("rule: property %q: unknown queue %q", pd.Name, q)
				}
				if _, dup := def.PerQueue[q]; dup {
					return nil, fmt.Errorf("rule: property %q: queue %q bound twice", pd.Name, q)
				}
				def.PerQueue[q] = compiled
			}
		}
		if err := prog.Properties.Define(def); err != nil {
			return nil, fmt.Errorf("rule: %v", err)
		}
	}

	// Slicings.
	for _, sd := range app.Slicings {
		if _, ok := prog.Properties.Def(sd.Property); !ok {
			return nil, fmt.Errorf("rule: slicing %q: unknown property %q", sd.Name, sd.Property)
		}
		if _, dup := prog.SlicingProps[sd.Name]; dup {
			return nil, fmt.Errorf("rule: slicing %q declared twice", sd.Name)
		}
		prog.SlicingProps[sd.Name] = sd.Property
		prog.SlicePlans[sd.Name] = &Plan{Target: sd.Name, OnSlicing: true}
	}

	// Rules.
	for i, rd := range app.Rules {
		onSlicing := false
		var plan *Plan
		if p, ok := prog.QueuePlans[rd.Target]; ok {
			plan = p
		} else if p, ok := prog.SlicePlans[rd.Target]; ok {
			plan = p
			onSlicing = true
		} else {
			return nil, fmt.Errorf("rule: %q targets unknown queue or slicing %q", rd.Name, rd.Target)
		}
		if rd.ErrorQueue != "" {
			if _, ok := queues[rd.ErrorQueue]; !ok {
				return nil, fmt.Errorf("rule: %q: unknown error queue %q", rd.Name, rd.ErrorQueue)
			}
		}
		body := rd.Body
		// Property prefilters are read off the original body: the
		// view-merging rewrite below may replace the qs:property() calls
		// they are derived from.
		var propPreds []PropPred
		if opts.Dispatch && !onSlicing {
			propPreds = analyzePropPreds(body, prog)
		}
		if !onSlicing {
			body = rewrite(body, prog, rd.Target)
		}
		compiled, err := xquery.Compile(body, xquery.CompileOptions{
			AllowSlice: onSlicing, NoProgram: !opts.Compile,
		})
		if err != nil {
			return nil, fmt.Errorf("rule: %q: %v", rd.Name, err)
		}
		r := &Rule{
			Name: rd.Name, Target: rd.Target, OnSlicing: onSlicing,
			ErrorQueue: rd.ErrorQueue, Body: compiled, Order: i,
			PropPreds: propPreds,
		}
		if opts.Dispatch {
			r.Trigger = analyzeTrigger(body)
		}
		plan.Rules = append(plan.Rules, r)
	}

	// Validate enqueue targets inside rule bodies.
	for _, plans := range []map[string]*Plan{prog.QueuePlans, prog.SlicePlans} {
		for _, plan := range plans {
			for _, r := range plan.Rules {
				if err := checkEnqueueTargets(r.Body.AST(), queues); err != nil {
					return nil, fmt.Errorf("rule: %q: %v", r.Name, err)
				}
			}
		}
	}

	// Cache dispatch capabilities per plan, then let the planner pick each
	// rule's access path (only queue plans dispatch on properties; slice
	// plans never carry PropPreds).
	for _, plans := range []map[string]*Plan{prog.QueuePlans, prog.SlicePlans} {
		for _, plan := range plans {
			for _, r := range plan.Rules {
				if r.Trigger != "" {
					plan.hasTriggers = true
				}
				if len(r.PropPreds) > 0 {
					plan.hasPropPreds = true
				}
			}
			plan.planAccess()
		}
	}
	return prog, nil
}

// MustCompile compiles source text or panics; for tests and fixtures.
func MustCompile(src string, opts Options) *Program {
	app, err := qdl.Parse(src)
	if err != nil {
		panic(err)
	}
	prog, err := Compile(app, opts)
	if err != nil {
		panic(err)
	}
	return prog
}

// RulesFor selects the rules of the plan that must be evaluated for a
// message containing the given element names, in declaration order. With
// dispatch disabled (or for rules without an analyzable trigger) every rule
// is returned — the canonical plan of Sec. 4.4.1.
func (p *Plan) RulesFor(elementNames map[string]bool) []*Rule {
	return p.Select(nil, func() map[string]bool { return elementNames })
}

// Select returns the rules to evaluate for a message, in declaration
// order, applying the two dispatch prefilters: property equality checks
// against the already-materialized property map first, then element
// triggers against the document's element names. names is invoked lazily,
// only when a property-surviving rule actually carries an element trigger —
// a rule dispatched away on properties never touches the document.
func (p *Plan) Select(props map[string]xdm.Value, names func() map[string]bool) []*Rule {
	if !p.hasTriggers && (!p.hasPropPreds || len(props) == 0) {
		return p.Rules
	}
	var nm map[string]bool
	sel := make([]*Rule, 0, len(p.Rules))
	for _, r := range p.Rules {
		if len(props) > 0 && !r.propMatch(props) {
			continue
		}
		if r.Trigger != "" {
			if nm == nil {
				nm = names()
			}
			if !nm[r.Trigger] {
				continue
			}
		}
		sel = append(sel, r)
	}
	return sel
}

// SelectIndexed is Select with precomputed probe results: bit i of matched
// set means the batch index probe proved message membership in every
// posting list of Rules[i]'s predicates — propMatch is then true by
// construction and is skipped. An unset bit is ambiguous (the property may
// be absent, which admits the rule), so it falls back to the per-message
// map check; the two paths therefore select exactly the same rules, which
// the differential tests pin.
func (p *Plan) SelectIndexed(props map[string]xdm.Value, matched uint64, names func() map[string]bool) []*Rule {
	if !p.hasTriggers && (!p.hasPropPreds || len(props) == 0) {
		return p.Rules
	}
	var nm map[string]bool
	sel := make([]*Rule, 0, len(p.Rules))
	for i, r := range p.Rules {
		probed := r.Access == AccessIndexProbe && matched&(1<<uint(i)) != 0
		if !probed && len(props) > 0 && !r.propMatch(props) {
			continue
		}
		if r.Trigger != "" {
			if nm == nil {
				nm = names()
			}
			if !nm[r.Trigger] {
				continue
			}
		}
		sel = append(sel, r)
	}
	return sel
}

// ElementNames collects the distinct local element names of a document,
// the dispatch key set (one DOM walk per message).
func ElementNames(doc *xmldom.Node) map[string]bool {
	out := map[string]bool{}
	var walk func(n *xmldom.Node)
	walk = func(n *xmldom.Node) {
		if n.Kind == xmldom.ElementNode {
			out[n.Name.Local] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(doc)
	return out
}

// analyzeTrigger extracts a necessary element-presence condition from a
// rule body of the form "if (C) then T" with no else branch: if C is a
// rooted path (or a conjunction containing one), the name of its first
// named step must occur in the message for the rule to fire.
func analyzeTrigger(body xpath.Expr) string {
	ife, ok := body.(*xpath.IfExpr)
	if !ok || ife.Else != nil {
		return ""
	}
	return pathTrigger(ife.Cond)
}

func pathTrigger(e xpath.Expr) string {
	switch x := e.(type) {
	case *xpath.PathExpr:
		if !x.Rooted || x.Start != nil {
			return ""
		}
		for _, st := range x.Steps {
			if st.Test.Kind == xpath.TestName && (st.Axis == xpath.AxisChild || st.Axis == xpath.AxisDescendant) {
				return st.Test.Name.Local
			}
			if st.Axis != xpath.AxisDescendantOrSelf || st.Test.Kind != xpath.TestNode {
				return ""
			}
		}
		return ""
	case *xpath.BinaryExpr:
		if x.Op == xpath.BinAnd {
			// Any conjunct is a necessary condition; prefer the left.
			if t := pathTrigger(x.Left); t != "" {
				return t
			}
			return pathTrigger(x.Right)
		}
	case *xpath.FuncCall:
		if x.Prefix == "" && x.Local == "exists" && len(x.Args) == 1 {
			return pathTrigger(x.Args[0])
		}
	case *xpath.ComparisonExpr:
		// "//a = 5": presence of a is necessary for a general comparison
		// against a non-empty literal.
		if x.General {
			if t := pathTrigger(x.Left); t != "" {
				if _, isLit := x.Right.(*xpath.Literal); isLit {
					return t
				}
			}
		}
	}
	return ""
}

// analyzePropPreds extracts a necessary property-equality condition from a
// rule body of the form "if (C) then T" with no else branch: when the
// LEFTMOST conjunct of C is qs:property("p") = "literal" (either operand
// order) over a string-typed property, the rule cannot fire unless the
// message's p property, when present, equals the literal. The engine checks
// the predicate against the property map before any document access.
//
// Only the leftmost conjunct is sound to prefilter on: "and" evaluates
// left-to-right with short-circuiting, so when the leftmost conjunct is
// false the interpreter never evaluates the rest of the condition — a
// later conjunct that would raise a dynamic error (and route the message
// to an error queue, Sec. 3.6) is unreachable, and skipping the rule is
// observationally identical. A property test in any other position may be
// preceded by an erroring conjunct, where skipping would swallow the
// error-queue message.
func analyzePropPreds(body xpath.Expr, prog *Program) []PropPred {
	ife, ok := body.(*xpath.IfExpr)
	if !ok || ife.Else != nil {
		return nil
	}
	leftmost := ife.Cond
	for {
		b, ok := leftmost.(*xpath.BinaryExpr)
		if !ok || b.Op != xpath.BinAnd {
			break
		}
		leftmost = b.Left
	}
	if pp, ok := propEquality(leftmost, prog); ok {
		return []PropPred{pp}
	}
	return nil
}

// propEquality matches qs:property("p") = "lit" (or the mirrored form) for
// a declared string-typed property.
func propEquality(e xpath.Expr, prog *Program) (PropPred, bool) {
	cmp, ok := e.(*xpath.ComparisonExpr)
	if !ok || !cmp.General || cmp.Op != xdm.OpEq {
		return PropPred{}, false
	}
	name, ok := propCallName(cmp.Left, prog)
	lit, lok := stringLiteral(cmp.Right)
	if !ok || !lok {
		name, ok = propCallName(cmp.Right, prog)
		lit, lok = stringLiteral(cmp.Left)
		if !ok || !lok {
			return PropPred{}, false
		}
	}
	return PropPred{Name: name, Value: lit}, true
}

func propCallName(e xpath.Expr, prog *Program) (string, bool) {
	fc, ok := e.(*xpath.FuncCall)
	if !ok || fc.Prefix != "qs" || fc.Local != "property" || len(fc.Args) != 1 {
		return "", false
	}
	name, ok := stringLiteral(fc.Args[0])
	if !ok {
		return "", false
	}
	def, ok := prog.Properties.Def(name)
	if !ok || def.Type != xdm.TypeString {
		return "", false
	}
	// A property the view-merging rewrite will inline is off limits: the
	// deployed body then re-evaluates the defining expression against the
	// document, which can error (e.g. string() of a multi-node match)
	// where the materialized property map cannot — skipping the rule
	// would silently swallow the Sec. 3.6 error-queue message. Only the
	// qs:property() runtime lookup is guaranteed to agree with the map.
	if def.Fixed && prog.opts.InlineFixedProps {
		return "", false
	}
	return name, true
}

func stringLiteral(e xpath.Expr) (string, bool) {
	lit, ok := e.(*xpath.Literal)
	if !ok || lit.Value.T != xdm.TypeString {
		return "", false
	}
	return lit.Value.S, true
}

// checkEnqueueTargets verifies statically that every "do enqueue ... into
// Q" names a declared queue.
func checkEnqueueTargets(e xpath.Expr, queues map[string]*qdl.QueueDecl) error {
	var visit func(e xpath.Expr) error
	visit = func(e xpath.Expr) error {
		switch x := e.(type) {
		case nil:
			return nil
		case *xpath.EnqueueExpr:
			if _, ok := queues[x.Queue]; !ok {
				return fmt.Errorf("enqueue into unknown queue %q", x.Queue)
			}
			if err := visit(x.What); err != nil {
				return err
			}
			for _, p := range x.Props {
				if err := visit(p.Value); err != nil {
					return err
				}
			}
		case *xpath.SequenceExpr:
			for _, it := range x.Items {
				if err := visit(it); err != nil {
					return err
				}
			}
		case *xpath.FLWORExpr:
			for _, cl := range x.Clauses {
				if err := visit(cl.Expr); err != nil {
					return err
				}
			}
			if err := visit(x.Where); err != nil {
				return err
			}
			for _, os := range x.OrderBy {
				if err := visit(os.Key); err != nil {
					return err
				}
			}
			return visit(x.Return)
		case *xpath.QuantifiedExpr:
			for _, b := range x.Bindings {
				if err := visit(b.Expr); err != nil {
					return err
				}
			}
			return visit(x.Satisfies)
		case *xpath.IfExpr:
			if err := visit(x.Cond); err != nil {
				return err
			}
			if err := visit(x.Then); err != nil {
				return err
			}
			return visit(x.Else)
		case *xpath.BinaryExpr:
			if err := visit(x.Left); err != nil {
				return err
			}
			return visit(x.Right)
		case *xpath.ComparisonExpr:
			if err := visit(x.Left); err != nil {
				return err
			}
			return visit(x.Right)
		case *xpath.UnaryExpr:
			return visit(x.Operand)
		case *xpath.PathExpr:
			if err := visit(x.Start); err != nil {
				return err
			}
			for _, st := range x.Steps {
				if st.Primary != nil {
					if err := visit(st.Primary); err != nil {
						return err
					}
				}
				for _, pr := range st.Preds {
					if err := visit(pr); err != nil {
						return err
					}
				}
			}
		case *xpath.FilterExpr:
			if err := visit(x.Primary); err != nil {
				return err
			}
			for _, pr := range x.Preds {
				if err := visit(pr); err != nil {
					return err
				}
			}
		case *xpath.FuncCall:
			for _, a := range x.Args {
				if err := visit(a); err != nil {
					return err
				}
			}
		case *xpath.ElementConstructor:
			for _, a := range x.Attrs {
				for _, part := range a.Parts {
					if err := visit(part); err != nil {
						return err
					}
				}
			}
			for _, c := range x.Content {
				if err := visit(c); err != nil {
					return err
				}
			}
		case *xpath.ResetExpr:
			return visit(x.Key)
		}
		return nil
	}
	return visit(e)
}
