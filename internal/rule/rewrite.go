package rule

import (
	"demaq/internal/xdm"
	"demaq/internal/xpath"
)

// rewrite applies the deployment-time rewrites of Sec. 4.4.1 to a rule body
// attached to a queue:
//
//   - qs:queue() without arguments receives the rule's queue name, removing
//     the runtime context dependency ("supplying default parameters to
//     functions which depend on the current queue");
//   - qs:property("p") for a fixed property defined on the queue is
//     replaced by the property's defining expression, wrapped in the
//     property type's constructor — the "view merging" style inlining of
//     fixed properties (Sec. 2.2/4.4.1). Only fixed properties qualify:
//     non-fixed ones may carry explicit or inherited values that differ
//     from the computed expression.
//
// Rewrites mutate argument lists and produce shared subtrees; evaluation
// never mutates ASTs, so sharing is safe.
func rewrite(body xpath.Expr, prog *Program, queue string) xpath.Expr {
	return rewriteExpr(body, func(e xpath.Expr) xpath.Expr {
		fc, ok := e.(*xpath.FuncCall)
		if !ok || fc.Prefix != "qs" {
			return e
		}
		switch fc.Local {
		case "queue":
			if len(fc.Args) == 0 {
				fc.Args = []xpath.Expr{xpath.NewLiteral(xdm.NewString(queue))}
			}
		case "property":
			if !prog.opts.InlineFixedProps || len(fc.Args) != 1 {
				return e
			}
			lit, ok := fc.Args[0].(*xpath.Literal)
			if !ok || lit.Value.T != xdm.TypeString {
				return e
			}
			def, ok := prog.Properties.Def(lit.Value.S)
			if !ok || !def.Fixed || def.Type != xdm.TypeString {
				return e
			}
			valueExpr := findBindingExpr(prog, lit.Value.S, queue)
			if valueExpr == nil {
				return e
			}
			return &xpath.FuncCall{Local: "string", Args: []xpath.Expr{valueExpr}}
		}
		return e
	})
}

// findBindingExpr returns the raw value expression of property prop on the
// given queue.
func findBindingExpr(prog *Program, prop, queue string) xpath.Expr {
	for _, pd := range prog.App.Properties {
		if pd.Name != prop {
			continue
		}
		for _, b := range pd.Bindings {
			for _, q := range b.Queues {
				if q == queue {
					return b.Value
				}
			}
		}
	}
	return nil
}

// rewriteExpr applies f bottom-up over the expression tree, replacing nodes
// with f's result.
func rewriteExpr(e xpath.Expr, f func(xpath.Expr) xpath.Expr) xpath.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *xpath.SequenceExpr:
		for i := range x.Items {
			x.Items[i] = rewriteExpr(x.Items[i], f)
		}
	case *xpath.FLWORExpr:
		for i := range x.Clauses {
			x.Clauses[i].Expr = rewriteExpr(x.Clauses[i].Expr, f)
		}
		x.Where = rewriteExpr(x.Where, f)
		for i := range x.OrderBy {
			x.OrderBy[i].Key = rewriteExpr(x.OrderBy[i].Key, f)
		}
		x.Return = rewriteExpr(x.Return, f)
	case *xpath.QuantifiedExpr:
		for i := range x.Bindings {
			x.Bindings[i].Expr = rewriteExpr(x.Bindings[i].Expr, f)
		}
		x.Satisfies = rewriteExpr(x.Satisfies, f)
	case *xpath.IfExpr:
		x.Cond = rewriteExpr(x.Cond, f)
		x.Then = rewriteExpr(x.Then, f)
		x.Else = rewriteExpr(x.Else, f)
	case *xpath.BinaryExpr:
		x.Left = rewriteExpr(x.Left, f)
		x.Right = rewriteExpr(x.Right, f)
	case *xpath.ComparisonExpr:
		x.Left = rewriteExpr(x.Left, f)
		x.Right = rewriteExpr(x.Right, f)
	case *xpath.UnaryExpr:
		x.Operand = rewriteExpr(x.Operand, f)
	case *xpath.PathExpr:
		x.Start = rewriteExpr(x.Start, f)
		for i := range x.Steps {
			if x.Steps[i].Primary != nil {
				x.Steps[i].Primary = rewriteExpr(x.Steps[i].Primary, f)
			}
			for j := range x.Steps[i].Preds {
				x.Steps[i].Preds[j] = rewriteExpr(x.Steps[i].Preds[j], f)
			}
		}
	case *xpath.FilterExpr:
		x.Primary = rewriteExpr(x.Primary, f)
		for i := range x.Preds {
			x.Preds[i] = rewriteExpr(x.Preds[i], f)
		}
	case *xpath.FuncCall:
		for i := range x.Args {
			x.Args[i] = rewriteExpr(x.Args[i], f)
		}
	case *xpath.ElementConstructor:
		for i := range x.Attrs {
			for j := range x.Attrs[i].Parts {
				x.Attrs[i].Parts[j] = rewriteExpr(x.Attrs[i].Parts[j], f)
			}
		}
		for i := range x.Content {
			x.Content[i] = rewriteExpr(x.Content[i], f)
		}
	case *xpath.EnqueueExpr:
		x.What = rewriteExpr(x.What, f)
		for i := range x.Props {
			x.Props[i].Value = rewriteExpr(x.Props[i].Value, f)
		}
	case *xpath.ResetExpr:
		x.Key = rewriteExpr(x.Key, f)
	}
	return f(e)
}
