// Package schema implements the XML Schema subset Demaq uses to validate
// messages entering a queue (paper Sec. 2.1.1: "specifying a schema all
// queued messages have to conform to"). The subset covers the structural
// core of XSD: global element declarations, complex types with xs:sequence
// content (nested elements with minOccurs/maxOccurs), attributes with
// use="required", and the atomic simple types of the property system for
// text content validation.
package schema

import (
	"fmt"
	"strconv"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

const xsdNamespace = "http://www.w3.org/2001/XMLSchema"

// Schema is a compiled schema: its global element declarations.
type Schema struct {
	Elements map[string]*Element
}

// Element is one element declaration.
type Element struct {
	Name      string
	Type      xdm.Type // simple content type; TypeUntyped = unconstrained
	Complex   *ComplexType
	MinOccurs int
	MaxOccurs int // -1 = unbounded
}

// ComplexType is a sequence content model with attributes.
type ComplexType struct {
	Sequence   []*Element
	Attributes []*Attribute
}

// Attribute is an attribute declaration.
type Attribute struct {
	Name     string
	Type     xdm.Type
	Required bool
}

// ValidationError describes a schema violation.
type ValidationError struct {
	Path string
	Msg  string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("schema: %s: %s", e.Path, e.Msg)
}

func verrf(path, format string, args ...any) error {
	return &ValidationError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Parse compiles a schema document.
func Parse(src string) (*Schema, error) {
	doc, err := xmldom.ParseString(src)
	if err != nil {
		return nil, fmt.Errorf("schema: %w", err)
	}
	root := doc.Root()
	if root == nil || root.Name.Local != "schema" {
		return nil, fmt.Errorf("schema: document element must be xs:schema")
	}
	s := &Schema{Elements: map[string]*Element{}}
	for _, c := range root.ChildElements() {
		if c.Name.Local != "element" {
			continue // annotations etc. are ignored
		}
		el, err := parseElement(c)
		if err != nil {
			return nil, err
		}
		s.Elements[el.Name] = el
	}
	if len(s.Elements) == 0 {
		return nil, fmt.Errorf("schema: no global element declarations")
	}
	return s, nil
}

// MustParse parses or panics; for fixtures.
func MustParse(src string) *Schema {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func parseElement(n *xmldom.Node) (*Element, error) {
	name, ok := n.Attr("name")
	if !ok {
		return nil, fmt.Errorf("schema: element declaration without name")
	}
	el := &Element{Name: name, Type: xdm.TypeUntyped, MinOccurs: 1, MaxOccurs: 1}
	if v, ok := n.Attr("minOccurs"); ok {
		mo, err := strconv.Atoi(v)
		if err != nil || mo < 0 {
			return nil, fmt.Errorf("schema: element %q: bad minOccurs %q", name, v)
		}
		el.MinOccurs = mo
	}
	if v, ok := n.Attr("maxOccurs"); ok {
		if v == "unbounded" {
			el.MaxOccurs = -1
		} else {
			mo, err := strconv.Atoi(v)
			if err != nil || mo < 0 {
				return nil, fmt.Errorf("schema: element %q: bad maxOccurs %q", name, v)
			}
			el.MaxOccurs = mo
		}
	}
	if v, ok := n.Attr("type"); ok {
		t, known := xdm.TypeByName(v)
		if !known {
			return nil, fmt.Errorf("schema: element %q: unsupported type %q", name, v)
		}
		el.Type = t
		return el, nil
	}
	for _, c := range n.ChildElements() {
		if c.Name.Local != "complexType" {
			continue
		}
		ct := &ComplexType{}
		for _, cc := range c.ChildElements() {
			switch cc.Name.Local {
			case "sequence":
				for _, se := range cc.ChildElements() {
					if se.Name.Local != "element" {
						continue
					}
					child, err := parseElement(se)
					if err != nil {
						return nil, err
					}
					ct.Sequence = append(ct.Sequence, child)
				}
			case "attribute":
				aname, ok := cc.Attr("name")
				if !ok {
					return nil, fmt.Errorf("schema: attribute without name in %q", name)
				}
				attr := &Attribute{Name: aname, Type: xdm.TypeUntyped}
				if v, ok := cc.Attr("type"); ok {
					t, known := xdm.TypeByName(v)
					if !known {
						return nil, fmt.Errorf("schema: attribute %q: unsupported type %q", aname, v)
					}
					attr.Type = t
				}
				if v, ok := cc.Attr("use"); ok && v == "required" {
					attr.Required = true
				}
				ct.Attributes = append(ct.Attributes, attr)
			}
		}
		el.Complex = ct
	}
	return el, nil
}

// Validate checks a message document against the schema: its document
// element must match one of the global declarations.
func (s *Schema) Validate(doc *xmldom.Node) error {
	root := doc.Root()
	if root == nil {
		return verrf("/", "no document element")
	}
	decl, ok := s.Elements[root.Name.Local]
	if !ok {
		return verrf("/"+root.Name.Local, "element not declared in schema")
	}
	return validateElement(root, decl, "/"+root.Name.Local)
}

func validateElement(n *xmldom.Node, decl *Element, path string) error {
	if decl.Complex == nil {
		// Simple content: no element children; typed text.
		for _, c := range n.ChildElements() {
			return verrf(path, "unexpected child element <%s> in simple content", c.Name.Local)
		}
		if decl.Type != xdm.TypeUntyped && decl.Type != xdm.TypeString {
			if _, err := xdm.NewString(n.StringValue()).Cast(decl.Type); err != nil {
				return verrf(path, "text %q is not a valid %s", n.StringValue(), decl.Type)
			}
		}
		return nil
	}
	// Attributes.
	for _, ad := range decl.Complex.Attributes {
		v, present := n.Attr(ad.Name)
		if !present {
			if ad.Required {
				return verrf(path, "missing required attribute %q", ad.Name)
			}
			continue
		}
		if ad.Type != xdm.TypeUntyped && ad.Type != xdm.TypeString {
			if _, err := xdm.NewString(v).Cast(ad.Type); err != nil {
				return verrf(path, "attribute %q value %q is not a valid %s", ad.Name, v, ad.Type)
			}
		}
	}
	// Sequence content model with occurrence counting.
	children := n.ChildElements()
	ci := 0
	for _, part := range decl.Complex.Sequence {
		count := 0
		for ci < len(children) && children[ci].Name.Local == part.Name {
			if err := validateElement(children[ci], part, fmt.Sprintf("%s/%s[%d]", path, part.Name, count+1)); err != nil {
				return err
			}
			ci++
			count++
			if part.MaxOccurs >= 0 && count > part.MaxOccurs {
				return verrf(path, "element <%s> occurs more than %d times", part.Name, part.MaxOccurs)
			}
		}
		if count < part.MinOccurs {
			return verrf(path, "element <%s> occurs %d times, requires at least %d", part.Name, count, part.MinOccurs)
		}
	}
	if ci < len(children) {
		return verrf(path, "unexpected element <%s>", children[ci].Name.Local)
	}
	return nil
}
