package schema

import (
	"testing"

	"demaq/internal/xmldom"
)

const orderSchema = `
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="order">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="orderID" type="xs:integer"/>
        <xs:element name="note" type="xs:string" minOccurs="0"/>
        <xs:element name="item" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="qty" type="xs:integer"/>
            </xs:sequence>
            <xs:attribute name="sku" use="required"/>
            <xs:attribute name="weight" type="xs:decimal"/>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="cancel" type="xs:string"/>
</xs:schema>`

func validate(t *testing.T, s *Schema, doc string) error {
	t.Helper()
	return s.Validate(xmldom.MustParse(doc))
}

func TestValidDocuments(t *testing.T) {
	s := MustParse(orderSchema)
	ok := []string{
		`<order><orderID>1</orderID><item sku="A"><qty>2</qty></item></order>`,
		`<order><orderID>1</orderID><note>hi</note><item sku="A" weight="1.5"><qty>2</qty></item><item sku="B"><qty>1</qty></item></order>`,
		`<cancel>please</cancel>`,
	}
	for _, doc := range ok {
		if err := validate(t, s, doc); err != nil {
			t.Errorf("valid doc rejected: %s: %v", doc, err)
		}
	}
}

func TestInvalidDocuments(t *testing.T) {
	s := MustParse(orderSchema)
	bad := []string{
		`<unknown/>`, // undeclared root
		`<order><item sku="A"><qty>1</qty></item></order>`,                                    // missing orderID
		`<order><orderID>x</orderID><item sku="A"><qty>1</qty></item></order>`,                // bad integer
		`<order><orderID>1</orderID></order>`,                                                 // item minOccurs=1
		`<order><orderID>1</orderID><item><qty>1</qty></item></order>`,                        // missing required attr
		`<order><orderID>1</orderID><item sku="A" weight="heavy"><qty>1</qty></item></order>`, // bad decimal attr
		`<order><orderID>1</orderID><item sku="A"><qty>1</qty><extra/></item></order>`,        // unexpected element
		`<order><note>hi</note><orderID>1</orderID><item sku="A"><qty>1</qty></item></order>`, // sequence order
		`<cancel><child/></cancel>`,                                                           // simple content with child
	}
	for _, doc := range bad {
		if err := validate(t, s, doc); err == nil {
			t.Errorf("invalid doc accepted: %s", doc)
		} else if _, ok := err.(*ValidationError); !ok {
			t.Errorf("error type for %s: %T", doc, err)
		}
	}
}

func TestOccurrenceBounds(t *testing.T) {
	s := MustParse(`
		<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
		  <xs:element name="l">
		    <xs:complexType><xs:sequence>
		      <xs:element name="e" minOccurs="2" maxOccurs="3"/>
		    </xs:sequence></xs:complexType>
		  </xs:element>
		</xs:schema>`)
	if err := validate(t, s, `<l><e/><e/></l>`); err != nil {
		t.Errorf("2 occurrences: %v", err)
	}
	if err := validate(t, s, `<l><e/></l>`); err == nil {
		t.Error("1 occurrence should fail minOccurs=2")
	}
	if err := validate(t, s, `<l><e/><e/><e/><e/></l>`); err == nil {
		t.Error("4 occurrences should fail maxOccurs=3")
	}
}

func TestSchemaParseErrors(t *testing.T) {
	bad := []string{
		`<notschema/>`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"/>`, // no elements
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element/></xs:schema>`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="a" type="xs:noSuch"/></xs:schema>`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="a" minOccurs="-1"/></xs:schema>`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %s", src)
		}
	}
}
