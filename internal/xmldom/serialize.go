package xmldom

import (
	"strings"
)

// Serialize renders the subtree rooted at n back to XML text. Namespace
// declarations are re-synthesized from the expanded names: a binding is
// emitted on the outermost element that needs it. The output of
// Serialize(Parse(x)) is structurally equal to x (attribute order and
// namespace prefix choices are preserved where possible).
func Serialize(n *Node) string {
	return string(AppendSerialize(nil, n))
}

// AppendSerialize appends the XML text of the subtree rooted at n to dst
// and returns the extended buffer. It is the allocation-free core of
// Serialize: callers on hot paths (message persistence, gateway sends)
// hand it a pooled or pre-sized buffer and serialization of a
// namespace-normalized tree performs no allocation beyond buffer growth.
func AppendSerialize(dst []byte, n *Node) []byte {
	s := serializer{buf: dst}
	s.node(n, nsScope{})
	return s.buf
}

// nsScope tracks prefix→URI bindings in scope during serialization.
type nsScope struct {
	bindings []nsBinding
}

func (s nsScope) lookup(prefix string) (string, bool) {
	if prefix == "xml" {
		return xmlNamespace, true
	}
	for i := len(s.bindings) - 1; i >= 0; i-- {
		if s.bindings[i].prefix == prefix {
			return s.bindings[i].uri, true
		}
	}
	if prefix == "" {
		return "", true
	}
	return "", false
}

func (s nsScope) with(prefix, uri string) nsScope {
	nb := make([]nsBinding, len(s.bindings), len(s.bindings)+1)
	copy(nb, s.bindings)
	return nsScope{bindings: append(nb, nsBinding{prefix: prefix, uri: uri})}
}

type serializer struct {
	buf []byte
}

func (s *serializer) str(v string) { s.buf = append(s.buf, v...) }
func (s *serializer) byte(c byte)  { s.buf = append(s.buf, c) }
func (s *serializer) name(n Name) {
	if n.Prefix != "" {
		s.str(n.Prefix)
		s.byte(':')
	}
	s.str(n.Local)
}

func (s *serializer) node(n *Node, scope nsScope) {
	switch n.Kind {
	case DocumentNode:
		for _, c := range n.Children {
			s.node(c, scope)
		}
	case ElementNode:
		s.element(n, scope)
	case TextNode:
		s.buf = AppendEscapedText(s.buf, n.Data)
	case CommentNode:
		s.str("<!--")
		s.str(n.Data)
		s.str("-->")
	case ProcessingInstructionNode:
		s.str("<?")
		s.str(n.Name.Local)
		if n.Data != "" {
			s.byte(' ')
			s.str(n.Data)
		}
		s.str("?>")
	case AttributeNode:
		// A detached attribute serializes as name="value".
		s.name(n.Name)
		s.str(`="`)
		s.buf = AppendEscapedAttr(s.buf, n.Data)
		s.byte('"')
	}
}

func (s *serializer) element(n *Node, scope nsScope) {
	// Determine which namespace declarations this element must emit.
	type decl struct{ prefix, uri string }
	var decls []decl
	need := func(prefix, uri string) {
		if got, ok := scope.lookup(prefix); ok && got == uri {
			return
		}
		for _, d := range decls {
			if d.prefix == prefix {
				return
			}
		}
		decls = append(decls, decl{prefix, uri})
		scope = scope.with(prefix, uri)
	}
	need(n.Name.Prefix, n.Name.Space)
	for _, a := range n.Attrs {
		if a.Name.Space != "" {
			need(a.Name.Prefix, a.Name.Space)
		}
	}

	s.byte('<')
	s.name(n.Name)
	for _, d := range decls {
		s.byte(' ')
		if d.prefix == "" {
			s.str("xmlns")
		} else {
			s.str("xmlns:")
			s.str(d.prefix)
		}
		s.str(`="`)
		s.buf = AppendEscapedAttr(s.buf, d.uri)
		s.byte('"')
	}
	for _, a := range n.Attrs {
		s.byte(' ')
		s.name(a.Name)
		s.str(`="`)
		s.buf = AppendEscapedAttr(s.buf, a.Data)
		s.byte('"')
	}
	if len(n.Children) == 0 {
		s.str("/>")
		return
	}
	s.byte('>')
	for _, c := range n.Children {
		s.node(c, scope)
	}
	s.str("</")
	s.name(n.Name)
	s.byte('>')
}

// AppendEscapedText appends s escaped for element content.
func AppendEscapedText(dst []byte, s string) []byte {
	if !strings.ContainsAny(s, "<>&") {
		return append(dst, s...)
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		case '&':
			dst = append(dst, "&amp;"...)
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

// AppendEscapedAttr appends s escaped for a double-quoted attribute value.
func AppendEscapedAttr(dst []byte, s string) []byte {
	if !strings.ContainsAny(s, `<&"`+"\n\t") {
		return append(dst, s...)
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			dst = append(dst, "&lt;"...)
		case '&':
			dst = append(dst, "&amp;"...)
		case '"':
			dst = append(dst, "&quot;"...)
		case '\n':
			dst = append(dst, "&#10;"...)
		case '\t':
			dst = append(dst, "&#9;"...)
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "<>&") {
		return s
	}
	return string(AppendEscapedText(nil, s))
}

// EscapeAttr escapes character data for a double-quoted attribute value.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `<&"`+"\n\t") {
		return s
	}
	return string(AppendEscapedAttr(nil, s))
}
