package xmldom

import (
	"strings"
)

// Serialize renders the subtree rooted at n back to XML text. Namespace
// declarations are re-synthesized from the expanded names: a binding is
// emitted on the outermost element that needs it. The output of
// Serialize(Parse(x)) is structurally equal to x (attribute order and
// namespace prefix choices are preserved where possible).
func Serialize(n *Node) string {
	var sb strings.Builder
	s := serializer{sb: &sb}
	s.node(n, nsScope{})
	return sb.String()
}

// nsScope tracks prefix→URI bindings in scope during serialization.
type nsScope struct {
	bindings []nsBinding
}

func (s nsScope) lookup(prefix string) (string, bool) {
	if prefix == "xml" {
		return xmlNamespace, true
	}
	for i := len(s.bindings) - 1; i >= 0; i-- {
		if s.bindings[i].prefix == prefix {
			return s.bindings[i].uri, true
		}
	}
	if prefix == "" {
		return "", true
	}
	return "", false
}

func (s nsScope) with(prefix, uri string) nsScope {
	nb := make([]nsBinding, len(s.bindings), len(s.bindings)+1)
	copy(nb, s.bindings)
	return nsScope{bindings: append(nb, nsBinding{prefix: prefix, uri: uri})}
}

type serializer struct {
	sb *strings.Builder
}

func (s *serializer) node(n *Node, scope nsScope) {
	switch n.Kind {
	case DocumentNode:
		for _, c := range n.Children {
			s.node(c, scope)
		}
	case ElementNode:
		s.element(n, scope)
	case TextNode:
		s.sb.WriteString(EscapeText(n.Data))
	case CommentNode:
		s.sb.WriteString("<!--")
		s.sb.WriteString(n.Data)
		s.sb.WriteString("-->")
	case ProcessingInstructionNode:
		s.sb.WriteString("<?")
		s.sb.WriteString(n.Name.Local)
		if n.Data != "" {
			s.sb.WriteByte(' ')
			s.sb.WriteString(n.Data)
		}
		s.sb.WriteString("?>")
	case AttributeNode:
		// A detached attribute serializes as name="value".
		s.sb.WriteString(n.Name.String())
		s.sb.WriteString(`="`)
		s.sb.WriteString(EscapeAttr(n.Data))
		s.sb.WriteByte('"')
	}
}

func (s *serializer) element(n *Node, scope nsScope) {
	// Determine which namespace declarations this element must emit.
	type decl struct{ prefix, uri string }
	var decls []decl
	need := func(prefix, uri string) {
		if got, ok := scope.lookup(prefix); ok && got == uri {
			return
		}
		for _, d := range decls {
			if d.prefix == prefix {
				return
			}
		}
		decls = append(decls, decl{prefix, uri})
		scope = scope.with(prefix, uri)
	}
	need(n.Name.Prefix, n.Name.Space)
	for _, a := range n.Attrs {
		if a.Name.Space != "" {
			need(a.Name.Prefix, a.Name.Space)
		}
	}

	s.sb.WriteByte('<')
	s.sb.WriteString(n.Name.String())
	for _, d := range decls {
		s.sb.WriteByte(' ')
		if d.prefix == "" {
			s.sb.WriteString("xmlns")
		} else {
			s.sb.WriteString("xmlns:")
			s.sb.WriteString(d.prefix)
		}
		s.sb.WriteString(`="`)
		s.sb.WriteString(EscapeAttr(d.uri))
		s.sb.WriteByte('"')
	}
	for _, a := range n.Attrs {
		s.sb.WriteByte(' ')
		s.sb.WriteString(a.Name.String())
		s.sb.WriteString(`="`)
		s.sb.WriteString(EscapeAttr(a.Data))
		s.sb.WriteByte('"')
	}
	if len(n.Children) == 0 {
		s.sb.WriteString("/>")
		return
	}
	s.sb.WriteByte('>')
	for _, c := range n.Children {
		s.node(c, scope)
	}
	s.sb.WriteString("</")
	s.sb.WriteString(n.Name.String())
	s.sb.WriteByte('>')
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "<>&") {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '&':
			sb.WriteString("&amp;")
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

// EscapeAttr escapes character data for a double-quoted attribute value.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `<&"`+"\n\t") {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			sb.WriteString("&lt;")
		case '&':
			sb.WriteString("&amp;")
		case '"':
			sb.WriteString("&quot;")
		case '\n':
			sb.WriteString("&#10;")
		case '\t':
			sb.WriteString("&#9;")
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}
