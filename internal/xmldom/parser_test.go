package xmldom

import (
	"strings"
	"testing"
)

func TestParseSimpleElement(t *testing.T) {
	doc, err := ParseString(`<order id="42">hello</order>`)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	if root == nil || root.Name.Local != "order" {
		t.Fatalf("bad root: %+v", root)
	}
	if v, ok := root.Attr("id"); !ok || v != "42" {
		t.Fatalf("attr id = %q, %v", v, ok)
	}
	if got := root.StringValue(); got != "hello" {
		t.Fatalf("string value = %q", got)
	}
}

func TestParseNested(t *testing.T) {
	doc := MustParse(`<a><b>1</b><c><d>2</d></c></a>`)
	root := doc.Root()
	if len(root.ChildElements()) != 2 {
		t.Fatalf("want 2 child elements, got %d", len(root.ChildElements()))
	}
	if doc.StringValue() != "12" {
		t.Fatalf("string value = %q", doc.StringValue())
	}
	d := root.FirstChildElement("c").FirstChildElement("d")
	if d == nil || d.StringValue() != "2" {
		t.Fatalf("navigation failed: %+v", d)
	}
}

func TestParseXMLDeclAndComments(t *testing.T) {
	doc := MustParse("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!-- top --><root><!-- inner -->x</root>")
	root := doc.Root()
	if root == nil || root.StringValue() != "x" {
		t.Fatal("declaration/comment handling broken")
	}
	var comments int
	for _, c := range root.Children {
		if c.Kind == CommentNode {
			comments++
		}
	}
	if comments != 1 {
		t.Fatalf("inner comments = %d", comments)
	}
}

func TestParseEntities(t *testing.T) {
	doc := MustParse(`<t a="&lt;&amp;&quot;">&#65;&#x42;&gt;</t>`)
	root := doc.Root()
	if v, _ := root.Attr("a"); v != `<&"` {
		t.Fatalf("attr = %q", v)
	}
	if root.StringValue() != "AB>" {
		t.Fatalf("text = %q", root.StringValue())
	}
}

func TestParseCDATA(t *testing.T) {
	doc := MustParse(`<t>a<![CDATA[<raw> & stuff]]>b</t>`)
	if got := doc.Root().StringValue(); got != "a<raw> & stuff"+"b" {
		t.Fatalf("got %q", got)
	}
	// CDATA merges with adjacent text into a single text node.
	if n := len(doc.Root().Children); n != 1 {
		t.Fatalf("want 1 merged text node, got %d", n)
	}
}

func TestParseNamespaces(t *testing.T) {
	doc := MustParse(`<a xmlns="urn:one" xmlns:p="urn:two"><p:b c="1" p:d="2"/></a>`)
	root := doc.Root()
	if root.Name.Space != "urn:one" {
		t.Fatalf("default ns = %q", root.Name.Space)
	}
	b := root.ChildElements()[0]
	if b.Name.Space != "urn:two" || b.Name.Local != "b" {
		t.Fatalf("prefixed element = %+v", b.Name)
	}
	// Unprefixed attribute has no namespace even with a default ns in scope.
	if b.Attrs[0].Name.Space != "" {
		t.Fatalf("unprefixed attr ns = %q", b.Attrs[0].Name.Space)
	}
	if b.Attrs[1].Name.Space != "urn:two" {
		t.Fatalf("prefixed attr ns = %q", b.Attrs[1].Name.Space)
	}
}

func TestNamespaceScoping(t *testing.T) {
	doc := MustParse(`<a xmlns:p="urn:outer"><b xmlns:p="urn:inner"><p:c/></b><p:d/></a>`)
	root := doc.Root()
	c := root.ChildElements()[0].ChildElements()[0]
	d := root.ChildElements()[1]
	if c.Name.Space != "urn:inner" {
		t.Fatalf("inner scope = %q", c.Name.Space)
	}
	if d.Name.Space != "urn:outer" {
		t.Fatalf("outer scope restored = %q", d.Name.Space)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                                   // empty
		`<a>`,                                // unterminated
		`<a></b>`,                            // mismatch
		`<a><b></a></b>`,                     // improper nesting
		`<a b="1" b="2"/>`,                   // duplicate attribute
		`<a b=1/>`,                           // unquoted attribute
		`<p:a/>`,                             // undeclared prefix
		`<a>&unknown;</a>`,                   // unknown entity
		`<a>&#0;</a>`,                        // invalid char ref
		`<a/><b/>`,                           // two roots
		`text<a/>`,                           // content before root
		`<a b="<"/>`,                         // '<' in attribute
		`<a><!-- -- --></a>`,                 // '--' in comment
		`<!DOCTYPE a [<!ENTITY x "y">]><a/>`, // internal subset
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("expected error for %q", src)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("error for %q is %T, want *ParseError", src, err)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := ParseString("<a>\n  <b></c>\n</a>")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("got %v", err)
	}
	if pe.Line != 2 {
		t.Fatalf("line = %d, want 2", pe.Line)
	}
}

func TestDoctypeSkipped(t *testing.T) {
	doc := MustParse(`<!DOCTYPE html><a>ok</a>`)
	if doc.Root().StringValue() != "ok" {
		t.Fatal("doctype not skipped")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	cases := []string{
		`<a/>`,
		`<a>text</a>`,
		`<a b="1" c="two"><d/>tail</a>`,
		`<a xmlns="urn:x"><b xmlns:p="urn:y" p:q="v">t</b></a>`,
		`<a>&lt;escaped&amp;&gt;</a>`,
		`<a b="quote&quot;here"/>`,
		`<a><!--c--><?pi data?>x</a>`,
	}
	for _, src := range cases {
		doc := MustParse(src)
		out := Serialize(doc)
		doc2, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse of %q -> %q failed: %v", src, out, err)
		}
		if !DeepEqual(doc, doc2) {
			t.Fatalf("round trip changed structure: %q -> %q", src, out)
		}
	}
}

func TestDocumentOrder(t *testing.T) {
	doc := MustParse(`<a><b/><c><d/></c><e/></a>`)
	root := doc.Root()
	b := root.ChildElements()[0]
	d := root.ChildElements()[1].ChildElements()[0]
	e := root.ChildElements()[2]
	if !b.Before(d) || !d.Before(e) || e.Before(b) {
		t.Fatal("document order wrong")
	}
	nodes := []*Node{e, b, d, b}
	sorted := SortDocOrder(nodes)
	if len(sorted) != 3 || sorted[0] != b || sorted[1] != d || sorted[2] != e {
		t.Fatalf("sort/dedup wrong: %v", sorted)
	}
}

func TestCrossDocumentOrderStable(t *testing.T) {
	d1 := MustParse(`<a/>`)
	d2 := MustParse(`<b/>`)
	// Whatever the relative order, it must be antisymmetric and stable.
	if d1.Before(d2) == d2.Before(d1) {
		t.Fatal("cross-document order not antisymmetric")
	}
}

func TestCloneDetachesAndPreservesStructure(t *testing.T) {
	doc := MustParse(`<a x="1"><b>t</b></a>`)
	c := doc.Root().Clone()
	if c.Parent != nil {
		t.Fatal("clone should be detached")
	}
	if !DeepEqual(doc.Root(), c) {
		t.Fatal("clone differs")
	}
	// Mutating the clone must not affect the original.
	c.Attrs[0].Data = "2"
	if v, _ := doc.Root().Attr("x"); v != "1" {
		t.Fatal("clone aliases original")
	}
}

func TestCloneAsDocument(t *testing.T) {
	doc := MustParse(`<a><b>t</b></a>`)
	b := doc.Root().ChildElements()[0]
	nd := b.CloneAsDocument()
	if nd.Kind != DocumentNode || nd.Root().Name.Local != "b" {
		t.Fatalf("bad document clone: %+v", nd)
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder()
	b.StartElement(Name{Local: "order"})
	b.Attribute(Name{Local: "id"}, "7")
	b.Element(Name{Local: "item"}, "widget")
	b.Text("x")
	b.Text("y") // must merge
	b.EndElement()
	doc := b.Done()
	root := doc.Root()
	if v, _ := root.Attr("id"); v != "7" {
		t.Fatal("builder attr")
	}
	if root.StringValue() != "widgetxy" {
		t.Fatalf("builder text %q", root.StringValue())
	}
	if n := len(root.Children); n != 2 { // item element + merged text
		t.Fatalf("children = %d", n)
	}
	if !doc.Sealed() {
		t.Fatal("builder result not sealed")
	}
}

func TestBuilderSubtree(t *testing.T) {
	src := MustParse(`<src a="1"><k>v</k></src>`)
	b := NewBuilder()
	b.StartElement(Name{Local: "wrap"})
	b.Subtree(src.Root())
	b.EndElement()
	doc := b.Done()
	inner := doc.Root().ChildElements()[0]
	if !DeepEqual(inner, src.Root()) {
		t.Fatal("subtree copy differs")
	}
	if inner.Parent != doc.Root() {
		t.Fatal("subtree not attached")
	}
}

func TestDeepEqualAttributeOrderInsensitive(t *testing.T) {
	a := MustParse(`<x p="1" q="2"/>`)
	b := MustParse(`<x q="2" p="1"/>`)
	if !DeepEqual(a, b) {
		t.Fatal("attribute order should not matter")
	}
	c := MustParse(`<x p="1" q="3"/>`)
	if DeepEqual(a, c) {
		t.Fatal("different values must differ")
	}
}

func TestEscapeHelpers(t *testing.T) {
	if EscapeText(`a<b>&c`) != "a&lt;b&gt;&amp;c" {
		t.Fatal("EscapeText")
	}
	if EscapeAttr(`"<&`) != "&quot;&lt;&amp;" {
		t.Fatal("EscapeAttr")
	}
	if EscapeText("plain") != "plain" {
		t.Fatal("no-op escape should return input")
	}
}

func TestLargeDocument(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<big>")
	for i := 0; i < 5000; i++ {
		sb.WriteString("<item n=\"x\">payload text</item>")
	}
	sb.WriteString("</big>")
	doc, err := ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Root().ChildElements()) != 5000 {
		t.Fatal("large doc child count")
	}
}
