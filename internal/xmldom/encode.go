package xmldom

import (
	"encoding/binary"
	"sync"
)

// Binary document encoding ("DQB", format v1). Sealed trees are persisted
// in a compact structural form so that rehydrating a message is a decode —
// one arena allocation for all nodes, string data sliced out of a single
// backing buffer — instead of a character-level XML parse. The layout:
//
//	[0]      version byte EncVersion (0x01; text XML always starts with
//	         '<', so the two payload formats are self-distinguishing)
//	uvarint  name-dictionary size N
//	N x      name entry: uvarint-prefixed space, prefix, local bytes,
//	         in order of first appearance in the pre-order walk
//	uvarint  node count (all nodes: root, attributes, descendants)
//	node stream, pre-order, attributes before children (Seal order):
//	  kind byte, then per kind:
//	    document  uvarint child count, then the children
//	    element   uvarint name index; uvarint attr count; per attribute
//	              {uvarint name index, uvarint data length, data bytes};
//	              uvarint child count, then the children
//	    text      uvarint data length, data bytes
//	    comment   uvarint data length, data bytes
//	    p-instr   uvarint name index (target), uvarint length, data bytes
//	    attribute (detached root only) uvarint name index, uvarint length,
//	              data bytes
//
// All integers are unsigned varints. Encoding the same tree twice produces
// identical bytes (the dictionary order is the deterministic walk order),
// which FuzzEncodeDecode relies on.

// EncVersion is the format version byte and the first byte of every
// encoded document.
const EncVersion byte = 0x01

// Encoded reports whether data carries the binary document encoding (as
// opposed to text XML, which always starts with '<'). Both the full v1
// format and the projected v2 format (stream.go) count as encoded.
func Encoded(data []byte) bool {
	return len(data) > 0 && (data[0] == EncVersion || data[0] == EncVersionProjected)
}

// encoder carries the reusable encoding state: the name dictionary of the
// current document. Pooled so steady-state encoding does not allocate it.
type encoder struct {
	nameIdx map[Name]uint64
	names   []Name
	count   uint64
}

var encPool = sync.Pool{New: func() any { return &encoder{nameIdx: make(map[Name]uint64, 16)} }}

// Encode returns the binary encoding of the subtree rooted at n.
func Encode(n *Node) []byte { return EncodeAppend(nil, n) }

// EncodeAppend appends the binary encoding of the subtree rooted at n to
// dst and returns the extended buffer. n must be part of a constructed
// tree; it is typically a sealed document node.
func EncodeAppend(dst []byte, n *Node) []byte {
	e := encPool.Get().(*encoder)
	e.count = 0
	e.names = e.names[:0]
	clear(e.nameIdx)

	e.survey(n)

	dst = append(dst, EncVersion)
	dst = binary.AppendUvarint(dst, uint64(len(e.names)))
	for _, nm := range e.names {
		dst = appendStr(dst, nm.Space)
		dst = appendStr(dst, nm.Prefix)
		dst = appendStr(dst, nm.Local)
	}
	dst = binary.AppendUvarint(dst, e.count)
	dst = e.node(dst, n)

	encPool.Put(e)
	return dst
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// survey counts nodes and assigns dictionary slots in walk order.
func (e *encoder) survey(n *Node) {
	e.count++
	switch n.Kind {
	case ElementNode, ProcessingInstructionNode, AttributeNode:
		e.name(n.Name)
	}
	for _, a := range n.Attrs {
		e.count++
		e.name(a.Name)
	}
	for _, c := range n.Children {
		e.survey(c)
	}
}

func (e *encoder) name(nm Name) {
	if _, ok := e.nameIdx[nm]; !ok {
		e.nameIdx[nm] = uint64(len(e.names))
		e.names = append(e.names, nm)
	}
}

func (e *encoder) node(dst []byte, n *Node) []byte {
	dst = append(dst, byte(n.Kind))
	switch n.Kind {
	case DocumentNode:
		dst = binary.AppendUvarint(dst, uint64(len(n.Children)))
		for _, c := range n.Children {
			dst = e.node(dst, c)
		}
	case ElementNode:
		dst = binary.AppendUvarint(dst, e.nameIdx[n.Name])
		dst = binary.AppendUvarint(dst, uint64(len(n.Attrs)))
		for _, a := range n.Attrs {
			dst = binary.AppendUvarint(dst, e.nameIdx[a.Name])
			dst = appendStr(dst, a.Data)
		}
		dst = binary.AppendUvarint(dst, uint64(len(n.Children)))
		for _, c := range n.Children {
			dst = e.node(dst, c)
		}
	case TextNode, CommentNode:
		dst = appendStr(dst, n.Data)
	case ProcessingInstructionNode, AttributeNode:
		dst = binary.AppendUvarint(dst, e.nameIdx[n.Name])
		dst = appendStr(dst, n.Data)
	}
	return dst
}
