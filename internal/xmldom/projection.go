package xmldom

import (
	"hash/fnv"
	"sort"
)

// Projection describes the set of element paths a consumer of a document
// can reference: a trie over child local names rooted at the document node.
// A trie node with All set keeps its entire subtree; an element whose local
// name has no entry in its parent's trie node is not materialized at all —
// the streaming encoder stores it as an opaque byte span (stream.go) that
// is only parsed again if the document is fully materialized later.
//
// Keys are local names only: name tests follow the paper's convention that
// an unprefixed test matches the local name in any namespace, so keying on
// the local name over-approximates every namespace-qualified test — the
// projection may keep more than needed, never less.
//
// A Projection is built once (internal/xquery's ProjectionBuilder) and then
// shared read-only across concurrent ingest paths; it must not be mutated
// after Fingerprint has been called.
type Projection struct {
	all  bool
	kids map[string]*Projection
	fp   uint64
}

// NewProjection returns an empty projection that keeps only the document
// shell (doc-level comments and processing instructions are always kept).
func NewProjection() *Projection { return &Projection{} }

// Child returns the trie node for the given child local name, creating it
// if absent.
func (p *Projection) Child(local string) *Projection {
	if p.kids == nil {
		p.kids = map[string]*Projection{}
	}
	c := p.kids[local]
	if c == nil {
		c = &Projection{}
		p.kids[local] = c
	}
	return c
}

// MarkAll marks the node's entire subtree as kept.
func (p *Projection) MarkAll() { p.all = true }

// All reports whether the node keeps its entire subtree.
func (p *Projection) All() bool { return p.all }

// Lookup returns the trie node governing a child with the given local
// name, and whether such a child is kept at all. On a node with All set
// every child is kept (with a nil sub-projection, meaning keep-everything).
func (p *Projection) Lookup(local string) (sub *Projection, keep bool) {
	if p.all {
		return nil, true
	}
	c, ok := p.kids[local]
	if !ok {
		return nil, false
	}
	if c.all {
		return nil, true
	}
	return c, true
}

// Fingerprint returns a stable hash of the projection shape, identical
// across processes for structurally equal projections. Every projected
// record carries the fingerprint it was encoded under, so a reader can tell
// whether a stored partial document still covers the paths of the current
// rule set (rules may have changed via reload or restart) and fall back to
// full materialization otherwise. The result is cached; compute it before
// sharing the projection across goroutines.
func (p *Projection) Fingerprint() uint64 {
	if p.fp != 0 {
		return p.fp
	}
	h := fnv.New64a()
	var walk func(n *Projection)
	walk = func(n *Projection) {
		if n.all {
			h.Write([]byte{'*'})
			return
		}
		h.Write([]byte{'('})
		names := make([]string, 0, len(n.kids))
		for nm := range n.kids {
			names = append(names, nm)
		}
		sort.Strings(names)
		for _, nm := range names {
			h.Write([]byte(nm))
			h.Write([]byte{0})
			walk(n.kids[nm])
		}
		h.Write([]byte{')'})
	}
	walk(p)
	fp := h.Sum64()
	if fp == 0 {
		fp = 1
	}
	p.fp = fp
	return fp
}
