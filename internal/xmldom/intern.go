package xmldom

import (
	"strings"
	"sync"
)

// Name interning. The parser, the builder and the binary decoder all route
// expanded names through one process-wide table, so every occurrence of the
// same QName — across documents, and across parse vs. decode — shares the
// same backing strings. Two things fall out of that:
//
//   - name comparisons in XPath node tests hit Go's string pointer
//     fast-path (== compares the data pointer before the bytes), making
//     the per-node name check effectively an identity test;
//   - decoded documents do not pin their record buffer through tiny name
//     strings: dictionary entries are detached (strings.Clone) when first
//     interned.
//
// The table only ever grows, so it is capped: applications have a bounded
// element vocabulary, but fuzzers and hostile inputs do not. Past the cap,
// InternName returns its input unchanged — correctness never depends on
// interning, only the fast-path does.

// internCap bounds the global name table. 64Ki distinct QNames is far
// beyond any real message vocabulary.
const internCap = 1 << 16

var internTab = struct {
	sync.RWMutex
	names map[Name]Name
	strs  map[string]string
}{
	names: make(map[Name]Name, 256),
	strs:  make(map[string]string, 256),
}

// InternName returns a canonical copy of n whose Space, Prefix and Local
// strings are shared with every other interned occurrence of the same
// expanded name. The canonical copy is detached from any larger backing
// buffer n's strings may slice into.
func InternName(n Name) Name {
	internTab.RLock()
	c, ok := internTab.names[n]
	internTab.RUnlock()
	if ok {
		return c
	}
	internTab.Lock()
	defer internTab.Unlock()
	if c, ok = internTab.names[n]; ok {
		return c
	}
	if len(internTab.names) >= internCap {
		return n
	}
	c = Name{
		Space:  internStrLocked(n.Space),
		Prefix: internStrLocked(n.Prefix),
		Local:  internStrLocked(n.Local),
	}
	internTab.names[c] = c
	return c
}

// InternString returns the canonical shared copy of s. Compiled XPath node
// tests intern their expected local names so the comparison against
// interned document names short-circuits on pointer equality.
func InternString(s string) string {
	if s == "" {
		return ""
	}
	internTab.RLock()
	c, ok := internTab.strs[s]
	internTab.RUnlock()
	if ok {
		return c
	}
	internTab.Lock()
	defer internTab.Unlock()
	return internStrLocked(s)
}

// internStrLocked interns one string component; caller holds the write lock.
func internStrLocked(s string) string {
	if s == "" {
		return ""
	}
	if c, ok := internTab.strs[s]; ok {
		return c
	}
	if len(internTab.strs) >= internCap {
		return s
	}
	c := strings.Clone(s)
	internTab.strs[c] = c
	return c
}
