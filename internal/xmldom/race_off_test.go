//go:build !race

package xmldom

// raceEnabled reports whether the race detector is active; allocation
// regression tests skip under -race, where alloc counts are unstable.
const raceEnabled = false
