// Package xmldom implements the XML document model used throughout Demaq:
// a lightweight, namespace-aware node tree with a from-scratch parser and
// serializer. It is the storage and processing representation for all
// messages, master data and query results.
//
// The model deliberately follows the needs of the XQuery data model rather
// than the W3C DOM API: nodes are immutable after construction (Demaq
// queues are append-only, messages are never modified in place), document
// order is materialized so node sequences can be sorted and deduplicated
// cheaply, and the string-value of a subtree is computed without
// intermediate allocation where possible.
package xmldom

import (
	"sort"
	"strings"
	"sync/atomic"
)

// NodeKind distinguishes the node types of the model.
type NodeKind uint8

// The node kinds supported by the model. There is no separate namespace
// node kind; namespace bindings are resolved at parse/build time and
// recorded in each Name.
const (
	DocumentNode NodeKind = iota + 1
	ElementNode
	AttributeNode
	TextNode
	CommentNode
	ProcessingInstructionNode
)

// String returns the XPath-style name of the node kind.
func (k NodeKind) String() string {
	switch k {
	case DocumentNode:
		return "document-node()"
	case ElementNode:
		return "element()"
	case AttributeNode:
		return "attribute()"
	case TextNode:
		return "text()"
	case CommentNode:
		return "comment()"
	case ProcessingInstructionNode:
		return "processing-instruction()"
	}
	return "unknown()"
}

// Name is an expanded XML name: a namespace URI, the original prefix (kept
// only for serialization fidelity) and the local part.
type Name struct {
	Space  string // namespace URI ("" = no namespace)
	Prefix string // original lexical prefix, informational
	Local  string
}

// String renders the lexical form of the name.
func (n Name) String() string {
	if n.Prefix != "" {
		return n.Prefix + ":" + n.Local
	}
	return n.Local
}

// Matches reports whether the name matches the given namespace/local pair.
func (n Name) Matches(space, local string) bool {
	return n.Space == space && n.Local == local
}

// docSeq numbers documents globally so that nodes from different trees have
// a stable, total document order (required for union semantics).
var docSeq atomic.Uint64

// Node is a node in an XML tree. The zero value is not useful; use Parse or
// a Builder to obtain nodes.
//
// Immutability contract: once a tree is sealed (Parse, Builder.Done and
// Clone seal automatically), it is deeply immutable. Fields are exported
// for read access only; no code may assign to Kind, Name, Data, Parent,
// Children or Attrs of a sealed node, and all package xquery evaluation
// honors this — axes traverse, atomization reads string values, and
// constructors deep-copy (Builder.Subtree) instead of re-parenting. The
// msgstore document cache relies on the contract to hand one shared *Node
// to concurrent rule evaluations without locking; the -race test
// msgstore.TestDocCacheSharedEvaluationRace guards it. Code that needs a
// mutable tree must work on a Clone.
type Node struct {
	Kind     NodeKind
	Name     Name    // element/attribute name; PI target in Local
	Data     string  // text/comment/attribute/PI content
	Parent   *Node   // nil for document nodes and detached attributes
	Children []*Node // document/element children
	Attrs    []*Node // element attributes, in declaration order

	ord uint64 // position in document order, assigned by seal()
	seq uint64 // owning document sequence number
}

// Document returns the root document node of the tree containing n, or n's
// topmost ancestor if the tree is a fragment without a document node.
func (n *Node) Document() *Node {
	cur := n
	for cur.Parent != nil {
		cur = cur.Parent
	}
	return cur
}

// Root returns the first element child of the document node, i.e. the
// document element, or nil if there is none. Called on a non-document node
// it returns the document element of the owning tree.
func (n *Node) Root() *Node {
	doc := n.Document()
	for _, c := range doc.Children {
		if c.Kind == ElementNode {
			return c
		}
	}
	if doc.Kind == ElementNode {
		return doc
	}
	return nil
}

// StringValue computes the XPath string-value of the node: concatenated
// descendant text for documents and elements, Data for the rest.
func (n *Node) StringValue() string {
	switch n.Kind {
	case DocumentNode, ElementNode:
		var sb strings.Builder
		n.appendText(&sb)
		return sb.String()
	default:
		return n.Data
	}
}

func (n *Node) appendText(sb *strings.Builder) {
	for _, c := range n.Children {
		switch c.Kind {
		case TextNode:
			sb.WriteString(c.Data)
		case ElementNode:
			c.appendText(sb)
		}
	}
}

// Attr returns the value of the attribute with the given local name in no
// namespace, and whether it exists.
func (n *Node) Attr(local string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name.Space == "" && a.Name.Local == local {
			return a.Data, true
		}
	}
	return "", false
}

// ChildElements returns the element children of n.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// FirstChildElement returns the first child element with the given local
// name (any namespace), or nil.
func (n *Node) FirstChildElement(local string) *Node {
	for _, c := range n.Children {
		if c.Kind == ElementNode && c.Name.Local == local {
			return c
		}
	}
	return nil
}

// Before reports whether n precedes other in document order. Nodes from
// different documents are ordered by document creation sequence, which is
// arbitrary but stable, as XQuery requires.
func (n *Node) Before(other *Node) bool {
	if n.seq != other.seq {
		return n.seq < other.seq
	}
	return n.ord < other.ord
}

// Seal assigns document order positions to every node of the tree rooted at
// n and stamps a fresh document sequence number. It must be called exactly
// once after a tree is fully constructed; Parse and Builder do so
// automatically. Attributes order directly after their element.
func (n *Node) Seal() {
	seq := docSeq.Add(1)
	var ord uint64
	var walk func(nd *Node)
	walk = func(nd *Node) {
		nd.seq = seq
		ord++
		nd.ord = ord
		for _, a := range nd.Attrs {
			a.seq = seq
			ord++
			a.ord = ord
		}
		for _, c := range nd.Children {
			walk(c)
		}
	}
	walk(n)
}

// Sealed reports whether the tree has been sealed (document order assigned).
func (n *Node) Sealed() bool { return n.seq != 0 }

// Clone returns a deep copy of the subtree rooted at n, detached from any
// parent, sealed as a fresh tree. Cloning an element or text node wraps no
// document node around it; callers that need a document should use
// CloneAsDocument.
func (n *Node) Clone() *Node {
	c := n.cloneRec(nil)
	c.Seal()
	return c
}

// CloneAsDocument deep-copies the subtree and wraps it in a new document
// node, which is the representation used when a constructed element becomes
// a message payload.
func (n *Node) CloneAsDocument() *Node {
	if n.Kind == DocumentNode {
		return n.Clone()
	}
	doc := &Node{Kind: DocumentNode}
	c := n.cloneRec(doc)
	doc.Children = []*Node{c}
	doc.Seal()
	return doc
}

func (n *Node) cloneRec(parent *Node) *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Data: n.Data, Parent: parent}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]*Node, len(n.Attrs))
		for i, a := range n.Attrs {
			ac := &Node{Kind: AttributeNode, Name: a.Name, Data: a.Data, Parent: c}
			c.Attrs[i] = ac
		}
	}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.cloneRec(c)
		}
	}
	return c
}

// DeepEqual reports structural equality of two subtrees: same kind, name,
// data, attributes (order-insensitive, as XML attribute order is not
// significant) and children (order-sensitive).
func DeepEqual(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Name.Space != b.Name.Space || a.Name.Local != b.Name.Local {
		return false
	}
	if a.Kind == TextNode || a.Kind == CommentNode || a.Kind == AttributeNode || a.Kind == ProcessingInstructionNode {
		if a.Data != b.Data {
			return false
		}
	}
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for _, aa := range a.Attrs {
		found := false
		for _, ba := range b.Attrs {
			if aa.Name.Space == ba.Name.Space && aa.Name.Local == ba.Name.Local && aa.Data == ba.Data {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !DeepEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// SortDocOrder sorts nodes into document order and removes duplicates
// (pointer identity), implementing the node-sequence normalization required
// by path and union expressions.
func SortDocOrder(nodes []*Node) []*Node {
	if len(nodes) < 2 {
		return nodes
	}
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].Before(nodes[j]) })
	out := nodes[:1]
	for _, nd := range nodes[1:] {
		if nd != out[len(out)-1] {
			out = append(out, nd)
		}
	}
	return out
}
