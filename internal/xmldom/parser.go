package xmldom

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ParseError describes a well-formedness violation with its input position.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xml: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses a complete XML document and returns its document node.
// The parser is namespace-aware, supports the five predefined entities and
// numeric character references, CDATA sections, comments and processing
// instructions. DOCTYPE declarations are skipped; internal subsets that
// declare entities are rejected (messages are exchanged between peers and
// must be self-contained).
func Parse(input []byte) (*Node, error) {
	p := &parser{src: input, line: 1, col: 1}
	doc, err := p.parseDocument()
	if err != nil {
		return nil, err
	}
	doc.Seal()
	return doc, nil
}

// ParseString is Parse for string input.
func ParseString(input string) (*Node, error) { return Parse([]byte(input)) }

// MustParse parses or panics; intended for tests and static fixtures.
func MustParse(input string) *Node {
	doc, err := ParseString(input)
	if err != nil {
		panic(err)
	}
	return doc
}

// nsBinding is one in-scope namespace declaration.
type nsBinding struct {
	prefix string
	uri    string
}

// parseDetached parses a single element (not a whole document) with the
// given namespace bindings already in scope. It is used to re-parse the
// opaque spans of projected encodings (decode.go), whose surrounding
// declarations were captured at encode time. The returned subtree is not
// sealed; the caller splices it into a tree and seals the whole document.
func parseDetached(src string, ns []nsBinding) (*Node, error) {
	p := &parser{src: []byte(src), line: 1, col: 1, ns: ns}
	el, err := p.parseElement()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, p.errf("trailing bytes after element")
	}
	return el, nil
}

type parser struct {
	src  []byte
	pos  int
	line int
	col  int
	ns   []nsBinding // stack of in-scope bindings
}

const xmlNamespace = "http://www.w3.org/XML/1998/namespace"

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
		p.col = 1
	} else {
		p.col++
	}
	return c
}

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.peek() {
		case ' ', '\t', '\r', '\n':
			p.advance()
		default:
			return
		}
	}
}

func (p *parser) hasPrefix(s string) bool {
	return p.pos+len(s) <= len(p.src) && string(p.src[p.pos:p.pos+len(s)]) == s
}

func (p *parser) consume(s string) bool {
	if p.hasPrefix(s) {
		for range s {
			p.advance()
		}
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if !p.consume(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) parseDocument() (*Node, error) {
	doc := &Node{Kind: DocumentNode}
	// Optional XML declaration.
	if p.hasPrefix("<?xml") {
		if err := p.skipPI(); err != nil {
			return nil, err
		}
	}
	seenRoot := false
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		switch {
		case p.hasPrefix("<!--"):
			c, err := p.parseComment()
			if err != nil {
				return nil, err
			}
			c.Parent = doc
			doc.Children = append(doc.Children, c)
		case p.hasPrefix("<!DOCTYPE"):
			if err := p.skipDoctype(); err != nil {
				return nil, err
			}
		case p.hasPrefix("<?"):
			pi, err := p.parsePI()
			if err != nil {
				return nil, err
			}
			pi.Parent = doc
			doc.Children = append(doc.Children, pi)
		case p.peek() == '<':
			if seenRoot {
				return nil, p.errf("multiple document elements")
			}
			el, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			el.Parent = doc
			doc.Children = append(doc.Children, el)
			seenRoot = true
		default:
			return nil, p.errf("content outside document element")
		}
	}
	if !seenRoot {
		return nil, p.errf("no document element")
	}
	return doc, nil
}

func (p *parser) skipDoctype() error {
	if err := p.expect("<!DOCTYPE"); err != nil {
		return err
	}
	depth := 1
	for !p.eof() {
		c := p.advance()
		switch c {
		case '<':
			depth++
		case '>':
			depth--
			if depth == 0 {
				return nil
			}
		case '[':
			return p.errf("DOCTYPE internal subsets are not supported")
		}
	}
	return p.errf("unterminated DOCTYPE")
}

func (p *parser) skipPI() error {
	for !p.eof() {
		if p.consume("?>") {
			return nil
		}
		p.advance()
	}
	return p.errf("unterminated processing instruction")
}

func (p *parser) parsePI() (*Node, error) {
	if err := p.expect("<?"); err != nil {
		return nil, err
	}
	target, err := p.parseRawName()
	if err != nil {
		return nil, err
	}
	if strings.EqualFold(target, "xml") {
		return nil, p.errf("misplaced XML declaration")
	}
	p.skipSpace()
	start := p.pos
	for !p.eof() {
		if p.hasPrefix("?>") {
			data := string(p.src[start:p.pos])
			p.consume("?>")
			return &Node{Kind: ProcessingInstructionNode, Name: InternName(Name{Local: target}), Data: data}, nil
		}
		p.advance()
	}
	return nil, p.errf("unterminated processing instruction")
}

func (p *parser) parseComment() (*Node, error) {
	if err := p.expect("<!--"); err != nil {
		return nil, err
	}
	start := p.pos
	for !p.eof() {
		if p.hasPrefix("-->") {
			data := string(p.src[start:p.pos])
			if strings.Contains(data, "--") {
				return nil, p.errf("'--' not allowed inside comment")
			}
			p.consume("-->")
			return &Node{Kind: CommentNode, Data: data}, nil
		}
		p.advance()
	}
	return nil, p.errf("unterminated comment")
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

// parseRawName reads a lexical QName (prefix:local) without resolving it.
func (p *parser) parseRawName() (string, error) {
	if p.eof() || !isNameStart(p.peek()) {
		return "", p.errf("expected name")
	}
	start := p.pos
	for !p.eof() && isNameChar(p.peek()) {
		p.advance()
	}
	return string(p.src[start:p.pos]), nil
}

func splitQName(raw string) (prefix, local string, err error) {
	i := strings.IndexByte(raw, ':')
	if i < 0 {
		return "", raw, nil
	}
	prefix, local = raw[:i], raw[i+1:]
	if prefix == "" || local == "" || strings.Contains(local, ":") {
		return "", "", fmt.Errorf("malformed QName %q", raw)
	}
	return prefix, local, nil
}

func (p *parser) lookup(prefix string) (string, bool) {
	if prefix == "xml" {
		return xmlNamespace, true
	}
	for i := len(p.ns) - 1; i >= 0; i-- {
		if p.ns[i].prefix == prefix {
			return p.ns[i].uri, true
		}
	}
	if prefix == "" {
		return "", true // default namespace undeclared = no namespace
	}
	return "", false
}

type rawAttr struct {
	name  string
	value string
}

func (p *parser) parseElement() (*Node, error) {
	if err := p.expect("<"); err != nil {
		return nil, err
	}
	rawName, err := p.parseRawName()
	if err != nil {
		return nil, err
	}
	var attrs []rawAttr
	nsMark := len(p.ns)
	defer func() { p.ns = p.ns[:nsMark] }()

	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errf("unterminated start tag <%s>", rawName)
		}
		c := p.peek()
		if c == '>' || c == '/' {
			break
		}
		aname, err := p.parseRawName()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect("="); err != nil {
			return nil, err
		}
		p.skipSpace()
		aval, err := p.parseAttrValue()
		if err != nil {
			return nil, err
		}
		// Namespace declarations take effect immediately for this element.
		switch {
		case aname == "xmlns":
			p.ns = append(p.ns, nsBinding{prefix: "", uri: aval})
		case strings.HasPrefix(aname, "xmlns:"):
			px := aname[len("xmlns:"):]
			if aval == "" {
				return nil, p.errf("cannot undeclare prefix %q with empty URI", px)
			}
			p.ns = append(p.ns, nsBinding{prefix: px, uri: aval})
		default:
			for _, prev := range attrs {
				if prev.name == aname {
					return nil, p.errf("duplicate attribute %q", aname)
				}
			}
			attrs = append(attrs, rawAttr{name: aname, value: aval})
		}
	}

	el := &Node{Kind: ElementNode}
	prefix, local, err := splitQName(rawName)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	uri, ok := p.lookup(prefix)
	if !ok {
		return nil, p.errf("undeclared namespace prefix %q", prefix)
	}
	el.Name = InternName(Name{Space: uri, Prefix: prefix, Local: local})

	for _, ra := range attrs {
		aprefix, alocal, err := splitQName(ra.name)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		auri := ""
		if aprefix != "" { // unprefixed attributes are in no namespace
			auri, ok = p.lookup(aprefix)
			if !ok {
				return nil, p.errf("undeclared namespace prefix %q", aprefix)
			}
		}
		an := &Node{Kind: AttributeNode, Name: InternName(Name{Space: auri, Prefix: aprefix, Local: alocal}), Data: ra.value, Parent: el}
		el.Attrs = append(el.Attrs, an)
	}

	if p.consume("/>") {
		return el, nil
	}
	if err := p.expect(">"); err != nil {
		return nil, err
	}
	if err := p.parseContent(el); err != nil {
		return nil, err
	}
	// Closing tag.
	closeName, err := p.parseRawName()
	if err != nil {
		return nil, err
	}
	if closeName != rawName {
		return nil, p.errf("mismatched end tag </%s>, expected </%s>", closeName, rawName)
	}
	p.skipSpace()
	if err := p.expect(">"); err != nil {
		return nil, err
	}
	return el, nil
}

func (p *parser) parseAttrValue() (string, error) {
	if p.eof() {
		return "", p.errf("expected attribute value")
	}
	quote := p.peek()
	if quote != '"' && quote != '\'' {
		return "", p.errf("attribute value must be quoted")
	}
	p.advance()
	var sb strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated attribute value")
		}
		c := p.peek()
		switch c {
		case quote:
			p.advance()
			return sb.String(), nil
		case '<':
			return "", p.errf("'<' not allowed in attribute value")
		case '&':
			r, err := p.parseReference()
			if err != nil {
				return "", err
			}
			sb.WriteString(r)
		default:
			sb.WriteByte(p.advance())
		}
	}
}

// parseContent parses element content up to (and consuming) the "</" of the
// matching end tag.
func (p *parser) parseContent(parent *Node) error {
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			t := &Node{Kind: TextNode, Data: text.String(), Parent: parent}
			parent.Children = append(parent.Children, t)
			text.Reset()
		}
	}
	for {
		if p.eof() {
			return p.errf("unterminated element <%s>", parent.Name)
		}
		switch {
		case p.hasPrefix("</"):
			flush()
			p.consume("</")
			return nil
		case p.hasPrefix("<!--"):
			flush()
			c, err := p.parseComment()
			if err != nil {
				return err
			}
			c.Parent = parent
			parent.Children = append(parent.Children, c)
		case p.hasPrefix("<![CDATA["):
			if err := p.parseCDATA(&text); err != nil {
				return err
			}
		case p.hasPrefix("<?"):
			flush()
			pi, err := p.parsePI()
			if err != nil {
				return err
			}
			pi.Parent = parent
			parent.Children = append(parent.Children, pi)
		case p.peek() == '<':
			flush()
			child, err := p.parseElement()
			if err != nil {
				return err
			}
			child.Parent = parent
			parent.Children = append(parent.Children, child)
		case p.peek() == '&':
			r, err := p.parseReference()
			if err != nil {
				return err
			}
			text.WriteString(r)
		default:
			text.WriteByte(p.advance())
		}
	}
}

func (p *parser) parseCDATA(text *strings.Builder) error {
	if err := p.expect("<![CDATA["); err != nil {
		return err
	}
	start := p.pos
	for !p.eof() {
		if p.hasPrefix("]]>") {
			text.Write(p.src[start:p.pos])
			p.consume("]]>")
			return nil
		}
		p.advance()
	}
	return p.errf("unterminated CDATA section")
}

func (p *parser) parseReference() (string, error) {
	if err := p.expect("&"); err != nil {
		return "", err
	}
	start := p.pos
	for !p.eof() && p.peek() != ';' {
		if p.pos-start > 12 {
			return "", p.errf("unterminated entity reference")
		}
		p.advance()
	}
	if p.eof() {
		return "", p.errf("unterminated entity reference")
	}
	name := string(p.src[start:p.pos])
	p.advance() // ';'
	switch name {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "apos":
		return "'", nil
	case "quot":
		return "\"", nil
	}
	if strings.HasPrefix(name, "#") {
		num := name[1:]
		base := 10
		if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
			num, base = num[1:], 16
		}
		cp, err := strconv.ParseUint(num, base, 32)
		if err != nil || !utf8.ValidRune(rune(cp)) || cp == 0 {
			return "", p.errf("invalid character reference &%s;", name)
		}
		return string(rune(cp)), nil
	}
	return "", p.errf("unknown entity &%s;", name)
}
