package xmldom

import (
	"bytes"
	"strings"
	"testing"
)

// streamSeeds is the shared corpus of FuzzParse and FuzzStreamParse.
var streamSeeds = []string{
	`<a/>`,
	`<a><b>text</b><b x="1"/></a>`,
	`<m><k>s1</k><data>payload &amp; more</data></m>`,
	`<ns:a xmlns:ns="urn:x"><ns:b ns:attr="v"/></ns:a>`,
	`<a xmlns="urn:default"><b/></a>`,
	`<a><!--comment--><?pi data?>t</a>`,
	`<a>&lt;escaped&gt; &quot;q&quot; &#65; &#x42;</a>`,
	`<?xml version="1.0"?><root><nested><deep>x</deep></nested></root>`,
	`<a att="  spaced  value "><![CDATA[raw <stuff> &]]></a>`,
	"<a>\n\tmixed <b>content</b> tail\n</a>",
}

// FuzzStreamParse pins the streaming encoder to the tree pipeline: for any
// input, StreamEncode without a projection and Parse→Encode must agree on
// acceptance, report the same error when rejecting, and produce
// byte-identical encodings when accepting.
func FuzzStreamParse(f *testing.F) {
	for _, s := range streamSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		streamed, serr := StreamEncode(nil, data, nil)
		doc, perr := Parse(data)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("accept/reject disagreement\ninput: %q\nstream err: %v\nparse err:  %v", data, serr, perr)
		}
		if perr != nil {
			if serr.Error() != perr.Error() {
				t.Fatalf("error disagreement\ninput: %q\nstream err: %v\nparse err:  %v", data, serr, perr)
			}
			return
		}
		want := Encode(doc)
		if !bytes.Equal(streamed, want) {
			t.Fatalf("streamed encoding differs from tree encoding\ninput:  %q\nstream: %x\ntree:   %x", data, streamed, want)
		}
	})
}

func TestStreamEncodeMatchesTreeEncode(t *testing.T) {
	for _, src := range streamSeeds {
		streamed, err := StreamEncode(nil, []byte(src), nil)
		if err != nil {
			t.Fatalf("StreamEncode(%q): %v", src, err)
		}
		want := Encode(MustParse(src))
		if !bytes.Equal(streamed, want) {
			t.Fatalf("encoding mismatch for %q\nstream: %x\ntree:   %x", src, streamed, want)
		}
		doc, err := Decode(streamed)
		if err != nil {
			t.Fatalf("Decode of streamed %q: %v", src, err)
		}
		if !DeepEqual(doc, MustParse(src)) {
			t.Fatalf("decoded streamed tree differs for %q", src)
		}
	}
}

// TestStreamEncodeCorruptInput pins the rejection behavior of the
// streaming encoder on malformed wire input: every case must be rejected
// with exactly the error the tree parser reports.
func TestStreamEncodeCorruptInput(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"truncated start tag", `<order id="1`},
		{"truncated element", `<order><item>`},
		{"bad entity", `<a>&nosuch;</a>`},
		{"truncated entity", `<a>&amp`},
		{"bad char reference", `<a>&#x110000;</a>`},
		{"mismatched close", `<a><b></c></a>`},
		{"mismatched root close", `<a></b>`},
		{"duplicate attribute", `<a x="1" x="2"/>`},
		{"undeclared prefix", `<ns:a/>`},
		{"undeclared attr prefix", `<a ns:x="1"/>`},
		{"unquoted attribute", `<a x=1/>`},
		{"lt in attribute", `<a x="<"/>`},
		{"empty prefix undeclare", `<a xmlns:px=""/>`},
		{"content outside root", `<a/>trailing`},
		{"second root", `<a/><b/>`},
		{"no root", `<!--only a comment-->`},
		{"unterminated comment", `<a><!-- never closed</a>`},
		{"double dash comment", `<a><!-- a -- b --></a>`},
		{"unterminated cdata", `<a><![CDATA[open</a>`},
		{"doctype subset", `<!DOCTYPE a [<!ENTITY x "y">]><a/>`},
		{"misplaced xml decl", `<a><?xml version="1.0"?></a>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, serr := StreamEncode(nil, []byte(tc.input), nil)
			_, perr := Parse([]byte(tc.input))
			if perr == nil {
				t.Fatalf("tree parser unexpectedly accepts %q", tc.input)
			}
			if serr == nil {
				t.Fatalf("streaming encoder accepts %q, parser rejects with %v", tc.input, perr)
			}
			if serr.Error() != perr.Error() {
				t.Fatalf("error mismatch for %q\nstream: %v\nparse:  %v", tc.input, serr, perr)
			}
			// The skip path must validate identically: a projection that
			// prunes everything still sees every error.
			empty := NewProjection()
			if _, err := StreamEncode(nil, []byte(tc.input), empty); err == nil {
				t.Fatalf("projected streaming encoder accepts %q", tc.input)
			} else if err.Error() != perr.Error() {
				t.Fatalf("projected error mismatch for %q\nstream: %v\nparse:  %v", tc.input, err, perr)
			}
		})
	}
}

const projDoc = `<order xmlns:x="urn:x" id="42">` +
	`<customer><name>Ada</name><x:tier>gold</x:tier></customer>` +
	`<items><item sku="a1" qty="2"/><item sku="b2" qty="1"/></items>` +
	`<note>gift &amp; wrap</note>` +
	`</order>`

// orderProjection keeps /order/customer (whole subtree) and /order/note.
func orderProjection() *Projection {
	p := NewProjection()
	o := p.Child("order")
	o.Child("customer").MarkAll()
	o.Child("note").MarkAll()
	p.Fingerprint()
	return p
}

func TestProjectedEncodeFullMaterialization(t *testing.T) {
	proj := orderProjection()
	enc, err := StreamEncode(nil, []byte(projDoc), proj)
	if err != nil {
		t.Fatal(err)
	}
	if enc[0] != EncVersionProjected {
		t.Fatalf("projected encoding has version byte %#x", enc[0])
	}
	if !Encoded(enc) {
		t.Fatal("Encoded must recognize projected records")
	}
	fp, ok := ProjectedFingerprint(enc)
	if !ok || fp != proj.Fingerprint() {
		t.Fatalf("fingerprint = %d, %v; want %d", fp, ok, proj.Fingerprint())
	}

	// Full materialization re-parses the spans: identical tree.
	full, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	want := MustParse(projDoc)
	if !DeepEqual(full, want) {
		t.Fatalf("materialized projected tree differs\ngot:  %s\nwant: %s", Serialize(full), Serialize(want))
	}
	if !full.Sealed() {
		t.Fatal("materialized tree is not sealed")
	}
	// Materialize dispatches on the format byte too.
	viaMat, err := Materialize(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !DeepEqual(viaMat, want) {
		t.Fatal("Materialize of projected record differs")
	}
}

func TestProjectedEncodePartialDecode(t *testing.T) {
	proj := orderProjection()
	enc, err := StreamEncode(nil, []byte(projDoc), proj)
	if err != nil {
		t.Fatal(err)
	}
	partial, fp, pruned, err := DecodeProjectedOwned(enc)
	if err != nil {
		t.Fatal(err)
	}
	if fp != proj.Fingerprint() {
		t.Fatalf("fingerprint = %d, want %d", fp, proj.Fingerprint())
	}
	// items (and everything under it) was pruned; customer and note kept.
	s := Serialize(partial)
	if strings.Contains(s, "items") || strings.Contains(s, "sku") {
		t.Fatalf("partial tree contains pruned content: %s", s)
	}
	for _, kept := range []string{"<customer>", "<name>Ada</name>", "gold", "<note>gift &amp; wrap</note>", `id="42"`} {
		if !strings.Contains(s, kept) {
			t.Fatalf("partial tree is missing %q: %s", kept, s)
		}
	}
	// Every element local name inside a span is recorded (the dispatch
	// prefilter needs the full element-name set), sorted and distinct.
	if len(pruned) != 2 || pruned[0] != "item" || pruned[1] != "items" {
		t.Fatalf("pruned names = %v, want [item items]", pruned)
	}
	if !partial.Sealed() {
		t.Fatal("partial tree is not sealed")
	}
}

func TestProjectedEncodeSpanNamespaces(t *testing.T) {
	// The pruned subtree uses prefixes and a default namespace declared
	// outside the span; the span must carry those bindings.
	src := `<root xmlns="urn:d" xmlns:p="urn:p"><keep>k</keep><drop><p:q a="1"/><inner/></drop></root>`
	proj := NewProjection()
	proj.Child("root").Child("keep").MarkAll()
	enc, err := StreamEncode(nil, []byte(src), proj)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if want := MustParse(src); !DeepEqual(full, want) {
		t.Fatalf("span namespace resolution differs\ngot:  %s\nwant: %s", Serialize(full), Serialize(want))
	}
}

func TestProjectedEncodeRootSpan(t *testing.T) {
	// A projection that references nothing in the document prunes the root
	// element itself; materialization must still rebuild the full tree.
	proj := NewProjection()
	proj.Child("unrelated").MarkAll()
	proj.Fingerprint()
	enc, err := StreamEncode(nil, []byte(projDoc), proj)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if want := MustParse(projDoc); !DeepEqual(full, want) {
		t.Fatal("root-span materialization differs from parse")
	}
	partial, _, pruned, err := DecodeProjectedOwned(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial.Children) != 0 {
		t.Fatalf("partial tree should be an empty document, got %s", Serialize(partial))
	}
	found := false
	for _, nm := range pruned {
		if nm == "order" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pruned names %v missing root element", pruned)
	}
}

func TestProjectedEncodeNoSpans(t *testing.T) {
	// A projection that covers the whole document produces no spans, and
	// the payload after the projected header matches the v1 encoding.
	proj := NewProjection()
	proj.Child("order").MarkAll()
	proj.Fingerprint()
	enc, err := StreamEncode(nil, []byte(projDoc), proj)
	if err != nil {
		t.Fatal(err)
	}
	partial, fp, pruned, err := DecodeProjectedOwned(enc)
	if err != nil {
		t.Fatal(err)
	}
	if fp != proj.Fingerprint() || len(pruned) != 0 {
		t.Fatalf("fp=%d pruned=%v", fp, pruned)
	}
	if want := MustParse(projDoc); !DeepEqual(partial, want) {
		t.Fatal("span-free projected decode differs from parse")
	}
}

func TestProjectionFingerprintStability(t *testing.T) {
	a := orderProjection()
	b := orderProjection()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("structurally equal projections must share a fingerprint")
	}
	c := NewProjection()
	c.Child("order").Child("customer").MarkAll()
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different projections should not collide on trivial cases")
	}
}

func TestProjectionLookup(t *testing.T) {
	p := NewProjection()
	o := p.Child("order")
	o.Child("note").MarkAll()
	if _, keep := p.Lookup("other"); keep {
		t.Fatal("unknown child kept")
	}
	sub, keep := p.Lookup("order")
	if !keep || sub == nil {
		t.Fatal("interior child must be kept with a sub-projection")
	}
	if sub2, keep := sub.Lookup("note"); !keep || sub2 != nil {
		t.Fatal("all-marked child must be kept with nil sub-projection")
	}
	all := NewProjection()
	all.MarkAll()
	if sub, keep := all.Lookup("anything"); !keep || sub != nil {
		t.Fatal("All node keeps every child")
	}
}
