package xmldom

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// Decode materializes a tree from the binary document encoding produced by
// EncodeAppend. The decode is structural, not textual: all nodes of the
// document come from one arena allocation, every child/attribute pointer
// slice is carved out of a second, and string data is sliced out of a
// single backing copy of the input — so the allocation count is constant
// in the size of the document. QNames are resolved through the global
// intern table shared with the parser, so name tests against parsed or
// decoded trees compare canonical strings.
//
// The returned tree is sealed (document order assigned, fresh document
// sequence) and deeply immutable, exactly like a Parse result. data is not
// retained; its bytes are copied once into the backing string.
func Decode(data []byte) (*Node, error) {
	if !Encoded(data) {
		return nil, fmt.Errorf("xmldom: not a binary-encoded document")
	}
	return decode(string(data))
}

// DecodeOwned is Decode for a buffer the caller owns and will never write
// to again: the tree's strings alias data directly instead of copying it,
// saving one full-payload allocation on the rehydration hot path
// (msgstore.Store.Doc owns the record buffer it just read). Mutating data
// after DecodeOwned returns breaks the tree's immutability contract.
func DecodeOwned(data []byte) (*Node, error) {
	if !Encoded(data) {
		return nil, fmt.Errorf("xmldom: not a binary-encoded document")
	}
	return decode(unsafe.String(unsafe.SliceData(data), len(data)))
}

// DecodeProjectedOwned decodes a projected (v2) record without expanding
// its spans: the returned tree contains only the nodes the projection kept.
// It also returns the projection fingerprint the record was encoded under
// — the caller must check it against the current projection's fingerprint
// before trusting the partial tree — and the local names of elements pruned
// into spans, which the dispatch prefilter merges into the document's
// element-name set so name-based triggers stay sound. Ownership semantics
// match DecodeOwned: strings alias data.
func DecodeProjectedOwned(data []byte) (*Node, uint64, []string, error) {
	if len(data) == 0 || data[0] != EncVersionProjected {
		return nil, 0, nil, fmt.Errorf("xmldom: not a projected binary-encoded document")
	}
	return decodeProjected(unsafe.String(unsafe.SliceData(data), len(data)), false)
}

// ProjectedFingerprint returns the projection fingerprint of a projected
// (v2) record, or false for any other payload format.
func ProjectedFingerprint(data []byte) (uint64, bool) {
	if len(data) == 0 || data[0] != EncVersionProjected {
		return 0, false
	}
	fp, n := binary.Uvarint(data[1:])
	if n <= 0 {
		return 0, false
	}
	return fp, true
}

func decode(s string) (*Node, error) {
	if s[0] == EncVersionProjected {
		root, _, _, err := decodeProjected(s, true)
		return root, err
	}
	d := decoder{s: s, pos: 1}
	return d.run(0)
}

// decodeProjected decodes the v2 projected format (stream.go). With expand
// set, every opaque span is re-parsed and spliced back into its child slot,
// yielding the complete tree — the lazy-materialization path for documents
// whose stored projection no longer covers what a reader needs. Without
// expand, spans are skipped entirely and the partial tree contains only the
// materialized nodes; the caller also receives the projection fingerprint
// the record was encoded under and the local names of pruned elements (for
// the dispatch prefilter's element-name index).
func decodeProjected(s string, expand bool) (*Node, uint64, []string, error) {
	d := decoder{s: s, pos: 1, spans: true, expand: expand}
	fp, err := d.uvarint()
	if err != nil {
		return nil, 0, nil, err
	}
	prunedCount, err := d.uvarint()
	if err != nil {
		return nil, 0, nil, err
	}
	// Every pruned-name entry takes at least one length-prefix byte.
	if prunedCount > uint64(len(d.s)-d.pos) {
		return nil, 0, nil, d.corrupt("implausible pruned-name count")
	}
	var pruned []string
	if prunedCount > 0 {
		pruned = make([]string, prunedCount)
	}
	for i := range pruned {
		if pruned[i], err = d.str(); err != nil {
			return nil, 0, nil, err
		}
	}
	spanCount, err := d.uvarint()
	if err != nil {
		return nil, 0, nil, err
	}
	// Every span takes at least three bytes (marker, binding count, length).
	if spanCount > uint64(len(d.s)-d.pos) {
		return nil, 0, nil, d.corrupt("implausible span count")
	}
	root, err := d.run(spanCount)
	if err != nil {
		return nil, 0, nil, err
	}
	if expand && spanCount > 0 {
		// Re-parsed subtrees are unsealed; restamp the whole document so
		// order comparisons see one consistent sequence.
		root.Seal()
	}
	return root, fp, pruned, nil
}

// run decodes the dictionary, node count and node stream (shared between
// v1 and v2; the decoder is positioned just past the format header).
func (d *decoder) run(spanCount uint64) (*Node, error) {
	nameCount, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Every dictionary entry takes at least 3 bytes (three length prefixes).
	if nameCount > uint64(len(d.s))/3 {
		return nil, d.corrupt("name dictionary larger than input")
	}
	if nameCount > 0 {
		d.names = make([]Name, nameCount)
	}
	for i := range d.names {
		var nm Name
		if nm.Space, err = d.str(); err != nil {
			return nil, err
		}
		if nm.Prefix, err = d.str(); err != nil {
			return nil, err
		}
		if nm.Local, err = d.str(); err != nil {
			return nil, err
		}
		d.names[i] = InternName(nm)
	}

	nodeCount, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Every node takes at least one byte of the stream.
	if nodeCount == 0 || nodeCount > uint64(len(d.s)) {
		return nil, d.corrupt("implausible node count")
	}
	d.nodes = make([]Node, nodeCount)
	d.ptrs = make([]*Node, nodeCount-1+spanCount)
	d.seq = docSeq.Add(1)

	root, err := d.node(nil)
	if err != nil {
		return nil, err
	}
	if d.pos != len(d.s) {
		return nil, d.corrupt("trailing bytes after document")
	}
	if uint64(d.nused) != nodeCount {
		return nil, d.corrupt("node count mismatch")
	}
	if d.spansSeen != spanCount {
		return nil, d.corrupt("span count mismatch")
	}
	return root, nil
}

// Materialize turns a stored payload into a tree, dispatching on the
// format: binary-encoded payloads decode, anything else is parsed as text
// XML. This is the one entry point storage layers use for rehydration.
func Materialize(data []byte) (*Node, error) {
	if Encoded(data) {
		return Decode(data)
	}
	return Parse(data)
}

type decoder struct {
	s   string
	pos int

	names []Name
	nodes []Node  // node arena
	ptrs  []*Node // child/attribute pointer arena
	nused int
	pused int

	seq uint64
	ord uint64

	spans     bool // v2 format: child slots may hold opaque spans
	expand    bool // re-parse spans (full materialization) vs skip them
	spansSeen uint64
}

func (d *decoder) corrupt(msg string) error {
	return fmt.Errorf("xmldom: corrupt encoded document at offset %d: %s", d.pos, msg)
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.s) {
		return 0, d.corrupt("unexpected end of input")
	}
	c := d.s[d.pos]
	d.pos++
	return c, nil
}

func (d *decoder) uvarint() (uint64, error) {
	var x uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		c, err := d.byte()
		if err != nil {
			return 0, err
		}
		if c < 0x80 {
			if i == binary.MaxVarintLen64-1 && c > 1 {
				return 0, d.corrupt("varint overflow")
			}
			return x | uint64(c)<<shift, nil
		}
		x |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, d.corrupt("varint overflow")
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.s)-d.pos) {
		return "", d.corrupt("string length past end of input")
	}
	s := d.s[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return s, nil
}

func (d *decoder) nameRef() (Name, error) {
	i, err := d.uvarint()
	if err != nil {
		return Name{}, err
	}
	if i >= uint64(len(d.names)) {
		return Name{}, d.corrupt("name index out of range")
	}
	return d.names[i], nil
}

// alloc hands out the next arena node, stamped with its document-order
// position (the pre-order decode walk visits nodes in Seal order).
func (d *decoder) alloc(parent *Node) (*Node, error) {
	if d.nused >= len(d.nodes) {
		return nil, d.corrupt("more nodes than declared")
	}
	n := &d.nodes[d.nused]
	d.nused++
	n.Parent = parent
	n.seq = d.seq
	d.ord++
	n.ord = d.ord
	return n, nil
}

// carve slices k pointers out of the pointer arena.
func (d *decoder) carve(k int) ([]*Node, error) {
	if k > len(d.ptrs)-d.pused {
		return nil, d.corrupt("more children than declared nodes")
	}
	s := d.ptrs[d.pused : d.pused+k : d.pused+k]
	d.pused += k
	return s, nil
}

func (d *decoder) node(parent *Node) (*Node, error) {
	n, err := d.alloc(parent)
	if err != nil {
		return nil, err
	}
	kind, err := d.byte()
	if err != nil {
		return nil, err
	}
	n.Kind = NodeKind(kind)
	switch n.Kind {
	case DocumentNode:
		return n, d.children(n)
	case ElementNode:
		if n.Name, err = d.nameRef(); err != nil {
			return nil, err
		}
		na, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		// Each attribute takes at least two bytes (name index, length).
		if na > uint64(len(d.s)-d.pos)/2+1 {
			return nil, d.corrupt("implausible attribute count")
		}
		if na > 0 {
			if n.Attrs, err = d.carve(int(na)); err != nil {
				return nil, err
			}
			for i := range n.Attrs {
				a, err := d.alloc(n)
				if err != nil {
					return nil, err
				}
				a.Kind = AttributeNode
				if a.Name, err = d.nameRef(); err != nil {
					return nil, err
				}
				if a.Data, err = d.str(); err != nil {
					return nil, err
				}
				n.Attrs[i] = a
			}
		}
		return n, d.children(n)
	case TextNode, CommentNode:
		n.Data, err = d.str()
		return n, err
	case ProcessingInstructionNode, AttributeNode:
		if n.Name, err = d.nameRef(); err != nil {
			return nil, err
		}
		n.Data, err = d.str()
		return n, err
	}
	return nil, d.corrupt(fmt.Sprintf("unknown node kind %d", kind))
}

func (d *decoder) children(n *Node) error {
	nc, err := d.uvarint()
	if err != nil {
		return err
	}
	if nc > uint64(len(d.s)-d.pos) {
		return d.corrupt("implausible child count")
	}
	if nc == 0 {
		return nil
	}
	kids, err := d.carve(int(nc))
	if err != nil {
		return err
	}
	used := 0
	for i := 0; i < int(nc); i++ {
		if d.spans && d.pos < len(d.s) && d.s[d.pos] == spanMarker {
			d.pos++
			c, err := d.span(n)
			if err != nil {
				return err
			}
			if c != nil {
				kids[used] = c
				used++
			}
			continue
		}
		c, err := d.node(n)
		if err != nil {
			return err
		}
		kids[used] = c
		used++
	}
	if used > 0 {
		n.Children = kids[:used:used]
	}
	return nil
}

// span consumes one opaque span entry. With expand set it re-parses the
// raw element under the recorded in-scope namespace bindings and returns
// the subtree (parented but not yet sealed); otherwise it returns nil and
// the span simply does not appear among the parent's children.
func (d *decoder) span(parent *Node) (*Node, error) {
	nb, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Each binding takes at least two bytes (two length prefixes).
	if nb > uint64(len(d.s)-d.pos)/2 {
		return nil, d.corrupt("implausible namespace binding count")
	}
	var ns []nsBinding
	if d.expand && nb > 0 {
		ns = make([]nsBinding, 0, nb)
	}
	for i := uint64(0); i < nb; i++ {
		prefix, err := d.str()
		if err != nil {
			return nil, err
		}
		uri, err := d.str()
		if err != nil {
			return nil, err
		}
		if d.expand {
			ns = append(ns, nsBinding{prefix: prefix, uri: uri})
		}
	}
	raw, err := d.str()
	if err != nil {
		return nil, err
	}
	d.spansSeen++
	if !d.expand {
		return nil, nil
	}
	el, err := parseDetached(raw, ns)
	if err != nil {
		return nil, d.corrupt(fmt.Sprintf("span re-parse: %v", err))
	}
	el.Parent = parent
	return el, nil
}
