package xmldom

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// Decode materializes a tree from the binary document encoding produced by
// EncodeAppend. The decode is structural, not textual: all nodes of the
// document come from one arena allocation, every child/attribute pointer
// slice is carved out of a second, and string data is sliced out of a
// single backing copy of the input — so the allocation count is constant
// in the size of the document. QNames are resolved through the global
// intern table shared with the parser, so name tests against parsed or
// decoded trees compare canonical strings.
//
// The returned tree is sealed (document order assigned, fresh document
// sequence) and deeply immutable, exactly like a Parse result. data is not
// retained; its bytes are copied once into the backing string.
func Decode(data []byte) (*Node, error) {
	if !Encoded(data) {
		return nil, fmt.Errorf("xmldom: not a binary-encoded document")
	}
	return decode(string(data))
}

// DecodeOwned is Decode for a buffer the caller owns and will never write
// to again: the tree's strings alias data directly instead of copying it,
// saving one full-payload allocation on the rehydration hot path
// (msgstore.Store.Doc owns the record buffer it just read). Mutating data
// after DecodeOwned returns breaks the tree's immutability contract.
func DecodeOwned(data []byte) (*Node, error) {
	if !Encoded(data) {
		return nil, fmt.Errorf("xmldom: not a binary-encoded document")
	}
	return decode(unsafe.String(unsafe.SliceData(data), len(data)))
}

func decode(s string) (*Node, error) {
	d := decoder{s: s, pos: 1}

	nameCount, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Every dictionary entry takes at least 3 bytes (three length prefixes).
	if nameCount > uint64(len(d.s))/3 {
		return nil, d.corrupt("name dictionary larger than input")
	}
	if nameCount > 0 {
		d.names = make([]Name, nameCount)
	}
	for i := range d.names {
		var nm Name
		if nm.Space, err = d.str(); err != nil {
			return nil, err
		}
		if nm.Prefix, err = d.str(); err != nil {
			return nil, err
		}
		if nm.Local, err = d.str(); err != nil {
			return nil, err
		}
		d.names[i] = InternName(nm)
	}

	nodeCount, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Every node takes at least one byte of the stream.
	if nodeCount == 0 || nodeCount > uint64(len(d.s)) {
		return nil, d.corrupt("implausible node count")
	}
	d.nodes = make([]Node, nodeCount)
	d.ptrs = make([]*Node, nodeCount-1)
	d.seq = docSeq.Add(1)

	root, err := d.node(nil)
	if err != nil {
		return nil, err
	}
	if d.pos != len(d.s) {
		return nil, d.corrupt("trailing bytes after document")
	}
	if uint64(d.nused) != nodeCount {
		return nil, d.corrupt("node count mismatch")
	}
	return root, nil
}

// Materialize turns a stored payload into a tree, dispatching on the
// format: binary-encoded payloads decode, anything else is parsed as text
// XML. This is the one entry point storage layers use for rehydration.
func Materialize(data []byte) (*Node, error) {
	if Encoded(data) {
		return Decode(data)
	}
	return Parse(data)
}

type decoder struct {
	s   string
	pos int

	names []Name
	nodes []Node  // node arena
	ptrs  []*Node // child/attribute pointer arena
	nused int
	pused int

	seq uint64
	ord uint64
}

func (d *decoder) corrupt(msg string) error {
	return fmt.Errorf("xmldom: corrupt encoded document at offset %d: %s", d.pos, msg)
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.s) {
		return 0, d.corrupt("unexpected end of input")
	}
	c := d.s[d.pos]
	d.pos++
	return c, nil
}

func (d *decoder) uvarint() (uint64, error) {
	var x uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		c, err := d.byte()
		if err != nil {
			return 0, err
		}
		if c < 0x80 {
			if i == binary.MaxVarintLen64-1 && c > 1 {
				return 0, d.corrupt("varint overflow")
			}
			return x | uint64(c)<<shift, nil
		}
		x |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, d.corrupt("varint overflow")
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.s)-d.pos) {
		return "", d.corrupt("string length past end of input")
	}
	s := d.s[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return s, nil
}

func (d *decoder) nameRef() (Name, error) {
	i, err := d.uvarint()
	if err != nil {
		return Name{}, err
	}
	if i >= uint64(len(d.names)) {
		return Name{}, d.corrupt("name index out of range")
	}
	return d.names[i], nil
}

// alloc hands out the next arena node, stamped with its document-order
// position (the pre-order decode walk visits nodes in Seal order).
func (d *decoder) alloc(parent *Node) (*Node, error) {
	if d.nused >= len(d.nodes) {
		return nil, d.corrupt("more nodes than declared")
	}
	n := &d.nodes[d.nused]
	d.nused++
	n.Parent = parent
	n.seq = d.seq
	d.ord++
	n.ord = d.ord
	return n, nil
}

// carve slices k pointers out of the pointer arena.
func (d *decoder) carve(k int) ([]*Node, error) {
	if k > len(d.ptrs)-d.pused {
		return nil, d.corrupt("more children than declared nodes")
	}
	s := d.ptrs[d.pused : d.pused+k : d.pused+k]
	d.pused += k
	return s, nil
}

func (d *decoder) node(parent *Node) (*Node, error) {
	n, err := d.alloc(parent)
	if err != nil {
		return nil, err
	}
	kind, err := d.byte()
	if err != nil {
		return nil, err
	}
	n.Kind = NodeKind(kind)
	switch n.Kind {
	case DocumentNode:
		return n, d.children(n)
	case ElementNode:
		if n.Name, err = d.nameRef(); err != nil {
			return nil, err
		}
		na, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		// Each attribute takes at least two bytes (name index, length).
		if na > uint64(len(d.s)-d.pos)/2+1 {
			return nil, d.corrupt("implausible attribute count")
		}
		if na > 0 {
			if n.Attrs, err = d.carve(int(na)); err != nil {
				return nil, err
			}
			for i := range n.Attrs {
				a, err := d.alloc(n)
				if err != nil {
					return nil, err
				}
				a.Kind = AttributeNode
				if a.Name, err = d.nameRef(); err != nil {
					return nil, err
				}
				if a.Data, err = d.str(); err != nil {
					return nil, err
				}
				n.Attrs[i] = a
			}
		}
		return n, d.children(n)
	case TextNode, CommentNode:
		n.Data, err = d.str()
		return n, err
	case ProcessingInstructionNode, AttributeNode:
		if n.Name, err = d.nameRef(); err != nil {
			return nil, err
		}
		n.Data, err = d.str()
		return n, err
	}
	return nil, d.corrupt(fmt.Sprintf("unknown node kind %d", kind))
}

func (d *decoder) children(n *Node) error {
	nc, err := d.uvarint()
	if err != nil {
		return err
	}
	if nc > uint64(len(d.s)-d.pos) {
		return d.corrupt("implausible child count")
	}
	if nc == 0 {
		return nil
	}
	if n.Children, err = d.carve(int(nc)); err != nil {
		return err
	}
	for i := range n.Children {
		c, err := d.node(n)
		if err != nil {
			return err
		}
		n.Children[i] = c
	}
	return nil
}
