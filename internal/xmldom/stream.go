package xmldom

import (
	"encoding/binary"
	"sort"
	"strings"
	"sync"
)

// Streaming ingest: StreamEncode turns wire XML directly into the binary
// document encoding in a single SAX-style pass — dictionary slots, the
// pre-order node stream and child counts are produced on the fly, and no
// intermediate Node tree is ever built. Without a projection the output is
// byte-identical to EncodeAppend(Parse(wire)) (FuzzStreamParse pins this),
// so the rest of the system cannot tell the two ingest paths apart.
//
// With a projection, subtrees the target queue's rules cannot reference
// are not encoded at all: the encoder still parses them (a skipped subtree
// is validated exactly like a kept one — well-formedness, entities,
// namespace declarations, duplicate attributes), but emits a single opaque
// span carrying the raw wire bytes and the namespace bindings in scope, to
// be re-parsed only if the document is ever fully materialized
// (decode.go). The projected format:
//
//	[0]      version byte EncVersionProjected (0x02)
//	uvarint  projection fingerprint (Projection.Fingerprint)
//	uvarint  pruned-name count; that many uvarint-prefixed local names of
//	         elements inside spans, sorted, distinct (the dispatch index
//	         merges them into the document's element-name key set)
//	uvarint  span count
//	...      dictionary, node count and node stream exactly as v1, except
//	         that a child slot may hold a span entry:
//	           span marker byte 0x0F
//	           uvarint binding count; per binding uvarint-prefixed prefix
//	           and URI (the in-scope declarations outside the span)
//	           uvarint raw length, raw wire bytes of the whole element
//
// The node count covers materialized nodes only; an element's child count
// includes its span children, so a full decode can splice the re-parsed
// subtrees back into position.

// EncVersionProjected is the format version byte of projected encodings.
const EncVersionProjected byte = 0x02

// spanMarker introduces an opaque span in a child slot of the node stream.
// It must stay disjoint from the NodeKind byte values.
const spanMarker byte = 0x0F

// StreamEncode parses wire XML and appends its binary encoding to dst in
// one pass. With proj == nil the output is the v1 encoding, byte-identical
// to EncodeAppend of the parsed tree. With a projection the output is the
// v2 projected encoding described above. Parse errors are *ParseError,
// identical to what Parse reports for the same input.
func StreamEncode(dst []byte, wire []byte, proj *Projection) ([]byte, error) {
	p := &parser{src: wire, line: 1, col: 1}
	e := streamEncPool.Get().(*streamEncoder)
	e.reset()
	if err := e.document(p, proj); err != nil {
		streamEncPool.Put(e)
		return nil, err
	}
	if proj != nil {
		dst = append(dst, EncVersionProjected)
		dst = binary.AppendUvarint(dst, proj.Fingerprint())
		names := e.prunedList[:0]
		for nm := range e.pruned {
			names = append(names, nm)
		}
		sort.Strings(names)
		e.prunedList = names
		dst = binary.AppendUvarint(dst, uint64(len(names)))
		for _, nm := range names {
			dst = appendStr(dst, nm)
		}
		dst = binary.AppendUvarint(dst, uint64(e.spanCount))
	} else {
		dst = append(dst, EncVersion)
	}
	dst = binary.AppendUvarint(dst, uint64(len(e.names)))
	for _, nm := range e.names {
		dst = appendStr(dst, nm.Space)
		dst = appendStr(dst, nm.Prefix)
		dst = appendStr(dst, nm.Local)
	}
	dst = binary.AppendUvarint(dst, e.count)
	dst = append(dst, e.stream...)
	streamEncPool.Put(e)
	return dst, nil
}

// seFrame is one open child list: the byte offset of its count slot and
// the number of children emitted so far.
type seFrame struct {
	slot int
	n    int
}

type streamEncoder struct {
	nameIdx map[Name]uint64
	names   []Name
	count   uint64 // materialized node count
	stream  []byte // node stream scratch, assembled after the header
	frames  []seFrame
	text    []byte // coalesced text scratch; empty whenever descending
	attrs   []rawAttr
	binds   []nsBinding // span binding compression scratch

	spanCount  int
	pruned     map[string]struct{}
	prunedList []string
	skipNames  []string // skip-mode duplicate-attribute scratch
}

var streamEncPool = sync.Pool{New: func() any {
	return &streamEncoder{
		nameIdx: make(map[Name]uint64, 16),
		pruned:  make(map[string]struct{}, 8),
	}
}}

func (e *streamEncoder) reset() {
	clear(e.nameIdx)
	e.names = e.names[:0]
	e.count = 0
	e.stream = e.stream[:0]
	e.frames = e.frames[:0]
	e.text = e.text[:0]
	e.spanCount = 0
	clear(e.pruned)
}

func (e *streamEncoder) nameIndex(nm Name) uint64 {
	i, ok := e.nameIdx[nm]
	if !ok {
		i = uint64(len(e.names))
		e.nameIdx[nm] = i
		e.names = append(e.names, nm)
	}
	return i
}

func (e *streamEncoder) str(s string) {
	e.stream = binary.AppendUvarint(e.stream, uint64(len(s)))
	e.stream = append(e.stream, s...)
}

// open reserves a one-byte child-count slot and pushes a frame for it.
func (e *streamEncoder) open() {
	e.frames = append(e.frames, seFrame{slot: len(e.stream)})
	e.stream = append(e.stream, 0)
}

// close pops the current frame and patches its count slot, splicing in
// extra varint bytes for counts that need more than one.
func (e *streamEncoder) close() {
	f := e.frames[len(e.frames)-1]
	e.frames = e.frames[:len(e.frames)-1]
	if f.n < 0x80 {
		e.stream[f.slot] = byte(f.n)
		return
	}
	var tmp [binary.MaxVarintLen64]byte
	ln := binary.PutUvarint(tmp[:], uint64(f.n))
	e.stream = append(e.stream, tmp[1:ln]...)
	copy(e.stream[f.slot+ln:], e.stream[f.slot+1:])
	copy(e.stream[f.slot:], tmp[:ln])
}

// childHere counts one more child in the innermost open list.
func (e *streamEncoder) childHere() { e.frames[len(e.frames)-1].n++ }

func (e *streamEncoder) flushText() {
	if len(e.text) == 0 {
		return
	}
	e.childHere()
	e.count++
	e.stream = append(e.stream, byte(TextNode))
	e.stream = binary.AppendUvarint(e.stream, uint64(len(e.text)))
	e.stream = append(e.stream, e.text...)
	e.text = e.text[:0]
}

func (e *streamEncoder) emitComment(data string) {
	e.childHere()
	e.count++
	e.stream = append(e.stream, byte(CommentNode))
	e.str(data)
}

func (e *streamEncoder) emitPI(pi *Node) {
	e.childHere()
	e.count++
	e.stream = append(e.stream, byte(ProcessingInstructionNode))
	e.stream = binary.AppendUvarint(e.stream, e.nameIndex(pi.Name))
	e.str(pi.Data)
}

// document mirrors parser.parseDocument, emitting instead of building.
func (e *streamEncoder) document(p *parser, proj *Projection) error {
	e.count++
	e.stream = append(e.stream, byte(DocumentNode))
	e.open()
	if p.hasPrefix("<?xml") {
		if err := p.skipPI(); err != nil {
			return err
		}
	}
	seenRoot := false
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		switch {
		case p.hasPrefix("<!--"):
			c, err := p.parseComment()
			if err != nil {
				return err
			}
			e.emitComment(c.Data)
		case p.hasPrefix("<!DOCTYPE"):
			if err := p.skipDoctype(); err != nil {
				return err
			}
		case p.hasPrefix("<?"):
			pi, err := p.parsePI()
			if err != nil {
				return err
			}
			e.emitPI(pi)
		case p.peek() == '<':
			if seenRoot {
				return p.errf("multiple document elements")
			}
			if err := e.child(p, proj); err != nil {
				return err
			}
			seenRoot = true
		default:
			return p.errf("content outside document element")
		}
	}
	if !seenRoot {
		return p.errf("no document element")
	}
	e.close()
	return nil
}

// child parses one child element at '<', deciding from the parent's trie
// node whether to materialize it or store it as an opaque span. t == nil
// means keep everything below.
func (e *streamEncoder) child(p *parser, t *Projection) error {
	start := p.pos
	if err := p.expect("<"); err != nil {
		return err
	}
	rawName, err := p.parseRawName()
	if err != nil {
		return err
	}
	var sub *Projection
	if t != nil {
		// The projection decision needs only the lexical local part; a
		// malformed QName falls through to the keep path, which reports
		// the same error the tree parser would.
		local := rawName
		if i := strings.IndexByte(rawName, ':'); i >= 0 {
			local = rawName[i+1:]
		}
		s, keep := t.Lookup(local)
		if !keep {
			return e.skip(p, start, rawName)
		}
		sub = s
	}
	return e.element(p, rawName, sub)
}

// element mirrors parser.parseElement for a kept element, with the leading
// "<name" already consumed.
func (e *streamEncoder) element(p *parser, rawName string, t *Projection) error {
	nsMark := len(p.ns)
	defer func() { p.ns = p.ns[:nsMark] }()

	attrs := e.attrs[:0]
	for {
		p.skipSpace()
		if p.eof() {
			return p.errf("unterminated start tag <%s>", rawName)
		}
		c := p.peek()
		if c == '>' || c == '/' {
			break
		}
		aname, err := p.parseRawName()
		if err != nil {
			return err
		}
		p.skipSpace()
		if err := p.expect("="); err != nil {
			return err
		}
		p.skipSpace()
		aval, err := p.parseAttrValue()
		if err != nil {
			return err
		}
		switch {
		case aname == "xmlns":
			p.ns = append(p.ns, nsBinding{prefix: "", uri: aval})
		case strings.HasPrefix(aname, "xmlns:"):
			px := aname[len("xmlns:"):]
			if aval == "" {
				return p.errf("cannot undeclare prefix %q with empty URI", px)
			}
			p.ns = append(p.ns, nsBinding{prefix: px, uri: aval})
		default:
			for _, prev := range attrs {
				if prev.name == aname {
					return p.errf("duplicate attribute %q", aname)
				}
			}
			attrs = append(attrs, rawAttr{name: aname, value: aval})
		}
	}
	e.attrs = attrs[:0] // keep the grown capacity for reuse

	prefix, local, err := splitQName(rawName)
	if err != nil {
		return p.errf("%v", err)
	}
	uri, ok := p.lookup(prefix)
	if !ok {
		return p.errf("undeclared namespace prefix %q", prefix)
	}
	name := Name{Space: uri, Prefix: prefix, Local: local}

	// The whole start tag is emitted before descending, so the attribute
	// scratch is free again for nested elements.
	e.childHere()
	e.count++
	e.stream = append(e.stream, byte(ElementNode))
	e.stream = binary.AppendUvarint(e.stream, e.nameIndex(name))
	e.stream = binary.AppendUvarint(e.stream, uint64(len(attrs)))
	for _, ra := range attrs {
		aprefix, alocal, err := splitQName(ra.name)
		if err != nil {
			return p.errf("%v", err)
		}
		auri := ""
		if aprefix != "" { // unprefixed attributes are in no namespace
			auri, ok = p.lookup(aprefix)
			if !ok {
				return p.errf("undeclared namespace prefix %q", aprefix)
			}
		}
		e.count++
		e.stream = binary.AppendUvarint(e.stream, e.nameIndex(Name{Space: auri, Prefix: aprefix, Local: alocal}))
		e.str(ra.value)
	}
	e.open()

	if p.consume("/>") {
		e.close()
		return nil
	}
	if err := p.expect(">"); err != nil {
		return err
	}
	if err := e.content(p, t, name); err != nil {
		return err
	}
	closeName, err := p.parseRawName()
	if err != nil {
		return err
	}
	if closeName != rawName {
		return p.errf("mismatched end tag </%s>, expected </%s>", closeName, rawName)
	}
	p.skipSpace()
	if err := p.expect(">"); err != nil {
		return err
	}
	e.close()
	return nil
}

// content mirrors parser.parseContent up to (and consuming) the "</" of
// the matching end tag. The text scratch is empty whenever descending into
// a child, so one buffer serves every nesting level.
func (e *streamEncoder) content(p *parser, t *Projection, name Name) error {
	for {
		if p.eof() {
			return p.errf("unterminated element <%s>", name)
		}
		switch {
		case p.hasPrefix("</"):
			e.flushText()
			p.consume("</")
			return nil
		case p.hasPrefix("<!--"):
			e.flushText()
			c, err := p.parseComment()
			if err != nil {
				return err
			}
			e.emitComment(c.Data)
		case p.hasPrefix("<![CDATA["):
			if err := e.cdata(p); err != nil {
				return err
			}
		case p.hasPrefix("<?"):
			e.flushText()
			pi, err := p.parsePI()
			if err != nil {
				return err
			}
			e.emitPI(pi)
		case p.peek() == '<':
			e.flushText()
			if err := e.child(p, t); err != nil {
				return err
			}
		case p.peek() == '&':
			r, err := p.parseReference()
			if err != nil {
				return err
			}
			e.text = append(e.text, r...)
		default:
			e.text = append(e.text, p.advance())
		}
	}
}

func (e *streamEncoder) cdata(p *parser) error {
	if err := p.expect("<![CDATA["); err != nil {
		return err
	}
	start := p.pos
	for !p.eof() {
		if p.hasPrefix("]]>") {
			e.text = append(e.text, p.src[start:p.pos]...)
			p.consume("]]>")
			return nil
		}
		p.advance()
	}
	return p.errf("unterminated CDATA section")
}

// skip validates the element exactly as the keep path would, then emits a
// single opaque span carrying its raw bytes and the namespace bindings in
// scope around it. start is the offset of the element's '<'; the leading
// "<name" is already consumed.
func (e *streamEncoder) skip(p *parser, start int, rawName string) error {
	outer := len(p.ns)
	if err := e.skipElement(p, rawName); err != nil {
		return err
	}
	raw := p.src[start:p.pos]

	e.childHere()
	e.spanCount++
	e.stream = append(e.stream, spanMarker)
	// Innermost declaration per prefix wins; the compressed list seeds the
	// namespace stack when the span is re-parsed.
	binds := e.binds[:0]
	for i := outer - 1; i >= 0; i-- {
		b := p.ns[i]
		dup := false
		for _, x := range binds {
			if x.prefix == b.prefix {
				dup = true
				break
			}
		}
		if !dup {
			binds = append(binds, b)
		}
	}
	e.binds = binds
	e.stream = binary.AppendUvarint(e.stream, uint64(len(binds)))
	for _, b := range binds {
		e.str(b.prefix)
		e.str(b.uri)
	}
	e.stream = binary.AppendUvarint(e.stream, uint64(len(raw)))
	e.stream = append(e.stream, raw...)
	return nil
}

func (e *streamEncoder) recordPruned(rawName string) {
	local := rawName
	if i := strings.IndexByte(rawName, ':'); i >= 0 {
		local = rawName[i+1:]
	}
	e.pruned[local] = struct{}{}
}

// skipElement validates an element without emitting anything, mirroring
// parseElement's checks (and their order) exactly: attribute syntax and
// entities, namespace declarations, duplicate attributes, QName and prefix
// resolution, tag matching.
func (e *streamEncoder) skipElement(p *parser, rawName string) error {
	nsMark := len(p.ns)
	defer func() { p.ns = p.ns[:nsMark] }()
	e.recordPruned(rawName)

	names := e.skipNames[:0]
	for {
		p.skipSpace()
		if p.eof() {
			return p.errf("unterminated start tag <%s>", rawName)
		}
		c := p.peek()
		if c == '>' || c == '/' {
			break
		}
		aname, err := p.parseRawName()
		if err != nil {
			return err
		}
		p.skipSpace()
		if err := p.expect("="); err != nil {
			return err
		}
		p.skipSpace()
		aval, err := p.parseAttrValue()
		if err != nil {
			return err
		}
		switch {
		case aname == "xmlns":
			p.ns = append(p.ns, nsBinding{prefix: "", uri: aval})
		case strings.HasPrefix(aname, "xmlns:"):
			px := aname[len("xmlns:"):]
			if aval == "" {
				return p.errf("cannot undeclare prefix %q with empty URI", px)
			}
			p.ns = append(p.ns, nsBinding{prefix: px, uri: aval})
		default:
			for _, prev := range names {
				if prev == aname {
					return p.errf("duplicate attribute %q", aname)
				}
			}
			names = append(names, aname)
		}
	}

	prefix, _, err := splitQName(rawName)
	if err != nil {
		return p.errf("%v", err)
	}
	if _, ok := p.lookup(prefix); !ok {
		return p.errf("undeclared namespace prefix %q", prefix)
	}
	for _, an := range names {
		aprefix, _, err := splitQName(an)
		if err != nil {
			return p.errf("%v", err)
		}
		if aprefix != "" {
			if _, ok := p.lookup(aprefix); !ok {
				return p.errf("undeclared namespace prefix %q", aprefix)
			}
		}
	}
	e.skipNames = names[:0] // start tag done; scratch free for nested tags

	if p.consume("/>") {
		return nil
	}
	if err := p.expect(">"); err != nil {
		return err
	}
	if err := e.skipContent(p, rawName); err != nil {
		return err
	}
	closeName, err := p.parseRawName()
	if err != nil {
		return err
	}
	if closeName != rawName {
		return p.errf("mismatched end tag </%s>, expected </%s>", closeName, rawName)
	}
	p.skipSpace()
	return p.expect(">")
}

func (e *streamEncoder) skipContent(p *parser, rawName string) error {
	for {
		if p.eof() {
			return p.errf("unterminated element <%s>", rawName)
		}
		switch {
		case p.hasPrefix("</"):
			p.consume("</")
			return nil
		case p.hasPrefix("<!--"):
			if _, err := p.parseComment(); err != nil {
				return err
			}
		case p.hasPrefix("<![CDATA["):
			if err := e.skipCDATA(p); err != nil {
				return err
			}
		case p.hasPrefix("<?"):
			if _, err := p.parsePI(); err != nil {
				return err
			}
		case p.peek() == '<':
			if err := p.expect("<"); err != nil {
				return err
			}
			childRaw, err := p.parseRawName()
			if err != nil {
				return err
			}
			if err := e.skipElement(p, childRaw); err != nil {
				return err
			}
		case p.peek() == '&':
			if _, err := p.parseReference(); err != nil {
				return err
			}
		default:
			p.advance()
		}
	}
}

func (e *streamEncoder) skipCDATA(p *parser) error {
	if err := p.expect("<![CDATA["); err != nil {
		return err
	}
	for !p.eof() {
		if p.consume("]]>") {
			return nil
		}
		p.advance()
	}
	return p.errf("unterminated CDATA section")
}
