package xmldom

// Builder constructs XML trees programmatically. It is used by the XQuery
// element constructors and by the engine when synthesizing system messages
// (errors, acknowledgements). The resulting tree is sealed on Done.
//
//	b := NewBuilder()
//	b.StartElement(Name{Local: "order"})
//	b.Attribute(Name{Local: "id"}, "42")
//	b.Text("payload")
//	b.EndElement()
//	doc := b.Done()
type Builder struct {
	doc   *Node
	stack []*Node
}

// NewBuilder returns a builder positioned at a fresh document node.
func NewBuilder() *Builder {
	doc := &Node{Kind: DocumentNode}
	return &Builder{doc: doc, stack: []*Node{doc}}
}

func (b *Builder) top() *Node { return b.stack[len(b.stack)-1] }

// StartElement opens a new element as a child of the current node.
func (b *Builder) StartElement(name Name) *Builder {
	el := &Node{Kind: ElementNode, Name: InternName(name), Parent: b.top()}
	b.top().Children = append(b.top().Children, el)
	b.stack = append(b.stack, el)
	return b
}

// EndElement closes the current element.
func (b *Builder) EndElement() *Builder {
	if len(b.stack) <= 1 {
		panic("xmldom: EndElement without matching StartElement")
	}
	b.stack = b.stack[:len(b.stack)-1]
	return b
}

// Attribute adds an attribute to the current element. Duplicate names
// overwrite the previous value, matching constructor semantics.
func (b *Builder) Attribute(name Name, value string) *Builder {
	el := b.top()
	if el.Kind != ElementNode {
		panic("xmldom: Attribute outside element")
	}
	name = InternName(name)
	for _, a := range el.Attrs {
		if a.Name.Space == name.Space && a.Name.Local == name.Local {
			a.Data = value
			return b
		}
	}
	el.Attrs = append(el.Attrs, &Node{Kind: AttributeNode, Name: name, Data: value, Parent: el})
	return b
}

// Text appends character data to the current node, merging with a
// preceding text node if one exists (the data model never contains two
// adjacent text nodes).
func (b *Builder) Text(data string) *Builder {
	if data == "" {
		return b
	}
	parent := b.top()
	if n := len(parent.Children); n > 0 && parent.Children[n-1].Kind == TextNode {
		parent.Children[n-1].Data += data
		return b
	}
	parent.Children = append(parent.Children, &Node{Kind: TextNode, Data: data, Parent: parent})
	return b
}

// Comment appends a comment node.
func (b *Builder) Comment(data string) *Builder {
	parent := b.top()
	parent.Children = append(parent.Children, &Node{Kind: CommentNode, Data: data, Parent: parent})
	return b
}

// Subtree deep-copies an existing node (and its descendants) into the
// current position. Attribute nodes are attached as attributes of the
// current element; other kinds become children. This implements the
// node-copy semantics of enclosed expressions in constructors.
func (b *Builder) Subtree(n *Node) *Builder {
	parent := b.top()
	if n.Kind == AttributeNode {
		return b.Attribute(n.Name, n.Data)
	}
	if n.Kind == DocumentNode {
		for _, c := range n.Children {
			b.Subtree(c)
		}
		return b
	}
	if n.Kind == TextNode {
		return b.Text(n.Data)
	}
	c := n.cloneRec(parent)
	parent.Children = append(parent.Children, c)
	return b
}

// Element is a convenience for a leaf element with text content.
func (b *Builder) Element(name Name, text string) *Builder {
	b.StartElement(name)
	b.Text(text)
	b.EndElement()
	return b
}

// Done seals and returns the document. The builder must be balanced.
func (b *Builder) Done() *Node {
	if len(b.stack) != 1 {
		panic("xmldom: unbalanced builder")
	}
	b.doc.Seal()
	return b.doc
}

// Elem is a shorthand for constructing a simple document
// <local>text</local> used widely in tests.
func Elem(local, text string) *Node {
	return NewBuilder().Element(Name{Local: local}, text).Done()
}
