package xmldom

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// genTree builds a random well-formed tree; it is the generator for the
// serialize→parse round-trip property.
func genTree(r *rand.Rand, depth int) *Node {
	el := &Node{Kind: ElementNode, Name: Name{Local: randName(r)}}
	nattrs := r.Intn(3)
	seen := map[string]bool{}
	for i := 0; i < nattrs; i++ {
		an := randName(r)
		if seen[an] {
			continue
		}
		seen[an] = true
		el.Attrs = append(el.Attrs, &Node{
			Kind: AttributeNode, Name: Name{Local: an}, Data: randText(r), Parent: el,
		})
	}
	if depth > 0 {
		nchildren := r.Intn(4)
		lastText := false
		for i := 0; i < nchildren; i++ {
			switch r.Intn(3) {
			case 0:
				if lastText {
					continue // model never holds adjacent text nodes
				}
				t := randText(r)
				if t == "" {
					continue
				}
				el.Children = append(el.Children, &Node{Kind: TextNode, Data: t, Parent: el})
				lastText = true
			case 1:
				c := genTree(r, depth-1)
				c.Parent = el
				el.Children = append(el.Children, c)
				lastText = false
			case 2:
				el.Children = append(el.Children, &Node{Kind: CommentNode, Data: "c" + randName(r), Parent: el})
				lastText = false
			}
		}
	}
	return el
}

func randName(r *rand.Rand) string {
	const letters = "abcdefghij"
	n := 1 + r.Intn(6)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(letters[r.Intn(len(letters))])
	}
	return sb.String()
}

func randText(r *rand.Rand) string {
	const chars = "abc <>&\"'xyz \t\n"
	n := r.Intn(12)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(chars[r.Intn(len(chars))])
	}
	return sb.String()
}

// TestQuickRoundTrip checks serialize(parse(serialize(t))) ≡ t for random
// trees: the serializer must produce well-formed XML and the parser must
// reconstruct the identical structure.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := &Node{Kind: DocumentNode}
		rootEl := genTree(r, 4)
		rootEl.Parent = doc
		doc.Children = []*Node{rootEl}
		doc.Seal()

		text := Serialize(doc)
		doc2, err := ParseString(text)
		if err != nil {
			t.Logf("seed %d: parse error %v on %q", seed, err, text)
			return false
		}
		if !DeepEqual(doc, doc2) {
			t.Logf("seed %d: structures differ\n%s\n%s", seed, text, Serialize(doc2))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDocOrderTotal checks that Before is a strict total order over all
// nodes of a random tree.
func TestQuickDocOrderTotal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := &Node{Kind: DocumentNode}
		rootEl := genTree(r, 3)
		rootEl.Parent = doc
		doc.Children = []*Node{rootEl}
		doc.Seal()

		var all []*Node
		var collect func(n *Node)
		collect = func(n *Node) {
			all = append(all, n)
			for _, a := range n.Attrs {
				all = append(all, a)
			}
			for _, c := range n.Children {
				collect(c)
			}
		}
		collect(doc)
		for i := range all {
			for j := range all {
				bij, bji := all[i].Before(all[j]), all[j].Before(all[i])
				if i == j && (bij || bji) {
					return false // irreflexive
				}
				if i != j && bij == bji {
					return false // total and antisymmetric
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
