package xmldom

import (
	"testing"
)

// FuzzParse drives the parser with arbitrary bytes. For every input the
// parser accepts, the round-trip oracle must hold: Serialize of the parsed
// tree reparses successfully, the reparsed tree is structurally equal to
// the first, and a second round-trip produces byte-identical output
// (serialization is a fixed point after one normalization pass).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a><b>text</b><b x="1"/></a>`,
		`<m><k>s1</k><data>payload &amp; more</data></m>`,
		`<ns:a xmlns:ns="urn:x"><ns:b ns:attr="v"/></ns:a>`,
		`<a xmlns="urn:default"><b/></a>`,
		`<a><!--comment--><?pi data?>t</a>`,
		`<a>&lt;escaped&gt; &quot;q&quot; &#65; &#x42;</a>`,
		`<?xml version="1.0"?><root><nested><deep>x</deep></nested></root>`,
		`<a att="  spaced  value "><![CDATA[raw <stuff> &]]></a>`,
		"<a>\n\tmixed <b>content</b> tail\n</a>",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Parse(data)
		if err != nil {
			return // rejected input: only panics are failures
		}
		first := Serialize(doc)
		doc2, err := Parse([]byte(first))
		if err != nil {
			t.Fatalf("serialized output does not reparse: %v\ninput:  %q\noutput: %q", err, data, first)
		}
		if !DeepEqual(doc, doc2) {
			t.Fatalf("round-trip changed the tree\ninput:  %q\noutput: %q\nreout:  %q", data, first, Serialize(doc2))
		}
		second := Serialize(doc2)
		if first != second {
			t.Fatalf("serialization is not idempotent\nfirst:  %q\nsecond: %q", first, second)
		}
	})
}
