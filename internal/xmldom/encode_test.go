package xmldom

import (
	"bytes"
	"strings"
	"testing"
)

var codecFixtures = []string{
	`<a/>`,
	`<a><b>text</b><b x="1"/></a>`,
	`<m><k>s1</k><data>payload &amp; more</data></m>`,
	`<ns:a xmlns:ns="urn:x"><ns:b ns:attr="v"/></ns:a>`,
	`<a xmlns="urn:default"><b/><c q="2">t</c></a>`,
	`<a><!--comment--><?pi data?>t</a>`,
	`<a>&lt;escaped&gt; &quot;q&quot; &#65; &#x42;</a>`,
	`<?xml version="1.0"?><root><nested><deep attr="x">x</deep></nested></root>`,
	`<a att="  spaced  value "><![CDATA[raw <stuff> &]]></a>`,
	"<a>\n\tmixed <b>content</b> tail\n</a>",
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, src := range codecFixtures {
		doc := MustParse(src)
		enc := Encode(doc)
		if !Encoded(enc) {
			t.Fatalf("%s: encoding not recognized by Encoded", src)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", src, err)
		}
		if !dec.Sealed() {
			t.Fatalf("%s: decoded tree not sealed", src)
		}
		owned, err := DecodeOwned(append([]byte(nil), enc...))
		if err != nil || !DeepEqual(dec, owned) {
			t.Fatalf("%s: DecodeOwned differs from Decode (err=%v)", src, err)
		}
		if !DeepEqual(doc, dec) {
			t.Fatalf("%s: decoded tree differs\nwant %s\ngot  %s", src, Serialize(doc), Serialize(dec))
		}
		if got, want := Serialize(dec), Serialize(doc); got != want {
			t.Fatalf("%s: serialization changed: %q vs %q", src, got, want)
		}
		re := Encode(dec)
		if !bytes.Equal(enc, re) {
			t.Fatalf("%s: re-encode not byte-identical (%d vs %d bytes)", src, len(enc), len(re))
		}
	}
}

// TestDecodeDocumentOrder checks that decode assigns the same document
// order Seal would: an in-order walk of the decoded tree must be strictly
// increasing under Before, with attributes right after their element.
func TestDecodeDocumentOrder(t *testing.T) {
	doc := MustParse(`<a p="1" q="2"><b/><c r="3">t<d/></c><!--x--></a>`)
	dec, err := Decode(Encode(doc))
	if err != nil {
		t.Fatal(err)
	}
	var seq []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		seq = append(seq, n)
		for _, a := range n.Attrs {
			seq = append(seq, a)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(dec)
	for i := 1; i < len(seq); i++ {
		if !seq[i-1].Before(seq[i]) {
			t.Fatalf("node %d not before node %d in decoded order", i-1, i)
		}
		if seq[i].Before(seq[i-1]) {
			t.Fatalf("Before not antisymmetric at %d", i)
		}
	}
	for _, n := range seq[1:] {
		if n.Parent == nil {
			t.Fatalf("non-root node without parent: %v", n.Kind)
		}
		if n.Document() != dec {
			t.Fatalf("Document() does not reach decoded root")
		}
	}
}

// TestDecodeDetachedRoots covers non-document roots: elements, attributes
// and text can be encoded standalone (collections and constructed nodes).
func TestDecodeDetachedRoots(t *testing.T) {
	el := MustParse(`<x a="1"><y/></x>`).Root()
	dec, err := Decode(Encode(el))
	if err != nil {
		t.Fatal(err)
	}
	if !DeepEqual(el, dec) {
		t.Fatalf("element root round-trip failed")
	}
	attr := &Node{Kind: AttributeNode, Name: Name{Local: "k"}, Data: "v"}
	attr.Seal()
	dec, err = Decode(Encode(attr))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != AttributeNode || dec.Data != "v" || dec.Name.Local != "k" {
		t.Fatalf("attribute root round-trip failed: %+v", dec)
	}
}

// TestDecodeCorrupt feeds truncations and bit flips of a valid encoding to
// the decoder: every outcome must be a clean error or a successful decode,
// never a panic or hang.
func TestDecodeCorrupt(t *testing.T) {
	enc := Encode(MustParse(`<ns:a xmlns:ns="urn:x" k="v"><b>text</b><!--c--><?p d?></ns:a>`))
	for i := 0; i <= len(enc); i++ {
		_, _ = Decode(enc[:i])
	}
	for i := 0; i < len(enc); i++ {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), enc...)
			mut[i] ^= flip
			if doc, err := Decode(mut); err == nil && doc == nil {
				t.Fatalf("nil doc without error at byte %d", i)
			}
		}
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) must fail")
	}
	if _, err := Decode([]byte{EncVersion}); err == nil {
		t.Fatal("Decode of bare version byte must fail")
	}
}

// TestMaterializeDispatch checks the storage-layer entry point: text XML
// parses, encoded payloads decode, and both yield equal trees.
func TestMaterializeDispatch(t *testing.T) {
	src := `<order id="7"><item>x</item></order>`
	fromText, err := Materialize([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := Materialize(Encode(fromText))
	if err != nil {
		t.Fatal(err)
	}
	if !DeepEqual(fromText, fromBin) {
		t.Fatal("materialized trees differ between formats")
	}
}

// TestInternNameSharing checks that parse and decode agree on canonical
// name strings, which is what makes node tests pointer-comparable.
func TestInternNameSharing(t *testing.T) {
	a := MustParse(`<order><item/></order>`)
	b, err := Decode(Encode(MustParse(`<order><item/></order>`)))
	if err != nil {
		t.Fatal(err)
	}
	an, bn := a.Root().Name, b.Root().Name
	if an != bn {
		t.Fatalf("names differ: %+v vs %+v", an, bn)
	}
	// Identical canonical strings share backing storage; the cheap proxy
	// observable without unsafe is that interning is idempotent.
	if InternString("order") != InternString("order") {
		t.Fatal("InternString not stable")
	}
	if got := InternName(Name{Local: "order"}); got != InternName(Name{Local: "order"}) {
		t.Fatalf("InternName not stable: %+v", got)
	}
}

// FuzzEncodeDecode is the differential oracle for the storage format: for
// any parsable document, encode→decode must reproduce the tree exactly
// (same structure via DeepEqual, same wire text via Serialize) and
// decode→re-encode must be byte-identical, so the format has one canonical
// encoding per tree.
func FuzzEncodeDecode(f *testing.F) {
	for _, s := range codecFixtures {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes into the decoder must fail cleanly, never panic;
		// a record that happens to decode must serialize without crashing.
		if dec, err := Decode(data); err == nil {
			_ = Serialize(dec)
		}
		doc, err := Parse(data)
		if err != nil {
			return // rejected input: only panics are failures
		}
		enc := Encode(doc)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode of fresh encoding failed: %v\ninput: %q", err, data)
		}
		if !DeepEqual(doc, dec) {
			t.Fatalf("decoded tree differs\ninput: %q\nwant:  %q\ngot:   %q", data, Serialize(doc), Serialize(dec))
		}
		if a, b := Serialize(doc), Serialize(dec); a != b {
			t.Fatalf("wire text changed across the storage format\nwant: %q\ngot:  %q", a, b)
		}
		re := Encode(dec)
		if !bytes.Equal(enc, re) {
			t.Fatalf("re-encode not byte-identical\ninput: %q", data)
		}
	})
}

// bigDoc builds a ~nElems-element document exercising attributes, mixed
// content and a namespace, for the allocation and benchmark fixtures.
func bigDoc(nElems int) *Node {
	var sb strings.Builder
	sb.WriteString(`<m:batch xmlns:m="urn:demaq:test">`)
	for i := 0; i < nElems; i++ {
		sb.WriteString(`<m:item id="`)
		sb.WriteString(strings.Repeat("7", 1+i%4))
		sb.WriteString(`" state="open"><name>article name</name><qty>42</qty><note>mixed <b>content</b> tail</note></m:item>`)
	}
	sb.WriteString(`</m:batch>`)
	return MustParse(sb.String())
}

// TestDecodeAllocs is the allocation regression gate for rehydration: the
// decode of an arbitrarily large document must stay at a constant, small
// number of allocations (node arena, pointer arena, backing string, name
// dictionary) — per-node allocations must not creep back in.
func TestDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	doc := bigDoc(40) // ~200 nodes
	enc := Encode(doc)
	if _, err := Decode(enc); err != nil { // warm the intern table
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := Decode(enc); err != nil {
			t.Fatal(err)
		}
	})
	// 4 structural allocations + a little slack for runtime noise; a
	// per-node regression would show up as hundreds.
	if avg > 8 {
		t.Fatalf("Decode allocates %.1f times per run, want <= 8", avg)
	}
	owned := testing.AllocsPerRun(200, func() {
		if _, err := DecodeOwned(enc); err != nil {
			t.Fatal(err)
		}
	})
	if owned >= avg {
		t.Fatalf("DecodeOwned (%.1f allocs) must undercut Decode (%.1f): the backing-string copy is its whole point", owned, avg)
	}
}

// TestAppendSerializeAllocs gates the pooled-serializer path: rendering
// into a pre-sized buffer must not allocate per node. The only permitted
// allocations are the namespace-scope copies for declarations the
// document actually introduces (one per declaring element).
func TestAppendSerializeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	doc := bigDoc(40)
	buf := AppendSerialize(nil, doc)
	size := cap(buf)
	avg := testing.AllocsPerRun(200, func() {
		buf = AppendSerialize(buf[:0], doc)
	})
	// The root element introduces one namespace declaration: one decls
	// slice plus one scope copy. Nothing may scale with node count.
	if avg > 3 {
		t.Fatalf("AppendSerialize allocates %.1f times per run into a %d-byte buffer, want <= 3", avg, size)
	}
}
