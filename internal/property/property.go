// Package property implements Demaq message properties (paper Sec. 2.2):
// typed key/value metadata attached to messages at creation time and fixed
// for the message's lifetime. Values are established, in order of
// precedence, by the system, explicitly by the enqueuing rule, by
// inheritance from the triggering message, or computed by an expression
// evaluated against the message body (which may also serve as a default).
package property

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xquery"
)

// System property names set by the engine (Sec. 2.2 "System").
const (
	SysCreatingRule = "demaq:rule"       // name of the rule that created the message
	SysCreated      = "demaq:created"    // creation timestamp
	SysSender       = "demaq:sender"     // sender of incoming gateway messages
	SysConnection   = "demaq:connection" // connection handle for synchronous replies
)

// Def is one property definition.
type Def struct {
	Name      string
	Type      xdm.Type
	Inherited bool
	Fixed     bool
	// PerQueue maps a queue name to the value expression declared for it;
	// the expression is evaluated with the new message's document as
	// context (computed properties), so constants act as defaults.
	PerQueue map[string]*xquery.Compiled
}

// Queues returns the queues the property is defined on, sorted.
func (d *Def) Queues() []string {
	out := make([]string, 0, len(d.PerQueue))
	for q := range d.PerQueue {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// Manager holds all property definitions of an application.
type Manager struct {
	mu   sync.RWMutex
	defs map[string]*Def
}

// NewManager returns an empty property manager.
func NewManager() *Manager {
	return &Manager{defs: map[string]*Def{}}
}

// Define registers a property definition.
func (m *Manager) Define(d *Def) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.defs[d.Name]; ok {
		return fmt.Errorf("property: %q already defined", d.Name)
	}
	m.defs[d.Name] = d
	return nil
}

// Def returns a definition by name.
func (m *Manager) Def(name string) (*Def, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.defs[name]
	return d, ok
}

// Defs returns all definitions, sorted by name.
func (m *Manager) Defs() []*Def {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Def, 0, len(m.defs))
	for _, d := range m.defs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DefsForQueue returns the definitions declared on the given queue.
func (m *Manager) DefsForQueue(queue string) []*Def {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Def
	for _, d := range m.defs {
		if _, ok := d.PerQueue[queue]; ok {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// nullRuntime backs computed-property evaluation: property value
// expressions see only the message body, never queues or slices.
type nullRuntime struct{ now time.Time }

func (nullRuntime) Message() (*xmldom.Node, error) {
	return nil, fmt.Errorf("property: qs:message() not available in property expressions")
}
func (nullRuntime) Queue(string) ([]*xmldom.Node, error) {
	return nil, fmt.Errorf("property: qs:queue() not available in property expressions")
}
func (nullRuntime) Property(string) (xdm.Value, error) {
	return xdm.Value{}, fmt.Errorf("property: qs:property() not available in property expressions")
}
func (nullRuntime) Slice() ([]*xmldom.Node, error) {
	return nil, fmt.Errorf("property: qs:slice() not available in property expressions")
}
func (nullRuntime) SliceKey() (xdm.Value, error) {
	return xdm.Value{}, fmt.Errorf("property: qs:slicekey() not available in property expressions")
}
func (nullRuntime) Collection(string) ([]*xmldom.Node, error) { return nil, nil }
func (r nullRuntime) Now() time.Time                          { return r.now }

// Evaluate computes the full property set of a message entering queue.
//
//	doc       — the new message's document
//	explicit  — properties set by "with ... value ..." clauses
//	parent    — properties of the triggering message (nil for external)
//	system    — system-assigned properties
//
// Precedence follows the paper: fixed properties always take their
// computed value and reject explicit assignment; otherwise explicit wins,
// then inheritance, then the computed/default expression.
func (m *Manager) Evaluate(queue string, doc *xmldom.Node, explicit, parent, system map[string]xdm.Value, now time.Time) (map[string]xdm.Value, error) {
	out := map[string]xdm.Value{}
	for k, v := range system {
		out[k] = v
	}
	m.mu.RLock()
	defer m.mu.RUnlock()

	// Explicit values must reference defined, non-fixed properties on this
	// queue (system properties may also be set explicitly, e.g. Sender).
	for k, v := range explicit {
		if isSystemName(k) {
			out[k] = v
			continue
		}
		d, ok := m.defs[k]
		if !ok {
			return nil, fmt.Errorf("property: %q is not defined", k)
		}
		if d.Fixed {
			return nil, fmt.Errorf("property: %q is fixed and cannot be set explicitly", k)
		}
		if _, onQueue := d.PerQueue[queue]; !onQueue {
			return nil, fmt.Errorf("property: %q is not defined on queue %q", k, queue)
		}
		cv, err := v.Cast(d.Type)
		if err != nil {
			return nil, fmt.Errorf("property: %q: %v", k, err)
		}
		out[k] = cv
	}

	for _, d := range m.defs {
		expr, onQueue := d.PerQueue[queue]
		if !onQueue {
			continue
		}
		if _, set := out[d.Name]; set && !d.Fixed {
			continue // explicit value stands
		}
		if !d.Fixed && d.Inherited && parent != nil {
			if pv, ok := parent[d.Name]; ok {
				out[d.Name] = pv
				continue
			}
		}
		if expr == nil {
			continue
		}
		seq, _, err := xquery.Eval(expr, nullRuntime{now: now}, xquery.EvalOptions{ContextDoc: doc})
		if err != nil {
			return nil, fmt.Errorf("property: %q: %v", d.Name, err)
		}
		if len(seq) == 0 {
			continue // no value derivable; property absent
		}
		v, err := xdm.Atomize(seq[0]).Cast(d.Type)
		if err != nil {
			return nil, fmt.Errorf("property: %q: %v", d.Name, err)
		}
		out[d.Name] = v
	}
	return out, nil
}

func isSystemName(name string) bool {
	switch name {
	case SysCreatingRule, SysCreated, SysSender, SysConnection,
		"Sender", "Connection", "timeout", "target":
		return true
	}
	return false
}
