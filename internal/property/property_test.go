package property

import (
	"testing"
	"time"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xquery"
)

func compile(t *testing.T, src string) *xquery.Compiled {
	t.Helper()
	return xquery.MustCompile(src, xquery.CompileOptions{})
}

func defOrderID(t *testing.T) *Def {
	// The paper's Sec. 2.2 example: computed, fixed, different expressions
	// per queue.
	return &Def{
		Name: "orderID", Type: xdm.TypeString, Fixed: true,
		PerQueue: map[string]*xquery.Compiled{
			"order":        compile(t, `//orderID`),
			"confirmation": compile(t, `/confirmedOrder/ID`),
		},
	}
}

func defIsVIP(t *testing.T) *Def {
	// create property isVIPorder as xs:boolean inherited
	//   queue crm, finance, legal, customer value false
	val := compile(t, `false()`)
	return &Def{
		Name: "isVIPorder", Type: xdm.TypeBoolean, Inherited: true,
		PerQueue: map[string]*xquery.Compiled{
			"crm": val, "finance": val, "legal": val, "customer": val,
		},
	}
}

func TestComputedPerQueue(t *testing.T) {
	m := NewManager()
	if err := m.Define(defOrderID(t)); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	doc := xmldom.MustParse(`<order><orderID>o42</orderID></order>`)
	props, err := m.Evaluate("order", doc, nil, nil, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if props["orderID"].S != "o42" {
		t.Fatalf("computed: %+v", props["orderID"])
	}
	doc2 := xmldom.MustParse(`<confirmedOrder><ID>c7</ID></confirmedOrder>`)
	props, err = m.Evaluate("confirmation", doc2, nil, nil, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if props["orderID"].S != "c7" {
		t.Fatalf("per-queue expression: %+v", props["orderID"])
	}
	// Not defined on other queues.
	props, _ = m.Evaluate("other", doc, nil, nil, nil, now)
	if _, ok := props["orderID"]; ok {
		t.Fatal("property leaked to undeclared queue")
	}
}

func TestFixedRejectsExplicit(t *testing.T) {
	m := NewManager()
	m.Define(defOrderID(t))
	doc := xmldom.MustParse(`<order><orderID>o42</orderID></order>`)
	_, err := m.Evaluate("order", doc, map[string]xdm.Value{"orderID": xdm.NewString("evil")}, nil, nil, time.Now())
	if err == nil {
		t.Fatal("fixed property must reject explicit assignment")
	}
}

func TestInheritanceAndDefault(t *testing.T) {
	m := NewManager()
	m.Define(defIsVIP(t))
	doc := xmldom.MustParse(`<msg/>`)
	now := time.Now()
	// No parent: default (computed) value false.
	props, err := m.Evaluate("crm", doc, nil, nil, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if v := props["isVIPorder"]; v.T != xdm.TypeBoolean || v.B {
		t.Fatalf("default: %+v", v)
	}
	// Parent carries true: inherited.
	parent := map[string]xdm.Value{"isVIPorder": xdm.NewBool(true)}
	props, err = m.Evaluate("finance", doc, nil, parent, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if !props["isVIPorder"].B {
		t.Fatal("inheritance failed")
	}
	// Explicit overrides inheritance (paper: "if not explicitly set to a
	// different value").
	props, err = m.Evaluate("legal", doc, map[string]xdm.Value{"isVIPorder": xdm.NewBool(false)}, parent, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if props["isVIPorder"].B {
		t.Fatal("explicit should beat inheritance")
	}
}

func TestExplicitTypeCast(t *testing.T) {
	m := NewManager()
	m.Define(&Def{
		Name: "prio", Type: xdm.TypeInteger,
		PerQueue: map[string]*xquery.Compiled{"q": nil},
	})
	doc := xmldom.MustParse(`<m/>`)
	props, err := m.Evaluate("q", doc, map[string]xdm.Value{"prio": xdm.NewString("5")}, nil, nil, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if v := props["prio"]; v.T != xdm.TypeInteger || v.I != 5 {
		t.Fatalf("cast: %+v", v)
	}
	if _, err := m.Evaluate("q", doc, map[string]xdm.Value{"prio": xdm.NewString("x")}, nil, nil, time.Now()); err == nil {
		t.Fatal("bad cast should fail")
	}
}

func TestUndefinedExplicitRejected(t *testing.T) {
	m := NewManager()
	doc := xmldom.MustParse(`<m/>`)
	if _, err := m.Evaluate("q", doc, map[string]xdm.Value{"nope": xdm.NewString("v")}, nil, nil, time.Now()); err == nil {
		t.Fatal("undefined property must be rejected")
	}
	// System-reserved names pass through.
	props, err := m.Evaluate("q", doc, map[string]xdm.Value{"Sender": xdm.NewString("urn:x")}, nil, nil, time.Now())
	if err != nil || props["Sender"].S != "urn:x" {
		t.Fatalf("system prop: %v %v", props, err)
	}
}

func TestSystemProps(t *testing.T) {
	m := NewManager()
	doc := xmldom.MustParse(`<m/>`)
	sys := map[string]xdm.Value{
		SysCreatingRule: xdm.NewString("ruleA"),
		SysCreated:      xdm.NewDateTime(time.Date(2026, 6, 10, 0, 0, 0, 0, time.UTC)),
	}
	props, err := m.Evaluate("q", doc, nil, nil, sys, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if props[SysCreatingRule].S != "ruleA" {
		t.Fatal("system property lost")
	}
}

func TestDuplicateDefineRejected(t *testing.T) {
	m := NewManager()
	m.Define(defIsVIP(t))
	if err := m.Define(defIsVIP(t)); err == nil {
		t.Fatal("duplicate definition must fail")
	}
}
