package xpath

import (
	"testing"
)

// FuzzXPathParse drives the expression parser with arbitrary source text.
// The parser must never panic, and parsing must be deterministic: a second
// parse of the same input yields the same accept/reject decision and the
// same error message.
func FuzzXPathParse(f *testing.F) {
	seeds := []string{
		`//order/id`,
		`/m/a[@id = "2"]/text()`,
		`if (//a and not(//b)) then 1 else 2`,
		`for $x at $i in //item order by $x/price descending return <p n="{$i}">{$x}</p>`,
		`some $v in (1 to 10) satisfies $v mod 2 = 0`,
		`do enqueue <checked>{//order/id}</checked> into stage1`,
		`do reset s key qs:slicekey()`,
		`qs:queue("in")[//total > 100.5]`,
		`concat("a", string-join(//k, ","), 'b')`,
		`(1, 2.5, "three", .)[position() < last()]`,
		`ancestor-or-self::*/@* | //node()`,
		`-(-5) idiv (2 + 0)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e1, err1 := ParseExprString(src)
		e2, err2 := ParseExprString(src)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic accept: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("non-deterministic error: %q vs %q", err1, err2)
			}
			return
		}
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("nil expression without error for %q", src)
		}
	})
}
