package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"

	"demaq/internal/xmldom"
)

// Direct element constructors are parsed in "raw mode": when the token
// stream yields '<' in a position where a primary expression is expected,
// the parser rewinds the lexer and scans XML syntax character by character,
// switching back to token mode inside enclosed { ... } expressions.

func (p *Parser) parseDirectConstructor() (Expr, error) {
	pos := p.tok.Pos
	src := p.lex.Source()
	if pos.Offset+1 >= len(src) || !isNameStartByte(src[pos.Offset+1]) {
		return nil, p.errf("expected expression, found '<'")
	}
	p.lex.ResetTo(pos)
	el, err := p.parseConstructorRaw()
	if err != nil {
		return nil, err
	}
	// Resume token mode after the constructor.
	if err := p.next(); err != nil {
		return nil, err
	}
	return el, nil
}

func (p *Parser) rawEOF() bool         { return p.lex.eof() }
func (p *Parser) rawPeek() byte        { return p.lex.peekByte() }
func (p *Parser) rawPeekAt(i int) byte { return p.lex.peekAt(i) }
func (p *Parser) rawAdv() byte         { return p.lex.adv() }

func (p *Parser) rawHasPrefix(s string) bool {
	for i := 0; i < len(s); i++ {
		if p.lex.peekAt(i) != s[i] {
			return false
		}
	}
	return true
}

func (p *Parser) rawConsume(s string) bool {
	if p.rawHasPrefix(s) {
		for range s {
			p.rawAdv()
		}
		return true
	}
	return false
}

func (p *Parser) rawErrf(format string, args ...any) error {
	return &SyntaxError{Pos: p.lex.Mark(), Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) rawSkipSpace() {
	for !p.rawEOF() {
		switch p.rawPeek() {
		case ' ', '\t', '\r', '\n':
			p.rawAdv()
		default:
			return
		}
	}
}

func (p *Parser) rawQName() (string, error) {
	if p.rawEOF() || !isNameStartByte(p.rawPeek()) {
		return "", p.rawErrf("expected name in constructor")
	}
	var sb strings.Builder
	for !p.rawEOF() {
		c := p.rawPeek()
		if isNameByte(c) || c == ':' {
			sb.WriteByte(p.rawAdv())
		} else {
			break
		}
	}
	return sb.String(), nil
}

func (p *Parser) resolveConstructorName(raw string, isAttr bool) (xmldom.Name, error) {
	prefix, local := "", raw
	if i := strings.IndexByte(raw, ':'); i >= 0 {
		prefix, local = raw[:i], raw[i+1:]
	}
	if prefix == "" {
		if isAttr {
			return xmldom.Name{Local: local}, nil
		}
		// Default element namespace from constructor scope.
		for i := len(p.ns) - 1; i >= 0; i-- {
			if p.ns[i].prefix == "" {
				return xmldom.Name{Space: p.ns[i].uri, Local: local}, nil
			}
		}
		return xmldom.Name{Local: local}, nil
	}
	for i := len(p.ns) - 1; i >= 0; i-- {
		if p.ns[i].prefix == prefix {
			return xmldom.Name{Space: p.ns[i].uri, Prefix: prefix, Local: local}, nil
		}
	}
	return xmldom.Name{}, p.rawErrf("undeclared namespace prefix %q in constructor", prefix)
}

// parseConstructorRaw parses a direct element constructor; the lexer is
// positioned at '<'.
func (p *Parser) parseConstructorRaw() (*ElementConstructor, error) {
	pos := p.lex.Mark()
	if !p.rawConsume("<") {
		return nil, p.rawErrf("expected '<'")
	}
	rawName, err := p.rawQName()
	if err != nil {
		return nil, err
	}
	nsMark := len(p.ns)
	defer func() { p.ns = p.ns[:nsMark] }()

	type rawAttrC struct {
		name  string
		parts []Expr
	}
	var attrs []rawAttrC
	for {
		p.rawSkipSpace()
		if p.rawEOF() {
			return nil, p.rawErrf("unterminated constructor <%s>", rawName)
		}
		c := p.rawPeek()
		if c == '>' || c == '/' {
			break
		}
		aname, err := p.rawQName()
		if err != nil {
			return nil, err
		}
		p.rawSkipSpace()
		if !p.rawConsume("=") {
			return nil, p.rawErrf("expected '=' after attribute %q", aname)
		}
		p.rawSkipSpace()
		parts, err := p.parseAttrValueRaw()
		if err != nil {
			return nil, err
		}
		switch {
		case aname == "xmlns" || strings.HasPrefix(aname, "xmlns:"):
			if len(parts) != 1 {
				return nil, p.rawErrf("namespace declaration value must be a literal")
			}
			lit, ok := parts[0].(*TextLiteral)
			if !ok {
				return nil, p.rawErrf("namespace declaration value must be a literal")
			}
			prefix := ""
			if strings.HasPrefix(aname, "xmlns:") {
				prefix = aname[len("xmlns:"):]
			}
			p.ns = append(p.ns, nsBinding{prefix: prefix, uri: lit.Text})
		default:
			attrs = append(attrs, rawAttrC{name: aname, parts: parts})
		}
	}

	ec := &ElementConstructor{base: base{pos}}
	ec.Name, err = p.resolveConstructorName(rawName, false)
	if err != nil {
		return nil, err
	}
	for _, ra := range attrs {
		an, err := p.resolveConstructorName(ra.name, true)
		if err != nil {
			return nil, err
		}
		ec.Attrs = append(ec.Attrs, AttrConstructor{Name: an, Parts: ra.parts})
	}

	if p.rawConsume("/>") {
		return ec, nil
	}
	if !p.rawConsume(">") {
		return nil, p.rawErrf("expected '>' in constructor <%s>", rawName)
	}

	var text strings.Builder
	flush := func(force bool) {
		if text.Len() == 0 {
			return
		}
		t := text.String()
		text.Reset()
		// Boundary whitespace is stripped (XQuery boundary-space strip),
		// unless it was produced by CDATA/entities (force).
		if !force && strings.TrimSpace(t) == "" {
			return
		}
		ec.Content = append(ec.Content, &TextLiteral{base: base{p.lex.Mark()}, Text: t})
	}

	for {
		if p.rawEOF() {
			return nil, p.rawErrf("unterminated constructor <%s>", rawName)
		}
		switch {
		case p.rawHasPrefix("</"):
			flush(false)
			p.rawConsume("</")
			closeName, err := p.rawQName()
			if err != nil {
				return nil, err
			}
			if closeName != rawName {
				return nil, p.rawErrf("mismatched constructor end tag </%s>, expected </%s>", closeName, rawName)
			}
			p.rawSkipSpace()
			if !p.rawConsume(">") {
				return nil, p.rawErrf("expected '>' after </%s", closeName)
			}
			return ec, nil
		case p.rawHasPrefix("<!--"):
			flush(false)
			p.rawConsume("<!--")
			for !p.rawEOF() && !p.rawHasPrefix("-->") {
				p.rawAdv()
			}
			if !p.rawConsume("-->") {
				return nil, p.rawErrf("unterminated comment in constructor")
			}
		case p.rawHasPrefix("<![CDATA["):
			p.rawConsume("<![CDATA[")
			for !p.rawEOF() && !p.rawHasPrefix("]]>") {
				text.WriteByte(p.rawAdv())
			}
			if !p.rawConsume("]]>") {
				return nil, p.rawErrf("unterminated CDATA in constructor")
			}
			flush(true)
		case p.rawPeek() == '<':
			flush(false)
			child, err := p.parseConstructorRaw()
			if err != nil {
				return nil, err
			}
			ec.Content = append(ec.Content, child)
		case p.rawPeek() == '{':
			if p.rawPeekAt(1) == '{' {
				p.rawAdv()
				p.rawAdv()
				text.WriteByte('{')
				continue
			}
			flush(false)
			e, err := p.parseEnclosedRaw()
			if err != nil {
				return nil, err
			}
			ec.Content = append(ec.Content, e)
		case p.rawPeek() == '}':
			if p.rawPeekAt(1) == '}' {
				p.rawAdv()
				p.rawAdv()
				text.WriteByte('}')
				continue
			}
			return nil, p.rawErrf("unescaped '}' in constructor content")
		case p.rawPeek() == '&':
			s, err := p.rawEntity()
			if err != nil {
				return nil, err
			}
			text.WriteString(s)
		default:
			text.WriteByte(p.rawAdv())
		}
	}
}

// parseAttrValueRaw parses a quoted attribute value that may interleave
// literal text with enclosed expressions.
func (p *Parser) parseAttrValueRaw() ([]Expr, error) {
	if p.rawEOF() {
		return nil, p.rawErrf("expected attribute value")
	}
	quote := p.rawPeek()
	if quote != '"' && quote != '\'' {
		return nil, p.rawErrf("attribute value must be quoted")
	}
	p.rawAdv()
	var parts []Expr
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			parts = append(parts, &TextLiteral{base: base{p.lex.Mark()}, Text: text.String()})
			text.Reset()
		}
	}
	for {
		if p.rawEOF() {
			return nil, p.rawErrf("unterminated attribute value")
		}
		c := p.rawPeek()
		switch {
		case c == quote:
			// Doubled quote is an escaped quote character.
			if p.rawPeekAt(1) == quote {
				p.rawAdv()
				p.rawAdv()
				text.WriteByte(quote)
				continue
			}
			p.rawAdv()
			flush()
			if parts == nil {
				parts = []Expr{&TextLiteral{base: base{p.lex.Mark()}, Text: ""}}
			}
			return parts, nil
		case c == '{':
			if p.rawPeekAt(1) == '{' {
				p.rawAdv()
				p.rawAdv()
				text.WriteByte('{')
				continue
			}
			flush()
			e, err := p.parseEnclosedRaw()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		case c == '}':
			if p.rawPeekAt(1) == '}' {
				p.rawAdv()
				p.rawAdv()
				text.WriteByte('}')
				continue
			}
			return nil, p.rawErrf("unescaped '}' in attribute value")
		case c == '&':
			s, err := p.rawEntity()
			if err != nil {
				return nil, err
			}
			text.WriteString(s)
		case c == '<':
			return nil, p.rawErrf("'<' not allowed in attribute value")
		default:
			text.WriteByte(p.rawAdv())
		}
	}
}

// parseEnclosedRaw parses "{ Expr }" starting with the lexer positioned at
// '{', and leaves the lexer positioned immediately after the closing '}'.
func (p *Parser) parseEnclosedRaw() (Expr, error) {
	if err := p.next(); err != nil { // tokenizes the '{'
		return nil, err
	}
	if p.tok.Kind != TokLBrace {
		return nil, p.errf("expected '{'")
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	e, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokRBrace {
		return nil, p.errf("expected '}' to close enclosed expression, found %s", p.tok.Kind)
	}
	// Resume raw scanning right after the '}' (one byte).
	end := p.tok.Pos
	p.lex.ResetTo(Pos{Offset: end.Offset + 1, Line: end.Line, Col: end.Col + 1})
	return e, nil
}

func (p *Parser) rawEntity() (string, error) {
	p.rawAdv() // '&'
	var name strings.Builder
	for !p.rawEOF() && p.rawPeek() != ';' {
		if name.Len() > 10 {
			return "", p.rawErrf("unterminated entity reference")
		}
		name.WriteByte(p.rawAdv())
	}
	if p.rawEOF() {
		return "", p.rawErrf("unterminated entity reference")
	}
	p.rawAdv() // ';'
	switch name.String() {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "apos":
		return "'", nil
	case "quot":
		return "\"", nil
	}
	s := name.String()
	if strings.HasPrefix(s, "#") {
		num := s[1:]
		radix := 10
		if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
			num, radix = num[1:], 16
		}
		cp, err := strconv.ParseUint(num, radix, 32)
		if err != nil || !utf8.ValidRune(rune(cp)) || cp == 0 {
			return "", p.rawErrf("invalid character reference &%s;", s)
		}
		return string(rune(cp)), nil
	}
	return "", p.rawErrf("unknown entity &%s;", s)
}
