package xpath

import (
	"fmt"
	"strconv"
	"strings"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// Parser is a recursive-descent parser for the Demaq expression language
// with one-token lookahead. It exposes its token cursor so that the QDL/QML
// statement parsers can interleave keyword parsing with embedded expression
// parsing on the same input.
type Parser struct {
	lex *Lexer
	tok Token
	ns  []nsBinding // constructor namespace scope
}

type nsBinding struct {
	prefix string
	uri    string
}

// NewParser creates a parser over src and primes the lookahead.
func NewParser(src string) (*Parser, error) {
	p := &Parser{lex: NewLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseExprString parses a complete expression; trailing input is an error.
func ParseExprString(src string) (Expr, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, p.errf("unexpected %s after expression", p.tok.Kind)
	}
	return e, nil
}

// MustParseExpr parses or panics; for tests and static fixtures.
func MustParseExpr(src string) Expr {
	e, err := ParseExprString(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *Parser) next() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) errf(format string, args ...any) error {
	return &SyntaxError{Pos: p.tok.Pos, Msg: fmt.Sprintf(format, args...)}
}

// Peek returns the current lookahead token.
func (p *Parser) Peek() Token { return p.tok }

// Advance consumes and returns the current token.
func (p *Parser) Advance() (Token, error) {
	t := p.tok
	if err := p.next(); err != nil {
		return Token{}, err
	}
	return t, nil
}

// AtEOF reports whether all input is consumed.
func (p *Parser) AtEOF() bool { return p.tok.Kind == TokEOF }

// isName reports whether the lookahead is the given bare name.
func (p *Parser) isName(text string) bool {
	return p.tok.Kind == TokName && p.tok.Text == text
}

// eatName consumes the given name token if present.
func (p *Parser) eatName(text string) (bool, error) {
	if p.isName(text) {
		return true, p.next()
	}
	return false, nil
}

// ExpectName consumes a required keyword.
func (p *Parser) ExpectName(text string) error {
	if !p.isName(text) {
		return p.errf("expected %q, found %s %q", text, p.tok.Kind, p.tok.Text)
	}
	return p.next()
}

// ExpectKind consumes a required token kind.
func (p *Parser) ExpectKind(k TokKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, p.errf("expected %s, found %s", k, p.tok.Kind)
	}
	return p.Advance()
}

// QName consumes a name token and returns its text.
func (p *Parser) QName() (string, error) {
	if p.tok.Kind != TokName {
		return "", p.errf("expected name, found %s", p.tok.Kind)
	}
	t, err := p.Advance()
	return t.Text, err
}

// peek2 returns the token after the lookahead without consuming anything.
func (p *Parser) peek2() (Token, error) {
	mark := p.lex.Mark()
	t, err := p.lex.Next()
	p.lex.ResetTo(mark)
	return t, err
}

// ParseExpr parses Expr ::= ExprSingle ("," ExprSingle)*.
func (p *Parser) ParseExpr() (Expr, error) {
	pos := p.tok.Pos
	first, err := p.ParseExprSingle()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokComma {
		return first, nil
	}
	items := []Expr{first}
	for p.tok.Kind == TokComma {
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.ParseExprSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	return &SequenceExpr{base: base{pos}, Items: items}, nil
}

// ParseExprSingle parses one expression without top-level commas.
func (p *Parser) ParseExprSingle() (Expr, error) {
	if p.tok.Kind == TokName {
		switch p.tok.Text {
		case "for", "let":
			t2, err := p.peek2()
			if err != nil {
				return nil, err
			}
			if t2.Kind == TokVar {
				return p.parseFLWOR()
			}
		case "some", "every":
			t2, err := p.peek2()
			if err != nil {
				return nil, err
			}
			if t2.Kind == TokVar {
				return p.parseQuantified()
			}
		case "if":
			t2, err := p.peek2()
			if err != nil {
				return nil, err
			}
			if t2.Kind == TokLParen {
				return p.parseIf()
			}
		case "do":
			t2, err := p.peek2()
			if err != nil {
				return nil, err
			}
			if t2.Kind == TokName && (t2.Text == "enqueue" || t2.Text == "reset") {
				return p.parseUpdate()
			}
		}
	}
	return p.parseOr()
}

func (p *Parser) parseFLWOR() (Expr, error) {
	pos := p.tok.Pos
	fl := &FLWORExpr{base: base{pos}}
	for p.isName("for") || p.isName("let") {
		// Keyword only counts as a clause if followed by a variable;
		// otherwise it is a path step (XQuery has no reserved words).
		t2, err := p.peek2()
		if err != nil {
			return nil, err
		}
		if t2.Kind != TokVar {
			break
		}
		isFor := p.isName("for")
		if err := p.next(); err != nil {
			return nil, err
		}
		for {
			v, err := p.ExpectKind(TokVar)
			if err != nil {
				return nil, err
			}
			cl := FLWORClause{For: isFor, Var: v.Text}
			if isFor {
				if ok, err := p.eatName("at"); err != nil {
					return nil, err
				} else if ok {
					pv, err := p.ExpectKind(TokVar)
					if err != nil {
						return nil, err
					}
					cl.PosVar = pv.Text
				}
				if err := p.ExpectName("in"); err != nil {
					return nil, err
				}
			} else {
				if _, err := p.ExpectKind(TokAssign); err != nil {
					return nil, err
				}
			}
			e, err := p.ParseExprSingle()
			if err != nil {
				return nil, err
			}
			cl.Expr = e
			fl.Clauses = append(fl.Clauses, cl)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	if len(fl.Clauses) == 0 {
		return nil, p.errf("expected for/let clause")
	}
	if ok, err := p.eatName("where"); err != nil {
		return nil, err
	} else if ok {
		w, err := p.ParseExprSingle()
		if err != nil {
			return nil, err
		}
		fl.Where = w
	}
	if p.isName("order") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.ExpectName("by"); err != nil {
			return nil, err
		}
		for {
			key, err := p.ParseExprSingle()
			if err != nil {
				return nil, err
			}
			spec := OrderSpec{Key: key}
			if ok, err := p.eatName("descending"); err != nil {
				return nil, err
			} else if ok {
				spec.Descending = true
			} else if _, err := p.eatName("ascending"); err != nil {
				return nil, err
			}
			fl.OrderBy = append(fl.OrderBy, spec)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.ExpectName("return"); err != nil {
		return nil, err
	}
	ret, err := p.ParseExprSingle()
	if err != nil {
		return nil, err
	}
	fl.Return = ret
	return fl, nil
}

func (p *Parser) parseQuantified() (Expr, error) {
	pos := p.tok.Pos
	q := &QuantifiedExpr{base: base{pos}, Every: p.isName("every")}
	if err := p.next(); err != nil {
		return nil, err
	}
	for {
		v, err := p.ExpectKind(TokVar)
		if err != nil {
			return nil, err
		}
		if err := p.ExpectName("in"); err != nil {
			return nil, err
		}
		e, err := p.ParseExprSingle()
		if err != nil {
			return nil, err
		}
		q.Bindings = append(q.Bindings, FLWORClause{For: true, Var: v.Text, Expr: e})
		if p.tok.Kind != TokComma {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if err := p.ExpectName("satisfies"); err != nil {
		return nil, err
	}
	s, err := p.ParseExprSingle()
	if err != nil {
		return nil, err
	}
	q.Satisfies = s
	return q, nil
}

func (p *Parser) parseIf() (Expr, error) {
	pos := p.tok.Pos
	if err := p.next(); err != nil { // "if"
		return nil, err
	}
	if _, err := p.ExpectKind(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.ExpectKind(TokRParen); err != nil {
		return nil, err
	}
	if err := p.ExpectName("then"); err != nil {
		return nil, err
	}
	then, err := p.ParseExprSingle()
	if err != nil {
		return nil, err
	}
	ife := &IfExpr{base: base{pos}, Cond: cond, Then: then}
	// The else branch is optional in Demaq rule bodies (Sec. 3.3).
	if p.isName("else") {
		if err := p.next(); err != nil {
			return nil, err
		}
		els, err := p.ParseExprSingle()
		if err != nil {
			return nil, err
		}
		ife.Else = els
	}
	return ife, nil
}

func (p *Parser) parseUpdate() (Expr, error) {
	pos := p.tok.Pos
	if err := p.next(); err != nil { // "do"
		return nil, err
	}
	switch p.tok.Text {
	case "enqueue":
		if err := p.next(); err != nil {
			return nil, err
		}
		what, err := p.ParseExprSingle()
		if err != nil {
			return nil, err
		}
		if err := p.ExpectName("into"); err != nil {
			return nil, err
		}
		q, err := p.QName()
		if err != nil {
			return nil, err
		}
		enq := &EnqueueExpr{base: base{pos}, What: what, Queue: q}
		for p.isName("with") {
			if err := p.next(); err != nil {
				return nil, err
			}
			pn, err := p.QName()
			if err != nil {
				return nil, err
			}
			if err := p.ExpectName("value"); err != nil {
				return nil, err
			}
			pv, err := p.ParseExprSingle()
			if err != nil {
				return nil, err
			}
			enq.Props = append(enq.Props, PropSpec{Name: pn, Value: pv})
		}
		return enq, nil
	case "reset":
		if err := p.next(); err != nil {
			return nil, err
		}
		r := &ResetExpr{base: base{pos}}
		// "do reset S key E" — the slicing name is only recognized when
		// followed by the keyword "key"; a bare "do reset" resets the slice
		// of the current rule (Sec. 3.5.3).
		if p.tok.Kind == TokName {
			t2, err := p.peek2()
			if err != nil {
				return nil, err
			}
			if t2.Kind == TokName && t2.Text == "key" {
				s, err := p.QName()
				if err != nil {
					return nil, err
				}
				if err := p.ExpectName("key"); err != nil {
					return nil, err
				}
				k, err := p.ParseExprSingle()
				if err != nil {
					return nil, err
				}
				r.Slicing, r.Key = s, k
			}
		}
		return r, nil
	}
	return nil, p.errf("expected 'enqueue' or 'reset' after 'do'")
}

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isName("or") {
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{base: base{pos}, Op: BinOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.isName("and") {
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{base: base{pos}, Op: BinAnd, Left: left, Right: right}
	}
	return left, nil
}

var valueCompNames = map[string]xdm.CompOp{
	"eq": xdm.OpEq, "ne": xdm.OpNe, "lt": xdm.OpLt,
	"le": xdm.OpLe, "gt": xdm.OpGt, "ge": xdm.OpGe,
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	pos := p.tok.Pos
	var op xdm.CompOp
	general := false
	switch p.tok.Kind {
	case TokEq:
		op, general = xdm.OpEq, true
	case TokNe:
		op, general = xdm.OpNe, true
	case TokLt:
		op, general = xdm.OpLt, true
	case TokLe:
		op, general = xdm.OpLe, true
	case TokGt:
		op, general = xdm.OpGt, true
	case TokGe:
		op, general = xdm.OpGe, true
	case TokName:
		if vop, ok := valueCompNames[p.tok.Text]; ok {
			op = vop
		} else if p.tok.Text == "is" {
			if err := p.next(); err != nil {
				return nil, err
			}
			right, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			return &ComparisonExpr{base: base{pos}, NodeIs: true, Left: left, Right: right}, nil
		} else {
			return left, nil
		}
	default:
		return left, nil
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	right, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	return &ComparisonExpr{base: base{pos}, Op: op, General: general, Left: left, Right: right}, nil
}

func (p *Parser) parseRange() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.isName("to") {
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{base: base{pos}, Op: BinRange, Left: left, Right: right}, nil
	}
	return left, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokPlus || p.tok.Kind == TokMinus {
		op := BinAdd
		if p.tok.Kind == TokMinus {
			op = BinSub
		}
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{base: base{pos}, Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOpKind
		switch {
		case p.tok.Kind == TokStar:
			op = BinMul
		case p.isName("div"):
			op = BinDiv
		case p.isName("idiv"):
			op = BinIDiv
		case p.isName("mod"):
			op = BinMod
		default:
			return left, nil
		}
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{base: base{pos}, Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseUnion() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokPipe || p.isName("union") {
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{base: base{pos}, Op: BinUnion, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.tok.Kind == TokMinus || p.tok.Kind == TokPlus {
		pos := p.tok.Pos
		neg := p.tok.Kind == TokMinus
		if err := p.next(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{base: base{pos}, Neg: neg, Operand: inner}, nil
	}
	return p.parsePath()
}

// kind tests recognized in step position.
var kindTests = map[string]TestKind{
	"node":          TestNode,
	"text":          TestText,
	"comment":       TestComment,
	"element":       TestElement,
	"attribute":     TestAttribute,
	"document-node": TestDocument,
}

func (p *Parser) parsePath() (Expr, error) {
	pos := p.tok.Pos
	path := &PathExpr{base: base{pos}}
	switch p.tok.Kind {
	case TokSlash:
		path.Rooted = true
		if err := p.next(); err != nil {
			return nil, err
		}
		if !p.startsStep() {
			// "/" alone selects the root.
			return path, nil
		}
	case TokSlash2:
		path.Rooted = true
		path.Descend = true
		if err := p.next(); err != nil {
			return nil, err
		}
	}

	if !path.Rooted {
		// First segment: an axis step or a primary (filter) expression.
		if p.startsAxisStep() {
			st, err := p.parseStep()
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, st)
		} else {
			prim, err := p.parseFilter()
			if err != nil {
				return nil, err
			}
			if p.tok.Kind != TokSlash && p.tok.Kind != TokSlash2 {
				return prim, nil
			}
			path.Start = prim
		}
	} else {
		st, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, st)
	}

	for p.tok.Kind == TokSlash || p.tok.Kind == TokSlash2 {
		descend := p.tok.Kind == TokSlash2
		if err := p.next(); err != nil {
			return nil, err
		}
		if descend {
			path.Steps = append(path.Steps, Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode}})
		}
		st, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, st)
	}
	if path.Start == nil && len(path.Steps) == 0 && !path.Rooted {
		return nil, p.errf("expected expression")
	}
	return path, nil
}

// startsStep reports whether the lookahead could begin a path step
// (used after a rooted "/").
func (p *Parser) startsStep() bool {
	switch p.tok.Kind {
	case TokName, TokStar, TokAt, TokDotDot, TokDot:
		return true
	}
	return false
}

// startsAxisStep reports whether the lookahead begins an axis step rather
// than a primary expression.
func (p *Parser) startsAxisStep() bool {
	switch p.tok.Kind {
	case TokAt, TokDotDot, TokStar:
		return true
	case TokName:
		// name '(' is a function call unless the name is a kind test;
		// name '::' is an axis; anything else is a child-axis name test.
		mark := p.lex.Mark()
		t2, err := p.lex.Next()
		p.lex.ResetTo(mark)
		if err != nil {
			return false
		}
		if t2.Kind == TokAxis {
			_, known := axisNames[p.tok.Text]
			return known
		}
		if t2.Kind == TokLParen {
			_, kind := kindTests[p.tok.Text]
			return kind
		}
		return true
	}
	return false
}

// parseStep parses one path step: axis step, abbreviation, or a primary
// filter expression such as a function call ("a/count(b)", "p/number(.)").
func (p *Parser) parseStep() (Step, error) {
	// Primary steps: variables, literals, parenthesized expressions, and
	// function calls that are not kind tests.
	switch p.tok.Kind {
	case TokVar, TokString, TokInteger, TokDecimal, TokDouble, TokLParen:
		prim, err := p.parseFilter()
		if err != nil {
			return Step{}, err
		}
		return Step{Primary: prim}, nil
	case TokName:
		if _, kind := kindTests[p.tok.Text]; !kind {
			if _, axis := axisNames[p.tok.Text]; !axis {
				mark := p.lex.Mark()
				t2, err := p.lex.Next()
				p.lex.ResetTo(mark)
				if err == nil && t2.Kind == TokLParen {
					prim, err := p.parseFilter()
					if err != nil {
						return Step{}, err
					}
					return Step{Primary: prim}, nil
				}
			}
		}
	}
	switch p.tok.Kind {
	case TokDot:
		if err := p.next(); err != nil {
			return Step{}, err
		}
		st := Step{Axis: AxisSelf, Test: NodeTest{Kind: TestNode}}
		return p.parsePredicates(st)
	case TokDotDot:
		if err := p.next(); err != nil {
			return Step{}, err
		}
		st := Step{Axis: AxisParent, Test: NodeTest{Kind: TestNode}}
		return p.parsePredicates(st)
	case TokAt:
		if err := p.next(); err != nil {
			return Step{}, err
		}
		test, err := p.parseNodeTest(true)
		if err != nil {
			return Step{}, err
		}
		st := Step{Axis: AxisAttribute, Test: test}
		return p.parsePredicates(st)
	case TokStar:
		if err := p.next(); err != nil {
			return Step{}, err
		}
		st := Step{Axis: AxisChild, Test: NodeTest{Kind: TestAnyName}}
		return p.parsePredicates(st)
	case TokName:
		// Explicit axis?
		if ax, ok := axisNames[p.tok.Text]; ok {
			mark := p.lex.Mark()
			t2, err := p.lex.Next()
			p.lex.ResetTo(mark)
			if err == nil && t2.Kind == TokAxis {
				if err := p.next(); err != nil { // axis name
					return Step{}, err
				}
				if err := p.next(); err != nil { // '::'
					return Step{}, err
				}
				test, err := p.parseNodeTest(ax == AxisAttribute)
				if err != nil {
					return Step{}, err
				}
				st := Step{Axis: ax, Test: test}
				return p.parsePredicates(st)
			}
		}
		test, err := p.parseNodeTest(false)
		if err != nil {
			return Step{}, err
		}
		axis := AxisChild
		if test.Kind == TestAttribute {
			axis = AxisAttribute
		}
		st := Step{Axis: axis, Test: test}
		return p.parsePredicates(st)
	}
	return Step{}, p.errf("expected path step, found %s", p.tok.Kind)
}

func (p *Parser) parsePredicates(st Step) (Step, error) {
	for p.tok.Kind == TokLBracket {
		if err := p.next(); err != nil {
			return Step{}, err
		}
		pred, err := p.ParseExpr()
		if err != nil {
			return Step{}, err
		}
		if _, err := p.ExpectKind(TokRBracket); err != nil {
			return Step{}, err
		}
		st.Preds = append(st.Preds, pred)
	}
	return st, nil
}

// parseNodeTest parses a name test or kind test. attrCtx selects the
// attribute interpretation of a bare name.
func (p *Parser) parseNodeTest(attrCtx bool) (NodeTest, error) {
	if p.tok.Kind == TokStar {
		if err := p.next(); err != nil {
			return NodeTest{}, err
		}
		return NodeTest{Kind: TestAnyName}, nil
	}
	if p.tok.Kind != TokName {
		return NodeTest{}, p.errf("expected name test, found %s", p.tok.Kind)
	}
	name := p.tok.Text
	// Kind test?
	if kt, ok := kindTests[name]; ok {
		mark := p.lex.Mark()
		t2, err := p.lex.Next()
		p.lex.ResetTo(mark)
		if err == nil && t2.Kind == TokLParen {
			if err := p.next(); err != nil { // kind name
				return NodeTest{}, err
			}
			if err := p.next(); err != nil { // '('
				return NodeTest{}, err
			}
			test := NodeTest{Kind: kt}
			if p.tok.Kind == TokName || p.tok.Kind == TokStar {
				if kt != TestElement && kt != TestAttribute {
					return NodeTest{}, p.errf("%s() takes no argument", name)
				}
				if p.tok.Kind == TokName {
					test.Name = splitTestName(p.tok.Text)
				}
				if err := p.next(); err != nil {
					return NodeTest{}, err
				}
			}
			if _, err := p.ExpectKind(TokRParen); err != nil {
				return NodeTest{}, err
			}
			return test, nil
		}
	}
	if err := p.next(); err != nil {
		return NodeTest{}, err
	}
	_ = attrCtx
	return NodeTest{Kind: TestName, Name: splitTestName(name)}, nil
}

func splitTestName(raw string) xmldom.Name {
	if i := strings.IndexByte(raw, ':'); i >= 0 {
		return xmldom.Name{Prefix: raw[:i], Local: raw[i+1:]}
	}
	return xmldom.Name{Local: raw}
}

// parseFilter parses PrimaryExpr PredicateList.
func (p *Parser) parseFilter() (Expr, error) {
	prim, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokLBracket {
		return prim, nil
	}
	f := &FilterExpr{base: base{prim.Span()}, Primary: prim}
	for p.tok.Kind == TokLBracket {
		if err := p.next(); err != nil {
			return nil, err
		}
		pred, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.ExpectKind(TokRBracket); err != nil {
			return nil, err
		}
		f.Preds = append(f.Preds, pred)
	}
	return f, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokString:
		t, err := p.Advance()
		if err != nil {
			return nil, err
		}
		return &Literal{base: base{pos}, Value: xdm.NewString(t.Text)}, nil
	case TokInteger:
		t, err := p.Advance()
		if err != nil {
			return nil, err
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("integer literal out of range: %s", t.Text)
		}
		return &Literal{base: base{pos}, Value: xdm.NewInteger(i)}, nil
	case TokDecimal, TokDouble:
		t, err := p.Advance()
		if err != nil {
			return nil, err
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad numeric literal: %s", t.Text)
		}
		if t.Kind == TokDouble {
			return &Literal{base: base{pos}, Value: xdm.NewDouble(f)}, nil
		}
		return &Literal{base: base{pos}, Value: xdm.NewDecimal(f)}, nil
	case TokVar:
		t, err := p.Advance()
		if err != nil {
			return nil, err
		}
		return &VarRef{base: base{pos}, Name: t.Text}, nil
	case TokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokRParen {
			if err := p.next(); err != nil {
				return nil, err
			}
			return &SequenceExpr{base: base{pos}}, nil
		}
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.ExpectKind(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokDot:
		if err := p.next(); err != nil {
			return nil, err
		}
		return &ContextItemExpr{base: base{pos}}, nil
	case TokLt:
		return p.parseDirectConstructor()
	case TokName:
		// Function call.
		mark := p.lex.Mark()
		t2, err := p.lex.Next()
		p.lex.ResetTo(mark)
		if err == nil && t2.Kind == TokLParen {
			return p.parseFunctionCall()
		}
		return nil, p.errf("unexpected name %q", p.tok.Text)
	}
	return nil, p.errf("expected expression, found %s", p.tok.Kind)
}

func (p *Parser) parseFunctionCall() (Expr, error) {
	pos := p.tok.Pos
	name, err := p.QName()
	if err != nil {
		return nil, err
	}
	if _, err := p.ExpectKind(TokLParen); err != nil {
		return nil, err
	}
	fc := &FuncCall{base: base{pos}}
	if i := strings.IndexByte(name, ':'); i >= 0 {
		fc.Prefix, fc.Local = name[:i], name[i+1:]
	} else {
		fc.Local = name
	}
	if p.tok.Kind != TokRParen {
		for {
			arg, err := p.ParseExprSingle()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, arg)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.ExpectKind(TokRParen); err != nil {
		return nil, err
	}
	return fc, nil
}
