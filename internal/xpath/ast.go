package xpath

import (
	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// Expr is the interface implemented by all AST nodes.
type Expr interface {
	exprNode()
	// Span returns the source position of the expression's first token.
	Span() Pos
}

type base struct{ P Pos }

func (base) exprNode() {}

// Span implements Expr.
func (b base) Span() Pos { return b.P }

// SequenceExpr is the comma operator: (a, b, c).
type SequenceExpr struct {
	base
	Items []Expr
}

// FLWORExpr is a for/let ... where ... order by ... return expression.
type FLWORExpr struct {
	base
	Clauses []FLWORClause
	Where   Expr // may be nil
	OrderBy []OrderSpec
	Return  Expr
}

// FLWORClause is either a for or a let binding.
type FLWORClause struct {
	For    bool   // true: for, false: let
	Var    string // variable name without '$'
	PosVar string // "at $p" positional variable, for-clauses only
	Expr   Expr
}

// OrderSpec is one "order by" key.
type OrderSpec struct {
	Key        Expr
	Descending bool
	EmptyLeast bool
}

// QuantifiedExpr is some/every $v in E satisfies E.
type QuantifiedExpr struct {
	base
	Every     bool
	Bindings  []FLWORClause // For is implied
	Satisfies Expr
}

// IfExpr is if (C) then T else E. Else may be nil: Demaq allows omitting the
// else branch of a rule body, which defaults to the empty sequence (Sec. 3.3).
type IfExpr struct {
	base
	Cond Expr
	Then Expr
	Else Expr
}

// BinOpKind enumerates binary operators other than comparisons.
type BinOpKind uint8

// Binary operators.
const (
	BinOr BinOpKind = iota
	BinAnd
	BinAdd
	BinSub
	BinMul
	BinDiv
	BinIDiv
	BinMod
	BinUnion
	BinRange // to
)

// BinaryExpr is a binary operator application.
type BinaryExpr struct {
	base
	Op    BinOpKind
	Left  Expr
	Right Expr
}

// ComparisonExpr is a general (=) or value (eq) comparison, or the node
// identity test "is".
type ComparisonExpr struct {
	base
	Op      xdm.CompOp
	General bool
	NodeIs  bool // "is": node identity, Op ignored
	Left    Expr
	Right   Expr
}

// UnaryExpr is unary minus (or plus, which is a no-op retained for spans).
type UnaryExpr struct {
	base
	Neg     bool
	Operand Expr
}

// Axis enumerates the supported XPath axes.
type Axis uint8

// Supported axes.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisSelf
	AxisParent
	AxisAttribute
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowingSibling
	AxisPrecedingSibling
)

var axisNames = map[string]Axis{
	"child":              AxisChild,
	"descendant":         AxisDescendant,
	"descendant-or-self": AxisDescendantOrSelf,
	"self":               AxisSelf,
	"parent":             AxisParent,
	"attribute":          AxisAttribute,
	"ancestor":           AxisAncestor,
	"ancestor-or-self":   AxisAncestorOrSelf,
	"following-sibling":  AxisFollowingSibling,
	"preceding-sibling":  AxisPrecedingSibling,
}

// String returns the axis name.
func (a Axis) String() string {
	for n, ax := range axisNames {
		if ax == a {
			return n
		}
	}
	return "?"
}

// TestKind classifies node tests.
type TestKind uint8

// Node test kinds.
const (
	TestName      TestKind = iota // name or prefix:name
	TestAnyName                   // *
	TestNode                      // node()
	TestText                      // text()
	TestComment                   // comment()
	TestElement                   // element() / element(name)
	TestAttribute                 // attribute() / attribute(name)
	TestDocument                  // document-node()
)

// NodeTest is the test applied by an axis step.
//
// Name matching follows the paper's convention that applications declare a
// default namespace and omit prefixes (Sec. 2): an unprefixed name test
// matches the local name in any namespace. A prefixed test matches the
// statically-known URI bound to the prefix.
type NodeTest struct {
	Kind TestKind
	Name xmldom.Name // for TestName/TestElement/TestAttribute with name
}

// Step is one step of a path expression: either an axis step (Axis/Test)
// or, per the XQuery grammar where any filter expression can be a step, a
// primary expression evaluated once per context item (e.g. the function
// call in "$orders/price/number(.)").
type Step struct {
	Axis    Axis
	Test    NodeTest
	Primary Expr // non-nil: primary step; Axis/Test unused
	Preds   []Expr
}

// PathExpr is a (possibly rooted) path. If Start is nil the path begins at
// the context item (or at the root for Rooted paths).
type PathExpr struct {
	base
	Rooted  bool // leading "/" or "//"
	Descend bool // leading "//": implicit descendant-or-self::node() first
	Start   Expr // primary expression start, e.g. qs:queue("x")/a
	Steps   []Step
}

// FilterExpr is a primary expression with predicates: E[p1][p2].
type FilterExpr struct {
	base
	Primary Expr
	Preds   []Expr
}

// VarRef references a bound variable.
type VarRef struct {
	base
	Name string
}

// ContextItemExpr is ".".
type ContextItemExpr struct{ base }

// Literal is a constant atomic value.
type Literal struct {
	base
	Value xdm.Value
}

// NewLiteral constructs a literal expression; used by statement parsers and
// the rule compiler's rewrites.
func NewLiteral(v xdm.Value) *Literal { return &Literal{Value: v} }

// FuncCall is a (possibly prefixed) function call.
type FuncCall struct {
	base
	Prefix string
	Local  string
	Args   []Expr
}

// ElementConstructor is a direct element constructor. Content interleaves
// TextLiteral nodes with enclosed expressions and nested constructors.
type ElementConstructor struct {
	base
	Name    xmldom.Name
	Attrs   []AttrConstructor
	Content []Expr
}

// AttrConstructor is one attribute of a direct constructor; its value
// concatenates literal text and enclosed expression results.
type AttrConstructor struct {
	Name  xmldom.Name
	Parts []Expr // TextLiteral or arbitrary enclosed expressions
}

// TextLiteral is literal character data inside a constructor.
type TextLiteral struct {
	base
	Text string
}

// EnqueueExpr is the Demaq update primitive
// "do enqueue Expr into QName (with PName value Expr)*".
type EnqueueExpr struct {
	base
	What  Expr
	Queue string
	Props []PropSpec
}

// PropSpec is one "with name value expr" clause.
type PropSpec struct {
	Name  string
	Value Expr
}

// ResetExpr is the Demaq update primitive "do reset [SName key Expr]".
type ResetExpr struct {
	base
	Slicing string // empty: slicing of the current rule
	Key     Expr   // nil: slice key of the current message
}
