package xpath

import (
	"testing"

	"demaq/internal/xdm"
)

func parse(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseExprString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

func TestParseLiterals(t *testing.T) {
	if l := parse(t, `"hi"`).(*Literal); l.Value.S != "hi" {
		t.Fatal("string literal")
	}
	if l := parse(t, `'it''s'`).(*Literal); l.Value.S != "it's" {
		t.Fatal("doubled quote escape")
	}
	if l := parse(t, `"&lt;&amp;"`).(*Literal); l.Value.S != "<&" {
		t.Fatal("entities in string literal")
	}
	if l := parse(t, `42`).(*Literal); l.Value.T != xdm.TypeInteger || l.Value.I != 42 {
		t.Fatal("integer literal")
	}
	if l := parse(t, `3.25`).(*Literal); l.Value.T != xdm.TypeDecimal || l.Value.F != 3.25 {
		t.Fatal("decimal literal")
	}
	if l := parse(t, `1e3`).(*Literal); l.Value.T != xdm.TypeDouble || l.Value.F != 1000 {
		t.Fatal("double literal")
	}
}

func TestParsePathShapes(t *testing.T) {
	p := parse(t, `//offerRequest`).(*PathExpr)
	if !p.Rooted || !p.Descend || len(p.Steps) != 1 {
		t.Fatalf("//name: %+v", p)
	}
	if p.Steps[0].Test.Name.Local != "offerRequest" {
		t.Fatal("step name")
	}

	p = parse(t, `/confirmedOrder/ID`).(*PathExpr)
	if !p.Rooted || p.Descend || len(p.Steps) != 2 {
		t.Fatalf("/a/b: %+v", p)
	}

	p = parse(t, `a//b`).(*PathExpr)
	// a, descendant-or-self::node(), b
	if p.Rooted || len(p.Steps) != 3 || p.Steps[1].Axis != AxisDescendantOrSelf {
		t.Fatalf("a//b: %+v", p)
	}

	p = parse(t, `@id`).(*PathExpr)
	if p.Steps[0].Axis != AxisAttribute {
		t.Fatal("@ abbreviation")
	}

	p = parse(t, `..`).(*PathExpr)
	if p.Steps[0].Axis != AxisParent {
		t.Fatal(".. abbreviation")
	}

	p = parse(t, `child::a/descendant::b/ancestor::*`).(*PathExpr)
	if p.Steps[0].Axis != AxisChild || p.Steps[1].Axis != AxisDescendant || p.Steps[2].Axis != AxisAncestor {
		t.Fatal("explicit axes")
	}
	if p.Steps[2].Test.Kind != TestAnyName {
		t.Fatal("wildcard after axis")
	}

	if _, ok := parse(t, `/`).(*PathExpr); !ok {
		t.Fatal("bare / is a path")
	}
}

func TestParseKindTests(t *testing.T) {
	p := parse(t, `a/text()`).(*PathExpr)
	if p.Steps[1].Test.Kind != TestText {
		t.Fatal("text() kind test")
	}
	p = parse(t, `//node()`).(*PathExpr)
	if p.Steps[0].Test.Kind != TestNode {
		t.Fatal("node() kind test")
	}
	p = parse(t, `self::element(order)`).(*PathExpr)
	if p.Steps[0].Test.Kind != TestElement || p.Steps[0].Test.Name.Local != "order" {
		t.Fatal("element(name) kind test")
	}
}

func TestParsePredicates(t *testing.T) {
	p := parse(t, `item[3]`).(*PathExpr)
	if len(p.Steps[0].Preds) != 1 {
		t.Fatal("positional predicate")
	}
	p = parse(t, `invoice[//customerID = 5][2]`).(*PathExpr)
	if len(p.Steps[0].Preds) != 2 {
		t.Fatal("two predicates")
	}
	f := parse(t, `$invoices[//customerID = qs:message()/customerID]`).(*FilterExpr)
	if len(f.Preds) != 1 {
		t.Fatal("filter on variable")
	}
	if _, ok := f.Primary.(*VarRef); !ok {
		t.Fatal("filter primary")
	}
}

func TestParseFunctionCalls(t *testing.T) {
	fc := parse(t, `qs:message()`).(*FuncCall)
	if fc.Prefix != "qs" || fc.Local != "message" || len(fc.Args) != 0 {
		t.Fatalf("qs:message(): %+v", fc)
	}
	fc = parse(t, `qs:queue("invoices")`).(*FuncCall)
	if len(fc.Args) != 1 {
		t.Fatal("one arg")
	}
	fc = parse(t, `concat("a", "b", "c")`).(*FuncCall)
	if fc.Prefix != "" || len(fc.Args) != 3 {
		t.Fatal("concat args")
	}
	// Function call as path start.
	p := parse(t, `qs:queue("crm")/offerRequest`).(*PathExpr)
	if p.Start == nil || len(p.Steps) != 1 {
		t.Fatalf("function call path start: %+v", p)
	}
	// collection() from the paper's Fig. 7.
	p2 := parse(t, `collection("crm")[/pricelist]`)
	if _, ok := p2.(*FilterExpr); !ok {
		t.Fatalf("collection filter: %T", p2)
	}
}

func TestParseOperators(t *testing.T) {
	b := parse(t, `1 + 2 * 3`).(*BinaryExpr)
	if b.Op != BinAdd {
		t.Fatal("precedence: + on top")
	}
	if r := b.Right.(*BinaryExpr); r.Op != BinMul {
		t.Fatal("precedence: * binds tighter")
	}
	b = parse(t, `2 idiv 3 mod 4`).(*BinaryExpr)
	if b.Op != BinMod {
		t.Fatal("left assoc multiplicative")
	}
	c := parse(t, `//a = 5`).(*ComparisonExpr)
	if !c.General || c.Op != xdm.OpEq {
		t.Fatal("general comparison")
	}
	c = parse(t, `1 lt 2`).(*ComparisonExpr)
	if c.General || c.Op != xdm.OpLt {
		t.Fatal("value comparison")
	}
	c = parse(t, `. is .`).(*ComparisonExpr)
	if !c.NodeIs {
		t.Fatal("is comparison")
	}
	u := parse(t, `a | b`).(*BinaryExpr)
	if u.Op != BinUnion {
		t.Fatal("union |")
	}
	u = parse(t, `a union b`).(*BinaryExpr)
	if u.Op != BinUnion {
		t.Fatal("union keyword")
	}
	r := parse(t, `1 to 10`).(*BinaryExpr)
	if r.Op != BinRange {
		t.Fatal("range")
	}
	n := parse(t, `-5`).(*UnaryExpr)
	if !n.Neg {
		t.Fatal("unary minus")
	}
	or := parse(t, `a and b or c`).(*BinaryExpr)
	if or.Op != BinOr {
		t.Fatal("or lowest")
	}
}

func TestParseSequence(t *testing.T) {
	s := parse(t, `(1, 2, 3)`).(*SequenceExpr)
	if len(s.Items) != 3 {
		t.Fatal("sequence items")
	}
	e := parse(t, `()`).(*SequenceExpr)
	if len(e.Items) != 0 {
		t.Fatal("empty sequence")
	}
}

func TestParseFLWOR(t *testing.T) {
	fl := parse(t, `for $x at $i in //item let $y := $x/price where $y > 10 order by $y descending return $x`).(*FLWORExpr)
	if len(fl.Clauses) != 2 {
		t.Fatalf("clauses: %d", len(fl.Clauses))
	}
	if !fl.Clauses[0].For || fl.Clauses[0].Var != "x" || fl.Clauses[0].PosVar != "i" {
		t.Fatalf("for clause: %+v", fl.Clauses[0])
	}
	if fl.Clauses[1].For || fl.Clauses[1].Var != "y" {
		t.Fatalf("let clause: %+v", fl.Clauses[1])
	}
	if fl.Where == nil || len(fl.OrderBy) != 1 || !fl.OrderBy[0].Descending {
		t.Fatal("where/order by")
	}
	// Multiple bindings with comma.
	fl = parse(t, `for $a in (1,2), $b in (3,4) return $a + $b`).(*FLWORExpr)
	if len(fl.Clauses) != 2 || !fl.Clauses[1].For {
		t.Fatal("comma-separated for bindings")
	}
}

func TestParseQuantified(t *testing.T) {
	q := parse(t, `some $x in //v satisfies $x = 3`).(*QuantifiedExpr)
	if q.Every || len(q.Bindings) != 1 {
		t.Fatal("some")
	}
	q = parse(t, `every $x in //v, $y in //w satisfies $x = $y`).(*QuantifiedExpr)
	if !q.Every || len(q.Bindings) != 2 {
		t.Fatal("every with two bindings")
	}
}

func TestParseIf(t *testing.T) {
	ife := parse(t, `if (//a) then 1 else 2`).(*IfExpr)
	if ife.Cond == nil || ife.Then == nil || ife.Else == nil {
		t.Fatal("if/then/else")
	}
	// Demaq allows a missing else (Sec. 3.3).
	ife = parse(t, `if (//a) then do enqueue . into q`).(*IfExpr)
	if ife.Else != nil {
		t.Fatal("else should be nil")
	}
}

func TestParseUpdatePrimitives(t *testing.T) {
	e := parse(t, `do enqueue $customerInfo into finance`).(*EnqueueExpr)
	if e.Queue != "finance" || len(e.Props) != 0 {
		t.Fatalf("enqueue: %+v", e)
	}
	e = parse(t, `do enqueue $m into supplier with Sender value "http://ws.chem.invalid/" with Priority value 3`).(*EnqueueExpr)
	if len(e.Props) != 2 || e.Props[0].Name != "Sender" || e.Props[1].Name != "Priority" {
		t.Fatalf("enqueue props: %+v", e.Props)
	}
	r := parse(t, `do reset`).(*ResetExpr)
	if r.Slicing != "" || r.Key != nil {
		t.Fatal("bare reset")
	}
	r = parse(t, `do reset orders key "42"`).(*ResetExpr)
	if r.Slicing != "orders" || r.Key == nil {
		t.Fatal("reset with slicing and key")
	}
	// "do reset" followed by else must not eat the else.
	ife := parse(t, `if (//a) then do reset else ()`).(*IfExpr)
	if ife.Else == nil {
		t.Fatal("reset swallowed else")
	}
	// Sequence of updates, as in Example 3.1.
	s := parse(t, `do enqueue $a into finance, do enqueue $b into legal, do enqueue $c into supplier`).(*SequenceExpr)
	if len(s.Items) != 3 {
		t.Fatal("update sequence")
	}
}

func TestParseConstructors(t *testing.T) {
	ec := parse(t, `<refuse/>`).(*ElementConstructor)
	if ec.Name.Local != "refuse" || len(ec.Content) != 0 {
		t.Fatal("empty constructor")
	}
	ec = parse(t, `<requestCustomerInfo>{//requestID} {//customerID}</requestCustomerInfo>`).(*ElementConstructor)
	if len(ec.Content) != 2 {
		t.Fatalf("constructor with two enclosed exprs: %d items", len(ec.Content))
	}
	ec = parse(t, `<a id="7" href="x{1+1}y">text {2} tail</a>`).(*ElementConstructor)
	if len(ec.Attrs) != 2 {
		t.Fatal("attrs")
	}
	if len(ec.Attrs[1].Parts) != 3 {
		t.Fatalf("attr value parts: %d", len(ec.Attrs[1].Parts))
	}
	// Content: "text ", {2}, " tail" (non-whitespace-only text preserved).
	if len(ec.Content) != 3 {
		t.Fatalf("constructor content: %d items", len(ec.Content))
	}
	// Nested constructors.
	ec = parse(t, `<outer><inner>{$x}</inner><empty/></outer>`).(*ElementConstructor)
	if len(ec.Content) != 2 {
		t.Fatal("nested constructors")
	}
	if _, ok := ec.Content[0].(*ElementConstructor); !ok {
		t.Fatal("inner constructor type")
	}
	// Escapes.
	ec = parse(t, `<a>{{literal}}</a>`).(*ElementConstructor)
	tl := ec.Content[0].(*TextLiteral)
	if tl.Text != "{literal}" {
		t.Fatalf("brace escapes: %q", tl.Text)
	}
	// Namespace declaration.
	ec = parse(t, `<e xmlns="urn:x" xmlns:p="urn:y"><p:c/></e>`).(*ElementConstructor)
	if ec.Name.Space != "urn:x" {
		t.Fatal("default ns in constructor")
	}
	if ec.Content[0].(*ElementConstructor).Name.Space != "urn:y" {
		t.Fatal("prefixed ns in constructor")
	}
}

func TestParsePaperExamples(t *testing.T) {
	// Close transcriptions of the paper's Figures 5-10 rule bodies.
	sources := []string{
		// Fig. 5 (Example 3.1), with elided lets filled in.
		`if (//offerRequest) then
		   let $customerInfo := <requestCustomerInfo>{//requestID} {//customerID}</requestCustomerInfo>
		   let $exportRestrictionsInfo := <exportRestrictionsInfo>{//requestID} {//items}</exportRestrictionsInfo>
		   let $plantCapacityInfo := <plantCapacityInfo>{//requestID} {//items}</plantCapacityInfo>
		   return (do enqueue $customerInfo into finance,
		           do enqueue $exportRestrictionsInfo into legal,
		           do enqueue $plantCapacityInfo into supplier
		             with Sender value "http://ws.chem.invalid/")`,
		// Fig. 6 (Example 3.2).
		`if (//requestCustomerInfo) then
		   let $result :=
		     <customerInfoResult>{//requestID} {//customerID}
		       {let $invoices := qs:queue("invoices")
		        return
		          if ($invoices[//customerID = qs:message()/customerID])
		          then <refuse/>
		          else <accept/>}
		     </customerInfoResult>
		   return do enqueue $result into crm`,
		// Fig. 7 (Example 3.3).
		`if (qs:slice()[/customerInfoResult] and
		     qs:slice()[/restrictionsResult] and
		     qs:slice()[/capacityResult]) then
		   if (qs:slice()[/customerInfoResult/accept] and
		       not(qs:slice()[/restrictionsResult//restrictedItem])
		       and qs:slice()[/capacityResult//accept]) then
		     let $request := qs:queue("crm")/offerRequest
		     let $items := $request[//requestID = qs:slicekey()]/items
		     let $pricelist := collection("crm")[/pricelist]
		     let $offer := <offer>{$items}</offer>
		     return do enqueue $offer into customer
		   else
		     do enqueue <refusal>{//requestID}</refusal> into customer`,
		// Fig. 8.
		`if (qs:slice()/offer or qs:slice()/refusal) then do reset`,
		// Fig. 9 (checkPayment).
		`if (//timeoutNotification) then
		   let $mRID := qs:message()//requestID
		   let $payments := qs:queue()[/paymentConfirmation]
		   return
		     if (not($payments[//requestID = $mRID])) then
		       let $invoice := qs:queue("invoices")[//requestID = $mRID]
		       let $reminder := <reminder>{$invoice//requestID}</reminder>
		       return do enqueue $reminder into customer
		     else ()`,
		// Fig. 10 (deadLink).
		`if (/error/disconnectedTransport) then
		   let $orders := qs:queue("crm")//customerOrders
		   let $initialOrderID := /error/initialMessage//orderID
		   let $address := $orders[orderID=$initialOrderID]/address
		   let $request := <sendMessage>{$address}{//initialMessage}</sendMessage>
		   return do enqueue $request into postalService`,
	}
	for i, src := range sources {
		if _, err := ParseExprString(src); err != nil {
			t.Errorf("paper example %d: %v", i+1, err)
		}
	}
}

func TestParseErrorsXPath(t *testing.T) {
	bad := []string{
		``, `1 +`, `for $x in`, `if (1) then`, `(1,`, `$`, `do enqueue 1`,
		`do enqueue 1 into`, `qs:queue(`, `a[1`, `<a>`, `<a></b>`, `"unterminated`,
		`do flush`, `1 ===`, `some $x in a`, `<a x=5/>`,
	}
	for _, src := range bad {
		if _, err := ParseExprString(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParseCommentsInExpr(t *testing.T) {
	e := parse(t, `1 (: a comment (: nested :) here :) + 2`).(*BinaryExpr)
	if e.Op != BinAdd {
		t.Fatal("comments should be skipped")
	}
}

func TestTrailingInputRejected(t *testing.T) {
	if _, err := ParseExprString(`1 2`); err == nil {
		t.Fatal("expected trailing input error")
	}
}
