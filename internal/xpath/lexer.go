// Package xpath implements the lexer, parser and abstract syntax tree for
// the Demaq expression language: the XQuery 1.0 subset described in the
// paper (Sec. 3.2–3.5) extended with the XQuery Update Facility style
// queue primitives "do enqueue" and "do reset".
//
// The package is purely syntactic; static analysis, compilation and
// evaluation live in internal/xquery.
package xpath

import (
	"fmt"
	"strings"
)

// TokKind classifies lexical tokens. XQuery has no reserved words: names
// are lexed as TokName and interpreted contextually by the parser.
type TokKind uint8

// Token kinds.
const (
	TokEOF    TokKind = iota
	TokName           // QName or NCName (possibly prefixed)
	TokVar            // $name
	TokString         // "..."/'...' with doubled-quote escapes and entities
	TokInteger
	TokDecimal
	TokDouble
	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokLBrace   // {
	TokRBrace   // }
	TokComma
	TokSemicolon
	TokDot    // .
	TokDotDot // ..
	TokSlash  // /
	TokSlash2 // //
	TokAt     // @
	TokPipe   // |
	TokPlus
	TokMinus
	TokStar
	TokEq     // =
	TokNe     // !=
	TokLt     // <
	TokLe     // <=
	TokGt     // >
	TokGe     // >=
	TokAssign // :=
	TokAxis   // ::
	TokQuestion
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokName:
		return "name"
	case TokVar:
		return "variable"
	case TokString:
		return "string literal"
	case TokInteger, TokDecimal, TokDouble:
		return "number"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokComma:
		return "','"
	case TokSemicolon:
		return "';'"
	case TokDot:
		return "'.'"
	case TokDotDot:
		return "'..'"
	case TokSlash:
		return "'/'"
	case TokSlash2:
		return "'//'"
	case TokAt:
		return "'@'"
	case TokPipe:
		return "'|'"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokStar:
		return "'*'"
	case TokEq:
		return "'='"
	case TokNe:
		return "'!='"
	case TokLt:
		return "'<'"
	case TokLe:
		return "'<='"
	case TokGt:
		return "'>'"
	case TokGe:
		return "'>='"
	case TokAssign:
		return "':='"
	case TokAxis:
		return "'::'"
	case TokQuestion:
		return "'?'"
	}
	return "token"
}

// Token is one lexical token with its source position (byte offset and
// line/column for error messages).
type Token struct {
	Kind TokKind
	Text string // name text, string value (unescaped), numeric lexical form
	Pos  Pos
}

// Pos is a source position.
type Pos struct {
	Offset int
	Line   int
	Col    int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// SyntaxError reports a lexical or grammatical error with position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at %s: %s", e.Pos, e.Msg)
}

// Lexer produces tokens on demand and supports resetting to a saved
// position, which the parser uses to switch into raw mode for direct
// element constructors.
type Lexer struct {
	src  []byte
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []byte(src), line: 1, col: 1}
}

// Mark captures the current raw position.
func (l *Lexer) Mark() Pos { return Pos{Offset: l.pos, Line: l.line, Col: l.col} }

// ResetTo rewinds the lexer to a previously captured position.
func (l *Lexer) ResetTo(p Pos) {
	l.pos, l.line, l.col = p.Offset, p.Line, p.Col
}

// Source exposes the raw input for constructor parsing.
func (l *Lexer) Source() []byte { return l.src }

func (l *Lexer) errf(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) eof() bool { return l.pos >= len(l.src) }

func (l *Lexer) peekByte() byte {
	if l.eof() {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(i int) byte {
	if l.pos+i >= len(l.src) {
		return 0
	}
	return l.src[l.pos+i]
}

func (l *Lexer) adv() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipIgnorable skips whitespace and (: ... :) comments, which nest.
func (l *Lexer) skipIgnorable() error {
	for !l.eof() {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.adv()
		case c == '(' && l.peekAt(1) == ':':
			start := l.Mark()
			l.adv()
			l.adv()
			depth := 1
			for depth > 0 {
				if l.eof() {
					return l.errf(start, "unterminated comment")
				}
				if l.peekByte() == '(' && l.peekAt(1) == ':' {
					l.adv()
					l.adv()
					depth++
				} else if l.peekByte() == ':' && l.peekAt(1) == ')' {
					l.adv()
					l.adv()
					depth--
				} else {
					l.adv()
				}
			}
		default:
			return nil
		}
	}
	return nil
}

func isNameStartByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameByte(c byte) bool {
	return isNameStartByte(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipIgnorable(); err != nil {
		return Token{}, err
	}
	pos := l.Mark()
	if l.eof() {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peekByte()
	switch {
	case isNameStartByte(c):
		return l.lexName(pos)
	case isDigit(c):
		return l.lexNumber(pos)
	case c == '.':
		if isDigit(l.peekAt(1)) {
			return l.lexNumber(pos)
		}
		l.adv()
		if l.peekByte() == '.' {
			l.adv()
			return Token{Kind: TokDotDot, Pos: pos}, nil
		}
		return Token{Kind: TokDot, Pos: pos}, nil
	case c == '"' || c == '\'':
		return l.lexString(pos)
	case c == '$':
		l.adv()
		if !isNameStartByte(l.peekByte()) {
			return Token{}, l.errf(pos, "expected variable name after '$'")
		}
		name := l.scanQName()
		return Token{Kind: TokVar, Text: name, Pos: pos}, nil
	}
	l.adv()
	simple := func(k TokKind) (Token, error) { return Token{Kind: k, Pos: pos}, nil }
	switch c {
	case '(':
		return simple(TokLParen)
	case ')':
		return simple(TokRParen)
	case '[':
		return simple(TokLBracket)
	case ']':
		return simple(TokRBracket)
	case '{':
		return simple(TokLBrace)
	case '}':
		return simple(TokRBrace)
	case ',':
		return simple(TokComma)
	case ';':
		return simple(TokSemicolon)
	case '@':
		return simple(TokAt)
	case '|':
		return simple(TokPipe)
	case '+':
		return simple(TokPlus)
	case '-':
		return simple(TokMinus)
	case '*':
		return simple(TokStar)
	case '?':
		return simple(TokQuestion)
	case '/':
		if l.peekByte() == '/' {
			l.adv()
			return simple(TokSlash2)
		}
		return simple(TokSlash)
	case '=':
		return simple(TokEq)
	case '!':
		if l.peekByte() == '=' {
			l.adv()
			return simple(TokNe)
		}
		return Token{}, l.errf(pos, "unexpected '!'")
	case '<':
		if l.peekByte() == '=' {
			l.adv()
			return simple(TokLe)
		}
		return simple(TokLt)
	case '>':
		if l.peekByte() == '=' {
			l.adv()
			return simple(TokGe)
		}
		return simple(TokGt)
	case ':':
		if l.peekByte() == '=' {
			l.adv()
			return simple(TokAssign)
		}
		if l.peekByte() == ':' {
			l.adv()
			return simple(TokAxis)
		}
		return Token{}, l.errf(pos, "unexpected ':'")
	}
	return Token{}, l.errf(pos, "unexpected character %q", string(rune(c)))
}

// scanQName scans NCName(:NCName)?. The leading character is known valid.
func (l *Lexer) scanQName() string {
	start := l.pos
	for !l.eof() && isNameByte(l.peekByte()) {
		l.adv()
	}
	// Prefixed name: a single ':' followed by a name start, but not '::'
	// (axis) and not ':=' (assign).
	if !l.eof() && l.peekByte() == ':' && isNameStartByte(l.peekAt(1)) && l.peekAt(1) != ':' {
		// Check it is not an axis specifier like child::name. The only way
		// to distinguish "child::x" from a QName is the double colon, which
		// the isNameStartByte(l.peekAt(1)) test already excludes since ':'
		// is not a name start in this lexer.
		l.adv() // ':'
		for !l.eof() && isNameByte(l.peekByte()) {
			l.adv()
		}
	}
	return string(l.src[start:l.pos])
}

func (l *Lexer) lexName(pos Pos) (Token, error) {
	name := l.scanQName()
	return Token{Kind: TokName, Text: name, Pos: pos}, nil
}

func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	start := l.pos
	kind := TokInteger
	for !l.eof() && isDigit(l.peekByte()) {
		l.adv()
	}
	if !l.eof() && l.peekByte() == '.' && isDigit(l.peekAt(1)) {
		kind = TokDecimal
		l.adv()
		for !l.eof() && isDigit(l.peekByte()) {
			l.adv()
		}
	} else if !l.eof() && l.peekByte() == '.' && !isNameStartByte(l.peekAt(1)) && l.peekAt(1) != '.' {
		// "1." form
		kind = TokDecimal
		l.adv()
	}
	if !l.eof() && (l.peekByte() == 'e' || l.peekByte() == 'E') {
		n1 := l.peekAt(1)
		n2 := l.peekAt(2)
		if isDigit(n1) || ((n1 == '+' || n1 == '-') && isDigit(n2)) {
			kind = TokDouble
			l.adv()
			if l.peekByte() == '+' || l.peekByte() == '-' {
				l.adv()
			}
			for !l.eof() && isDigit(l.peekByte()) {
				l.adv()
			}
		}
	}
	return Token{Kind: kind, Text: string(l.src[start:l.pos]), Pos: pos}, nil
}

func (l *Lexer) lexString(pos Pos) (Token, error) {
	quote := l.adv()
	var sb strings.Builder
	for {
		if l.eof() {
			return Token{}, l.errf(pos, "unterminated string literal")
		}
		c := l.adv()
		if c == quote {
			// Doubled quote is an escape.
			if l.peekByte() == quote {
				l.adv()
				sb.WriteByte(quote)
				continue
			}
			return Token{Kind: TokString, Text: sb.String(), Pos: pos}, nil
		}
		if c == '&' {
			ent, err := l.lexEntity(pos)
			if err != nil {
				return Token{}, err
			}
			sb.WriteString(ent)
			continue
		}
		sb.WriteByte(c)
	}
}

func (l *Lexer) lexEntity(pos Pos) (string, error) {
	start := l.pos
	for !l.eof() && l.peekByte() != ';' {
		if l.pos-start > 10 {
			return "", l.errf(pos, "unterminated entity reference in string literal")
		}
		l.adv()
	}
	if l.eof() {
		return "", l.errf(pos, "unterminated entity reference in string literal")
	}
	name := string(l.src[start:l.pos])
	l.adv()
	switch name {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "apos":
		return "'", nil
	case "quot":
		return "\"", nil
	}
	return "", l.errf(pos, "unknown entity &%s;", name)
}
