package store

import (
	"bytes"
	"fmt"
	"testing"
)

// TestIndexKeyPrefixFree pins the property the codec exists for: the prefix
// of one component tuple never covers keys of a different tuple, even when
// components embed the old separator byte or shift bytes across the
// component boundary.
func TestIndexKeyPrefixFree(t *testing.T) {
	tuples := [][2]string{
		{"a", "b"},
		{"a", "b\x00c"},
		{"a\x00b", "c"},
		{"a\x00", "bc"},
		{"ab", "c"},
		{"a", "bc"},
		{"", "ab"},
		{"ab", ""},
		{"", ""},
		{"a\xffb", "c"},
	}
	for i, ti := range tuples {
		for j, tj := range tuples {
			ki := IndexKey(7, ti[0], ti[1])
			pj := IndexKeyPrefix(tj[0], tj[1])
			covered := bytes.HasPrefix(ki, pj)
			if (i == j) != covered {
				t.Errorf("tuple %q/%q vs prefix %q/%q: covered=%v", ti[0], ti[1], tj[0], tj[1], covered)
			}
		}
	}
}

// TestIndexKeyScanIsolation runs the same property through the tree itself:
// a ScanPrefix over one tuple must see exactly its own ids, in ascending
// order, with adversarial sibling tuples present.
func TestIndexKeyScanIsolation(t *testing.T) {
	bt := NewBTree()
	tuples := [][2]string{{"s", "k"}, {"s\x00k", ""}, {"s", "k\x00"}, {"sk", ""}, {"", "sk"}}
	for ti, tu := range tuples {
		for id := uint64(1); id <= 8; id++ {
			bt.Insert(IndexKey(uint64(ti)*100+id, tu[0], tu[1]), nil)
		}
	}
	for ti, tu := range tuples {
		var got []uint64
		bt.ScanPrefix(IndexKeyPrefix(tu[0], tu[1]), func(k, _ []byte) bool {
			got = append(got, IndexKeyID(k))
			return true
		})
		if len(got) != 8 {
			t.Fatalf("tuple %q/%q: got %d ids %v, want 8", tu[0], tu[1], len(got), got)
		}
		for i, id := range got {
			if want := uint64(ti)*100 + uint64(i) + 1; id != want {
				t.Fatalf("tuple %q/%q: id[%d] = %d, want %d (ascending id order)", tu[0], tu[1], i, id, want)
			}
		}
	}
}

// TestIndexKeyRangeScan checks the big-endian id suffix gives contiguous
// [lo, hi] id windows under a fixed tuple.
func TestIndexKeyRangeScan(t *testing.T) {
	bt := NewBTree()
	for id := uint64(1); id <= 100; id++ {
		bt.Insert(IndexKey(id, "p", "v"), nil)
	}
	lo := AppendIndexKeyID(IndexKeyPrefix("p", "v"), 40)
	hi := AppendIndexKeyID(IndexKeyPrefix("p", "v"), 61) // Scan is [lo, hi)
	var got []uint64
	bt.Scan(lo, hi, func(k, _ []byte) bool {
		got = append(got, IndexKeyID(k))
		return true
	})
	if len(got) != 21 || got[0] != 40 || got[len(got)-1] != 60 {
		t.Fatalf("range scan got %v", got)
	}
}

func TestIndexKeyLongComponents(t *testing.T) {
	long := string(bytes.Repeat([]byte{0x80}, 300)) // forces a multi-byte uvarint
	k1 := IndexKey(1, long, "x")
	p1 := IndexKeyPrefix(long, "x")
	if !bytes.HasPrefix(k1, p1) {
		t.Fatal("prefix must cover its own key")
	}
	p2 := IndexKeyPrefix(long + "x")
	if bytes.HasPrefix(k1, p2) || bytes.HasPrefix(AppendIndexKeyID(p2, 1), p1) {
		t.Fatal("long components must stay prefix-free")
	}
	if got := IndexKeyID(k1); got != 1 {
		t.Fatalf("id = %d", got)
	}
	if s := fmt.Sprintf("%x", k1[len(k1)-8:]); s != "0000000000000001" {
		t.Fatalf("suffix %s", s)
	}
}
