package store

import "fmt"

// VerifyPageLSNs checks the invariant redo idempotence rests on: no page
// carries an LSN beyond the current end of the log. A violation means a
// future record could be masked by a stale stamp — exactly the corruption
// a torn header or a lost checkpoint write would cause. Used by the
// crash-recovery torture harness after every reopen.
func (s *Store) VerifyPageLSNs() error {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	end := s.log.size()
	s.allocMu.Lock()
	n := s.pageCount
	s.allocMu.Unlock()
	for pid := PageID(1); pid < PageID(n); pid++ {
		f, err := s.pool.get(pid)
		if err != nil {
			return fmt.Errorf("store: verify page %d: %w", pid, err)
		}
		f.latch.RLock()
		lsn := f.pg.lsn()
		f.latch.RUnlock()
		s.pool.unpin(f, false)
		if lsn > end {
			return fmt.Errorf("store: page %d LSN %d beyond log end %d", pid, lsn, end)
		}
	}
	return nil
}
