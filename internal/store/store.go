package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Options configure a store.
type Options struct {
	// VFS supplies the file implementation; nil means the real filesystem.
	// Tests inject FaultFS here to replay crashes and I/O errors
	// deterministically.
	VFS VFS
	// BufferPages is the buffer pool capacity in pages (default 1024).
	BufferPages int
	// SyncCommits fsyncs the WAL on every commit (default). Disabling
	// trades durability of the most recent commits for throughput
	// (experiment A3).
	SyncCommits bool
	// UnloggedDeletes enables the paper's retention-based deletion
	// optimization: BatchDelete writes redo-only records without before
	// images (Sec. 4.1). Disabled, deletes are logged with full before
	// images, which is the comparison baseline of experiment E3.
	UnloggedDeletes bool
	// GlobalLock serializes every public store operation under one mutex,
	// recreating the coarse-grained engine that predates the fine-grained
	// latching. It exists as the comparison baseline of experiment E14 and
	// is never enabled in production configurations.
	GlobalLock bool
	// BenchIODelay injects a fixed delay into buffer-pool page reads and
	// eviction write-backs, modeling a storage device's access latency.
	// Benchmark machines serve the working set from the OS page cache,
	// where preads never block; the delay restores the I/O wait that the
	// latched pool overlaps across goroutines — and that a global store
	// mutex serializes. Benchmarks only; zero in production.
	BenchIODelay time.Duration
}

// DefaultOptions returns the production configuration.
func DefaultOptions() Options {
	return Options{BufferPages: 1024, SyncCommits: true, UnloggedDeletes: true}
}

const (
	storeMagic   = "DEMAQST1"
	dataFileName = "data.db"
	walFileName  = "wal.log"

	catalogHeapID    = 0
	catalogFirstPage = 1

	// The header page carries the LSN base in two CRC-protected ping-pong
	// slots. Checkpoints alternate between them, so a torn or lost slot
	// write leaves the previous slot — which pairs with the still-intact
	// previous on-disk state — valid. Offset 40 holds the legacy
	// (pre-slot) base for stores formatted by older versions.
	hdrLegacyBase = 40
	hdrSlotA      = 64
	hdrSlotB      = 96
	hdrSlotSize   = 20 // seq u64 | lsnBase u64 | crc32 u32
	headerBytes   = hdrSlotB + hdrSlotSize
)

// writeHeaderSlot encodes one header slot into b.
func writeHeaderSlot(b []byte, seq, base uint64) {
	binary.LittleEndian.PutUint64(b[0:], seq)
	binary.LittleEndian.PutUint64(b[8:], base)
	binary.LittleEndian.PutUint32(b[16:], crc32.ChecksumIEEE(b[:16]))
}

// parseHeaderSlots returns the newest valid (base, seq) pair, falling back
// to the legacy field (seq 0) when neither slot validates.
func parseHeaderSlots(hdr []byte) (base, seq uint64) {
	base = binary.LittleEndian.Uint64(hdr[hdrLegacyBase:])
	for _, off := range []int{hdrSlotA, hdrSlotB} {
		s := hdr[off : off+hdrSlotSize]
		if crc32.ChecksumIEEE(s[:16]) != binary.LittleEndian.Uint32(s[16:]) {
			continue
		}
		if sq := binary.LittleEndian.Uint64(s[0:]); sq > seq {
			seq = sq
			base = binary.LittleEndian.Uint64(s[8:])
		}
	}
	return base, seq
}

// heapInfo is the in-memory descriptor of one record heap. The first page
// never changes; the mutable tail and the chain structure carry their own
// locks so that inserts into different heaps — and reads anywhere — never
// serialize on a store-wide mutex.
type heapInfo struct {
	id    uint32
	name  string
	first PageID

	// appendMu serializes inserts into this heap: it guards last and the
	// tail page's growth. Only the tail is latched under it, so readers of
	// other pages of the heap are unaffected.
	appendMu sync.Mutex
	last     PageID

	// chainMu guards the page chain's structure against unlinking: Scan
	// holds it shared for the duration of the walk, reclaimEmptyPages
	// exclusively. Appending a new tail page does not take it — scanners
	// tolerate a growing chain, but not a shrinking one.
	chainMu sync.RWMutex
}

// Stats reports storage counters.
type Stats struct {
	PageCount    uint32
	FreePages    int
	BufferHits   uint64
	BufferMisses uint64
	Evictions    uint64
	LogBytes     uint64
	Commits      uint64
	Aborts       uint64

	// Group-commit observability (experiment E10): WALFsyncs counts
	// physical fsyncs; WALFlushCalls counts commit flush requests that had
	// work to do; WALCoalesced counts requests satisfied by another
	// committer's fsync. WALFsyncs / Commits < 1 under concurrency means
	// group commit is coalescing.
	WALFsyncs     uint64
	WALFlushCalls uint64
	WALCoalesced  uint64
}

// Store is the page-based storage engine. All operations are safe for
// concurrent use. Synchronization is fine-grained (experiment E14): the
// buffer pool is lock-striped with per-page latches (see buffer.go for the
// latch hierarchy), page allocation and the free list sit under allocMu,
// the heap catalog under heapMu, and each heap serializes only its own
// inserts via a per-heap append lock. Record reads and B-tree lookups run
// fully in parallel; disk I/O for misses and eviction write-back happens
// outside every shared mutex.
type Store struct {
	dir  string
	opts Options

	file File
	log  *wal
	pool *bufferPool

	// hdrSeq is the sequence number of the active header slot; checkpoints
	// increment it and write the slot the new parity selects. Guarded by
	// ckptMu (exclusive in every writer).
	hdrSeq uint64

	// allocMu guards page allocation: pageCount and the free list.
	allocMu   sync.Mutex
	pageCount uint32
	freeList  []PageID

	// heapMu guards the heap catalog maps. Per-heap mutable state lives on
	// heapInfo under its own locks.
	heapMu    sync.RWMutex
	heaps     map[uint32]*heapInfo
	heapNames map[string]uint32
	nextHeap  uint32

	nextTxn atomic.Uint64
	commits atomic.Uint64 // incremented after the commit flush
	aborts  atomic.Uint64

	// lifeMu serializes lifecycle operations (Close, Checkpoint, crash
	// simulation) against each other.
	lifeMu sync.Mutex
	closed bool

	// ckptMu fences checkpoints against in-flight operations: every public
	// data operation — log-appending writes AND reads — holds it shared
	// (an uncontended RLock, not a serialization point); Checkpoint/Close
	// hold it exclusively. Without it, a commit racing a checkpoint could
	// append records between the checkpoint's log flush and its truncation
	// and have them silently discarded, and Close could shut the files
	// under a read's pending disk I/O. The engine quiesces before
	// checkpointing, but the store must not lose committed data when a
	// caller gets that wrong.
	ckptMu sync.RWMutex

	// globalMu is the Options.GlobalLock baseline: when enabled, public
	// operations hold it exactly where the pre-E14 engine held its single
	// store mutex (commit fsyncs stayed outside it even then).
	globalMu sync.Mutex
}

// glock/gunlock implement the GlobalLock comparison baseline; they are
// no-ops in the default configuration.
func (s *Store) glock() {
	if s.opts.GlobalLock {
		s.globalMu.Lock()
	}
}

func (s *Store) gunlock() {
	if s.opts.GlobalLock {
		s.globalMu.Unlock()
	}
}

// Open opens (creating if necessary) a store in dir and runs crash
// recovery.
func Open(dir string, opts Options) (*Store, error) {
	if opts.BufferPages == 0 {
		opts.BufferPages = 1024
	}
	vfs := opts.VFS
	if vfs == nil {
		vfs = OSFileSystem()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	file, err := vfs.OpenFile(filepath.Join(dir, dataFileName))
	if err != nil {
		return nil, err
	}
	file = &retryFile{f: file}
	walFile, err := vfs.OpenFile(filepath.Join(dir, walFileName))
	if err != nil {
		file.Close()
		return nil, err
	}
	walFile = &retryFile{f: walFile}

	size, err := file.Size()
	if err != nil {
		file.Close()
		walFile.Close()
		return nil, err
	}
	walSize, err := walFile.Size()
	if err != nil {
		file.Close()
		walFile.Close()
		return nil, err
	}
	fail := func(err error) (*Store, error) {
		file.Close()
		walFile.Close()
		return nil, err
	}
	// A crash during the initial format can leave a missing, empty, or torn
	// data file. Formatting syncs before any WAL record can exist, so a
	// short or bad-magic header alongside an EMPTY WAL means nothing was
	// ever committed and reformatting is safe. With a non-empty WAL the
	// header is load-bearing — silently resetting the LSN base to zero
	// would let stale page LSNs mask the redo of newer log records — so
	// the open must fail instead.
	isNew := size < 2*PageSize
	lsnBase, hdrSeq := uint64(0), uint64(0)
	if isNew {
		if walSize != 0 {
			return fail(fmt.Errorf("store: truncated header (data file %d bytes) with non-empty WAL", size))
		}
	} else {
		hdr := make([]byte, headerBytes)
		if _, err := file.ReadAt(hdr, 0); err != nil {
			return fail(fmt.Errorf("store: read header: %w", err))
		}
		if string(hdr[24:24+len(storeMagic)]) != storeMagic {
			if walSize != 0 {
				return fail(fmt.Errorf("store: bad magic, not a demaq store"))
			}
			isNew = true // torn format, never committed anything
		} else {
			lsnBase, hdrSeq = parseHeaderSlots(hdr)
		}
	}
	log, err := openWAL(walFile, lsnBase, opts.SyncCommits)
	if err != nil {
		file.Close()
		walFile.Close()
		return nil, err
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		file:      file,
		log:       log,
		hdrSeq:    hdrSeq,
		heaps:     map[uint32]*heapInfo{},
		heapNames: map[string]uint32{},
		nextHeap:  1,
	}
	s.nextTxn.Store(1)
	s.pool = newBufferPool(opts.BufferPages, file, log)
	s.pool.ioDelay = opts.BenchIODelay

	if isNew {
		if err := s.format(); err != nil {
			s.closeFiles()
			return nil, err
		}
		return s, nil
	}
	if err := s.load(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

func (s *Store) closeFiles() {
	s.file.Close()
	s.log.close()
}

// format initializes a fresh store: header page 0 and the catalog heap on
// page 1.
func (s *Store) format() error {
	header := make([]byte, PageSize)
	copy(header[24:], storeMagic)
	s.hdrSeq = 1
	writeHeaderSlot(header[hdrSlotA:], s.hdrSeq, 0)
	if _, err := s.file.WriteAt(header, 0); err != nil {
		return err
	}
	cat := page{id: catalogFirstPage, buf: make([]byte, PageSize)}
	cat.format()
	if _, err := s.file.WriteAt(cat.buf, PageSize); err != nil {
		return err
	}
	if err := s.file.Sync(); err != nil {
		return err
	}
	s.pageCount = 2
	s.heaps[catalogHeapID] = &heapInfo{id: catalogHeapID, name: "__catalog", first: catalogFirstPage, last: catalogFirstPage}
	return nil
}

// load reads the header, catalog and heap chains, then runs recovery.
// It runs single-threaded before the store is published.
func (s *Store) load() error {
	size, err := s.file.Size()
	if err != nil {
		return err
	}
	if size%PageSize != 0 {
		// A crash can leave a partially grown file; trim to whole pages.
		if err := s.file.Truncate(size - size%PageSize); err != nil {
			return err
		}
		size -= size % PageSize
	}
	s.pageCount = uint32(size / PageSize)
	if s.pageCount < 2 {
		return fmt.Errorf("store: data file too small")
	}
	hdr := make([]byte, PageSize)
	if _, err := s.file.ReadAt(hdr, 0); err != nil {
		return err
	}
	if string(hdr[24:24+len(storeMagic)]) != storeMagic {
		return fmt.Errorf("store: bad magic, not a demaq store")
	}
	s.heaps[catalogHeapID] = &heapInfo{id: catalogHeapID, name: "__catalog", first: catalogFirstPage, last: catalogFirstPage}

	if err := s.recover(); err != nil {
		return fmt.Errorf("store: recovery: %w", err)
	}
	if err := s.loadCatalog(); err != nil {
		return err
	}
	if err := s.rebuildChainsAndFreeList(); err != nil {
		return err
	}
	// Sharp checkpoint after recovery truncates the log.
	return s.checkpoint()
}

func (s *Store) loadCatalog() error {
	s.heapNames = map[string]uint32{}
	maxID := uint32(0)
	err := s.scanHeap(s.heaps[catalogHeapID], func(_ RID, data []byte) bool {
		id := binary.LittleEndian.Uint32(data[0:])
		first := PageID(binary.LittleEndian.Uint32(data[4:]))
		nameLen := binary.LittleEndian.Uint16(data[8:])
		name := string(data[10 : 10+nameLen])
		s.heaps[id] = &heapInfo{id: id, name: name, first: first, last: first}
		s.heapNames[name] = id
		if id > maxID {
			maxID = id
		}
		return true
	})
	if err != nil {
		return err
	}
	s.nextHeap = maxID + 1
	return nil
}

// rebuildChainsAndFreeList walks every heap chain to find tail pages, then
// scans the file for free-flagged pages, excluding any page still
// referenced by a live overflow pointer (closing the crash window between
// overflow frees and their transaction outcome).
func (s *Store) rebuildChainsAndFreeList() error {
	referenced := map[PageID]bool{}
	for _, h := range s.heaps {
		cur := h.first
		last := cur
		for cur != InvalidPage {
			f, err := s.pool.get(cur)
			if err != nil {
				return err
			}
			// Collect overflow references from live records.
			for slot := uint16(0); slot < f.pg.slotCount(); slot++ {
				data, ok := f.pg.read(slot)
				if !ok || len(data) == 0 {
					continue
				}
				if data[0] == recKindOverflow {
					ov := PageID(binary.LittleEndian.Uint32(data[1:]))
					for ov != InvalidPage {
						referenced[ov] = true
						of, err := s.pool.get(ov)
						if err != nil {
							return err
						}
						next := of.pg.next()
						s.pool.unpin(of, false)
						ov = next
					}
				}
			}
			last = cur
			next := f.pg.next()
			s.pool.unpin(f, false)
			cur = next
		}
		h.last = last
	}
	s.freeList = s.freeList[:0]
	for pid := PageID(2); pid < PageID(s.pageCount); pid++ {
		f, err := s.pool.get(pid)
		if err != nil {
			return err
		}
		free := f.pg.flags()&flagFree != 0
		if free && referenced[pid] {
			f.pg.setFlags(f.pg.flags() &^ flagFree)
			s.pool.unpin(f, true)
			continue
		}
		s.pool.unpin(f, false)
		if free {
			s.freeList = append(s.freeList, pid)
		}
	}
	return nil
}

// Close checkpoints and closes the store.
func (s *Store) Close() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.checkpoint(); err != nil {
		return err
	}
	s.closed = true
	s.closeFiles()
	return nil
}

// Checkpoint flushes all dirty pages, syncs the data file and truncates the
// WAL. No transactions may be active (the engine quiesces first); ckptMu
// additionally fences stragglers so a racing commit is never truncated
// away unflushed.
func (s *Store) Checkpoint() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.checkpoint()
}

func (s *Store) checkpoint() error {
	if err := s.log.flush(^uint64(0) >> 1); err != nil {
		return err
	}
	if err := s.pool.flushAll(); err != nil {
		return err
	}
	// Make the flushed pages durable BEFORE publishing the advanced LSN
	// base: a crash that tears or loses the header write must leave the
	// previous (base, pages) pair — which is self-consistent — on disk.
	// The reverse order could pair a new base with lost page writes,
	// making stale page LSNs incomparable with recomputed record LSNs.
	if err := s.file.Sync(); err != nil {
		return err
	}
	// Pages are durable now; the next write-back of each page must log a
	// fresh full-page image into the (about to be reset) log.
	s.pool.clearImaged()
	// Publish the advanced base in the next ping-pong slot. Only after its
	// own sync succeeds is the log truncated; a crash in between replays
	// the old log against the new base, which is idempotent — every record
	// effect is already in the synced pages.
	newBase := s.log.size()
	seq := s.hdrSeq + 1
	slot := make([]byte, hdrSlotSize)
	writeHeaderSlot(slot, seq, newBase)
	off := int64(hdrSlotA)
	if seq%2 == 0 {
		off = hdrSlotB
	}
	if _, err := s.file.WriteAt(slot, off); err != nil {
		return err
	}
	if err := s.file.Sync(); err != nil {
		return err
	}
	s.hdrSeq = seq
	if _, err := s.log.truncate(); err != nil {
		return err
	}
	return nil
}

// DiskError reports the sticky log I/O error, if any: once a WAL write or
// fsync has failed the store can no longer guarantee durability of new
// commits, and callers should stop accepting writes.
func (s *Store) DiskError() error { return s.log.err() }

// CrashForTest simulates a crash: buffered pages are discarded without
// write-back and the files are closed without checkpointing. Only data made
// durable by the WAL survives, exactly as after a power failure.
func (s *Store) CrashForTest() {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.closed {
		return
	}
	s.pool.dropAll()
	s.closed = true
	s.closeFiles()
}

// Stats returns storage counters.
func (s *Store) Stats() Stats {
	fsyncs, flushCalls, coalesced := s.log.syncStats()
	s.allocMu.Lock()
	pageCount := s.pageCount
	freePages := len(s.freeList)
	s.allocMu.Unlock()
	return Stats{
		PageCount:     pageCount,
		FreePages:     freePages,
		BufferHits:    s.pool.hits.Load(),
		BufferMisses:  s.pool.misses.Load(),
		Evictions:     s.pool.evictions.Load(),
		LogBytes:      s.log.size(),
		Commits:       s.commits.Load(),
		Aborts:        s.aborts.Load(),
		WALFsyncs:     fsyncs,
		WALFlushCalls: flushCalls,
		WALCoalesced:  coalesced,
	}
}

// LogBytes returns the current logical WAL size (experiment E3 metric).
func (s *Store) LogBytes() uint64 { return s.log.size() }

// --- page allocation ---

const flagFree uint16 = 1 << 15

// allocPage returns a pinned, formatted frame for a new page, preferring
// the free list. The allocation is logged redo-only. Page IDs are handed
// out under allocMu; the formatting (and its log record) happens under the
// new frame's write latch, though the page is unreachable by other threads
// until the caller links it into a chain.
func (s *Store) allocPage(t *Txn, flags uint16, prev, next PageID) (*frame, error) {
	s.allocMu.Lock()
	var pid PageID
	if n := len(s.freeList); n > 0 {
		pid = s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
	} else {
		pid = PageID(s.pageCount)
		s.pageCount++
	}
	s.allocMu.Unlock()
	f, err := s.pool.fresh(pid)
	if err != nil {
		s.allocMu.Lock()
		s.freeList = append(s.freeList, pid)
		s.allocMu.Unlock()
		return nil, err
	}
	f.latch.Lock()
	f.pg.format()
	f.pg.setFlags(flags)
	f.pg.setPrev(prev)
	f.pg.setNext(next)
	lsn := s.log.append(&logRecord{typ: recFormatPage, txn: t.id, prevLSN: t.lastLSN, page: pid, flags: flags, page2: prev, page3: next})
	t.lastLSN = lsn
	f.pg.setLSN(lsn)
	f.latch.Unlock()
	return f, nil
}
