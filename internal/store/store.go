package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options configure a store.
type Options struct {
	// VFS supplies the file implementation; nil means the real filesystem.
	// Tests inject FaultFS here to replay crashes and I/O errors
	// deterministically.
	VFS VFS
	// BufferPages is the buffer pool capacity in pages (default 1024).
	BufferPages int
	// SyncCommits fsyncs the WAL on every commit (default). Disabling
	// trades durability of the most recent commits for throughput
	// (experiment A3).
	SyncCommits bool
	// UnloggedDeletes enables the paper's retention-based deletion
	// optimization: BatchDelete writes redo-only records without before
	// images (Sec. 4.1). Disabled, deletes are logged with full before
	// images, which is the comparison baseline of experiment E3.
	UnloggedDeletes bool
	// GlobalLock serializes every public store operation under one mutex,
	// recreating the coarse-grained engine that predates the fine-grained
	// latching. It exists as the comparison baseline of experiment E14 and
	// is never enabled in production configurations.
	GlobalLock bool
	// BenchIODelay injects a fixed delay into buffer-pool page reads and
	// eviction write-backs, modeling a storage device's access latency.
	// Benchmark machines serve the working set from the OS page cache,
	// where preads never block; the delay restores the I/O wait that the
	// latched pool overlaps across goroutines — and that a global store
	// mutex serializes. Benchmarks only; zero in production.
	BenchIODelay time.Duration

	// WALSegmentSize is the roll threshold for WAL segment files in bytes
	// (0 = 4 MiB). Smaller segments reclaim space sooner after a
	// checkpoint at the cost of more file churn.
	WALSegmentSize int64
	// WALSoftBudget bounds the live WAL (bytes at or after the last
	// checkpoint's redo point) softly: beyond it the checkpoint scheduler
	// should run a checkpoint, and commits start to be throttled
	// proportionally to how far past it the log has grown. 0 disables.
	WALSoftBudget int64
	// WALHardBudget is the ceiling the throttle ramps toward: at or past
	// it commits pay the maximum throttle delay and the engine sheds new
	// ingest with 429 + Retry-After until the checkpointer catches up.
	// 0 disables.
	WALHardBudget int64
}

// DefaultOptions returns the production configuration.
func DefaultOptions() Options {
	return Options{BufferPages: 1024, SyncCommits: true, UnloggedDeletes: true}
}

const (
	storeMagic   = "DEMAQST1"
	dataFileName = "data.db"
	// walLegacyFileName is the single-file WAL of stores formatted before
	// log segmentation; its presence with content makes Open fail rather
	// than silently ignore committed data.
	walLegacyFileName = "wal.log"

	catalogHeapID    = 0
	catalogFirstPage = 1

	// The header page carries the checkpoint redo offset — the logical log
	// offset recovery replays from — in two CRC-protected ping-pong slots.
	// Checkpoints alternate between them, so a torn or lost slot write
	// leaves the previous slot — which pairs with the still-intact previous
	// on-disk state — valid. Offset 40 holds the legacy (pre-slot) value
	// for stores formatted by older versions.
	hdrLegacyBase = 40
	hdrSlotA      = 64
	hdrSlotB      = 96
	hdrSlotSize   = 20 // seq u64 | redo offset u64 | crc32 u32
	headerBytes   = hdrSlotB + hdrSlotSize
)

// writeHeaderSlot encodes one header slot into b.
func writeHeaderSlot(b []byte, seq, redo uint64) {
	binary.LittleEndian.PutUint64(b[0:], seq)
	binary.LittleEndian.PutUint64(b[8:], redo)
	binary.LittleEndian.PutUint32(b[16:], crc32.ChecksumIEEE(b[:16]))
}

// parseHeaderSlots returns the newest valid (redo offset, seq) pair,
// falling back to the legacy field (seq 0) when neither slot validates.
func parseHeaderSlots(hdr []byte) (redo, seq uint64) {
	redo = binary.LittleEndian.Uint64(hdr[hdrLegacyBase:])
	for _, off := range []int{hdrSlotA, hdrSlotB} {
		s := hdr[off : off+hdrSlotSize]
		if crc32.ChecksumIEEE(s[:16]) != binary.LittleEndian.Uint32(s[16:]) {
			continue
		}
		if sq := binary.LittleEndian.Uint64(s[0:]); sq > seq {
			seq = sq
			redo = binary.LittleEndian.Uint64(s[8:])
		}
	}
	return redo, seq
}

// heapInfo is the in-memory descriptor of one record heap. The first page
// never changes; the mutable tail and the chain structure carry their own
// locks so that inserts into different heaps — and reads anywhere — never
// serialize on a store-wide mutex.
type heapInfo struct {
	id    uint32
	name  string
	first PageID

	// appendMu serializes inserts into this heap: it guards last and the
	// tail page's growth. Only the tail is latched under it, so readers of
	// other pages of the heap are unaffected.
	appendMu sync.Mutex
	last     PageID

	// chainMu guards the page chain's structure against unlinking: Scan
	// holds it shared for the duration of the walk, reclaimEmptyPages
	// exclusively — but only one bounded batch at a time. Appending a new
	// tail page does not take it — scanners tolerate a growing chain, but
	// not a shrinking one.
	chainMu sync.RWMutex

	// reclaimMu serializes reclaimers of this heap: reclaim releases
	// chainMu between batches, and its resume cursor is only valid if no
	// other reclaimer unlinks pages meanwhile.
	reclaimMu sync.Mutex
}

// Stats reports storage counters.
type Stats struct {
	PageCount    uint32
	FreePages    int
	BufferHits   uint64
	BufferMisses uint64
	Evictions    uint64
	LogBytes     uint64
	Commits      uint64
	Aborts       uint64

	// Group-commit observability (experiment E10): WALFsyncs counts
	// physical fsyncs; WALFlushCalls counts commit flush requests that had
	// work to do; WALCoalesced counts requests satisfied by another
	// committer's fsync. WALFsyncs / Commits < 1 under concurrency means
	// group commit is coalescing.
	WALFsyncs     uint64
	WALFlushCalls uint64
	WALCoalesced  uint64

	// Checkpoint/recovery observability: WALLiveBytes is the log volume a
	// crash right now would replay through (bytes at or after the last
	// published redo offset) — the quantity the WAL budgets bound.
	// RecoveryRecordsReplayed is from the most recent Open of this store.
	WALLiveBytes            uint64
	WALSegments             int
	WALSegRolls             uint64
	DirtyPages              int
	Checkpoints             uint64
	WALThrottles            uint64
	LastCheckpointDuration  time.Duration
	LastRecoveryDuration    time.Duration
	RecoveryRecordsReplayed uint64
}

// Store is the page-based storage engine. All operations are safe for
// concurrent use. Synchronization is fine-grained (experiment E14): the
// buffer pool is lock-striped with per-page latches (see buffer.go for the
// latch hierarchy), page allocation and the free list sit under allocMu,
// the heap catalog under heapMu, and each heap serializes only its own
// inserts via a per-heap append lock. Record reads and B-tree lookups run
// fully in parallel; disk I/O for misses and eviction write-back happens
// outside every shared mutex.
type Store struct {
	dir  string
	opts Options

	file File
	log  *wal
	pool *bufferPool

	// hdrSeq is the sequence number of the active header slot; checkpoints
	// increment it and write the slot the new parity selects. Guarded by
	// ckptMu (exclusive in every writer).
	hdrSeq uint64

	// allocMu guards page allocation: pageCount and the free list.
	allocMu   sync.Mutex
	pageCount uint32
	freeList  []PageID

	// heapMu guards the heap catalog maps. Per-heap mutable state lives on
	// heapInfo under its own locks.
	heapMu    sync.RWMutex
	heaps     map[uint32]*heapInfo
	heapNames map[string]uint32
	nextHeap  uint32

	nextTxn atomic.Uint64
	commits atomic.Uint64 // incremented after the commit flush
	aborts  atomic.Uint64

	// txnMu guards activeTxns: every transaction that has logged at least
	// one record, keyed by id, valued with its first record's LSN. A fuzzy
	// checkpoint may not advance the log head past the first record of any
	// transaction still active at its begin fence — those records are the
	// undo information recovery needs if the transaction loses.
	txnMu      sync.Mutex
	activeTxns map[uint64]uint64

	checkpoints atomic.Uint64
	throttles   atomic.Uint64
	lastCkptNs  atomic.Int64
	lastRecNs   atomic.Int64
	recReplayed atomic.Uint64

	// lifeMu serializes lifecycle operations (Close, Checkpoint, crash
	// simulation) against each other.
	lifeMu sync.Mutex
	closed bool

	// ckptMu fences checkpoints against in-flight operations: every public
	// data operation — log-appending writes AND reads — holds it shared
	// (an uncontended RLock, not a serialization point); Checkpoint/Close
	// hold it exclusively. Without it, a commit racing a checkpoint could
	// append records between the checkpoint's log flush and its truncation
	// and have them silently discarded, and Close could shut the files
	// under a read's pending disk I/O. The engine quiesces before
	// checkpointing, but the store must not lose committed data when a
	// caller gets that wrong.
	ckptMu sync.RWMutex

	// globalMu is the Options.GlobalLock baseline: when enabled, public
	// operations hold it exactly where the pre-E14 engine held its single
	// store mutex (commit fsyncs stayed outside it even then).
	globalMu sync.Mutex
}

// glock/gunlock implement the GlobalLock comparison baseline; they are
// no-ops in the default configuration.
func (s *Store) glock() {
	if s.opts.GlobalLock {
		s.globalMu.Lock()
	}
}

func (s *Store) gunlock() {
	if s.opts.GlobalLock {
		s.globalMu.Unlock()
	}
}

// Open opens (creating if necessary) a store in dir and runs crash
// recovery.
func Open(dir string, opts Options) (*Store, error) {
	if opts.BufferPages == 0 {
		opts.BufferPages = 1024
	}
	vfs := opts.VFS
	if vfs == nil {
		vfs = OSFileSystem()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	file, err := vfs.OpenFile(filepath.Join(dir, dataFileName))
	if err != nil {
		return nil, err
	}
	file = &retryFile{f: file}
	fail := func(err error) (*Store, error) {
		file.Close()
		return nil, err
	}
	// A store formatted before log segmentation keeps its whole WAL in a
	// single wal.log; its committed data cannot be recovered by this
	// version, so refuse to touch it rather than silently discard it.
	if names, err := vfs.ReadDir(dir); err == nil {
		for _, n := range names {
			if n != walLegacyFileName {
				continue
			}
			lf, err := vfs.OpenFile(filepath.Join(dir, walLegacyFileName))
			if err != nil {
				return fail(err)
			}
			lsize, serr := lf.Size()
			lf.Close()
			if serr != nil {
				return fail(serr)
			}
			if lsize != 0 {
				return fail(fmt.Errorf("store: legacy single-file WAL present; cannot open pre-segmentation store"))
			}
		}
	}

	size, err := file.Size()
	if err != nil {
		return fail(err)
	}
	// A crash during the initial format can leave a missing, empty, or torn
	// data file. Formatting syncs before any WAL record can exist, so a
	// short or bad-magic header alongside an EMPTY WAL means nothing was
	// ever committed and reformatting is safe. With a non-empty WAL the
	// header is load-bearing — silently resetting the redo offset to zero
	// would let stale page LSNs mask the redo of newer log records — so
	// the open must fail instead.
	isNew := size < 2*PageSize
	redoOff, hdrSeq := uint64(0), uint64(0)
	if !isNew {
		hdr := make([]byte, headerBytes)
		if _, err := file.ReadAt(hdr, 0); err != nil {
			return fail(fmt.Errorf("store: read header: %w", err))
		}
		if string(hdr[24:24+len(storeMagic)]) != storeMagic {
			isNew = true // torn format — unless the WAL says otherwise below
		} else {
			redoOff, hdrSeq = parseHeaderSlots(hdr)
		}
	}
	if isNew {
		redoOff, hdrSeq = 0, 0
	}
	log, err := openWALDir(vfs, dir, redoOff, opts.SyncCommits, uint64(opts.WALSegmentSize))
	if err != nil {
		return fail(err)
	}
	if isNew && log.size() > 0 {
		log.close()
		return fail(fmt.Errorf("store: truncated header (data file %d bytes) with non-empty WAL", size))
	}
	s := &Store{
		dir:        dir,
		opts:       opts,
		file:       file,
		log:        log,
		hdrSeq:     hdrSeq,
		heaps:      map[uint32]*heapInfo{},
		heapNames:  map[string]uint32{},
		nextHeap:   1,
		activeTxns: map[uint64]uint64{},
	}
	s.nextTxn.Store(1)
	s.pool = newBufferPool(opts.BufferPages, file, log)
	s.pool.ioDelay = opts.BenchIODelay

	if isNew {
		if err := s.format(); err != nil {
			s.closeFiles()
			return nil, err
		}
		return s, nil
	}
	if err := s.load(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

func (s *Store) closeFiles() {
	s.file.Close()
	s.log.close()
}

// format initializes a fresh store: header page 0 and the catalog heap on
// page 1.
func (s *Store) format() error {
	header := make([]byte, PageSize)
	copy(header[24:], storeMagic)
	s.hdrSeq = 1
	writeHeaderSlot(header[hdrSlotA:], s.hdrSeq, 0)
	if _, err := s.file.WriteAt(header, 0); err != nil {
		return err
	}
	cat := page{id: catalogFirstPage, buf: make([]byte, PageSize)}
	cat.format()
	if _, err := s.file.WriteAt(cat.buf, PageSize); err != nil {
		return err
	}
	if err := s.file.Sync(); err != nil {
		return err
	}
	s.pageCount = 2
	s.heaps[catalogHeapID] = &heapInfo{id: catalogHeapID, name: "__catalog", first: catalogFirstPage, last: catalogFirstPage}
	return nil
}

// load reads the header, catalog and heap chains, then runs recovery.
// It runs single-threaded before the store is published.
func (s *Store) load() error {
	size, err := s.file.Size()
	if err != nil {
		return err
	}
	if size%PageSize != 0 {
		// A crash can leave a partially grown file; trim to whole pages.
		if err := s.file.Truncate(size - size%PageSize); err != nil {
			return err
		}
		size -= size % PageSize
	}
	s.pageCount = uint32(size / PageSize)
	if s.pageCount < 2 {
		return fmt.Errorf("store: data file too small")
	}
	hdr := make([]byte, PageSize)
	if _, err := s.file.ReadAt(hdr, 0); err != nil {
		return err
	}
	if string(hdr[24:24+len(storeMagic)]) != storeMagic {
		return fmt.Errorf("store: bad magic, not a demaq store")
	}
	s.heaps[catalogHeapID] = &heapInfo{id: catalogHeapID, name: "__catalog", first: catalogFirstPage, last: catalogFirstPage}

	if err := s.recover(); err != nil {
		return fmt.Errorf("store: recovery: %w", err)
	}
	if err := s.loadCatalog(); err != nil {
		return err
	}
	if err := s.rebuildChainsAndFreeList(); err != nil {
		return err
	}
	// Quiescent checkpoint after recovery: the next crash replays from
	// here instead of repeating this recovery's work.
	return s.checkpoint()
}

func (s *Store) loadCatalog() error {
	s.heapNames = map[string]uint32{}
	maxID := uint32(0)
	err := s.scanHeap(s.heaps[catalogHeapID], func(_ RID, data []byte) bool {
		id := binary.LittleEndian.Uint32(data[0:])
		first := PageID(binary.LittleEndian.Uint32(data[4:]))
		nameLen := binary.LittleEndian.Uint16(data[8:])
		name := string(data[10 : 10+nameLen])
		s.heaps[id] = &heapInfo{id: id, name: name, first: first, last: first}
		s.heapNames[name] = id
		if id > maxID {
			maxID = id
		}
		return true
	})
	if err != nil {
		return err
	}
	s.nextHeap = maxID + 1
	return nil
}

// rebuildChainsAndFreeList walks every heap chain to find tail pages, then
// scans the file for free-flagged pages, excluding any page still
// referenced by a live overflow pointer (closing the crash window between
// overflow frees and their transaction outcome).
func (s *Store) rebuildChainsAndFreeList() error {
	referenced := map[PageID]bool{}
	for _, h := range s.heaps {
		cur := h.first
		last := cur
		for cur != InvalidPage {
			f, err := s.pool.get(cur)
			if err != nil {
				return err
			}
			// Collect overflow references from live records.
			for slot := uint16(0); slot < f.pg.slotCount(); slot++ {
				data, ok := f.pg.read(slot)
				if !ok || len(data) == 0 {
					continue
				}
				if data[0] == recKindOverflow {
					ov := PageID(binary.LittleEndian.Uint32(data[1:]))
					for ov != InvalidPage {
						referenced[ov] = true
						of, err := s.pool.get(ov)
						if err != nil {
							return err
						}
						next := of.pg.next()
						s.pool.unpin(of, false)
						ov = next
					}
				}
			}
			last = cur
			next := f.pg.next()
			s.pool.unpin(f, false)
			cur = next
		}
		h.last = last
	}
	s.freeList = s.freeList[:0]
	for pid := PageID(2); pid < PageID(s.pageCount); pid++ {
		f, err := s.pool.get(pid)
		if err != nil {
			return err
		}
		free := f.pg.flags()&flagFree != 0
		if free && referenced[pid] {
			f.pg.setFlags(f.pg.flags() &^ flagFree)
			s.pool.unpin(f, true)
			continue
		}
		s.pool.unpin(f, false)
		if free {
			s.freeList = append(s.freeList, pid)
		}
	}
	return nil
}

// Close checkpoints and closes the store.
func (s *Store) Close() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.checkpoint(); err != nil {
		return err
	}
	s.closed = true
	s.closeFiles()
	return nil
}

// Checkpoint runs a fuzzy incremental checkpoint: commits and reads keep
// flowing while dirty pages are written back. The exclusive ckptMu fence is
// held only for the begin instant — long enough to log recCkptBegin and
// snapshot the dirty-page set and active-transaction table — after which
// the written-back pages are synced, recCkptEnd (with the dirty-page table)
// is logged, the redo offset is published in the header, and log segments
// behind it are recycled. Recovery after a crash replays only records at or
// after the published redo offset, so checkpoint frequency — not uptime —
// bounds recovery work.
func (s *Store) Checkpoint() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.closed {
		return nil
	}
	return s.checkpointFuzzy()
}

// SharpCheckpoint is the pre-fuzzy protocol: it quiesces every data
// operation for the whole flush. It remains as the comparison baseline of
// experiment E19 (commit latency during checkpoint, sharp vs fuzzy).
func (s *Store) SharpCheckpoint() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.closed {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.checkpoint()
}

func (s *Store) checkpointFuzzy() error {
	start := time.Now()
	// Phase 1 — the fence. Exclusive ckptMu drains in-flight data
	// operations, so the dirty-page snapshot is consistent: any record
	// logged before recCkptBegin has its page's dirty flag visible (or the
	// page already written back). clearImaged must happen here, at cycle
	// start, so every page written back in THIS cycle logs a fresh
	// full-page image after the redo point — an FPI before it would be
	// recycled away while a later torn write still needs it.
	s.ckptMu.Lock()
	if err := s.log.err(); err != nil {
		s.ckptMu.Unlock()
		return err
	}
	beginLSN := s.log.append(&logRecord{typ: recCkptBegin})
	s.pool.clearImaged()
	dirty := s.pool.dirtyPages()
	// The redo offset may not pass the first record of any transaction
	// still active at the fence: those records are its undo information.
	redo := beginLSN - 1
	s.txnMu.Lock()
	for _, first := range s.activeTxns {
		if off := first - 1; off < redo {
			redo = off
		}
	}
	s.txnMu.Unlock()
	s.ckptMu.Unlock()

	// Phase 2 — incremental write-back of the snapshotted dirty set, page
	// by page under per-page latches, yielding between batches so worker
	// goroutines are never starved for long.
	for i, pid := range dirty {
		if err := s.pool.flushPage(pid); err != nil {
			return err
		}
		if i%32 == 31 {
			runtime.Gosched()
		}
	}
	// Phase 3 — make the written-back pages durable before anything
	// references this checkpoint.
	if err := s.file.Sync(); err != nil {
		return err
	}
	// Phase 4 — close the bracket in the log. Once recCkptEnd is durable
	// the pages-up-to-beginLSN are known synced.
	endLSN := s.log.append(&logRecord{typ: recCkptEnd, ckptBegin: beginLSN, ckptRedo: redo, dpt: dirty})
	if err := s.log.flush(endLSN); err != nil {
		return err
	}
	// Phase 5 — publish the redo offset in the next ping-pong header slot.
	// A crash before this sync leaves the previous slot — which pairs with
	// the previous on-disk state — in force; replaying the longer tail is
	// idempotent (page LSN guards, full-page images).
	if err := s.publishRedo(redo); err != nil {
		return err
	}
	// Phase 6 — recycle segments wholly behind the published redo offset.
	s.log.advanceHead(redo)
	s.checkpoints.Add(1)
	s.lastCkptNs.Store(int64(time.Since(start)))
	return nil
}

// checkpoint is the quiescent variant, used at load (nothing concurrent)
// and Close (ckptMu held exclusively): with no activity in flight it can
// flush everything and publish the log end itself as the redo offset, so a
// clean restart replays zero records.
func (s *Store) checkpoint() error {
	start := time.Now()
	if err := s.log.flush(^uint64(0) >> 1); err != nil {
		return err
	}
	if err := s.pool.flushAll(); err != nil {
		return err
	}
	// Make the flushed pages durable BEFORE publishing the advanced redo
	// offset: a crash that tears or loses the header write must leave the
	// previous (redo, pages) pair — which is self-consistent — on disk.
	// The reverse order could pair a new redo offset with lost page
	// writes, silently skipping their replay.
	if err := s.file.Sync(); err != nil {
		return err
	}
	// Pages are durable now; the next write-back of each page must log a
	// fresh full-page image after the new redo point.
	s.pool.clearImaged()
	redo := s.log.size()
	if err := s.publishRedo(redo); err != nil {
		return err
	}
	s.log.advanceHead(redo)
	s.checkpoints.Add(1)
	s.lastCkptNs.Store(int64(time.Since(start)))
	return nil
}

// publishRedo durably writes the next ping-pong header slot carrying the
// given redo offset. Only one checkpoint runs at a time (lifeMu), so hdrSeq
// is stable here.
func (s *Store) publishRedo(redo uint64) error {
	seq := s.hdrSeq + 1
	slot := make([]byte, hdrSlotSize)
	writeHeaderSlot(slot, seq, redo)
	off := int64(hdrSlotA)
	if seq%2 == 0 {
		off = hdrSlotB
	}
	if _, err := s.file.WriteAt(slot, off); err != nil {
		return err
	}
	if err := s.file.Sync(); err != nil {
		return err
	}
	s.hdrSeq = seq
	return nil
}

// DiskError reports the sticky log I/O error, if any: once a WAL write or
// fsync has failed the store can no longer guarantee durability of new
// commits, and callers should stop accepting writes.
func (s *Store) DiskError() error { return s.log.err() }

// CrashForTest simulates a crash: buffered pages are discarded without
// write-back and the files are closed without checkpointing. Only data made
// durable by the WAL survives, exactly as after a power failure.
func (s *Store) CrashForTest() {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.closed {
		return
	}
	s.pool.dropAll()
	s.closed = true
	s.closeFiles()
}

// Stats returns storage counters.
func (s *Store) Stats() Stats {
	fsyncs, flushCalls, coalesced := s.log.syncStats()
	s.allocMu.Lock()
	pageCount := s.pageCount
	freePages := len(s.freeList)
	s.allocMu.Unlock()
	segments, rolls := s.log.segmentStats()
	return Stats{
		PageCount:     pageCount,
		FreePages:     freePages,
		BufferHits:    s.pool.hits.Load(),
		BufferMisses:  s.pool.misses.Load(),
		Evictions:     s.pool.evictions.Load(),
		LogBytes:      s.log.size(),
		Commits:       s.commits.Load(),
		Aborts:        s.aborts.Load(),
		WALFsyncs:     fsyncs,
		WALFlushCalls: flushCalls,
		WALCoalesced:  coalesced,

		WALLiveBytes:            s.log.liveBytes(),
		WALSegments:             segments,
		WALSegRolls:             rolls,
		DirtyPages:              s.pool.dirtyCount(),
		Checkpoints:             s.checkpoints.Load(),
		WALThrottles:            s.throttles.Load(),
		LastCheckpointDuration:  time.Duration(s.lastCkptNs.Load()),
		LastRecoveryDuration:    time.Duration(s.lastRecNs.Load()),
		RecoveryRecordsReplayed: s.recReplayed.Load(),
	}
}

// LogBytes returns the cumulative logical WAL size (experiment E3 metric).
func (s *Store) LogBytes() uint64 { return s.log.size() }

// LiveLogBytes returns the log volume a crash right now would have to
// replay through — the quantity the WAL soft/hard budgets bound. The engine
// consults it for ingest admission under a hard budget.
func (s *Store) LiveLogBytes() uint64 { return s.log.liveBytes() }

// RecoveryReplayed returns how many log records the most recent Open of
// this store replayed, and how long recovery took. Bounded-recovery tests
// pin their guarantees on this.
func (s *Store) RecoveryReplayed() (records uint64, dur time.Duration) {
	return s.recReplayed.Load(), time.Duration(s.lastRecNs.Load())
}

// commitThrottle is the graceful-degradation ramp between the WAL soft and
// hard budgets: commits pay a delay that grows from zero at the soft budget
// to maxThrottle at the hard budget (and stays there beyond it), slowing
// log production while the checkpointer catches up. Past the hard budget
// the engine additionally sheds new ingest; the throttle still bounds the
// log growth of work already admitted.
func (s *Store) commitThrottle() {
	hard := s.opts.WALHardBudget
	if hard <= 0 {
		return
	}
	soft := s.opts.WALSoftBudget
	if soft <= 0 || soft >= hard {
		soft = hard / 2
	}
	live := int64(s.log.liveBytes())
	if live <= soft {
		return
	}
	const maxThrottle = 5 * time.Millisecond
	frac := float64(live-soft) / float64(hard-soft)
	if frac > 1 {
		frac = 1
	}
	s.throttles.Add(1)
	time.Sleep(time.Duration(frac * float64(maxThrottle)))
}

// --- page allocation ---

const flagFree uint16 = 1 << 15

// allocPage returns a pinned, formatted frame for a new page, preferring
// the free list. The allocation is logged redo-only. Page IDs are handed
// out under allocMu; the formatting (and its log record) happens under the
// new frame's write latch, though the page is unreachable by other threads
// until the caller links it into a chain.
func (s *Store) allocPage(t *Txn, flags uint16, prev, next PageID) (*frame, error) {
	s.allocMu.Lock()
	var pid PageID
	if n := len(s.freeList); n > 0 {
		pid = s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
	} else {
		pid = PageID(s.pageCount)
		s.pageCount++
	}
	s.allocMu.Unlock()
	f, err := s.pool.fresh(pid)
	if err != nil {
		s.allocMu.Lock()
		s.freeList = append(s.freeList, pid)
		s.allocMu.Unlock()
		return nil, err
	}
	f.latch.Lock()
	f.pg.format()
	f.pg.setFlags(flags)
	f.pg.setPrev(prev)
	f.pg.setNext(next)
	lsn := s.log.append(&logRecord{typ: recFormatPage, txn: t.id, prevLSN: t.lastLSN, page: pid, flags: flags, page2: prev, page3: next})
	t.lastLSN = lsn
	f.pg.setLSN(lsn)
	f.latch.Unlock()
	return f, nil
}
