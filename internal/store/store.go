package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Options configure a store.
type Options struct {
	// BufferPages is the buffer pool capacity in pages (default 1024).
	BufferPages int
	// SyncCommits fsyncs the WAL on every commit (default). Disabling
	// trades durability of the most recent commits for throughput
	// (experiment A3).
	SyncCommits bool
	// UnloggedDeletes enables the paper's retention-based deletion
	// optimization: BatchDelete writes redo-only records without before
	// images (Sec. 4.1). Disabled, deletes are logged with full before
	// images, which is the comparison baseline of experiment E3.
	UnloggedDeletes bool
}

// DefaultOptions returns the production configuration.
func DefaultOptions() Options {
	return Options{BufferPages: 1024, SyncCommits: true, UnloggedDeletes: true}
}

const (
	storeMagic   = "DEMAQST1"
	dataFileName = "data.db"
	walFileName  = "wal.log"

	catalogHeapID    = 0
	catalogFirstPage = 1
)

// heapInfo is the in-memory descriptor of one record heap.
type heapInfo struct {
	id    uint32
	name  string
	first PageID
	last  PageID
}

// Stats reports storage counters.
type Stats struct {
	PageCount    uint32
	FreePages    int
	BufferHits   uint64
	BufferMisses uint64
	Evictions    uint64
	LogBytes     uint64
	Commits      uint64
	Aborts       uint64

	// Group-commit observability (experiment E10): WALFsyncs counts
	// physical fsyncs; WALFlushCalls counts commit flush requests that had
	// work to do; WALCoalesced counts requests satisfied by another
	// committer's fsync. WALFsyncs / Commits < 1 under concurrency means
	// group commit is coalescing.
	WALFsyncs     uint64
	WALFlushCalls uint64
	WALCoalesced  uint64
}

// Store is the page-based storage engine. All operations are safe for
// concurrent use; physical access is serialized by a store mutex while
// expensive work (XML parsing, rule evaluation) happens in the layers above.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options

	file      *os.File
	log       *wal
	pool      *bufferPool
	pageCount uint32
	freeList  []PageID

	heaps     map[uint32]*heapInfo
	heapNames map[string]uint32
	nextHeap  uint32

	nextTxn uint64
	commits atomic.Uint64 // incremented after the commit flush, outside mu
	aborts  uint64

	closed bool
}

// Open opens (creating if necessary) a store in dir and runs crash
// recovery.
func Open(dir string, opts Options) (*Store, error) {
	if opts.BufferPages == 0 {
		opts.BufferPages = 1024
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	dataPath := filepath.Join(dir, dataFileName)
	_, statErr := os.Stat(dataPath)
	isNew := os.IsNotExist(statErr)

	file, err := os.OpenFile(dataPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	lsnBase := uint64(0)
	if !isNew {
		hdr := make([]byte, 48)
		if _, err := file.ReadAt(hdr, 0); err == nil {
			lsnBase = binary.LittleEndian.Uint64(hdr[40:])
		}
	}
	log, err := openWAL(filepath.Join(dir, walFileName), lsnBase, opts.SyncCommits)
	if err != nil {
		file.Close()
		return nil, err
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		file:      file,
		log:       log,
		heaps:     map[uint32]*heapInfo{},
		heapNames: map[string]uint32{},
		nextHeap:  1,
		nextTxn:   1,
	}
	s.pool = newBufferPool(opts.BufferPages, file, log)

	if isNew {
		if err := s.format(); err != nil {
			s.closeFiles()
			return nil, err
		}
		return s, nil
	}
	if err := s.load(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

func (s *Store) closeFiles() {
	s.file.Close()
	s.log.close()
}

// format initializes a fresh store: header page 0 and the catalog heap on
// page 1.
func (s *Store) format() error {
	header := make([]byte, PageSize)
	copy(header[24:], storeMagic)
	if _, err := s.file.WriteAt(header, 0); err != nil {
		return err
	}
	cat := page{id: catalogFirstPage, buf: make([]byte, PageSize)}
	cat.format()
	if _, err := s.file.WriteAt(cat.buf, PageSize); err != nil {
		return err
	}
	if err := s.file.Sync(); err != nil {
		return err
	}
	s.pageCount = 2
	s.heaps[catalogHeapID] = &heapInfo{id: catalogHeapID, name: "__catalog", first: catalogFirstPage, last: catalogFirstPage}
	return nil
}

// load reads the header, catalog and heap chains, then runs recovery.
func (s *Store) load() error {
	st, err := s.file.Stat()
	if err != nil {
		return err
	}
	if st.Size()%PageSize != 0 {
		// A crash can leave a partially grown file; trim to whole pages.
		if err := s.file.Truncate(st.Size() - st.Size()%PageSize); err != nil {
			return err
		}
		st, _ = s.file.Stat()
	}
	s.pageCount = uint32(st.Size() / PageSize)
	if s.pageCount < 2 {
		return fmt.Errorf("store: data file too small")
	}
	hdr := make([]byte, PageSize)
	if _, err := s.file.ReadAt(hdr, 0); err != nil {
		return err
	}
	if string(hdr[24:24+len(storeMagic)]) != storeMagic {
		return fmt.Errorf("store: bad magic, not a demaq store")
	}
	s.heaps[catalogHeapID] = &heapInfo{id: catalogHeapID, name: "__catalog", first: catalogFirstPage, last: catalogFirstPage}

	if err := s.recover(); err != nil {
		return fmt.Errorf("store: recovery: %w", err)
	}
	if err := s.loadCatalog(); err != nil {
		return err
	}
	if err := s.rebuildChainsAndFreeList(); err != nil {
		return err
	}
	// Sharp checkpoint after recovery truncates the log.
	return s.checkpointLocked()
}

func (s *Store) loadCatalog() error {
	s.heapNames = map[string]uint32{}
	maxID := uint32(0)
	err := s.scanLocked(catalogHeapID, func(_ RID, data []byte) bool {
		id := binary.LittleEndian.Uint32(data[0:])
		first := PageID(binary.LittleEndian.Uint32(data[4:]))
		nameLen := binary.LittleEndian.Uint16(data[8:])
		name := string(data[10 : 10+nameLen])
		s.heaps[id] = &heapInfo{id: id, name: name, first: first, last: first}
		s.heapNames[name] = id
		if id > maxID {
			maxID = id
		}
		return true
	})
	if err != nil {
		return err
	}
	s.nextHeap = maxID + 1
	return nil
}

// rebuildChainsAndFreeList walks every heap chain to find tail pages, then
// scans the file for free-flagged pages, excluding any page still
// referenced by a live overflow pointer (closing the crash window between
// overflow frees and their transaction outcome).
func (s *Store) rebuildChainsAndFreeList() error {
	referenced := map[PageID]bool{}
	for _, h := range s.heaps {
		cur := h.first
		last := cur
		for cur != InvalidPage {
			f, err := s.pool.get(cur)
			if err != nil {
				return err
			}
			// Collect overflow references from live records.
			for slot := uint16(0); slot < f.pg.slotCount(); slot++ {
				data, ok := f.pg.read(slot)
				if !ok || len(data) == 0 {
					continue
				}
				if data[0] == recKindOverflow {
					ov := PageID(binary.LittleEndian.Uint32(data[1:]))
					for ov != InvalidPage {
						referenced[ov] = true
						of, err := s.pool.get(ov)
						if err != nil {
							return err
						}
						next := of.pg.next()
						s.pool.unpin(of, false)
						ov = next
					}
				}
			}
			last = cur
			next := f.pg.next()
			s.pool.unpin(f, false)
			cur = next
		}
		h.last = last
	}
	s.freeList = s.freeList[:0]
	for pid := PageID(2); pid < PageID(s.pageCount); pid++ {
		f, err := s.pool.get(pid)
		if err != nil {
			return err
		}
		free := f.pg.flags()&flagFree != 0
		if free && referenced[pid] {
			f.pg.setFlags(f.pg.flags() &^ flagFree)
			s.pool.unpin(f, true)
			continue
		}
		s.pool.unpin(f, false)
		if free {
			s.freeList = append(s.freeList, pid)
		}
	}
	return nil
}

// Close checkpoints and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.checkpointLocked(); err != nil {
		return err
	}
	s.closed = true
	s.closeFiles()
	return nil
}

// Checkpoint flushes all dirty pages, syncs the data file and truncates the
// WAL. No transactions may be active (the engine quiesces first).
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if err := s.log.flush(^uint64(0) >> 1); err != nil {
		return err
	}
	if err := s.pool.flushAll(); err != nil {
		return err
	}
	// Persist the advanced LSN base in the header before dropping the log;
	// page LSNs written above must never mask future records.
	newBase := s.log.size()
	hdr := make([]byte, 48)
	copy(hdr[24:], storeMagic)
	binary.LittleEndian.PutUint64(hdr[40:], newBase)
	if _, err := s.file.WriteAt(hdr, 0); err != nil {
		return err
	}
	if err := s.file.Sync(); err != nil {
		return err
	}
	if _, err := s.log.truncate(); err != nil {
		return err
	}
	return nil
}

// CrashForTest simulates a crash: buffered pages are discarded without
// write-back and the files are closed without checkpointing. Only data made
// durable by the WAL survives, exactly as after a power failure.
func (s *Store) CrashForTest() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.pool.dropAll()
	s.closed = true
	s.closeFiles()
}

// Stats returns storage counters.
func (s *Store) Stats() Stats {
	fsyncs, flushCalls, coalesced := s.log.syncStats()
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		PageCount:     s.pageCount,
		FreePages:     len(s.freeList),
		BufferHits:    s.pool.hits,
		BufferMisses:  s.pool.misses,
		Evictions:     s.pool.evictions,
		LogBytes:      s.log.size(),
		Commits:       s.commits.Load(),
		Aborts:        s.aborts,
		WALFsyncs:     fsyncs,
		WALFlushCalls: flushCalls,
		WALCoalesced:  coalesced,
	}
}

// LogBytes returns the current logical WAL size (experiment E3 metric).
func (s *Store) LogBytes() uint64 { return s.log.size() }

// --- page allocation (caller holds s.mu) ---

const flagFree uint16 = 1 << 15

// allocPage returns a pinned, formatted frame for a new page, preferring
// the free list. The allocation is logged redo-only.
func (s *Store) allocPage(t *Txn, flags uint16, prev, next PageID) (*frame, error) {
	var pid PageID
	if n := len(s.freeList); n > 0 {
		pid = s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
	} else {
		pid = PageID(s.pageCount)
		s.pageCount++
	}
	f, err := s.pool.fresh(pid)
	if err != nil {
		return nil, err
	}
	f.pg.format()
	f.pg.setFlags(flags)
	f.pg.setPrev(prev)
	f.pg.setNext(next)
	lsn := s.log.append(&logRecord{typ: recFormatPage, txn: t.id, prevLSN: t.lastLSN, page: pid, flags: flags, page2: prev, page3: next})
	t.lastLSN = lsn
	f.pg.setLSN(lsn)
	return f, nil
}
