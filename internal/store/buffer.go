package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The buffer pool is lock-striped: frames live in poolShardCount
// hash-partitioned maps, each guarded by its own small mutex that is only
// held for map and pin bookkeeping — never across disk I/O. Page content is
// protected by a per-frame reader/writer latch, so lookups of different
// pages (and concurrent readers of the same page) proceed fully in
// parallel, and a page being read from disk or written back blocks only the
// callers that need that very page.
//
// Latch hierarchy (deadlock freedom), highest first:
//
//	heap chain lock > heap append lock > page latch > {alloc mutex, shard mutex} > wal mutex
//
// A thread may skip levels but never acquires a higher level while holding
// a lower one. Shard mutexes and the alloc mutex are leaf-like: only the
// wal mutex is ever acquired below them, and never while one is held.
// Page latches of distinct pages are only held together when the second
// page is unreachable by other threads (a freshly allocated page, an
// overflow page of a record whose owning page we latched) — no thread
// waits for a latched page while holding another the first thread wants.
//
// Pin protocol: pin (get/fresh) → latch → operate → unlatch → unpin. A
// pinned frame is never evicted; a frame is only latched while pinned, so
// an unpinned frame with pin count zero has no latch holders and eviction
// may write it back without taking its latch.
const poolShardCount = 16

type frameState uint8

const (
	frameReady    frameState = iota
	frameLoading             // miss: disk read in flight
	frameEvicting            // victim: WAL flush + write-back in flight
)

// frame is one buffered page. The latch guards the page bytes; the
// bookkeeping fields (pins, dirty, lastUse, state) are guarded by the
// owning shard's mutex.
type frame struct {
	pg    page
	latch sync.RWMutex

	pins    int
	dirty   bool
	lastUse uint64
	state   frameState
	ioDone  chan struct{} // closed when a load or eviction completes
}

type poolShard struct {
	mu     sync.Mutex
	cap    int // this shard's share of the pool capacity
	frames map[PageID]*frame
}

// bufferPool caches pages of the data file with per-shard LRU eviction
// honoring the WAL rule: a dirty page is written back only after the log is
// durable up to the page's LSN (steal policy); commits do not force page
// writes (no-force policy).
//
// Capacity is enforced per shard (total capacity split evenly). A shard
// whose frames are all pinned or in flight grows past its share instead of
// failing — multi-page operations never dead-end on a full pool — and
// shrinks back as pins release or later misses find evictable frames.
type bufferPool struct {
	shards  [poolShardCount]poolShard
	clock   atomic.Uint64
	file    File
	log     *wal
	ioDelay time.Duration // Options.BenchIODelay: modeled device latency

	// imaged tracks pages whose full image has been logged since the last
	// checkpoint (torn-write protection, see writeBack). Cleared by the
	// checkpoint once the data file is synced.
	imagedMu sync.Mutex
	imaged   map[PageID]bool

	hits, misses, evictions atomic.Uint64
}

func newBufferPool(capacity int, file File, log *wal) *bufferPool {
	if capacity < poolShardCount {
		capacity = poolShardCount // at least one frame per shard
	}
	bp := &bufferPool{file: file, log: log, imaged: map[PageID]bool{}}
	// Split the capacity exactly: the first capacity%N shards take one
	// extra frame, so the aggregate equals Options.BufferPages.
	base, rem := capacity/poolShardCount, capacity%poolShardCount
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.cap = base
		if i < rem {
			sh.cap++
		}
		sh.frames = make(map[PageID]*frame, sh.cap)
	}
	return bp
}

func (bp *bufferPool) shard(id PageID) *poolShard {
	return &bp.shards[uint32(id)%poolShardCount]
}

// get returns the pinned frame for a page, reading it from disk on a miss.
// The disk read happens outside every mutex; concurrent getters of the same
// page wait for the one in-flight read instead of issuing their own.
func (bp *bufferPool) get(id PageID) (*frame, error) {
	return bp.acquire(id, true)
}

// fresh returns a pinned frame for a newly allocated page without reading
// from disk. The caller formats it under the write latch.
func (bp *bufferPool) fresh(id PageID) (*frame, error) {
	return bp.acquire(id, false)
}

func (bp *bufferPool) acquire(id PageID, load bool) (*frame, error) {
	sh := bp.shard(id)
	for {
		sh.mu.Lock()
		if f, ok := sh.frames[id]; ok {
			if f.state == frameReady {
				f.pins++
				f.lastUse = bp.clock.Add(1)
				sh.mu.Unlock()
				if load {
					bp.hits.Add(1)
				}
				return f, nil
			}
			// A load or eviction of this page is in flight: wait for it to
			// finish, then retry. After a completed eviction the map entry
			// is gone and the retry reloads from disk; after a failed
			// eviction the frame is ready again.
			done := f.ioDone
			sh.mu.Unlock()
			<-done
			continue
		}
		f := &frame{
			pg:      page{id: id, buf: make([]byte, PageSize)},
			pins:    1,
			lastUse: bp.clock.Add(1),
		}
		if load {
			f.state = frameLoading
			f.ioDone = make(chan struct{})
		}
		sh.frames[id] = f
		over := len(sh.frames) > sh.cap
		sh.mu.Unlock()

		if load {
			bp.misses.Add(1)
			if bp.ioDelay > 0 {
				time.Sleep(bp.ioDelay)
			}
			_, err := bp.file.ReadAt(f.pg.buf, int64(id)*PageSize)
			sh.mu.Lock()
			if err != nil {
				// Drop the frame; waiters on ioDone retry, miss the map and
				// issue their own load (getting their own error if it
				// persists).
				delete(sh.frames, id)
				close(f.ioDone)
				sh.mu.Unlock()
				return nil, fmt.Errorf("store: read page %d: %w", id, err)
			}
			f.state = frameReady
			close(f.ioDone)
			f.ioDone = nil
			sh.mu.Unlock()
		}
		if over {
			if err := bp.evictExcess(sh); err != nil {
				bp.unpin(f, false)
				return nil, err
			}
		}
		return f, nil
	}
}

func (bp *bufferPool) unpin(f *frame, dirty bool) {
	sh := bp.shard(f.pg.id)
	sh.mu.Lock()
	if dirty {
		f.dirty = true
	}
	if f.pins <= 0 {
		sh.mu.Unlock()
		panic("store: unpin of unpinned frame")
	}
	f.pins--
	over := len(sh.frames) > sh.cap
	sh.mu.Unlock()
	if over {
		// A shard that overflowed while its frames were pinned shrinks as
		// pins release, not only on the next miss — a hit-only steady
		// state must not hold memory past the configured budget. A failed
		// write-back leaves the victim dirty and in the map; the error
		// resurfaces on the next miss-path eviction or checkpoint.
		_ = bp.evictExcess(sh)
	}
}

// evictExcess writes back and drops least-recently-used evictable frames of
// a shard until it is back at capacity — a shard that overflowed while its
// frames were pinned shrinks again here. Each victim is marked
// frameEvicting under the shard mutex — so no getter can pin it — and its
// I/O runs with the mutex released. Victims have pin count zero, hence no
// latch holders, so their bytes are stable.
func (bp *bufferPool) evictExcess(sh *poolShard) error {
	for {
		sh.mu.Lock()
		if len(sh.frames) <= sh.cap {
			sh.mu.Unlock()
			return nil
		}
		var victim *frame
		for _, f := range sh.frames {
			if f.pins != 0 || f.state != frameReady {
				continue
			}
			if victim == nil || f.lastUse < victim.lastUse {
				victim = f
			}
		}
		if victim == nil {
			// Everything pinned or in flight: let the shard exceed its
			// share for now.
			sh.mu.Unlock()
			return nil
		}
		victim.state = frameEvicting
		victim.ioDone = make(chan struct{})
		dirty := victim.dirty
		sh.mu.Unlock()

		var err error
		if dirty {
			err = bp.writeBack(victim)
		}
		sh.mu.Lock()
		if err == nil {
			victim.dirty = false
			delete(sh.frames, victim.pg.id)
			bp.evictions.Add(1)
		}
		victim.state = frameReady
		close(victim.ioDone)
		victim.ioDone = nil
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
}

// writeBack flushes the WAL up to the page's LSN, then writes the page.
// The read latch keeps the bytes stable against concurrent writers: it is
// free for eviction victims (pin count zero ⇒ no latch holders) and guards
// the checkpoint path, which may run next to late writers.
//
// The first write-back of a page since the last checkpoint logs a full
// image of the page first (redo-only, like PostgreSQL's full-page writes):
// should the 8K write below tear — persist only a byte prefix — the
// on-disk page mixes two states and its LSN field cannot be trusted, so
// physiological redo alone cannot repair it. Recovery restores the image
// unconditionally and replays later records on top. Subsequent write-backs
// of the same page need no new image: the one in the log already anchors
// replay for the whole checkpoint interval.
func (bp *bufferPool) writeBack(f *frame) error {
	f.latch.RLock()
	defer f.latch.RUnlock()
	lsn := f.pg.lsn()
	bp.imagedMu.Lock()
	imaged := bp.imaged[f.pg.id]
	if !imaged {
		bp.imaged[f.pg.id] = true
	}
	bp.imagedMu.Unlock()
	if !imaged {
		img := &logRecord{typ: recFullPage, page: f.pg.id,
			after: append([]byte(nil), f.pg.buf...)}
		lsn = bp.log.append(img)
	}
	// WAL rule: log first.
	if err := bp.log.flush(lsn); err != nil {
		return err
	}
	if bp.ioDelay > 0 {
		time.Sleep(bp.ioDelay)
	}
	if _, err := bp.file.WriteAt(f.pg.buf, int64(f.pg.id)*PageSize); err != nil {
		return fmt.Errorf("store: write page %d: %w", f.pg.id, err)
	}
	return nil
}

// flushAll writes back every dirty page (checkpoint). The store quiesces
// transactions first, so no frame is being re-dirtied while we run; each
// frame is pinned across its write-back so eviction cannot race it. A
// dirty frame whose eviction is in flight is WAITED on, not skipped: the
// checkpoint's data-file sync must cover that eviction's write, or
// truncating the WAL would discard the only durable copy of its changes.
func (bp *bufferPool) flushAll() error {
	for i := range bp.shards {
		sh := &bp.shards[i]
		for {
			sh.mu.Lock()
			var f *frame
			var evicting chan struct{}
			for _, c := range sh.frames {
				if c.state == frameEvicting && c.dirty {
					evicting = c.ioDone
					break
				}
				if c.state == frameReady && c.dirty {
					f = c
					break
				}
			}
			if evicting != nil {
				sh.mu.Unlock()
				<-evicting
				continue
			}
			if f == nil {
				sh.mu.Unlock()
				break
			}
			f.pins++
			// Claim the current mutation set before writing: a writer that
			// re-dirties the page during the write-back keeps its flag
			// instead of having it clobbered afterward.
			f.dirty = false
			sh.mu.Unlock()
			err := bp.writeBack(f)
			sh.mu.Lock()
			if err != nil {
				f.dirty = true // disk is stale; keep the page flushable
			}
			f.pins--
			sh.mu.Unlock()
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// dirtyPages snapshots the IDs of every dirty buffered page. The fuzzy
// checkpoint calls it under the exclusive checkpoint fence — in-flight data
// operations are drained, and evictions only run inside data operations, so
// no frame is mid-eviction and the snapshot is the complete set of pages
// whose effects predate the fence and are not yet on disk.
func (bp *bufferPool) dirtyPages() []PageID {
	var pids []PageID
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		for id, f := range sh.frames {
			if f.dirty {
				pids = append(pids, id)
			}
		}
		sh.mu.Unlock()
	}
	return pids
}

// dirtyCount reports how many buffered pages are currently dirty
// (observability; racy by nature).
func (bp *bufferPool) dirtyCount() int {
	n := 0
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.dirty {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// flushPage writes back one page if it is still buffered and dirty,
// following flushAll's claim protocol. The fuzzy checkpoint calls it with
// data operations running concurrently: a frame mid-eviction is waited on
// (its write must land before the checkpoint's data sync), a frame already
// evicted or clean needs nothing, and a writer re-dirtying the page during
// the write-back keeps its flag for the next cycle.
func (bp *bufferPool) flushPage(id PageID) error {
	sh := bp.shard(id)
	for {
		sh.mu.Lock()
		f, ok := sh.frames[id]
		if !ok {
			// Evicted since the snapshot: the eviction's write-back already
			// put the bytes on disk (or its failure left the frame in the
			// map, so we would have found it).
			sh.mu.Unlock()
			return nil
		}
		if f.state != frameReady {
			done := f.ioDone
			sh.mu.Unlock()
			<-done
			continue
		}
		if !f.dirty {
			sh.mu.Unlock()
			return nil
		}
		f.pins++
		// Claim the current mutation set before writing, as in flushAll.
		f.dirty = false
		sh.mu.Unlock()
		err := bp.writeBack(f)
		sh.mu.Lock()
		if err != nil {
			f.dirty = true // disk is stale; keep the page flushable
		}
		f.pins--
		sh.mu.Unlock()
		return err
	}
}

// clearImaged resets the full-page-image bookkeeping, starting a new
// image cycle. Called under the exclusive checkpoint fence — at the begin
// fence of a fuzzy checkpoint (so every image of the new cycle lands at or
// after the redo point it will publish) and after the data-file sync of a
// quiescent one — so no write-back races the reset.
func (bp *bufferPool) clearImaged() {
	bp.imagedMu.Lock()
	bp.imaged = map[PageID]bool{}
	bp.imagedMu.Unlock()
}

// dropAll discards every frame without write-back; used by crash simulation.
func (bp *bufferPool) dropAll() {
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		sh.frames = make(map[PageID]*frame, sh.cap)
		sh.mu.Unlock()
	}
}
