package store

import (
	"fmt"
	"os"
)

// frame is one buffered page. Frames are manipulated only while holding the
// store mutex; pins keep a frame resident across multi-page operations.
type frame struct {
	pg      page
	dirty   bool
	pins    int
	lastUse uint64
}

// bufferPool caches pages of the data file with LRU eviction honoring the
// WAL rule: a dirty page is written back only after the log is durable up
// to the page's LSN (steal policy); commits do not force page writes
// (no-force policy).
type bufferPool struct {
	cap    int
	frames map[PageID]*frame
	clock  uint64
	file   *os.File
	log    *wal

	// stats
	hits, misses, evictions uint64
}

func newBufferPool(capacity int, file *os.File, log *wal) *bufferPool {
	if capacity < 8 {
		capacity = 8
	}
	return &bufferPool{cap: capacity, frames: make(map[PageID]*frame, capacity), file: file, log: log}
}

// get returns the pinned frame for a page, reading it from disk on a miss.
func (bp *bufferPool) get(id PageID) (*frame, error) {
	bp.clock++
	if f, ok := bp.frames[id]; ok {
		f.pins++
		f.lastUse = bp.clock
		bp.hits++
		return f, nil
	}
	bp.misses++
	if err := bp.evictIfFull(); err != nil {
		return nil, err
	}
	f := &frame{pg: page{id: id, buf: make([]byte, PageSize)}, lastUse: bp.clock, pins: 1}
	if _, err := bp.file.ReadAt(f.pg.buf, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("store: read page %d: %w", id, err)
	}
	bp.frames[id] = f
	return f, nil
}

// fresh returns a pinned frame for a newly allocated page without reading
// from disk.
func (bp *bufferPool) fresh(id PageID) (*frame, error) {
	bp.clock++
	if f, ok := bp.frames[id]; ok { // e.g. recycled from the free list
		f.pins++
		f.lastUse = bp.clock
		return f, nil
	}
	if err := bp.evictIfFull(); err != nil {
		return nil, err
	}
	f := &frame{pg: page{id: id, buf: make([]byte, PageSize)}, lastUse: bp.clock, pins: 1}
	bp.frames[id] = f
	return f, nil
}

func (bp *bufferPool) unpin(f *frame, dirty bool) {
	if dirty {
		f.dirty = true
	}
	if f.pins <= 0 {
		panic("store: unpin of unpinned frame")
	}
	f.pins--
}

func (bp *bufferPool) evictIfFull() error {
	if len(bp.frames) < bp.cap {
		return nil
	}
	var victim *frame
	for _, f := range bp.frames {
		if f.pins > 0 {
			continue
		}
		if victim == nil || f.lastUse < victim.lastUse {
			victim = f
		}
	}
	if victim == nil {
		return fmt.Errorf("store: buffer pool exhausted (%d pages, all pinned)", bp.cap)
	}
	if err := bp.writeBack(victim); err != nil {
		return err
	}
	delete(bp.frames, victim.pg.id)
	bp.evictions++
	return nil
}

func (bp *bufferPool) writeBack(f *frame) error {
	if !f.dirty {
		return nil
	}
	// WAL rule: log first.
	if err := bp.log.flush(f.pg.lsn()); err != nil {
		return err
	}
	if _, err := bp.file.WriteAt(f.pg.buf, int64(f.pg.id)*PageSize); err != nil {
		return fmt.Errorf("store: write page %d: %w", f.pg.id, err)
	}
	f.dirty = false
	return nil
}

// flushAll writes back every dirty page (checkpoint).
func (bp *bufferPool) flushAll() error {
	for _, f := range bp.frames {
		if err := bp.writeBack(f); err != nil {
			return err
		}
	}
	return nil
}

// dropClean discards all non-dirty frames; used by crash simulation.
func (bp *bufferPool) dropAll() {
	bp.frames = make(map[PageID]*frame, bp.cap)
}
