package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeBasic(t *testing.T) {
	bt := NewBTree()
	if _, ok := bt.Get([]byte("missing")); ok {
		t.Fatal("empty tree get")
	}
	bt.Insert([]byte("b"), []byte("2"))
	bt.Insert([]byte("a"), []byte("1"))
	bt.Insert([]byte("c"), []byte("3"))
	if v, ok := bt.Get([]byte("b")); !ok || string(v) != "2" {
		t.Fatal("get b")
	}
	if bt.Len() != 3 {
		t.Fatal("len")
	}
	// Overwrite.
	if bt.Insert([]byte("b"), []byte("2b")) {
		t.Fatal("overwrite should not report new")
	}
	if v, _ := bt.Get([]byte("b")); string(v) != "2b" {
		t.Fatal("overwrite")
	}
	if !bt.Delete([]byte("b")) || bt.Delete([]byte("b")) {
		t.Fatal("delete semantics")
	}
	if bt.Len() != 2 {
		t.Fatal("len after delete")
	}
}

func TestBTreeScanRange(t *testing.T) {
	bt := NewBTreeDegree(3) // small degree forces splits
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("k%04d", i)
		bt.Insert([]byte(key), []byte{byte(i)})
	}
	var got []string
	bt.Scan([]byte("k0100"), []byte("k0110"), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 10 || got[0] != "k0100" || got[9] != "k0109" {
		t.Fatalf("range scan: %v", got)
	}
	// Full scan in order.
	prev := ""
	n := 0
	bt.Scan(nil, nil, func(k, _ []byte) bool {
		if string(k) <= prev {
			t.Fatalf("scan order violated: %q after %q", k, prev)
		}
		prev = string(k)
		n++
		return true
	})
	if n != 1000 {
		t.Fatalf("full scan count: %d", n)
	}
}

func TestBTreeScanPrefix(t *testing.T) {
	bt := NewBTree()
	bt.Insert([]byte("orders\x0042\x00m1"), nil)
	bt.Insert([]byte("orders\x0042\x00m2"), nil)
	bt.Insert([]byte("orders\x0043\x00m3"), nil)
	bt.Insert([]byte("other\x0042\x00m4"), nil)
	n := 0
	bt.ScanPrefix([]byte("orders\x0042\x00"), func(_, _ []byte) bool { n++; return true })
	if n != 2 {
		t.Fatalf("prefix scan: %d", n)
	}
	// Prefix of all 0xFF bytes has a nil end.
	if prefixEnd([]byte{0xFF, 0xFF}) != nil {
		t.Fatal("prefixEnd overflow")
	}
	if !bytes.Equal(prefixEnd([]byte{1, 0xFF}), []byte{2}) {
		t.Fatal("prefixEnd carry")
	}
}

// TestBTreeQuickAgainstMap drives the tree with random operations and
// checks every observable against a reference map.
func TestBTreeQuickAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bt := NewBTreeDegree(2 + r.Intn(4))
		ref := map[string]string{}
		for op := 0; op < 500; op++ {
			key := fmt.Sprintf("key-%03d", r.Intn(100))
			switch r.Intn(3) {
			case 0:
				val := fmt.Sprintf("v%d", op)
				wasNew := bt.Insert([]byte(key), []byte(val))
				_, existed := ref[key]
				if wasNew == existed {
					return false
				}
				ref[key] = val
			case 1:
				deleted := bt.Delete([]byte(key))
				_, existed := ref[key]
				if deleted != existed {
					return false
				}
				delete(ref, key)
			case 2:
				v, ok := bt.Get([]byte(key))
				rv, rok := ref[key]
				if ok != rok || (ok && string(v) != rv) {
					return false
				}
			}
			if bt.Len() != len(ref) {
				return false
			}
		}
		// Final full scan must match the sorted reference.
		var want []string
		for k := range ref {
			want = append(want, k)
		}
		sort.Strings(want)
		var got []string
		bt.Scan(nil, nil, func(k, v []byte) bool {
			if ref[string(k)] != string(v) {
				return false
			}
			got = append(got, string(k))
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapQuickAgainstMap drives heap insert/delete randomly and compares
// against a reference, including crash-recovery at the end.
func TestHeapQuickAgainstMap(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.SyncCommits = false
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := s.CreateHeap("q")
	r := rand.New(rand.NewSource(7))
	ref := map[RID]string{}
	for op := 0; op < 300; op++ {
		tx := s.Begin()
		abort := r.Intn(4) == 0
		staged := map[RID]string{}
		stagedDel := map[RID]bool{}
		for i := 0; i < 1+r.Intn(5); i++ {
			if r.Intn(3) > 0 || len(ref) == 0 {
				size := 1 + r.Intn(3000)
				payload := bytes.Repeat([]byte{byte(op)}, size)
				rid, err := tx.Insert(h, payload)
				if err != nil {
					t.Fatal(err)
				}
				staged[rid] = string(payload)
			} else {
				for rid := range ref {
					if stagedDel[rid] {
						continue // already deleted in this transaction
					}
					if err := tx.Delete(h, rid); err != nil {
						t.Fatal(err)
					}
					stagedDel[rid] = true
					break
				}
			}
		}
		if abort {
			tx.Abort()
		} else {
			tx.Commit()
			// Deletes precede inserts: an insert may reuse the slot (and
			// hence the RID) of a record deleted earlier in the same
			// transaction.
			for rid := range stagedDel {
				delete(ref, rid)
			}
			for rid, v := range staged {
				ref[rid] = v
			}
		}
	}
	s.log.flush(^uint64(0) >> 1)
	s.CrashForTest()

	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, _ := s2.Heap("q")
	got := map[RID]string{}
	s2.Scan(h2, func(rid RID, data []byte) bool {
		got[rid] = string(data)
		return true
	})
	if len(got) != len(ref) {
		t.Fatalf("after recovery: %d records, want %d", len(got), len(ref))
	}
	for rid, v := range ref {
		if got[rid] != v {
			t.Fatalf("record %v differs (len %d vs %d)", rid, len(got[rid]), len(v))
		}
	}
}
