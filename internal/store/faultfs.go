package store

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
)

// FaultFS is a deterministic in-memory VFS for crash and I/O fault
// injection. Every mutation (WriteAt, Sync, Truncate) across all files is a
// numbered operation; the numbering, together with a seed, makes every
// failure replayable: the k-th operation of an identical workload is always
// the same byte range of the same file.
//
// Durability model: each file keeps a durable image (what survives a crash)
// and a current image (what the OS page cache would show). Writes land in
// the current image immediately and are queued as pending; Sync promotes the
// current image to durable and clears the queue. A crash resolves each
// pending operation with the seeded RNG — dropped, kept whole, or kept as a
// torn byte-granularity prefix — modeling lost un-fsynced writes and torn
// sectors. After the crash every call fails with ErrCrashed until
// ClearFault, which re-arms the FS for "reboot": the durable images become
// the visible content, exactly like reopening real files after power loss.
//
// Fault schedules:
//
//	CrashAt(k)          — crash when mutation op k executes
//	TransientEvery(k)   — every k-th mutation fails once with ErrTransientIO
//	FailWritesAfter(k)  — from op k on, all mutations fail with ErrDiskFailure
//	SetWriteBudget(n)   — after n more written bytes, writes fail ErrDiskFull
type FaultFS struct {
	mu    sync.Mutex
	rng   *rand.Rand
	files map[string]*faultData

	nOps  int
	trace []FaultPoint

	crashAt   int // crash when op counter reaches this value; 0 = disarmed
	crashed   bool
	transient int   // every n-th op fails transiently; 0 = disarmed
	permAt    int   // ops >= permAt fail permanently; 0 = disarmed
	permanent bool  // a permanent failure has triggered
	budget    int64 // remaining write bytes; < 0 = unlimited
}

// FaultPoint records one mutation operation: its global number, the file,
// the kind of operation, and the byte range it covered.
type FaultPoint struct {
	N    int
	Path string
	Op   string // "write", "sync", "truncate", "remove"
	Off  int64
	Len  int
}

func (p FaultPoint) String() string {
	return fmt.Sprintf("#%d %s %s off=%d len=%d", p.N, p.Op, p.Path, p.Off, p.Len)
}

type faultData struct {
	durable []byte
	current []byte
	pending []pendingOp

	// File removal is metadata, tracked like truncation: removed is the
	// current (page-cache) view, durRemoved what a crash would preserve.
	// Like a POSIX unlink, existing handles keep working on the orphaned
	// data; only OpenFile and ReadDir consult the flags.
	removed    bool
	durRemoved bool
}

type pendingOp struct {
	isTrunc  bool
	isRemove bool
	off      int64
	data     []byte
	size     int64
}

// NewFaultFS returns a fault-injecting VFS whose crash resolution is driven
// by the given seed.
func NewFaultFS(seed int64) *FaultFS {
	return &FaultFS{
		rng:    rand.New(rand.NewSource(seed)),
		files:  map[string]*faultData{},
		budget: -1,
	}
}

// OpenFile opens (creating if needed) an in-memory file. File contents
// persist across Open/Close cycles, like a real filesystem.
func (fs *FaultFS) OpenFile(path string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	d, ok := fs.files[path]
	if !ok || d.removed {
		// Creating a path whose previous file was removed makes a fresh
		// file; orphaned handles keep the old data, like POSIX unlink.
		d = &faultData{}
		fs.files[path] = d
	}
	return &faultHandle{fs: fs, path: path, d: d}, nil
}

// Remove deletes a file. The removal is a numbered mutation op and, like
// truncation, is metadata: a crash before it is made durable may resurrect
// the file with its durable content.
func (fs *FaultFS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[path]
	if !ok || d.removed {
		if fs.crashed {
			return ErrCrashed
		}
		return fmt.Errorf("faultfs: remove %s: no such file", path)
	}
	fail, crash := fs.checkFaults(path, "remove", 0, 0)
	if crash {
		fs.crashNow(path, &pendingOp{isRemove: true})
		return ErrCrashed
	}
	if fail != nil {
		return fail
	}
	d.removed = true
	d.pending = append(d.pending, pendingOp{isRemove: true})
	return nil
}

// ReadDir lists the file names (not full paths) under dir in the current
// (page-cache) view.
func (fs *FaultFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	prefix := dir
	if prefix != "" && prefix[len(prefix)-1] != '/' {
		prefix += "/"
	}
	var names []string
	for p, d := range fs.files {
		if d.removed || len(p) <= len(prefix) || p[:len(prefix)] != prefix {
			continue
		}
		names = append(names, p[len(prefix):])
	}
	sort.Strings(names)
	return names, nil
}

// CrashAt arms a crash at mutation operation n (1-based). Passing 0
// disarms.
func (fs *FaultFS) CrashAt(n int) {
	fs.mu.Lock()
	fs.crashAt = n
	fs.mu.Unlock()
}

// TransientEvery makes every n-th mutation fail once with ErrTransientIO
// (the retried attempt gets a new op number and succeeds). 0 disarms.
func (fs *FaultFS) TransientEvery(n int) {
	fs.mu.Lock()
	fs.transient = n
	fs.mu.Unlock()
}

// FailWritesAfter makes every mutation from op n onward fail with
// ErrDiskFailure — a dead device. Reads keep working. 0 disarms.
func (fs *FaultFS) FailWritesAfter(n int) {
	fs.mu.Lock()
	fs.permAt = n
	fs.mu.Unlock()
}

// SetWriteBudget allows n more bytes of writes before ErrDiskFull; -1 is
// unlimited.
func (fs *FaultFS) SetWriteBudget(n int64) {
	fs.mu.Lock()
	fs.budget = n
	fs.mu.Unlock()
}

// ClearFault disarms all fault schedules and, after a crash, makes the
// durable images visible again — the "reboot" step before reopening.
func (fs *FaultFS) ClearFault() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashAt = 0
	fs.transient = 0
	fs.permAt = 0
	fs.permanent = false
	fs.budget = -1
	if fs.crashed {
		fs.crashed = false
		for _, d := range fs.files {
			d.current = append([]byte(nil), d.durable...)
			d.pending = nil
			d.removed = d.durRemoved
		}
	}
}

// CrashNow crashes the filesystem immediately, as if power was cut between
// operations: pending (un-fsynced) writes resolve with the seeded RNG and
// every subsequent call fails with ErrCrashed until ClearFault. It lets an
// external event source — e.g. a simulated network — act as the crash
// trigger while storage-state resolution stays deterministic.
func (fs *FaultFS) CrashNow() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.crashed {
		fs.crashNow("", nil)
	}
}

// Crashed reports whether the simulated crash has fired.
func (fs *FaultFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Ops returns the number of mutation operations performed so far.
func (fs *FaultFS) Ops() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.nOps
}

// Trace returns a copy of the recorded mutation operations.
func (fs *FaultFS) Trace() []FaultPoint {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]FaultPoint(nil), fs.trace...)
}

// checkFaults numbers one mutation op and applies the armed schedules.
// Called with fs.mu held. Returns a non-nil error when the op must fail;
// crash=true when the caller's own operation is the crash victim (the
// caller then invokes crashNow with its pending op).
func (fs *FaultFS) checkFaults(path, op string, off int64, n int) (fail error, crash bool) {
	if fs.crashed {
		return ErrCrashed, false
	}
	if fs.permanent {
		return ErrDiskFailure, false
	}
	fs.nOps++
	fs.trace = append(fs.trace, FaultPoint{N: fs.nOps, Path: path, Op: op, Off: off, Len: n})
	if fs.permAt > 0 && fs.nOps >= fs.permAt {
		fs.permanent = true
		return ErrDiskFailure, false
	}
	if fs.transient > 0 && fs.nOps%fs.transient == 0 {
		return ErrTransientIO, false
	}
	if op == "write" && fs.budget >= 0 {
		if int64(n) > fs.budget {
			return ErrDiskFull, false
		}
		fs.budget -= int64(n)
	}
	if fs.crashAt > 0 && fs.nOps >= fs.crashAt {
		return ErrCrashed, true
	}
	return nil, false
}

// crashNow resolves every pending (un-fsynced) operation with the seeded
// RNG: dropped, kept whole, or kept as a torn prefix. extra, when non-nil,
// is the in-flight operation that triggered the crash; it may likewise
// persist partially. Files are visited in sorted path order so the RNG
// stream — and therefore the post-crash disk state — is a pure function of
// (seed, op schedule).
func (fs *FaultFS) crashNow(extraPath string, extra *pendingOp) {
	fs.crashed = true
	paths := make([]string, 0, len(fs.files))
	for p := range fs.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		d := fs.files[p]
		ops := d.pending
		if extra != nil && p == extraPath {
			ops = append(append([]pendingOp(nil), ops...), *extra)
		}
		for _, op := range ops {
			fs.resolveOp(d, op)
		}
		d.pending = nil
		d.current = append([]byte(nil), d.durable...)
		d.removed = d.durRemoved
	}
}

func (fs *FaultFS) resolveOp(d *faultData, op pendingOp) {
	if op.isRemove {
		// Like truncation, an unlink either reached the journal or did not;
		// a lost one resurrects the file with its durable content.
		if fs.rng.Intn(2) == 0 {
			d.durRemoved = true
		}
		return
	}
	if op.isTrunc {
		// Metadata operations either reached the journal or did not.
		if fs.rng.Intn(2) == 0 {
			d.durable = applyTrunc(d.durable, op.size)
		}
		return
	}
	switch fs.rng.Intn(3) {
	case 0: // lost
	case 1: // fully persisted
		d.durable = applyWrite(d.durable, op.off, op.data)
	case 2: // torn: a byte-granularity prefix reached the platter
		k := fs.rng.Intn(len(op.data) + 1)
		d.durable = applyWrite(d.durable, op.off, op.data[:k])
	}
}

func applyWrite(buf []byte, off int64, data []byte) []byte {
	if len(data) == 0 {
		return buf
	}
	end := off + int64(len(data))
	for int64(len(buf)) < end {
		buf = append(buf, 0)
	}
	copy(buf[off:end], data)
	return buf
}

func applyTrunc(buf []byte, size int64) []byte {
	for int64(len(buf)) < size {
		buf = append(buf, 0)
	}
	return buf[:size]
}

// faultHandle is one open handle; all state lives on the shared FaultFS so
// reopening a path sees prior content.
type faultHandle struct {
	fs   *FaultFS
	path string
	d    *faultData
}

func (h *faultHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if off >= int64(len(h.d.current)) {
		return 0, io.EOF
	}
	n := copy(p, h.d.current[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *faultHandle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	fail, crash := h.fs.checkFaults(h.path, "write", off, len(p))
	if crash {
		h.fs.crashNow(h.path, &pendingOp{off: off, data: append([]byte(nil), p...)})
		return 0, ErrCrashed
	}
	if fail != nil {
		return 0, fail
	}
	h.d.current = applyWrite(h.d.current, off, p)
	h.d.pending = append(h.d.pending, pendingOp{off: off, data: append([]byte(nil), p...)})
	return len(p), nil
}

func (h *faultHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	fail, crash := h.fs.checkFaults(h.path, "sync", 0, 0)
	if crash {
		// The crash interrupts the fsync: pending writes resolve randomly,
		// they are NOT promoted to durable.
		h.fs.crashNow("", nil)
		return ErrCrashed
	}
	if fail != nil {
		return fail
	}
	h.d.durable = append([]byte(nil), h.d.current...)
	if h.d.removed {
		h.d.durRemoved = true
	}
	h.d.pending = nil
	return nil
}

func (h *faultHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	fail, crash := h.fs.checkFaults(h.path, "truncate", size, 0)
	if crash {
		h.fs.crashNow(h.path, &pendingOp{isTrunc: true, size: size})
		return ErrCrashed
	}
	if fail != nil {
		return fail
	}
	h.d.current = applyTrunc(h.d.current, size)
	h.d.pending = append(h.d.pending, pendingOp{isTrunc: true, size: size})
	return nil
}

func (h *faultHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	return int64(len(h.d.current)), nil
}

func (h *faultHandle) Close() error { return nil }
