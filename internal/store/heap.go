package store

import (
	"encoding/binary"
	"fmt"
)

// Record heaps store variable-length records in chained pages. Records
// larger than a page spill into overflow chains; the inline part keeps a
// small prefix of the payload so that fixed headers (the message status
// byte of the message store) remain updatable in place.
//
// Inline record encodings:
//
//	plain:    [0][payload...]
//	overflow: [1][firstOvPage u32][totalLen u32][prefix...]
const (
	recKindPlain    = 0
	recKindOverflow = 1

	overflowHeader = 1 + 4 + 4
	overflowPrefix = 256 // payload bytes kept inline
	// inline payload limit for plain records, leaving slack for the slot
	inlineMax = maxRecordSize - 1
	// chunk capacity of one overflow page
	ovChunkMax = maxRecordSize
)

// HeapID identifies a record heap.
type HeapID uint32

// CreateHeap registers a new heap (auto-committed DDL). Creating an
// existing name returns its existing ID.
func (s *Store) CreateHeap(name string) (HeapID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.heapNames[name]; ok {
		return HeapID(id), nil
	}
	t := s.beginLocked()
	id := s.nextHeap
	s.nextHeap++
	first, err := s.allocPage(t, 0, InvalidPage, InvalidPage)
	if err != nil {
		return 0, err
	}
	firstID := first.pg.id
	s.pool.unpin(first, true)

	entry := make([]byte, 10+len(name))
	binary.LittleEndian.PutUint32(entry[0:], id)
	binary.LittleEndian.PutUint32(entry[4:], uint32(firstID))
	binary.LittleEndian.PutUint16(entry[8:], uint16(len(name)))
	copy(entry[10:], name)
	if _, err := s.insertLocked(t, catalogHeapID, entry); err != nil {
		return 0, err
	}
	if err := s.commitLocked(t); err != nil {
		return 0, err
	}
	s.heaps[id] = &heapInfo{id: id, name: name, first: firstID, last: firstID}
	s.heapNames[name] = id
	return HeapID(id), nil
}

// Heap returns the ID of an existing heap.
func (s *Store) Heap(name string) (HeapID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.heapNames[name]
	return HeapID(id), ok
}

// HeapNames lists all user heaps.
func (s *Store) HeapNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for name := range s.heapNames {
		out = append(out, name)
	}
	return out
}

// insertLocked appends a record to a heap; the caller holds s.mu and an
// open transaction.
func (s *Store) insertLocked(t *Txn, heap uint32, payload []byte) (RID, error) {
	h, ok := s.heaps[heap]
	if !ok {
		return NilRID, fmt.Errorf("store: unknown heap %d", heap)
	}
	var rec []byte
	if len(payload)+1 <= inlineMax {
		rec = make([]byte, 1+len(payload))
		rec[0] = recKindPlain
		copy(rec[1:], payload)
	} else {
		// Spill: inline prefix + overflow chain for the remainder.
		prefix := payload[:overflowPrefix]
		rest := payload[overflowPrefix:]
		// Build the chain back to front so each page's next is known when
		// it is formatted.
		nChunks := (len(rest) + ovChunkMax - 1) / ovChunkMax
		next := InvalidPage
		var first PageID
		for i := nChunks - 1; i >= 0; i-- {
			lo := i * ovChunkMax
			hi := lo + ovChunkMax
			if hi > len(rest) {
				hi = len(rest)
			}
			f, err := s.allocPage(t, flagOverflow, InvalidPage, next)
			if err != nil {
				return NilRID, err
			}
			slot := f.pg.insert(rest[lo:hi])
			lsn := s.log.append(&logRecord{typ: recInsert, txn: t.id, prevLSN: t.lastLSN,
				heap: heap, page: f.pg.id, slot: slot, after: append([]byte(nil), rest[lo:hi]...)})
			t.lastLSN = lsn
			f.pg.setLSN(lsn)
			next = f.pg.id
			first = f.pg.id
			s.pool.unpin(f, true)
		}
		rec = make([]byte, overflowHeader+len(prefix))
		rec[0] = recKindOverflow
		binary.LittleEndian.PutUint32(rec[1:], uint32(first))
		binary.LittleEndian.PutUint32(rec[5:], uint32(len(payload)))
		copy(rec[overflowHeader:], prefix)
	}

	// Find a tail page with room; extend the chain if needed.
	tail, err := s.pool.get(h.last)
	if err != nil {
		return NilRID, err
	}
	if !tail.pg.canFit(len(rec)) {
		nf, err := s.allocPage(t, 0, tail.pg.id, InvalidPage)
		if err != nil {
			s.pool.unpin(tail, false)
			return NilRID, err
		}
		lsn := s.log.append(&logRecord{typ: recChain, txn: t.id, prevLSN: t.lastLSN, page: tail.pg.id, page2: nf.pg.id})
		t.lastLSN = lsn
		tail.pg.setNext(nf.pg.id)
		tail.pg.setLSN(lsn)
		s.pool.unpin(tail, true)
		h.last = nf.pg.id
		tail = nf
	}
	slot := tail.pg.insert(rec)
	rid := RID{Page: tail.pg.id, Slot: slot}
	lr := &logRecord{typ: recInsert, txn: t.id, prevLSN: t.lastLSN,
		heap: heap, page: rid.Page, slot: slot, after: append([]byte(nil), rec...)}
	lsn := s.log.append(lr)
	t.lastLSN = lsn
	tail.pg.setLSN(lsn)
	s.pool.unpin(tail, true)
	t.undoRecs = append(t.undoRecs, lr)
	return rid, nil
}

// Insert appends a record to the heap within the transaction.
func (t *Txn) Insert(h HeapID, payload []byte) (RID, error) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if err := t.ensureActive(); err != nil {
		return NilRID, err
	}
	return t.s.insertLocked(t, uint32(h), payload)
}

// readLocked reassembles a record, following overflow chains.
func (s *Store) readLocked(rid RID) ([]byte, error) {
	f, err := s.pool.get(rid.Page)
	if err != nil {
		return nil, err
	}
	rec, ok := f.pg.read(rid.Slot)
	if !ok {
		s.pool.unpin(f, false)
		return nil, fmt.Errorf("store: record %s not found", rid)
	}
	if rec[0] == recKindPlain {
		out := make([]byte, len(rec)-1)
		copy(out, rec[1:])
		s.pool.unpin(f, false)
		return out, nil
	}
	first := PageID(binary.LittleEndian.Uint32(rec[1:]))
	total := int(binary.LittleEndian.Uint32(rec[5:]))
	out := make([]byte, 0, total)
	out = append(out, rec[overflowHeader:]...)
	s.pool.unpin(f, false)
	for pid := first; pid != InvalidPage; {
		of, err := s.pool.get(pid)
		if err != nil {
			return nil, err
		}
		chunk, ok := of.pg.read(0)
		if !ok {
			s.pool.unpin(of, false)
			return nil, fmt.Errorf("store: missing overflow chunk on page %d", pid)
		}
		out = append(out, chunk...)
		next := of.pg.next()
		s.pool.unpin(of, false)
		pid = next
	}
	if len(out) != total {
		return nil, fmt.Errorf("store: overflow record %s length %d, want %d", rid, len(out), total)
	}
	return out, nil
}

// Read returns a record's payload (transactions see committed state plus
// their own writes; isolation is enforced by the lock layer above).
func (s *Store) Read(rid RID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readLocked(rid)
}

// Delete removes a record within the transaction. Overflow chains are
// released at commit (never on abort), so undo can restore the record.
func (t *Txn) Delete(h HeapID, rid RID) error {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if err := t.ensureActive(); err != nil {
		return err
	}
	return t.s.deleteLocked(t, uint32(h), rid)
}

func (s *Store) deleteLocked(t *Txn, heap uint32, rid RID) error {
	f, err := s.pool.get(rid.Page)
	if err != nil {
		return err
	}
	rec, ok := f.pg.read(rid.Slot)
	if !ok {
		s.pool.unpin(f, false)
		return fmt.Errorf("store: record %s not found", rid)
	}
	before := append([]byte(nil), rec...)
	if rec[0] == recKindOverflow {
		first := PageID(binary.LittleEndian.Uint32(rec[1:]))
		t.freeOnCommit = append(t.freeOnCommit, s.chainPages(first)...)
	}
	f.pg.del(rid.Slot)
	lr := &logRecord{typ: recDelete, txn: t.id, prevLSN: t.lastLSN,
		heap: heap, page: rid.Page, slot: rid.Slot, before: before}
	lsn := s.log.append(lr)
	t.lastLSN = lsn
	f.pg.setLSN(lsn)
	s.pool.unpin(f, true)
	t.undoRecs = append(t.undoRecs, lr)
	return nil
}

func (s *Store) chainPages(first PageID) []PageID {
	var out []PageID
	for pid := first; pid != InvalidPage; {
		f, err := s.pool.get(pid)
		if err != nil {
			break
		}
		out = append(out, pid)
		next := f.pg.next()
		s.pool.unpin(f, false)
		pid = next
	}
	return out
}

// SetByte updates one byte of a record's payload in place. Only offsets
// within the inline prefix are valid; the message store keeps its status
// byte at offset 0. This is the only in-place mutation of message data —
// everything else is append-only, as the paper prescribes.
func (t *Txn) SetByte(rid RID, off int, val byte) error {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if err := t.ensureActive(); err != nil {
		return err
	}
	s := t.s
	f, err := s.pool.get(rid.Page)
	if err != nil {
		return err
	}
	defer s.pool.unpin(f, true)
	rec, ok := f.pg.read(rid.Slot)
	if !ok {
		return fmt.Errorf("store: record %s not found", rid)
	}
	physOff := 1 + off // skip kind byte
	if rec[0] == recKindOverflow {
		physOff = overflowHeader + off
	}
	if physOff >= len(rec) {
		return fmt.Errorf("store: SetByte offset %d out of range", off)
	}
	before := []byte{rec[physOff]}
	rec[physOff] = val
	lr := &logRecord{typ: recSetBytes, txn: t.id, prevLSN: t.lastLSN,
		page: rid.Page, slot: rid.Slot, off: uint16(physOff), before: before, after: []byte{val}}
	lsn := s.log.append(lr)
	t.lastLSN = lsn
	f.pg.setLSN(lsn)
	t.undoRecs = append(t.undoRecs, lr)
	return nil
}

// Scan iterates all live records of a heap in storage order (which, for
// append-only queue heaps, is insertion order). fn returns false to stop.
func (s *Store) Scan(h HeapID, fn func(rid RID, payload []byte) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scanLocked(uint32(h), fn)
}

func (s *Store) scanLocked(heap uint32, fn func(rid RID, payload []byte) bool) error {
	hi, ok := s.heaps[heap]
	if !ok {
		return fmt.Errorf("store: unknown heap %d", heap)
	}
	for pid := hi.first; pid != InvalidPage; {
		f, err := s.pool.get(pid)
		if err != nil {
			return err
		}
		next := f.pg.next()
		nslots := f.pg.slotCount()
		s.pool.unpin(f, false)
		for slot := uint16(0); slot < nslots; slot++ {
			// Re-fetch under the same lock; readLocked may evict.
			fr, err := s.pool.get(pid)
			if err != nil {
				return err
			}
			_, ok := fr.pg.read(slot)
			s.pool.unpin(fr, false)
			if !ok {
				continue
			}
			payload, err := s.readLocked(RID{Page: pid, Slot: slot})
			if err != nil {
				return err
			}
			if !fn(RID{Page: pid, Slot: slot}, payload) {
				return nil
			}
		}
		pid = next
	}
	return nil
}

// BatchDelete physically removes a set of processed records in one
// auto-committed operation. With Options.UnloggedDeletes it writes a single
// redo-only batch record without before images — the paper's
// retention-based deletion optimization (Sec. 4.1); otherwise each record
// is deleted with a full before image (experiment E3's baseline).
// Emptied pages (other than heap head pages) are unlinked and freed.
func (s *Store) BatchDelete(h HeapID, rids []RID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(rids) == 0 {
		return nil
	}
	t := s.beginLocked()
	heap := uint32(h)
	var freed []PageID
	if s.opts.UnloggedDeletes {
		lr := &logRecord{typ: recBatchDelete, txn: t.id, prevLSN: t.lastLSN, rids: rids}
		lsn := s.log.append(lr)
		t.lastLSN = lsn
		for _, rid := range rids {
			pgs, err := s.applyPhysicalDelete(rid, lsn)
			if err != nil {
				return err
			}
			freed = append(freed, pgs...)
		}
	} else {
		for _, rid := range rids {
			if err := s.deleteLocked(t, heap, rid); err != nil {
				return err
			}
		}
	}
	if err := s.commitLocked(t); err != nil {
		return err
	}
	// Free overflow pages outside the undo path (the batch committed).
	s.freePages(freed)
	return s.reclaimEmptyPages(heap)
}

// applyPhysicalDelete marks a slot dead and returns overflow pages to free.
func (s *Store) applyPhysicalDelete(rid RID, lsn uint64) ([]PageID, error) {
	f, err := s.pool.get(rid.Page)
	if err != nil {
		return nil, err
	}
	defer s.pool.unpin(f, true)
	rec, ok := f.pg.read(rid.Slot)
	if !ok {
		return nil, nil // already gone; idempotent
	}
	var ov []PageID
	if rec[0] == recKindOverflow {
		first := PageID(binary.LittleEndian.Uint32(rec[1:]))
		ov = s.chainPages(first)
	}
	f.pg.del(rid.Slot)
	if lsn > f.pg.lsn() {
		f.pg.setLSN(lsn)
	}
	return ov, nil
}

// freePages marks pages free (redo-only logged) and returns them to the
// allocator.
func (s *Store) freePages(pages []PageID) {
	for _, pid := range pages {
		f, err := s.pool.get(pid)
		if err != nil {
			continue
		}
		lsn := s.log.append(&logRecord{typ: recSetFlags, page: pid, flags: flagFree})
		f.pg.format()
		f.pg.setFlags(flagFree)
		f.pg.setLSN(lsn)
		s.pool.unpin(f, true)
		s.freeList = append(s.freeList, pid)
	}
}

// reclaimEmptyPages unlinks fully-empty interior pages of a heap chain and
// frees them; head and tail pages stay to keep insertion cheap.
func (s *Store) reclaimEmptyPages(heap uint32) error {
	hi, ok := s.heaps[heap]
	if !ok {
		return nil
	}
	prev := hi.first
	pf, err := s.pool.get(prev)
	if err != nil {
		return err
	}
	cur := pf.pg.next()
	s.pool.unpin(pf, false)
	var toFree []PageID
	for cur != InvalidPage && cur != hi.last {
		cf, err := s.pool.get(cur)
		if err != nil {
			return err
		}
		next := cf.pg.next()
		empty := cf.pg.liveCount() == 0
		s.pool.unpin(cf, false)
		if empty {
			// Unlink: prev.next = next (redo-only chain record).
			pf, err := s.pool.get(prev)
			if err != nil {
				return err
			}
			lsn := s.log.append(&logRecord{typ: recChain, page: prev, page2: next})
			pf.pg.setNext(next)
			pf.pg.setLSN(lsn)
			s.pool.unpin(pf, true)
			toFree = append(toFree, cur)
		} else {
			prev = cur
		}
		cur = next
	}
	s.freePages(toFree)
	return nil
}
