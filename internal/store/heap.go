package store

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Record heaps store variable-length records in chained pages. Records
// larger than a page spill into overflow chains; the inline part keeps a
// small prefix of the payload so that fixed headers (the message status
// byte of the message store) remain updatable in place.
//
// Concurrency: every page access follows the pin→latch protocol of the
// buffer pool. Reads latch one page at a time and run fully in parallel.
// Inserts serialize per heap on the append lock — only the tail page is
// ever write-latched under it — so inserts into different heaps, and reads
// anywhere, never contend. The WAL append for a page mutation happens while
// the page's write latch is held, which keeps the page LSN monotonic in log
// order per page: a written-back page LSN >= r.lsn implies r's effect is on
// disk, the invariant redo relies on.
//
// Inline record encodings:
//
//	plain:    [0][payload...]
//	overflow: [1][firstOvPage u32][totalLen u32][prefix...]
const (
	recKindPlain    = 0
	recKindOverflow = 1

	overflowHeader = 1 + 4 + 4
	overflowPrefix = 256 // payload bytes kept inline
	// inline payload limit for plain records, leaving slack for the slot
	inlineMax = maxRecordSize - 1
	// chunk capacity of one overflow page
	ovChunkMax = maxRecordSize
)

// errRecordNotFound marks reads of dead or vanished slots; scans skip such
// records instead of failing when retention deletes race them.
var errRecordNotFound = errors.New("record not found")

// HeapID identifies a record heap.
type HeapID uint32

// heapByID resolves a heap descriptor.
func (s *Store) heapByID(id uint32) (*heapInfo, error) {
	s.heapMu.RLock()
	h, ok := s.heaps[id]
	s.heapMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("store: unknown heap %d", id)
	}
	return h, nil
}

// CreateHeap registers a new heap (auto-committed DDL). Creating an
// existing name returns its existing ID. DDL serializes on the catalog
// write lock; it is rare and never on the message path.
func (s *Store) CreateHeap(name string) (HeapID, error) {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	s.glock()
	defer s.gunlock()
	s.heapMu.Lock()
	defer s.heapMu.Unlock()
	if id, ok := s.heapNames[name]; ok {
		return HeapID(id), nil
	}
	t := s.beginTxn()
	id := s.nextHeap
	s.nextHeap++
	first, err := s.allocPage(t, 0, InvalidPage, InvalidPage)
	if err != nil {
		return 0, err
	}
	firstID := first.pg.id
	s.pool.unpin(first, true)

	entry := make([]byte, 10+len(name))
	binary.LittleEndian.PutUint32(entry[0:], id)
	binary.LittleEndian.PutUint32(entry[4:], uint32(firstID))
	binary.LittleEndian.PutUint16(entry[8:], uint16(len(name)))
	copy(entry[10:], name)
	if _, err := s.insertHeap(t, s.heaps[catalogHeapID], entry); err != nil {
		return 0, err
	}
	if err := s.commitTxn(t); err != nil {
		return 0, err
	}
	s.heaps[id] = &heapInfo{id: id, name: name, first: firstID, last: firstID}
	s.heapNames[name] = id
	return HeapID(id), nil
}

// Heap returns the ID of an existing heap.
func (s *Store) Heap(name string) (HeapID, bool) {
	s.heapMu.RLock()
	defer s.heapMu.RUnlock()
	id, ok := s.heapNames[name]
	return HeapID(id), ok
}

// HeapNames lists all user heaps.
func (s *Store) HeapNames() []string {
	s.heapMu.RLock()
	defer s.heapMu.RUnlock()
	var out []string
	for name := range s.heapNames {
		out = append(out, name)
	}
	return out
}

// insertHeap appends a record to a heap within an open transaction.
// Overflow chains are built first — outside the append lock, so large
// payloads don't stall other inserters longer than their tail-page write —
// then the append lock is taken to place the inline record on the tail.
func (s *Store) insertHeap(t *Txn, h *heapInfo, payload []byte) (RID, error) {
	var rec []byte
	if len(payload)+1 <= inlineMax {
		rec = make([]byte, 1+len(payload))
		rec[0] = recKindPlain
		copy(rec[1:], payload)
	} else {
		// Spill: inline prefix + overflow chain for the remainder. The
		// chain pages are unreachable by other threads until the inline
		// record pointing at them is published below.
		prefix := payload[:overflowPrefix]
		rest := payload[overflowPrefix:]
		// Build the chain back to front so each page's next is known when
		// it is formatted.
		nChunks := (len(rest) + ovChunkMax - 1) / ovChunkMax
		next := InvalidPage
		var first PageID
		for i := nChunks - 1; i >= 0; i-- {
			lo := i * ovChunkMax
			hi := lo + ovChunkMax
			if hi > len(rest) {
				hi = len(rest)
			}
			f, err := s.allocPage(t, flagOverflow, InvalidPage, next)
			if err != nil {
				return NilRID, err
			}
			f.latch.Lock()
			slot := f.pg.insert(rest[lo:hi])
			lsn := s.log.append(&logRecord{typ: recInsert, txn: t.id, prevLSN: t.lastLSN,
				heap: h.id, page: f.pg.id, slot: slot, after: append([]byte(nil), rest[lo:hi]...)})
			t.lastLSN = lsn
			f.pg.setLSN(lsn)
			f.latch.Unlock()
			next = f.pg.id
			first = f.pg.id
			s.pool.unpin(f, true)
		}
		rec = make([]byte, overflowHeader+len(prefix))
		rec[0] = recKindOverflow
		binary.LittleEndian.PutUint32(rec[1:], uint32(first))
		binary.LittleEndian.PutUint32(rec[5:], uint32(len(payload)))
		copy(rec[overflowHeader:], prefix)
	}

	// Append to the tail page; extend the chain if needed. Only the tail is
	// latched under the append lock.
	h.appendMu.Lock()
	defer h.appendMu.Unlock()
	tail, err := s.pool.get(h.last)
	if err != nil {
		return NilRID, err
	}
	tail.latch.Lock()
	if !tail.pg.canFit(len(rec)) {
		nf, err := s.allocPage(t, 0, tail.pg.id, InvalidPage)
		if err != nil {
			tail.latch.Unlock()
			s.pool.unpin(tail, false)
			return NilRID, err
		}
		lsn := s.log.append(&logRecord{typ: recChain, txn: t.id, prevLSN: t.lastLSN, page: tail.pg.id, page2: nf.pg.id})
		t.lastLSN = lsn
		tail.pg.setNext(nf.pg.id)
		tail.pg.setLSN(lsn)
		tail.latch.Unlock()
		s.pool.unpin(tail, true)
		h.last = nf.pg.id
		tail = nf
		tail.latch.Lock()
	}
	slot := tail.pg.insert(rec)
	rid := RID{Page: tail.pg.id, Slot: slot}
	lr := &logRecord{typ: recInsert, txn: t.id, prevLSN: t.lastLSN,
		heap: h.id, page: rid.Page, slot: slot, after: append([]byte(nil), rec...)}
	lsn := s.log.append(lr)
	t.lastLSN = lsn
	tail.pg.setLSN(lsn)
	tail.latch.Unlock()
	s.pool.unpin(tail, true)
	t.undoRecs = append(t.undoRecs, lr)
	return rid, nil
}

// Insert appends a record to the heap within the transaction.
func (t *Txn) Insert(h HeapID, payload []byte) (RID, error) {
	t.s.ckptMu.RLock()
	defer t.s.ckptMu.RUnlock()
	t.s.glock()
	defer t.s.gunlock()
	if err := t.ensureActive(); err != nil {
		return NilRID, err
	}
	hi, err := t.s.heapByID(uint32(h))
	if err != nil {
		return NilRID, err
	}
	return t.s.insertHeap(t, hi, payload)
}

// readRecord reassembles a record, following overflow chains. Each page is
// pinned and read-latched individually; no shared lock is held, so reads of
// distinct records — and of the same record — run fully in parallel.
//
// The record page's read latch is held across the entire overflow walk.
// That is what keeps the chain alive: every path that frees a chain
// (commit of a Delete, BatchDelete, undo of an overflow insert) first kills
// the inline record's slot under the record page's WRITE latch, so a
// reader that saw a live slot under the read latch fences all frees of the
// chain it is following until it finishes. Chain-page latches are acquired
// below the record page's latch, which the hierarchy permits: overflow
// pages are leaves that never wait on record pages.
func (s *Store) readRecord(rid RID) ([]byte, error) {
	f, err := s.pool.get(rid.Page)
	if err != nil {
		return nil, err
	}
	f.latch.RLock()
	defer func() {
		f.latch.RUnlock()
		s.pool.unpin(f, false)
	}()
	rec, ok := f.pg.read(rid.Slot)
	if !ok {
		return nil, fmt.Errorf("store: %w: %s", errRecordNotFound, rid)
	}
	if rec[0] == recKindPlain {
		out := make([]byte, len(rec)-1)
		copy(out, rec[1:])
		return out, nil
	}
	first := PageID(binary.LittleEndian.Uint32(rec[1:]))
	total := int(binary.LittleEndian.Uint32(rec[5:]))
	out := make([]byte, 0, total)
	out = append(out, rec[overflowHeader:]...)
	for pid := first; pid != InvalidPage; {
		of, err := s.pool.get(pid)
		if err != nil {
			return nil, err
		}
		of.latch.RLock()
		chunk, ok := of.pg.read(0)
		if !ok {
			of.latch.RUnlock()
			s.pool.unpin(of, false)
			return nil, fmt.Errorf("store: missing overflow chunk on page %d", pid)
		}
		out = append(out, chunk...)
		next := of.pg.next()
		of.latch.RUnlock()
		s.pool.unpin(of, false)
		pid = next
	}
	if len(out) != total {
		return nil, fmt.Errorf("store: overflow record %s length %d, want %d", rid, len(out), total)
	}
	return out, nil
}

// Read returns a record's payload (transactions see committed state plus
// their own writes; isolation is enforced by the lock layer above).
func (s *Store) Read(rid RID) ([]byte, error) {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	s.glock()
	defer s.gunlock()
	return s.readRecord(rid)
}

// Delete removes a record within the transaction. Overflow chains are
// released at commit (never on abort), so undo can restore the record.
func (t *Txn) Delete(h HeapID, rid RID) error {
	t.s.ckptMu.RLock()
	defer t.s.ckptMu.RUnlock()
	t.s.glock()
	defer t.s.gunlock()
	if err := t.ensureActive(); err != nil {
		return err
	}
	return t.s.deleteRecord(t, uint32(h), rid)
}

func (s *Store) deleteRecord(t *Txn, heap uint32, rid RID) error {
	f, err := s.pool.get(rid.Page)
	if err != nil {
		return err
	}
	f.latch.Lock()
	rec, ok := f.pg.read(rid.Slot)
	if !ok {
		f.latch.Unlock()
		s.pool.unpin(f, false)
		return fmt.Errorf("store: %w: %s", errRecordNotFound, rid)
	}
	before := append([]byte(nil), rec...)
	if rec[0] == recKindOverflow {
		first := PageID(binary.LittleEndian.Uint32(rec[1:]))
		t.freeOnCommit = append(t.freeOnCommit, s.chainPages(first)...)
	}
	f.pg.del(rid.Slot)
	lr := &logRecord{typ: recDelete, txn: t.id, prevLSN: t.lastLSN,
		heap: heap, page: rid.Page, slot: rid.Slot, before: before}
	lsn := s.log.append(lr)
	t.lastLSN = lsn
	f.pg.setLSN(lsn)
	f.latch.Unlock()
	s.pool.unpin(f, true)
	t.undoRecs = append(t.undoRecs, lr)
	return nil
}

// chainPages collects the page IDs of an overflow chain. It may be called
// with the owning record's page write-latched; overflow pages are leaves of
// the latch order and never wait on record pages.
func (s *Store) chainPages(first PageID) []PageID {
	var out []PageID
	for pid := first; pid != InvalidPage; {
		f, err := s.pool.get(pid)
		if err != nil {
			break
		}
		f.latch.RLock()
		next := f.pg.next()
		f.latch.RUnlock()
		out = append(out, pid)
		s.pool.unpin(f, false)
		pid = next
	}
	return out
}

// SetByte updates one byte of a record's payload in place. Only offsets
// within the inline prefix are valid; the message store keeps its status
// byte at offset 0. This is the only in-place mutation of message data —
// everything else is append-only, as the paper prescribes.
func (t *Txn) SetByte(rid RID, off int, val byte) error {
	t.s.ckptMu.RLock()
	defer t.s.ckptMu.RUnlock()
	t.s.glock()
	defer t.s.gunlock()
	if err := t.ensureActive(); err != nil {
		return err
	}
	s := t.s
	f, err := s.pool.get(rid.Page)
	if err != nil {
		return err
	}
	f.latch.Lock()
	defer func() {
		f.latch.Unlock()
		s.pool.unpin(f, true)
	}()
	rec, ok := f.pg.read(rid.Slot)
	if !ok {
		return fmt.Errorf("store: %w: %s", errRecordNotFound, rid)
	}
	physOff := 1 + off // skip kind byte
	if rec[0] == recKindOverflow {
		physOff = overflowHeader + off
	}
	if physOff >= len(rec) {
		return fmt.Errorf("store: SetByte offset %d out of range", off)
	}
	before := []byte{rec[physOff]}
	rec[physOff] = val
	lr := &logRecord{typ: recSetBytes, txn: t.id, prevLSN: t.lastLSN,
		page: rid.Page, slot: rid.Slot, off: uint16(physOff), before: before, after: []byte{val}}
	lsn := s.log.append(lr)
	t.lastLSN = lsn
	f.pg.setLSN(lsn)
	t.undoRecs = append(t.undoRecs, lr)
	return nil
}

// Scan iterates all live records of a heap in storage order (which, for
// append-only queue heaps, is insertion order). fn returns false to stop.
// The chain lock is held shared for the walk, so retention reclaim cannot
// unlink pages out from under the scanner; concurrent inserts and reads
// proceed normally.
func (s *Store) Scan(h HeapID, fn func(rid RID, payload []byte) bool) error {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	s.glock()
	defer s.gunlock()
	hi, err := s.heapByID(uint32(h))
	if err != nil {
		return err
	}
	return s.scanHeap(hi, fn)
}

func (s *Store) scanHeap(h *heapInfo, fn func(rid RID, payload []byte) bool) error {
	h.chainMu.RLock()
	defer h.chainMu.RUnlock()
	for pid := h.first; pid != InvalidPage; {
		f, err := s.pool.get(pid)
		if err != nil {
			return err
		}
		f.latch.RLock()
		next := f.pg.next()
		nslots := f.pg.slotCount()
		f.latch.RUnlock()
		for slot := uint16(0); slot < nslots; slot++ {
			payload, err := s.readRecord(RID{Page: pid, Slot: slot})
			if err != nil {
				if errors.Is(err, errRecordNotFound) {
					continue // dead slot, or deleted while we scanned
				}
				s.pool.unpin(f, false)
				return err
			}
			if !fn(RID{Page: pid, Slot: slot}, payload) {
				s.pool.unpin(f, false)
				return nil
			}
		}
		s.pool.unpin(f, false)
		pid = next
	}
	return nil
}

// BatchDelete physically removes a set of processed records in one
// auto-committed operation. With Options.UnloggedDeletes it writes a single
// redo-only batch record without before images — the paper's
// retention-based deletion optimization (Sec. 4.1); otherwise each record
// is deleted with a full before image (experiment E3's baseline).
// Emptied pages (other than heap head pages) are unlinked and freed.
func (s *Store) BatchDelete(h HeapID, rids []RID) error {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	s.glock()
	defer s.gunlock()
	if len(rids) == 0 {
		return nil
	}
	hi, err := s.heapByID(uint32(h))
	if err != nil {
		return err
	}
	t := s.beginTxn()
	var freed []PageID
	if s.opts.UnloggedDeletes {
		// One redo-only record per page, appended under that page's write
		// latch. A single out-of-band record for the whole batch would
		// break the per-page LSN invariant: if a later insert reused a
		// dead slot and its higher LSN reached disk, recovery would replay
		// the batch delete over the newer record (the insert's own redo
		// being LSN-masked) and lose it. Per-page append-under-latch keeps
		// page LSNs monotonic in log order, so the standard redo guard
		// applies.
		var pageOrder []PageID
		byPage := map[PageID][]RID{}
		for _, rid := range rids {
			if _, ok := byPage[rid.Page]; !ok {
				pageOrder = append(pageOrder, rid.Page)
			}
			byPage[rid.Page] = append(byPage[rid.Page], rid)
		}
		for _, pid := range pageOrder {
			pgs, err := s.applyUnloggedDeletes(t, pid, byPage[pid])
			if err != nil {
				return err
			}
			freed = append(freed, pgs...)
		}
	} else {
		for _, rid := range rids {
			if err := s.deleteRecord(t, hi.id, rid); err != nil {
				if errors.Is(err, errRecordNotFound) {
					continue // already gone; idempotent like the unlogged path
				}
				return err
			}
		}
	}
	if err := s.commitTxn(t); err != nil {
		return err
	}
	// Free overflow pages outside the undo path (the batch committed).
	s.freePages(freed)
	return s.reclaimEmptyPages(hi)
}

// applyUnloggedDeletes kills a batch of slots of ONE page: the redo-only
// record is appended while the page's write latch is held, like every other
// page mutation, so the page LSN stays monotonic in log order and redo can
// use the standard LSN guard. Returns overflow pages to free.
func (s *Store) applyUnloggedDeletes(t *Txn, pid PageID, rids []RID) ([]PageID, error) {
	f, err := s.pool.get(pid)
	if err != nil {
		return nil, err
	}
	f.latch.Lock()
	defer func() {
		f.latch.Unlock()
		s.pool.unpin(f, true)
	}()
	lr := &logRecord{typ: recBatchDelete, txn: t.id, prevLSN: t.lastLSN, rids: rids}
	lsn := s.log.append(lr)
	t.lastLSN = lsn
	var ov []PageID
	for _, rid := range rids {
		rec, ok := f.pg.read(rid.Slot)
		if !ok {
			continue // already gone; idempotent
		}
		if rec[0] == recKindOverflow {
			first := PageID(binary.LittleEndian.Uint32(rec[1:]))
			ov = append(ov, s.chainPages(first)...)
		}
		f.pg.del(rid.Slot)
	}
	if lsn > f.pg.lsn() {
		f.pg.setLSN(lsn)
	}
	return ov, nil
}

// applyPhysicalDelete marks a slot dead and returns overflow pages to free;
// recovery redo uses it to replay recBatchDelete records.
func (s *Store) applyPhysicalDelete(rid RID, lsn uint64) ([]PageID, error) {
	f, err := s.pool.get(rid.Page)
	if err != nil {
		return nil, err
	}
	f.latch.Lock()
	defer func() {
		f.latch.Unlock()
		s.pool.unpin(f, true)
	}()
	rec, ok := f.pg.read(rid.Slot)
	if !ok {
		return nil, nil // already gone; idempotent
	}
	var ov []PageID
	if rec[0] == recKindOverflow {
		first := PageID(binary.LittleEndian.Uint32(rec[1:]))
		ov = s.chainPages(first)
	}
	f.pg.del(rid.Slot)
	if lsn > f.pg.lsn() {
		f.pg.setLSN(lsn)
	}
	return ov, nil
}

// freePages marks pages free (redo-only logged) and returns them to the
// allocator.
func (s *Store) freePages(pages []PageID) {
	var freed []PageID
	for _, pid := range pages {
		// fresh, not get: the content is formatted over immediately, so an
		// evicted page must not pay a disk read to be freed.
		f, err := s.pool.fresh(pid)
		if err != nil {
			continue
		}
		f.latch.Lock()
		lsn := s.log.append(&logRecord{typ: recSetFlags, page: pid, flags: flagFree})
		f.pg.format()
		f.pg.setFlags(flagFree)
		f.pg.setLSN(lsn)
		f.latch.Unlock()
		s.pool.unpin(f, true)
		freed = append(freed, pid)
	}
	if len(freed) > 0 {
		s.allocMu.Lock()
		s.freeList = append(s.freeList, freed...)
		s.allocMu.Unlock()
	}
}

// reclaimBatchPages bounds how many chain pages one exclusive chain-lock
// acquisition examines during reclaim.
const reclaimBatchPages = 64

// reclaimEmptyPages unlinks fully-empty interior pages of a heap chain and
// frees them; head and tail pages stay to keep insertion cheap. The chain
// lock is held exclusively only for one bounded batch at a time — between
// batches scanners proceed, so slice scans never stall behind a reclaim
// walking a long chain. The walk resumes from the last kept page: only
// reclaim unlinks pages (reclaimMu serializes reclaimers) and appends grow
// the chain strictly at the tail, so the resume cursor stays valid across
// the lock release.
func (s *Store) reclaimEmptyPages(h *heapInfo) error {
	h.reclaimMu.Lock()
	defer h.reclaimMu.Unlock()

	prev := h.first
	for {
		h.appendMu.Lock()
		last := h.last
		h.appendMu.Unlock()

		var toFree []PageID
		h.chainMu.Lock()
		pf, err := s.pool.get(prev)
		if err != nil {
			h.chainMu.Unlock()
			return err
		}
		pf.latch.RLock()
		cur := pf.pg.next()
		pf.latch.RUnlock()
		s.pool.unpin(pf, false)
		examined := 0
		for cur != InvalidPage && cur != last && examined < reclaimBatchPages {
			examined++
			cf, err := s.pool.get(cur)
			if err != nil {
				h.chainMu.Unlock()
				return err
			}
			cf.latch.RLock()
			next := cf.pg.next()
			empty := cf.pg.liveCount() == 0
			cf.latch.RUnlock()
			s.pool.unpin(cf, false)
			if empty {
				// Unlink: prev.next = next (redo-only chain record).
				pf, err := s.pool.get(prev)
				if err != nil {
					h.chainMu.Unlock()
					return err
				}
				pf.latch.Lock()
				lsn := s.log.append(&logRecord{typ: recChain, page: prev, page2: next})
				pf.pg.setNext(next)
				pf.pg.setLSN(lsn)
				pf.latch.Unlock()
				s.pool.unpin(pf, true)
				toFree = append(toFree, cur)
			} else {
				prev = cur
			}
			cur = next
		}
		done := cur == InvalidPage || cur == last
		h.chainMu.Unlock()
		// Free outside the chain lock: the pages are unlinked, so neither
		// scanners nor the allocator can reach them in between.
		s.freePages(toFree)
		if done {
			return nil
		}
	}
}
