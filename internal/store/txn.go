package store

import (
	"errors"
)

// ErrTxnDone is returned by operations on a finished transaction.
var ErrTxnDone = errors.New("store: transaction already committed or aborted")

// Txn is a storage transaction: atomic (WAL undo), durable (WAL flush at
// commit). Isolation between transactions is the responsibility of the
// logical lock manager above (internal/txn), matching the paper's model of
// message-processing transactions protected by queue/slice locks.
type Txn struct {
	s       *Store
	id      uint64
	lastLSN uint64
	began   bool // recBegin written
	done    bool

	undoRecs     []*logRecord // update records in execution order
	freeOnCommit []PageID     // overflow chains of deleted records
}

// Begin starts a transaction.
func (s *Store) Begin() *Txn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.beginLocked()
}

func (s *Store) beginLocked() *Txn {
	t := &Txn{s: s, id: s.nextTxn}
	s.nextTxn++
	return t
}

func (t *Txn) ensureActive() error {
	if t.done {
		return ErrTxnDone
	}
	if !t.began {
		lsn := t.s.log.append(&logRecord{typ: recBegin, txn: t.id})
		t.lastLSN = lsn
		t.began = true
	}
	return nil
}

// Commit makes the transaction durable. The store mutex is only held while
// the commit record is appended; the WAL flush — the expensive fsync — runs
// outside it, so concurrent committers overlap in the log and coalesce
// their fsyncs (group commit). Isolation between the committing
// transactions is the responsibility of the logical lock layer above.
func (t *Txn) Commit() error {
	t.s.mu.Lock()
	lsn, err := t.s.prepareCommitLocked(t)
	t.s.mu.Unlock()
	return t.s.finishCommit(lsn, err)
}

// commitLocked commits an internal auto-committed transaction (DDL, batch
// deletes) while the caller already holds s.mu.
func (s *Store) commitLocked(t *Txn) error {
	lsn, err := s.prepareCommitLocked(t)
	return s.finishCommit(lsn, err)
}

// finishCommit flushes the log up to the commit record and counts the
// commit. The wal serializes flushes internally, so this is safe both with
// and without s.mu held.
func (s *Store) finishCommit(lsn uint64, err error) error {
	if err != nil || lsn == 0 {
		return err
	}
	if err := s.log.flush(lsn); err != nil {
		return err
	}
	s.commits.Add(1)
	return nil
}

// prepareCommitLocked appends the commit record and releases deferred page
// frees; it returns the LSN the caller must flush to (0 for read-only
// transactions). Caller holds s.mu.
func (s *Store) prepareCommitLocked(t *Txn) (uint64, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	t.done = true
	if !t.began && t.lastLSN == 0 {
		return 0, nil // read-only transaction: nothing to log
	}
	// Deferred overflow frees become visible with the commit.
	s.freePages(t.freeOnCommit)
	lsn := s.log.append(&logRecord{typ: recCommit, txn: t.id, prevLSN: t.lastLSN})
	return lsn, nil
}

// Abort rolls the transaction back by applying compensations in reverse
// order, logging a CLR for each so recovery can resume an interrupted
// rollback.
func (t *Txn) Abort() error {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return t.s.abortLocked(t)
}

func (s *Store) abortLocked(t *Txn) error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	if !t.began && t.lastLSN == 0 {
		return nil
	}
	for i := len(t.undoRecs) - 1; i >= 0; i-- {
		if err := s.undoRecord(t, t.undoRecs[i]); err != nil {
			return err
		}
	}
	s.log.append(&logRecord{typ: recAbort, txn: t.id, prevLSN: t.lastLSN})
	s.aborts++
	return nil
}

// undoRecord applies the compensation for one update record and logs it as
// a CLR whose undoNext points before the undone record.
func (s *Store) undoRecord(t *Txn, r *logRecord) error {
	var comp *logRecord
	switch r.typ {
	case recInsert:
		comp = &logRecord{typ: recDelete, heap: r.heap, page: r.page, slot: r.slot}
		// Undoing the insert of an overflow record releases its chain.
		if len(r.after) > 0 && r.after[0] == recKindOverflow {
			first := PageID(leU32(r.after[1:]))
			defer s.freePages(s.chainPages(first))
		}
	case recDelete:
		comp = &logRecord{typ: recInsert, heap: r.heap, page: r.page, slot: r.slot, after: r.before}
	case recSetBytes:
		comp = &logRecord{typ: recSetBytes, page: r.page, slot: r.slot, off: r.off, after: r.before}
	default:
		return nil // redo-only record: no compensation
	}
	clr := &logRecord{typ: recCLR, txn: t.id, prevLSN: t.lastLSN, undoNext: r.prevLSN, comp: comp}
	lsn := s.log.append(clr)
	t.lastLSN = lsn
	return s.applyRedo(comp, lsn)
}

// applyRedo executes the page effect of a record, stamping the page LSN.
// It is used both for compensations at runtime and for redo at recovery.
func (s *Store) applyRedo(r *logRecord, lsn uint64) error {
	switch r.typ {
	case recInsert:
		f, err := s.pageForRedo(r.page)
		if err != nil {
			return err
		}
		f.pg.insertAt(r.slot, r.after)
		f.pg.setLSN(lsn)
		s.pool.unpin(f, true)
	case recDelete:
		f, err := s.pageForRedo(r.page)
		if err != nil {
			return err
		}
		f.pg.del(r.slot)
		f.pg.setLSN(lsn)
		s.pool.unpin(f, true)
	case recSetBytes:
		f, err := s.pageForRedo(r.page)
		if err != nil {
			return err
		}
		if rec, ok := f.pg.read(r.slot); ok && int(r.off) < len(rec) && len(r.after) == 1 {
			rec[r.off] = r.after[0]
		}
		f.pg.setLSN(lsn)
		s.pool.unpin(f, true)
	case recBatchDelete:
		for _, rid := range r.rids {
			if _, err := s.applyPhysicalDelete(rid, lsn); err != nil {
				return err
			}
		}
	case recFormatPage:
		f, err := s.pageForRedo(r.page)
		if err != nil {
			return err
		}
		f.pg.format()
		f.pg.setFlags(r.flags)
		f.pg.setPrev(r.page2)
		f.pg.setNext(r.page3)
		f.pg.setLSN(lsn)
		s.pool.unpin(f, true)
	case recChain:
		f, err := s.pageForRedo(r.page)
		if err != nil {
			return err
		}
		f.pg.setNext(r.page2)
		f.pg.setLSN(lsn)
		s.pool.unpin(f, true)
	case recSetFlags:
		f, err := s.pageForRedo(r.page)
		if err != nil {
			return err
		}
		f.pg.format()
		f.pg.setFlags(r.flags)
		f.pg.setLSN(lsn)
		s.pool.unpin(f, true)
	}
	return nil
}

// pageForRedo fetches a page, growing the file if the page had not been
// written back before a crash.
func (s *Store) pageForRedo(pid PageID) (*frame, error) {
	if uint32(pid) >= s.pageCount {
		s.pageCount = uint32(pid) + 1
		return s.pool.fresh(pid)
	}
	return s.pool.get(pid)
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
