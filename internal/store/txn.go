package store

import (
	"errors"
)

// ErrTxnDone is returned by operations on a finished transaction.
var ErrTxnDone = errors.New("store: transaction already committed or aborted")

// Txn is a storage transaction: atomic (WAL undo), durable (WAL flush at
// commit). Isolation between transactions is the responsibility of the
// logical lock manager above (internal/txn), matching the paper's model of
// message-processing transactions protected by queue/slice locks. A Txn is
// used by one goroutine at a time; distinct transactions run fully in
// parallel against the latched page store.
type Txn struct {
	s       *Store
	id      uint64
	lastLSN uint64
	began   bool // recBegin written
	done    bool

	undoRecs     []*logRecord // update records in execution order
	freeOnCommit []PageID     // overflow chains of deleted records
}

// Begin starts a transaction.
func (s *Store) Begin() *Txn {
	s.glock()
	defer s.gunlock()
	return s.beginTxn()
}

func (s *Store) beginTxn() *Txn {
	return &Txn{s: s, id: s.nextTxn.Add(1) - 1}
}

func (t *Txn) ensureActive() error {
	if t.done {
		return ErrTxnDone
	}
	if !t.began {
		lsn := t.s.log.append(&logRecord{typ: recBegin, txn: t.id})
		t.lastLSN = lsn
		t.began = true
		// Register with the active-transaction table: a fuzzy checkpoint
		// may not advance the log head past our first record — it is the
		// undo information recovery needs if we lose.
		t.s.txnMu.Lock()
		t.s.activeTxns[t.id] = lsn
		t.s.txnMu.Unlock()
	}
	return nil
}

// forgetTxn drops a finished transaction from the active table.
func (s *Store) forgetTxn(t *Txn) {
	if !t.began {
		return
	}
	s.txnMu.Lock()
	delete(s.activeTxns, t.id)
	s.txnMu.Unlock()
}

// Commit makes the transaction durable. The WAL flush — the expensive
// fsync — runs after all bookkeeping, so concurrent committers overlap in
// the log and coalesce their fsyncs (group commit). Isolation between the
// committing transactions is the responsibility of the logical lock layer
// above.
func (t *Txn) Commit() error {
	// Graceful degradation under a WAL hard budget: when the live log has
	// outgrown the soft budget, commits pay a growing delay — outside every
	// lock — so the checkpointer can catch up before the engine must shed.
	t.s.commitThrottle()
	t.s.ckptMu.RLock()
	t.s.glock()
	lsn, err := t.s.prepareCommit(t)
	t.s.gunlock()
	t.s.ckptMu.RUnlock()
	// The flush itself may run outside the checkpoint fence: a checkpoint
	// that slipped in after the fence released has already flushed this
	// LSN, making the flush a durable no-op.
	return t.s.finishCommit(lsn, err)
}

// commitTxn commits an internal auto-committed transaction (DDL, batch
// deletes) from a caller already inside the store.
func (s *Store) commitTxn(t *Txn) error {
	lsn, err := s.prepareCommit(t)
	return s.finishCommit(lsn, err)
}

// finishCommit flushes the log up to the commit record and counts the
// commit. The wal serializes flushes internally.
func (s *Store) finishCommit(lsn uint64, err error) error {
	if err != nil || lsn == 0 {
		return err
	}
	if err := s.log.flush(lsn); err != nil {
		return err
	}
	s.commits.Add(1)
	return nil
}

// prepareCommit appends the commit record and releases deferred page frees;
// it returns the LSN the caller must flush to (0 for read-only
// transactions).
func (s *Store) prepareCommit(t *Txn) (uint64, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	t.done = true
	if !t.began && t.lastLSN == 0 {
		return 0, nil // read-only transaction: nothing to log
	}
	// Deferred overflow frees become visible with the commit.
	s.freePages(t.freeOnCommit)
	lsn := s.log.append(&logRecord{typ: recCommit, txn: t.id, prevLSN: t.lastLSN})
	// Once the commit record is in the log the transaction no longer
	// constrains the checkpoint redo offset: recovery treats it as finished
	// (or, if the record misses durability, replays and undoes from the
	// still-retained records at or after the current redo point — the head
	// only advances past them at the NEXT checkpoint fence, by which time
	// this transaction is out of the table).
	s.forgetTxn(t)
	return lsn, nil
}

// Abort rolls the transaction back by applying compensations in reverse
// order, logging a CLR for each so recovery can resume an interrupted
// rollback.
func (t *Txn) Abort() error {
	t.s.ckptMu.RLock()
	defer t.s.ckptMu.RUnlock()
	t.s.glock()
	defer t.s.gunlock()
	return t.s.abortTxn(t)
}

func (s *Store) abortTxn(t *Txn) error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	if !t.began && t.lastLSN == 0 {
		return nil
	}
	for i := len(t.undoRecs) - 1; i >= 0; i-- {
		if err := s.undoRecord(t, t.undoRecs[i]); err != nil {
			return err
		}
	}
	s.log.append(&logRecord{typ: recAbort, txn: t.id, prevLSN: t.lastLSN})
	s.forgetTxn(t)
	s.aborts.Add(1)
	return nil
}

// undoRecord applies the compensation for one update record and logs it as
// a CLR whose undoNext points before the undone record. The CLR append and
// its page application happen atomically under the page's write latch:
// were they separated, a concurrent operation could stamp the page with a
// higher LSN and write it back before the compensation landed, and redo
// would then skip the CLR — resurrecting the aborted update.
func (s *Store) undoRecord(t *Txn, r *logRecord) error {
	var comp *logRecord
	switch r.typ {
	case recInsert:
		comp = &logRecord{typ: recDelete, heap: r.heap, page: r.page, slot: r.slot}
	case recDelete:
		comp = &logRecord{typ: recInsert, heap: r.heap, page: r.page, slot: r.slot, after: r.before}
	case recSetBytes:
		comp = &logRecord{typ: recSetBytes, page: r.page, slot: r.slot, off: r.off, after: r.before}
	default:
		return nil // redo-only record: no compensation
	}
	f, err := s.pageForRedo(comp.page)
	if err != nil {
		return err
	}
	f.latch.Lock()
	// Undoing the insert of an overflow record releases its chain — but
	// only inserts into RECORD pages can carry an inline overflow header.
	// A loser transaction's overflow-chunk inserts target overflow-flagged
	// pages (already free-flagged once the inline record's undo, which
	// runs first in reverse log order, released the chain) and hold raw
	// payload bytes: parsing those as a chain pointer would free-list
	// whatever pages the garbage pointer reaches.
	freeChain := InvalidPage
	if r.typ == recInsert && f.pg.flags()&(flagOverflow|flagFree) == 0 &&
		len(r.after) >= overflowHeader && r.after[0] == recKindOverflow {
		freeChain = PageID(leU32(r.after[1:]))
	}
	clr := &logRecord{typ: recCLR, txn: t.id, prevLSN: t.lastLSN, undoNext: r.prevLSN, comp: comp}
	lsn := s.log.append(clr)
	t.lastLSN = lsn
	applyToPage(&f.pg, comp, lsn)
	f.latch.Unlock()
	s.pool.unpin(f, true)
	if freeChain != InvalidPage {
		s.freePages(s.chainPages(freeChain))
	}
	return nil
}

// applyToPage executes a single-page record effect on an already latched
// page, advancing — never regressing — the page LSN.
func applyToPage(pg *page, r *logRecord, lsn uint64) {
	switch r.typ {
	case recInsert:
		pg.insertAt(r.slot, r.after)
	case recDelete:
		pg.del(r.slot)
	case recSetBytes:
		if rec, ok := pg.read(r.slot); ok && int(r.off) < len(rec) && len(r.after) == 1 {
			rec[r.off] = r.after[0]
		}
	case recFormatPage:
		pg.format()
		pg.setFlags(r.flags)
		pg.setPrev(r.page2)
		pg.setNext(r.page3)
	case recChain:
		pg.setNext(r.page2)
	case recSetFlags:
		pg.format()
		pg.setFlags(r.flags)
	}
	if lsn > pg.lsn() {
		pg.setLSN(lsn)
	}
}

// applyRedo executes the page effect of a record during recovery, stamping
// the page LSN. Recovery is single-threaded; latches are taken for
// uniformity with the runtime protocol.
func (s *Store) applyRedo(r *logRecord, lsn uint64) error {
	switch r.typ {
	case recInsert, recDelete, recSetBytes, recFormatPage, recChain, recSetFlags:
		f, err := s.pageForRedo(r.page)
		if err != nil {
			return err
		}
		f.latch.Lock()
		applyToPage(&f.pg, r, lsn)
		f.latch.Unlock()
		s.pool.unpin(f, true)
	case recBatchDelete:
		// Batch-delete records are written one per page (grouped and
		// appended under that page's write latch), so the page LSN guard
		// is evaluated once per page — and BEFORE any of its slots is
		// applied, since applying the first slot stamps the page with this
		// very LSN. A page already carrying this LSN or a later one (e.g.
		// an insert that reused a dead slot and reached disk) has the
		// deletes durable and must not be replayed. The per-page grouping
		// below also recovers legacy whole-batch records whose rids span
		// multiple pages.
		skip := map[PageID]bool{}
		for _, rid := range r.rids {
			judged, seen := skip[rid.Page]
			if !seen {
				f, err := s.pageForRedo(rid.Page)
				if err != nil {
					return err
				}
				judged = f.pg.lsn() >= lsn
				s.pool.unpin(f, false)
				skip[rid.Page] = judged
			}
			if judged {
				continue
			}
			if _, err := s.applyPhysicalDelete(rid, lsn); err != nil {
				return err
			}
		}
	}
	return nil
}

// pageForRedo fetches a page, growing the file if the page had not been
// written back before a crash.
func (s *Store) pageForRedo(pid PageID) (*frame, error) {
	s.allocMu.Lock()
	grow := uint32(pid) >= s.pageCount
	if grow {
		s.pageCount = uint32(pid) + 1
	}
	s.allocMu.Unlock()
	if grow {
		return s.pool.fresh(pid)
	}
	return s.pool.get(pid)
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
