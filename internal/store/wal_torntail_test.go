package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"testing"
)

// frameWAL encodes records in the on-disk WAL framing (length, crc,
// payload) and returns the bytes plus each record's end offset.
func frameWAL(recs []*logRecord) (data []byte, ends []int) {
	for _, r := range recs {
		payload := encodeRecord(r)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		data = append(data, hdr[:]...)
		data = append(data, payload...)
		ends = append(ends, len(data))
	}
	return data, ends
}

// segHeaderBytes builds a segment file header for tests.
func segHeaderBytes(seq, start uint64) []byte {
	hdr := make([]byte, walSegHdrSize)
	copy(hdr, walSegMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	binary.LittleEndian.PutUint64(hdr[16:], start)
	return hdr
}

// scanWALBytes loads data as the record area of a single WAL segment and
// scans it, returning the number of records recovered and the scan error.
func scanWALBytes(t *testing.T, data []byte) (int, error) {
	t.Helper()
	fs := NewFaultFS(1)
	f, err := fs.OpenFile("w/" + walSegName(1))
	if err != nil {
		t.Fatal(err)
	}
	seg := append(segHeaderBytes(1, 0), data...)
	if _, err := f.WriteAt(seg, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	w, err := openWALDir(fs, "w", 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	err = w.scanFrom(0, func(r *logRecord) error {
		count++
		return nil
	})
	return count, err
}

func torntailRecords() []*logRecord {
	// A realistic mix of record shapes and sizes, including a large one
	// whose tail spans many cut points.
	recs := []*logRecord{
		{typ: recBegin, txn: 1},
		{typ: recInsert, txn: 1, page: 2, slot: 0, after: []byte("payload-one")},
		{typ: recInsert, txn: 1, page: 2, slot: 1, after: make([]byte, 300)},
		{typ: recCommit, txn: 1},
		{typ: recFullPage, page: 3, after: make([]byte, 150)},
		{typ: recBegin, txn: 2},
	}
	for i := range recs[2].after {
		recs[2].after[i] = byte(i)
	}
	for i := range recs[4].after {
		recs[4].after[i] = byte(i * 7)
	}
	return recs
}

// TestWALTornTailEveryOffset truncates the log after every byte offset:
// recovery must stop cleanly at the last complete record — never error,
// never recover a partial record.
func TestWALTornTailEveryOffset(t *testing.T) {
	data, ends := frameWAL(torntailRecords())
	complete := func(cut int) int {
		n := 0
		for _, e := range ends {
			if e <= cut {
				n++
			}
		}
		return n
	}
	for cut := 0; cut <= len(data); cut++ {
		got, err := scanWALBytes(t, data[:cut])
		if err != nil {
			t.Fatalf("cut at byte %d: scan error: %v", cut, err)
		}
		if want := complete(cut); got != want {
			t.Fatalf("cut at byte %d: recovered %d records, want %d", cut, got, want)
		}
	}
}

// TestWALCorruptTailEveryOffset flips each byte of the final record (its
// frame header and payload) in turn: the CRC (or the zero/bounds checks on
// the header) must reject it, and recovery stops at the previous record.
func TestWALCorruptTailEveryOffset(t *testing.T) {
	data, ends := frameWAL(torntailRecords())
	last := len(ends) - 1
	start := 0
	if last > 0 {
		start = ends[last-1]
	}
	for off := start; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xFF
		got, err := scanWALBytes(t, mut)
		if err != nil {
			t.Fatalf("flip at byte %d: scan error: %v", off, err)
		}
		if got != last {
			t.Fatalf("flip at byte %d: recovered %d records, want %d", off, got, last)
		}
	}
}

// TestWALZeroedTailStopsCleanly models a lost write that leaves a hole of
// zeroes where a record's frame should be: the zero length header is the
// durable tail, not a corruption error (crc32("") == 0 would otherwise
// accept an empty record and trip over the decoder).
func TestWALZeroedTailStopsCleanly(t *testing.T) {
	data, ends := frameWAL(torntailRecords())
	for i, end := range ends {
		mut := append([]byte(nil), data...)
		for b := end; b < len(mut); b++ {
			mut[b] = 0
		}
		got, err := scanWALBytes(t, mut)
		if err != nil {
			t.Fatalf("zeroed after record %d: scan error: %v", i, err)
		}
		if got != i+1 {
			t.Fatalf("zeroed after record %d: recovered %d records, want %d", i, got, i+1)
		}
	}
}

// TestWALTornTailThroughStore drives the same property end-to-end: commit
// transactions, truncate the durable WAL image at every byte offset past
// the last checkpoint, and reopen — Open must always succeed and the pages
// must verify.
func TestWALTornTailThroughStore(t *testing.T) {
	build := func() (*FaultFS, int) {
		fs := NewFaultFS(1)
		s, err := Open("tt", Options{VFS: fs, SyncCommits: true})
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.CreateHeap("h")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			tx := s.Begin()
			if _, err := tx.Insert(h, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		// Leave the WAL populated: no checkpoint, no clean Close.
		s.CrashForTest()
		walLen := 0
		fs.mu.Lock()
		if d := fs.files["tt/"+walSegName(1)]; d != nil {
			walLen = len(d.durable)
		}
		fs.mu.Unlock()
		if walLen <= walSegHdrSize {
			t.Fatal("workload left no durable WAL bytes")
		}
		return fs, walLen
	}
	_, walLen := build()
	// Cut points cover the segment header too: a store whose only segment
	// lost its header must reopen as an empty log.
	for cut := 0; cut < walLen; cut++ {
		fs, _ := build()
		fs.mu.Lock()
		d := fs.files["tt/"+walSegName(1)]
		d.durable = d.durable[:cut]
		d.current = append([]byte(nil), d.durable...)
		fs.mu.Unlock()
		s, err := Open("tt", Options{VFS: fs, SyncCommits: true})
		if err != nil {
			t.Fatalf("cut at byte %d: reopen: %v", cut, err)
		}
		if err := s.VerifyPageLSNs(); err != nil {
			t.Fatalf("cut at byte %d: %v", cut, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("cut at byte %d: close: %v", cut, err)
		}
	}
}
