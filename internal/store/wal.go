package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"
)

// The write-ahead log is a sequence of CRC-protected records. The LSN of a
// record is its byte offset in the log file plus one (so zero means "no
// LSN"). Records are physiological: each touches at most one page, guarded
// by the page LSN during redo, which makes redo idempotent.
//
// Demaq-specific shape: queue inserts log redo+undo images; the processed
// flag is a one-byte partial update; retention (GC) deletions are logged as
// redo-only batches without before images — the paper's observation that
// declarative retention frees the system from fully logging deletions.

type recType uint8

// Log record types.
const (
	recBegin recType = iota + 1
	recCommit
	recAbort // abort complete (all undo applied)
	recInsert
	recDelete
	recSetBytes // partial in-record update (processed flag)
	recBatchDelete
	recFormatPage
	recChain
	recSetFlags
	recCLR
	recCheckpoint
	// recFullPage is a redo-only full image of one page, logged on a
	// page's first write-back since the last checkpoint. It makes torn
	// data-page writes recoverable: a partially persisted 8K write mixes
	// old and new bytes — cells moved by compaction, a page LSN from the
	// new image over slots from the old — which no physiological record
	// can repair. Recovery applies the image unconditionally and replays
	// later records on top.
	recFullPage
)

// logRecord is the decoded form of one WAL record.
type logRecord struct {
	lsn     uint64
	typ     recType
	txn     uint64
	prevLSN uint64

	heap   uint32
	page   PageID
	slot   uint16
	off    uint16 // recSetBytes
	before []byte
	after  []byte
	rids   []RID  // recBatchDelete
	page2  PageID // recChain: new page; recFormatPage: chain prev
	page3  PageID // recFormatPage: chain next (overflow chains)
	flags  uint16

	undoNext uint64     // recCLR
	comp     *logRecord // recCLR: compensation action (one of the above)
}

// wal is the log manager. Appends are buffered; Flush forces durability up
// to a target LSN.
//
// The flush path is the group-commit mechanism: one flusher at a time swaps
// the append buffer out, writes and fsyncs it with wal.mu RELEASED (so
// appends from other transactions keep landing in a fresh buffer), then
// publishes the new durable offset. Committers that arrive while a sync is
// in flight wait on the condition variable; when they wake, their commit
// record is usually already durable — either it rode along in the swapped
// buffer, or the next flusher picks it up together with every other record
// buffered meanwhile. N concurrent commits therefore cost far fewer than N
// fsyncs; the fsyncs/flushWaits counters make the ratio observable.
//
// LSNs are monotonic across the store's lifetime: checkpoints truncate the
// log file but advance a base offset (persisted in the store header), so a
// page LSN from before a checkpoint never masks the redo of a record logged
// after it.
type wal struct {
	mu       sync.Mutex
	cond     *sync.Cond // signaled when a flush completes
	syncing  bool       // a flusher is writing/fsyncing outside mu
	ioErr    error      // sticky: a failed log write poisons the wal
	f        File
	base     uint64 // LSN offset of byte 0 of the current log file
	buf      []byte
	fileSize uint64 // durable bytes in the file
	bufStart uint64 // file offset of buf[0]
	flushed  uint64 // file offset known durable
	sync     bool   // fsync on flush

	fsyncs     uint64 // physical fsyncs performed
	flushCalls uint64 // flush requests that had to wait or write
	coalesced  uint64 // flush requests satisfied by another flusher's sync

	// Adaptive group-commit linger: when the previous batch carried several
	// committers, the next flusher waits — event-driven, with a timer only
	// as fallback — until a comparable cohort has boarded the current
	// buffer, so the group rides one fsync instead of splitting into
	// alternating near-empty batches. Solo committers never linger
	// (lastGroup is 1 for them). joiners counts uncovered flush arrivals
	// since the last buffer swap, i.e. the committers aboard the batch
	// being assembled; it is reset when the buffer is swapped out.
	joiners       int    // committers aboard the batch being assembled
	lastGroup     int    // batch size of the previous sync
	swapEpoch     uint64 // incremented per buffer swap; detects stale joins
	lingering     bool   // the flusher is waiting for its cohort
	lingerGen     uint64 // guards the fallback timer against stale firings
	lingerExpired bool   // fallback timer fired during the current linger
}

func openWAL(f File, base uint64, syncOnCommit bool) (*wal, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	w := &wal{
		f:        f,
		base:     base,
		fileSize: uint64(size),
		bufStart: uint64(size),
		flushed:  uint64(size),
		sync:     syncOnCommit,
	}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

func (w *wal) close() error { return w.f.Close() }

// err returns the sticky I/O error, if any.
func (w *wal) err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ioErr
}

// append encodes and buffers a record, returning its LSN.
func (w *wal) append(r *logRecord) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(r)
}

func (w *wal) appendLocked(r *logRecord) uint64 {
	payload := encodeRecord(r)
	lsn := w.base + w.bufStart + uint64(len(w.buf)) + 1
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	r.lsn = lsn
	return lsn
}

// flush makes the log durable up to at least the given LSN. Only one
// flusher writes at a time; it does so with the mutex released so appends
// (and later flush requests, which wait and usually find their records
// already durable) are never blocked behind an fsync.
func (w *wal) flush(lsn uint64) error {
	w.mu.Lock()
	if lsn <= w.base+w.flushed {
		w.mu.Unlock()
		return nil
	}
	w.flushCalls++
	w.joiners++
	myEpoch := w.swapEpoch
	if w.lingering {
		// Nudge the lingering flusher: one more committer is aboard.
		w.cond.Broadcast()
	}
	for {
		if lsn <= w.base+w.flushed {
			// A concurrent flusher covered our LSN while we waited. This
			// must be checked before ioErr: our records are durable even if
			// a later batch failed. If no swap happened since we boarded,
			// our join counted toward the batch still being assembled —
			// take it back so the next linger doesn't wait for us.
			if w.swapEpoch == myEpoch {
				w.joiners--
			}
			w.coalesced++
			w.mu.Unlock()
			return nil
		}
		if w.ioErr != nil {
			err := w.ioErr
			w.mu.Unlock()
			return err
		}
		if !w.syncing {
			break
		}
		w.cond.Wait()
	}
	// Become the flusher. Under observed concurrency, linger until a cohort
	// the size of the previous batch has boarded (joiners signal as they
	// arrive; a timer bounds the wait in case the cohort shrank).
	w.syncing = true
	if w.sync && w.lastGroup > 1 && w.joiners < w.lastGroup {
		w.lingering = true
		w.lingerExpired = false
		w.lingerGen++
		gen := w.lingerGen
		timer := time.AfterFunc(500*time.Microsecond, func() {
			w.mu.Lock()
			// A fired timer may run after its linger already ended; the
			// generation check keeps it from expiring a later linger.
			if w.lingering && w.lingerGen == gen {
				w.lingerExpired = true
				w.cond.Broadcast()
			}
			w.mu.Unlock()
		})
		for w.joiners < w.lastGroup && !w.lingerExpired && w.ioErr == nil {
			w.cond.Wait()
		}
		timer.Stop()
		w.lingering = false
	}
	// Swap the buffer out and sync outside the mutex.
	buf := w.buf
	start := w.bufStart
	w.buf = nil
	w.bufStart += uint64(len(buf))
	target := w.bufStart
	w.swapEpoch++
	w.lastGroup = w.joiners
	w.joiners = 0
	w.mu.Unlock()

	var err error
	if len(buf) > 0 {
		_, err = w.f.WriteAt(buf, int64(start))
	}
	if err == nil && w.sync {
		err = w.f.Sync()
	}

	w.mu.Lock()
	w.syncing = false
	if err != nil {
		w.ioErr = err
	} else {
		w.fileSize = target
		w.flushed = target
		if w.sync {
			w.fsyncs++
		}
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return err
}

// quiesceLocked waits until no flusher is in flight. Caller holds w.mu.
func (w *wal) quiesceLocked() {
	for w.syncing {
		w.cond.Wait()
	}
}

// syncStats returns the fsync/coalescing counters.
func (w *wal) syncStats() (fsyncs, flushCalls, coalesced uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fsyncs, w.flushCalls, w.coalesced
}

// size returns the cumulative log bytes ever written (across truncations),
// which is the log-volume metric reported by experiment E3.
func (w *wal) size() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base + w.bufStart + uint64(len(w.buf))
}

// truncate resets the log after a checkpoint, advancing the LSN base. The
// caller persists the returned base before relying on the truncation.
func (w *wal) truncate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesceLocked()
	newBase := w.base + w.bufStart + uint64(len(w.buf))
	if err := w.f.Truncate(0); err != nil {
		return 0, err
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return 0, err
		}
	}
	w.base = newBase
	w.buf = w.buf[:0]
	w.bufStart = 0
	w.fileSize = 0
	w.flushed = 0
	return newBase, nil
}

// scan reads all complete records from the start of the log, stopping at
// the first torn or corrupt record (the tail of an interrupted write).
// The log is snapshotted under the mutex but iterated with it RELEASED:
// recovery redo runs inside fn, and evicting a dirty page there ends in
// wal.flush — holding w.mu across the callback would self-deadlock as soon
// as the redo working set outgrows the buffer pool.
func (w *wal) scan(fn func(r *logRecord) error) error {
	w.mu.Lock()
	w.quiesceLocked()
	data := make([]byte, w.fileSize)
	if n, err := w.f.ReadAt(data, 0); err != nil && err != io.EOF {
		w.mu.Unlock()
		return err
	} else {
		data = data[:n]
	}
	data = append(data, w.buf...)
	base := w.base
	w.mu.Unlock()
	off := 0
	for off+8 <= len(data) {
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 {
			// No record is empty; a zero header is a lost write's hole (or
			// zero padding), i.e. the durable tail ends here.
			break
		}
		if off+8+int(n) > len(data) {
			break // torn tail
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt tail
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("wal: corrupt record at offset %d: %w", off, err)
		}
		r.lsn = base + uint64(off) + 1
		if err := fn(r); err != nil {
			return err
		}
		off += 8 + int(n)
	}
	return nil
}

// --- record encoding ---

func encodeRecord(r *logRecord) []byte {
	var b []byte
	b = append(b, byte(r.typ))
	b = binary.LittleEndian.AppendUint64(b, r.txn)
	b = binary.LittleEndian.AppendUint64(b, r.prevLSN)
	switch r.typ {
	case recBegin, recCommit, recAbort, recCheckpoint:
	case recInsert:
		b = binary.LittleEndian.AppendUint32(b, r.heap)
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.slot)
		b = appendBytes(b, r.after)
	case recDelete:
		b = binary.LittleEndian.AppendUint32(b, r.heap)
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.slot)
		b = appendBytes(b, r.before)
	case recSetBytes:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.slot)
		b = binary.LittleEndian.AppendUint16(b, r.off)
		b = appendBytes(b, r.before)
		b = appendBytes(b, r.after)
	case recBatchDelete:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.rids)))
		for _, rid := range r.rids {
			b = binary.LittleEndian.AppendUint32(b, uint32(rid.Page))
			b = binary.LittleEndian.AppendUint16(b, rid.Slot)
		}
	case recFormatPage:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.flags)
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page2)) // prev in chain
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page3)) // next in chain
	case recChain:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))  // tail page
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page2)) // new next
	case recSetFlags:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.flags)
	case recCLR:
		b = binary.LittleEndian.AppendUint64(b, r.undoNext)
		b = appendBytes(b, encodeRecord(r.comp))
	case recFullPage:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = appendBytes(b, r.after)
	}
	return b
}

func appendBytes(b, data []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(data)))
	return append(b, data...)
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || d.off+int(n) > len(d.b) {
		d.fail()
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b[d.off:])
	d.off += int(n)
	return v
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated record")
	}
}

func decodeRecord(payload []byte) (*logRecord, error) {
	d := &decoder{b: payload}
	r := &logRecord{}
	r.typ = recType(d.u8())
	r.txn = d.u64()
	r.prevLSN = d.u64()
	switch r.typ {
	case recBegin, recCommit, recAbort, recCheckpoint:
	case recInsert:
		r.heap = d.u32()
		r.page = PageID(d.u32())
		r.slot = d.u16()
		r.after = d.bytes()
	case recDelete:
		r.heap = d.u32()
		r.page = PageID(d.u32())
		r.slot = d.u16()
		r.before = d.bytes()
	case recSetBytes:
		r.page = PageID(d.u32())
		r.slot = d.u16()
		r.off = d.u16()
		r.before = d.bytes()
		r.after = d.bytes()
	case recBatchDelete:
		n := d.u32()
		if n > uint32(len(payload)) {
			return nil, fmt.Errorf("batch delete count out of range")
		}
		r.rids = make([]RID, 0, n)
		for i := uint32(0); i < n; i++ {
			pg := PageID(d.u32())
			sl := d.u16()
			r.rids = append(r.rids, RID{Page: pg, Slot: sl})
		}
	case recFormatPage:
		r.page = PageID(d.u32())
		r.flags = d.u16()
		r.page2 = PageID(d.u32())
		r.page3 = PageID(d.u32())
	case recChain:
		r.page = PageID(d.u32())
		r.page2 = PageID(d.u32())
	case recSetFlags:
		r.page = PageID(d.u32())
		r.flags = d.u16()
	case recCLR:
		r.undoNext = d.u64()
		inner := d.bytes()
		if d.err != nil {
			return nil, d.err
		}
		comp, err := decodeRecord(inner)
		if err != nil {
			return nil, err
		}
		r.comp = comp
	case recFullPage:
		r.page = PageID(d.u32())
		r.after = d.bytes()
	default:
		return nil, fmt.Errorf("unknown record type %d", r.typ)
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}
