package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The write-ahead log is a sequence of CRC-protected records spread over
// numbered segment files (wal.NNNNNN.log). The LSN of a record is its byte
// offset in the *logical* log plus one (so zero means "no LSN"); segment
// headers are excluded from logical offsets, so LSNs are monotonic for the
// store's whole lifetime and independent of how the log is cut into files.
// Records are physiological: each touches at most one page, guarded by the
// page LSN during redo, which makes redo idempotent.
//
// Demaq-specific shape: queue inserts log redo+undo images; the processed
// flag is a one-byte partial update; retention (GC) deletions are logged as
// redo-only batches without before images — the paper's observation that
// declarative retention frees the system from fully logging deletions.
//
// Checkpoints no longer truncate the log. Instead they publish a redo
// offset (the log head) in the store header; advanceHead then deletes
// segments that lie wholly behind it. Only the newest segment is ever
// appended to; a segment is sealed — fsynced in full — before its successor
// is created, so after a crash at most the final segment has a torn tail.

type recType uint8

// Log record types.
const (
	recBegin recType = iota + 1
	recCommit
	recAbort // abort complete (all undo applied)
	recInsert
	recDelete
	recSetBytes // partial in-record update (processed flag)
	recBatchDelete
	recFormatPage
	recChain
	recSetFlags
	recCLR
	recCheckpoint
	// recFullPage is a redo-only full image of one page, logged on a
	// page's first write-back since the last checkpoint. It makes torn
	// data-page writes recoverable: a partially persisted 8K write mixes
	// old and new bytes — cells moved by compaction, a page LSN from the
	// new image over slots from the old — which no physiological record
	// can repair. Recovery applies the image unconditionally and replays
	// later records on top.
	recFullPage
	// recCkptBegin/recCkptEnd bracket a fuzzy checkpoint. Begin marks the
	// instant the dirty-page set was snapshotted; End carries the begin
	// LSN, the published redo offset, and the dirty-page table that was
	// written back, closing the bracket. Recovery replays from the redo
	// offset in the store header; the bracket records exist so the replay
	// bound (and the protocol itself) is visible in the log.
	recCkptBegin
	recCkptEnd
)

// logRecord is the decoded form of one WAL record.
type logRecord struct {
	lsn     uint64
	typ     recType
	txn     uint64
	prevLSN uint64

	heap   uint32
	page   PageID
	slot   uint16
	off    uint16 // recSetBytes
	before []byte
	after  []byte
	rids   []RID  // recBatchDelete
	page2  PageID // recChain: new page; recFormatPage: chain prev
	page3  PageID // recFormatPage: chain next (overflow chains)
	flags  uint16

	undoNext uint64     // recCLR
	comp     *logRecord // recCLR: compensation action (one of the above)

	ckptBegin uint64   // recCkptEnd: LSN of the matching recCkptBegin
	ckptRedo  uint64   // recCkptEnd: redo offset published by this checkpoint
	dpt       []PageID // recCkptEnd: dirty-page table written back
}

// Segment file layout: a fixed header, then framed records.
const (
	walSegMagic   = "DEMAQWL1"
	walSegHdrSize = 24 // magic[8] | seq u64 | logical start offset u64
)

// walSegName formats the file name of the segment with the given sequence
// number. Sequence numbers are never reused, so a recovered store can
// always tell a stale (resurrected) segment from a live one.
func walSegName(seq uint64) string { return fmt.Sprintf("wal.%06d.log", seq) }

// parseWalSegName extracts the sequence number from a segment file name.
func parseWalSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal.") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	mid := name[len("wal.") : len(name)-len(".log")]
	if mid == "" {
		return 0, false
	}
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// walSeg is one open segment file. start is the logical offset of its first
// record byte; the segment's bytes [walSegHdrSize, …) map to logical
// [start, …).
type walSeg struct {
	seq   uint64
	start uint64
	f     File
}

// wal is the log manager. Appends are buffered; Flush forces durability up
// to a target LSN.
//
// The flush path is the group-commit mechanism: one flusher at a time swaps
// the append buffer out, writes and fsyncs it with wal.mu RELEASED (so
// appends from other transactions keep landing in a fresh buffer), then
// publishes the new durable offset. Committers that arrive while a sync is
// in flight wait on the condition variable; when they wake, their commit
// record is usually already durable — either it rode along in the swapped
// buffer, or the next flusher picks it up together with every other record
// buffered meanwhile. N concurrent commits therefore cost far fewer than N
// fsyncs; the fsyncs/flushWaits counters make the ratio observable.
//
// All offsets below (bufStart, flushed, fileSize, head) are logical log
// offsets; the active segment translates them to file positions. The same
// flusher that publishes a durable offset rolls to a new segment once the
// active one exceeds segSize, sealing the old segment with an fsync first.
type wal struct {
	mu      sync.Mutex
	cond    *sync.Cond // signaled when a flush completes
	syncing bool       // a flusher is writing/fsyncing outside mu
	ioErr   error      // sticky: a failed log write poisons the wal
	vfs     VFS
	dir     string
	segs    []*walSeg // ascending seq; last is the active (append) segment
	head    uint64    // redo offset of the last published checkpoint
	segSize uint64    // roll threshold for the active segment, in bytes

	buf      []byte
	fileSize uint64 // durable logical bytes
	bufStart uint64 // logical offset of buf[0]
	flushed  uint64 // logical offset known durable
	sync     bool   // fsync on flush

	fsyncs     uint64 // physical fsyncs performed
	flushCalls uint64 // flush requests that had to wait or write
	coalesced  uint64 // flush requests satisfied by another flusher's sync
	segRolls   uint64 // segments sealed and rolled over

	// Adaptive group-commit linger: when the previous batch carried several
	// committers, the next flusher waits — event-driven, with a timer only
	// as fallback — until a comparable cohort has boarded the current
	// buffer, so the group rides one fsync instead of splitting into
	// alternating near-empty batches. Solo committers never linger
	// (lastGroup is 1 for them). joiners counts uncovered flush arrivals
	// since the last buffer swap, i.e. the committers aboard the batch
	// being assembled; it is reset when the buffer is swapped out.
	joiners       int    // committers aboard the batch being assembled
	lastGroup     int    // batch size of the previous sync
	swapEpoch     uint64 // incremented per buffer swap; detects stale joins
	lingering     bool   // the flusher is waiting for its cohort
	lingerGen     uint64 // guards the fallback timer against stale firings
	lingerExpired bool   // fallback timer fired during the current linger
}

// walDefaultSegSize is the roll threshold when Options leave it zero.
const walDefaultSegSize = 4 << 20

// openWALDir discovers, validates, and opens the log segments in dir.
// redoOff is the redo offset recovered from the store header: segments
// wholly behind it are deleted (including ones a crash resurrected after a
// checkpoint removed them), and replay will start there. The newest segment
// has its torn tail trimmed so appends resume at the end of the last intact
// record.
func openWALDir(vfs VFS, dir string, redoOff uint64, syncOnCommit bool, segSize uint64) (*wal, error) {
	if segSize == 0 {
		segSize = walDefaultSegSize
	}
	names, err := vfs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	seqs := make([]uint64, 0, len(names))
	for _, n := range names {
		if seq, ok := parseWalSegName(n); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	w := &wal{
		vfs:     vfs,
		dir:     dir,
		head:    redoOff,
		segSize: segSize,
		sync:    syncOnCommit,
	}
	w.cond = sync.NewCond(&w.mu)

	maxSeen := uint64(0)
	for _, seq := range seqs {
		if seq > maxSeen {
			maxSeen = seq
		}
		path := filepath.Join(dir, walSegName(seq))
		f, err := vfs.OpenFile(path)
		if err != nil {
			return nil, err
		}
		rf := &retryFile{f: f}
		seg, ok, err := readSegHeader(rf, seq)
		if err != nil {
			rf.Close()
			return nil, err
		}
		if !ok {
			// A missing or torn segment header means the roll that created
			// this file never completed — no record in it was ever
			// acknowledged durable (the roll's fsync would have carried the
			// header). It must be the newest segment; drop it.
			rf.Close()
			if seq != seqs[len(seqs)-1] {
				return nil, fmt.Errorf("wal: segment %s has a bad header but is not the newest segment", path)
			}
			vfs.Remove(path)
			continue
		}
		if len(w.segs) > 0 && seg.start < w.segs[len(w.segs)-1].start {
			rf.Close()
			return nil, fmt.Errorf("wal: segment %s starts at %d, before its predecessor", path, seg.start)
		}
		w.segs = append(w.segs, seg)
	}

	if len(w.segs) == 0 {
		seg, err := w.createSeg(maxSeen+1, redoOff)
		if err != nil {
			return nil, err
		}
		w.segs = []*walSeg{seg}
		w.bufStart, w.flushed, w.fileSize = redoOff, redoOff, redoOff
		return w, nil
	}

	// Trim the active segment's torn tail so appends resume at the end of
	// the last intact record instead of after crash garbage.
	active := w.segs[len(w.segs)-1]
	end, err := trimSegTail(active)
	if err != nil {
		w.closeSegs()
		return nil, err
	}
	w.bufStart, w.flushed, w.fileSize = end, end, end
	if w.head > end {
		// The header published a redo offset past the durable log end; with
		// fsync-on-commit off that is an accepted loss window.
		w.head = end
	}

	// Delete segments that lie wholly behind the redo offset — normally done
	// by advanceHead after each checkpoint, repeated here because a crash can
	// resurrect a removed segment or interrupt the removal pass.
	for len(w.segs) > 1 && w.segs[1].start <= w.head {
		seg := w.segs[0]
		seg.f.Close()
		w.vfs.Remove(filepath.Join(w.dir, walSegName(seg.seq)))
		w.segs = w.segs[1:]
	}
	return w, nil
}

// readSegHeader validates a segment's on-disk header. ok=false (with nil
// error) means the header is absent or torn — an aborted roll.
func readSegHeader(f File, wantSeq uint64) (*walSeg, bool, error) {
	var hdr [walSegHdrSize]byte
	n, err := f.ReadAt(hdr[:], 0)
	if err != nil && err != io.EOF {
		return nil, false, err
	}
	if n < walSegHdrSize || string(hdr[:8]) != walSegMagic {
		return nil, false, nil
	}
	seq := binary.LittleEndian.Uint64(hdr[8:])
	start := binary.LittleEndian.Uint64(hdr[16:])
	if seq != wantSeq {
		return nil, false, fmt.Errorf("wal: segment %s header claims seq %d", walSegName(wantSeq), seq)
	}
	return &walSeg{seq: wantSeq, start: start, f: f}, true, nil
}

// createSeg creates and syncs a new segment file whose first record byte
// has the given logical offset.
func (w *wal) createSeg(seq, start uint64) (*walSeg, error) {
	path := filepath.Join(w.dir, walSegName(seq))
	f, err := w.vfs.OpenFile(path)
	if err != nil {
		return nil, err
	}
	rf := &retryFile{f: f}
	var hdr [walSegHdrSize]byte
	copy(hdr[:8], walSegMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	binary.LittleEndian.PutUint64(hdr[16:], start)
	if _, err := rf.WriteAt(hdr[:], 0); err != nil {
		rf.Close()
		return nil, err
	}
	if w.sync {
		if err := rf.Sync(); err != nil {
			rf.Close()
			return nil, err
		}
	}
	return &walSeg{seq: seq, start: start, f: rf}, nil
}

// trimSegTail scans the active segment for its last intact record, truncates
// any torn tail after it, and returns the logical end offset of the log.
func trimSegTail(seg *walSeg) (uint64, error) {
	size, err := seg.f.Size()
	if err != nil {
		return 0, err
	}
	if size < walSegHdrSize {
		// The header was validated from the in-memory read; a shorter size
		// cannot happen, but guard anyway.
		return seg.start, nil
	}
	data := make([]byte, size-walSegHdrSize)
	if n, err := seg.f.ReadAt(data, walSegHdrSize); err != nil && err != io.EOF {
		return 0, err
	} else {
		data = data[:n]
	}
	off := 0
	for off+8 <= len(data) {
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || off+8+int(n) > len(data) {
			break
		}
		if crc32.ChecksumIEEE(data[off+8:off+8+int(n)]) != crc {
			break
		}
		off += 8 + int(n)
	}
	if int64(walSegHdrSize+off) < size {
		if err := seg.f.Truncate(int64(walSegHdrSize + off)); err != nil {
			return 0, err
		}
		if err := seg.f.Sync(); err != nil {
			return 0, err
		}
	}
	return seg.start + uint64(off), nil
}

func (w *wal) closeSegs() {
	for _, seg := range w.segs {
		seg.f.Close()
	}
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesceLocked()
	var first error
	for _, seg := range w.segs {
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// err returns the sticky I/O error, if any.
func (w *wal) err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ioErr
}

// append encodes and buffers a record, returning its LSN.
func (w *wal) append(r *logRecord) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(r)
}

func (w *wal) appendLocked(r *logRecord) uint64 {
	payload := encodeRecord(r)
	lsn := w.bufStart + uint64(len(w.buf)) + 1
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	r.lsn = lsn
	return lsn
}

// flush makes the log durable up to at least the given LSN. Only one
// flusher writes at a time; it does so with the mutex released so appends
// (and later flush requests, which wait and usually find their records
// already durable) are never blocked behind an fsync.
func (w *wal) flush(lsn uint64) error {
	w.mu.Lock()
	if lsn <= w.flushed {
		w.mu.Unlock()
		return nil
	}
	w.flushCalls++
	w.joiners++
	myEpoch := w.swapEpoch
	if w.lingering {
		// Nudge the lingering flusher: one more committer is aboard.
		w.cond.Broadcast()
	}
	for {
		if lsn <= w.flushed {
			// A concurrent flusher covered our LSN while we waited. This
			// must be checked before ioErr: our records are durable even if
			// a later batch failed. If no swap happened since we boarded,
			// our join counted toward the batch still being assembled —
			// take it back so the next linger doesn't wait for us.
			if w.swapEpoch == myEpoch {
				w.joiners--
			}
			w.coalesced++
			w.mu.Unlock()
			return nil
		}
		if w.ioErr != nil {
			err := w.ioErr
			w.mu.Unlock()
			return err
		}
		if !w.syncing {
			break
		}
		w.cond.Wait()
	}
	// Become the flusher. Under observed concurrency, linger until a cohort
	// the size of the previous batch has boarded (joiners signal as they
	// arrive; a timer bounds the wait in case the cohort shrank).
	w.syncing = true
	if w.sync && w.lastGroup > 1 && w.joiners < w.lastGroup {
		w.lingering = true
		w.lingerExpired = false
		w.lingerGen++
		gen := w.lingerGen
		timer := time.AfterFunc(500*time.Microsecond, func() {
			w.mu.Lock()
			// A fired timer may run after its linger already ended; the
			// generation check keeps it from expiring a later linger.
			if w.lingering && w.lingerGen == gen {
				w.lingerExpired = true
				w.cond.Broadcast()
			}
			w.mu.Unlock()
		})
		for w.joiners < w.lastGroup && !w.lingerExpired && w.ioErr == nil {
			w.cond.Wait()
		}
		timer.Stop()
		w.lingering = false
	}
	// Swap the buffer out and sync outside the mutex. Records never span
	// segments: the whole swapped buffer lands in the active segment, and
	// rolls happen only between flushes.
	buf := w.buf
	start := w.bufStart
	active := w.segs[len(w.segs)-1]
	w.buf = nil
	w.bufStart += uint64(len(buf))
	target := w.bufStart
	w.swapEpoch++
	w.lastGroup = w.joiners
	w.joiners = 0
	w.mu.Unlock()

	var err error
	if len(buf) > 0 {
		fileOff := int64(walSegHdrSize + (start - active.start))
		_, err = active.f.WriteAt(buf, fileOff)
	}
	if err == nil && w.sync {
		err = active.f.Sync()
	}

	w.mu.Lock()
	if err != nil {
		w.syncing = false
		w.ioErr = err
		w.cond.Broadcast()
		w.mu.Unlock()
		return err
	}
	w.fileSize = target
	w.flushed = target
	if w.sync {
		w.fsyncs++
	}
	needRoll := target-active.start >= w.segSize
	if !needRoll {
		w.syncing = false
		w.cond.Broadcast()
		w.mu.Unlock()
		return nil
	}
	// Roll while still holding the flusher token (syncing stays true) so no
	// other flusher writes during the handover. Seal the active segment with
	// an fsync — the invariant "only the newest segment can have a torn
	// tail" depends on it — then create its successor. A roll failure is
	// sticky like any other log I/O failure.
	newSeq := active.seq + 1
	w.mu.Unlock()
	var newSeg *walSeg
	rerr := active.f.Sync()
	if rerr == nil {
		newSeg, rerr = w.createSeg(newSeq, target)
	}
	w.mu.Lock()
	w.syncing = false
	if rerr != nil {
		w.ioErr = rerr
	} else {
		w.segs = append(w.segs, newSeg)
		w.segRolls++
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return nil
}

// quiesceLocked waits until no flusher is in flight. Caller holds w.mu.
func (w *wal) quiesceLocked() {
	for w.syncing {
		w.cond.Wait()
	}
}

// syncStats returns the fsync/coalescing counters.
func (w *wal) syncStats() (fsyncs, flushCalls, coalesced uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fsyncs, w.flushCalls, w.coalesced
}

// size returns the cumulative log bytes ever written (across head
// advancements), which is the log-volume metric reported by experiment E3.
func (w *wal) size() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bufStart + uint64(len(w.buf))
}

// liveBytes returns the log bytes a crash right now would have to replay
// through: everything at or after the published redo offset. This is the
// quantity the WAL soft/hard budgets bound.
func (w *wal) liveBytes() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bufStart + uint64(len(w.buf)) - w.head
}

// headOffset returns the published redo offset.
func (w *wal) headOffset() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.head
}

// segmentStats returns the number of live segment files and rolls so far.
func (w *wal) segmentStats() (segments int, rolls uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs), w.segRolls
}

// advanceHead publishes a new redo offset and deletes segments that lie
// wholly behind it. The caller must have durably persisted newHead in the
// store header first: once a segment is gone, recovery can never start
// before it again. The active segment is never deleted, so liveBytes can
// reach zero while old bytes still sit in the active file — they are dead,
// just not yet reclaimed, and the next roll lets them go.
func (w *wal) advanceHead(newHead uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if newHead > w.head {
		w.head = newHead
	}
	for len(w.segs) > 1 && w.segs[1].start <= w.head {
		seg := w.segs[0]
		seg.f.Close()
		// A failed remove leaves a stale segment on disk; openWALDir
		// deletes it on the next open.
		w.vfs.Remove(filepath.Join(w.dir, walSegName(seg.seq)))
		w.segs = w.segs[1:]
	}
}

// scanFrom reads all complete records whose logical offset is >= from,
// stopping at the first torn or corrupt record (the tail of an interrupted
// write). The log is snapshotted under the mutex but iterated with it
// RELEASED: recovery redo runs inside fn, and evicting a dirty page there
// ends in wal.flush — holding w.mu across the callback would self-deadlock
// as soon as the redo working set outgrows the buffer pool.
func (w *wal) scanFrom(from uint64, fn func(r *logRecord) error) error {
	w.mu.Lock()
	w.quiesceLocked()
	if from < w.head {
		from = w.head
	}
	var data []byte
	for i, seg := range w.segs {
		segEnd := w.flushed
		if i+1 < len(w.segs) {
			segEnd = w.segs[i+1].start
		}
		lo := from
		if lo < seg.start {
			lo = seg.start
		}
		if segEnd <= lo {
			continue
		}
		chunk := make([]byte, segEnd-lo)
		fileOff := int64(walSegHdrSize + (lo - seg.start))
		if n, err := seg.f.ReadAt(chunk, fileOff); err != nil && err != io.EOF {
			w.mu.Unlock()
			return err
		} else {
			chunk = chunk[:n]
		}
		data = append(data, chunk...)
	}
	switch {
	case from <= w.bufStart:
		data = append(data, w.buf...)
	case from < w.bufStart+uint64(len(w.buf)):
		data = append(data, w.buf[from-w.bufStart:]...)
	}
	base := from
	w.mu.Unlock()
	off := 0
	for off+8 <= len(data) {
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 {
			// No record is empty; a zero header is a lost write's hole (or
			// zero padding), i.e. the durable tail ends here.
			break
		}
		if off+8+int(n) > len(data) {
			break // torn tail
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt tail
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("wal: corrupt record at offset %d: %w", int(base)+off, err)
		}
		r.lsn = base + uint64(off) + 1
		if err := fn(r); err != nil {
			return err
		}
		off += 8 + int(n)
	}
	return nil
}

// --- record encoding ---

func encodeRecord(r *logRecord) []byte {
	var b []byte
	b = append(b, byte(r.typ))
	b = binary.LittleEndian.AppendUint64(b, r.txn)
	b = binary.LittleEndian.AppendUint64(b, r.prevLSN)
	switch r.typ {
	case recBegin, recCommit, recAbort, recCheckpoint, recCkptBegin:
	case recInsert:
		b = binary.LittleEndian.AppendUint32(b, r.heap)
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.slot)
		b = appendBytes(b, r.after)
	case recDelete:
		b = binary.LittleEndian.AppendUint32(b, r.heap)
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.slot)
		b = appendBytes(b, r.before)
	case recSetBytes:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.slot)
		b = binary.LittleEndian.AppendUint16(b, r.off)
		b = appendBytes(b, r.before)
		b = appendBytes(b, r.after)
	case recBatchDelete:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.rids)))
		for _, rid := range r.rids {
			b = binary.LittleEndian.AppendUint32(b, uint32(rid.Page))
			b = binary.LittleEndian.AppendUint16(b, rid.Slot)
		}
	case recFormatPage:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.flags)
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page2)) // prev in chain
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page3)) // next in chain
	case recChain:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))  // tail page
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page2)) // new next
	case recSetFlags:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.flags)
	case recCLR:
		b = binary.LittleEndian.AppendUint64(b, r.undoNext)
		b = appendBytes(b, encodeRecord(r.comp))
	case recFullPage:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = appendBytes(b, r.after)
	case recCkptEnd:
		b = binary.LittleEndian.AppendUint64(b, r.ckptBegin)
		b = binary.LittleEndian.AppendUint64(b, r.ckptRedo)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.dpt)))
		for _, pid := range r.dpt {
			b = binary.LittleEndian.AppendUint32(b, uint32(pid))
		}
	}
	return b
}

func appendBytes(b, data []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(data)))
	return append(b, data...)
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || d.off+int(n) > len(d.b) {
		d.fail()
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b[d.off:])
	d.off += int(n)
	return v
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated record")
	}
}

func decodeRecord(payload []byte) (*logRecord, error) {
	d := &decoder{b: payload}
	r := &logRecord{}
	r.typ = recType(d.u8())
	r.txn = d.u64()
	r.prevLSN = d.u64()
	switch r.typ {
	case recBegin, recCommit, recAbort, recCheckpoint, recCkptBegin:
	case recInsert:
		r.heap = d.u32()
		r.page = PageID(d.u32())
		r.slot = d.u16()
		r.after = d.bytes()
	case recDelete:
		r.heap = d.u32()
		r.page = PageID(d.u32())
		r.slot = d.u16()
		r.before = d.bytes()
	case recSetBytes:
		r.page = PageID(d.u32())
		r.slot = d.u16()
		r.off = d.u16()
		r.before = d.bytes()
		r.after = d.bytes()
	case recBatchDelete:
		n := d.u32()
		if n > uint32(len(payload)) {
			return nil, fmt.Errorf("batch delete count out of range")
		}
		r.rids = make([]RID, 0, n)
		for i := uint32(0); i < n; i++ {
			pg := PageID(d.u32())
			sl := d.u16()
			r.rids = append(r.rids, RID{Page: pg, Slot: sl})
		}
	case recFormatPage:
		r.page = PageID(d.u32())
		r.flags = d.u16()
		r.page2 = PageID(d.u32())
		r.page3 = PageID(d.u32())
	case recChain:
		r.page = PageID(d.u32())
		r.page2 = PageID(d.u32())
	case recSetFlags:
		r.page = PageID(d.u32())
		r.flags = d.u16()
	case recCLR:
		r.undoNext = d.u64()
		inner := d.bytes()
		if d.err != nil {
			return nil, d.err
		}
		comp, err := decodeRecord(inner)
		if err != nil {
			return nil, err
		}
		r.comp = comp
	case recFullPage:
		r.page = PageID(d.u32())
		r.after = d.bytes()
	case recCkptEnd:
		r.ckptBegin = d.u64()
		r.ckptRedo = d.u64()
		n := d.u32()
		if n > uint32(len(payload)) {
			return nil, fmt.Errorf("dirty-page table count out of range")
		}
		r.dpt = make([]PageID, 0, n)
		for i := uint32(0); i < n; i++ {
			r.dpt = append(r.dpt, PageID(d.u32()))
		}
	default:
		return nil, fmt.Errorf("unknown record type %d", r.typ)
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}
