package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// The write-ahead log is a sequence of CRC-protected records. The LSN of a
// record is its byte offset in the log file plus one (so zero means "no
// LSN"). Records are physiological: each touches at most one page, guarded
// by the page LSN during redo, which makes redo idempotent.
//
// Demaq-specific shape: queue inserts log redo+undo images; the processed
// flag is a one-byte partial update; retention (GC) deletions are logged as
// redo-only batches without before images — the paper's observation that
// declarative retention frees the system from fully logging deletions.

type recType uint8

// Log record types.
const (
	recBegin recType = iota + 1
	recCommit
	recAbort // abort complete (all undo applied)
	recInsert
	recDelete
	recSetBytes // partial in-record update (processed flag)
	recBatchDelete
	recFormatPage
	recChain
	recSetFlags
	recCLR
	recCheckpoint
)

// logRecord is the decoded form of one WAL record.
type logRecord struct {
	lsn     uint64
	typ     recType
	txn     uint64
	prevLSN uint64

	heap   uint32
	page   PageID
	slot   uint16
	off    uint16 // recSetBytes
	before []byte
	after  []byte
	rids   []RID  // recBatchDelete
	page2  PageID // recChain: new page; recFormatPage: chain prev
	page3  PageID // recFormatPage: chain next (overflow chains)
	flags  uint16

	undoNext uint64     // recCLR
	comp     *logRecord // recCLR: compensation action (one of the above)
}

// wal is the log manager. Appends are buffered; Flush forces durability up
// to a target LSN. A single mutex serializes appends, which doubles as the
// group-commit mechanism: concurrent commits coalesce their fsyncs.
//
// LSNs are monotonic across the store's lifetime: checkpoints truncate the
// log file but advance a base offset (persisted in the store header), so a
// page LSN from before a checkpoint never masks the redo of a record logged
// after it.
type wal struct {
	mu       sync.Mutex
	f        *os.File
	base     uint64 // LSN offset of byte 0 of the current log file
	buf      []byte
	fileSize uint64 // durable bytes in the file
	bufStart uint64 // file offset of buf[0]
	flushed  uint64 // file offset known durable
	sync     bool   // fsync on flush
}

func openWAL(path string, base uint64, syncOnCommit bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{
		f:        f,
		base:     base,
		fileSize: uint64(st.Size()),
		bufStart: uint64(st.Size()),
		flushed:  uint64(st.Size()),
		sync:     syncOnCommit,
	}, nil
}

func (w *wal) close() error { return w.f.Close() }

// append encodes and buffers a record, returning its LSN.
func (w *wal) append(r *logRecord) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(r)
}

func (w *wal) appendLocked(r *logRecord) uint64 {
	payload := encodeRecord(r)
	lsn := w.base + w.bufStart + uint64(len(w.buf)) + 1
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	r.lsn = lsn
	return lsn
}

// flush makes the log durable up to at least the given LSN.
func (w *wal) flush(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if lsn <= w.base+w.flushed {
		return nil
	}
	if len(w.buf) > 0 {
		if _, err := w.f.WriteAt(w.buf, int64(w.bufStart)); err != nil {
			return err
		}
		w.bufStart += uint64(len(w.buf))
		w.fileSize = w.bufStart
		w.buf = w.buf[:0]
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	w.flushed = w.fileSize
	return nil
}

// size returns the cumulative log bytes ever written (across truncations),
// which is the log-volume metric reported by experiment E3.
func (w *wal) size() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base + w.bufStart + uint64(len(w.buf))
}

// truncate resets the log after a checkpoint, advancing the LSN base. The
// caller persists the returned base before relying on the truncation.
func (w *wal) truncate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	newBase := w.base + w.bufStart + uint64(len(w.buf))
	if err := w.f.Truncate(0); err != nil {
		return 0, err
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return 0, err
		}
	}
	w.base = newBase
	w.buf = w.buf[:0]
	w.bufStart = 0
	w.fileSize = 0
	w.flushed = 0
	return newBase, nil
}

// scan reads all complete records from the start of the log, stopping at
// the first torn or corrupt record (the tail of an interrupted write).
func (w *wal) scan(fn func(r *logRecord) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	data, err := io.ReadAll(w.f)
	if err != nil {
		return err
	}
	data = append(data, w.buf...)
	off := 0
	for off+8 <= len(data) {
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if off+8+int(n) > len(data) {
			break // torn tail
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt tail
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("wal: corrupt record at offset %d: %w", off, err)
		}
		r.lsn = w.base + uint64(off) + 1
		if err := fn(r); err != nil {
			return err
		}
		off += 8 + int(n)
	}
	return nil
}

// --- record encoding ---

func encodeRecord(r *logRecord) []byte {
	var b []byte
	b = append(b, byte(r.typ))
	b = binary.LittleEndian.AppendUint64(b, r.txn)
	b = binary.LittleEndian.AppendUint64(b, r.prevLSN)
	switch r.typ {
	case recBegin, recCommit, recAbort, recCheckpoint:
	case recInsert:
		b = binary.LittleEndian.AppendUint32(b, r.heap)
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.slot)
		b = appendBytes(b, r.after)
	case recDelete:
		b = binary.LittleEndian.AppendUint32(b, r.heap)
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.slot)
		b = appendBytes(b, r.before)
	case recSetBytes:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.slot)
		b = binary.LittleEndian.AppendUint16(b, r.off)
		b = appendBytes(b, r.before)
		b = appendBytes(b, r.after)
	case recBatchDelete:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.rids)))
		for _, rid := range r.rids {
			b = binary.LittleEndian.AppendUint32(b, uint32(rid.Page))
			b = binary.LittleEndian.AppendUint16(b, rid.Slot)
		}
	case recFormatPage:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.flags)
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page2)) // prev in chain
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page3)) // next in chain
	case recChain:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))  // tail page
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page2)) // new next
	case recSetFlags:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.page))
		b = binary.LittleEndian.AppendUint16(b, r.flags)
	case recCLR:
		b = binary.LittleEndian.AppendUint64(b, r.undoNext)
		b = appendBytes(b, encodeRecord(r.comp))
	}
	return b
}

func appendBytes(b, data []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(data)))
	return append(b, data...)
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || d.off+int(n) > len(d.b) {
		d.fail()
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b[d.off:])
	d.off += int(n)
	return v
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated record")
	}
}

func decodeRecord(payload []byte) (*logRecord, error) {
	d := &decoder{b: payload}
	r := &logRecord{}
	r.typ = recType(d.u8())
	r.txn = d.u64()
	r.prevLSN = d.u64()
	switch r.typ {
	case recBegin, recCommit, recAbort, recCheckpoint:
	case recInsert:
		r.heap = d.u32()
		r.page = PageID(d.u32())
		r.slot = d.u16()
		r.after = d.bytes()
	case recDelete:
		r.heap = d.u32()
		r.page = PageID(d.u32())
		r.slot = d.u16()
		r.before = d.bytes()
	case recSetBytes:
		r.page = PageID(d.u32())
		r.slot = d.u16()
		r.off = d.u16()
		r.before = d.bytes()
		r.after = d.bytes()
	case recBatchDelete:
		n := d.u32()
		if n > uint32(len(payload)) {
			return nil, fmt.Errorf("batch delete count out of range")
		}
		r.rids = make([]RID, 0, n)
		for i := uint32(0); i < n; i++ {
			pg := PageID(d.u32())
			sl := d.u16()
			r.rids = append(r.rids, RID{Page: pg, Slot: sl})
		}
	case recFormatPage:
		r.page = PageID(d.u32())
		r.flags = d.u16()
		r.page2 = PageID(d.u32())
		r.page3 = PageID(d.u32())
	case recChain:
		r.page = PageID(d.u32())
		r.page2 = PageID(d.u32())
	case recSetFlags:
		r.page = PageID(d.u32())
		r.flags = d.u16()
	case recCLR:
		r.undoNext = d.u64()
		inner := d.bytes()
		if d.err != nil {
			return nil, d.err
		}
		comp, err := decodeRecord(inner)
		if err != nil {
			return nil, err
		}
		r.comp = comp
	default:
		return nil, fmt.Errorf("unknown record type %d", r.typ)
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}
