package store

import (
	"fmt"
	"time"
)

// Crash recovery, ARIES style reduced to the needs of an append-only
// message store:
//
//  1. a single forward pass performs analysis and redo together, starting
//     at the redo offset the last complete checkpoint published in the
//     store header — not at the log start, so replay work is bounded by
//     checkpoint frequency, not uptime. Every record is re-applied unless
//     the target page already carries an LSN at or beyond the record
//     (pages are stamped with the LSN of the last change, making redo
//     idempotent);
//  2. loser transactions — those with neither a commit nor an abort-end
//     record — are rolled back using the update records collected during
//     the forward pass, logging CLRs exactly like a runtime abort. Every
//     loser's records lie at or after the redo offset: a fuzzy checkpoint
//     never advances it past the first record of a transaction that was
//     still active at its begin fence;
//  3. the free list is rebuilt by scanning page flags, and pages still
//     referenced by live overflow pointers are rescued from it (closing the
//     window between deferred overflow frees and the transaction outcome).
//
// Step 3 runs in Store.load after the catalog is available.
func (s *Store) recover() error {
	started := time.Now()
	replayed := uint64(0)
	defer func() {
		s.recReplayed.Store(replayed)
		s.lastRecNs.Store(int64(time.Since(started)))
	}()
	type txnState struct {
		updates  []*logRecord
		lastLSN  uint64
		finished bool // commit or abort-end seen
	}
	txns := map[uint64]*txnState{}
	get := func(id uint64) *txnState {
		t, ok := txns[id]
		if !ok {
			t = &txnState{}
			txns[id] = t
		}
		return t
	}

	maxTxn := uint64(0)
	err := s.log.scanFrom(s.log.headOffset(), func(r *logRecord) error {
		replayed++
		if r.txn > maxTxn {
			maxTxn = r.txn
		}
		switch r.typ {
		case recBegin:
			get(r.txn).lastLSN = r.lsn
		case recCommit, recAbort:
			get(r.txn).finished = true
		case recCheckpoint, recCkptBegin, recCkptEnd:
			// Checkpoint bracket records carry no page changes; the redo
			// offset recovery starts from comes from the store header, which
			// only ever points at a COMPLETE checkpoint (the slot is
			// published after recCkptEnd is durable).
		case recFullPage:
			// Restore the image unconditionally: the on-disk page may be a
			// torn mix of two states whose LSN field cannot be trusted.
			// The image carries the correct page LSN; records after it in
			// the log replay on top under the normal LSN guard.
			if err := s.applyFullPage(r); err != nil {
				return err
			}
		case recCLR:
			st := get(r.txn)
			st.lastLSN = r.lsn
			// A CLR both redoes its compensation and cancels the undo of
			// the original record (everything at or after undoNext is
			// already compensated).
			var remaining []*logRecord
			for _, u := range st.updates {
				if u.lsn <= r.undoNext {
					remaining = append(remaining, u)
				}
			}
			st.updates = remaining
			if err := s.redoIfNeeded(r.comp, r.lsn); err != nil {
				return err
			}
		default:
			st := get(r.txn)
			st.lastLSN = r.lsn
			switch r.typ {
			case recInsert, recDelete, recSetBytes:
				st.updates = append(st.updates, r)
			}
			if err := s.redoIfNeeded(r, r.lsn); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Undo losers.
	for id, st := range txns {
		if st.finished {
			continue
		}
		t := &Txn{s: s, id: id, lastLSN: st.lastLSN, began: true}
		for i := len(st.updates) - 1; i >= 0; i-- {
			if err := s.undoRecord(t, st.updates[i]); err != nil {
				return err
			}
		}
		s.log.append(&logRecord{typ: recAbort, txn: id, prevLSN: t.lastLSN})
	}
	if maxTxn >= s.nextTxn.Load() {
		s.nextTxn.Store(maxTxn + 1)
	}
	return nil
}

// applyFullPage overwrites a page with its logged image (redo-only). The
// image bytes include the page's LSN as of the snapshot, so the LSN guard
// of subsequent records keeps working after the restore.
func (s *Store) applyFullPage(r *logRecord) error {
	if len(r.after) != PageSize {
		return fmt.Errorf("store: full-page image for page %d has %d bytes", r.page, len(r.after))
	}
	f, err := s.pageForRedo(r.page)
	if err != nil {
		return err
	}
	f.latch.Lock()
	copy(f.pg.buf, r.after)
	f.latch.Unlock()
	s.pool.unpin(f, true)
	return nil
}

// redoIfNeeded applies a record unless the target page is already current.
// Multi-page records (batch deletes) delegate per-page checking to the
// apply path, which never regresses a page LSN.
func (s *Store) redoIfNeeded(r *logRecord, lsn uint64) error {
	switch r.typ {
	case recInsert, recDelete, recSetBytes, recFormatPage, recChain, recSetFlags:
		f, err := s.pageForRedo(r.page)
		if err != nil {
			return err
		}
		current := f.pg.lsn() >= lsn
		s.pool.unpin(f, false)
		if current {
			return nil
		}
		return s.applyRedo(r, lsn)
	case recBatchDelete:
		return s.applyRedo(r, lsn)
	}
	return nil
}
