package store

import (
	"bytes"
)

// BTree is an in-memory B+tree over []byte keys, the index structure behind
// materialized slices and scheduler state (paper Sec. 4.3: "similar to the
// materialized views concept ... for example using a B-Tree indexed by the
// slice key"). Demaq indexes are derived data: they are rebuilt from the
// logged heaps at startup rather than logged themselves, so the tree keeps
// no page images or WAL hooks.
//
// Keys are unique; Insert overwrites. Values are opaque bytes. The zero
// value is not usable; call NewBTree.
type BTree struct {
	root   *btNode
	degree int
	size   int
}

// btNode is a B+tree node. Leaves hold vals and are chained via next.
type btNode struct {
	leaf bool
	keys [][]byte
	// interior: len(children) == len(keys)+1
	children []*btNode
	// leaf payloads
	vals [][]byte
	next *btNode
}

// NewBTree returns an empty tree with the default fanout.
func NewBTree() *BTree { return NewBTreeDegree(64) }

// NewBTreeDegree returns an empty tree with at most 2*degree-1 keys per
// node.
func NewBTreeDegree(degree int) *BTree {
	if degree < 2 {
		degree = 2
	}
	return &BTree{root: &btNode{leaf: true}, degree: degree}
}

// Len returns the number of keys.
func (t *BTree) Len() int { return t.size }

func (n *btNode) findKey(key []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	found := lo < len(n.keys) && bytes.Equal(n.keys[lo], key)
	return lo, found
}

// childIndex returns the child to descend into for key.
func (n *btNode) childIndex(key []byte) int {
	i, found := n.findKey(key)
	if found {
		return i + 1 // separator keys equal the smallest key of the right subtree
	}
	return i
}

// Get returns the value for key.
func (t *BTree) Get(key []byte) ([]byte, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(key)]
	}
	i, found := n.findKey(key)
	if !found {
		return nil, false
	}
	return n.vals[i], true
}

// Insert sets key to val, returning whether the key was new.
func (t *BTree) Insert(key, val []byte) bool {
	key = append([]byte(nil), key...)
	maxKeys := 2*t.degree - 1
	if len(t.root.keys) == maxKeys {
		old := t.root
		t.root = &btNode{children: []*btNode{old}}
		t.splitChild(t.root, 0)
	}
	inserted := t.insertNonFull(t.root, key, val)
	if inserted {
		t.size++
	}
	return inserted
}

func (t *BTree) insertNonFull(n *btNode, key, val []byte) bool {
	if n.leaf {
		i, found := n.findKey(key)
		if found {
			n.vals[i] = val
			return false
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		return true
	}
	ci := n.childIndex(key)
	if len(n.children[ci].keys) == 2*t.degree-1 {
		t.splitChild(n, ci)
		if bytes.Compare(key, n.keys[ci]) >= 0 {
			ci++
		}
	}
	return t.insertNonFull(n.children[ci], key, val)
}

// splitChild splits the full child at index ci of interior node n.
func (t *BTree) splitChild(n *btNode, ci int) {
	child := n.children[ci]
	mid := t.degree - 1
	right := &btNode{leaf: child.leaf}
	var sep []byte
	if child.leaf {
		// Leaf split: right keeps keys[mid:], separator is right's first key.
		right.keys = append(right.keys, child.keys[mid:]...)
		right.vals = append(right.vals, child.vals[mid:]...)
		child.keys = child.keys[:mid]
		child.vals = child.vals[:mid]
		right.next = child.next
		child.next = right
		sep = right.keys[0]
	} else {
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid]
		child.children = child.children[:mid+1]
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
}

// Delete removes key, reporting whether it existed. Deletion is lazy:
// leaves may underflow (the classic approach of production B-trees that
// rely on reinsertion patterns; Demaq slice churn reuses freed cells via
// subsequent inserts).
func (t *BTree) Delete(key []byte) bool {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(key)]
	}
	i, found := n.findKey(key)
	if !found {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.size--
	return true
}

// Scan visits keys in [lo, hi) in order; nil bounds are open. fn returns
// false to stop. The leaf chain makes range scans sequential, which is what
// slice access relies on.
func (t *BTree) Scan(lo, hi []byte, fn func(key, val []byte) bool) {
	n := t.root
	for !n.leaf {
		if lo == nil {
			n = n.children[0]
		} else {
			n = n.children[n.childIndex(lo)]
		}
	}
	i := 0
	if lo != nil {
		i, _ = n.findKey(lo)
	}
	for n != nil {
		for ; i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// ScanPrefix visits all keys with the given prefix.
func (t *BTree) ScanPrefix(prefix []byte, fn func(key, val []byte) bool) {
	hi := prefixEnd(prefix)
	t.Scan(prefix, hi, fn)
}

// prefixEnd returns the smallest key greater than every key with the
// prefix, or nil if no such key exists.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
