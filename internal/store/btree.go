package store

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// BTree is an in-memory B+tree over []byte keys, the index structure behind
// materialized slices and scheduler state (paper Sec. 4.3: "similar to the
// materialized views concept ... for example using a B-Tree indexed by the
// slice key"). Demaq indexes are derived data: they are rebuilt from the
// logged heaps at startup rather than logged themselves, so the tree keeps
// no page images or WAL hooks.
//
// The tree is safe for concurrent use with reader parallelism (experiment
// E14): a root-level reader/writer lock admits any number of concurrent
// readers, and leaf-level latches let non-splitting inserts and lazy
// deletes run under the shared root lock too — writers go exclusive only
// for structure modifications (splits). Interior nodes and leaf chain
// pointers change only under the exclusive root lock, so readers holding
// the shared lock navigate them without latching; leaf key/value slices
// are read and written under the leaf latch. Scan callbacks run while a
// leaf latch is held and must not call back into the same tree.
//
// Keys are unique; Insert overwrites. Values are opaque bytes. The zero
// value is not usable; call NewBTree.
type BTree struct {
	latch  sync.RWMutex // root lock: shared for navigation, exclusive for splits
	root   *btNode
	degree int
	size   atomic.Int64
}

// btNode is a B+tree node. Leaves hold vals and are chained via next.
// The mu latch guards keys/vals of leaves; interior nodes are only
// modified under the tree's exclusive root lock and need no latch.
type btNode struct {
	mu   sync.Mutex
	leaf bool
	keys [][]byte
	// interior: len(children) == len(keys)+1
	children []*btNode
	// leaf payloads
	vals [][]byte
	next *btNode
}

// NewBTree returns an empty tree with the default fanout.
func NewBTree() *BTree { return NewBTreeDegree(64) }

// NewBTreeDegree returns an empty tree with at most 2*degree-1 keys per
// node.
func NewBTreeDegree(degree int) *BTree {
	if degree < 2 {
		degree = 2
	}
	return &BTree{root: &btNode{leaf: true}, degree: degree}
}

// Len returns the number of keys.
func (t *BTree) Len() int { return int(t.size.Load()) }

func (n *btNode) findKey(key []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	found := lo < len(n.keys) && bytes.Equal(n.keys[lo], key)
	return lo, found
}

// childIndex returns the child to descend into for key.
func (n *btNode) childIndex(key []byte) int {
	i, found := n.findKey(key)
	if found {
		return i + 1 // separator keys equal the smallest key of the right subtree
	}
	return i
}

// descend walks interior nodes to the leaf for key; the caller holds the
// root lock (shared or exclusive), under which interior nodes are stable.
func (t *BTree) descend(key []byte) *btNode {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(key)]
	}
	return n
}

// Get returns the value for key.
func (t *BTree) Get(key []byte) ([]byte, bool) {
	t.latch.RLock()
	defer t.latch.RUnlock()
	n := t.descend(key)
	n.mu.Lock()
	defer n.mu.Unlock()
	i, found := n.findKey(key)
	if !found {
		return nil, false
	}
	return n.vals[i], true
}

// Insert sets key to val, returning whether the key was new. The fast path
// — the leaf has room — runs under the shared root lock with only the leaf
// latched; a full leaf escalates to the exclusive root lock and splits.
func (t *BTree) Insert(key, val []byte) bool {
	key = append([]byte(nil), key...)
	maxKeys := 2*t.degree - 1

	t.latch.RLock()
	n := t.descend(key)
	n.mu.Lock()
	if len(n.keys) < maxKeys {
		inserted := n.leafInsert(key, val)
		n.mu.Unlock()
		t.latch.RUnlock()
		if inserted {
			t.size.Add(1)
		}
		return inserted
	}
	// Overwrites of existing keys fit without splitting even in a full leaf.
	if i, found := n.findKey(key); found {
		n.vals[i] = val
		n.mu.Unlock()
		t.latch.RUnlock()
		return false
	}
	n.mu.Unlock()
	t.latch.RUnlock()

	// Split path: exclusive over the whole structure.
	t.latch.Lock()
	defer t.latch.Unlock()
	if len(t.root.keys) == maxKeys {
		old := t.root
		t.root = &btNode{children: []*btNode{old}}
		t.splitChild(t.root, 0)
	}
	inserted := t.insertNonFull(t.root, key, val)
	if inserted {
		t.size.Add(1)
	}
	return inserted
}

// leafInsert places key/val in a leaf with room; caller holds the leaf
// latch. Returns whether the key was new.
func (n *btNode) leafInsert(key, val []byte) bool {
	i, found := n.findKey(key)
	if found {
		n.vals[i] = val
		return false
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.vals = append(n.vals, nil)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = val
	return true
}

// insertNonFull is the exclusive-lock insertion path (splits allowed).
func (t *BTree) insertNonFull(n *btNode, key, val []byte) bool {
	if n.leaf {
		return n.leafInsert(key, val)
	}
	ci := n.childIndex(key)
	if len(n.children[ci].keys) == 2*t.degree-1 {
		t.splitChild(n, ci)
		if bytes.Compare(key, n.keys[ci]) >= 0 {
			ci++
		}
	}
	return t.insertNonFull(n.children[ci], key, val)
}

// splitChild splits the full child at index ci of interior node n; the
// caller holds the exclusive root lock.
func (t *BTree) splitChild(n *btNode, ci int) {
	child := n.children[ci]
	mid := t.degree - 1
	right := &btNode{leaf: child.leaf}
	var sep []byte
	if child.leaf {
		// Leaf split: right keeps keys[mid:], separator is right's first key.
		right.keys = append(right.keys, child.keys[mid:]...)
		right.vals = append(right.vals, child.vals[mid:]...)
		child.keys = child.keys[:mid]
		child.vals = child.vals[:mid]
		right.next = child.next
		child.next = right
		sep = right.keys[0]
	} else {
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid]
		child.children = child.children[:mid+1]
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
}

// Delete removes key, reporting whether it existed. Deletion is lazy:
// leaves may underflow (the classic approach of production B-trees that
// rely on reinsertion patterns; Demaq slice churn reuses freed cells via
// subsequent inserts), which is why it always fits under the shared root
// lock plus the leaf latch.
func (t *BTree) Delete(key []byte) bool {
	t.latch.RLock()
	defer t.latch.RUnlock()
	n := t.descend(key)
	n.mu.Lock()
	defer n.mu.Unlock()
	i, found := n.findKey(key)
	if !found {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.size.Add(-1)
	return true
}

// Scan visits keys in [lo, hi) in order; nil bounds are open. fn returns
// false to stop. The leaf chain makes range scans sequential, which is what
// slice access relies on. The walk latches one leaf at a time under the
// shared root lock; fn must not call back into the same tree.
func (t *BTree) Scan(lo, hi []byte, fn func(key, val []byte) bool) {
	t.latch.RLock()
	defer t.latch.RUnlock()
	n := t.root
	for !n.leaf {
		if lo == nil {
			n = n.children[0]
		} else {
			n = n.children[n.childIndex(lo)]
		}
	}
	for n != nil {
		n.mu.Lock()
		i := 0
		if lo != nil {
			i, _ = n.findKey(lo)
		}
		for ; i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				n.mu.Unlock()
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				n.mu.Unlock()
				return
			}
		}
		next := n.next // stable under the shared root lock
		n.mu.Unlock()
		n = next
		lo = nil
	}
}

// ScanPrefix visits all keys with the given prefix.
func (t *BTree) ScanPrefix(prefix []byte, fn func(key, val []byte) bool) {
	hi := prefixEnd(prefix)
	t.Scan(prefix, hi, fn)
}

// ScanPrefixFrom visits the keys with the given prefix starting at lo
// (inclusive; lo must itself carry the prefix). It bounds an id-suffixed
// index scan from below without giving up the exact prefix upper bound.
func (t *BTree) ScanPrefixFrom(prefix, lo []byte, fn func(key, val []byte) bool) {
	t.Scan(lo, prefixEnd(prefix), fn)
}

// prefixEnd returns the smallest key greater than every key with the
// prefix, or nil if no such key exists.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
