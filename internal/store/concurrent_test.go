package store

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentCommits drives the group-commit path directly: parallel
// transactions insert and commit with SyncCommits on; every record must be
// durable across a crash, and the WAL must never fsync more often than it
// commits.
func TestConcurrentCommits(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.CreateHeap("q")
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := s.Begin()
				if _, err := tx.Insert(h, []byte(fmt.Sprintf("rec-%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.WALFsyncs > st.Commits {
		t.Fatalf("fsyncs %d > commits %d", st.WALFsyncs, st.Commits)
	}
	s.CrashForTest()

	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, ok := s2.Heap("q")
	if !ok {
		t.Fatal("heap lost")
	}
	count := 0
	if err := s2.Scan(h2, func(_ RID, _ []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != workers*perWorker {
		t.Fatalf("recovered %d records, want %d", count, workers*perWorker)
	}
}

// TestConcurrentCommitAndAbort mixes committing and aborting transactions
// running in parallel; aborted inserts must not survive recovery.
func TestConcurrentCommitAndAbort(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, _ := s.CreateHeap("q")
	const workers, perWorker = 6, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := s.Begin()
				if _, err := tx.Insert(h, []byte(fmt.Sprintf("r-%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
				if w%2 == 0 {
					if err := tx.Commit(); err != nil {
						t.Error(err)
					}
				} else {
					if err := tx.Abort(); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	s.CrashForTest()

	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, _ := s2.Heap("q")
	count := 0
	if err := s2.Scan(h2, func(_ RID, _ []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	want := (workers / 2) * perWorker
	if count != want {
		t.Fatalf("recovered %d records, want %d (aborts must not survive)", count, want)
	}
}
