package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentCommits drives the group-commit path directly: parallel
// transactions insert and commit with SyncCommits on; every record must be
// durable across a crash, and the WAL must never fsync more often than it
// commits.
func TestConcurrentCommits(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.CreateHeap("q")
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := s.Begin()
				if _, err := tx.Insert(h, []byte(fmt.Sprintf("rec-%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.WALFsyncs > st.Commits {
		t.Fatalf("fsyncs %d > commits %d", st.WALFsyncs, st.Commits)
	}
	s.CrashForTest()

	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, ok := s2.Heap("q")
	if !ok {
		t.Fatal("heap lost")
	}
	count := 0
	if err := s2.Scan(h2, func(_ RID, _ []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != workers*perWorker {
		t.Fatalf("recovered %d records, want %d", count, workers*perWorker)
	}
}

// TestConcurrentCommitAndAbort mixes committing and aborting transactions
// running in parallel; aborted inserts must not survive recovery.
func TestConcurrentCommitAndAbort(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, _ := s.CreateHeap("q")
	const workers, perWorker = 6, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := s.Begin()
				if _, err := tx.Insert(h, []byte(fmt.Sprintf("r-%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
				if w%2 == 0 {
					if err := tx.Commit(); err != nil {
						t.Error(err)
					}
				} else {
					if err := tx.Abort(); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	s.CrashForTest()

	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, _ := s2.Heap("q")
	count := 0
	if err := s2.Scan(h2, func(_ RID, _ []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	want := (workers / 2) * perWorker
	if count != want {
		t.Fatalf("recovered %d records, want %d (aborts must not survive)", count, want)
	}
}

// TestReadWhileInsert drives the fine-grained latching directly: readers
// hammer committed records while writers keep appending to the same heap
// (shared tail pages) and to a second heap. Every read must return the
// exact committed payload — torn reads would mean a missing page latch.
func TestReadWhileInsert(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h, _ := s.CreateHeap("hot")
	h2, _ := s.CreateHeap("cold")

	// Seed committed records, including overflow-sized payloads.
	type seeded struct {
		rid  RID
		data []byte
	}
	var seeds []seeded
	tx := s.Begin()
	for i := 0; i < 64; i++ {
		size := 100 + (i%8)*2500 // crosses the overflow threshold
		data := bytes.Repeat([]byte{byte('a' + i%26)}, size)
		rid, err := tx.Insert(h, data)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, seeded{rid, data})
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var writers, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			heap := h
			if w%2 == 1 {
				heap = h2
			}
			for i := 0; i < 200; i++ {
				tx := s.Begin()
				if _, err := tx.Insert(heap, []byte(fmt.Sprintf("w-%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for !stop.Load() {
				sd := seeds[rng.Intn(len(seeds))]
				got, err := s.Read(sd.rid)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, sd.data) {
					t.Errorf("torn read at %s: got %d bytes, want %d", sd.rid, len(got), len(sd.data))
					return
				}
			}
		}(r)
	}
	writers.Wait()
	stop.Store(true)
	readers.Wait()

	// All writer records durable and intact.
	count := 0
	if err := s.Scan(h2, func(_ RID, _ []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 2*200 {
		t.Fatalf("cold heap has %d records, want %d", count, 400)
	}
}

// TestReadWhileEvict forces constant buffer-pool eviction (pool far smaller
// than the working set) while parallel readers and an inserter run: cold
// reads must reload evicted pages correctly, and eviction write-back must
// respect the WAL rule even with I/O running outside the pool mutexes.
func TestReadWhileEvict(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.BufferPages = 16 // one frame per pool shard
	opts.SyncCommits = false
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h, _ := s.CreateHeap("q")
	payload := bytes.Repeat([]byte("x"), 3000) // ~2 records per page
	var rids []RID
	tx := s.Begin()
	for i := 0; i < 400; i++ {
		rid, err := tx.Insert(h, append(payload, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 300; i++ {
				idx := rng.Intn(len(rids))
				got, err := s.Read(rids[idx])
				if err != nil {
					t.Error(err)
					return
				}
				if len(got) != len(payload)+1 || got[len(got)-1] != byte(idx) {
					t.Errorf("wrong payload for record %d", idx)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() { // concurrent inserter keeps dirtying pages during eviction
		defer wg.Done()
		for i := 0; i < 100; i++ {
			tx := s.Begin()
			if _, err := tx.Insert(h, []byte(fmt.Sprintf("dirty-%d", i))); err != nil {
				t.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if ev := s.Stats().Evictions; ev == 0 {
		t.Fatalf("expected evictions with a %d-page pool over a larger working set", opts.BufferPages)
	}
}

// TestBTreeConcurrentReadInsert stresses the tree's root-lock/leaf-latch
// protocol: parallel inserters (forcing splits), deleters, point readers
// and range scanners run together under -race.
func TestBTreeConcurrentReadInsert(t *testing.T) {
	tr := NewBTreeDegree(4) // tiny fanout: splits happen constantly
	const n = 2000
	key := func(i int) []byte { return []byte(fmt.Sprintf("k%06d", i)) }

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				tr.Insert(key(i), []byte(fmt.Sprintf("v%d", i)))
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 4000; i++ {
				k := key(rng.Intn(n))
				if v, ok := tr.Get(k); ok && len(v) == 0 {
					t.Error("present key with empty value")
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() { // range scanner
		defer wg.Done()
		for i := 0; i < 200; i++ {
			prev := []byte(nil)
			tr.Scan(nil, nil, func(k, _ []byte) bool {
				if prev != nil && bytes.Compare(prev, k) > 0 {
					t.Error("scan out of order")
					return false
				}
				prev = append(prev[:0], k...)
				return true
			})
		}
	}()
	wg.Wait()

	if tr.Len() != n {
		t.Fatalf("size %d after concurrent inserts, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		if _, ok := tr.Get(key(i)); !ok {
			t.Fatalf("key %d lost", i)
		}
	}

	// Concurrent deleters against readers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				if !tr.Delete(key(i)) {
					t.Errorf("delete of present key %d failed", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 0 {
		t.Fatalf("size %d after deleting everything", tr.Len())
	}
}

// TestReadWhileDeleteOverflow races readers of overflow records against
// their deletion: a reader that saw the record's live slot must reassemble
// the full payload even if the delete commits (and frees the chain) while
// the reader walks it — the record page's read latch, held across the
// walk, fences commit-time chain frees. A reader that arrives after the
// slot died gets a clean not-found; "missing overflow chunk" or a spliced
// payload would mean the fence is gone.
func TestReadWhileDeleteOverflow(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.SyncCommits = false
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h, _ := s.CreateHeap("q")

	const rounds = 30
	for round := 0; round < rounds; round++ {
		// Two overflow records with distinct fill bytes and equal sizes, so
		// a chain page recycled from one into the other would splice
		// silently if the fence were missing.
		payloadA := bytes.Repeat([]byte{'A'}, 40<<10)
		payloadB := bytes.Repeat([]byte{'B'}, 40<<10)
		tx := s.Begin()
		ridA, err := tx.Insert(h, payloadA)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sawB := false
				for !sawB {
					got, err := s.Read(ridA)
					if err != nil {
						if errors.Is(err, errRecordNotFound) {
							return // slot died before we saw it: fine
						}
						t.Errorf("round %d: broken chain read: %v", round, err)
						return
					}
					switch {
					case bytes.Equal(got, payloadA):
						// pre-delete view, complete
					case bytes.Equal(got, payloadB):
						// the dead slot was recycled for B: legitimate RID
						// reuse, but it must be ALL of B — stop reading, the
						// RID now names the new record
						sawB = true
					default:
						t.Errorf("round %d: spliced payload (len %d)", round, len(got))
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() { // delete A (freeing its chain) and reuse the pages for B
			defer wg.Done()
			tx := s.Begin()
			if err := tx.Delete(h, ridA); err != nil {
				t.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
			tx = s.Begin()
			if _, err := tx.Insert(h, payloadB); err != nil {
				t.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
			}
		}()
		wg.Wait()
		if t.Failed() {
			return
		}
	}
}

// TestCrashRecoveryAfterConcurrentWorkload runs a mixed concurrent workload
// — commits, aborts, deletes of earlier records — crashes without
// checkpoint, and verifies the recovered state: every committed insert
// survives (minus committed deletes), no aborted insert does.
func TestCrashRecoveryAfterConcurrentWorkload(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.BufferPages = 32 // force eviction write-back during the workload
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := s.CreateHeap("q")

	var mu sync.Mutex
	expect := map[string]bool{} // payload → must survive
	var deletable []RID

	const workers, perWorker = 8, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				payload := fmt.Sprintf("rec-%d-%d", w, i)
				tx := s.Begin()
				rid, err := tx.Insert(h, []byte(payload))
				if err != nil {
					t.Error(err)
					return
				}
				switch {
				case i%3 == 2: // abort
					if err := tx.Abort(); err != nil {
						t.Error(err)
						return
					}
				default:
					if err := tx.Commit(); err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					expect[payload] = true
					if i%5 == 0 {
						deletable = append(deletable, rid)
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	// Delete a committed subset concurrently with fresh inserts.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			tx := s.Begin()
			payload := fmt.Sprintf("late-%d", i)
			if _, err := tx.Insert(h, []byte(payload)); err != nil {
				t.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			expect[payload] = true
			mu.Unlock()
		}
	}()
	go func() {
		defer wg.Done()
		mu.Lock()
		rids := append([]RID(nil), deletable...)
		mu.Unlock()
		if err := s.BatchDelete(h, rids); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	mu.Lock()
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i += 5 {
			if i%3 != 2 {
				delete(expect, fmt.Sprintf("rec-%d-%d", w, i))
			}
		}
	}
	want := len(expect)
	mu.Unlock()

	s.CrashForTest()

	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, ok := s2.Heap("q")
	if !ok {
		t.Fatal("heap lost")
	}
	got := map[string]bool{}
	if err := s2.Scan(h2, func(_ RID, payload []byte) bool {
		got[string(payload)] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Fatalf("recovered %d records, want %d", len(got), want)
	}
	for payload := range expect {
		if !got[payload] {
			t.Fatalf("committed record %q lost in recovery", payload)
		}
	}
}
