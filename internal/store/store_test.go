package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTemp(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestHeapInsertRead(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, err := s.CreateHeap("q1")
	if err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	rid, err := tx.Insert(h, []byte("hello world"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	data, err := s.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" {
		t.Fatalf("read back %q", data)
	}
}

func TestHeapManyRecordsScanOrder(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, _ := s.CreateHeap("q")
	const n = 2000
	tx := s.Begin()
	for i := 0; i < n; i++ {
		if _, err := tx.Insert(h, []byte(fmt.Sprintf("record-%06d-%s", i, bytes.Repeat([]byte("x"), 50)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	i := 0
	err := s.Scan(h, func(_ RID, data []byte) bool {
		want := fmt.Sprintf("record-%06d", i)
		if string(data[:len(want)]) != want {
			t.Fatalf("scan order broken at %d: %q", i, data[:20])
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scanned %d records, want %d", i, n)
	}
}

func TestOverflowRecords(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, _ := s.CreateHeap("big")
	sizes := []int{inlineMax, inlineMax + 1, PageSize * 2, PageSize*3 + 17, 100_000}
	var rids []RID
	tx := s.Begin()
	for _, size := range sizes {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i % 251)
		}
		rid, err := tx.Insert(h, payload)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i, size := range sizes {
		data, err := s.Read(rids[i])
		if err != nil {
			t.Fatalf("read size %d: %v", size, err)
		}
		if len(data) != size {
			t.Fatalf("size %d: got %d", size, len(data))
		}
		for j := range data {
			if data[j] != byte(j%251) {
				t.Fatalf("size %d: corruption at byte %d", size, j)
			}
		}
	}
}

func TestDeleteAndSetByte(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	r1, _ := tx.Insert(h, []byte{0, 'a', 'b'})
	r2, _ := tx.Insert(h, []byte{0, 'c', 'd'})
	tx.Commit()

	tx = s.Begin()
	if err := tx.Delete(h, r1); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetByte(r2, 0, 1); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	if _, err := s.Read(r1); err == nil {
		t.Fatal("deleted record should not read")
	}
	data, _ := s.Read(r2)
	if data[0] != 1 {
		t.Fatal("SetByte not applied")
	}
	n := 0
	s.Scan(h, func(RID, []byte) bool { n++; return true })
	if n != 1 {
		t.Fatalf("live records = %d", n)
	}
}

func TestAbortUndo(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	keep, _ := tx.Insert(h, []byte{0, 'k'})
	tx.Commit()

	tx = s.Begin()
	if _, err := tx.Insert(h, []byte{0, 'n'}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(h, keep); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetByte(keep, 0, 9); err == nil {
		// SetByte on deleted record must fail
		t.Fatal("SetByte on deleted record should fail")
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	// After abort: keep exists with original value, new record gone.
	data, err := s.Read(keep)
	if err != nil || data[0] != 0 || data[1] != 'k' {
		t.Fatalf("undo failed: %v %v", data, err)
	}
	n := 0
	s.Scan(h, func(RID, []byte) bool { n++; return true })
	if n != 1 {
		t.Fatalf("live records after abort = %d", n)
	}
}

func TestAbortUndoSetByte(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	rid, _ := tx.Insert(h, []byte{7, 'x'})
	tx.Commit()
	tx = s.Begin()
	tx.SetByte(rid, 0, 42)
	tx.Abort()
	data, _ := s.Read(rid)
	if data[0] != 7 {
		t.Fatalf("SetByte undo: %d", data[0])
	}
}

func TestCrashRecoveryCommitted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, _ := tx.Insert(h, []byte(fmt.Sprintf("msg-%d", i)))
		rids = append(rids, rid)
	}
	tx.Commit()
	s.CrashForTest() // dirty pages lost; WAL survives

	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, ok := s2.Heap("q")
	if !ok {
		t.Fatal("heap lost after crash")
	}
	n := 0
	s2.Scan(h2, func(_ RID, data []byte) bool {
		want := fmt.Sprintf("msg-%d", n)
		if string(data) != want {
			t.Fatalf("record %d = %q", n, data)
		}
		n++
		return true
	})
	if n != 100 {
		t.Fatalf("recovered %d records, want 100", n)
	}
	// And RIDs are stable.
	data, err := s2.Read(rids[42])
	if err != nil || string(data) != "msg-42" {
		t.Fatalf("RID stability: %q %v", data, err)
	}
}

func TestCrashRecoveryUncommittedUndone(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, DefaultOptions())
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	tx.Insert(h, []byte("committed"))
	tx.Commit()

	tx2 := s.Begin()
	tx2.Insert(h, []byte("uncommitted"))
	// Force the WAL out (as if another commit flushed it) without
	// committing tx2, then crash.
	s.log.flush(^uint64(0) >> 1)
	s.CrashForTest()

	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, _ := s2.Heap("q")
	var seen []string
	s2.Scan(h2, func(_ RID, data []byte) bool {
		seen = append(seen, string(data))
		return true
	})
	if len(seen) != 1 || seen[0] != "committed" {
		t.Fatalf("loser not undone: %v", seen)
	}
}

func TestCrashRecoveryOverflow(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, DefaultOptions())
	h, _ := s.CreateHeap("q")
	big := bytes.Repeat([]byte("payload!"), 8000) // 64 KB
	tx := s.Begin()
	rid, _ := tx.Insert(h, big)
	tx.Commit()
	s.CrashForTest()

	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	data, err := s2.Read(rid)
	if err != nil || !bytes.Equal(data, big) {
		t.Fatalf("overflow recovery: len=%d err=%v", len(data), err)
	}
}

func TestRecoveryIdempotentDoubleCrash(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, DefaultOptions())
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	tx.Insert(h, []byte("a"))
	tx.Commit()
	s.CrashForTest()

	// First recovery, then crash again immediately.
	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := s2.Heap("q")
	tx = s2.Begin()
	tx.Insert(h2, []byte("b"))
	tx.Commit()
	s2.CrashForTest()

	s3, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	h3, _ := s3.Heap("q")
	var seen []string
	s3.Scan(h3, func(_ RID, data []byte) bool {
		seen = append(seen, string(data))
		return true
	})
	if len(seen) != 2 || seen[0] != "a" || seen[1] != "b" {
		t.Fatalf("double crash recovery: %v", seen)
	}
}

func TestBatchDeleteUnloggedVsLogged(t *testing.T) {
	// The E3 claim: retention-based batch deletes produce far less log than
	// before-image deletes.
	run := func(unlogged bool) uint64 {
		opts := DefaultOptions()
		opts.SyncCommits = false
		opts.UnloggedDeletes = unlogged
		s := openTemp(t, opts)
		h, _ := s.CreateHeap("q")
		payload := bytes.Repeat([]byte("m"), 1000)
		var rids []RID
		tx := s.Begin()
		for i := 0; i < 200; i++ {
			rid, _ := tx.Insert(h, payload)
			rids = append(rids, rid)
		}
		tx.Commit()
		before := s.LogBytes()
		if err := s.BatchDelete(h, rids); err != nil {
			t.Fatal(err)
		}
		return s.LogBytes() - before
	}
	unlogged := run(true)
	logged := run(false)
	if unlogged*10 > logged {
		t.Fatalf("unlogged deletes should be >10x smaller: unlogged=%d logged=%d", unlogged, logged)
	}
}

func TestBatchDeleteSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, DefaultOptions())
	h, _ := s.CreateHeap("q")
	var rids []RID
	tx := s.Begin()
	for i := 0; i < 50; i++ {
		rid, _ := tx.Insert(h, []byte(fmt.Sprintf("m%d", i)))
		rids = append(rids, rid)
	}
	tx.Commit()
	if err := s.BatchDelete(h, rids[:25]); err != nil {
		t.Fatal(err)
	}
	s.CrashForTest()

	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, _ := s2.Heap("q")
	n := 0
	s2.Scan(h2, func(RID, []byte) bool { n++; return true })
	if n != 25 {
		t.Fatalf("after batch delete + crash: %d records, want 25", n)
	}
}

func TestPageReclamation(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, _ := s.CreateHeap("q")
	payload := bytes.Repeat([]byte("x"), 2000)
	var rids []RID
	tx := s.Begin()
	for i := 0; i < 400; i++ { // ~100 pages
		rid, _ := tx.Insert(h, payload)
		rids = append(rids, rid)
	}
	tx.Commit()
	grown := s.Stats().PageCount
	if err := s.BatchDelete(h, rids); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FreePages < int(grown)/2 {
		t.Fatalf("expected most pages reclaimed: free=%d of %d", st.FreePages, grown)
	}
	// Freed pages are reused by new inserts.
	tx = s.Begin()
	for i := 0; i < 400; i++ {
		tx.Insert(h, payload)
	}
	tx.Commit()
	if after := s.Stats().PageCount; after > grown+8 {
		t.Fatalf("free pages not reused: before=%d after=%d", grown, after)
	}
}

func TestCheckpointBoundsLiveLog(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	tx.Insert(h, bytes.Repeat([]byte("y"), 500))
	tx.Commit()
	before := s.LiveLogBytes()
	if before == 0 {
		t.Fatal("log should have live content")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A single fuzzy checkpoint leaves its bracket records plus the
	// full-page images of the pages it wrote back live (they sit after the
	// redo point for torn-page protection), so the window is bounded by the
	// dirty-page count — not by workload history. A second checkpoint with
	// no intervening writes has nothing dirty and collapses the live window
	// to its own brackets.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	live := s.LiveLogBytes()
	if live > 256 {
		t.Fatalf("fuzzy checkpoint should bound the live log: before=%d after=%d", before, live)
	}
	// A sharp checkpoint quiesces the store and leaves nothing live at all.
	if err := s.SharpCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if live := s.LiveLogBytes(); live != 0 {
		t.Fatalf("sharp checkpoint should leave zero live bytes, got %d", live)
	}
	// Data survives checkpoint + reopen.
	n := 0
	s.Scan(h, func(RID, []byte) bool { n++; return true })
	if n != 1 {
		t.Fatal("data lost at checkpoint")
	}
}

func TestBufferPoolEviction(t *testing.T) {
	opts := DefaultOptions()
	opts.BufferPages = 16
	opts.SyncCommits = false
	s := openTemp(t, opts)
	h, _ := s.CreateHeap("q")
	payload := bytes.Repeat([]byte("z"), 4000)
	tx := s.Begin()
	var rids []RID
	for i := 0; i < 100; i++ { // ~50 pages >> 16 frames
		rid, err := tx.Insert(h, payload)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	tx.Commit()
	if s.Stats().Evictions == 0 {
		t.Fatal("expected evictions with a small pool")
	}
	// All records readable back through the small pool.
	for _, rid := range rids {
		if _, err := s.Read(rid); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMultipleHeapsIsolated(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h1, _ := s.CreateHeap("a")
	h2, _ := s.CreateHeap("b")
	tx := s.Begin()
	tx.Insert(h1, []byte("in-a"))
	tx.Insert(h2, []byte("in-b"))
	tx.Commit()
	var got []string
	s.Scan(h1, func(_ RID, d []byte) bool { got = append(got, string(d)); return true })
	if len(got) != 1 || got[0] != "in-a" {
		t.Fatalf("heap a: %v", got)
	}
	// Recreating an existing heap returns the same ID.
	h1b, _ := s.CreateHeap("a")
	if h1b != h1 {
		t.Fatal("CreateHeap should be idempotent")
	}
}

// TestOpenShortHeaderFails checks that a truncated store header fails Open
// when the WAL holds records, instead of silently resetting the LSN base to
// zero — which would let stale page LSNs mask the redo of newer log
// records after a checkpoint. Without WAL records nothing was ever
// committed, so the same residue is reformatted as a fresh store.
func TestOpenShortHeaderFails(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "data.db"), []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, _ := frameWAL([]*logRecord{{typ: recBegin, txn: 1}})
	seg := append(segHeaderBytes(1, 0), recs...)
	if err := os.WriteFile(filepath.Join(dir, walSegName(1)), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, DefaultOptions()); err == nil {
		t.Fatal("Open succeeded on a store with a truncated header and non-empty WAL")
	} else if !strings.Contains(err.Error(), "header") {
		t.Fatalf("want header error, got: %v", err)
	}

	// Same truncated data file, empty WAL: a torn initial format, safe to
	// reformat.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "data.db"), []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir2, DefaultOptions())
	if err != nil {
		t.Fatalf("Open should reformat a torn format with empty WAL: %v", err)
	}
	s.Close()
}

// TestOpenEmptyDataFile checks that a zero-length data file — the residue
// of a crash between file creation and the first header write — is treated
// as a fresh store and reformatted.
func TestOpenEmptyDataFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "data.db"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatalf("Open of empty data file: %v", err)
	}
	defer s.Close()
	h, err := s.CreateHeap("q")
	if err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	if _, err := tx.Insert(h, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchDeleteIdempotent re-runs a batch delete over already-deleted
// records in both logging modes: retention re-runs the same batch after a
// crash and must not fail (nor abandon a half-applied internal
// transaction) on rids that are already gone.
func TestBatchDeleteIdempotent(t *testing.T) {
	for _, unlogged := range []bool{true, false} {
		opts := DefaultOptions()
		opts.UnloggedDeletes = unlogged
		s := openTemp(t, opts)
		h, _ := s.CreateHeap("q")
		tx := s.Begin()
		var rids []RID
		for i := 0; i < 10; i++ {
			rid, err := tx.Insert(h, []byte(fmt.Sprintf("r%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			rids = append(rids, rid)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := s.BatchDelete(h, rids[:7]); err != nil {
			t.Fatalf("unlogged=%v first delete: %v", unlogged, err)
		}
		// Overlapping re-run: 5 already gone, 3 still live.
		if err := s.BatchDelete(h, rids[2:]); err != nil {
			t.Fatalf("unlogged=%v re-run over deleted rids: %v", unlogged, err)
		}
		count := 0
		if err := s.Scan(h, func(RID, []byte) bool { count++; return true }); err != nil {
			t.Fatal(err)
		}
		if count != 0 {
			t.Fatalf("unlogged=%v: %d records survived", unlogged, count)
		}
	}
}

// TestRecoveryBatchDeleteSlotReuse pins the per-page LSN invariant for
// unlogged batch deletes: delete a record, let a later committed insert
// reuse its dead slot, force the page to disk (carrying the insert's LSN),
// crash, recover. The batch-delete redo must be masked by the page LSN —
// an out-of-band batch LSN would replay the delete over the newer record
// and lose it.
func TestRecoveryBatchDeleteSlotReuse(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.BufferPages = 8 // tiny pool: filler traffic evicts the reused page
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	ridA, err := tx.Insert(h, []byte("old-record"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.BatchDelete(h, []RID{ridA}); err != nil {
		t.Fatal(err)
	}
	tx = s.Begin()
	ridB, err := tx.Insert(h, []byte("new-record"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if ridB != ridA {
		t.Fatalf("test premise: insert should reuse the dead slot, got %s vs %s", ridB, ridA)
	}
	// Filler traffic forces eviction of the reused page, writing it back
	// with the insert's LSN.
	filler := bytes.Repeat([]byte("f"), 3000)
	tx = s.Begin()
	for i := 0; i < 100; i++ {
		if _, err := tx.Insert(h, filler); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Scan(h, func(RID, []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	s.CrashForTest()

	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Read(ridB)
	if err != nil {
		t.Fatalf("newer record lost in recovery: %v", err)
	}
	if string(got) != "new-record" {
		t.Fatalf("newer record corrupted in recovery: %q", got)
	}
}

// TestRecoveryLargerThanBufferPool recovers a store whose redo working set
// far exceeds the buffer pool, forcing dirty-page eviction (and its WAL
// flush) in the middle of the recovery log scan. wal.scan must not hold
// its mutex across the replay callback, or this self-deadlocks.
func TestRecoveryLargerThanBufferPool(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.BufferPages = 8
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := s.CreateHeap("q")
	payload := bytes.Repeat([]byte("r"), 3000)
	tx := s.Begin()
	const n = 300 // ~150 pages >> pool
	for i := 0; i < n; i++ {
		if _, err := tx.Insert(h, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s.CrashForTest()

	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, _ := s2.Heap("q")
	count := 0
	if err := s2.Scan(h2, func(RID, []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("recovered %d records, want %d", count, n)
	}
}

// TestRecoveryLoserOverflowChunkUndo crashes with an uncommitted overflow
// insert whose payload bytes are all 0x01 — so every logged chunk starts
// with what looks like the inline overflow-record kind byte. Recovery's
// loser undo must not parse chunk payloads as chain headers: doing so
// panicked on short chunks (index out of range on a 3-byte tail chunk)
// or free-listed garbage page chains.
func TestRecoveryLoserOverflowChunkUndo(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, _ := s.CreateHeap("q")
	// Committed record that must survive the loser's undo untouched.
	tx := s.Begin()
	keep, err := tx.Insert(h, []byte("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Loser: spilled insert with a 3-byte tail chunk, all bytes 0x01.
	payload := bytes.Repeat([]byte{1}, overflowPrefix+ovChunkMax+3)
	loser := s.Begin()
	if _, err := loser.Insert(h, payload); err != nil {
		t.Fatal(err)
	}
	// A later commit's group flush makes the loser's buffered records
	// durable, so recovery will see (and undo) them.
	tx2 := s.Begin()
	if _, err := tx2.Insert(h, []byte("flusher")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	s.CrashForTest()

	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatalf("recovery failed on loser overflow undo: %v", err)
	}
	defer s2.Close()
	got, err := s2.Read(keep)
	if err != nil || string(got) != "survivor" {
		t.Fatalf("committed record damaged by loser undo: %q, %v", got, err)
	}
	h2, _ := s2.Heap("q")
	count := 0
	if err := s2.Scan(h2, func(RID, []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 2 { // survivor + flusher; the loser's insert undone
		t.Fatalf("heap has %d records after recovery, want 2", count)
	}
}
