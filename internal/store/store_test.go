package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestHeapInsertRead(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, err := s.CreateHeap("q1")
	if err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	rid, err := tx.Insert(h, []byte("hello world"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	data, err := s.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" {
		t.Fatalf("read back %q", data)
	}
}

func TestHeapManyRecordsScanOrder(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, _ := s.CreateHeap("q")
	const n = 2000
	tx := s.Begin()
	for i := 0; i < n; i++ {
		if _, err := tx.Insert(h, []byte(fmt.Sprintf("record-%06d-%s", i, bytes.Repeat([]byte("x"), 50)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	i := 0
	err := s.Scan(h, func(_ RID, data []byte) bool {
		want := fmt.Sprintf("record-%06d", i)
		if string(data[:len(want)]) != want {
			t.Fatalf("scan order broken at %d: %q", i, data[:20])
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scanned %d records, want %d", i, n)
	}
}

func TestOverflowRecords(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, _ := s.CreateHeap("big")
	sizes := []int{inlineMax, inlineMax + 1, PageSize * 2, PageSize*3 + 17, 100_000}
	var rids []RID
	tx := s.Begin()
	for _, size := range sizes {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i % 251)
		}
		rid, err := tx.Insert(h, payload)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i, size := range sizes {
		data, err := s.Read(rids[i])
		if err != nil {
			t.Fatalf("read size %d: %v", size, err)
		}
		if len(data) != size {
			t.Fatalf("size %d: got %d", size, len(data))
		}
		for j := range data {
			if data[j] != byte(j%251) {
				t.Fatalf("size %d: corruption at byte %d", size, j)
			}
		}
	}
}

func TestDeleteAndSetByte(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	r1, _ := tx.Insert(h, []byte{0, 'a', 'b'})
	r2, _ := tx.Insert(h, []byte{0, 'c', 'd'})
	tx.Commit()

	tx = s.Begin()
	if err := tx.Delete(h, r1); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetByte(r2, 0, 1); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	if _, err := s.Read(r1); err == nil {
		t.Fatal("deleted record should not read")
	}
	data, _ := s.Read(r2)
	if data[0] != 1 {
		t.Fatal("SetByte not applied")
	}
	n := 0
	s.Scan(h, func(RID, []byte) bool { n++; return true })
	if n != 1 {
		t.Fatalf("live records = %d", n)
	}
}

func TestAbortUndo(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	keep, _ := tx.Insert(h, []byte{0, 'k'})
	tx.Commit()

	tx = s.Begin()
	if _, err := tx.Insert(h, []byte{0, 'n'}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(h, keep); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetByte(keep, 0, 9); err == nil {
		// SetByte on deleted record must fail
		t.Fatal("SetByte on deleted record should fail")
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	// After abort: keep exists with original value, new record gone.
	data, err := s.Read(keep)
	if err != nil || data[0] != 0 || data[1] != 'k' {
		t.Fatalf("undo failed: %v %v", data, err)
	}
	n := 0
	s.Scan(h, func(RID, []byte) bool { n++; return true })
	if n != 1 {
		t.Fatalf("live records after abort = %d", n)
	}
}

func TestAbortUndoSetByte(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	rid, _ := tx.Insert(h, []byte{7, 'x'})
	tx.Commit()
	tx = s.Begin()
	tx.SetByte(rid, 0, 42)
	tx.Abort()
	data, _ := s.Read(rid)
	if data[0] != 7 {
		t.Fatalf("SetByte undo: %d", data[0])
	}
}

func TestCrashRecoveryCommitted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, _ := tx.Insert(h, []byte(fmt.Sprintf("msg-%d", i)))
		rids = append(rids, rid)
	}
	tx.Commit()
	s.CrashForTest() // dirty pages lost; WAL survives

	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, ok := s2.Heap("q")
	if !ok {
		t.Fatal("heap lost after crash")
	}
	n := 0
	s2.Scan(h2, func(_ RID, data []byte) bool {
		want := fmt.Sprintf("msg-%d", n)
		if string(data) != want {
			t.Fatalf("record %d = %q", n, data)
		}
		n++
		return true
	})
	if n != 100 {
		t.Fatalf("recovered %d records, want 100", n)
	}
	// And RIDs are stable.
	data, err := s2.Read(rids[42])
	if err != nil || string(data) != "msg-42" {
		t.Fatalf("RID stability: %q %v", data, err)
	}
}

func TestCrashRecoveryUncommittedUndone(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, DefaultOptions())
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	tx.Insert(h, []byte("committed"))
	tx.Commit()

	tx2 := s.Begin()
	tx2.Insert(h, []byte("uncommitted"))
	// Force the WAL out (as if another commit flushed it) without
	// committing tx2, then crash.
	s.log.flush(^uint64(0) >> 1)
	s.CrashForTest()

	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, _ := s2.Heap("q")
	var seen []string
	s2.Scan(h2, func(_ RID, data []byte) bool {
		seen = append(seen, string(data))
		return true
	})
	if len(seen) != 1 || seen[0] != "committed" {
		t.Fatalf("loser not undone: %v", seen)
	}
}

func TestCrashRecoveryOverflow(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, DefaultOptions())
	h, _ := s.CreateHeap("q")
	big := bytes.Repeat([]byte("payload!"), 8000) // 64 KB
	tx := s.Begin()
	rid, _ := tx.Insert(h, big)
	tx.Commit()
	s.CrashForTest()

	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	data, err := s2.Read(rid)
	if err != nil || !bytes.Equal(data, big) {
		t.Fatalf("overflow recovery: len=%d err=%v", len(data), err)
	}
}

func TestRecoveryIdempotentDoubleCrash(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, DefaultOptions())
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	tx.Insert(h, []byte("a"))
	tx.Commit()
	s.CrashForTest()

	// First recovery, then crash again immediately.
	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := s2.Heap("q")
	tx = s2.Begin()
	tx.Insert(h2, []byte("b"))
	tx.Commit()
	s2.CrashForTest()

	s3, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	h3, _ := s3.Heap("q")
	var seen []string
	s3.Scan(h3, func(_ RID, data []byte) bool {
		seen = append(seen, string(data))
		return true
	})
	if len(seen) != 2 || seen[0] != "a" || seen[1] != "b" {
		t.Fatalf("double crash recovery: %v", seen)
	}
}

func TestBatchDeleteUnloggedVsLogged(t *testing.T) {
	// The E3 claim: retention-based batch deletes produce far less log than
	// before-image deletes.
	run := func(unlogged bool) uint64 {
		opts := DefaultOptions()
		opts.SyncCommits = false
		opts.UnloggedDeletes = unlogged
		s := openTemp(t, opts)
		h, _ := s.CreateHeap("q")
		payload := bytes.Repeat([]byte("m"), 1000)
		var rids []RID
		tx := s.Begin()
		for i := 0; i < 200; i++ {
			rid, _ := tx.Insert(h, payload)
			rids = append(rids, rid)
		}
		tx.Commit()
		before := s.LogBytes()
		if err := s.BatchDelete(h, rids); err != nil {
			t.Fatal(err)
		}
		return s.LogBytes() - before
	}
	unlogged := run(true)
	logged := run(false)
	if unlogged*10 > logged {
		t.Fatalf("unlogged deletes should be >10x smaller: unlogged=%d logged=%d", unlogged, logged)
	}
}

func TestBatchDeleteSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, DefaultOptions())
	h, _ := s.CreateHeap("q")
	var rids []RID
	tx := s.Begin()
	for i := 0; i < 50; i++ {
		rid, _ := tx.Insert(h, []byte(fmt.Sprintf("m%d", i)))
		rids = append(rids, rid)
	}
	tx.Commit()
	if err := s.BatchDelete(h, rids[:25]); err != nil {
		t.Fatal(err)
	}
	s.CrashForTest()

	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, _ := s2.Heap("q")
	n := 0
	s2.Scan(h2, func(RID, []byte) bool { n++; return true })
	if n != 25 {
		t.Fatalf("after batch delete + crash: %d records, want 25", n)
	}
}

func TestPageReclamation(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, _ := s.CreateHeap("q")
	payload := bytes.Repeat([]byte("x"), 2000)
	var rids []RID
	tx := s.Begin()
	for i := 0; i < 400; i++ { // ~100 pages
		rid, _ := tx.Insert(h, payload)
		rids = append(rids, rid)
	}
	tx.Commit()
	grown := s.Stats().PageCount
	if err := s.BatchDelete(h, rids); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FreePages < int(grown)/2 {
		t.Fatalf("expected most pages reclaimed: free=%d of %d", st.FreePages, grown)
	}
	// Freed pages are reused by new inserts.
	tx = s.Begin()
	for i := 0; i < 400; i++ {
		tx.Insert(h, payload)
	}
	tx.Commit()
	if after := s.Stats().PageCount; after > grown+8 {
		t.Fatalf("free pages not reused: before=%d after=%d", grown, after)
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h, _ := s.CreateHeap("q")
	tx := s.Begin()
	tx.Insert(h, bytes.Repeat([]byte("y"), 500))
	tx.Commit()
	if s.LogBytes() == 0 {
		t.Fatal("log should have content")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// LogBytes is cumulative across truncations; the file itself must be
	// empty after a checkpoint.
	st, err := os.Stat(filepath.Join(s.dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("checkpoint should truncate the log file, size=%d", st.Size())
	}
	// Data survives checkpoint + reopen.
	n := 0
	s.Scan(h, func(RID, []byte) bool { n++; return true })
	if n != 1 {
		t.Fatal("data lost at checkpoint")
	}
}

func TestBufferPoolEviction(t *testing.T) {
	opts := DefaultOptions()
	opts.BufferPages = 16
	opts.SyncCommits = false
	s := openTemp(t, opts)
	h, _ := s.CreateHeap("q")
	payload := bytes.Repeat([]byte("z"), 4000)
	tx := s.Begin()
	var rids []RID
	for i := 0; i < 100; i++ { // ~50 pages >> 16 frames
		rid, err := tx.Insert(h, payload)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	tx.Commit()
	if s.Stats().Evictions == 0 {
		t.Fatal("expected evictions with a small pool")
	}
	// All records readable back through the small pool.
	for _, rid := range rids {
		if _, err := s.Read(rid); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMultipleHeapsIsolated(t *testing.T) {
	s := openTemp(t, DefaultOptions())
	h1, _ := s.CreateHeap("a")
	h2, _ := s.CreateHeap("b")
	tx := s.Begin()
	tx.Insert(h1, []byte("in-a"))
	tx.Insert(h2, []byte("in-b"))
	tx.Commit()
	var got []string
	s.Scan(h1, func(_ RID, d []byte) bool { got = append(got, string(d)); return true })
	if len(got) != 1 || got[0] != "in-a" {
		t.Fatalf("heap a: %v", got)
	}
	// Recreating an existing heap returns the same ID.
	h1b, _ := s.CreateHeap("a")
	if h1b != h1 {
		t.Fatal("CreateHeap should be idempotent")
	}
}
