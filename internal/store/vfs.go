package store

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"time"
)

// The VFS seam: every byte the store reads or writes — data file, WAL —
// goes through the File interface instead of a bare *os.File. Production
// uses the thin OS wrapper below; tests substitute FaultFS (faultfs.go) to
// inject crashes, torn writes, lost un-fsynced data, transient and
// permanent I/O errors, and disk-full, on a deterministic schedule.

// File is the narrow file handle the storage engine performs I/O through.
type File interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(size int64) error
	Size() (int64, error)
	Close() error
}

// VFS opens files by path. Remove and ReadDir exist for WAL segment
// recycling: the log manager creates numbered segment files, lists them at
// open, and deletes segments wholly behind the checkpoint redo point.
type VFS interface {
	OpenFile(path string) (File, error)
	// Remove deletes a file. Removal is metadata: like any other mutation
	// it may or may not survive a crash (a fault FS resolves that at its
	// simulated crash point), so callers must tolerate removed files
	// reappearing after recovery.
	Remove(path string) error
	// ReadDir lists the file names (not full paths) in a directory.
	ReadDir(dir string) ([]string, error)
}

// Error taxonomy for injected (and, where detectable, real) I/O failures.
// Transient errors are retried with bounded jittered backoff by retryFile;
// permanent errors propagate up so the engine can enter degraded read-only
// mode instead of panicking or silently losing writes.
var (
	// ErrTransientIO marks a failure that may succeed on retry.
	ErrTransientIO = errors.New("store: transient I/O error")
	// ErrDiskFull marks an exhausted write budget; writes fail until space
	// is reclaimed, reads still work.
	ErrDiskFull = errors.New("store: disk full")
	// ErrDiskFailure marks a permanent device failure; every subsequent
	// write fails.
	ErrDiskFailure = errors.New("store: permanent disk failure")
	// ErrCrashed is returned by a fault FS after its simulated crash point;
	// the process-under-test treats it as the end of the world.
	ErrCrashed = errors.New("store: simulated crash")
)

// IsTransient reports whether an error is worth retrying.
func IsTransient(err error) bool { return errors.Is(err, ErrTransientIO) }

// IsPermanent reports whether an error signals that the storage device can
// no longer accept writes — the trigger for degraded read-only mode.
func IsPermanent(err error) bool {
	return errors.Is(err, ErrDiskFailure) || errors.Is(err, ErrDiskFull)
}

// OSFileSystem returns the production VFS backed by the operating system.
func OSFileSystem() VFS { return osVFS{} }

type osVFS struct{}

func (osVFS) OpenFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osVFS) Remove(path string) error { return os.Remove(path) }

func (osVFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// retryFile wraps a File with bounded retry of transient errors: each
// failed attempt backs off exponentially with full jitter (half fixed, half
// random) so concurrent retriers spread out instead of thundering. Only
// errors classified transient are retried; everything else — including
// permanent failures and simulated crashes — propagates immediately.
type retryFile struct {
	f File
}

const (
	retryAttempts  = 4
	retryBaseDelay = time.Millisecond
)

func withRetry(op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || !IsTransient(err) || attempt == retryAttempts-1 {
			return err
		}
		d := retryBaseDelay << attempt
		time.Sleep(d/2 + time.Duration(rand.Int63n(int64(d/2)+1)))
	}
}

func (r *retryFile) ReadAt(p []byte, off int64) (n int, err error) {
	err = withRetry(func() error {
		var e error
		n, e = r.f.ReadAt(p, off)
		return e
	})
	return n, err
}

func (r *retryFile) WriteAt(p []byte, off int64) (n int, err error) {
	err = withRetry(func() error {
		var e error
		n, e = r.f.WriteAt(p, off)
		return e
	})
	return n, err
}

func (r *retryFile) Sync() error {
	return withRetry(r.f.Sync)
}

func (r *retryFile) Truncate(size int64) error {
	return withRetry(func() error { return r.f.Truncate(size) })
}

func (r *retryFile) Size() (int64, error) { return r.f.Size() }
func (r *retryFile) Close() error         { return r.f.Close() }
