package store

import "encoding/binary"

// Composite index-key codec shared by the secondary indexes built on BTree:
// the slicing index (slicing, key) → MsgID in internal/slicing and the
// property index (property, value) → MsgID in internal/msgstore.
//
// Every string component is encoded length-prefixed — uvarint(len) followed
// by the raw bytes — and the row identifier is appended as a fixed 8-byte
// big-endian suffix:
//
//	key = enc(c1) ++ enc(c2) ++ ... ++ be64(id)
//
// Length prefixes make the encoding prefix-free across distinct component
// tuples: a complete uvarint ends in a byte with the high bit clear, so no
// component encoding is a proper prefix of another, and therefore
// AppendIndexKey(nil, c...) of one tuple is never a prefix of a key built
// from a different tuple. ScanPrefix over IndexKeyPrefix(c...) is exact even
// when components embed NUL or any other byte — the ambiguity the previous
// "\x00"-separated slicing keys had. Within one tuple the big-endian suffix
// sorts rows in ascending id order, so range scans over [lo, hi] ids are
// contiguous.

// AppendIndexKey appends the length-prefixed encoding of the components.
func AppendIndexKey(dst []byte, components ...string) []byte {
	for _, c := range components {
		dst = binary.AppendUvarint(dst, uint64(len(c)))
		dst = append(dst, c...)
	}
	return dst
}

// IndexKeyPrefix builds the exact scan prefix covering every id stored under
// the component tuple.
func IndexKeyPrefix(components ...string) []byte {
	n := 8
	for _, c := range components {
		n += len(c) + 2
	}
	return AppendIndexKey(make([]byte, 0, n), components...)
}

// AppendIndexKeyID appends the fixed 8-byte big-endian id suffix.
func AppendIndexKeyID(dst []byte, id uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, id)
}

// IndexKey builds the full key for one row: components then id.
func IndexKey(id uint64, components ...string) []byte {
	return AppendIndexKeyID(IndexKeyPrefix(components...), id)
}

// IndexKeyID extracts the trailing id of a full index key.
func IndexKeyID(key []byte) uint64 {
	return binary.BigEndian.Uint64(key[len(key)-8:])
}
