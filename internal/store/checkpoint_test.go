package store

import (
	"bytes"
	"testing"
)

// TestCleanShutdownZeroReplay asserts the clean-restart contract: Close runs
// a quiescent checkpoint whose published redo offset equals the log end, so
// the next Open replays nothing at all.
func TestCleanShutdownZeroReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.CreateHeap("q")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("p"), 600)
	for i := 0; i < 25; i++ {
		tx := s.Begin()
		if _, err := tx.Insert(h, payload); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if i == 12 {
			// A mid-run fuzzy checkpoint must not disturb the contract.
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n, _ := s2.RecoveryReplayed(); n != 0 {
		t.Fatalf("clean shutdown must replay zero records on reopen, replayed %d", n)
	}
	h2, err := s2.CreateHeap("q")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	s2.Scan(h2, func(RID, []byte) bool { count++; return true })
	if count != 25 {
		t.Fatalf("lost data across clean restart: %d of 25 records", count)
	}
}

// runBudgetedWorkload commits `rounds` rounds of insert/delete traffic
// against a FaultFS-backed store, checkpointing whenever the live WAL
// outgrows the budget (standing in for the engine's scheduler), then
// crashes. It returns the FaultFS holding the durable image and the number
// of records the subsequent reopen replays.
func runBudgetedWorkload(t *testing.T, rounds int) uint64 {
	t.Helper()
	const budget = 16 << 10
	fs := NewFaultFS(7)
	s, err := Open("br", Options{VFS: fs, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.CreateHeap("q")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("b"), 256)
	var rids []RID
	for r := 0; r < rounds; r++ {
		tx := s.Begin()
		for i := 0; i < 4; i++ {
			rid, err := tx.Insert(h, payload)
			if err != nil {
				t.Fatal(err)
			}
			rids = append(rids, rid)
		}
		if len(rids) > 8 {
			if err := tx.Delete(h, rids[0]); err != nil {
				t.Fatal(err)
			}
			rids = rids[1:]
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if s.LiveLogBytes() > budget {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A fixed-size tail of unchecked-pointed work, identical for every
	// workload length, so the replay cost at crash is comparable.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		tx := s.Begin()
		if _, err := tx.Insert(h, payload); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	s.CrashForTest()

	s2, err := Open("br", Options{VFS: fs, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.VerifyPageLSNs(); err != nil {
		t.Fatal(err)
	}
	n, _ := s2.RecoveryReplayed()
	if n == 0 {
		t.Fatal("crash with a post-checkpoint tail should replay at least the tail")
	}
	return n
}

// TestRecoveryBoundedByBudget is the recovery-bounds regression test: with
// checkpoints driven by a fixed WAL budget, replay after a crash is a
// function of the budget (work since the last complete checkpoint), not of
// how long the store has been running. A 10x longer workload must not
// replay meaningfully more than the 1x one.
func TestRecoveryBoundedByBudget(t *testing.T) {
	short := runBudgetedWorkload(t, 20)
	long := runBudgetedWorkload(t, 200)
	if long > short*2+32 {
		t.Fatalf("replay grew with workload length: 1x replays %d records, 10x replays %d", short, long)
	}
}

// TestCommitThrottleUnderBudget checks graceful degradation: with a hard
// WAL budget configured and no checkpointer running, commits past the soft
// budget are delayed (and counted) but still succeed.
func TestCommitThrottleUnderBudget(t *testing.T) {
	opts := DefaultOptions()
	opts.SyncCommits = false
	opts.WALHardBudget = 32 << 10 // soft defaults to half of this
	s := openTemp(t, opts)
	h, err := s.CreateHeap("q")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("t"), 1024)
	for i := 0; i < 64; i++ {
		tx := s.Begin()
		if _, err := tx.Insert(h, payload); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d failed under throttle: %v", i, err)
		}
	}
	st := s.Stats()
	if st.WALThrottles == 0 {
		t.Fatalf("expected throttled commits past the soft budget (live=%d)", st.WALLiveBytes)
	}
	// The throttle slows, never rejects: all the work landed.
	count := 0
	s.Scan(h, func(RID, []byte) bool { count++; return true })
	if count != 64 {
		t.Fatalf("throttle lost work: %d of 64 records", count)
	}
}

// TestWALSegmentRollAndRecycle drives enough traffic through a tiny segment
// size to force rolls, then checkpoints and verifies old segments are
// recycled (deleted) once the head passes them.
func TestWALSegmentRollAndRecycle(t *testing.T) {
	opts := DefaultOptions()
	opts.SyncCommits = false
	opts.WALSegmentSize = 8 << 10
	dir := t.TempDir()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h, err := s.CreateHeap("q")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("s"), 512)
	for i := 0; i < 120; i++ {
		tx := s.Begin()
		if _, err := tx.Insert(h, payload); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.WALSegRolls == 0 {
		t.Fatalf("expected segment rolls with %d bytes logged in 8KiB segments", st.LogBytes)
	}
	// Two checkpoints: the first bounds the live window, the second lets the
	// head pass the first's full-page images so old segments can go.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.WALSegments > 2 {
		t.Fatalf("checkpoint should recycle dead segments, %d still on disk", after.WALSegments)
	}
	// Reopen from the segmented, recycled log.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, _ := s2.CreateHeap("q")
	count := 0
	s2.Scan(h2, func(RID, []byte) bool { count++; return true })
	if count != 120 {
		t.Fatalf("segment recycling lost data: %d of 120 records", count)
	}
}
