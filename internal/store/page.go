// Package store implements the storage engine beneath the Demaq message
// store: a page-based data file with slotted pages, a buffer manager, a
// write-ahead log with ARIES-style recovery, record heaps with overflow
// chains for large XML messages, and an in-memory B+tree used for derived
// indexes (materialized slices, scheduler state) that are rebuilt from the
// logged base data on startup.
//
// It plays the role Natix plays in the paper (Sec. 4.1): a recoverable
// store with queue extensions. Demaq queues are append-only, which this
// engine exploits: record inserts log only redo/undo images of the new
// record, there are no in-place payload updates, and retention-driven
// deletions are logged as redo-only batches (the paper's observation that
// message deletion "can be reached without analyzing the log").
package store

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the size of every page in the data file.
const PageSize = 8192

// PageID identifies a page by its index in the data file.
type PageID uint32

// InvalidPage is the nil page pointer.
const InvalidPage PageID = 0xFFFFFFFF

// RID is a record identifier: page plus slot.
type RID struct {
	Page PageID
	Slot uint16
}

// String renders the RID for diagnostics.
func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// Nil reports whether the RID is the zero/invalid record reference.
func (r RID) Nil() bool { return r.Page == InvalidPage }

// NilRID is the invalid record reference.
var NilRID = RID{Page: InvalidPage}

// Slotted page layout (all integers little-endian):
//
//	offset  size  field
//	0       8     pageLSN
//	8       4     nextPage (chain pointer; InvalidPage if none)
//	12      4     prevPage
//	16      2     slot count
//	18      2     free space start (grows up)
//	20      2     free space end (grows down; cells above it)
//	22      2     flags
//	24      ...   slot array: per slot 2 bytes offset + 2 bytes length
//	...     ...   free space
//	...     ...   cells (records), packed at the end
//
// A slot with offset 0xFFFF is dead (deleted). Length 0 is a valid empty
// record.
const (
	pageHeaderSize = 24
	slotSize       = 4
	deadOffset     = 0xFFFF
)

// Page flags.
const (
	flagOverflow uint16 = 1 << iota // page holds one overflow fragment
)

// page wraps a PageSize byte buffer with typed accessors.
type page struct {
	id  PageID
	buf []byte
}

func (p *page) lsn() uint64       { return binary.LittleEndian.Uint64(p.buf[0:]) }
func (p *page) setLSN(l uint64)   { binary.LittleEndian.PutUint64(p.buf[0:], l) }
func (p *page) next() PageID      { return PageID(binary.LittleEndian.Uint32(p.buf[8:])) }
func (p *page) setNext(n PageID)  { binary.LittleEndian.PutUint32(p.buf[8:], uint32(n)) }
func (p *page) prev() PageID      { return PageID(binary.LittleEndian.Uint32(p.buf[12:])) }
func (p *page) setPrev(n PageID)  { binary.LittleEndian.PutUint32(p.buf[12:], uint32(n)) }
func (p *page) slotCount() uint16 { return binary.LittleEndian.Uint16(p.buf[16:]) }
func (p *page) setSlotCount(n uint16) {
	binary.LittleEndian.PutUint16(p.buf[16:], n)
}
func (p *page) freeStart() uint16 { return binary.LittleEndian.Uint16(p.buf[18:]) }
func (p *page) setFreeStart(n uint16) {
	binary.LittleEndian.PutUint16(p.buf[18:], n)
}
func (p *page) freeEnd() uint16 { return binary.LittleEndian.Uint16(p.buf[20:]) }
func (p *page) setFreeEnd(n uint16) {
	binary.LittleEndian.PutUint16(p.buf[20:], n)
}
func (p *page) flags() uint16     { return binary.LittleEndian.Uint16(p.buf[22:]) }
func (p *page) setFlags(f uint16) { binary.LittleEndian.PutUint16(p.buf[22:], f) }

// format initializes an empty slotted page.
func (p *page) format() {
	for i := range p.buf[:pageHeaderSize] {
		p.buf[i] = 0
	}
	p.setNext(InvalidPage)
	p.setPrev(InvalidPage)
	p.setFreeStart(pageHeaderSize)
	p.setFreeEnd(PageSize)
}

func (p *page) slotOffset(slot uint16) int { return pageHeaderSize + int(slot)*slotSize }

func (p *page) slot(slot uint16) (off uint16, length uint16) {
	so := p.slotOffset(slot)
	return binary.LittleEndian.Uint16(p.buf[so:]), binary.LittleEndian.Uint16(p.buf[so+2:])
}

func (p *page) setSlot(slot uint16, off, length uint16) {
	so := p.slotOffset(slot)
	binary.LittleEndian.PutUint16(p.buf[so:], off)
	binary.LittleEndian.PutUint16(p.buf[so+2:], length)
}

// freeSpace returns usable bytes for one new record including its slot.
func (p *page) freeSpace() int {
	return int(p.freeEnd()) - int(p.freeStart())
}

// maxRecordSize is the largest record storable in a fresh page.
const maxRecordSize = PageSize - pageHeaderSize - slotSize

// canFit reports whether a record of n bytes fits (considering slot reuse).
func (p *page) canFit(n int) bool {
	// A dead slot can be reused, saving the slot overhead.
	for s := uint16(0); s < p.slotCount(); s++ {
		if off, _ := p.slot(s); off == deadOffset {
			return p.freeSpace() >= n
		}
	}
	return p.freeSpace() >= n+slotSize
}

// insert places data in the page and returns the slot. The caller must have
// checked canFit.
func (p *page) insert(data []byte) uint16 {
	n := uint16(len(data))
	// Reuse a dead slot if any.
	slot := p.slotCount()
	for s := uint16(0); s < p.slotCount(); s++ {
		if off, _ := p.slot(s); off == deadOffset {
			slot = s
			break
		}
	}
	if p.freeSpace() < int(n)+slotSize && slot == p.slotCount() {
		panic("store: page.insert without space check")
	}
	if int(p.freeEnd())-int(n) < int(p.freeStart())+slotSize {
		p.compact()
	}
	off := p.freeEnd() - n
	copy(p.buf[off:], data)
	p.setFreeEnd(off)
	if slot == p.slotCount() {
		p.setSlotCount(slot + 1)
		p.setFreeStart(p.freeStart() + slotSize)
	}
	p.setSlot(slot, off, n)
	return slot
}

// insertAt places data in a specific slot, extending the slot array as
// needed; used by recovery redo to reproduce exact slot assignments.
func (p *page) insertAt(slot uint16, data []byte) {
	n := uint16(len(data))
	for p.slotCount() <= slot {
		s := p.slotCount()
		p.setSlotCount(s + 1)
		p.setFreeStart(p.freeStart() + slotSize)
		p.setSlot(s, deadOffset, 0)
	}
	if int(p.freeEnd())-int(n) < int(p.freeStart()) {
		p.compact()
	}
	off := p.freeEnd() - n
	copy(p.buf[off:], data)
	p.setFreeEnd(off)
	p.setSlot(slot, off, n)
}

// read returns the record bytes of a live slot (aliasing the page buffer).
func (p *page) read(slot uint16) ([]byte, bool) {
	if slot >= p.slotCount() {
		return nil, false
	}
	off, n := p.slot(slot)
	if off == deadOffset {
		return nil, false
	}
	return p.buf[off : off+n], true
}

// del marks a slot dead. Space is reclaimed by compact on demand.
func (p *page) del(slot uint16) bool {
	if slot >= p.slotCount() {
		return false
	}
	off, _ := p.slot(slot)
	if off == deadOffset {
		return false
	}
	p.setSlot(slot, deadOffset, 0)
	return true
}

// liveCount returns the number of live records.
func (p *page) liveCount() int {
	n := 0
	for s := uint16(0); s < p.slotCount(); s++ {
		if off, _ := p.slot(s); off != deadOffset {
			n++
		}
	}
	return n
}

// compact repacks live cells to the end of the page, keeping slot numbers
// stable (RIDs must not move between pages).
func (p *page) compact() {
	type live struct {
		slot uint16
		data []byte
	}
	var lives []live
	for s := uint16(0); s < p.slotCount(); s++ {
		if data, ok := p.read(s); ok {
			cp := make([]byte, len(data))
			copy(cp, data)
			lives = append(lives, live{slot: s, data: cp})
		}
	}
	p.setFreeEnd(PageSize)
	for _, l := range lives {
		off := p.freeEnd() - uint16(len(l.data))
		copy(p.buf[off:], l.data)
		p.setFreeEnd(off)
		p.setSlot(l.slot, off, uint16(len(l.data)))
	}
}
