package xdm

import (
	"fmt"
	"math"
)

// CompOp is a comparison operator shared by value and general comparisons.
type CompOp uint8

// Comparison operators.
const (
	OpEq CompOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the value-comparison spelling of the operator.
func (op CompOp) String() string {
	switch op {
	case OpEq:
		return "eq"
	case OpNe:
		return "ne"
	case OpLt:
		return "lt"
	case OpLe:
		return "le"
	case OpGt:
		return "gt"
	case OpGe:
		return "ge"
	}
	return "?"
}

func holds(op CompOp, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// promotePair determines the common comparison type of two values following
// the XQuery promotion rules for the supported types. Untyped operands are
// cast to the other operand's type; two untyped operands compare as strings.
func promotePair(a, b Value) (Value, Value, error) {
	ta, tb := a.T, b.T
	if ta == TypeUntyped && tb == TypeUntyped {
		return NewString(a.S), NewString(b.S), nil
	}
	if ta == TypeUntyped {
		target := tb
		if tb == TypeInteger || tb == TypeDecimal {
			target = TypeDouble // untyped promotes through double for numerics
		}
		ca, err := a.Cast(target)
		if err != nil {
			return Value{}, Value{}, err
		}
		cb, err := b.Cast(target)
		if err != nil {
			return Value{}, Value{}, err
		}
		return ca, cb, nil
	}
	if tb == TypeUntyped {
		cb, ca, err := promotePair(b, a)
		return ca, cb, err
	}
	if ta.IsNumeric() && tb.IsNumeric() {
		if ta == tb && ta == TypeInteger {
			return a, b, nil
		}
		ca, _ := a.Cast(TypeDouble)
		cb, _ := b.Cast(TypeDouble)
		return ca, cb, nil
	}
	if ta == tb {
		return a, b, nil
	}
	// string vs untypedAtomic handled above; any other mix is a type error.
	return Value{}, Value{}, fmt.Errorf("xdm: cannot compare %s with %s", ta, tb)
}

// CompareValues applies a value comparison (eq, ne, lt, le, gt, ge) to two
// atomic values after promotion.
func CompareValues(op CompOp, a, b Value) (bool, error) {
	pa, pb, err := promotePair(a, b)
	if err != nil {
		return false, err
	}
	switch pa.T {
	case TypeString, TypeUntyped:
		c := 0
		if pa.S < pb.S {
			c = -1
		} else if pa.S > pb.S {
			c = 1
		}
		return holds(op, c), nil
	case TypeBoolean:
		ai, bi := 0, 0
		if pa.B {
			ai = 1
		}
		if pb.B {
			bi = 1
		}
		return holds(op, ai-bi), nil
	case TypeInteger:
		c := 0
		if pa.I < pb.I {
			c = -1
		} else if pa.I > pb.I {
			c = 1
		}
		return holds(op, c), nil
	case TypeDecimal, TypeDouble:
		if math.IsNaN(pa.F) || math.IsNaN(pb.F) {
			return op == OpNe, nil // NaN compares unequal to everything
		}
		c := 0
		if pa.F < pb.F {
			c = -1
		} else if pa.F > pb.F {
			c = 1
		}
		return holds(op, c), nil
	case TypeDateTime:
		c := 0
		if pa.D.Before(pb.D) {
			c = -1
		} else if pa.D.After(pb.D) {
			c = 1
		}
		return holds(op, c), nil
	}
	return false, fmt.Errorf("xdm: cannot compare values of type %s", pa.T)
}

// CompareGeneral applies a general comparison: it holds if the value
// comparison holds for any pair from the atomized operand sequences
// (existential semantics).
func CompareGeneral(op CompOp, left, right Sequence) (bool, error) {
	if len(left) == 0 || len(right) == 0 {
		return false, nil
	}
	lv := AtomizeSeq(left)
	rv := AtomizeSeq(right)
	for _, a := range lv {
		for _, b := range rv {
			ok, err := CompareValues(op, a, b)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
	}
	return false, nil
}

// DeepEqualValues reports sequence deep-equality of two atomic values; used
// by fn:distinct-values and for grouping slice keys. NaN equals NaN here,
// per fn:distinct-values semantics.
func DeepEqualValues(a, b Value) bool {
	pa, pb, err := promotePair(a, b)
	if err != nil {
		return false
	}
	switch pa.T {
	case TypeDecimal, TypeDouble:
		if math.IsNaN(pa.F) && math.IsNaN(pb.F) {
			return true
		}
	}
	eq, err := CompareValues(OpEq, pa, pb)
	return err == nil && eq
}
