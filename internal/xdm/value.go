// Package xdm implements the XQuery Data Model subset used by the Demaq
// expression processor: items (nodes and atomic values), sequences, the
// atomic type hierarchy needed by QDL property declarations (xs:string,
// xs:boolean, xs:integer, xs:decimal, xs:double, xs:dateTime), atomization,
// effective boolean value, casts and the value/general comparison rules.
package xdm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"demaq/internal/xmldom"
)

// Type identifies an atomic type. Untyped is the type of atomized node
// content (xs:untypedAtomic); it participates in the promotion rules.
type Type uint8

// Atomic types supported by the processor.
const (
	TypeUntyped Type = iota
	TypeString
	TypeBoolean
	TypeInteger
	TypeDecimal
	TypeDouble
	TypeDateTime
)

// String returns the xs: name of the type.
func (t Type) String() string {
	switch t {
	case TypeUntyped:
		return "xs:untypedAtomic"
	case TypeString:
		return "xs:string"
	case TypeBoolean:
		return "xs:boolean"
	case TypeInteger:
		return "xs:integer"
	case TypeDecimal:
		return "xs:decimal"
	case TypeDouble:
		return "xs:double"
	case TypeDateTime:
		return "xs:dateTime"
	}
	return "xs:anyAtomicType"
}

// TypeByName resolves a QDL type name ("xs:string", "string", ...) to a
// Type. It reports false for unknown names.
func TypeByName(name string) (Type, bool) {
	name = strings.TrimPrefix(name, "xs:")
	switch name {
	case "string":
		return TypeString, true
	case "boolean":
		return TypeBoolean, true
	case "integer", "int", "long":
		return TypeInteger, true
	case "decimal":
		return TypeDecimal, true
	case "double", "float":
		return TypeDouble, true
	case "dateTime":
		return TypeDateTime, true
	case "untypedAtomic":
		return TypeUntyped, true
	}
	return 0, false
}

// Item is one member of a sequence: either a *Node or an atomic Value.
type Item interface {
	itemMarker()
}

// Node wraps an xmldom node as an item.
type Node struct {
	N *xmldom.Node
}

func (Node) itemMarker() {}

// Value is an atomic value.
type Value struct {
	T Type
	S string    // TypeString, TypeUntyped
	B bool      // TypeBoolean
	I int64     // TypeInteger
	F float64   // TypeDecimal, TypeDouble
	D time.Time // TypeDateTime
}

func (Value) itemMarker() {}

// Constructors for atomic values.
func NewString(s string) Value   { return Value{T: TypeString, S: s} }
func NewUntyped(s string) Value  { return Value{T: TypeUntyped, S: s} }
func NewBool(b bool) Value       { return Value{T: TypeBoolean, B: b} }
func NewInteger(i int64) Value   { return Value{T: TypeInteger, I: i} }
func NewDecimal(f float64) Value { return Value{T: TypeDecimal, F: f} }
func NewDouble(f float64) Value  { return Value{T: TypeDouble, F: f} }
func NewDateTime(t time.Time) Value {
	return Value{T: TypeDateTime, D: t}
}

// Sequence is an ordered, possibly empty list of items. Demaq sequences are
// always materialized; the engine operates message-at-a-time and messages
// are small relative to pages, so streaming evaluation is an optimization
// the paper leaves open (Sec. 4.4.1) and we do too.
type Sequence []Item

// EmptySequence is the canonical empty result.
var EmptySequence = Sequence{}

// Singleton wraps one item in a sequence.
func Singleton(it Item) Sequence { return Sequence{it} }

// NodeSeq builds a sequence from nodes.
func NodeSeq(nodes []*xmldom.Node) Sequence {
	s := make(Sequence, len(nodes))
	for i, n := range nodes {
		s[i] = Node{N: n}
	}
	return s
}

// Nodes extracts the node items; it errors if any item is atomic, which
// implements the path-step requirement that steps apply to nodes only.
func (s Sequence) Nodes() ([]*xmldom.Node, error) {
	out := make([]*xmldom.Node, 0, len(s))
	for _, it := range s {
		n, ok := it.(Node)
		if !ok {
			return nil, fmt.Errorf("xdm: required a node, got %s", Describe(it))
		}
		out = append(out, n.N)
	}
	return out, nil
}

// Describe names an item for error messages.
func Describe(it Item) string {
	switch v := it.(type) {
	case Node:
		return v.N.Kind.String()
	case Value:
		return v.T.String()
	}
	return "unknown item"
}

// StringValue renders an atomic value in its canonical lexical form.
func (v Value) StringValue() string {
	switch v.T {
	case TypeString, TypeUntyped:
		return v.S
	case TypeBoolean:
		if v.B {
			return "true"
		}
		return "false"
	case TypeInteger:
		return strconv.FormatInt(v.I, 10)
	case TypeDecimal, TypeDouble:
		return FormatNumber(v.F)
	case TypeDateTime:
		return v.D.Format(time.RFC3339Nano)
	}
	return ""
}

// FormatNumber renders a float per the XPath rules: integral values print
// without a decimal point, NaN prints "NaN", infinities print "INF"/"-INF".
func FormatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "INF"
	case math.IsInf(f, -1):
		return "-INF"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatInt(int64(f), 10)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// ItemString returns the string value of any item.
func ItemString(it Item) string {
	switch v := it.(type) {
	case Node:
		return v.N.StringValue()
	case Value:
		return v.StringValue()
	}
	return ""
}

// Atomize converts an item to its typed value: nodes atomize to
// xs:untypedAtomic of their string value.
func Atomize(it Item) Value {
	switch v := it.(type) {
	case Node:
		return NewUntyped(v.N.StringValue())
	case Value:
		return v
	}
	return NewUntyped("")
}

// AtomizeSeq atomizes every item of a sequence.
func AtomizeSeq(s Sequence) []Value {
	out := make([]Value, len(s))
	for i, it := range s {
		out[i] = Atomize(it)
	}
	return out
}

// EffectiveBooleanValue implements fn:boolean. Errors mirror XQuery err:FORG0006.
func EffectiveBooleanValue(s Sequence) (bool, error) {
	if len(s) == 0 {
		return false, nil
	}
	if _, ok := s[0].(Node); ok {
		return true, nil
	}
	if len(s) > 1 {
		return false, fmt.Errorf("xdm: effective boolean value of multi-item atomic sequence")
	}
	v := s[0].(Value)
	switch v.T {
	case TypeBoolean:
		return v.B, nil
	case TypeString, TypeUntyped:
		return v.S != "", nil
	case TypeInteger:
		return v.I != 0, nil
	case TypeDecimal, TypeDouble:
		return v.F != 0 && !math.IsNaN(v.F), nil
	default:
		return false, fmt.Errorf("xdm: no effective boolean value for %s", v.T)
	}
}

// Cast converts a value to the target type, applying the XQuery casting
// rules for the supported types.
func (v Value) Cast(t Type) (Value, error) {
	if v.T == t {
		return v, nil
	}
	switch t {
	case TypeString:
		return NewString(v.StringValue()), nil
	case TypeUntyped:
		return NewUntyped(v.StringValue()), nil
	case TypeBoolean:
		switch v.T {
		case TypeString, TypeUntyped:
			switch strings.TrimSpace(v.S) {
			case "true", "1":
				return NewBool(true), nil
			case "false", "0":
				return NewBool(false), nil
			}
			return Value{}, fmt.Errorf("xdm: cannot cast %q to xs:boolean", v.S)
		case TypeInteger:
			return NewBool(v.I != 0), nil
		case TypeDecimal, TypeDouble:
			return NewBool(v.F != 0 && !math.IsNaN(v.F)), nil
		}
	case TypeInteger:
		switch v.T {
		case TypeString, TypeUntyped:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("xdm: cannot cast %q to xs:integer", v.S)
			}
			return NewInteger(i), nil
		case TypeBoolean:
			if v.B {
				return NewInteger(1), nil
			}
			return NewInteger(0), nil
		case TypeDecimal, TypeDouble:
			if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
				return Value{}, fmt.Errorf("xdm: cannot cast %s to xs:integer", FormatNumber(v.F))
			}
			return NewInteger(int64(math.Trunc(v.F))), nil
		}
	case TypeDecimal, TypeDouble:
		mk := NewDecimal
		if t == TypeDouble {
			mk = NewDouble
		}
		switch v.T {
		case TypeString, TypeUntyped:
			f, err := parseNumberLexical(v.S)
			if err != nil {
				if t == TypeDouble {
					return NewDouble(math.NaN()), nil
				}
				return Value{}, fmt.Errorf("xdm: cannot cast %q to %s", v.S, t)
			}
			return mk(f), nil
		case TypeBoolean:
			if v.B {
				return mk(1), nil
			}
			return mk(0), nil
		case TypeInteger:
			return mk(float64(v.I)), nil
		case TypeDecimal, TypeDouble:
			return mk(v.F), nil
		}
	case TypeDateTime:
		switch v.T {
		case TypeString, TypeUntyped:
			d, err := ParseDateTime(strings.TrimSpace(v.S))
			if err != nil {
				return Value{}, err
			}
			return NewDateTime(d), nil
		}
	}
	return Value{}, fmt.Errorf("xdm: cannot cast %s to %s", v.T, t)
}

func parseNumberLexical(s string) (float64, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "INF":
		return math.Inf(1), nil
	case "-INF":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// ParseDateTime parses an xs:dateTime lexical value (RFC3339 with optional
// fractional seconds; a missing zone designator is taken as UTC).
func ParseDateTime(s string) (time.Time, error) {
	for _, layout := range []string{
		time.RFC3339Nano,
		time.RFC3339,
		"2006-01-02T15:04:05",
		"2006-01-02T15:04:05.999999999",
	} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UTC(), nil
		}
	}
	return time.Time{}, fmt.Errorf("xdm: cannot parse %q as xs:dateTime", s)
}

// Number coerces a value to xs:double per fn:number: failures yield NaN.
func (v Value) Number() float64 {
	switch v.T {
	case TypeInteger:
		return float64(v.I)
	case TypeDecimal, TypeDouble:
		return v.F
	case TypeBoolean:
		if v.B {
			return 1
		}
		return 0
	case TypeString, TypeUntyped:
		f, err := parseNumberLexical(v.S)
		if err != nil {
			return math.NaN()
		}
		return f
	}
	return math.NaN()
}

// IsNumeric reports whether the type is one of the numeric types.
func (t Type) IsNumeric() bool {
	return t == TypeInteger || t == TypeDecimal || t == TypeDouble
}
