package xdm

import (
	"math"
	"testing"
	"time"

	"demaq/internal/xmldom"
)

func TestTypeByName(t *testing.T) {
	cases := map[string]Type{
		"xs:string":   TypeString,
		"string":      TypeString,
		"xs:boolean":  TypeBoolean,
		"xs:integer":  TypeInteger,
		"xs:int":      TypeInteger,
		"xs:decimal":  TypeDecimal,
		"xs:double":   TypeDouble,
		"xs:dateTime": TypeDateTime,
	}
	for name, want := range cases {
		got, ok := TypeByName(name)
		if !ok || got != want {
			t.Errorf("TypeByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := TypeByName("xs:hexBinary"); ok {
		t.Error("unsupported type should not resolve")
	}
}

func TestStringValueCanonical(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewString("x"), "x"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInteger(-42), "-42"},
		{NewDouble(3), "3"},
		{NewDouble(3.5), "3.5"},
		{NewDouble(math.NaN()), "NaN"},
		{NewDouble(math.Inf(1)), "INF"},
		{NewDouble(math.Inf(-1)), "-INF"},
	}
	for _, c := range cases {
		if got := c.v.StringValue(); got != c.want {
			t.Errorf("StringValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestAtomizeNode(t *testing.T) {
	doc := xmldom.MustParse("<a><b>12</b><b>3</b></a>")
	v := Atomize(Node{N: doc.Root()})
	if v.T != TypeUntyped || v.S != "123" {
		t.Fatalf("atomize = %+v", v)
	}
}

func TestEffectiveBooleanValue(t *testing.T) {
	doc := xmldom.MustParse("<a/>")
	cases := []struct {
		s    Sequence
		want bool
	}{
		{EmptySequence, false},
		{Singleton(Node{N: doc.Root()}), true},
		{Sequence{Node{N: doc.Root()}, NewString("x")}, true}, // first item is node
		{Singleton(NewBool(true)), true},
		{Singleton(NewBool(false)), false},
		{Singleton(NewString("")), false},
		{Singleton(NewString("a")), true},
		{Singleton(NewInteger(0)), false},
		{Singleton(NewInteger(5)), true},
		{Singleton(NewDouble(math.NaN())), false},
	}
	for i, c := range cases {
		got, err := EffectiveBooleanValue(c.s)
		if err != nil || got != c.want {
			t.Errorf("case %d: ebv = %v, %v", i, got, err)
		}
	}
	if _, err := EffectiveBooleanValue(Sequence{NewInteger(1), NewInteger(2)}); err == nil {
		t.Error("multi-atomic EBV should error")
	}
}

func TestCasts(t *testing.T) {
	if v, err := NewString("42").Cast(TypeInteger); err != nil || v.I != 42 {
		t.Fatalf("string->integer: %v %v", v, err)
	}
	if v, err := NewUntyped(" 3.5 ").Cast(TypeDouble); err != nil || v.F != 3.5 {
		t.Fatalf("untyped->double: %v %v", v, err)
	}
	if v, err := NewString("true").Cast(TypeBoolean); err != nil || !v.B {
		t.Fatalf("string->bool: %v %v", v, err)
	}
	if v, err := NewString("1").Cast(TypeBoolean); err != nil || !v.B {
		t.Fatalf("'1'->bool: %v %v", v, err)
	}
	if _, err := NewString("maybe").Cast(TypeBoolean); err == nil {
		t.Fatal("bad bool cast should fail")
	}
	if v, err := NewInteger(7).Cast(TypeString); err != nil || v.S != "7" {
		t.Fatalf("int->string: %v %v", v, err)
	}
	if v, err := NewDouble(3.9).Cast(TypeInteger); err != nil || v.I != 3 {
		t.Fatalf("double->integer truncates: %v %v", v, err)
	}
	if _, err := NewDouble(math.NaN()).Cast(TypeInteger); err == nil {
		t.Fatal("NaN->integer must fail")
	}
	// Cast of an unparseable string to double yields NaN, to decimal errors.
	if v, err := NewString("junk").Cast(TypeDouble); err != nil || !math.IsNaN(v.F) {
		t.Fatalf("junk->double: %v %v", v, err)
	}
	if _, err := NewString("junk").Cast(TypeDecimal); err == nil {
		t.Fatal("junk->decimal must fail")
	}
}

func TestDateTime(t *testing.T) {
	v, err := NewString("2026-06-10T12:00:00Z").Cast(TypeDateTime)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC)
	if !v.D.Equal(want) {
		t.Fatalf("parsed %v", v.D)
	}
	// Zone-less parses as UTC.
	v2, err := NewString("2026-06-10T12:00:00").Cast(TypeDateTime)
	if err != nil || !v2.D.Equal(want) {
		t.Fatalf("zone-less: %v %v", v2.D, err)
	}
	ok, err := CompareValues(OpLt, v, NewDateTime(want.Add(time.Hour)))
	if err != nil || !ok {
		t.Fatalf("dateTime compare: %v %v", ok, err)
	}
}

func TestNumber(t *testing.T) {
	if NewString("12").Number() != 12 {
		t.Fatal("number of '12'")
	}
	if !math.IsNaN(NewString("x").Number()) {
		t.Fatal("number of 'x' should be NaN")
	}
	if NewBool(true).Number() != 1 {
		t.Fatal("number of true")
	}
}
