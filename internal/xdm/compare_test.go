package xdm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"demaq/internal/xmldom"
)

func TestCompareValuesNumericPromotion(t *testing.T) {
	cases := []struct {
		op   CompOp
		a, b Value
		want bool
	}{
		{OpEq, NewInteger(3), NewDouble(3.0), true},
		{OpLt, NewInteger(3), NewDecimal(3.5), true},
		{OpGt, NewDouble(4), NewInteger(3), true},
		{OpEq, NewUntyped("5"), NewInteger(5), true},
		{OpEq, NewUntyped("abc"), NewString("abc"), true},
		{OpLt, NewString("a"), NewString("b"), true},
		{OpNe, NewDouble(math.NaN()), NewDouble(1), true},
		{OpEq, NewDouble(math.NaN()), NewDouble(math.NaN()), false},
		{OpEq, NewBool(true), NewBool(true), true},
		{OpLt, NewBool(false), NewBool(true), true},
	}
	for i, c := range cases {
		got, err := CompareValues(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if got != c.want {
			t.Errorf("case %d: %v %s %v = %v, want %v", i, c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestCompareTypeErrors(t *testing.T) {
	if _, err := CompareValues(OpEq, NewString("x"), NewInteger(1)); err == nil {
		t.Error("string vs integer should be a type error")
	}
	if _, err := CompareValues(OpLt, NewBool(true), NewInteger(1)); err == nil {
		t.Error("boolean vs integer should be a type error")
	}
}

func TestCompareGeneralExistential(t *testing.T) {
	doc := xmldom.MustParse("<a><v>1</v><v>2</v><v>3</v></a>")
	nodes := doc.Root().ChildElements()
	left := NodeSeq(nodes)
	// //v = 2 is true because one member matches.
	ok, err := CompareGeneral(OpEq, left, Singleton(NewInteger(2)))
	if err != nil || !ok {
		t.Fatalf("existential eq: %v %v", ok, err)
	}
	// //v = 9 is false.
	ok, err = CompareGeneral(OpEq, left, Singleton(NewInteger(9)))
	if err != nil || ok {
		t.Fatalf("no member equals 9: %v %v", ok, err)
	}
	// Empty operand: always false, even for !=.
	ok, err = CompareGeneral(OpNe, EmptySequence, Singleton(NewInteger(1)))
	if err != nil || ok {
		t.Fatalf("empty general comparison: %v %v", ok, err)
	}
	// Untyped vs numeric compares numerically: "10" > 9.
	ok, err = CompareGeneral(OpGt, Singleton(NodeSeq(nodes)[0]), Singleton(NewInteger(0)))
	if err != nil || !ok {
		t.Fatalf("untyped numeric: %v %v", ok, err)
	}
}

func TestDeepEqualValues(t *testing.T) {
	if !DeepEqualValues(NewDouble(math.NaN()), NewDouble(math.NaN())) {
		t.Error("NaN deep-equals NaN for grouping")
	}
	if !DeepEqualValues(NewInteger(2), NewDouble(2)) {
		t.Error("2 eq 2.0")
	}
	if DeepEqualValues(NewString("a"), NewString("b")) {
		t.Error("a != b")
	}
}

// TestQuickComparisonCoherence verifies for random integer pairs that the
// six operators behave as a coherent total order (trichotomy, duality).
func TestQuickComparisonCoherence(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInteger(a), NewInteger(b)
		eq, _ := CompareValues(OpEq, va, vb)
		ne, _ := CompareValues(OpNe, va, vb)
		lt, _ := CompareValues(OpLt, va, vb)
		le, _ := CompareValues(OpLe, va, vb)
		gt, _ := CompareValues(OpGt, va, vb)
		ge, _ := CompareValues(OpGe, va, vb)
		if eq == ne {
			return false
		}
		if lt && (eq || gt) {
			return false
		}
		if le != (lt || eq) || ge != (gt || eq) {
			return false
		}
		// Exactly one of lt, eq, gt.
		n := 0
		for _, x := range []bool{lt, eq, gt} {
			if x {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCastRoundTrip checks value → string → value round trips for
// integers and booleans.
func TestQuickCastRoundTrip(t *testing.T) {
	f := func(i int64, b bool) bool {
		vi := NewInteger(i)
		si, _ := vi.Cast(TypeString)
		back, err := si.Cast(TypeInteger)
		if err != nil || back.I != i {
			return false
		}
		vb := NewBool(b)
		sb, _ := vb.Cast(TypeString)
		bb, err := sb.Cast(TypeBoolean)
		return err == nil && bb.B == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGeneralComparisonMonotone: for a random sequence of integers,
// seq = max(seq) must hold and seq > max(seq) must not.
func TestQuickGeneralComparisonMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		seq := make(Sequence, n)
		maxv := int64(math.MinInt64)
		for i := 0; i < n; i++ {
			v := int64(r.Intn(1000)) - 500
			seq[i] = NewInteger(v)
			if v > maxv {
				maxv = v
			}
		}
		eq, err := CompareGeneral(OpEq, seq, Singleton(NewInteger(maxv)))
		if err != nil || !eq {
			return false
		}
		gt, err := CompareGeneral(OpGt, seq, Singleton(NewInteger(maxv)))
		return err == nil && !gt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
