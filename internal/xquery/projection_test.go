package xquery

import (
	"testing"

	"demaq/internal/xmldom"
)

func buildProj(t *testing.T, srcs ...string) *xmldom.Projection {
	t.Helper()
	b := NewProjectionBuilder()
	for _, src := range srcs {
		b.Add(MustCompile(src, CompileOptions{}))
	}
	return b.Build()
}

func TestProjectionBuilderChildPaths(t *testing.T) {
	p := buildProj(t, `string(/order/id)`)
	if p == nil {
		t.Fatal("child-path expression must yield a projection")
	}
	o, keep := p.Lookup("order")
	if !keep || o == nil {
		t.Fatal("order must be a kept interior node")
	}
	if sub, keep := o.Lookup("id"); !keep || sub != nil {
		t.Fatal("id must be kept with its whole subtree (value read)")
	}
	if _, keep := o.Lookup("items"); keep {
		t.Fatal("items is not referenced and must be pruned")
	}
}

func TestProjectionBuilderExistenceIsShellOnly(t *testing.T) {
	// exists() needs the element to be present in the partial tree, but not
	// its content: the endpoint must be a kept spine node, not marked All.
	p := buildProj(t, `exists(/order/items)`)
	if p == nil {
		t.Fatal("want a projection")
	}
	o, _ := p.Lookup("order")
	if o == nil {
		t.Fatal("order must be an interior node")
	}
	sub, keep := o.Lookup("items")
	if !keep {
		t.Fatal("items must be kept for the existence test")
	}
	if sub == nil {
		t.Fatal("items content is never read; it should not be marked All")
	}
}

func TestProjectionBuilderFLWORAndAttributes(t *testing.T) {
	p := buildProj(t, `for $i in /order/items/item where $i/qty > 1 return string($i/@sku)`)
	if p == nil {
		t.Fatal("want a projection")
	}
	o, _ := p.Lookup("order")
	items, keep := o.Lookup("items")
	if !keep || items == nil {
		t.Fatal("items must be a kept interior node")
	}
	item, keep := items.Lookup("item")
	if !keep || item == nil {
		t.Fatal("item must be a kept interior node (attributes ride along)")
	}
	if sub, keep := item.Lookup("qty"); !keep || sub != nil {
		t.Fatal("qty is compared by value and must be marked All")
	}
}

func TestProjectionBuilderDescentIsImprecise(t *testing.T) {
	if p := buildProj(t, `string(//id)`); p != nil {
		t.Fatal("leading // keeps everything; Build must return nil")
	}
	if p := buildProj(t, `string(/order//id)`); p != nil {
		// /order//id marks order All, which covers the whole document in
		// practice — the builder collapses that to full ingest too? No:
		// order All but the root still distinguishes other roots. A
		// projection keeping order entirely is still valid.
		o, _ := p.Lookup("order")
		_ = o
	}
}

func TestProjectionBuilderInnerDescentMarksSubtree(t *testing.T) {
	p := buildProj(t, `string(/order//id)`)
	if p == nil {
		t.Fatal("inner descent below a named child is still a projection")
	}
	if sub, keep := p.Lookup("order"); !keep || sub != nil {
		t.Fatal("order must be marked All for an inner // descent")
	}
}

func TestProjectionBuilderExternalVarImprecise(t *testing.T) {
	b := NewProjectionBuilder()
	b.Add(MustCompile(`string($doc/a/b)`, CompileOptions{ExtraVars: []string{"doc"}}))
	if !b.Imprecise() {
		t.Fatal("externally bound variables must make the analysis imprecise")
	}
	if b.Build() != nil {
		t.Fatal("imprecise analysis must build a nil projection")
	}
}

func TestProjectionBuilderEnqueueConsumes(t *testing.T) {
	p := buildProj(t, `if (exists(/order/urgent)) then do enqueue /order/items into out else ()`)
	if p == nil {
		t.Fatal("want a projection")
	}
	o, _ := p.Lookup("order")
	if sub, keep := o.Lookup("items"); !keep || sub != nil {
		t.Fatal("enqueued subtree is serialized and must be marked All")
	}
	if sub, keep := o.Lookup("urgent"); !keep || sub == nil {
		t.Fatal("existence-tested element must be kept as a spine node")
	}
}

func TestProjectionBuilderUnionAndParent(t *testing.T) {
	p := buildProj(t, `string((/order/a | /order/b)/c)`, `string(/order/d/../e)`)
	if p == nil {
		t.Fatal("want a projection")
	}
	o, _ := p.Lookup("order")
	for _, spine := range []string{"a", "b", "d"} {
		if sub, keep := o.Lookup(spine); !keep || sub == nil {
			t.Fatalf("%s must be a kept spine node", spine)
		}
	}
	a, _ := o.Lookup("a")
	if sub, keep := a.Lookup("c"); !keep || sub != nil {
		t.Fatal("c under a must be marked All")
	}
	if sub, keep := o.Lookup("e"); !keep || sub != nil {
		t.Fatal("e (navigated via ..) must be marked All")
	}
}

func TestProjectionBuilderQueueReadsUnconstrained(t *testing.T) {
	// Navigation on qs:queue() results concerns fully materialized
	// documents, not the projected context document.
	p := buildProj(t, `string(qs:queue("other")/x/y)`, `string(/order/id)`)
	if p == nil {
		t.Fatal("want a projection")
	}
	if _, keep := p.Lookup("x"); keep {
		t.Fatal("qs:queue navigation must not widen the context projection")
	}
}

func TestProjectionBuilderMessageIsContext(t *testing.T) {
	p := buildProj(t, `string(qs:message()/order/total)`)
	if p == nil {
		t.Fatal("want a projection")
	}
	o, keep := p.Lookup("order")
	if !keep || o == nil {
		t.Fatal("qs:message() must be tracked like the context root")
	}
	if sub, keep := o.Lookup("total"); !keep || sub != nil {
		t.Fatal("total must be marked All")
	}
}
