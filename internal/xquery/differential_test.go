package xquery

// Differential testing of the compiled backend against the AST
// interpreter: a generated corpus of expressions (axes × predicates ×
// functions × constructors × FLWOR × update primitives) is evaluated by
// both backends over randomized documents, asserting identical result
// sequences, identical pending update lists and identical error codes.
// The interpreter (eval.go) is the reference; any divergence is a bug in
// program.go.

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// --- corpus generation ---

type exprGen struct {
	r    *rand.Rand
	vars []string // in-scope variable names
}

func (g *exprGen) pick(options ...string) string {
	return options[g.r.Intn(len(options))]
}

func (g *exprGen) elemName() string {
	return g.pick("a", "b", "c", "item", "id", "k", "total")
}

func (g *exprGen) literal() string {
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprint(g.r.Intn(20) - 5)
	case 1:
		return fmt.Sprintf("%d.%d", g.r.Intn(10), g.r.Intn(100))
	case 2:
		return `"` + g.pick("x", "alpha", "42", "", "a b") + `"`
	case 3:
		return g.pick("1", "2", "3")
	default:
		return `"` + g.elemName() + `"`
	}
}

func (g *exprGen) step() string {
	name := g.elemName()
	switch g.r.Intn(8) {
	case 0:
		return "@" + g.pick("id", "n", "x")
	case 1:
		return "*"
	case 2:
		return "text()"
	case 3:
		return "node()"
	case 4:
		return ".."
	case 5:
		return g.pick("descendant", "ancestor", "self", "following-sibling",
			"preceding-sibling", "descendant-or-self", "ancestor-or-self") + "::" + name
	default:
		return name
	}
}

func (g *exprGen) predicate(depth int) string {
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprint(g.r.Intn(3) + 1)
	case 1:
		return "position() " + g.pick("=", "<", ">", "!=") + fmt.Sprint(g.r.Intn(3)+1)
	case 2:
		return "last()"
	case 3:
		return g.path(depth - 1)
	case 4:
		return g.path(depth-1) + " = " + g.literal()
	default:
		return g.pick("true()", "not("+g.path(depth-1)+")")
	}
}

func (g *exprGen) path(depth int) string {
	var sb strings.Builder
	sb.WriteString(g.pick("/", "//", "", "", "."))
	if sb.String() == "." {
		return "."
	}
	nSteps := 1 + g.r.Intn(3)
	for i := 0; i < nSteps; i++ {
		if i > 0 {
			sb.WriteString(g.pick("/", "//"))
		}
		sb.WriteString(g.step())
		if depth > 0 && g.r.Intn(3) == 0 {
			sb.WriteString("[" + g.predicate(depth-1) + "]")
		}
	}
	return sb.String()
}

func (g *exprGen) funcCall(depth int) string {
	p := func() string { return g.path(depth - 1) }
	e := func() string { return g.gen(depth - 1) }
	lit := func() string { return g.literal() }
	switch g.r.Intn(24) {
	case 0:
		return "count(" + p() + ")"
	case 1:
		return g.pick("exists", "empty", "not", "boolean") + "(" + p() + ")"
	case 2:
		return "string(" + e() + ")"
	case 3:
		return "concat(" + lit() + ", " + e() + ")"
	case 4:
		return "string-length(" + e() + ")"
	case 5:
		return g.pick("normalize-space", "upper-case", "lower-case") + "(" + e() + ")"
	case 6:
		return g.pick("contains", "starts-with", "ends-with") + "(" + e() + ", " + lit() + ")"
	case 7:
		return g.pick("substring-before", "substring-after") + "(" + e() + ", " + lit() + ")"
	case 8:
		return fmt.Sprintf("substring(%s, %d, %d)", e(), g.r.Intn(4), g.r.Intn(5))
	case 9:
		return "string-join(" + p() + ", \",\")"
	case 10:
		return "translate(" + e() + ", \"abc\", \"xy\")"
	case 11:
		return "number(" + e() + ")"
	case 12:
		return g.pick("floor", "ceiling", "round", "abs") + "(" + e() + ")"
	case 13:
		return g.pick("sum", "avg", "min", "max") + "(" + p() + ")"
	case 14:
		return "distinct-values(" + p() + ")"
	case 15:
		return "reverse(" + p() + ")"
	case 16:
		return fmt.Sprintf("subsequence(%s, %d, %d)", p(), g.r.Intn(3)+1, g.r.Intn(3)+1)
	case 17:
		return "index-of(" + p() + ", " + lit() + ")"
	case 18:
		return "data(" + p() + ")"
	case 19:
		return g.pick("name", "local-name") + "(" + p() + ")"
	case 20:
		return "tokenize(" + e() + ", \" \")"
	case 21:
		return "matches(" + e() + ", \"[a-z]+\")"
	case 22:
		return "replace(" + e() + ", \"a\", \"_\")"
	default:
		return "qs:" + g.pick("message()", "queue(\"q1\")", "property(\"p\")", "slice()", "slicekey()")
	}
}

func (g *exprGen) flwor(depth int) string {
	v := fmt.Sprintf("v%d", len(g.vars))
	g.vars = append(g.vars, v)
	defer func() { g.vars = g.vars[:len(g.vars)-1] }()
	var sb strings.Builder
	src := g.pick(g.path(depth-1), fmt.Sprintf("%d to %d", g.r.Intn(3), g.r.Intn(6)))
	pos := ""
	if g.r.Intn(3) == 0 {
		pos = " at $" + v + "p"
		g.vars = append(g.vars, v+"p")
		defer func() { g.vars = g.vars[:len(g.vars)-1] }()
	}
	fmt.Fprintf(&sb, "for $%s%s in %s ", v, pos, src)
	if g.r.Intn(3) == 0 {
		fmt.Fprintf(&sb, "let $%sl := %s ", v, g.gen(depth-1))
		g.vars = append(g.vars, v+"l")
		defer func() { g.vars = g.vars[:len(g.vars)-1] }()
	}
	if g.r.Intn(2) == 0 {
		fmt.Fprintf(&sb, "where %s ", g.gen(depth-1))
	}
	if g.r.Intn(3) == 0 {
		fmt.Fprintf(&sb, "order by %s %s ", g.gen(depth-1), g.pick("ascending", "descending"))
	}
	fmt.Fprintf(&sb, "return %s", g.gen(depth-1))
	return sb.String()
}

func (g *exprGen) quantified(depth int) string {
	v := fmt.Sprintf("q%d", len(g.vars))
	g.vars = append(g.vars, v)
	defer func() { g.vars = g.vars[:len(g.vars)-1] }()
	return fmt.Sprintf("%s $%s in %s satisfies %s",
		g.pick("some", "every"), v, g.path(depth-1), g.gen(depth-1))
}

func (g *exprGen) constructor(depth int) string {
	name := g.elemName()
	var sb strings.Builder
	sb.WriteString("<" + name)
	if g.r.Intn(2) == 0 {
		fmt.Fprintf(&sb, ` x="{%s}"`, g.gen(depth-1))
	}
	sb.WriteString(">")
	switch g.r.Intn(4) {
	case 0:
		sb.WriteString("lit")
	case 1:
		fmt.Fprintf(&sb, "{%s}", g.gen(depth-1))
	case 2:
		fmt.Fprintf(&sb, "<inner>{%s}</inner>", g.gen(depth-1))
	default:
		fmt.Fprintf(&sb, "t{%s}u", g.path(depth-1))
	}
	sb.WriteString("</" + name + ">")
	return sb.String()
}

// gen produces one expression of bounded depth.
func (g *exprGen) gen(depth int) string {
	if depth <= 0 {
		if len(g.vars) > 0 && g.r.Intn(4) == 0 {
			return "$" + g.vars[g.r.Intn(len(g.vars))]
		}
		return g.pick(g.literal(), g.path(0), ".")
	}
	switch g.r.Intn(12) {
	case 0:
		return g.path(depth)
	case 1:
		return g.funcCall(depth)
	case 2:
		return "(" + g.gen(depth-1) + " " + g.pick("+", "-", "*", "div", "idiv", "mod") + " " + g.gen(depth-1) + ")"
	case 3:
		return "(" + g.gen(depth-1) + " " +
			g.pick("=", "!=", "<", "<=", ">", ">=", "eq", "ne", "lt", "le", "gt", "ge") + " " + g.gen(depth-1) + ")"
	case 4:
		return "(" + g.gen(depth-1) + " " + g.pick("and", "or") + " " + g.gen(depth-1) + ")"
	case 5:
		return "(if (" + g.gen(depth-1) + ") then " + g.gen(depth-1) + " else " + g.gen(depth-1) + ")"
	case 6:
		return "(" + g.flwor(depth) + ")"
	case 7:
		return "(" + g.quantified(depth) + ")"
	case 8:
		return g.constructor(depth)
	case 9:
		return "(" + g.gen(depth-1) + ", " + g.gen(depth-1) + ")"
	case 10:
		return "(" + g.path(depth-1) + " | " + g.path(depth-1) + ")"
	default:
		if g.r.Intn(4) == 0 {
			return "(do enqueue " + g.constructor(depth-1) + " into q1)"
		}
		return "-(" + g.gen(depth-1) + ")"
	}
}

// genDoc builds a random document over the same element vocabulary.
func genDoc(r *rand.Rand) *xmldom.Node {
	b := xmldom.NewBuilder()
	names := []string{"a", "b", "c", "item", "id", "k", "total"}
	var build func(depth int)
	build = func(depth int) {
		name := names[r.Intn(len(names))]
		b.StartElement(xmldom.Name{Local: name})
		if r.Intn(2) == 0 {
			b.Attribute(xmldom.Name{Local: []string{"id", "n", "x"}[r.Intn(3)]},
				fmt.Sprint(r.Intn(10)))
		}
		kids := r.Intn(4)
		for i := 0; i < kids; i++ {
			switch {
			case depth <= 0 || r.Intn(3) == 0:
				switch r.Intn(3) {
				case 0:
					b.Text(fmt.Sprint(r.Intn(100)))
				case 1:
					b.Text([]string{"x", "alpha", "a b", "42"}[r.Intn(4)])
				default:
					b.Text("7.5")
				}
			default:
				build(depth - 1)
			}
		}
		b.EndElement()
	}
	b.StartElement(xmldom.Name{Local: "m"})
	top := 1 + r.Intn(3)
	for i := 0; i < top; i++ {
		build(2)
	}
	b.EndElement()
	return b.Done()
}

// --- result comparison ---

func valuesEqual(a, b xdm.Value) bool {
	if a.T != b.T {
		return false
	}
	switch a.T {
	case xdm.TypeString, xdm.TypeUntyped:
		return a.S == b.S
	case xdm.TypeBoolean:
		return a.B == b.B
	case xdm.TypeInteger:
		return a.I == b.I
	case xdm.TypeDecimal, xdm.TypeDouble:
		return a.F == b.F || (math.IsNaN(a.F) && math.IsNaN(b.F))
	case xdm.TypeDateTime:
		return a.D.Equal(b.D)
	}
	return false
}

// itemsEqual compares items: nodes of the input document by identity,
// constructed nodes structurally.
func itemsEqual(a, b xdm.Item, inputDoc *xmldom.Node) (bool, string) {
	an, aIsNode := a.(xdm.Node)
	bn, bIsNode := b.(xdm.Node)
	if aIsNode != bIsNode {
		return false, fmt.Sprintf("item kinds differ: %s vs %s", xdm.Describe(a), xdm.Describe(b))
	}
	if aIsNode {
		if an.N == bn.N {
			return true, ""
		}
		aFromInput := inputDoc != nil && an.N.Document() == inputDoc
		bFromInput := inputDoc != nil && bn.N.Document() == inputDoc
		if aFromInput || bFromInput {
			return false, fmt.Sprintf("node identity differs: %s vs %s",
				xmldom.Serialize(an.N), xmldom.Serialize(bn.N))
		}
		if !xmldom.DeepEqual(an.N, bn.N) {
			return false, fmt.Sprintf("constructed nodes differ: %s vs %s",
				xmldom.Serialize(an.N), xmldom.Serialize(bn.N))
		}
		return true, ""
	}
	av, bv := a.(xdm.Value), b.(xdm.Value)
	if !valuesEqual(av, bv) {
		return false, fmt.Sprintf("values differ: %s %q vs %s %q", av.T, av.StringValue(), bv.T, bv.StringValue())
	}
	return true, ""
}

func seqsEqual(a, b xdm.Sequence, inputDoc *xmldom.Node) (bool, string) {
	if len(a) != len(b) {
		return false, fmt.Sprintf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if ok, why := itemsEqual(a[i], b[i], inputDoc); !ok {
			return false, fmt.Sprintf("item %d: %s", i, why)
		}
	}
	return true, ""
}

func updatesEqual(a, b *UpdateList) (bool, string) {
	if a.Len() != b.Len() {
		return false, fmt.Sprintf("update counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Updates {
		switch ua := a.Updates[i].(type) {
		case *EnqueueUpdate:
			ub, ok := b.Updates[i].(*EnqueueUpdate)
			if !ok {
				return false, fmt.Sprintf("update %d kinds differ", i)
			}
			if ua.Queue != ub.Queue || !xmldom.DeepEqual(ua.Doc, ub.Doc) {
				return false, fmt.Sprintf("enqueue %d differs: %s vs %s", i,
					xmldom.Serialize(ua.Doc), xmldom.Serialize(ub.Doc))
			}
			if len(ua.Props) != len(ub.Props) {
				return false, fmt.Sprintf("enqueue %d prop counts differ", i)
			}
			for k, v := range ua.Props {
				if !valuesEqual(v, ub.Props[k]) {
					return false, fmt.Sprintf("enqueue %d prop %q differs", i, k)
				}
			}
		case *ResetUpdate:
			ub, ok := b.Updates[i].(*ResetUpdate)
			if !ok {
				return false, fmt.Sprintf("update %d kinds differ", i)
			}
			if ua.Slicing != ub.Slicing || ua.Implicit != ub.Implicit || !valuesEqual(ua.Key, ub.Key) {
				return false, fmt.Sprintf("reset %d differs", i)
			}
		}
	}
	return true, ""
}

func errCode(err error) string {
	if err == nil {
		return ""
	}
	if de, ok := err.(*DynError); ok {
		return de.Code
	}
	return "other:" + err.Error()
}

// diffRuntime returns the fake runtime both backends evaluate against.
func diffRuntime(doc *xmldom.Node) *fakeRuntime {
	return &fakeRuntime{
		message: doc,
		queues: map[string][]*xmldom.Node{
			"q1": {doc},
			"":   {doc},
		},
		curQueue: "q1",
		props:    map[string]xdm.Value{"p": xdm.NewString("alpha")},
		slice:    []*xmldom.Node{doc},
		sliceKey: xdm.NewString("k1"),
	}
}

// runDifferentialCase evaluates one expression over one document with both
// backends and reports a mismatch description, or "" when equivalent.
func runDifferentialCase(t *testing.T, src string, doc *xmldom.Node) (lowered bool, mismatch string) {
	t.Helper()
	e, err := parseExpr(src)
	if err != nil {
		t.Fatalf("generator produced unparsable expression %q: %v", src, err)
	}
	c, err := Compile(e, CompileOptions{AllowSlice: true})
	if err != nil {
		t.Fatalf("generator produced uncompilable expression %q: %v", src, err)
	}
	rt := diffRuntime(doc)
	iSeq, iUps, iErr := EvalInterpreted(c, rt, EvalOptions{ContextDoc: doc})
	cSeq, cUps, cErr := Eval(c, rt, EvalOptions{ContextDoc: doc})
	if !c.HasProgram() {
		return false, "" // both ran the interpreter; nothing to compare
	}
	if (iErr == nil) != (cErr == nil) {
		return true, fmt.Sprintf("error mismatch: interpreted=%v compiled=%v", iErr, cErr)
	}
	if iErr != nil {
		if errCode(iErr) != errCode(cErr) {
			return true, fmt.Sprintf("error codes differ: interpreted=%v compiled=%v", iErr, cErr)
		}
		return true, ""
	}
	if ok, why := seqsEqual(iSeq, cSeq, doc); !ok {
		return true, "result " + why
	}
	if ok, why := updatesEqual(iUps, cUps); !ok {
		return true, "updates " + why
	}
	return true, ""
}

// TestDifferentialCompiledVsInterpreted is the main equivalence net: ≥1000
// generated expression/document pairs.
func TestDifferentialCompiledVsInterpreted(t *testing.T) {
	const nExprs = 400
	const nDocs = 4

	docs := make([]*xmldom.Node, nDocs)
	docRand := rand.New(rand.NewSource(7))
	for i := range docs {
		docs[i] = genDoc(docRand)
	}

	pairs, lowered, failures := 0, 0, 0
	for i := 0; i < nExprs; i++ {
		g := &exprGen{r: rand.New(rand.NewSource(int64(i)))}
		src := g.gen(3)
		for d, doc := range docs {
			pairs++
			wasLowered, mismatch := runDifferentialCase(t, src, doc)
			if wasLowered {
				lowered++
			}
			if mismatch != "" {
				failures++
				t.Errorf("seed=%d doc=%d expr=%q: %s", i, d, src, mismatch)
				if failures > 20 {
					t.Fatalf("too many differential failures; stopping")
				}
			}
		}
	}
	if pairs < 1000 {
		t.Fatalf("differential corpus too small: %d pairs", pairs)
	}
	// The backend must actually lower the overwhelming majority of the
	// corpus — otherwise the harness is comparing the interpreter with
	// itself.
	if lowered < pairs*9/10 {
		t.Fatalf("only %d/%d pairs ran the compiled backend", lowered, pairs)
	}
	t.Logf("differential corpus: %d pairs, %d compiled", pairs, lowered)
}

// TestDifferentialHandPicked pins tricky constructs that the generator hits
// only occasionally.
func TestDifferentialHandPicked(t *testing.T) {
	doc := xmldom.MustParse(`<m><a id="1">x</a><a id="2">y</a><b><a id="3">z</a><c>7</c></b><total>9.5</total></m>`)
	exprs := []string{
		`//a`,
		`//a[2]`,
		`//a[position() > 1]`,
		`//a[last()]`,
		`/m/b/a/../c`,
		`//a[@id = "2"]`,
		`//a/@id`,
		`//*[c]`,
		`count(//a) + sum(//c)`,
		`//a[1][@id]`,
		`(//a, //c)[2]`,
		`(//a | //c)`,
		`//text()`,
		`/m/node()`,
		`//a/ancestor::m`,
		`//c/ancestor-or-self::*`,
		`//a/following-sibling::*`,
		`//c/preceding-sibling::a`,
		`//a/self::a`,
		`/m/descendant::a[2]`,
		`for $x in //a return string($x)`,
		`for $x at $i in //a return ($i, $x/@id)`,
		`for $x in //a order by $x/@id descending return string($x)`,
		// Error precedence: a later tuple's where clause must error before
		// an earlier tuple's order-by key does.
		`for $x in (1, 2) where (if ($x = 2) then (1 div 0) > 0 else true()) order by ("a" + 1) return $x`,
		`for $x in (1, 2) order by ("a" + $x) return $x`,
		`for $x in //a for $y in //c return concat($x, $y)`,
		`for $x in //a let $s := string($x) where $s != "y" return $s`,
		`some $x in //a satisfies $x/@id = "2"`,
		`every $x in //a satisfies number($x/@id) < 10`,
		`if (//b) then "yes" else "no"`,
		`if (//missing) then "yes" else "no"`,
		`if (//a and //c) then 1 else 2`,
		`if (not(//missing) or //a) then 1 else 2`,
		`<out n="{count(//a)}">{//b/c}</out>`,
		`<out>{//a/text()}</out>`,
		`<wrap><inner>{1 + 2}</inner>{"s"}</wrap>`,
		`1 to 5`,
		`(1 to 3)[2]`,
		`-(//total)`,
		`//total + 1`,
		`//c * 2`,
		`5 idiv 2`,
		`5 mod 0`,
		`1 div 0`,
		`"a" < 1`,
		`//a = //c`,
		`//a[1] is //a[1]`,
		`//a[1] is //a[2]`,
		`string-join(for $x in //a return string($x), "-")`,
		`do enqueue <msg>{//a[1]}</msg> into q1`,
		`do enqueue <msg/> into q1 with prio value 3`,
		`do reset slc key "k"`,
		`qs:message()//a`,
		`qs:queue("q1")//c`,
		`qs:property("p")`,
		`substring("hello", 2, 3)`,
		`normalize-space("  a   b ")`,
		`distinct-values((//a, //a))`,
		`reverse(//a)`,
		`subsequence(//a, 2, 1)`,
		`index-of((1, 2, 3, 2), 2)`,
		`number("nope")`,
		`floor(//total)`,
		`avg(//c)`,
		`min((3, 1, 2))`,
		`. = "x"`,
		`//a[. = "x"]`,
		`//b//a`,
		`//b/descendant-or-self::node()`,
		`string(//missing)`,
		`boolean(//missing)`,
	}
	for _, src := range exprs {
		if _, mismatch := runDifferentialCase(t, src, doc); mismatch != "" {
			t.Errorf("expr %q: %s", src, mismatch)
		}
	}
}
