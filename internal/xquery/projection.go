package xquery

import (
	"demaq/internal/xmldom"
	"demaq/internal/xpath"
)

// ProjectionBuilder computes the static path projection of a queue: the
// union, over every compiled expression that can run against the queue's
// messages (rule bodies and property definitions), of the element paths the
// expression can reference on the context document. The streaming encoder
// (xmldom.StreamEncode) uses the result to avoid materializing subtrees no
// expression will ever read.
//
// The abstraction is deliberately simple and errs toward keeping data:
//
//   - Navigating to an element materializes it (its name, attributes and
//     text children) but not its element children — a trie "spine" node.
//     Existence tests, counting, name access and attribute reads are all
//     satisfied by spine nodes.
//   - Reading a node's VALUE (atomization in comparisons and arithmetic,
//     string()/number() and friends, serialization into constructors or
//     do-enqueue) requires the full subtree: the endpoint is marked All.
//   - Descendant axes and wildcard child steps mark the current nodes All:
//     the trie cannot express "any depth" or "any name" more precisely.
//   - A variable the analysis cannot see the binding of (CompileOptions.
//     ExtraVars) makes the whole analysis imprecise: Build returns nil and
//     the queue falls back to full ingest.
//
// Values flowing out of qs:queue(), qs:slice() and collection() are ignored:
// the engine materializes those documents fully (msgstore.Store.Doc), so
// navigation on them is never constrained by this queue's projection.
// qs:message() returns the context document and is tracked like '/'.
type ProjectionBuilder struct {
	root    *xmldom.Projection
	parent  map[*xmldom.Projection]*xmldom.Projection
	precise bool
}

// NewProjectionBuilder returns a builder with an empty projection.
func NewProjectionBuilder() *ProjectionBuilder {
	return &ProjectionBuilder{
		root:    xmldom.NewProjection(),
		parent:  map[*xmldom.Projection]*xmldom.Projection{},
		precise: true,
	}
}

// aval abstracts a sequence value: the trie positions of element/document
// nodes it may contain, and the owner elements of attribute nodes it may
// contain. Attribute data is always materialized with its element, so
// consuming an attribute value never widens the projection, but the owners
// must be tracked for parent-axis navigation out of an attribute.
type aval struct {
	nodes []*xmldom.Projection
	attrs []*xmldom.Projection // owners of attribute nodes
}

func (v aval) union(o aval) aval {
	return aval{nodes: mergeNodes(v.nodes, o.nodes), attrs: mergeNodes(v.attrs, o.attrs)}
}

func mergeNodes(a, b []*xmldom.Projection) []*xmldom.Projection {
	if len(b) == 0 {
		return a
	}
	out := a
	for _, n := range b {
		dup := false
		for _, x := range out {
			if x == n {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, n)
		}
	}
	return out
}

// Add incorporates one compiled expression evaluated with the message
// document as the context item. The expression's result is treated as
// consumed (property values are atomized; rule results may be serialized),
// and every value read inside it widens the projection.
func (b *ProjectionBuilder) Add(c *Compiled) {
	if c == nil {
		return
	}
	ctx := aval{nodes: []*xmldom.Projection{b.root}}
	b.consume(b.analyze(c.ast, map[string]aval{}, ctx))
}

// Imprecise reports whether analysis hit a construct it cannot bound.
func (b *ProjectionBuilder) Imprecise() bool { return !b.precise }

// Build finalizes the projection. It returns nil when the analysis was
// imprecise or when the projection would keep the whole document anyway —
// in both cases the caller should use plain (unprojected) ingest.
func (b *ProjectionBuilder) Build() *xmldom.Projection {
	if !b.precise || b.root.All() {
		return nil
	}
	b.root.Fingerprint() // freeze before concurrent sharing
	return b.root
}

func (b *ProjectionBuilder) child(n *xmldom.Projection, local string) *xmldom.Projection {
	if n.All() {
		return n // everything below is already kept
	}
	c := n.Child(local)
	if _, ok := b.parent[c]; !ok {
		b.parent[c] = n
	}
	return c
}

// consume marks every element position in v as fully kept: its value is
// being read, so the whole subtree must be materialized.
func (b *ProjectionBuilder) consume(v aval) {
	for _, n := range v.nodes {
		n.MarkAll()
	}
}

func (b *ProjectionBuilder) analyzeConsume(e xpath.Expr, env map[string]aval, ctx aval) {
	b.consume(b.analyze(e, env, ctx))
}

func (b *ProjectionBuilder) analyze(e xpath.Expr, env map[string]aval, ctx aval) aval {
	switch x := e.(type) {
	case nil:
		return aval{}
	case *xpath.SequenceExpr:
		var out aval
		for _, it := range x.Items {
			out = out.union(b.analyze(it, env, ctx))
		}
		return out
	case *xpath.FLWORExpr:
		scope := copyEnv(env)
		for _, cl := range x.Clauses {
			v := b.analyze(cl.Expr, scope, ctx)
			scope[cl.Var] = v
			if cl.PosVar != "" {
				scope[cl.PosVar] = aval{}
			}
		}
		if x.Where != nil {
			// Effective boolean value: existence only, no value read.
			b.analyze(x.Where, scope, ctx)
		}
		for _, os := range x.OrderBy {
			// Sort keys are atomized.
			b.analyzeConsume(os.Key, scope, ctx)
		}
		return b.analyze(x.Return, scope, ctx)
	case *xpath.QuantifiedExpr:
		scope := copyEnv(env)
		for _, cl := range x.Bindings {
			scope[cl.Var] = b.analyze(cl.Expr, scope, ctx)
		}
		b.analyze(x.Satisfies, scope, ctx)
		return aval{}
	case *xpath.IfExpr:
		b.analyze(x.Cond, env, ctx) // EBV
		return b.analyze(x.Then, env, ctx).union(b.analyze(x.Else, env, ctx))
	case *xpath.BinaryExpr:
		l := b.analyze(x.Left, env, ctx)
		r := b.analyze(x.Right, env, ctx)
		switch x.Op {
		case xpath.BinUnion:
			return l.union(r) // node-preserving
		case xpath.BinOr, xpath.BinAnd:
			return aval{} // EBV of operands
		default:
			// Arithmetic and range atomize both operands.
			b.consume(l)
			b.consume(r)
			return aval{}
		}
	case *xpath.ComparisonExpr:
		l := b.analyze(x.Left, env, ctx)
		r := b.analyze(x.Right, env, ctx)
		if !x.NodeIs { // "is" compares identity, no value read
			b.consume(l)
			b.consume(r)
		}
		return aval{}
	case *xpath.UnaryExpr:
		b.analyzeConsume(x.Operand, env, ctx)
		return aval{}
	case *xpath.PathExpr:
		v := ctx
		if x.Start != nil {
			v = b.analyze(x.Start, env, ctx)
		} else if x.Rooted {
			v = aval{nodes: []*xmldom.Projection{b.root}}
		}
		if x.Descend {
			// Leading //: any depth below the start.
			b.consume(v)
		}
		for _, st := range x.Steps {
			v = b.step(st, env, v)
		}
		return v
	case *xpath.FilterExpr:
		v := b.analyze(x.Primary, env, ctx)
		for _, p := range x.Preds {
			b.analyze(p, env, v) // EBV per item
		}
		return v
	case *xpath.VarRef:
		v, ok := env[x.Name]
		if !ok {
			// Bound outside the analyzed expression (ExtraVars): could hold
			// any part of the document.
			b.precise = false
			return aval{}
		}
		return v
	case *xpath.ContextItemExpr:
		return ctx
	case *xpath.Literal, *xpath.TextLiteral:
		return aval{}
	case *xpath.FuncCall:
		return b.funcCall(x, env, ctx)
	case *xpath.ElementConstructor:
		for _, a := range x.Attrs {
			for _, part := range a.Parts {
				b.analyzeConsume(part, env, ctx)
			}
		}
		for _, ct := range x.Content {
			// Content nodes are deep-copied into the constructed tree.
			b.analyzeConsume(ct, env, ctx)
		}
		return aval{} // the constructed tree is not part of the message
	case *xpath.EnqueueExpr:
		b.analyzeConsume(x.What, env, ctx) // serialized on commit
		for _, p := range x.Props {
			b.analyzeConsume(p.Value, env, ctx)
		}
		return aval{}
	case *xpath.ResetExpr:
		b.analyzeConsume(x.Key, env, ctx)
		return aval{}
	default:
		b.precise = false
		return aval{}
	}
}

func (b *ProjectionBuilder) step(st xpath.Step, env map[string]aval, v aval) aval {
	if st.Primary != nil {
		out := b.analyze(st.Primary, env, v)
		for _, p := range st.Preds {
			b.analyze(p, env, out)
		}
		return out
	}
	var out aval
	switch st.Axis {
	case xpath.AxisChild:
		switch st.Test.Kind {
		case xpath.TestName:
			for _, n := range v.nodes {
				out.nodes = mergeNodes(out.nodes, []*xmldom.Projection{b.child(n, st.Test.Name.Local)})
			}
		case xpath.TestElement:
			if st.Test.Name.Local != "" {
				for _, n := range v.nodes {
					out.nodes = mergeNodes(out.nodes, []*xmldom.Projection{b.child(n, st.Test.Name.Local)})
				}
				break
			}
			fallthrough
		case xpath.TestAnyName, xpath.TestNode:
			// Any-name children: the trie cannot enumerate them.
			b.consume(v)
			out.nodes = v.nodes
		case xpath.TestText, xpath.TestComment:
			// Text and comment children are always materialized alongside
			// their (materialized) parent; they carry no element positions.
		case xpath.TestAttribute:
			out.attrs = v.nodes
		case xpath.TestDocument:
			// child::document-node() never matches.
		}
	case xpath.AxisDescendant, xpath.AxisDescendantOrSelf:
		// Any depth: keep the whole subtree of every current node.
		b.consume(v)
		out.nodes = v.nodes
	case xpath.AxisSelf:
		out = v
	case xpath.AxisParent:
		out.nodes = v.attrs // parent of an attribute is its owner
		for _, n := range v.nodes {
			if p := b.parent[n]; p != nil {
				out.nodes = mergeNodes(out.nodes, []*xmldom.Projection{p})
			}
		}
	case xpath.AxisAncestor, xpath.AxisAncestorOrSelf:
		if st.Axis == xpath.AxisAncestorOrSelf {
			out = out.union(v)
		}
		seed := mergeNodes(append([]*xmldom.Projection(nil), v.attrs...), v.nodes)
		for _, n := range seed {
			for p := b.parent[n]; p != nil; p = b.parent[p] {
				out.nodes = mergeNodes(out.nodes, []*xmldom.Projection{p})
			}
			out.nodes = mergeNodes(out.nodes, []*xmldom.Projection{b.root})
		}
	case xpath.AxisAttribute:
		out.attrs = v.nodes // attributes ride along with their element
	case xpath.AxisFollowingSibling, xpath.AxisPrecedingSibling:
		for _, n := range v.nodes {
			p := b.parent[n]
			if p == nil {
				continue // root element has no element siblings
			}
			switch st.Test.Kind {
			case xpath.TestName:
				out.nodes = mergeNodes(out.nodes, []*xmldom.Projection{b.child(p, st.Test.Name.Local)})
			case xpath.TestText, xpath.TestComment:
				// Always materialized with the parent.
			default:
				p.MarkAll()
				out.nodes = mergeNodes(out.nodes, []*xmldom.Projection{p})
			}
		}
	default:
		b.precise = false
	}
	for _, p := range st.Preds {
		b.analyze(p, env, out)
	}
	return out
}

func (b *ProjectionBuilder) funcCall(x *xpath.FuncCall, env map[string]aval, ctx aval) aval {
	name := x.Local
	if x.Prefix != "" {
		name = x.Prefix + ":" + x.Local
	}
	args := make([]aval, len(x.Args))
	for i, a := range x.Args {
		args[i] = b.analyze(a, env, ctx)
	}
	switch name {
	case "exists", "empty", "count", "not", "boolean",
		"name", "local-name", "namespace-uri":
		// Shell reads: satisfied by a materialized node, no value needed.
		return aval{}
	case "position", "last", "true", "false", "current-dateTime":
		return aval{}
	case "root":
		return aval{nodes: []*xmldom.Projection{b.root}}
	case "qs:message":
		return aval{nodes: []*xmldom.Projection{b.root}}
	case "qs:queue", "qs:slice", "collection":
		// Other documents are materialized fully by the engine; this
		// queue's projection does not constrain them.
		for _, a := range args {
			b.consume(a)
		}
		return aval{}
	case "qs:property", "qs:slicekey":
		for _, a := range args {
			b.consume(a)
		}
		return aval{}
	case "reverse", "subsequence":
		// Node-preserving: the result draws nodes from the first argument.
		for _, a := range args[1:] {
			b.consume(a)
		}
		if len(args) > 0 {
			return args[0]
		}
		return aval{}
	case "string", "number", "string-length", "normalize-space":
		if len(args) == 0 {
			b.consume(ctx) // zero-arg form reads the context item's value
			return aval{}
		}
	}
	// Default: the function atomizes or serializes its arguments. Returning
	// the union of node-bearing arguments keeps navigation on the result
	// sound (the nodes are marked All, so anything below them is kept).
	var out aval
	for _, a := range args {
		b.consume(a)
		out = out.union(a)
	}
	return out
}

func copyEnv(env map[string]aval) map[string]aval {
	out := make(map[string]aval, len(env)+4)
	for k, v := range env {
		out[k] = v
	}
	return out
}
