package xquery

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// fakeRuntime is a test double for the queue-system runtime.
type fakeRuntime struct {
	message    *xmldom.Node
	queues     map[string][]*xmldom.Node
	curQueue   string
	props      map[string]xdm.Value
	slice      []*xmldom.Node
	sliceKey   xdm.Value
	collection map[string][]*xmldom.Node
	now        time.Time
}

func (f *fakeRuntime) Message() (*xmldom.Node, error) {
	if f.message == nil {
		return nil, fmt.Errorf("no current message")
	}
	return f.message, nil
}

func (f *fakeRuntime) Queue(name string) ([]*xmldom.Node, error) {
	if name == "" {
		name = f.curQueue
	}
	docs, ok := f.queues[name]
	if !ok {
		return nil, fmt.Errorf("unknown queue %q", name)
	}
	return docs, nil
}

func (f *fakeRuntime) Property(name string) (xdm.Value, error) {
	v, ok := f.props[name]
	if !ok {
		return xdm.Value{}, fmt.Errorf("unknown property %q", name)
	}
	return v, nil
}

func (f *fakeRuntime) Slice() ([]*xmldom.Node, error) { return f.slice, nil }
func (f *fakeRuntime) SliceKey() (xdm.Value, error)   { return f.sliceKey, nil }
func (f *fakeRuntime) Collection(name string) ([]*xmldom.Node, error) {
	return f.collection[name], nil
}
func (f *fakeRuntime) Now() time.Time {
	if f.now.IsZero() {
		return time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC)
	}
	return f.now
}

func evalStr(t *testing.T, src string, doc *xmldom.Node, rt Runtime) (xdm.Sequence, *UpdateList) {
	t.Helper()
	c := MustCompile(src, CompileOptions{AllowSlice: true})
	if rt == nil {
		rt = &fakeRuntime{}
	}
	seq, ups, err := Eval(c, rt, EvalOptions{ContextDoc: doc})
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return seq, ups
}

func evalOne(t *testing.T, src string, doc *xmldom.Node) xdm.Value {
	t.Helper()
	seq, _ := evalStr(t, src, doc, nil)
	if len(seq) != 1 {
		t.Fatalf("eval %q: want 1 item, got %d", src, len(seq))
	}
	return xdm.Atomize(seq[0])
}

func TestEvalArithmetic(t *testing.T) {
	cases := map[string]string{
		`1 + 2`:       "3",
		`7 - 10`:      "-3",
		`6 * 7`:       "42",
		`7 div 2`:     "3.5",
		`7 idiv 2`:    "3",
		`7 mod 3`:     "1",
		`-(3 + 4)`:    "-7",
		`2 + 3 * 4`:   "14",
		`(2 + 3) * 4`: "20",
		`1.5 + 1`:     "2.5",
	}
	for src, want := range cases {
		if got := evalOne(t, src, nil).StringValue(); got != want {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
	// Division by zero on integers.
	c := MustCompile(`1 div 0`, CompileOptions{})
	if _, _, err := Eval(c, &fakeRuntime{}, EvalOptions{}); err == nil {
		t.Error("integer division by zero should error")
	}
	// Empty operand propagates.
	seq, _ := evalStr(t, `() + 1`, nil, nil)
	if len(seq) != 0 {
		t.Error("arithmetic with empty operand yields empty")
	}
}

func TestEvalLogic(t *testing.T) {
	cases := map[string]bool{
		`true() and true()`:                    true,
		`true() and false()`:                   false,
		`false() or true()`:                    true,
		`not(false())`:                         true,
		`1 = 1 and 2 = 2`:                      true,
		`some $x in (1,2,3) satisfies $x = 2`:  true,
		`every $x in (1,2,3) satisfies $x > 0`: true,
		`every $x in (1,2,3) satisfies $x > 1`: false,
		`some $x in () satisfies $x = 1`:       false,
		`every $x in () satisfies $x = 1`:      true,
	}
	for src, want := range cases {
		v := evalOne(t, src, nil)
		if v.B != want {
			t.Errorf("%s = %v, want %v", src, v.B, want)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// The right operand divides by zero; and/or must not evaluate it.
	if v := evalOne(t, `false() and (1 div 0 = 1)`, nil); v.B {
		t.Error("and should short-circuit")
	}
	if v := evalOne(t, `true() or (1 div 0 = 1)`, nil); !v.B {
		t.Error("or should short-circuit")
	}
}

const orderDoc = `<order>
  <orderID>42</orderID>
  <customer vip="yes"><customerID>23</customerID><name>ACME</name></customer>
  <items>
    <item><sku>A1</sku><qty>2</qty><price>10.5</price></item>
    <item><sku>B2</sku><qty>1</qty><price>99</price></item>
    <item><sku>C3</sku><qty>5</qty><price>3</price></item>
  </items>
</order>`

func TestEvalPaths(t *testing.T) {
	doc := xmldom.MustParse(orderDoc)
	cases := map[string]string{
		`/order/orderID`:                           "42",
		`//customerID`:                             "23",
		`//customer/@vip`:                          "yes",
		`count(//item)`:                            "3",
		`//item[2]/sku`:                            "B2",
		`//item[last()]/sku`:                       "C3",
		`//item[qty > 1][2]/sku`:                   "C3",
		`count(//item[price < 50])`:                "2",
		`//item[sku = "B2"]/price`:                 "99",
		`string(//customer/name)`:                  "ACME",
		`//orderID/text()`:                         "42",
		`count(//order//sku)`:                      "3",
		`count(/order/items/*)`:                    "3",
		`//item[1]/following-sibling::item[1]/sku`: "B2",
		`//item[3]/preceding-sibling::item[1]/sku`: "B2", // nearest first
		`//sku[1]/ancestor::items/../orderID`:      "42",
		`count(//item/self::item)`:                 "3",
		`name(/order)`:                             "order",
		`local-name(//customer/@vip)`:              "vip",
		`sum(//qty)`:                               "8",
		`max(//price)`:                             "99",
		`min(//price)`:                             "3",
		`avg(//qty)`:                               "2.6666666666666665",
	}
	for src, want := range cases {
		seq, _ := evalStr(t, src, doc, nil)
		if len(seq) == 0 {
			t.Errorf("%s: empty result", src)
			continue
		}
		got := xdm.ItemString(seq[0])
		if got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestEvalPathDocOrderAndDedup(t *testing.T) {
	doc := xmldom.MustParse(orderDoc)
	// Union of overlapping sets: dedup + doc order.
	seq, _ := evalStr(t, `//item[2] | //item | //item[1]`, doc, nil)
	if len(seq) != 3 {
		t.Fatalf("union size = %d", len(seq))
	}
	first := seq[0].(xdm.Node).N
	if first.FirstChildElement("sku").StringValue() != "A1" {
		t.Error("union not in document order")
	}
	// Parent steps dedup: every item's parent is the same items element.
	seq, _ = evalStr(t, `count(//item/..)`, doc, nil)
	if xdm.ItemString(seq[0]) != "1" {
		t.Error("parent step should deduplicate")
	}
}

func TestEvalFLWOR(t *testing.T) {
	doc := xmldom.MustParse(orderDoc)
	seq, _ := evalStr(t, `for $i in //item where $i/qty > 1 return string($i/sku)`, doc, nil)
	if len(seq) != 2 || xdm.ItemString(seq[0]) != "A1" || xdm.ItemString(seq[1]) != "C3" {
		t.Fatalf("flwor result: %v", seq)
	}
	seq, _ = evalStr(t, `for $i in //item order by number($i/price) return string($i/sku)`, doc, nil)
	got := []string{xdm.ItemString(seq[0]), xdm.ItemString(seq[1]), xdm.ItemString(seq[2])}
	if strings.Join(got, ",") != "C3,A1,B2" {
		t.Fatalf("order by: %v", got)
	}
	seq, _ = evalStr(t, `for $i in //item order by number($i/price) descending return string($i/sku)`, doc, nil)
	if xdm.ItemString(seq[0]) != "B2" {
		t.Fatal("descending order")
	}
	// let + positional var.
	seq, _ = evalStr(t, `for $i at $p in //item let $s := $i/sku where $p = 2 return string($s)`, doc, nil)
	if len(seq) != 1 || xdm.ItemString(seq[0]) != "B2" {
		t.Fatalf("positional: %v", seq)
	}
	// Nested iteration.
	seq, _ = evalStr(t, `for $a in (1,2), $b in (10,20) return $a * $b`, nil, nil)
	if len(seq) != 4 || xdm.ItemString(seq[3]) != "40" {
		t.Fatalf("cartesian: %v", seq)
	}
}

func TestEvalConstructors(t *testing.T) {
	doc := xmldom.MustParse(orderDoc)
	seq, _ := evalStr(t, `<ack id="{//orderID}">{//customer/name} ok {1+1}</ack>`, doc, nil)
	if len(seq) != 1 {
		t.Fatal("constructor yields one element")
	}
	el := seq[0].(xdm.Node).N
	if el.Name.Local != "ack" {
		t.Fatal("constructed name")
	}
	if v, _ := el.Attr("id"); v != "42" {
		t.Fatalf("constructed attr: %q", v)
	}
	// Node copy: the name element is deep-copied into the new tree.
	nameEl := el.FirstChildElement("name")
	if nameEl == nil || nameEl.StringValue() != "ACME" {
		t.Fatal("copied child element")
	}
	if nameEl.Document() == doc {
		t.Fatal("copied node must belong to the constructed tree")
	}
	if !strings.Contains(el.StringValue(), " ok 2") {
		t.Fatalf("text content: %q", el.StringValue())
	}
	// Sequence of atomics inside constructor joins with spaces.
	seq, _ = evalStr(t, `<v>{(1,2,3)}</v>`, nil, nil)
	if got := seq[0].(xdm.Node).N.StringValue(); got != "1 2 3" {
		t.Fatalf("atomic join: %q", got)
	}
	// Adjacent enclosed expressions do not insert spaces.
	seq, _ = evalStr(t, `<v>{1}{2}</v>`, nil, nil)
	if got := seq[0].(xdm.Node).N.StringValue(); got != "12" {
		t.Fatalf("adjacent enclosed: %q", got)
	}
}

func TestEvalStringFunctions(t *testing.T) {
	cases := map[string]string{
		`concat("a","b","c")`:            "abc",
		`substring("hello", 2, 3)`:       "ell",
		`substring-before("a=b", "=")`:   "a",
		`substring-after("a=b", "=")`:    "b",
		`normalize-space("  a   b ")`:    "a b",
		`upper-case("abc")`:              "ABC",
		`lower-case("AbC")`:              "abc",
		`translate("abcabc", "ab", "x")`: "xcxc",
		`string-join(("a","b"), "-")`:    "a-b",
		`string-length("héllo")`:         "5",
		`replace("a1b2", "[0-9]", "#")`:  "a#b#",
		`string(42)`:                     "42",
	}
	for src, want := range cases {
		if got := evalOne(t, src, nil).StringValue(); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
	boolCases := map[string]bool{
		`contains("hello", "ell")`:   true,
		`starts-with("hello", "he")`: true,
		`ends-with("hello", "lo")`:   true,
		`matches("a1b", "[0-9]")`:    true,
		`matches("abc", "^[0-9]+$")`: false,
	}
	for src, want := range boolCases {
		if got := evalOne(t, src, nil).B; got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	seq, _ := evalStr(t, `tokenize("a,b,c", ",")`, nil, nil)
	if len(seq) != 3 {
		t.Error("tokenize")
	}
}

func TestEvalSequenceFunctions(t *testing.T) {
	cases := map[string]string{
		`count((1,2,3))`: "3",
		// xs:string "2" and xs:integer 2 are incomparable, hence distinct.
		`count(distinct-values((1,2,2,"2",3)))`:   "4",
		`count(subsequence((1,2,3,4), 2, 2))`:     "2",
		`string-join(reverse(("a","b","c")), "")`: "cba",
		`index-of((10,20,30), 20)`:                "2",
		`count(1 to 5)`:                           "5",
		`count(5 to 1)`:                           "0",
		`sum(())`:                                 "0",
		`count(data((1, "x")))`:                   "2",
	}
	for src, want := range cases {
		if got := evalOne(t, src, nil).StringValue(); got != want {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
}

func TestEvalQsFunctions(t *testing.T) {
	msg := xmldom.MustParse(`<offerRequest><requestID>r1</requestID><customerID>23</customerID></offerRequest>`)
	inv1 := xmldom.MustParse(`<invoice><customerID>23</customerID><amount>100</amount></invoice>`)
	inv2 := xmldom.MustParse(`<invoice><customerID>99</customerID><amount>5</amount></invoice>`)
	rt := &fakeRuntime{
		message:  msg,
		curQueue: "crm",
		queues: map[string][]*xmldom.Node{
			"crm":      {msg},
			"invoices": {inv1, inv2},
		},
		props:    map[string]xdm.Value{"orderID": xdm.NewString("o7")},
		slice:    []*xmldom.Node{msg, inv1},
		sliceKey: xdm.NewString("r1"),
		collection: map[string][]*xmldom.Node{
			"crm": {xmldom.MustParse(`<pricelist><p sku="A1">10</p></pricelist>`)},
		},
	}
	c := MustCompile(`qs:message()//requestID`, CompileOptions{})
	seq, _, err := Eval(c, rt, EvalOptions{ContextDoc: msg})
	if err != nil || len(seq) != 1 || xdm.ItemString(seq[0]) != "r1" {
		t.Fatalf("qs:message: %v %v", seq, err)
	}

	// The paper's Fig. 6 credit check predicate. qs:message() returns the
	// document node (paper Sec. 3.4 text), so the figure's child step is
	// transcribed as a descendant step.
	c = MustCompile(`qs:queue("invoices")[//customerID = qs:message()//customerID]`, CompileOptions{})
	seq, _, err = Eval(c, rt, EvalOptions{ContextDoc: msg})
	if err != nil || len(seq) != 1 {
		t.Fatalf("queue predicate: %d items, %v", len(seq), err)
	}

	c = MustCompile(`qs:queue()`, CompileOptions{})
	seq, _, err = Eval(c, rt, EvalOptions{ContextDoc: msg})
	if err != nil || len(seq) != 1 {
		t.Fatalf("default queue: %v %v", seq, err)
	}

	c = MustCompile(`qs:property("orderID")`, CompileOptions{})
	seq, _, err = Eval(c, rt, EvalOptions{ContextDoc: msg})
	if err != nil || xdm.ItemString(seq[0]) != "o7" {
		t.Fatalf("property: %v %v", seq, err)
	}

	c = MustCompile(`count(qs:slice())`, CompileOptions{AllowSlice: true})
	seq, _, err = Eval(c, rt, EvalOptions{ContextDoc: msg})
	if err != nil || xdm.ItemString(seq[0]) != "2" {
		t.Fatalf("slice: %v %v", seq, err)
	}

	c = MustCompile(`qs:slicekey()`, CompileOptions{AllowSlice: true})
	seq, _, err = Eval(c, rt, EvalOptions{ContextDoc: msg})
	if err != nil || xdm.ItemString(seq[0]) != "r1" {
		t.Fatalf("slicekey: %v %v", seq, err)
	}

	c = MustCompile(`collection("crm")//p/@sku`, CompileOptions{})
	seq, _, err = Eval(c, rt, EvalOptions{ContextDoc: msg})
	if err != nil || xdm.ItemString(seq[0]) != "A1" {
		t.Fatalf("collection: %v %v", seq, err)
	}
}

func TestSliceFunctionsRequireSlicingRule(t *testing.T) {
	e := mustParse(t, `qs:slice()`)
	if _, err := Compile(e, CompileOptions{AllowSlice: false}); err == nil {
		t.Fatal("qs:slice outside slicing rule must be a static error")
	}
	e = mustParse(t, `do reset`)
	if _, err := Compile(e, CompileOptions{AllowSlice: false}); err == nil {
		t.Fatal("bare do reset outside slicing rule must be a static error")
	}
}

func TestEvalUpdates(t *testing.T) {
	doc := xmldom.MustParse(orderDoc)
	src := `if (//orderID) then
	          (do enqueue <check>{//orderID}</check> into finance,
	           do enqueue <log>{//customerID}</log> into audit
	             with Sender value "urn:test" with Level value 3,
	           do reset orders key string(//orderID))`
	_, ups := evalStr(t, src, doc, nil)
	if ups.Len() != 3 {
		t.Fatalf("pending updates: %d", ups.Len())
	}
	enq := ups.Updates[0].(*EnqueueUpdate)
	if enq.Queue != "finance" || enq.Doc.Root().Name.Local != "check" {
		t.Fatalf("first enqueue: %+v", enq)
	}
	if enq.Doc.Root().StringValue() != "42" {
		t.Fatal("payload evaluated against message")
	}
	enq2 := ups.Updates[1].(*EnqueueUpdate)
	if enq2.Props["Sender"].StringValue() != "urn:test" || enq2.Props["Level"].I != 3 {
		t.Fatalf("props: %+v", enq2.Props)
	}
	rst := ups.Updates[2].(*ResetUpdate)
	if rst.Slicing != "orders" || rst.Key.StringValue() != "42" || rst.Implicit {
		t.Fatalf("reset: %+v", rst)
	}

	// Condition false: no updates (and no else branch).
	_, ups = evalStr(t, `if (//nonexistent) then do enqueue <x/> into q`, doc, nil)
	if ups.Len() != 0 {
		t.Fatal("false condition must produce no updates")
	}
}

func TestEvalUpdateInFLWOR(t *testing.T) {
	doc := xmldom.MustParse(orderDoc)
	_, ups := evalStr(t, `for $i in //item return do enqueue <pick>{$i/sku}</pick> into warehouse`, doc, nil)
	if ups.Len() != 3 {
		t.Fatalf("per-iteration updates: %d", ups.Len())
	}
	if ups.Updates[2].(*EnqueueUpdate).Doc.Root().StringValue() != "C3" {
		t.Fatal("updates in iteration order")
	}
}

func TestSnapshotSemanticsNoSideEffectsDuringEval(t *testing.T) {
	// A1 ablation: evaluation only collects updates; queue contents seen by
	// qs:queue() do not change mid-evaluation even after a do enqueue.
	msg := xmldom.MustParse(`<m/>`)
	rt := &fakeRuntime{
		message:  msg,
		curQueue: "q",
		queues:   map[string][]*xmldom.Node{"q": {msg}, "out": {}},
	}
	src := `(do enqueue <a/> into out, count(qs:queue("out")))`
	c := MustCompile(src, CompileOptions{})
	seq, ups, err := Eval(c, rt, EvalOptions{ContextDoc: msg})
	if err != nil {
		t.Fatal(err)
	}
	if ups.Len() != 1 {
		t.Fatal("one pending enqueue")
	}
	if len(seq) != 1 || xdm.ItemString(seq[0]) != "0" {
		t.Fatalf("snapshot violated: out queue visible size = %v", seq)
	}
}

func TestEvalDynamicErrors(t *testing.T) {
	doc := xmldom.MustParse(`<a><b>1</b><b>2</b></a>`)
	bad := []string{
		`do enqueue (//b) into q`,  // two items
		`do enqueue "text" into q`, // atomic payload
		`1 + "x"`,                  // non-numeric arithmetic
		`(1,2) + 1`,                // sequence operand
		`$undefined`,               // unbound variable (dynamic if not compiled)
	}
	for _, src := range bad {
		e := mustParse(t, src)
		c := &Compiled{ast: e}
		if _, _, err := Eval(c, &fakeRuntime{}, EvalOptions{ContextDoc: doc}); err == nil {
			t.Errorf("expected dynamic error for %q", src)
		}
	}
}

func TestCompileStaticErrors(t *testing.T) {
	bad := []string{
		`$x + 1`,              // unbound variable
		`unknown-function(1)`, // unknown function
		`concat("a")`,         // arity
		`zz:foo()`,            // unknown prefix
	}
	for _, src := range bad {
		e := mustParse(t, src)
		if _, err := Compile(e, CompileOptions{}); err == nil {
			t.Errorf("expected static error for %q", src)
		}
	}
	// FLWOR-bound variables are fine.
	e := mustParse(t, `for $x in (1,2) return $x`)
	if _, err := Compile(e, CompileOptions{}); err != nil {
		t.Errorf("flwor binding: %v", err)
	}
	// ExtraVars extend scope.
	e = mustParse(t, `$msg/a`)
	if _, err := Compile(e, CompileOptions{ExtraVars: []string{"msg"}}); err != nil {
		t.Errorf("extra vars: %v", err)
	}
}

func TestEvalCurrentDateTime(t *testing.T) {
	rt := &fakeRuntime{now: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
	c := MustCompile(`current-dateTime()`, CompileOptions{})
	seq, _, err := Eval(c, rt, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v := seq[0].(xdm.Value)
	if v.T != xdm.TypeDateTime || !v.D.Equal(rt.now) {
		t.Fatalf("current-dateTime: %+v", v)
	}
}

func TestEvalPositionInPredicates(t *testing.T) {
	doc := xmldom.MustParse(`<l><i>a</i><i>b</i><i>c</i><i>d</i></l>`)
	seq, _ := evalStr(t, `//i[position() > 2]`, doc, nil)
	if len(seq) != 2 || xdm.ItemString(seq[0]) != "c" {
		t.Fatalf("position(): %v", seq)
	}
	seq, _ = evalStr(t, `//i[position() = last()]`, doc, nil)
	if len(seq) != 1 || xdm.ItemString(seq[0]) != "d" {
		t.Fatal("last()")
	}
}

func TestEvalVariablesProvided(t *testing.T) {
	c := MustCompile(`$n * 2`, CompileOptions{ExtraVars: []string{"n"}})
	seq, _, err := Eval(c, &fakeRuntime{}, EvalOptions{
		Vars: map[string]xdm.Sequence{"n": xdm.Singleton(xdm.NewInteger(21))},
	})
	if err != nil || xdm.ItemString(seq[0]) != "42" {
		t.Fatalf("external vars: %v %v", seq, err)
	}
}

func mustParse(t *testing.T, src string) xpathExpr {
	t.Helper()
	e, err := parseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}
