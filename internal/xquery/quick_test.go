package xquery

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// Property-based tests over evaluator invariants.

func evalQ(t *testing.T, src string, doc *xmldom.Node) (xdm.Sequence, error) {
	t.Helper()
	e, err := parseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c, err := Compile(e, CompileOptions{AllowSlice: true})
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	seq, _, err := Eval(c, &fakeRuntime{}, EvalOptions{ContextDoc: doc})
	return seq, err
}

// count(lo to hi) == max(0, hi-lo+1) and sum follows Gauss.
func TestQuickRangeInvariants(t *testing.T) {
	f := func(loRaw, span int8) bool {
		lo := int64(loRaw)
		hi := lo + int64(span%50)
		src := fmt.Sprintf("count(%d to %d)", lo, hi)
		seq, err := evalQ(t, src, nil)
		if err != nil {
			return false
		}
		want := hi - lo + 1
		if want < 0 {
			want = 0
		}
		if seq[0].(xdm.Value).I != want {
			return false
		}
		if want == 0 {
			return true
		}
		sumSrc := fmt.Sprintf("sum(%d to %d)", lo, hi)
		seq, err = evalQ(t, sumSrc, nil)
		if err != nil {
			return false
		}
		gauss := (lo + hi) * want / 2
		return seq[0].(xdm.Value).I == gauss
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// reverse(reverse(s)) preserves s; count is invariant under reverse.
func TestQuickReverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(10)
		items := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				items += ","
			}
			items += fmt.Sprint(r.Intn(100))
		}
		src := fmt.Sprintf("string-join(for $x in reverse(reverse((%s))) return string($x), \",\")", items)
		seq, err := evalQ(t, src, nil)
		if err != nil {
			return false
		}
		return xdm.ItemString(seq[0]) == items
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Predicates by position: //i[k] selects exactly the k-th element, and
// unions of disjoint position predicates partition the sequence.
func TestQuickPositionalPredicates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		xml := "<l>"
		for i := 0; i < n; i++ {
			xml += fmt.Sprintf("<i>%d</i>", i)
		}
		xml += "</l>"
		doc := xmldom.MustParse(xml)
		k := 1 + r.Intn(n)
		seq, err := evalQ(t, fmt.Sprintf("//i[%d]", k), doc)
		if err != nil || len(seq) != 1 {
			return false
		}
		if xdm.ItemString(seq[0]) != fmt.Sprint(k-1) {
			return false
		}
		// position() = k ≡ [k]
		seq2, err := evalQ(t, fmt.Sprintf("//i[position() = %d]", k), doc)
		if err != nil || len(seq2) != 1 {
			return false
		}
		return seq2[0].(xdm.Node).N == seq[0].(xdm.Node).N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// FLWOR order by yields a sorted permutation.
func TestQuickOrderBySorts(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(15)
		items := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				items += ","
			}
			items += fmt.Sprint(r.Intn(50))
		}
		src := fmt.Sprintf("for $x in (%s) order by $x return $x", items)
		seq, err := evalQ(t, src, nil)
		if err != nil || len(seq) != n {
			return false
		}
		prev := int64(-1)
		for _, it := range seq {
			v := it.(xdm.Value).I
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Constructed elements round-trip through serialization: the constructor
// result parses back to a deep-equal tree.
func TestQuickConstructorSerializeParse(t *testing.T) {
	f := func(a, b uint8) bool {
		src := fmt.Sprintf(`<r x="%d"><c>%d</c><c>tail</c></r>`, a, b)
		seq, err := evalQ(t, src, nil)
		if err != nil || len(seq) != 1 {
			return false
		}
		el := seq[0].(xdm.Node).N
		text := xmldom.Serialize(el)
		doc2, err := xmldom.ParseString(text)
		if err != nil {
			return false
		}
		return xmldom.DeepEqual(el, doc2.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
