// Package xquery implements static analysis, compilation and evaluation of
// the Demaq expression language parsed by internal/xpath: an XQuery 1.0
// subset with the XQuery Update Facility's pending-update-list semantics
// and the Demaq queue primitives (Sec. 3.2-3.5 of the paper).
//
// Evaluating an expression never applies side effects. Update primitives
// (do enqueue / do reset) append fully-evaluated actions to a pending
// update list which the caller (the rule engine) applies after all rules
// for a message have been evaluated — the snapshot semantics of Sec. 3.1.
package xquery

import (
	"fmt"
	"time"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// Runtime supplies the environment-dependent operations of the qs:
// function library and collection(). The engine implements it against the
// message store inside the processing transaction; tests use fakes.
type Runtime interface {
	// Message returns the document node of the message being processed.
	Message() (*xmldom.Node, error)
	// Queue returns the document nodes of all messages in the named queue;
	// the empty name designates the queue of the current message.
	Queue(name string) ([]*xmldom.Node, error)
	// Property returns the value of the named property of the current
	// message.
	Property(name string) (xdm.Value, error)
	// Slice returns the documents of all messages in the slice of the
	// current message; only valid for rules attached to a slicing.
	Slice() ([]*xmldom.Node, error)
	// SliceKey returns the slice key of the current slice.
	SliceKey() (xdm.Value, error)
	// Collection returns the master-data collection with the given name.
	Collection(name string) ([]*xmldom.Node, error)
	// Now returns the current dateTime; the engine pins it per transaction
	// so fn:current-dateTime() is stable during one rule evaluation.
	Now() time.Time
}

// Update is one pending action produced by an updating expression.
type Update interface {
	updateMarker()
}

// EnqueueUpdate creates a message in a queue. Payload and property values
// are fully evaluated; applying the update performs no expression work.
type EnqueueUpdate struct {
	Queue string
	Doc   *xmldom.Node // document node
	Props map[string]xdm.Value
}

func (*EnqueueUpdate) updateMarker() {}

// ResetUpdate resets a slice, beginning a new lifetime.
type ResetUpdate struct {
	Slicing  string    // empty: the slicing of the current rule
	Key      xdm.Value // zero Value (TypeUntyped, "") + Implicit: key of the current slice
	Implicit bool      // true when "do reset" was used without arguments
}

func (*ResetUpdate) updateMarker() {}

// UpdateList is an ordered pending update list. Per the paper (Sec. 4.4.1)
// the lists produced by the rules of a queue are concatenated into a single
// sequence and applied in order.
type UpdateList struct {
	Updates []Update
}

// Append adds an update.
func (u *UpdateList) Append(up Update) { u.Updates = append(u.Updates, up) }

// Len returns the number of pending updates.
func (u *UpdateList) Len() int { return len(u.Updates) }

// DynError is a dynamic (runtime) evaluation error with an XQuery-style
// error code.
type DynError struct {
	Code string
	Msg  string
}

func (e *DynError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Msg) }

func dynErr(code, format string, args ...any) error {
	return &DynError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// StaticError is a compile-time error.
type StaticError struct {
	Msg string
}

func (e *StaticError) Error() string { return "static error: " + e.Msg }

func staticErr(format string, args ...any) error {
	return &StaticError{Msg: fmt.Sprintf(format, args...)}
}
