package xquery

import "demaq/internal/xpath"

// Aliases used by tests to keep call sites short.
type xpathExpr = xpath.Expr

func parseExpr(src string) (xpath.Expr, error) { return xpath.ParseExprString(src) }
