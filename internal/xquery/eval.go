package xquery

import (
	"math"
	"sort"
	"strings"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xpath"
)

// EvalOptions configure one evaluation.
type EvalOptions struct {
	// ContextDoc is the initial context item (the triggering message's
	// document node for rules). May be nil for context-free expressions.
	ContextDoc *xmldom.Node
	// Vars provides externally bound variables.
	Vars map[string]xdm.Sequence
	// Namespaces maps prefixes used in name tests to URIs.
	Namespaces map[string]string
}

// Eval evaluates a compiled expression. It returns the result sequence and
// the pending update list produced by update primitives. No side effects
// are performed. Expressions compiled with a program (the default) run the
// flat instruction backend; others fall back to the AST interpreter.
func Eval(c *Compiled, rt Runtime, opts EvalOptions) (xdm.Sequence, *UpdateList, error) {
	if c.prog != nil {
		return evalProgram(c.prog, rt, opts)
	}
	return EvalInterpreted(c, rt, opts)
}

// EvalInterpreted evaluates by walking the AST recursively — the reference
// implementation the compiled backend is differentially tested against
// (differential_test.go), and the execution path of
// CompileOptions.NoProgram.
func EvalInterpreted(c *Compiled, rt Runtime, opts EvalOptions) (xdm.Sequence, *UpdateList, error) {
	ev := &evaluator{rt: rt, updates: &UpdateList{}, ns: opts.Namespaces}
	ctx := &evalCtx{pos: 1, size: 1}
	if opts.ContextDoc != nil {
		ctx.item = xdm.Node{N: opts.ContextDoc}
	}
	for name, val := range opts.Vars {
		ctx.vars = &frame{name: name, val: val, parent: ctx.vars}
	}
	seq, err := ev.eval(c.ast, ctx)
	if err != nil {
		return nil, nil, err
	}
	return seq, ev.updates, nil
}

type evaluator struct {
	rt      Runtime
	updates *UpdateList
	ns      map[string]string
}

// evalCtx is the dynamic context: context item, position, size, variables.
type evalCtx struct {
	item xdm.Item // nil = absent
	pos  int
	size int
	vars *frame
}

type frame struct {
	name   string
	val    xdm.Sequence
	parent *frame
}

func (f *frame) lookup(name string) (xdm.Sequence, bool) {
	for cur := f; cur != nil; cur = cur.parent {
		if cur.name == name {
			return cur.val, true
		}
	}
	return nil, false
}

func (ctx *evalCtx) withItem(it xdm.Item, pos, size int) *evalCtx {
	return &evalCtx{item: it, pos: pos, size: size, vars: ctx.vars}
}

func (ctx *evalCtx) bind(name string, val xdm.Sequence) *evalCtx {
	return &evalCtx{item: ctx.item, pos: ctx.pos, size: ctx.size,
		vars: &frame{name: name, val: val, parent: ctx.vars}}
}

func (ctx *evalCtx) contextNode() (*xmldom.Node, error) {
	if ctx.item == nil {
		return nil, dynErr("XPDY0002", "context item is absent")
	}
	n, ok := ctx.item.(xdm.Node)
	if !ok {
		return nil, dynErr("XPTY0020", "context item is not a node")
	}
	return n.N, nil
}

func (ev *evaluator) eval(e xpath.Expr, ctx *evalCtx) (xdm.Sequence, error) {
	switch x := e.(type) {
	case *xpath.Literal:
		return xdm.Singleton(x.Value), nil
	case *xpath.TextLiteral:
		return xdm.Singleton(xdm.NewString(x.Text)), nil
	case *xpath.VarRef:
		if v, ok := ctx.vars.lookup(x.Name); ok {
			return v, nil
		}
		return nil, dynErr("XPDY0002", "unbound variable $%s", x.Name)
	case *xpath.ContextItemExpr:
		if ctx.item == nil {
			return nil, dynErr("XPDY0002", "context item is absent")
		}
		return xdm.Singleton(ctx.item), nil
	case *xpath.SequenceExpr:
		var out xdm.Sequence
		for _, it := range x.Items {
			s, err := ev.eval(it, ctx)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	case *xpath.IfExpr:
		cond, err := ev.eval(x.Cond, ctx)
		if err != nil {
			return nil, err
		}
		b, err := xdm.EffectiveBooleanValue(cond)
		if err != nil {
			return nil, err
		}
		if b {
			return ev.eval(x.Then, ctx)
		}
		if x.Else == nil {
			return xdm.EmptySequence, nil
		}
		return ev.eval(x.Else, ctx)
	case *xpath.BinaryExpr:
		return ev.evalBinary(x, ctx)
	case *xpath.ComparisonExpr:
		return ev.evalComparison(x, ctx)
	case *xpath.UnaryExpr:
		return ev.evalUnary(x, ctx)
	case *xpath.PathExpr:
		return ev.evalPath(x, ctx)
	case *xpath.FilterExpr:
		prim, err := ev.eval(x.Primary, ctx)
		if err != nil {
			return nil, err
		}
		return ev.applyPredicates(prim, x.Preds, ctx)
	case *xpath.FuncCall:
		return ev.evalFuncCall(x, ctx)
	case *xpath.FLWORExpr:
		return ev.evalFLWOR(x, ctx)
	case *xpath.QuantifiedExpr:
		return ev.evalQuantified(x, ctx)
	case *xpath.ElementConstructor:
		b := xmldom.NewBuilder()
		if err := ev.buildElement(b, x, ctx); err != nil {
			return nil, err
		}
		doc := b.Done()
		return xdm.Singleton(xdm.Node{N: doc.Root()}), nil
	case *xpath.EnqueueExpr:
		return ev.evalEnqueue(x, ctx)
	case *xpath.ResetExpr:
		return ev.evalReset(x, ctx)
	}
	return nil, dynErr("XQST0000", "unsupported expression %T", e)
}

func (ev *evaluator) evalBinary(x *xpath.BinaryExpr, ctx *evalCtx) (xdm.Sequence, error) {
	switch x.Op {
	case xpath.BinOr, xpath.BinAnd:
		l, err := ev.eval(x.Left, ctx)
		if err != nil {
			return nil, err
		}
		lb, err := xdm.EffectiveBooleanValue(l)
		if err != nil {
			return nil, err
		}
		if x.Op == xpath.BinOr && lb {
			return xdm.Singleton(xdm.NewBool(true)), nil
		}
		if x.Op == xpath.BinAnd && !lb {
			return xdm.Singleton(xdm.NewBool(false)), nil
		}
		r, err := ev.eval(x.Right, ctx)
		if err != nil {
			return nil, err
		}
		rb, err := xdm.EffectiveBooleanValue(r)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.NewBool(rb)), nil
	case xpath.BinUnion:
		l, err := ev.eval(x.Left, ctx)
		if err != nil {
			return nil, err
		}
		r, err := ev.eval(x.Right, ctx)
		if err != nil {
			return nil, err
		}
		ln, err := l.Nodes()
		if err != nil {
			return nil, dynErr("XPTY0004", "union operands must be nodes")
		}
		rn, err := r.Nodes()
		if err != nil {
			return nil, dynErr("XPTY0004", "union operands must be nodes")
		}
		return xdm.NodeSeq(xmldom.SortDocOrder(append(ln, rn...))), nil
	case xpath.BinRange:
		lo, empty, err := ev.atomicOperand(x.Left, ctx)
		if err != nil || empty {
			return xdm.EmptySequence, err
		}
		hi, empty, err := ev.atomicOperand(x.Right, ctx)
		if err != nil || empty {
			return xdm.EmptySequence, err
		}
		return rangeSeq(lo, hi)
	}
	// Arithmetic.
	l, lEmpty, err := ev.atomicOperand(x.Left, ctx)
	if err != nil || lEmpty {
		return xdm.EmptySequence, err
	}
	r, rEmpty, err := ev.atomicOperand(x.Right, ctx)
	if err != nil || rEmpty {
		return xdm.EmptySequence, err
	}
	return arith(x.Op, l, r)
}

// atomicOperand evaluates an operand expression and atomizes it to at most
// one value; (zero value, true, nil) signals the empty sequence.
func (ev *evaluator) atomicOperand(e xpath.Expr, ctx *evalCtx) (xdm.Value, bool, error) {
	s, err := ev.eval(e, ctx)
	if err != nil {
		return xdm.Value{}, false, err
	}
	if len(s) == 0 {
		return xdm.Value{}, true, nil
	}
	if len(s) > 1 {
		return xdm.Value{}, false, dynErr("XPTY0004", "operand is a sequence of more than one item")
	}
	return xdm.Atomize(s[0]), false, nil
}

func arith(op xpath.BinOpKind, l, r xdm.Value) (xdm.Sequence, error) {
	// Untyped operands are cast to double (XQuery arithmetic rule).
	if l.T == xdm.TypeUntyped {
		l = xdm.NewDouble(l.Number())
	}
	if r.T == xdm.TypeUntyped {
		r = xdm.NewDouble(r.Number())
	}
	if !l.T.IsNumeric() || !r.T.IsNumeric() {
		return nil, dynErr("XPTY0004", "arithmetic on non-numeric operands (%s, %s)", l.T, r.T)
	}
	intOp := l.T == xdm.TypeInteger && r.T == xdm.TypeInteger
	switch op {
	case xpath.BinAdd:
		if intOp {
			return xdm.Singleton(xdm.NewInteger(l.I + r.I)), nil
		}
		return xdm.Singleton(xdm.NewDouble(l.Number() + r.Number())), nil
	case xpath.BinSub:
		if intOp {
			return xdm.Singleton(xdm.NewInteger(l.I - r.I)), nil
		}
		return xdm.Singleton(xdm.NewDouble(l.Number() - r.Number())), nil
	case xpath.BinMul:
		if intOp {
			return xdm.Singleton(xdm.NewInteger(l.I * r.I)), nil
		}
		return xdm.Singleton(xdm.NewDouble(l.Number() * r.Number())), nil
	case xpath.BinDiv:
		rf := r.Number()
		if rf == 0 && intOp {
			return nil, dynErr("FOAR0001", "division by zero")
		}
		return xdm.Singleton(xdm.NewDouble(l.Number() / rf)), nil
	case xpath.BinIDiv:
		if r.Number() == 0 {
			return nil, dynErr("FOAR0001", "integer division by zero")
		}
		q := l.Number() / r.Number()
		return xdm.Singleton(xdm.NewInteger(int64(math.Trunc(q)))), nil
	case xpath.BinMod:
		if intOp {
			if r.I == 0 {
				return nil, dynErr("FOAR0001", "modulus by zero")
			}
			return xdm.Singleton(xdm.NewInteger(l.I % r.I)), nil
		}
		return xdm.Singleton(xdm.NewDouble(math.Mod(l.Number(), r.Number()))), nil
	}
	return nil, dynErr("XQST0000", "unknown arithmetic operator")
}

func (ev *evaluator) evalUnary(x *xpath.UnaryExpr, ctx *evalCtx) (xdm.Sequence, error) {
	v, empty, err := ev.atomicOperand(x.Operand, ctx)
	if err != nil || empty {
		return xdm.EmptySequence, err
	}
	return negateValue(x.Neg, v)
}

func (ev *evaluator) evalComparison(x *xpath.ComparisonExpr, ctx *evalCtx) (xdm.Sequence, error) {
	l, err := ev.eval(x.Left, ctx)
	if err != nil {
		return nil, err
	}
	r, err := ev.eval(x.Right, ctx)
	if err != nil {
		return nil, err
	}
	if x.NodeIs {
		if len(l) == 0 || len(r) == 0 {
			return xdm.EmptySequence, nil
		}
		ln, err := l.Nodes()
		if err != nil || len(ln) != 1 {
			return nil, dynErr("XPTY0004", "'is' requires single nodes")
		}
		rn, err := r.Nodes()
		if err != nil || len(rn) != 1 {
			return nil, dynErr("XPTY0004", "'is' requires single nodes")
		}
		return xdm.Singleton(xdm.NewBool(ln[0] == rn[0])), nil
	}
	if x.General {
		b, err := xdm.CompareGeneral(x.Op, l, r)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.NewBool(b)), nil
	}
	// Value comparison: empty operand yields empty sequence.
	if len(l) == 0 || len(r) == 0 {
		return xdm.EmptySequence, nil
	}
	if len(l) > 1 || len(r) > 1 {
		return nil, dynErr("XPTY0004", "value comparison requires single items")
	}
	b, err := xdm.CompareValues(x.Op, xdm.Atomize(l[0]), xdm.Atomize(r[0]))
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(xdm.NewBool(b)), nil
}

func (ev *evaluator) evalFLWOR(x *xpath.FLWORExpr, ctx *evalCtx) (xdm.Sequence, error) {
	var tuples []*evalCtx
	var bind func(i int, cur *evalCtx) error
	bind = func(i int, cur *evalCtx) error {
		if i == len(x.Clauses) {
			if x.Where != nil {
				w, err := ev.eval(x.Where, cur)
				if err != nil {
					return err
				}
				b, err := xdm.EffectiveBooleanValue(w)
				if err != nil {
					return err
				}
				if !b {
					return nil
				}
			}
			tuples = append(tuples, cur)
			return nil
		}
		cl := x.Clauses[i]
		if !cl.For {
			v, err := ev.eval(cl.Expr, cur)
			if err != nil {
				return err
			}
			return bind(i+1, cur.bind(cl.Var, v))
		}
		seq, err := ev.eval(cl.Expr, cur)
		if err != nil {
			return err
		}
		for idx, item := range seq {
			next := cur.bind(cl.Var, xdm.Singleton(item))
			if cl.PosVar != "" {
				next = next.bind(cl.PosVar, xdm.Singleton(xdm.NewInteger(int64(idx+1))))
			}
			if err := bind(i+1, next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := bind(0, ctx); err != nil {
		return nil, err
	}

	if len(x.OrderBy) > 0 {
		type keyed struct {
			tuple *evalCtx
			keys  []xdm.Value
			empty []bool
		}
		ks := make([]keyed, len(tuples))
		for i, tp := range tuples {
			k := keyed{tuple: tp, keys: make([]xdm.Value, len(x.OrderBy)), empty: make([]bool, len(x.OrderBy))}
			for j, spec := range x.OrderBy {
				v, empty, err := ev.atomicOperand(spec.Key, tp)
				if err != nil {
					return nil, err
				}
				k.keys[j], k.empty[j] = v, empty
			}
			ks[i] = k
		}
		var sortErr error
		sort.SliceStable(ks, func(a, b int) bool {
			for j, spec := range x.OrderBy {
				ka, kb := ks[a], ks[b]
				if ka.empty[j] && kb.empty[j] {
					continue
				}
				// Empty keys order least.
				if ka.empty[j] || kb.empty[j] {
					less := ka.empty[j]
					if spec.Descending {
						less = !less
					}
					return less
				}
				lt, err := xdm.CompareValues(xdm.OpLt, ka.keys[j], kb.keys[j])
				if err != nil {
					sortErr = err
					return false
				}
				gt, err := xdm.CompareValues(xdm.OpGt, ka.keys[j], kb.keys[j])
				if err != nil {
					sortErr = err
					return false
				}
				if !lt && !gt {
					continue
				}
				if spec.Descending {
					return gt
				}
				return lt
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
		tuples = tuples[:0]
		for _, k := range ks {
			tuples = append(tuples, k.tuple)
		}
	}

	var out xdm.Sequence
	for _, tp := range tuples {
		s, err := ev.eval(x.Return, tp)
		if err != nil {
			return nil, err
		}
		out = append(out, s...)
	}
	if out == nil {
		return xdm.EmptySequence, nil
	}
	return out, nil
}

func (ev *evaluator) evalQuantified(x *xpath.QuantifiedExpr, ctx *evalCtx) (xdm.Sequence, error) {
	result := x.Every                                // some: false until witness; every: true until counterexample
	var walk func(i int, cur *evalCtx) (bool, error) // returns done
	walk = func(i int, cur *evalCtx) (bool, error) {
		if i == len(x.Bindings) {
			s, err := ev.eval(x.Satisfies, cur)
			if err != nil {
				return false, err
			}
			b, err := xdm.EffectiveBooleanValue(s)
			if err != nil {
				return false, err
			}
			if x.Every && !b {
				result = false
				return true, nil
			}
			if !x.Every && b {
				result = true
				return true, nil
			}
			return false, nil
		}
		seq, err := ev.eval(x.Bindings[i].Expr, cur)
		if err != nil {
			return false, err
		}
		for _, item := range seq {
			done, err := walk(i+1, cur.bind(x.Bindings[i].Var, xdm.Singleton(item)))
			if err != nil || done {
				return done, err
			}
		}
		return false, nil
	}
	if _, err := walk(0, ctx); err != nil {
		return nil, err
	}
	return xdm.Singleton(xdm.NewBool(result)), nil
}

// --- paths ---

func (ev *evaluator) evalPath(x *xpath.PathExpr, ctx *evalCtx) (xdm.Sequence, error) {
	var current xdm.Sequence
	switch {
	case x.Rooted:
		n, err := ctx.contextNode()
		if err != nil {
			return nil, err
		}
		current = xdm.Singleton(xdm.Node{N: n.Document()})
	case x.Start != nil:
		s, err := ev.eval(x.Start, ctx)
		if err != nil {
			return nil, err
		}
		current = s
	default:
		if ctx.item == nil {
			return nil, dynErr("XPDY0002", "context item is absent")
		}
		current = xdm.Singleton(ctx.item)
	}

	steps := x.Steps
	if x.Descend {
		steps = append([]xpath.Step{{Axis: xpath.AxisDescendantOrSelf, Test: xpath.NodeTest{Kind: xpath.TestNode}}}, steps...)
	}
	for si, st := range steps {
		nodes, err := current.Nodes()
		if err != nil {
			return nil, dynErr("XPTY0019", "path step applied to non-node")
		}
		var results []*xmldom.Node
		var atomics xdm.Sequence
		for ci, cn := range nodes {
			var cands xdm.Sequence
			if st.Primary != nil {
				// Primary step: evaluate per context item.
				pctx := ctx.withItem(xdm.Node{N: cn}, ci+1, len(nodes))
				cands, err = ev.eval(st.Primary, pctx)
				if err != nil {
					return nil, err
				}
			} else {
				axisCands := ev.axisNodes(st.Axis, cn)
				cands = xdm.NodeSeq(ev.filterTest(axisCands, st.Axis, st.Test))
			}
			filtered, err := ev.applyPredicates(cands, st.Preds, ctx)
			if err != nil {
				return nil, err
			}
			for _, it := range filtered {
				switch v := it.(type) {
				case xdm.Node:
					results = append(results, v.N)
				default:
					atomics = append(atomics, it)
				}
			}
		}
		if len(atomics) > 0 {
			if si != len(steps)-1 || len(results) > 0 {
				return nil, dynErr("XPTY0018", "path step yields mixed nodes and atomic values")
			}
			return atomics, nil
		}
		current = xdm.NodeSeq(xmldom.SortDocOrder(results))
	}
	return current, nil
}

// axisNodes returns the nodes on the axis from n, in axis order (reverse
// axes yield nearest-first so positional predicates see axis positions).
func (ev *evaluator) axisNodes(axis xpath.Axis, n *xmldom.Node) []*xmldom.Node {
	switch axis {
	case xpath.AxisChild:
		return n.Children
	case xpath.AxisAttribute:
		return n.Attrs
	case xpath.AxisSelf:
		return []*xmldom.Node{n}
	case xpath.AxisParent:
		if n.Parent == nil {
			return nil
		}
		return []*xmldom.Node{n.Parent}
	case xpath.AxisDescendant:
		var out []*xmldom.Node
		collectDescendants(n, &out)
		return out
	case xpath.AxisDescendantOrSelf:
		out := []*xmldom.Node{n}
		collectDescendants(n, &out)
		return out
	case xpath.AxisAncestor:
		var out []*xmldom.Node
		for cur := n.Parent; cur != nil; cur = cur.Parent {
			out = append(out, cur)
		}
		return out
	case xpath.AxisAncestorOrSelf:
		out := []*xmldom.Node{n}
		for cur := n.Parent; cur != nil; cur = cur.Parent {
			out = append(out, cur)
		}
		return out
	case xpath.AxisFollowingSibling:
		if n.Parent == nil {
			return nil
		}
		sibs := n.Parent.Children
		for i, s := range sibs {
			if s == n {
				return sibs[i+1:]
			}
		}
		return nil
	case xpath.AxisPrecedingSibling:
		if n.Parent == nil {
			return nil
		}
		sibs := n.Parent.Children
		for i, s := range sibs {
			if s == n {
				// Reverse order: nearest sibling first.
				out := make([]*xmldom.Node, 0, i)
				for j := i - 1; j >= 0; j-- {
					out = append(out, sibs[j])
				}
				return out
			}
		}
		return nil
	}
	return nil
}

func collectDescendants(n *xmldom.Node, out *[]*xmldom.Node) {
	for _, c := range n.Children {
		*out = append(*out, c)
		collectDescendants(c, out)
	}
}

// filterTest applies the node test. Per the paper's convention that
// applications declare a default namespace and omit prefixes, an unprefixed
// name test matches the local name in any namespace; a prefixed test
// resolves the prefix against the statically supplied namespace map.
func (ev *evaluator) filterTest(cands []*xmldom.Node, axis xpath.Axis, test xpath.NodeTest) []*xmldom.Node {
	principal := xmldom.ElementNode
	if axis == xpath.AxisAttribute {
		principal = xmldom.AttributeNode
	}
	var out []*xmldom.Node
	for _, c := range cands {
		if ev.matchTest(c, principal, test) {
			out = append(out, c)
		}
	}
	return out
}

func (ev *evaluator) matchTest(n *xmldom.Node, principal xmldom.NodeKind, test xpath.NodeTest) bool {
	switch test.Kind {
	case xpath.TestNode:
		return true
	case xpath.TestText:
		return n.Kind == xmldom.TextNode
	case xpath.TestComment:
		return n.Kind == xmldom.CommentNode
	case xpath.TestDocument:
		return n.Kind == xmldom.DocumentNode
	case xpath.TestAnyName:
		return n.Kind == principal
	case xpath.TestElement:
		if n.Kind != xmldom.ElementNode {
			return false
		}
		if test.Name.Local == "" {
			return true
		}
		return ev.matchName(n, test.Name)
	case xpath.TestAttribute:
		if n.Kind != xmldom.AttributeNode {
			return false
		}
		if test.Name.Local == "" {
			return true
		}
		return ev.matchName(n, test.Name)
	case xpath.TestName:
		if n.Kind != principal {
			return false
		}
		return ev.matchName(n, test.Name)
	}
	return false
}

func (ev *evaluator) matchName(n *xmldom.Node, name xmldom.Name) bool {
	if n.Name.Local != name.Local {
		return false
	}
	if name.Prefix == "" {
		return true // lax namespace matching, see doc comment
	}
	uri, ok := ev.ns[name.Prefix]
	return ok && n.Name.Space == uri
}

// applyPredicates filters a sequence through predicate expressions,
// implementing positional semantics: a predicate evaluating to a single
// number keeps the item whose position equals that number.
func (ev *evaluator) applyPredicates(seq xdm.Sequence, preds []xpath.Expr, ctx *evalCtx) (xdm.Sequence, error) {
	cur := seq
	for _, pred := range preds {
		size := len(cur)
		var next xdm.Sequence
		for i, it := range cur {
			pctx := ctx.withItem(it, i+1, size)
			r, err := ev.eval(pred, pctx)
			if err != nil {
				return nil, err
			}
			keep := false
			if len(r) == 1 {
				if v, ok := r[0].(xdm.Value); ok && v.T.IsNumeric() {
					keep = v.Number() == float64(i+1)
					if keep {
						next = append(next, it)
					}
					continue
				}
			}
			keep, err = xdm.EffectiveBooleanValue(r)
			if err != nil {
				return nil, err
			}
			if keep {
				next = append(next, it)
			}
		}
		cur = next
	}
	if cur == nil {
		return xdm.EmptySequence, nil
	}
	return cur, nil
}

// --- constructors ---

func (ev *evaluator) buildElement(b *xmldom.Builder, x *xpath.ElementConstructor, ctx *evalCtx) error {
	b.StartElement(x.Name)
	for _, ac := range x.Attrs {
		var sb strings.Builder
		for _, part := range ac.Parts {
			if tl, ok := part.(*xpath.TextLiteral); ok {
				sb.WriteString(tl.Text)
				continue
			}
			s, err := ev.eval(part, ctx)
			if err != nil {
				return err
			}
			vals := xdm.AtomizeSeq(s)
			for i, v := range vals {
				if i > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(v.StringValue())
			}
		}
		b.Attribute(ac.Name, sb.String())
	}
	for _, content := range x.Content {
		switch ce := content.(type) {
		case *xpath.TextLiteral:
			b.Text(ce.Text)
		case *xpath.ElementConstructor:
			if err := ev.buildElement(b, ce, ctx); err != nil {
				return err
			}
		default:
			s, err := ev.eval(content, ctx)
			if err != nil {
				return err
			}
			prevAtomic := false
			for _, it := range s {
				switch v := it.(type) {
				case xdm.Node:
					b.Subtree(v.N)
					prevAtomic = false
				case xdm.Value:
					if prevAtomic {
						b.Text(" ")
					}
					b.Text(v.StringValue())
					prevAtomic = true
				}
			}
		}
	}
	b.EndElement()
	return nil
}

// --- update primitives ---

func (ev *evaluator) evalEnqueue(x *xpath.EnqueueExpr, ctx *evalCtx) (xdm.Sequence, error) {
	what, err := ev.eval(x.What, ctx)
	if err != nil {
		return nil, err
	}
	if len(what) != 1 {
		return nil, dynErr("DQTY0001", "do enqueue requires exactly one item, got %d", len(what))
	}
	n, ok := what[0].(xdm.Node)
	if !ok {
		return nil, dynErr("DQTY0002", "do enqueue requires an element or document node, got %s", xdm.Describe(what[0]))
	}
	var doc *xmldom.Node
	switch n.N.Kind {
	case xmldom.DocumentNode:
		doc = n.N.Clone()
	case xmldom.ElementNode:
		doc = n.N.CloneAsDocument()
	default:
		return nil, dynErr("DQTY0002", "do enqueue requires an element or document node, got %s", n.N.Kind)
	}
	up := &EnqueueUpdate{Queue: x.Queue, Doc: doc}
	if len(x.Props) > 0 {
		up.Props = make(map[string]xdm.Value, len(x.Props))
		for _, ps := range x.Props {
			v, empty, err := ev.atomicOperand(ps.Value, ctx)
			if err != nil {
				return nil, err
			}
			if empty {
				return nil, dynErr("DQTY0003", "property %q value is the empty sequence", ps.Name)
			}
			up.Props[ps.Name] = v
		}
	}
	ev.updates.Append(up)
	return xdm.EmptySequence, nil
}

func (ev *evaluator) evalReset(x *xpath.ResetExpr, ctx *evalCtx) (xdm.Sequence, error) {
	up := &ResetUpdate{Slicing: x.Slicing}
	if x.Key == nil {
		up.Implicit = true
	} else {
		v, empty, err := ev.atomicOperand(x.Key, ctx)
		if err != nil {
			return nil, err
		}
		if empty {
			return nil, dynErr("DQTY0004", "do reset key is the empty sequence")
		}
		up.Key = v
	}
	ev.updates.Append(up)
	return xdm.EmptySequence, nil
}
