package xquery

// Compiled execution backend (the "plan/program split" of Sec. 4.4.1).
//
// The interpreter in eval.go walks the AST recursively for every evaluation:
// each node pays a type switch, every path step boxes its node candidates
// into xdm.Sequence values, every predicate allocates a fresh evalCtx, and
// every function call resolves its name in a map. lower() removes all of
// that once, at deployment time: the AST becomes a tree of typed closures
// ("instructions") that hold pre-resolved functions, pre-compiled node
// tests and slot indexes for variables. Execution runs the closures over a
// pooled machine whose node-sequence buffers are reused across evaluations.
//
// The interpreter remains the reference implementation: Eval falls back to
// it when a Compiled carries no program (CompileOptions.NoProgram, the
// engine's NoRuleOptimizations escape hatch), and the differential harness
// in differential_test.go asserts result- and error-equivalence of the two
// backends over a generated corpus.

import (
	"math"
	"sort"
	"strings"
	"sync"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xpath"
)

// program is a lowered expression: a closure tree executed on a machine.
type program struct {
	root instr
	// nSlots is the machine frame size: one slot per variable binder.
	nSlots int
	// extern maps externally bound variable names (CompileOptions.ExtraVars)
	// to their slot and presence-check index.
	extern map[string]externVar
}

type externVar struct {
	slot int
	idx  int // index into machine.externSet
}

// instr computes one expression over the current machine state.
type instr func(m *machine) (xdm.Sequence, error)

// atomInstr computes an atomized single value; empty reports the empty
// sequence (mirrors evaluator.atomicOperand).
type atomInstr func(m *machine) (v xdm.Value, empty bool, err error)

// boolInstr computes an effective boolean value.
type boolInstr func(m *machine) (bool, error)

// nodePred is a pre-compiled node test. It receives the machine because
// prefixed name tests resolve their prefix against the per-evaluation
// namespace map.
type nodePred func(m *machine, n *xmldom.Node) bool

// machine is the reusable evaluation frame: dynamic context, variable
// slots and the runtime environment. It is pooled across evaluations.
type machine struct {
	ev        evaluator // runtime, pending updates, namespaces
	ctx       evalCtx   // context item / position / size (vars unused)
	slots     []xdm.Sequence
	externSet []bool
}

var machinePool = sync.Pool{New: func() any { return &machine{} }}

// nodeBufPool pools the intermediate node buffers of path execution.
var nodeBufPool = sync.Pool{New: func() any {
	b := make([]*xmldom.Node, 0, 32)
	return &b
}}

func getNodeBuf() *[]*xmldom.Node { return nodeBufPool.Get().(*[]*xmldom.Node) }

// putNodeBuf clears the buffer before pooling it: a stale *Node would pin
// its whole document (via Parent/Children links) for the lifetime of the
// pool entry.
func putNodeBuf(b *[]*xmldom.Node) {
	full := (*b)[:cap(*b)]
	for i := range full {
		full[i] = nil
	}
	*b = full[:0]
	nodeBufPool.Put(b)
}

// Shared boolean singletons: values are immutable and callers never mutate
// result sequences in place, so the compiled backend returns shared slices.
var (
	seqTrue  = xdm.Sequence{xdm.NewBool(true)}
	seqFalse = xdm.Sequence{xdm.NewBool(false)}
)

func boolSeq(b bool) xdm.Sequence {
	if b {
		return seqTrue
	}
	return seqFalse
}

// evalProgram runs a lowered program; the counterpart of Eval's interpreter
// path, with identical observable semantics.
func evalProgram(p *program, rt Runtime, opts EvalOptions) (xdm.Sequence, *UpdateList, error) {
	m := machinePool.Get().(*machine)
	m.ev = evaluator{rt: rt, updates: &UpdateList{}, ns: opts.Namespaces}
	m.ctx = evalCtx{pos: 1, size: 1}
	if opts.ContextDoc != nil {
		m.ctx.item = xdm.Node{N: opts.ContextDoc}
	}
	if cap(m.slots) < p.nSlots {
		m.slots = make([]xdm.Sequence, p.nSlots)
	} else {
		m.slots = m.slots[:p.nSlots]
	}
	if n := len(p.extern); n > 0 {
		if cap(m.externSet) < n {
			m.externSet = make([]bool, n)
		} else {
			m.externSet = m.externSet[:n]
			for i := range m.externSet {
				m.externSet[i] = false
			}
		}
		for name, val := range opts.Vars {
			if ev, ok := p.extern[name]; ok {
				m.slots[ev.slot] = val
				m.externSet[ev.idx] = true
			}
		}
	}
	seq, err := p.root(m)
	updates := m.ev.updates
	// Release: drop references so pooled machines do not pin documents.
	for i := range m.slots {
		m.slots[i] = nil
	}
	m.ev = evaluator{}
	m.ctx = evalCtx{}
	machinePool.Put(m)
	if err != nil {
		return nil, nil, err
	}
	return seq, updates, nil
}

// --- lowering ---

// lowerer compiles the AST to instructions; scope maps variable names to
// slots, copied on extension like the static checker's scope.
type lowerer struct {
	nSlots int
	extern map[string]externVar
}

type lowerScope map[string]int

func (sc lowerScope) extend() lowerScope {
	out := make(lowerScope, len(sc)+4)
	for k, v := range sc {
		out[k] = v
	}
	return out
}

// lower builds a program for a statically checked expression. It returns
// (nil, nil) for constructs it cannot lower, in which case the caller keeps
// the interpreter; Compile has already validated the expression, so this is
// purely defensive.
func lower(e xpath.Expr, opts CompileOptions) (p *program, err error) {
	lw := &lowerer{extern: map[string]externVar{}}
	scope := lowerScope{}
	for i, v := range opts.ExtraVars {
		slot := lw.alloc()
		scope[v] = slot
		lw.extern[v] = externVar{slot: slot, idx: i}
	}
	root, err := lw.lower(e, scope)
	if err != nil || root == nil {
		return nil, err
	}
	return &program{root: root, nSlots: lw.nSlots, extern: lw.extern}, nil
}

func (lw *lowerer) alloc() int {
	s := lw.nSlots
	lw.nSlots++
	return s
}

// lower compiles one expression node. A nil instr (with nil error) means
// "not lowerable": the whole program is abandoned.
func (lw *lowerer) lower(e xpath.Expr, scope lowerScope) (instr, error) {
	switch x := e.(type) {
	case *xpath.Literal:
		s := xdm.Singleton(x.Value)
		return func(*machine) (xdm.Sequence, error) { return s, nil }, nil

	case *xpath.TextLiteral:
		s := xdm.Singleton(xdm.NewString(x.Text))
		return func(*machine) (xdm.Sequence, error) { return s, nil }, nil

	case *xpath.VarRef:
		slot, ok := scope[x.Name]
		if !ok {
			return nil, staticErr("unbound variable $%s at %s", x.Name, x.Span())
		}
		if ev, isExtern := lw.extern[x.Name]; isExtern && ev.slot == slot {
			name, idx := x.Name, ev.idx
			return func(m *machine) (xdm.Sequence, error) {
				if !m.externSet[idx] {
					return nil, dynErr("XPDY0002", "unbound variable $%s", name)
				}
				return m.slots[slot], nil
			}, nil
		}
		return func(m *machine) (xdm.Sequence, error) { return m.slots[slot], nil }, nil

	case *xpath.ContextItemExpr:
		return func(m *machine) (xdm.Sequence, error) {
			if m.ctx.item == nil {
				return nil, dynErr("XPDY0002", "context item is absent")
			}
			return xdm.Singleton(m.ctx.item), nil
		}, nil

	case *xpath.SequenceExpr:
		items, err := lw.lowerAll(x.Items, scope)
		if err != nil || items == nil {
			return nil, err
		}
		return func(m *machine) (xdm.Sequence, error) {
			var out xdm.Sequence
			for _, it := range items {
				s, err := it(m)
				if err != nil {
					return nil, err
				}
				out = append(out, s...)
			}
			return out, nil
		}, nil

	case *xpath.IfExpr:
		cond, err := lw.lowerCond(x.Cond, scope)
		if err != nil || cond == nil {
			return nil, err
		}
		then, err := lw.lower(x.Then, scope)
		if err != nil || then == nil {
			return nil, err
		}
		var els instr
		if x.Else != nil {
			els, err = lw.lower(x.Else, scope)
			if err != nil || els == nil {
				return nil, err
			}
		}
		return func(m *machine) (xdm.Sequence, error) {
			b, err := cond(m)
			if err != nil {
				return nil, err
			}
			if b {
				return then(m)
			}
			if els == nil {
				return xdm.EmptySequence, nil
			}
			return els(m)
		}, nil

	case *xpath.BinaryExpr:
		return lw.lowerBinary(x, scope)

	case *xpath.ComparisonExpr:
		return lw.lowerComparison(x, scope)

	case *xpath.UnaryExpr:
		op, err := lw.lowerAtomic(x.Operand, scope)
		if err != nil || op == nil {
			return nil, err
		}
		neg := x.Neg
		return func(m *machine) (xdm.Sequence, error) {
			v, empty, err := op(m)
			if err != nil || empty {
				return xdm.EmptySequence, err
			}
			return negateValue(neg, v)
		}, nil

	case *xpath.PathExpr:
		return lw.lowerPath(x, scope)

	case *xpath.FilterExpr:
		prim, err := lw.lower(x.Primary, scope)
		if err != nil || prim == nil {
			return nil, err
		}
		preds, err := lw.lowerAll(x.Preds, scope)
		if err != nil || preds == nil {
			return nil, err
		}
		return func(m *machine) (xdm.Sequence, error) {
			s, err := prim(m)
			if err != nil {
				return nil, err
			}
			return m.applySeqPreds(s, preds)
		}, nil

	case *xpath.FuncCall:
		f, err := resolveFunction(x.Prefix, x.Local, len(x.Args))
		if err != nil {
			return nil, staticErr("%v at %s", err, x.Span())
		}
		args, err := lw.lowerAll(x.Args, scope)
		if err != nil || (args == nil && len(x.Args) > 0) {
			return nil, err
		}
		if len(args) == 0 {
			return func(m *machine) (xdm.Sequence, error) {
				return f.call(&m.ev, &m.ctx, nil)
			}, nil
		}
		return func(m *machine) (xdm.Sequence, error) {
			argv := make([]xdm.Sequence, len(args))
			for i, a := range args {
				s, err := a(m)
				if err != nil {
					return nil, err
				}
				argv[i] = s
			}
			return f.call(&m.ev, &m.ctx, argv)
		}, nil

	case *xpath.FLWORExpr:
		return lw.lowerFLWOR(x, scope)

	case *xpath.QuantifiedExpr:
		return lw.lowerQuantified(x, scope)

	case *xpath.ElementConstructor:
		ce, err := lw.lowerElement(x, scope)
		if err != nil || ce == nil {
			return nil, err
		}
		return func(m *machine) (xdm.Sequence, error) {
			b := xmldom.NewBuilder()
			if err := ce.build(m, b); err != nil {
				return nil, err
			}
			doc := b.Done()
			return xdm.Singleton(xdm.Node{N: doc.Root()}), nil
		}, nil

	case *xpath.EnqueueExpr:
		return lw.lowerEnqueue(x, scope)

	case *xpath.ResetExpr:
		slicing := x.Slicing
		if x.Key == nil {
			return func(m *machine) (xdm.Sequence, error) {
				m.ev.updates.Append(&ResetUpdate{Slicing: slicing, Implicit: true})
				return xdm.EmptySequence, nil
			}, nil
		}
		key, err := lw.lowerAtomic(x.Key, scope)
		if err != nil || key == nil {
			return nil, err
		}
		return func(m *machine) (xdm.Sequence, error) {
			v, empty, err := key(m)
			if err != nil {
				return nil, err
			}
			if empty {
				return nil, dynErr("DQTY0004", "do reset key is the empty sequence")
			}
			m.ev.updates.Append(&ResetUpdate{Slicing: slicing, Key: v})
			return xdm.EmptySequence, nil
		}, nil
	}
	return nil, nil // unknown node kind: keep the interpreter
}

func (lw *lowerer) lowerAll(es []xpath.Expr, scope lowerScope) ([]instr, error) {
	if len(es) == 0 {
		return []instr{}, nil
	}
	out := make([]instr, len(es))
	for i, e := range es {
		in, err := lw.lower(e, scope)
		if err != nil || in == nil {
			return nil, err
		}
		out[i] = in
	}
	return out, nil
}

// lowerAtomic mirrors evaluator.atomicOperand with a constant fast path.
func (lw *lowerer) lowerAtomic(e xpath.Expr, scope lowerScope) (atomInstr, error) {
	if lit, ok := e.(*xpath.Literal); ok {
		v := lit.Value
		return func(*machine) (xdm.Value, bool, error) { return v, false, nil }, nil
	}
	in, err := lw.lower(e, scope)
	if err != nil || in == nil {
		return nil, err
	}
	return func(m *machine) (xdm.Value, bool, error) {
		s, err := in(m)
		if err != nil {
			return xdm.Value{}, false, err
		}
		if len(s) == 0 {
			return xdm.Value{}, true, nil
		}
		if len(s) > 1 {
			return xdm.Value{}, false, dynErr("XPTY0004", "operand is a sequence of more than one item")
		}
		return xdm.Atomize(s[0]), false, nil
	}, nil
}

// lowerCond compiles an expression in effective-boolean-value context.
// Pure axis paths become existence tests that stop at the first match —
// the common "if (//order) then ..." rule condition costs one early-exit
// DOM walk instead of materializing every descendant.
func (lw *lowerer) lowerCond(e xpath.Expr, scope lowerScope) (boolInstr, error) {
	switch x := e.(type) {
	case *xpath.BinaryExpr:
		if x.Op == xpath.BinAnd || x.Op == xpath.BinOr {
			l, err := lw.lowerCond(x.Left, scope)
			if err != nil || l == nil {
				return nil, err
			}
			r, err := lw.lowerCond(x.Right, scope)
			if err != nil || r == nil {
				return nil, err
			}
			isOr := x.Op == xpath.BinOr
			return func(m *machine) (bool, error) {
				lb, err := l(m)
				if err != nil {
					return false, err
				}
				if lb == isOr {
					return isOr, nil
				}
				return r(m)
			}, nil
		}
	case *xpath.FuncCall:
		if x.Prefix == "" || x.Prefix == "fn" {
			switch {
			case x.Local == "not" && len(x.Args) == 1:
				inner, err := lw.lowerCond(x.Args[0], scope)
				if err != nil || inner == nil {
					return nil, err
				}
				return func(m *machine) (bool, error) {
					b, err := inner(m)
					return !b, err
				}, nil
			case x.Local == "exists" && len(x.Args) == 1:
				if p, ok := x.Args[0].(*xpath.PathExpr); ok {
					if ex, err := lw.lowerExists(p); ex != nil || err != nil {
						return ex, err
					}
				}
			case (x.Local == "true" || x.Local == "false") && len(x.Args) == 0:
				b := x.Local == "true"
				return func(*machine) (bool, error) { return b, nil }, nil
			}
		}
	case *xpath.PathExpr:
		// A path in boolean context is an existence test when its steps are
		// pure axis navigation (nodes only, EBV = non-empty).
		if ex, err := lw.lowerExists(x); ex != nil || err != nil {
			return ex, err
		}
	}
	in, err := lw.lower(e, scope)
	if err != nil || in == nil {
		return nil, err
	}
	return func(m *machine) (bool, error) {
		s, err := in(m)
		if err != nil {
			return false, err
		}
		return xdm.EffectiveBooleanValue(s)
	}, nil
}

// existsStep is one pure axis step of an existence test.
type existsStep struct {
	axis  xpath.Axis
	match nodePred
}

// lowerExists compiles a predicate-free axis path into an early-exit
// existence walker; (nil, nil) when the path does not qualify.
func (lw *lowerer) lowerExists(x *xpath.PathExpr) (boolInstr, error) {
	if x.Start != nil {
		return nil, nil
	}
	steps := pathSteps(x)
	if len(steps) == 0 && !x.Rooted {
		return nil, nil
	}
	es := make([]existsStep, len(steps))
	for i, st := range steps {
		if st.Primary != nil || len(st.Preds) > 0 {
			return nil, nil
		}
		es[i] = existsStep{axis: st.Axis, match: lowerTest(st.Axis, st.Test)}
	}
	rooted := x.Rooted
	return func(m *machine) (bool, error) {
		n, err := pathOrigin(m, rooted)
		if err != nil {
			return false, err
		}
		return existsWalk(m, es, n), nil
	}, nil
}

// pathOrigin resolves the initial context node of a context-started path,
// mirroring evalPath's error behavior.
func pathOrigin(m *machine, rooted bool) (*xmldom.Node, error) {
	if m.ctx.item == nil {
		return nil, dynErr("XPDY0002", "context item is absent")
	}
	n, ok := m.ctx.item.(xdm.Node)
	if !ok {
		if rooted {
			return nil, dynErr("XPTY0020", "context item is not a node")
		}
		return nil, dynErr("XPTY0019", "path step applied to non-node")
	}
	if rooted {
		return n.N.Document(), nil
	}
	return n.N, nil
}

func existsWalk(m *machine, steps []existsStep, n *xmldom.Node) bool {
	if len(steps) == 0 {
		return true
	}
	st := steps[0]
	rest := steps[1:]
	switch st.axis {
	case xpath.AxisChild:
		for _, c := range n.Children {
			if st.match(m, c) && existsWalk(m, rest, c) {
				return true
			}
		}
	case xpath.AxisAttribute:
		for _, a := range n.Attrs {
			if st.match(m, a) && existsWalk(m, rest, a) {
				return true
			}
		}
	case xpath.AxisSelf:
		return st.match(m, n) && existsWalk(m, rest, n)
	case xpath.AxisParent:
		return n.Parent != nil && st.match(m, n.Parent) && existsWalk(m, rest, n.Parent)
	case xpath.AxisDescendant:
		return descendantExists(m, st.match, rest, n)
	case xpath.AxisDescendantOrSelf:
		if st.match(m, n) && existsWalk(m, rest, n) {
			return true
		}
		return descendantExists(m, st.match, rest, n)
	case xpath.AxisAncestor:
		for cur := n.Parent; cur != nil; cur = cur.Parent {
			if st.match(m, cur) && existsWalk(m, rest, cur) {
				return true
			}
		}
	case xpath.AxisAncestorOrSelf:
		for cur := n; cur != nil; cur = cur.Parent {
			if st.match(m, cur) && existsWalk(m, rest, cur) {
				return true
			}
		}
	case xpath.AxisFollowingSibling, xpath.AxisPrecedingSibling:
		if n.Parent == nil {
			return false
		}
		sibs := n.Parent.Children
		idx := -1
		for i, s := range sibs {
			if s == n {
				idx = i
				break
			}
		}
		if idx < 0 {
			return false
		}
		if st.axis == xpath.AxisFollowingSibling {
			sibs = sibs[idx+1:]
			for _, s := range sibs {
				if st.match(m, s) && existsWalk(m, rest, s) {
					return true
				}
			}
		} else {
			for i := idx - 1; i >= 0; i-- {
				if st.match(m, sibs[i]) && existsWalk(m, rest, sibs[i]) {
					return true
				}
			}
		}
	}
	return false
}

func descendantExists(m *machine, match nodePred, rest []existsStep, n *xmldom.Node) bool {
	for _, c := range n.Children {
		if match(m, c) && existsWalk(m, rest, c) {
			return true
		}
		if descendantExists(m, match, rest, c) {
			return true
		}
	}
	return false
}

// --- binary / comparison / unary ---

func (lw *lowerer) lowerBinary(x *xpath.BinaryExpr, scope lowerScope) (instr, error) {
	switch x.Op {
	case xpath.BinOr, xpath.BinAnd:
		cond, err := lw.lowerCond(x, scope)
		if err != nil || cond == nil {
			return nil, err
		}
		return func(m *machine) (xdm.Sequence, error) {
			b, err := cond(m)
			if err != nil {
				return nil, err
			}
			return boolSeq(b), nil
		}, nil

	case xpath.BinUnion:
		l, err := lw.lower(x.Left, scope)
		if err != nil || l == nil {
			return nil, err
		}
		r, err := lw.lower(x.Right, scope)
		if err != nil || r == nil {
			return nil, err
		}
		return func(m *machine) (xdm.Sequence, error) {
			ls, err := l(m)
			if err != nil {
				return nil, err
			}
			rs, err := r(m)
			if err != nil {
				return nil, err
			}
			ln, err := ls.Nodes()
			if err != nil {
				return nil, dynErr("XPTY0004", "union operands must be nodes")
			}
			rn, err := rs.Nodes()
			if err != nil {
				return nil, dynErr("XPTY0004", "union operands must be nodes")
			}
			return xdm.NodeSeq(xmldom.SortDocOrder(append(ln, rn...))), nil
		}, nil

	case xpath.BinRange:
		lo, err := lw.lowerAtomic(x.Left, scope)
		if err != nil || lo == nil {
			return nil, err
		}
		hi, err := lw.lowerAtomic(x.Right, scope)
		if err != nil || hi == nil {
			return nil, err
		}
		return func(m *machine) (xdm.Sequence, error) {
			lv, empty, err := lo(m)
			if err != nil || empty {
				return xdm.EmptySequence, err
			}
			hv, empty, err := hi(m)
			if err != nil || empty {
				return xdm.EmptySequence, err
			}
			return rangeSeq(lv, hv)
		}, nil
	}

	// Arithmetic: left empty short-circuits the right operand, as in the
	// interpreter.
	op := x.Op
	l, err := lw.lowerAtomic(x.Left, scope)
	if err != nil || l == nil {
		return nil, err
	}
	r, err := lw.lowerAtomic(x.Right, scope)
	if err != nil || r == nil {
		return nil, err
	}
	return func(m *machine) (xdm.Sequence, error) {
		lv, empty, err := l(m)
		if err != nil || empty {
			return xdm.EmptySequence, err
		}
		rv, empty, err := r(m)
		if err != nil || empty {
			return xdm.EmptySequence, err
		}
		return arith(op, lv, rv)
	}, nil
}

// rangeSeq materializes lo to hi, mirroring the interpreter's BinRange arm.
func rangeSeq(lo, hi xdm.Value) (xdm.Sequence, error) {
	loi, err := lo.Cast(xdm.TypeInteger)
	if err != nil {
		return nil, dynErr("XPTY0004", "range bounds must be integers")
	}
	hii, err := hi.Cast(xdm.TypeInteger)
	if err != nil {
		return nil, dynErr("XPTY0004", "range bounds must be integers")
	}
	if loi.I > hii.I {
		return xdm.EmptySequence, nil
	}
	if hii.I-loi.I > 10_000_000 {
		return nil, dynErr("FOAR0002", "range too large")
	}
	out := make(xdm.Sequence, 0, hii.I-loi.I+1)
	for i := loi.I; i <= hii.I; i++ {
		out = append(out, xdm.NewInteger(i))
	}
	return out, nil
}

func negateValue(neg bool, v xdm.Value) (xdm.Sequence, error) {
	if !neg {
		return xdm.Singleton(v), nil
	}
	if v.T == xdm.TypeInteger {
		return xdm.Singleton(xdm.NewInteger(-v.I)), nil
	}
	f := v.Number()
	if math.IsNaN(f) && v.T != xdm.TypeDouble && v.T != xdm.TypeDecimal && v.T != xdm.TypeUntyped {
		return nil, dynErr("XPTY0004", "unary minus on non-numeric operand")
	}
	return xdm.Singleton(xdm.NewDouble(-f)), nil
}

func (lw *lowerer) lowerComparison(x *xpath.ComparisonExpr, scope lowerScope) (instr, error) {
	l, err := lw.lower(x.Left, scope)
	if err != nil || l == nil {
		return nil, err
	}
	r, err := lw.lower(x.Right, scope)
	if err != nil || r == nil {
		return nil, err
	}
	op, general, nodeIs := x.Op, x.General, x.NodeIs
	return func(m *machine) (xdm.Sequence, error) {
		ls, err := l(m)
		if err != nil {
			return nil, err
		}
		rs, err := r(m)
		if err != nil {
			return nil, err
		}
		if nodeIs {
			if len(ls) == 0 || len(rs) == 0 {
				return xdm.EmptySequence, nil
			}
			ln, err := ls.Nodes()
			if err != nil || len(ln) != 1 {
				return nil, dynErr("XPTY0004", "'is' requires single nodes")
			}
			rn, err := rs.Nodes()
			if err != nil || len(rn) != 1 {
				return nil, dynErr("XPTY0004", "'is' requires single nodes")
			}
			return boolSeq(ln[0] == rn[0]), nil
		}
		if general {
			b, err := xdm.CompareGeneral(op, ls, rs)
			if err != nil {
				return nil, err
			}
			return boolSeq(b), nil
		}
		if len(ls) == 0 || len(rs) == 0 {
			return xdm.EmptySequence, nil
		}
		if len(ls) > 1 || len(rs) > 1 {
			return nil, dynErr("XPTY0004", "value comparison requires single items")
		}
		b, err := xdm.CompareValues(op, xdm.Atomize(ls[0]), xdm.Atomize(rs[0]))
		if err != nil {
			return nil, err
		}
		return boolSeq(b), nil
	}, nil
}

// --- FLWOR / quantified ---

type cClause struct {
	forLoop bool
	slot    int
	posSlot int // -1: none
	expr    instr
}

type cOrder struct {
	key        atomInstr
	descending bool
}

func (lw *lowerer) lowerFLWOR(x *xpath.FLWORExpr, scope lowerScope) (instr, error) {
	scope = scope.extend()
	clauses := make([]cClause, len(x.Clauses))
	var boundSlots []int
	for i, cl := range x.Clauses {
		in, err := lw.lower(cl.Expr, scope)
		if err != nil || in == nil {
			return nil, err
		}
		c := cClause{forLoop: cl.For, expr: in, posSlot: -1}
		c.slot = lw.alloc()
		scope[cl.Var] = c.slot
		boundSlots = append(boundSlots, c.slot)
		if cl.PosVar != "" {
			c.posSlot = lw.alloc()
			scope[cl.PosVar] = c.posSlot
			boundSlots = append(boundSlots, c.posSlot)
		}
		clauses[i] = c
	}
	var where boolInstr
	if x.Where != nil {
		w, err := lw.lowerCond(x.Where, scope)
		if err != nil || w == nil {
			return nil, err
		}
		where = w
	}
	orderBy := make([]cOrder, len(x.OrderBy))
	for i, spec := range x.OrderBy {
		k, err := lw.lowerAtomic(spec.Key, scope)
		if err != nil || k == nil {
			return nil, err
		}
		orderBy[i] = cOrder{key: k, descending: spec.Descending}
	}
	ret, err := lw.lower(x.Return, scope)
	if err != nil || ret == nil {
		return nil, err
	}

	if len(orderBy) == 0 {
		// Streaming form: no tuple materialization.
		return func(m *machine) (xdm.Sequence, error) {
			var out xdm.Sequence
			err := iterClauses(m, clauses, where, func(m *machine) error {
				s, err := ret(m)
				if err != nil {
					return err
				}
				out = append(out, s...)
				return nil
			})
			if err != nil {
				return nil, err
			}
			if out == nil {
				return xdm.EmptySequence, nil
			}
			return out, nil
		}, nil
	}

	// Order-by form: materialize tuples (snapshots of the bound slots and
	// their sort keys), sort with the interpreter's comparator, then emit.
	nOrder := len(orderBy)
	return func(m *machine) (xdm.Sequence, error) {
		type tuple struct {
			binds []xdm.Sequence
			keys  []xdm.Value
			empty []bool
		}
		var tuples []tuple
		err := iterClauses(m, clauses, where, func(m *machine) error {
			t := tuple{binds: make([]xdm.Sequence, len(boundSlots))}
			for bi, slot := range boundSlots {
				t.binds[bi] = m.slots[slot]
			}
			tuples = append(tuples, t)
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Sort keys are computed in a second pass after every tuple has
		// been materialized, like the interpreter's evalFLWOR — a where
		// clause that errors on a later tuple must win over a key
		// expression that errors on an earlier one.
		for ti := range tuples {
			t := &tuples[ti]
			for bi, slot := range boundSlots {
				m.slots[slot] = t.binds[bi]
			}
			t.keys = make([]xdm.Value, nOrder)
			t.empty = make([]bool, nOrder)
			for oi, spec := range orderBy {
				v, empty, err := spec.key(m)
				if err != nil {
					return nil, err
				}
				t.keys[oi], t.empty[oi] = v, empty
			}
		}

		var sortErr error
		sort.SliceStable(tuples, func(a, b int) bool {
			for j, spec := range orderBy {
				ta, tb := tuples[a], tuples[b]
				if ta.empty[j] && tb.empty[j] {
					continue
				}
				if ta.empty[j] || tb.empty[j] {
					less := ta.empty[j]
					if spec.descending {
						less = !less
					}
					return less
				}
				lt, err := xdm.CompareValues(xdm.OpLt, ta.keys[j], tb.keys[j])
				if err != nil {
					sortErr = err
					return false
				}
				gt, err := xdm.CompareValues(xdm.OpGt, ta.keys[j], tb.keys[j])
				if err != nil {
					sortErr = err
					return false
				}
				if !lt && !gt {
					continue
				}
				if spec.descending {
					return gt
				}
				return lt
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}

		var out xdm.Sequence
		for _, t := range tuples {
			for bi, slot := range boundSlots {
				m.slots[slot] = t.binds[bi]
			}
			s, err := ret(m)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		if out == nil {
			return xdm.EmptySequence, nil
		}
		return out, nil
	}, nil
}

// iterClauses runs the nested for/let iteration of a FLWOR expression,
// binding slots in place and invoking emit for every tuple that passes the
// where clause. Both FLWOR forms (streaming and order-by) share it.
func iterClauses(m *machine, clauses []cClause, where boolInstr, emit func(m *machine) error) error {
	var walk func(i int) error
	walk = func(i int) error {
		if i == len(clauses) {
			if where != nil {
				keep, err := where(m)
				if err != nil {
					return err
				}
				if !keep {
					return nil
				}
			}
			return emit(m)
		}
		cl := clauses[i]
		seq, err := cl.expr(m)
		if err != nil {
			return err
		}
		if !cl.forLoop {
			m.slots[cl.slot] = seq
			return walk(i + 1)
		}
		for idx, item := range seq {
			m.slots[cl.slot] = xdm.Singleton(item)
			if cl.posSlot >= 0 {
				m.slots[cl.posSlot] = xdm.Singleton(xdm.NewInteger(int64(idx + 1)))
			}
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(0)
}

func (lw *lowerer) lowerQuantified(x *xpath.QuantifiedExpr, scope lowerScope) (instr, error) {
	scope = scope.extend()
	type binding struct {
		slot int
		expr instr
	}
	binds := make([]binding, len(x.Bindings))
	for i, b := range x.Bindings {
		in, err := lw.lower(b.Expr, scope)
		if err != nil || in == nil {
			return nil, err
		}
		slot := lw.alloc()
		scope[b.Var] = slot
		binds[i] = binding{slot: slot, expr: in}
	}
	sat, err := lw.lowerCond(x.Satisfies, scope)
	if err != nil || sat == nil {
		return nil, err
	}
	every := x.Every
	return func(m *machine) (xdm.Sequence, error) {
		result := every
		var walk func(i int) (bool, error)
		walk = func(i int) (bool, error) {
			if i == len(binds) {
				b, err := sat(m)
				if err != nil {
					return false, err
				}
				if every && !b {
					result = false
					return true, nil
				}
				if !every && b {
					result = true
					return true, nil
				}
				return false, nil
			}
			seq, err := binds[i].expr(m)
			if err != nil {
				return false, err
			}
			for _, item := range seq {
				m.slots[binds[i].slot] = xdm.Singleton(item)
				done, err := walk(i + 1)
				if err != nil || done {
					return done, err
				}
			}
			return false, nil
		}
		if _, err := walk(0); err != nil {
			return nil, err
		}
		return boolSeq(result), nil
	}, nil
}

// --- paths ---

// cStep is one lowered path step.
type cStep struct {
	axis    xpath.Axis
	match   nodePred
	primary instr // non-nil: primary step, axis/match unused
	preds   []instr
}

// pathSteps returns the effective step list, materializing the implicit
// leading descendant-or-self::node() of "//" once at lowering time (the
// interpreter re-prepends it on every evaluation).
func pathSteps(x *xpath.PathExpr) []xpath.Step {
	if !x.Descend {
		return x.Steps
	}
	steps := make([]xpath.Step, 0, len(x.Steps)+1)
	steps = append(steps, xpath.Step{Axis: xpath.AxisDescendantOrSelf, Test: xpath.NodeTest{Kind: xpath.TestNode}})
	return append(steps, x.Steps...)
}

func (lw *lowerer) lowerPath(x *xpath.PathExpr, scope lowerScope) (instr, error) {
	var start instr
	if x.Start != nil {
		s, err := lw.lower(x.Start, scope)
		if err != nil || s == nil {
			return nil, err
		}
		start = s
	}
	rawSteps := pathSteps(x)
	steps := make([]cStep, len(rawSteps))
	for i, st := range rawSteps {
		cs := cStep{axis: st.Axis}
		if st.Primary != nil {
			p, err := lw.lower(st.Primary, scope)
			if err != nil || p == nil {
				return nil, err
			}
			cs.primary = p
		} else {
			cs.match = lowerTest(st.Axis, st.Test)
		}
		preds, err := lw.lowerAll(st.Preds, scope)
		if err != nil || preds == nil {
			return nil, err
		}
		cs.preds = preds
		steps[i] = cs
	}
	rooted := x.Rooted
	return func(m *machine) (xdm.Sequence, error) {
		return m.runPath(rooted, start, steps)
	}, nil
}

// lowerTest pre-compiles a node test for an axis into a predicate closure.
func lowerTest(axis xpath.Axis, test xpath.NodeTest) nodePred {
	principal := xmldom.ElementNode
	if axis == xpath.AxisAttribute {
		principal = xmldom.AttributeNode
	}
	switch test.Kind {
	case xpath.TestNode:
		return func(*machine, *xmldom.Node) bool { return true }
	case xpath.TestText:
		return func(_ *machine, n *xmldom.Node) bool { return n.Kind == xmldom.TextNode }
	case xpath.TestComment:
		return func(_ *machine, n *xmldom.Node) bool { return n.Kind == xmldom.CommentNode }
	case xpath.TestDocument:
		return func(_ *machine, n *xmldom.Node) bool { return n.Kind == xmldom.DocumentNode }
	case xpath.TestAnyName:
		return func(_ *machine, n *xmldom.Node) bool { return n.Kind == principal }
	case xpath.TestElement:
		if test.Name.Local == "" {
			return func(_ *machine, n *xmldom.Node) bool { return n.Kind == xmldom.ElementNode }
		}
		return nameTest(xmldom.ElementNode, test.Name)
	case xpath.TestAttribute:
		if test.Name.Local == "" {
			return func(_ *machine, n *xmldom.Node) bool { return n.Kind == xmldom.AttributeNode }
		}
		return nameTest(xmldom.AttributeNode, test.Name)
	case xpath.TestName:
		return nameTest(principal, test.Name)
	}
	return func(*machine, *xmldom.Node) bool { return false }
}

func nameTest(kind xmldom.NodeKind, name xmldom.Name) nodePred {
	if name.Prefix == "" {
		// Lax namespace matching (see evaluator.matchName): local name only.
		// The expected name is interned at compile time so the comparison
		// against parsed/decoded documents (whose names are interned too)
		// short-circuits on string pointer equality.
		local := xmldom.InternString(name.Local)
		return func(_ *machine, n *xmldom.Node) bool {
			return n.Kind == kind && n.Name.Local == local
		}
	}
	prefix, local := name.Prefix, xmldom.InternString(name.Local)
	return func(m *machine, n *xmldom.Node) bool {
		if n.Kind != kind || n.Name.Local != local {
			return false
		}
		uri, ok := m.ev.ns[prefix]
		return ok && n.Name.Space == uri
	}
}

// forwardAxis reports whether the axis yields candidates in document order
// without duplicates when applied to a single context node — the condition
// under which the per-step SortDocOrder can be skipped.
func forwardAxis(a xpath.Axis) bool {
	switch a {
	case xpath.AxisChild, xpath.AxisAttribute, xpath.AxisSelf,
		xpath.AxisDescendant, xpath.AxisDescendantOrSelf, xpath.AxisFollowingSibling:
		return true
	}
	return false
}

// runPath executes a lowered path over pooled node buffers, mirroring
// evaluator.evalPath.
func (m *machine) runPath(rooted bool, start instr, steps []cStep) (xdm.Sequence, error) {
	saved := m.ctx
	defer func() { m.ctx = saved }()

	curBuf := getNodeBuf()
	nextBuf := getNodeBuf()
	scratchBuf := getNodeBuf()
	defer func() {
		putNodeBuf(curBuf)
		putNodeBuf(nextBuf)
		putNodeBuf(scratchBuf)
	}()
	cur := (*curBuf)[:0]

	// Initial context.
	switch {
	case rooted:
		if m.ctx.item == nil {
			return nil, dynErr("XPDY0002", "context item is absent")
		}
		n, ok := m.ctx.item.(xdm.Node)
		if !ok {
			return nil, dynErr("XPTY0020", "context item is not a node")
		}
		cur = append(cur, n.N.Document())
	case start != nil:
		s, err := start(m)
		if err != nil {
			return nil, err
		}
		if len(steps) == 0 {
			return s, nil
		}
		ns, err := s.Nodes()
		if err != nil {
			return nil, dynErr("XPTY0019", "path step applied to non-node")
		}
		cur = append(cur, ns...)
	default:
		if m.ctx.item == nil {
			return nil, dynErr("XPDY0002", "context item is absent")
		}
		n, ok := m.ctx.item.(xdm.Node)
		if !ok {
			if len(steps) > 0 {
				return nil, dynErr("XPTY0019", "path step applied to non-node")
			}
			return xdm.Singleton(m.ctx.item), nil
		}
		cur = append(cur, n.N)
	}

	for si := range steps {
		st := &steps[si]
		next := (*nextBuf)[:0]
		var atomics xdm.Sequence

		if st.primary != nil {
			size := len(cur)
			for ci, cn := range cur {
				m.ctx.item = xdm.Node{N: cn}
				m.ctx.pos, m.ctx.size = ci+1, size
				cands, err := st.primary(m)
				if err != nil {
					return nil, err
				}
				filtered, err := m.applySeqPreds(cands, st.preds)
				if err != nil {
					return nil, err
				}
				for _, it := range filtered {
					if nd, ok := it.(xdm.Node); ok {
						next = append(next, nd.N)
					} else {
						atomics = append(atomics, it)
					}
				}
			}
		} else {
			for _, cn := range cur {
				if len(st.preds) == 0 {
					next = m.axisAppend(st.axis, st.match, cn, next)
					continue
				}
				scratch := m.axisAppend(st.axis, st.match, cn, (*scratchBuf)[:0])
				*scratchBuf = scratch
				filtered, err := m.filterNodePreds(scratch, st.preds, next)
				if err != nil {
					return nil, err
				}
				next = filtered
			}
		}

		if len(atomics) > 0 {
			if si != len(steps)-1 || len(next) > 0 {
				return nil, dynErr("XPTY0018", "path step yields mixed nodes and atomic values")
			}
			return atomics, nil
		}
		if len(cur) > 1 || st.primary != nil || !forwardAxis(st.axis) {
			next = xmldom.SortDocOrder(next)
		}
		// Swap buffers for the next step.
		*curBuf, *nextBuf = next, cur[:0]
		cur = next
	}

	return xdm.NodeSeq(cur), nil
}

// axisAppend appends the axis candidates of n that pass the node test to
// out, in axis order (reverse axes nearest-first, as the interpreter's
// axisNodes does).
func (m *machine) axisAppend(axis xpath.Axis, match nodePred, n *xmldom.Node, out []*xmldom.Node) []*xmldom.Node {
	switch axis {
	case xpath.AxisChild:
		for _, c := range n.Children {
			if match(m, c) {
				out = append(out, c)
			}
		}
	case xpath.AxisAttribute:
		for _, a := range n.Attrs {
			if match(m, a) {
				out = append(out, a)
			}
		}
	case xpath.AxisSelf:
		if match(m, n) {
			out = append(out, n)
		}
	case xpath.AxisParent:
		if n.Parent != nil && match(m, n.Parent) {
			out = append(out, n.Parent)
		}
	case xpath.AxisDescendant:
		out = m.descendantAppend(match, n, out)
	case xpath.AxisDescendantOrSelf:
		if match(m, n) {
			out = append(out, n)
		}
		out = m.descendantAppend(match, n, out)
	case xpath.AxisAncestor:
		for cur := n.Parent; cur != nil; cur = cur.Parent {
			if match(m, cur) {
				out = append(out, cur)
			}
		}
	case xpath.AxisAncestorOrSelf:
		for cur := n; cur != nil; cur = cur.Parent {
			if match(m, cur) {
				out = append(out, cur)
			}
		}
	case xpath.AxisFollowingSibling:
		if n.Parent == nil {
			return out
		}
		sibs := n.Parent.Children
		for i, s := range sibs {
			if s == n {
				for _, fs := range sibs[i+1:] {
					if match(m, fs) {
						out = append(out, fs)
					}
				}
				break
			}
		}
	case xpath.AxisPrecedingSibling:
		if n.Parent == nil {
			return out
		}
		sibs := n.Parent.Children
		for i, s := range sibs {
			if s == n {
				for j := i - 1; j >= 0; j-- {
					if match(m, sibs[j]) {
						out = append(out, sibs[j])
					}
				}
				break
			}
		}
	}
	return out
}

func (m *machine) descendantAppend(match nodePred, n *xmldom.Node, out []*xmldom.Node) []*xmldom.Node {
	for _, c := range n.Children {
		if match(m, c) {
			out = append(out, c)
		}
		out = m.descendantAppend(match, c, out)
	}
	return out
}

// filterNodePreds applies predicate chains to a node candidate list with
// positional semantics, appending survivors to out. cands must not alias
// out.
func (m *machine) filterNodePreds(cands []*xmldom.Node, preds []instr, out []*xmldom.Node) ([]*xmldom.Node, error) {
	if len(preds) == 1 {
		return m.filterNodePred(cands, preds[0], out)
	}
	// Multiple predicates renumber positions between stages; ping-pong
	// through two scratch buffers.
	a := getNodeBuf()
	b := getNodeBuf()
	defer func() { putNodeBuf(a); putNodeBuf(b) }()
	curBuf, nxtBuf := a, b
	cur := cands
	for _, pred := range preds {
		nxt, err := m.filterNodePred(cur, pred, (*nxtBuf)[:0])
		if err != nil {
			return nil, err
		}
		*nxtBuf = nxt
		curBuf, nxtBuf = nxtBuf, curBuf
		cur = nxt
	}
	_ = curBuf
	return append(out, cur...), nil
}

func (m *machine) filterNodePred(cands []*xmldom.Node, pred instr, out []*xmldom.Node) ([]*xmldom.Node, error) {
	size := len(cands)
	for i, cn := range cands {
		m.ctx.item = xdm.Node{N: cn}
		m.ctx.pos, m.ctx.size = i+1, size
		r, err := pred(m)
		if err != nil {
			return nil, err
		}
		keep, err := predKeep(r, i)
		if err != nil {
			return nil, err
		}
		if keep {
			out = append(out, cn)
		}
	}
	return out, nil
}

// predKeep decides whether a predicate result keeps the item at 0-based
// index i: a single numeric value selects by position, anything else is an
// effective boolean value (mirrors evaluator.applyPredicates).
func predKeep(r xdm.Sequence, i int) (bool, error) {
	if len(r) == 1 {
		if v, ok := r[0].(xdm.Value); ok && v.T.IsNumeric() {
			return v.Number() == float64(i+1), nil
		}
	}
	return xdm.EffectiveBooleanValue(r)
}

// applySeqPreds filters a general item sequence through predicates with
// positional semantics (FilterExpr and primary path steps).
func (m *machine) applySeqPreds(seq xdm.Sequence, preds []instr) (xdm.Sequence, error) {
	if len(preds) == 0 {
		return seq, nil
	}
	saved := m.ctx
	defer func() { m.ctx = saved }()
	cur := seq
	for _, pred := range preds {
		size := len(cur)
		var next xdm.Sequence
		for i, it := range cur {
			m.ctx.item = it
			m.ctx.pos, m.ctx.size = i+1, size
			r, err := pred(m)
			if err != nil {
				return nil, err
			}
			keep, err := predKeep(r, i)
			if err != nil {
				return nil, err
			}
			if keep {
				next = append(next, it)
			}
		}
		cur = next
	}
	if cur == nil {
		return xdm.EmptySequence, nil
	}
	return cur, nil
}

// --- constructors ---

// cElem is a lowered element constructor.
type cElem struct {
	name    xmldom.Name
	attrs   []cAttr
	content []cContent
}

type cAttr struct {
	name  xmldom.Name
	parts []cPart
}

// cPart is a literal chunk or a computed part of an attribute value.
type cPart struct {
	text string
	expr instr // nil: literal text
}

// cContent is one content item: literal text, a nested constructor, or a
// computed expression.
type cContent struct {
	text string
	elem *cElem
	expr instr
}

func (lw *lowerer) lowerElement(x *xpath.ElementConstructor, scope lowerScope) (*cElem, error) {
	ce := &cElem{name: x.Name}
	for _, ac := range x.Attrs {
		ca := cAttr{name: ac.Name}
		for _, part := range ac.Parts {
			if tl, ok := part.(*xpath.TextLiteral); ok {
				ca.parts = append(ca.parts, cPart{text: tl.Text})
				continue
			}
			in, err := lw.lower(part, scope)
			if err != nil || in == nil {
				return nil, err
			}
			ca.parts = append(ca.parts, cPart{expr: in})
		}
		ce.attrs = append(ce.attrs, ca)
	}
	for _, content := range x.Content {
		switch c := content.(type) {
		case *xpath.TextLiteral:
			ce.content = append(ce.content, cContent{text: c.Text})
		case *xpath.ElementConstructor:
			nested, err := lw.lowerElement(c, scope)
			if err != nil || nested == nil {
				return nil, err
			}
			ce.content = append(ce.content, cContent{elem: nested})
		default:
			in, err := lw.lower(content, scope)
			if err != nil || in == nil {
				return nil, err
			}
			ce.content = append(ce.content, cContent{expr: in})
		}
	}
	return ce, nil
}

func (ce *cElem) build(m *machine, b *xmldom.Builder) error {
	b.StartElement(ce.name)
	for _, ca := range ce.attrs {
		var sb strings.Builder
		for _, part := range ca.parts {
			if part.expr == nil {
				sb.WriteString(part.text)
				continue
			}
			s, err := part.expr(m)
			if err != nil {
				return err
			}
			vals := xdm.AtomizeSeq(s)
			for i, v := range vals {
				if i > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(v.StringValue())
			}
		}
		b.Attribute(ca.name, sb.String())
	}
	for _, c := range ce.content {
		switch {
		case c.elem != nil:
			if err := c.elem.build(m, b); err != nil {
				return err
			}
		case c.expr != nil:
			s, err := c.expr(m)
			if err != nil {
				return err
			}
			prevAtomic := false
			for _, it := range s {
				switch v := it.(type) {
				case xdm.Node:
					b.Subtree(v.N)
					prevAtomic = false
				case xdm.Value:
					if prevAtomic {
						b.Text(" ")
					}
					b.Text(v.StringValue())
					prevAtomic = true
				}
			}
		default:
			b.Text(c.text)
		}
	}
	b.EndElement()
	return nil
}

// --- update primitives ---

func (lw *lowerer) lowerEnqueue(x *xpath.EnqueueExpr, scope lowerScope) (instr, error) {
	what, err := lw.lower(x.What, scope)
	if err != nil || what == nil {
		return nil, err
	}
	type cProp struct {
		name  string
		value atomInstr
	}
	props := make([]cProp, len(x.Props))
	for i, ps := range x.Props {
		v, err := lw.lowerAtomic(ps.Value, scope)
		if err != nil || v == nil {
			return nil, err
		}
		props[i] = cProp{name: ps.Name, value: v}
	}
	queue := x.Queue
	return func(m *machine) (xdm.Sequence, error) {
		s, err := what(m)
		if err != nil {
			return nil, err
		}
		if len(s) != 1 {
			return nil, dynErr("DQTY0001", "do enqueue requires exactly one item, got %d", len(s))
		}
		n, ok := s[0].(xdm.Node)
		if !ok {
			return nil, dynErr("DQTY0002", "do enqueue requires an element or document node, got %s", xdm.Describe(s[0]))
		}
		var doc *xmldom.Node
		switch n.N.Kind {
		case xmldom.DocumentNode:
			doc = n.N.Clone()
		case xmldom.ElementNode:
			doc = n.N.CloneAsDocument()
		default:
			return nil, dynErr("DQTY0002", "do enqueue requires an element or document node, got %s", n.N.Kind)
		}
		up := &EnqueueUpdate{Queue: queue, Doc: doc}
		if len(props) > 0 {
			up.Props = make(map[string]xdm.Value, len(props))
			for _, p := range props {
				v, empty, err := p.value(m)
				if err != nil {
					return nil, err
				}
				if empty {
					return nil, dynErr("DQTY0003", "property %q value is the empty sequence", p.name)
				}
				up.Props[p.name] = v
			}
		}
		m.ev.updates.Append(up)
		return xdm.EmptySequence, nil
	}, nil
}
