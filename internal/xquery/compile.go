package xquery

import (
	"demaq/internal/xpath"
)

// Compiled is a statically checked, executable expression. The compile
// phase resolves function references, verifies variable scoping, records
// whether the expression contains update primitives, and — unless
// CompileOptions.NoProgram is set — lowers the AST into a flat evaluation
// program (program.go) that Eval executes instead of walking the tree. The
// rule compiler (internal/rule) performs its rewrites on the AST before
// compiling.
type Compiled struct {
	ast      xpath.Expr
	prog     *program // nil: evaluate by AST interpretation
	updating bool
	// usesSlice reports whether qs:slice()/qs:slicekey() occur; such
	// expressions are only valid for rules attached to slicings (Sec. 3.5.2).
	usesSlice bool
	// sharedState reports whether evaluation observes or mutates state
	// shared across messages — qs:slice()/qs:slicekey()/qs:queue() reads
	// or do-reset updates. The engine's set-oriented batch executor uses
	// this: a batch's pending updates are invisible until the combined
	// commit, so only expressions free of shared state may evaluate in
	// the middle of a batch.
	sharedState bool
}

// AST exposes the underlying expression, e.g. for plan explanation.
func (c *Compiled) AST() xpath.Expr { return c.ast }

// Updating reports whether the expression contains do-enqueue/do-reset.
func (c *Compiled) Updating() bool { return c.updating }

// SharedState reports whether the expression reads or mutates state shared
// across messages (qs:slice/qs:slicekey/qs:queue reads, do-reset updates);
// false means evaluation depends only on the triggering message and
// master-data collections.
func (c *Compiled) SharedState() bool { return c.sharedState }

// UsesSlice reports whether the expression calls qs:slice()/qs:slicekey().
func (c *Compiled) UsesSlice() bool { return c.usesSlice }

// HasProgram reports whether Eval runs the compiled backend (true) or the
// AST interpreter (false).
func (c *Compiled) HasProgram() bool { return c.prog != nil }

// CompileOptions configure static analysis.
type CompileOptions struct {
	// AllowSlice permits qs:slice()/qs:slicekey(); set for slicing rules.
	AllowSlice bool
	// ExtraVars are names of variables bound externally (beyond FLWOR and
	// quantified bindings).
	ExtraVars []string
	// NoProgram skips lowering to the compiled backend; Eval then uses the
	// reference AST interpreter (the engine's NoRuleOptimizations knob).
	NoProgram bool
}

// Compile statically checks an expression and lowers it to an evaluation
// program.
func Compile(e xpath.Expr, opts CompileOptions) (*Compiled, error) {
	c := &Compiled{ast: e}
	vars := map[string]bool{}
	for _, v := range opts.ExtraVars {
		vars[v] = true
	}
	if err := c.check(e, vars, opts); err != nil {
		return nil, err
	}
	if !opts.NoProgram {
		// Lowering failures are not user errors: the static check above has
		// accepted the expression, so fall back to the interpreter.
		if p, err := lower(e, opts); err == nil && p != nil {
			c.prog = p
		}
	}
	return c, nil
}

// MustCompile compiles or panics; for tests and static fixtures.
func MustCompile(src string, opts CompileOptions) *Compiled {
	e, err := xpath.ParseExprString(src)
	if err != nil {
		panic(err)
	}
	c, err := Compile(e, opts)
	if err != nil {
		panic(err)
	}
	return c
}

// check walks the AST performing scope and function resolution. vars maps
// in-scope variable names; it is copied on extension so sibling scopes stay
// independent.
func (c *Compiled) check(e xpath.Expr, vars map[string]bool, opts CompileOptions) error {
	switch x := e.(type) {
	case nil:
		return nil
	case *xpath.SequenceExpr:
		for _, it := range x.Items {
			if err := c.check(it, vars, opts); err != nil {
				return err
			}
		}
	case *xpath.FLWORExpr:
		scope := copyVars(vars)
		for _, cl := range x.Clauses {
			if err := c.check(cl.Expr, scope, opts); err != nil {
				return err
			}
			scope[cl.Var] = true
			if cl.PosVar != "" {
				scope[cl.PosVar] = true
			}
		}
		if x.Where != nil {
			if err := c.check(x.Where, scope, opts); err != nil {
				return err
			}
		}
		for _, os := range x.OrderBy {
			if err := c.check(os.Key, scope, opts); err != nil {
				return err
			}
		}
		return c.check(x.Return, scope, opts)
	case *xpath.QuantifiedExpr:
		scope := copyVars(vars)
		for _, b := range x.Bindings {
			if err := c.check(b.Expr, scope, opts); err != nil {
				return err
			}
			scope[b.Var] = true
		}
		return c.check(x.Satisfies, scope, opts)
	case *xpath.IfExpr:
		if err := c.check(x.Cond, vars, opts); err != nil {
			return err
		}
		if err := c.check(x.Then, vars, opts); err != nil {
			return err
		}
		return c.check(x.Else, vars, opts)
	case *xpath.BinaryExpr:
		if err := c.check(x.Left, vars, opts); err != nil {
			return err
		}
		return c.check(x.Right, vars, opts)
	case *xpath.ComparisonExpr:
		if err := c.check(x.Left, vars, opts); err != nil {
			return err
		}
		return c.check(x.Right, vars, opts)
	case *xpath.UnaryExpr:
		return c.check(x.Operand, vars, opts)
	case *xpath.PathExpr:
		if x.Start != nil {
			if err := c.check(x.Start, vars, opts); err != nil {
				return err
			}
		}
		for _, st := range x.Steps {
			if st.Primary != nil {
				if err := c.check(st.Primary, vars, opts); err != nil {
					return err
				}
			}
			for _, p := range st.Preds {
				if err := c.check(p, vars, opts); err != nil {
					return err
				}
			}
		}
	case *xpath.FilterExpr:
		if err := c.check(x.Primary, vars, opts); err != nil {
			return err
		}
		for _, p := range x.Preds {
			if err := c.check(p, vars, opts); err != nil {
				return err
			}
		}
	case *xpath.VarRef:
		if !vars[x.Name] {
			return staticErr("unbound variable $%s at %s", x.Name, x.Span())
		}
	case *xpath.ContextItemExpr, *xpath.Literal, *xpath.TextLiteral:
		return nil
	case *xpath.FuncCall:
		f, err := resolveFunction(x.Prefix, x.Local, len(x.Args))
		if err != nil {
			return staticErr("%v at %s", err, x.Span())
		}
		if f.slice {
			if !opts.AllowSlice {
				return staticErr("%s:%s() is only available in rules on slicings (at %s)", x.Prefix, x.Local, x.Span())
			}
			c.usesSlice = true
			c.sharedState = true
		}
		if f.name == "qs:queue" {
			c.sharedState = true
		}
		for _, a := range x.Args {
			if err := c.check(a, vars, opts); err != nil {
				return err
			}
		}
	case *xpath.ElementConstructor:
		for _, a := range x.Attrs {
			for _, part := range a.Parts {
				if err := c.check(part, vars, opts); err != nil {
					return err
				}
			}
		}
		for _, ct := range x.Content {
			if err := c.check(ct, vars, opts); err != nil {
				return err
			}
		}
	case *xpath.EnqueueExpr:
		c.updating = true
		if err := c.check(x.What, vars, opts); err != nil {
			return err
		}
		for _, p := range x.Props {
			if err := c.check(p.Value, vars, opts); err != nil {
				return err
			}
		}
	case *xpath.ResetExpr:
		c.updating = true
		c.sharedState = true
		if x.Slicing == "" && !opts.AllowSlice {
			return staticErr("bare 'do reset' is only available in rules on slicings (at %s)", x.Span())
		}
		return c.check(x.Key, vars, opts)
	default:
		return staticErr("unsupported expression %T", e)
	}
	return nil
}

func copyVars(vars map[string]bool) map[string]bool {
	out := make(map[string]bool, len(vars)+4)
	for k, v := range vars {
		out[k] = v
	}
	return out
}
