package xquery

import (
	"fmt"
	"math"
	"regexp"
	"strings"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
	"demaq/internal/xpath"
)

// function describes one built-in function implementation.
type function struct {
	name     string
	minArgs  int
	maxArgs  int // -1: variadic
	slice    bool
	needsCtx bool
	call     func(ev *evaluator, ctx *evalCtx, args []xdm.Sequence) (xdm.Sequence, error)
}

// resolveFunction looks up prefix:local with the given arity. The fn:
// prefix (and no prefix) designate the core library; qs: designates the
// Demaq queue-system library.
func resolveFunction(prefix, local string, nargs int) (*function, error) {
	key := local
	switch prefix {
	case "", "fn":
	case "qs":
		key = "qs:" + local
	default:
		return nil, fmt.Errorf("unknown function namespace prefix %q", prefix)
	}
	f, ok := functions[key]
	if !ok {
		return nil, fmt.Errorf("unknown function %s()", key)
	}
	if nargs < f.minArgs || (f.maxArgs >= 0 && nargs > f.maxArgs) {
		return nil, fmt.Errorf("wrong number of arguments for %s(): got %d", key, nargs)
	}
	return f, nil
}

func (ev *evaluator) evalFuncCall(x *xpath.FuncCall, ctx *evalCtx) (xdm.Sequence, error) {
	f, err := resolveFunction(x.Prefix, x.Local, len(x.Args))
	if err != nil {
		return nil, dynErr("XPST0017", "%v", err)
	}
	args := make([]xdm.Sequence, len(x.Args))
	for i, a := range x.Args {
		s, err := ev.eval(a, ctx)
		if err != nil {
			return nil, err
		}
		args[i] = s
	}
	return f.call(ev, ctx, args)
}

// one-string-arg helper: returns "" for empty sequence per fn:string rules.
func argString(args []xdm.Sequence, i int) (string, error) {
	if i >= len(args) || len(args[i]) == 0 {
		return "", nil
	}
	if len(args[i]) > 1 {
		return "", dynErr("XPTY0004", "expected a single item argument")
	}
	return xdm.ItemString(args[i][0]), nil
}

func singleton(v xdm.Value) xdm.Sequence { return xdm.Singleton(v) }

func ctxOrArgNode(ctx *evalCtx, args []xdm.Sequence) (*xmldom.Node, bool, error) {
	if len(args) >= 1 {
		if len(args[0]) == 0 {
			return nil, false, nil
		}
		n, ok := args[0][0].(xdm.Node)
		if !ok {
			return nil, false, dynErr("XPTY0004", "expected a node argument")
		}
		return n.N, true, nil
	}
	if ctx.item == nil {
		return nil, false, dynErr("XPDY0002", "context item is absent")
	}
	n, ok := ctx.item.(xdm.Node)
	if !ok {
		return nil, false, dynErr("XPTY0004", "context item is not a node")
	}
	return n.N, true, nil
}

var functions map[string]*function

func init() {
	functions = map[string]*function{}
	reg := func(f *function) { functions[f.name] = f }

	// --- boolean ---
	reg(&function{name: "true", minArgs: 0, maxArgs: 0, call: func(_ *evaluator, _ *evalCtx, _ []xdm.Sequence) (xdm.Sequence, error) {
		return singleton(xdm.NewBool(true)), nil
	}})
	reg(&function{name: "false", minArgs: 0, maxArgs: 0, call: func(_ *evaluator, _ *evalCtx, _ []xdm.Sequence) (xdm.Sequence, error) {
		return singleton(xdm.NewBool(false)), nil
	}})
	reg(&function{name: "not", minArgs: 1, maxArgs: 1, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		b, err := xdm.EffectiveBooleanValue(args[0])
		if err != nil {
			return nil, err
		}
		return singleton(xdm.NewBool(!b)), nil
	}})
	reg(&function{name: "boolean", minArgs: 1, maxArgs: 1, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		b, err := xdm.EffectiveBooleanValue(args[0])
		if err != nil {
			return nil, err
		}
		return singleton(xdm.NewBool(b)), nil
	}})
	reg(&function{name: "exists", minArgs: 1, maxArgs: 1, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		return singleton(xdm.NewBool(len(args[0]) > 0)), nil
	}})
	reg(&function{name: "empty", minArgs: 1, maxArgs: 1, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		return singleton(xdm.NewBool(len(args[0]) == 0)), nil
	}})

	// --- sequences ---
	reg(&function{name: "count", minArgs: 1, maxArgs: 1, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		return singleton(xdm.NewInteger(int64(len(args[0])))), nil
	}})
	reg(&function{name: "distinct-values", minArgs: 1, maxArgs: 1, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		vals := xdm.AtomizeSeq(args[0])
		var out xdm.Sequence
		for _, v := range vals {
			dup := false
			for _, o := range out {
				if xdm.DeepEqualValues(v, o.(xdm.Value)) {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, v)
			}
		}
		if out == nil {
			return xdm.EmptySequence, nil
		}
		return out, nil
	}})
	reg(&function{name: "reverse", minArgs: 1, maxArgs: 1, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		in := args[0]
		out := make(xdm.Sequence, len(in))
		for i, it := range in {
			out[len(in)-1-i] = it
		}
		return out, nil
	}})
	reg(&function{name: "subsequence", minArgs: 2, maxArgs: 3, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		in := args[0]
		startF, err := numArg(args, 1)
		if err != nil {
			return nil, err
		}
		length := math.Inf(1)
		if len(args) == 3 {
			length, err = numArg(args, 2)
			if err != nil {
				return nil, err
			}
		}
		start := int(math.Round(startF))
		var out xdm.Sequence
		for i, it := range in {
			p := float64(i + 1)
			if p >= float64(start) && p < float64(start)+length {
				out = append(out, it)
			}
		}
		if out == nil {
			return xdm.EmptySequence, nil
		}
		return out, nil
	}})
	reg(&function{name: "index-of", minArgs: 2, maxArgs: 2, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		if len(args[1]) != 1 {
			return nil, dynErr("XPTY0004", "index-of: search value must be a single item")
		}
		needle := xdm.Atomize(args[1][0])
		var out xdm.Sequence
		for i, it := range args[0] {
			if xdm.DeepEqualValues(xdm.Atomize(it), needle) {
				out = append(out, xdm.NewInteger(int64(i+1)))
			}
		}
		if out == nil {
			return xdm.EmptySequence, nil
		}
		return out, nil
	}})
	reg(&function{name: "last", minArgs: 0, maxArgs: 0, needsCtx: true, call: func(_ *evaluator, ctx *evalCtx, _ []xdm.Sequence) (xdm.Sequence, error) {
		return singleton(xdm.NewInteger(int64(ctx.size))), nil
	}})
	reg(&function{name: "position", minArgs: 0, maxArgs: 0, needsCtx: true, call: func(_ *evaluator, ctx *evalCtx, _ []xdm.Sequence) (xdm.Sequence, error) {
		return singleton(xdm.NewInteger(int64(ctx.pos))), nil
	}})

	// --- numeric aggregates ---
	reg(&function{name: "sum", minArgs: 1, maxArgs: 1, call: aggFunc("sum")})
	reg(&function{name: "avg", minArgs: 1, maxArgs: 1, call: aggFunc("avg")})
	reg(&function{name: "min", minArgs: 1, maxArgs: 1, call: aggFunc("min")})
	reg(&function{name: "max", minArgs: 1, maxArgs: 1, call: aggFunc("max")})
	reg(&function{name: "number", minArgs: 0, maxArgs: 1, needsCtx: true, call: func(_ *evaluator, ctx *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		var v xdm.Value
		if len(args) == 0 {
			if ctx.item == nil {
				return nil, dynErr("XPDY0002", "context item is absent")
			}
			v = xdm.Atomize(ctx.item)
		} else if len(args[0]) == 0 {
			return singleton(xdm.NewDouble(math.NaN())), nil
		} else if len(args[0]) > 1 {
			return nil, dynErr("XPTY0004", "number() requires a single item")
		} else {
			v = xdm.Atomize(args[0][0])
		}
		return singleton(xdm.NewDouble(v.Number())), nil
	}})
	reg(&function{name: "floor", minArgs: 1, maxArgs: 1, call: mathFunc(math.Floor)})
	reg(&function{name: "ceiling", minArgs: 1, maxArgs: 1, call: mathFunc(math.Ceil)})
	reg(&function{name: "round", minArgs: 1, maxArgs: 1, call: mathFunc(func(f float64) float64 { return math.Floor(f + 0.5) })})
	reg(&function{name: "abs", minArgs: 1, maxArgs: 1, call: mathFunc(math.Abs)})

	// --- strings ---
	reg(&function{name: "string", minArgs: 0, maxArgs: 1, needsCtx: true, call: func(_ *evaluator, ctx *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		if len(args) == 0 {
			if ctx.item == nil {
				return nil, dynErr("XPDY0002", "context item is absent")
			}
			return singleton(xdm.NewString(xdm.ItemString(ctx.item))), nil
		}
		s, err := argString(args, 0)
		if err != nil {
			return nil, err
		}
		return singleton(xdm.NewString(s)), nil
	}})
	reg(&function{name: "concat", minArgs: 2, maxArgs: -1, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		var sb strings.Builder
		for i := range args {
			s, err := argString(args, i)
			if err != nil {
				return nil, err
			}
			sb.WriteString(s)
		}
		return singleton(xdm.NewString(sb.String())), nil
	}})
	reg(&function{name: "string-join", minArgs: 2, maxArgs: 2, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		sep, err := argString(args, 1)
		if err != nil {
			return nil, err
		}
		parts := make([]string, len(args[0]))
		for i, it := range args[0] {
			parts[i] = xdm.ItemString(it)
		}
		return singleton(xdm.NewString(strings.Join(parts, sep))), nil
	}})
	reg(&function{name: "contains", minArgs: 2, maxArgs: 2, call: strPredFunc(strings.Contains)})
	reg(&function{name: "starts-with", minArgs: 2, maxArgs: 2, call: strPredFunc(strings.HasPrefix)})
	reg(&function{name: "ends-with", minArgs: 2, maxArgs: 2, call: strPredFunc(strings.HasSuffix)})
	reg(&function{name: "substring-before", minArgs: 2, maxArgs: 2, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := argString(args, 0)
		if err != nil {
			return nil, err
		}
		sub, err := argString(args, 1)
		if err != nil {
			return nil, err
		}
		if i := strings.Index(s, sub); i >= 0 {
			return singleton(xdm.NewString(s[:i])), nil
		}
		return singleton(xdm.NewString("")), nil
	}})
	reg(&function{name: "substring-after", minArgs: 2, maxArgs: 2, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := argString(args, 0)
		if err != nil {
			return nil, err
		}
		sub, err := argString(args, 1)
		if err != nil {
			return nil, err
		}
		if i := strings.Index(s, sub); i >= 0 {
			return singleton(xdm.NewString(s[i+len(sub):])), nil
		}
		return singleton(xdm.NewString("")), nil
	}})
	reg(&function{name: "substring", minArgs: 2, maxArgs: 3, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := argString(args, 0)
		if err != nil {
			return nil, err
		}
		runes := []rune(s)
		startF, err := numArg(args, 1)
		if err != nil {
			return nil, err
		}
		length := math.Inf(1)
		if len(args) == 3 {
			length, err = numArg(args, 2)
			if err != nil {
				return nil, err
			}
		}
		start := math.Round(startF)
		var sb strings.Builder
		for i, r := range runes {
			p := float64(i + 1)
			if p >= start && p < start+math.Round(length) {
				sb.WriteRune(r)
			}
		}
		return singleton(xdm.NewString(sb.String())), nil
	}})
	reg(&function{name: "string-length", minArgs: 0, maxArgs: 1, needsCtx: true, call: func(_ *evaluator, ctx *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		var s string
		if len(args) == 0 {
			if ctx.item == nil {
				return nil, dynErr("XPDY0002", "context item is absent")
			}
			s = xdm.ItemString(ctx.item)
		} else {
			var err error
			s, err = argString(args, 0)
			if err != nil {
				return nil, err
			}
		}
		return singleton(xdm.NewInteger(int64(len([]rune(s))))), nil
	}})
	reg(&function{name: "normalize-space", minArgs: 0, maxArgs: 1, needsCtx: true, call: func(_ *evaluator, ctx *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		var s string
		if len(args) == 0 {
			if ctx.item == nil {
				return nil, dynErr("XPDY0002", "context item is absent")
			}
			s = xdm.ItemString(ctx.item)
		} else {
			var err error
			s, err = argString(args, 0)
			if err != nil {
				return nil, err
			}
		}
		return singleton(xdm.NewString(strings.Join(strings.Fields(s), " "))), nil
	}})
	reg(&function{name: "upper-case", minArgs: 1, maxArgs: 1, call: strMapFunc(strings.ToUpper)})
	reg(&function{name: "lower-case", minArgs: 1, maxArgs: 1, call: strMapFunc(strings.ToLower)})
	reg(&function{name: "translate", minArgs: 3, maxArgs: 3, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		s, _ := argString(args, 0)
		from, _ := argString(args, 1)
		to, _ := argString(args, 2)
		fromR, toR := []rune(from), []rune(to)
		var sb strings.Builder
		for _, r := range s {
			idx := -1
			for i, fr := range fromR {
				if fr == r {
					idx = i
					break
				}
			}
			if idx < 0 {
				sb.WriteRune(r)
			} else if idx < len(toR) {
				sb.WriteRune(toR[idx])
			}
		}
		return singleton(xdm.NewString(sb.String())), nil
	}})
	reg(&function{name: "matches", minArgs: 2, maxArgs: 2, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		s, _ := argString(args, 0)
		pat, _ := argString(args, 1)
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, dynErr("FORX0002", "invalid regular expression %q", pat)
		}
		return singleton(xdm.NewBool(re.MatchString(s))), nil
	}})
	reg(&function{name: "replace", minArgs: 3, maxArgs: 3, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		s, _ := argString(args, 0)
		pat, _ := argString(args, 1)
		repl, _ := argString(args, 2)
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, dynErr("FORX0002", "invalid regular expression %q", pat)
		}
		return singleton(xdm.NewString(re.ReplaceAllString(s, repl))), nil
	}})
	reg(&function{name: "tokenize", minArgs: 2, maxArgs: 2, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		s, _ := argString(args, 0)
		pat, _ := argString(args, 1)
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, dynErr("FORX0002", "invalid regular expression %q", pat)
		}
		var out xdm.Sequence
		for _, part := range re.Split(s, -1) {
			out = append(out, xdm.NewString(part))
		}
		return out, nil
	}})

	// --- nodes ---
	reg(&function{name: "name", minArgs: 0, maxArgs: 1, needsCtx: true, call: func(_ *evaluator, ctx *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		n, ok, err := ctxOrArgNode(ctx, args)
		if err != nil {
			return nil, err
		}
		if !ok {
			return singleton(xdm.NewString("")), nil
		}
		return singleton(xdm.NewString(n.Name.String())), nil
	}})
	reg(&function{name: "local-name", minArgs: 0, maxArgs: 1, needsCtx: true, call: func(_ *evaluator, ctx *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		n, ok, err := ctxOrArgNode(ctx, args)
		if err != nil {
			return nil, err
		}
		if !ok {
			return singleton(xdm.NewString("")), nil
		}
		return singleton(xdm.NewString(n.Name.Local)), nil
	}})
	reg(&function{name: "namespace-uri", minArgs: 0, maxArgs: 1, needsCtx: true, call: func(_ *evaluator, ctx *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		n, ok, err := ctxOrArgNode(ctx, args)
		if err != nil {
			return nil, err
		}
		if !ok {
			return singleton(xdm.NewString("")), nil
		}
		return singleton(xdm.NewString(n.Name.Space)), nil
	}})
	reg(&function{name: "root", minArgs: 0, maxArgs: 1, needsCtx: true, call: func(_ *evaluator, ctx *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		n, ok, err := ctxOrArgNode(ctx, args)
		if err != nil {
			return nil, err
		}
		if !ok {
			return xdm.EmptySequence, nil
		}
		return xdm.Singleton(xdm.Node{N: n.Document()}), nil
	}})
	reg(&function{name: "data", minArgs: 1, maxArgs: 1, call: func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		vals := xdm.AtomizeSeq(args[0])
		out := make(xdm.Sequence, len(vals))
		for i, v := range vals {
			out[i] = v
		}
		return out, nil
	}})

	// --- dateTime ---
	reg(&function{name: "current-dateTime", minArgs: 0, maxArgs: 0, call: func(ev *evaluator, _ *evalCtx, _ []xdm.Sequence) (xdm.Sequence, error) {
		return singleton(xdm.NewDateTime(ev.rt.Now())), nil
	}})

	// --- master data ---
	reg(&function{name: "collection", minArgs: 1, maxArgs: 1, call: func(ev *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		name, err := argString(args, 0)
		if err != nil {
			return nil, err
		}
		docs, err := ev.rt.Collection(name)
		if err != nil {
			return nil, err
		}
		return xdm.NodeSeq(docs), nil
	}})

	// --- qs: queue system library (Sec. 3.4/3.5) ---
	reg(&function{name: "qs:message", minArgs: 0, maxArgs: 0, call: func(ev *evaluator, _ *evalCtx, _ []xdm.Sequence) (xdm.Sequence, error) {
		doc, err := ev.rt.Message()
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Node{N: doc}), nil
	}})
	reg(&function{name: "qs:queue", minArgs: 0, maxArgs: 1, call: func(ev *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		name := ""
		if len(args) == 1 {
			var err error
			name, err = argString(args, 0)
			if err != nil {
				return nil, err
			}
		}
		docs, err := ev.rt.Queue(name)
		if err != nil {
			return nil, err
		}
		return xdm.NodeSeq(docs), nil
	}})
	reg(&function{name: "qs:property", minArgs: 1, maxArgs: 1, call: func(ev *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		name, err := argString(args, 0)
		if err != nil {
			return nil, err
		}
		v, err := ev.rt.Property(name)
		if err != nil {
			return nil, err
		}
		return singleton(v), nil
	}})
	reg(&function{name: "qs:slice", minArgs: 0, maxArgs: 0, slice: true, call: func(ev *evaluator, _ *evalCtx, _ []xdm.Sequence) (xdm.Sequence, error) {
		docs, err := ev.rt.Slice()
		if err != nil {
			return nil, err
		}
		return xdm.NodeSeq(docs), nil
	}})
	reg(&function{name: "qs:slicekey", minArgs: 0, maxArgs: 0, slice: true, call: func(ev *evaluator, _ *evalCtx, _ []xdm.Sequence) (xdm.Sequence, error) {
		v, err := ev.rt.SliceKey()
		if err != nil {
			return nil, err
		}
		return singleton(v), nil
	}})
}

func numArg(args []xdm.Sequence, i int) (float64, error) {
	if len(args[i]) != 1 {
		return 0, dynErr("XPTY0004", "expected a single numeric argument")
	}
	return xdm.Atomize(args[i][0]).Number(), nil
}

func mathFunc(f func(float64) float64) func(*evaluator, *evalCtx, []xdm.Sequence) (xdm.Sequence, error) {
	return func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		if len(args[0]) == 0 {
			return xdm.EmptySequence, nil
		}
		v := xdm.Atomize(args[0][0])
		if v.T == xdm.TypeInteger {
			return singleton(xdm.NewInteger(int64(f(float64(v.I))))), nil
		}
		return singleton(xdm.NewDouble(f(v.Number()))), nil
	}
}

func strPredFunc(f func(string, string) bool) func(*evaluator, *evalCtx, []xdm.Sequence) (xdm.Sequence, error) {
	return func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		a, err := argString(args, 0)
		if err != nil {
			return nil, err
		}
		b, err := argString(args, 1)
		if err != nil {
			return nil, err
		}
		return singleton(xdm.NewBool(f(a, b))), nil
	}
}

func strMapFunc(f func(string) string) func(*evaluator, *evalCtx, []xdm.Sequence) (xdm.Sequence, error) {
	return func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := argString(args, 0)
		if err != nil {
			return nil, err
		}
		return singleton(xdm.NewString(f(s))), nil
	}
}

func aggFunc(kind string) func(*evaluator, *evalCtx, []xdm.Sequence) (xdm.Sequence, error) {
	return func(_ *evaluator, _ *evalCtx, args []xdm.Sequence) (xdm.Sequence, error) {
		vals := xdm.AtomizeSeq(args[0])
		if len(vals) == 0 {
			if kind == "sum" {
				return singleton(xdm.NewInteger(0)), nil
			}
			return xdm.EmptySequence, nil
		}
		// Untyped values are cast to xs:double for aggregation (F&O 15.4).
		for i, v := range vals {
			if v.T == xdm.TypeUntyped {
				vals[i] = xdm.NewDouble(v.Number())
			}
		}
		allInt := true
		for _, v := range vals {
			if v.T != xdm.TypeInteger {
				allInt = false
				break
			}
		}
		switch kind {
		case "sum", "avg":
			var fsum float64
			var isum int64
			for _, v := range vals {
				if allInt {
					isum += v.I
				} else {
					fsum += v.Number()
				}
			}
			if kind == "sum" {
				if allInt {
					return singleton(xdm.NewInteger(isum)), nil
				}
				return singleton(xdm.NewDouble(fsum)), nil
			}
			if allInt {
				fsum = float64(isum)
			}
			return singleton(xdm.NewDouble(fsum / float64(len(vals)))), nil
		case "min", "max":
			op := xdm.OpLt
			if kind == "max" {
				op = xdm.OpGt
			}
			best := vals[0]
			for _, v := range vals[1:] {
				better, err := xdm.CompareValues(op, v, best)
				if err != nil {
					return nil, err
				}
				if better {
					best = v
				}
			}
			return singleton(best), nil
		}
		return nil, dynErr("XQST0000", "unknown aggregate %s", kind)
	}
}
