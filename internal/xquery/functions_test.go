package xquery

// Golden conformance corpus for the built-in function library: every
// function registered in functions.go is exercised through table-driven
// cases covering its edge behavior (empty sequences, type errors,
// NaN/overflow, string boundaries). A coverage check fails the suite when
// a newly registered function has no cases. Each case is also run through
// the compiled/interpreted differential check, so the corpus doubles as a
// targeted equivalence net for the function-call instruction.

import (
	"fmt"
	"strings"
	"testing"

	"demaq/internal/xdm"
	"demaq/internal/xmldom"
)

// goldenDoc is the fixture every case evaluates against.
const goldenDocXML = `<m><a id="1">x</a><a id="2">y</a><n>3</n><n>4</n><f>2.5</f><e/><s> a  b </s></m>`

func goldenRuntime(doc *xmldom.Node) *fakeRuntime {
	master := xmldom.MustParse(`<prod sku="p1"><price>10</price></prod>`)
	return &fakeRuntime{
		message:    doc,
		queues:     map[string][]*xmldom.Node{"q1": {doc}, "": {doc}},
		curQueue:   "q1",
		props:      map[string]xdm.Value{"p": xdm.NewString("pv"), "num": xdm.NewInteger(7)},
		slice:      []*xmldom.Node{doc},
		sliceKey:   xdm.NewString("k1"),
		collection: map[string][]*xmldom.Node{"master": {master}},
	}
}

// renderSeq gives every result a canonical textual form: typed values as
// type(lexical), nodes as their serialization.
func renderSeq(s xdm.Sequence) string {
	parts := make([]string, len(s))
	for i, it := range s {
		switch v := it.(type) {
		case xdm.Value:
			parts[i] = fmt.Sprintf("%s(%s)", v.T, v.StringValue())
		case xdm.Node:
			parts[i] = "node(" + xmldom.Serialize(v.N) + ")"
		}
	}
	return strings.Join(parts, " ")
}

type goldenCase struct {
	fn   string // registry key the case covers
	expr string
	// want is the rendered result, "!CODE" for a DynError with that code,
	// or "!!" for any evaluation error.
	want string
}

var goldenCases = []goldenCase{
	// --- boolean ---
	{"true", `true()`, `xs:boolean(true)`},
	{"false", `false()`, `xs:boolean(false)`},
	{"not", `not(())`, `xs:boolean(true)`},
	{"not", `not(//a)`, `xs:boolean(false)`},
	{"not", `not(0)`, `xs:boolean(true)`},
	{"boolean", `boolean(//missing)`, `xs:boolean(false)`},
	{"boolean", `boolean("")`, `xs:boolean(false)`},
	{"boolean", `boolean((1, 2))`, `!!`}, // FORG0006: no EBV of multi-item atomic sequence
	{"exists", `exists(())`, `xs:boolean(false)`},
	{"exists", `exists(//e)`, `xs:boolean(true)`},
	{"empty", `empty(())`, `xs:boolean(true)`},
	{"empty", `empty(//a)`, `xs:boolean(false)`},

	// --- sequences ---
	{"count", `count(())`, `xs:integer(0)`},
	{"count", `count(//a)`, `xs:integer(2)`},
	{"distinct-values", `distinct-values((1, 2, 1))`, `xs:integer(1) xs:integer(2)`},
	{"distinct-values", `distinct-values(())`, ``},
	{"distinct-values", `distinct-values((number("x"), number("y")))`, `xs:double(NaN)`}, // NaN equals NaN here
	{"reverse", `reverse((1, 2, 3))`, `xs:integer(3) xs:integer(2) xs:integer(1)`},
	{"reverse", `reverse(())`, ``},
	{"subsequence", `subsequence((1, 2, 3), 2)`, `xs:integer(2) xs:integer(3)`},
	{"subsequence", `subsequence((1, 2, 3), 2, 1)`, `xs:integer(2)`},
	{"subsequence", `subsequence((1, 2, 3), 0, 2)`, `xs:integer(1)`}, // positions < 1 consume length
	{"subsequence", `subsequence((), 1, 9)`, ``},
	{"index-of", `index-of((1, 2, 3, 2), 2)`, `xs:integer(2) xs:integer(4)`},
	{"index-of", `index-of((1, 2), 9)`, ``},
	{"index-of", `index-of((1, 2), (1, 2))`, `!XPTY0004`},
	{"last", `(1, 2, 3)[last()]`, `xs:integer(3)`},
	{"last", `last()`, `xs:integer(1)`}, // top level: context size 1
	{"position", `(4, 5, 6)[position() = 2]`, `xs:integer(5)`},
	{"position", `position()`, `xs:integer(1)`},

	// --- numeric aggregates ---
	{"sum", `sum(())`, `xs:integer(0)`},
	{"sum", `sum((1, 2, 3))`, `xs:integer(6)`},
	{"sum", `sum(//n)`, `xs:double(7)`}, // untyped content casts to double
	{"sum", `sum(("a", 1))`, `xs:double(NaN)`},
	{"avg", `avg(())`, ``},
	{"avg", `avg((1, 2))`, `xs:double(1.5)`},
	{"min", `min(())`, ``},
	{"min", `min((3, 1, 2))`, `xs:integer(1)`},
	{"min", `min((1, "a"))`, `!!`}, // incomparable types
	{"max", `max((3, 1, 2))`, `xs:integer(3)`},
	{"max", `max(//n)`, `xs:double(4)`},
	{"number", `number("12")`, `xs:double(12)`},
	{"number", `number("nope")`, `xs:double(NaN)`},
	{"number", `number(())`, `xs:double(NaN)`},
	{"number", `number((1, 2))`, `!XPTY0004`},
	{"floor", `floor(2.7)`, `xs:double(2)`},
	{"floor", `floor(())`, ``},
	{"floor", `floor(-2)`, `xs:integer(-2)`},
	{"ceiling", `ceiling(2.1)`, `xs:double(3)`},
	{"ceiling", `ceiling("x")`, `xs:double(NaN)`},
	{"round", `round(2.5)`, `xs:double(3)`},
	{"round", `round(-2.5)`, `xs:double(-2)`}, // round half toward +inf
	{"abs", `abs(-3)`, `xs:integer(3)`},
	{"abs", `abs(-2.5)`, `xs:double(2.5)`},

	// --- strings ---
	{"string", `string(42)`, `xs:string(42)`},
	{"string", `string(())`, `xs:string()`},
	{"string", `string(//a[1])`, `xs:string(x)`},
	{"string", `string((1, 2))`, `!XPTY0004`},
	{"concat", `concat("a", "b", "c")`, `xs:string(abc)`},
	{"concat", `concat((), "x")`, `xs:string(x)`},
	{"concat", `concat(//a, "!")`, `!XPTY0004`}, // multi-item argument
	{"string-join", `string-join(("a", "b"), "-")`, `xs:string(a-b)`},
	{"string-join", `string-join((), "-")`, `xs:string()`},
	{"contains", `contains("hello", "ell")`, `xs:boolean(true)`},
	{"contains", `contains("hello", "")`, `xs:boolean(true)`},
	{"contains", `contains((), "x")`, `xs:boolean(false)`},
	{"starts-with", `starts-with("hello", "he")`, `xs:boolean(true)`},
	{"starts-with", `starts-with("hello", "lo")`, `xs:boolean(false)`},
	{"ends-with", `ends-with("hello", "lo")`, `xs:boolean(true)`},
	{"ends-with", `ends-with("", "")`, `xs:boolean(true)`},
	{"substring-before", `substring-before("a=b", "=")`, `xs:string(a)`},
	{"substring-before", `substring-before("ab", "x")`, `xs:string()`},
	{"substring-after", `substring-after("a=b", "=")`, `xs:string(b)`},
	{"substring-after", `substring-after("ab", "x")`, `xs:string()`},
	{"substring", `substring("hello", 2, 3)`, `xs:string(ell)`},
	{"substring", `substring("hello", 0)`, `xs:string(hello)`},
	{"substring", `substring("hello", 2, -1)`, `xs:string()`},
	{"substring", `substring("héllo", 2, 2)`, `xs:string(él)`}, // rune positions, not bytes
	{"string-length", `string-length("héllo")`, `xs:integer(5)`},
	{"string-length", `string-length(())`, `xs:integer(0)`},
	{"normalize-space", `normalize-space("  a   b ")`, `xs:string(a b)`},
	{"normalize-space", `normalize-space(//s)`, `xs:string(a b)`},
	{"upper-case", `upper-case("mIx")`, `xs:string(MIX)`},
	{"lower-case", `lower-case("MIX")`, `xs:string(mix)`},
	{"translate", `translate("abcd", "abc", "x")`, `xs:string(xd)`}, // unmapped from-chars delete
	{"translate", `translate("abc", "", "xyz")`, `xs:string(abc)`},
	{"matches", `matches("abc", "[a-z]+")`, `xs:boolean(true)`},
	{"matches", `matches("abc", "(")`, `!FORX0002`},
	{"replace", `replace("banana", "a", "_")`, `xs:string(b_n_n_)`},
	{"replace", `replace("x", "(", "_")`, `!FORX0002`},
	{"tokenize", `tokenize("a b c", " ")`, `xs:string(a) xs:string(b) xs:string(c)`},
	{"tokenize", `tokenize("", " ")`, `xs:string()`},
	{"tokenize", `tokenize("x", "(")`, `!FORX0002`},

	// --- nodes ---
	{"name", `name(//a[1])`, `xs:string(a)`},
	{"name", `name(())`, `xs:string()`},
	{"local-name", `local-name(//a[2])`, `xs:string(a)`},
	{"local-name", `local-name(())`, `xs:string()`},
	{"namespace-uri", `namespace-uri(//a[1])`, `xs:string()`},
	{"root", `root(//a[1])`, "node(" + goldenDocXML + ")"},
	{"root", `root(())`, ``},
	{"root", `root(5)`, `!XPTY0004`},
	{"data", `data(//n)`, `xs:untypedAtomic(3) xs:untypedAtomic(4)`},
	{"data", `data(())`, ``},

	// --- dateTime ---
	{"current-dateTime", `current-dateTime()`, `xs:dateTime(2026-06-10T12:00:00Z)`},

	// --- master data ---
	{"collection", `collection("master")/prod/price`, `node(<price>10</price>)`},
	{"collection", `count(collection("missing"))`, `xs:integer(0)`},

	// --- qs: queue system library ---
	{"qs:message", `count(qs:message()//a)`, `xs:integer(2)`},
	{"qs:queue", `count(qs:queue("q1"))`, `xs:integer(1)`},
	{"qs:queue", `count(qs:queue())`, `xs:integer(1)`}, // defaults to the current queue
	{"qs:property", `qs:property("p")`, `xs:string(pv)`},
	{"qs:property", `qs:property("num") + 1`, `xs:integer(8)`},
	{"qs:property", `qs:property("missing")`, `!!`},
	{"qs:slice", `count(qs:slice())`, `xs:integer(1)`},
	{"qs:slicekey", `qs:slicekey()`, `xs:string(k1)`},
}

func TestFunctionGoldenCorpus(t *testing.T) {
	doc := xmldom.MustParse(goldenDocXML)
	for _, tc := range goldenCases {
		t.Run(tc.fn+"/"+tc.expr, func(t *testing.T) {
			e, err := parseExpr(tc.expr)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			c, err := Compile(e, CompileOptions{AllowSlice: true})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			seq, _, err := Eval(c, goldenRuntime(doc), EvalOptions{ContextDoc: doc})
			switch {
			case tc.want == "!!":
				if err == nil {
					t.Fatalf("want an error, got %s", renderSeq(seq))
				}
			case strings.HasPrefix(tc.want, "!"):
				de, ok := err.(*DynError)
				if !ok || de.Code != tc.want[1:] {
					t.Fatalf("want error %s, got %v", tc.want[1:], err)
				}
			default:
				if err != nil {
					t.Fatalf("eval: %v", err)
				}
				if got := renderSeq(seq); got != tc.want {
					t.Fatalf("got %q, want %q", got, tc.want)
				}
			}
			// Both backends must agree on every golden case as well.
			rt := goldenRuntime(doc)
			iSeq, _, iErr := EvalInterpreted(c, rt, EvalOptions{ContextDoc: doc})
			cSeq, _, cErr := Eval(c, rt, EvalOptions{ContextDoc: doc})
			if (iErr == nil) != (cErr == nil) || errCode(iErr) != errCode(cErr) {
				t.Fatalf("backend error divergence: interpreted=%v compiled=%v", iErr, cErr)
			}
			if iErr == nil {
				if ok, why := seqsEqual(iSeq, cSeq, doc); !ok {
					t.Fatalf("backend result divergence: %s", why)
				}
			}
		})
	}
}

// TestFunctionCorpusCoverage fails when a registered function has no golden
// cases — add cases to goldenCases whenever the library grows.
func TestFunctionCorpusCoverage(t *testing.T) {
	covered := map[string]bool{}
	for _, tc := range goldenCases {
		covered[tc.fn] = true
	}
	var missing []string
	for name := range functions {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("functions without golden cases: %v", missing)
	}
	// And no stale cases for functions that no longer exist.
	for name := range covered {
		if _, ok := functions[name]; !ok {
			t.Fatalf("golden case references unknown function %q", name)
		}
	}
}
