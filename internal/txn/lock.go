// Package txn provides the logical concurrency control for Demaq message
// processing: a hierarchical lock manager with intention modes and
// wait-for-graph deadlock detection.
//
// The paper (Sec. 4.3) observes that slices form a natural locking
// granularity between whole queues and single messages: locking just the
// affected slices preserves full serializability of message-processing
// transactions while admitting more concurrency than queue-level locks.
// The engine implements both granularities (experiment E2) on top of this
// package; resources are named hierarchically by convention
// ("q/<queue>", "sl/<slicing>/<key>", "m/<msgid>").
package txn

import (
	"errors"
	"sync"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes: intention-shared, intention-exclusive, shared, exclusive.
const (
	IS Mode = iota
	IX
	S
	X
)

// String returns the conventional mode name.
func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case X:
		return "X"
	}
	return "?"
}

// compatible is the classic multi-granularity compatibility matrix.
var compatible = [4][4]bool{
	IS: {IS: true, IX: true, S: true, X: false},
	IX: {IS: true, IX: true, S: false, X: false},
	S:  {IS: true, IX: false, S: true, X: false},
	X:  {IS: false, IX: false, S: false, X: false},
}

// supremum[a][b] is the weakest mode at least as strong as both.
var supremum = [4][4]Mode{
	IS: {IS: IS, IX: IX, S: S, X: X},
	IX: {IS: IX, IX: IX, S: X, X: X},
	S:  {IS: S, IX: X, S: S, X: X},
	X:  {IS: X, IX: X, S: X, X: X},
}

// ErrDeadlock is returned to the victim of a deadlock; the caller is
// expected to abort and retry its message-processing transaction.
var ErrDeadlock = errors.New("txn: deadlock detected")

// waiter is a blocked lock request.
type waiter struct {
	txn    uint64
	mode   Mode
	ticket uint64
	ready  chan struct{}
	err    error
}

type lockState struct {
	holders map[uint64]Mode
	waiters []*waiter
}

// LockManager grants and tracks locks. All methods are safe for concurrent
// use.
type LockManager struct {
	mu      sync.Mutex
	locks   map[string]*lockState
	held    map[uint64]map[string]Mode // txn → resource → mode
	waitFor map[uint64]map[uint64]bool // waiter txn → holder txns
	tickets uint64

	// stats
	waits, deadlocks uint64
}

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager {
	return &LockManager{
		locks:   map[string]*lockState{},
		held:    map[uint64]map[string]Mode{},
		waitFor: map[uint64]map[uint64]bool{},
	}
}

// Stats returns (total waits, deadlocks resolved).
func (lm *LockManager) Stats() (waits, deadlocks uint64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.waits, lm.deadlocks
}

// Acquire obtains resource in mode for txn, blocking until granted. It
// returns ErrDeadlock if waiting would close a cycle; the transaction then
// still holds its other locks and must be released with ReleaseAll.
func (lm *LockManager) Acquire(txn uint64, resource string, mode Mode) error {
	lm.mu.Lock()
	ls, ok := lm.locks[resource]
	if !ok {
		ls = &lockState{holders: map[uint64]Mode{}}
		lm.locks[resource] = ls
	}
	// Upgrade path: compute the target mode.
	target := mode
	if cur, holds := ls.holders[txn]; holds {
		target = supremum[cur][mode]
		if target == cur {
			lm.mu.Unlock()
			return nil
		}
	}
	if lm.grantable(ls, txn, target, 0) {
		lm.grant(ls, txn, resource, target)
		lm.mu.Unlock()
		return nil
	}

	// Must wait: detect deadlock before blocking.
	w := &waiter{txn: txn, mode: target, ready: make(chan struct{})}
	lm.tickets++
	w.ticket = lm.tickets
	blockers := lm.blockers(ls, txn, target)
	if lm.wouldDeadlock(txn, blockers) {
		lm.deadlocks++
		lm.mu.Unlock()
		return ErrDeadlock
	}
	lm.waits++
	ls.waiters = append(ls.waiters, w)
	lm.setWaitFor(txn, blockers)
	lm.mu.Unlock()

	<-w.ready
	return w.err
}

// grantable reports whether txn can take mode on ls now. A request must be
// compatible with all other holders; to prevent starvation it must also not
// overtake an earlier incompatible waiter (unless that waiter is itself
// blocked only by this txn's current holdings — handled by the upgrade
// fast-path above).
func (lm *LockManager) grantable(ls *lockState, txn uint64, mode Mode, ticket uint64) bool {
	for holder, hmode := range ls.holders {
		if holder == txn {
			continue
		}
		if !compatible[mode][hmode] {
			return false
		}
	}
	for _, w := range ls.waiters {
		if w.txn == txn {
			continue
		}
		if ticket != 0 && w.ticket > ticket {
			continue // later waiter, no fairness obligation
		}
		if ticket == 0 && !compatible[mode][w.mode] {
			// New request behind an incompatible earlier waiter, unless the
			// waiter is blocked (transitively) by this txn: upgrades must
			// not queue behind requests they block.
			if _, holds := ls.holders[txn]; !holds {
				return false
			}
		}
	}
	return true
}

// blockers lists the transactions this request must wait for.
func (lm *LockManager) blockers(ls *lockState, txn uint64, mode Mode) []uint64 {
	var out []uint64
	for holder, hmode := range ls.holders {
		if holder != txn && !compatible[mode][hmode] {
			out = append(out, holder)
		}
	}
	for _, w := range ls.waiters {
		if w.txn != txn && !compatible[mode][w.mode] {
			out = append(out, w.txn)
		}
	}
	return out
}

func (lm *LockManager) setWaitFor(txn uint64, blockers []uint64) {
	m := map[uint64]bool{}
	for _, b := range blockers {
		m[b] = true
	}
	lm.waitFor[txn] = m
}

// wouldDeadlock checks whether adding edges txn→blockers closes a cycle in
// the wait-for graph.
func (lm *LockManager) wouldDeadlock(txn uint64, blockers []uint64) bool {
	seen := map[uint64]bool{}
	var dfs func(cur uint64) bool
	dfs = func(cur uint64) bool {
		if cur == txn {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
		for next := range lm.waitFor[cur] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	for _, b := range blockers {
		if dfs(b) {
			return true
		}
	}
	return false
}

func (lm *LockManager) grant(ls *lockState, txn uint64, resource string, mode Mode) {
	ls.holders[txn] = mode
	hm, ok := lm.held[txn]
	if !ok {
		hm = map[string]Mode{}
		lm.held[txn] = hm
	}
	hm[resource] = mode
	delete(lm.waitFor, txn)
}

// ReleaseAll drops every lock of txn (strict two-phase locking: all locks
// are held to transaction end) and wakes eligible waiters.
func (lm *LockManager) ReleaseAll(txn uint64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	resources := lm.held[txn]
	delete(lm.held, txn)
	delete(lm.waitFor, txn)
	for res := range resources {
		ls := lm.locks[res]
		if ls == nil {
			continue
		}
		delete(ls.holders, txn)
		lm.wake(res, ls)
		if len(ls.holders) == 0 && len(ls.waiters) == 0 {
			delete(lm.locks, res)
		}
	}
	// A released transaction may also have been enqueued as a waiter
	// elsewhere (it is being torn down after a deadlock): drop those.
	for res, ls := range lm.locks {
		changed := false
		for i := 0; i < len(ls.waiters); {
			if ls.waiters[i].txn == txn {
				w := ls.waiters[i]
				ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
				w.err = ErrDeadlock
				close(w.ready)
				changed = true
			} else {
				i++
			}
		}
		if changed {
			lm.wake(res, ls)
		}
	}
}

// wake grants as many queued waiters as compatibility admits, in ticket
// order.
func (lm *LockManager) wake(resource string, ls *lockState) {
	for i := 0; i < len(ls.waiters); {
		w := ls.waiters[i]
		target := w.mode
		if cur, holds := ls.holders[w.txn]; holds {
			target = supremum[cur][w.mode]
		}
		if lm.grantable(ls, w.txn, target, w.ticket) {
			ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
			lm.grant(ls, w.txn, resource, target)
			close(w.ready)
			continue
		}
		i++
	}
	// Re-derive wait-for edges for the remaining waiters.
	for _, w := range ls.waiters {
		lm.setWaitFor(w.txn, lm.blockers(ls, w.txn, w.mode))
	}
}

// Held returns a snapshot of the locks a transaction holds, for tests and
// debugging.
func (lm *LockManager) Held(txn uint64) map[string]Mode {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	out := map[string]Mode{}
	for r, m := range lm.held[txn] {
		out[r] = m
	}
	return out
}

// Resource builds a hierarchical resource name.
func Resource(parts ...string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "/"
		}
		out += p
	}
	return out
}
