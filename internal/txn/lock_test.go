package txn

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCompatibilityMatrix(t *testing.T) {
	// Spot-check the classic matrix.
	cases := []struct {
		a, b Mode
		want bool
	}{
		{IS, IS, true}, {IS, IX, true}, {IS, S, true}, {IS, X, false},
		{IX, IX, true}, {IX, S, false}, {IX, X, false},
		{S, S, true}, {S, X, false},
		{X, X, false},
	}
	for _, c := range cases {
		if compatible[c.a][c.b] != c.want || compatible[c.b][c.a] != c.want {
			t.Errorf("compat(%s,%s) != %v", c.a, c.b, c.want)
		}
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "q/a", S); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "q/a", S); err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(1)
	lm.ReleaseAll(2)
}

func TestExclusiveBlocks(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "q/a", X); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		if err := lm.Acquire(2, "q/a", X); err != nil {
			t.Error(err)
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("X should block behind X")
	case <-time.After(20 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("waiter not woken")
	}
	lm.ReleaseAll(2)
}

func TestUpgrade(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "r", S); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(1, "r", X); err != nil {
		t.Fatal(err)
	}
	if got := lm.Held(1)["r"]; got != X {
		t.Fatalf("after upgrade: %s", got)
	}
	// Another S must now block.
	done := make(chan error, 1)
	go func() { done <- lm.Acquire(2, "r", S) }()
	select {
	case <-done:
		t.Fatal("S granted against X")
	case <-time.After(20 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(2)
}

func TestIntentionModes(t *testing.T) {
	lm := NewLockManager()
	// Two writers on different slices of the same queue: IX + IX coexist.
	if err := lm.Acquire(1, "q/orders", IX); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "q/orders", IX); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(1, "sl/byid/1", X); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "sl/byid/2", X); err != nil {
		t.Fatal(err)
	}
	// A queue-level S must block while IX holders exist.
	done := make(chan error, 1)
	go func() { done <- lm.Acquire(3, "q/orders", S) }()
	select {
	case <-done:
		t.Fatal("S granted against IX")
	case <-time.After(20 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	lm.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(3)
}

func TestDeadlockDetected(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "b", X); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 2)
	go func() { errCh <- lm.Acquire(1, "b", X) }() // 1 waits for 2
	time.Sleep(20 * time.Millisecond)
	err := lm.Acquire(2, "a", X) // would close the cycle
	if err != ErrDeadlock {
		t.Fatalf("expected deadlock, got %v", err)
	}
	lm.ReleaseAll(2) // victim aborts
	if err := <-errCh; err != nil {
		t.Fatalf("survivor should proceed: %v", err)
	}
	lm.ReleaseAll(1)
	if _, dl := lm.Stats(); dl != 1 {
		t.Fatalf("deadlock count: %d", dl)
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	lm := NewLockManager()
	lm.Acquire(1, "a", X)
	lm.Acquire(2, "b", X)
	lm.Acquire(3, "c", X)
	e1 := make(chan error, 1)
	e2 := make(chan error, 1)
	go func() { e1 <- lm.Acquire(1, "b", X) }()
	go func() { e2 <- lm.Acquire(2, "c", X) }()
	time.Sleep(20 * time.Millisecond)
	if err := lm.Acquire(3, "a", X); err != ErrDeadlock {
		t.Fatalf("expected deadlock, got %v", err)
	}
	lm.ReleaseAll(3)
	if err := <-e2; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(2)
	if err := <-e1; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(1)
}

func TestNoStarvationWriterBehindReaders(t *testing.T) {
	lm := NewLockManager()
	lm.Acquire(1, "r", S)
	writerDone := make(chan error, 1)
	go func() { writerDone <- lm.Acquire(2, "r", X) }()
	time.Sleep(10 * time.Millisecond)
	// A later reader must queue behind the waiting writer, not overtake it.
	readerDone := make(chan error, 1)
	go func() { readerDone <- lm.Acquire(3, "r", S) }()
	select {
	case <-readerDone:
		t.Fatal("reader overtook waiting writer")
	case <-time.After(20 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(2)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(3)
}

func TestConcurrentStress(t *testing.T) {
	lm := NewLockManager()
	const workers = 16
	const iters = 200
	resources := []string{"q/a", "q/b", "q/c", "sl/x/1", "sl/x/2"}
	var counter int64
	var wg sync.WaitGroup
	var txnSeq atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := txnSeq.Add(1)
				res := resources[(seed+i)%len(resources)]
				err := lm.Acquire(id, res, X)
				if err == ErrDeadlock {
					lm.ReleaseAll(id)
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				// Critical section: exclusive access must hold.
				v := atomic.AddInt64(&counter, 1)
				if v > int64(len(resources)) {
					t.Errorf("more critical sections than resources: %d", v)
				}
				atomic.AddInt64(&counter, -1)
				lm.ReleaseAll(id)
			}
		}(w)
	}
	wg.Wait()
}
