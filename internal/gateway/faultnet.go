package gateway

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// FaultNet is the deterministic fault-injecting counterpart of Network:
// every Send is a numbered, traced operation whose fate — delivered,
// dropped, duplicated, held back for reordering, or cut by a partition —
// is a pure function of (seed, operation schedule). Addresses have the
// form "fnet://node/endpoint".
//
// Unlike Network, delivery is synchronous and in-line on the sender's
// goroutine: there are no delivery goroutines and no sleeps, so an
// identical workload replays the identical op sequence and the k-th
// operation is always the same transfer. That makes network op sites
// enumerable crash points in the same way FaultFS makes storage op sites
// enumerable: the end-to-end torture harness arms "crash the node when net
// op k fires" exactly like "crash the disk at write k".
//
// Two behaviors differ deliberately from Network:
//
//   - Sending to an address nobody subscribes to is a silent drop ("void"),
//     not ErrDisconnected: a rebooting node's endpoints are briefly gone,
//     and the reliable layer's retransmits must ride out the outage rather
//     than abort.
//   - Partition(prefix) silently drops every transfer whose destination
//     matches the prefix — per direction, so a two-node split is two calls
//     and an asymmetric (one-way) partition is one.
type FaultNet struct {
	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[string]Handler
	down      map[string]bool
	cuts      []string // destination prefixes currently partitioned away

	nOps  int
	trace []NetOp

	dropRate    float64
	dupRate     float64
	reorderRate float64
	dropAt      map[int]bool
	held        []netDelivery // reorder buffer, flushed after later sends

	hook func(NetOp) // crash-site injection; called outside fn.mu

	delivered, dropped uint64
	closed             bool
}

// NetOp records one numbered send operation and its resolved fate.
type NetOp struct {
	N    int
	Dest string
	Fate string // "deliver", "drop", "dup", "hold", "partitioned", "void"
	Len  int
}

func (op NetOp) String() string {
	return fmt.Sprintf("#%d %s -> %s len=%d", op.N, op.Fate, op.Dest, op.Len)
}

type netDelivery struct {
	h       Handler
	payload []byte
	props   map[string]string
}

// NewFaultNet creates a deterministic simulated network.
func NewFaultNet(seed int64) *FaultNet {
	return &FaultNet{
		rng:       rand.New(rand.NewSource(seed)),
		endpoints: map[string]Handler{},
		down:      map[string]bool{},
		dropAt:    map[int]bool{},
	}
}

// Scheme implements Transport.
func (fn *FaultNet) Scheme() string { return "fnet" }

// SetDropRate drops the given fraction of sends (seeded, deterministic).
func (fn *FaultNet) SetDropRate(p float64) {
	fn.mu.Lock()
	fn.dropRate = p
	fn.mu.Unlock()
}

// SetDupRate duplicates the given fraction of sends.
func (fn *FaultNet) SetDupRate(p float64) {
	fn.mu.Lock()
	fn.dupRate = p
	fn.mu.Unlock()
}

// SetReorderRate holds back the given fraction of sends; a held transfer is
// delivered after the next send to any destination (pairwise reordering).
func (fn *FaultNet) SetReorderRate(p float64) {
	fn.mu.Lock()
	fn.reorderRate = p
	fn.mu.Unlock()
}

// DropAt drops exactly the numbered operation — targeted single-op loss for
// regression tests.
func (fn *FaultNet) DropAt(n int) {
	fn.mu.Lock()
	fn.dropAt[n] = true
	fn.mu.Unlock()
}

// SetDown marks an endpoint as administratively unreachable: sends fail
// fast with ErrDisconnected (Network's dead-link behavior, kept for the
// deadLink rule path).
func (fn *FaultNet) SetDown(addr string, down bool) {
	fn.mu.Lock()
	fn.down[addr] = down
	fn.mu.Unlock()
}

// Partition silently cuts every transfer whose destination has the given
// prefix. Cutting each direction of a node pair is two calls; healing is
// HealPartition.
func (fn *FaultNet) Partition(destPrefix string) {
	fn.mu.Lock()
	fn.cuts = append(fn.cuts, destPrefix)
	fn.mu.Unlock()
}

// HealPartition removes a Partition cut.
func (fn *FaultNet) HealPartition(destPrefix string) {
	fn.mu.Lock()
	keep := fn.cuts[:0]
	for _, c := range fn.cuts {
		if c != destPrefix {
			keep = append(keep, c)
		}
	}
	fn.cuts = keep
	fn.mu.Unlock()
}

// SetOpHook installs a callback invoked after every numbered operation is
// resolved (outside the network lock, before delivery). The torture harness
// uses it to trigger a whole-node crash at net op k.
func (fn *FaultNet) SetOpHook(h func(NetOp)) {
	fn.mu.Lock()
	fn.hook = h
	fn.mu.Unlock()
}

// Ops returns the number of send operations so far.
func (fn *FaultNet) Ops() int {
	fn.mu.Lock()
	defer fn.mu.Unlock()
	return fn.nOps
}

// Trace returns a copy of the recorded operations.
func (fn *FaultNet) Trace() []NetOp {
	fn.mu.Lock()
	defer fn.mu.Unlock()
	return append([]NetOp(nil), fn.trace...)
}

// Stats returns (delivered, dropped) counters.
func (fn *FaultNet) Stats() (delivered, dropped uint64) {
	fn.mu.Lock()
	defer fn.mu.Unlock()
	return fn.delivered, fn.dropped
}

// Close stops the network; subsequent sends fail.
func (fn *FaultNet) Close() {
	fn.mu.Lock()
	fn.closed = true
	fn.held = nil
	fn.mu.Unlock()
}

// Subscribe implements Transport.
func (fn *FaultNet) Subscribe(addr string, h Handler) (func(), error) {
	fn.mu.Lock()
	defer fn.mu.Unlock()
	if _, ok := fn.endpoints[addr]; ok {
		return nil, fmt.Errorf("gateway: endpoint %s already subscribed", addr)
	}
	fn.endpoints[addr] = h
	return func() {
		fn.mu.Lock()
		delete(fn.endpoints, addr)
		fn.mu.Unlock()
	}, nil
}

// Send implements Transport. The operation is numbered and its fate
// resolved under the lock; the handler runs synchronously on the caller's
// goroutine with the lock released, so handlers may send (acks) without
// deadlocking. A send that delivers also flushes any held (reordered)
// transfers queued before it — they arrive after it, which is the
// reordering.
func (fn *FaultNet) Send(dest string, payload []byte, props map[string]string) error {
	fn.mu.Lock()
	if fn.closed {
		fn.mu.Unlock()
		return fmt.Errorf("gateway: network closed")
	}
	if fn.down[dest] {
		fn.mu.Unlock()
		return ErrDisconnected
	}
	fn.nOps++
	op := NetOp{N: fn.nOps, Dest: dest, Len: len(payload)}
	h, subscribed := fn.endpoints[dest]

	cut := false
	for _, c := range fn.cuts {
		if strings.HasPrefix(dest, c) {
			cut = true
			break
		}
	}
	copies := 0
	switch {
	case cut:
		op.Fate = "partitioned"
		fn.dropped++
	case !subscribed:
		// The endpoint is gone (node down or rebooting): the transfer
		// vanishes and the sender's reliable layer retransmits later.
		op.Fate = "void"
		fn.dropped++
	case fn.dropAt[op.N]:
		op.Fate = "drop"
		delete(fn.dropAt, op.N)
		fn.dropped++
	case fn.dropRate > 0 && fn.rng.Float64() < fn.dropRate:
		op.Fate = "drop"
		fn.dropped++
	case fn.dupRate > 0 && fn.rng.Float64() < fn.dupRate:
		op.Fate = "dup"
		copies = 2
	case fn.reorderRate > 0 && fn.rng.Float64() < fn.reorderRate:
		op.Fate = "hold"
		copies = 0
	default:
		op.Fate = "deliver"
		copies = 1
	}
	fn.trace = append(fn.trace, op)
	hook := fn.hook

	// Copy to decouple from the caller's buffers.
	var p []byte
	var pr map[string]string
	if op.Fate == "hold" || copies > 0 {
		p = append([]byte(nil), payload...)
		pr = make(map[string]string, len(props))
		for k, v := range props {
			pr[k] = v
		}
	}
	if op.Fate == "hold" {
		fn.held = append(fn.held, netDelivery{h: h, payload: p, props: pr})
	}
	// A resolved op releases the reorder buffer: held transfers arrive
	// after this op's own deliveries.
	var flush []netDelivery
	if op.Fate != "hold" && len(fn.held) > 0 {
		flush = fn.held
		fn.held = nil
	}
	fn.mu.Unlock()

	if hook != nil {
		hook(op)
	}
	for i := 0; i < copies; i++ {
		if err := h(p, pr); err == nil {
			fn.mu.Lock()
			fn.delivered++
			fn.mu.Unlock()
		}
	}
	for _, d := range flush {
		if err := d.h(d.payload, d.props); err == nil {
			fn.mu.Lock()
			fn.delivered++
			fn.mu.Unlock()
		}
	}
	return nil
}
