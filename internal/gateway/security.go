package gateway

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Secured wraps a transport with HMAC-SHA256 message integrity — the
// offline stand-in for the WS-Security policy attachment of Sec. 2.1.2.
// Outgoing payloads are signed; incoming messages with a missing or wrong
// signature are rejected before they reach the application, which surfaces
// as a delivery failure to the (reliable) sender.
type Secured struct {
	tr  Transport
	key []byte
}

const propSignature = "demaq-sig"

// NewSecured wraps tr with the shared key (the "policy" content).
func NewSecured(tr Transport, key []byte) *Secured {
	return &Secured{tr: tr, key: key}
}

// Scheme implements Transport.
func (s *Secured) Scheme() string { return s.tr.Scheme() }

func (s *Secured) sign(payload []byte) string {
	m := hmac.New(sha256.New, s.key)
	m.Write(payload)
	return hex.EncodeToString(m.Sum(nil))
}

// Send implements Transport, adding the signature property.
func (s *Secured) Send(dest string, payload []byte, props map[string]string) error {
	pr := make(map[string]string, len(props)+1)
	for k, v := range props {
		pr[k] = v
	}
	if _, isAck := pr[propAck]; !isAck { // control traffic is not signed
		pr[propSignature] = s.sign(payload)
	}
	return s.tr.Send(dest, payload, pr)
}

// Subscribe implements Transport, verifying signatures before delivery.
func (s *Secured) Subscribe(addr string, h Handler) (func(), error) {
	return s.tr.Subscribe(addr, func(payload []byte, props map[string]string) error {
		if _, isAck := props[propAck]; isAck {
			return h(payload, props)
		}
		sig := props[propSignature]
		if sig == "" {
			return fmt.Errorf("gateway: unsigned message rejected by security policy")
		}
		if !hmac.Equal([]byte(sig), []byte(s.sign(payload))) {
			return fmt.Errorf("gateway: invalid message signature")
		}
		return h(payload, props)
	})
}
