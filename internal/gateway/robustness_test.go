package gateway

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestHTTPBodyLimitRejected(t *testing.T) {
	tr := NewHTTPTransportOptions(HTTPOptions{MaxBodyBytes: 1024})
	defer tr.Close()
	addr := "http://127.0.0.1:39411/queues/in"
	unsub, err := tr.Subscribe(addr, func([]byte, map[string]string) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()

	resp, err := http.Post(addr, "application/xml", bytes.NewReader(make([]byte, 4096)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: got %s, want 413", resp.Status)
	}

	// A body exactly at the limit still goes through.
	resp, err = http.Post(addr, "application/xml", bytes.NewReader(make([]byte, 1024)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("at-limit body: got %s, want 202", resp.Status)
	}
}

func TestHTTPUnavailableShedsWith503(t *testing.T) {
	tr := NewHTTPTransport()
	defer tr.Close()
	addr := "http://127.0.0.1:39412/queues/in"
	unsub, err := tr.Subscribe(addr, func([]byte, map[string]string) error {
		return fmt.Errorf("engine: degraded read-only mode: %w", ErrUnavailable)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()

	resp, err := http.Post(addr, "application/xml", strings.NewReader("<m/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded handler: got %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response carries no Retry-After")
	}
}

func TestHTTPServerLimitsApplied(t *testing.T) {
	tr := NewHTTPTransportOptions(HTTPOptions{ReadTimeout: 7 * time.Second})
	defer tr.Close()
	addr := "http://127.0.0.1:39413/queues/in"
	unsub, err := tr.Subscribe(addr, func([]byte, map[string]string) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, s := range tr.servers {
		if s.srv.ReadTimeout != 7*time.Second {
			t.Fatalf("ReadTimeout %v not applied to listener", s.srv.ReadTimeout)
		}
		if s.srv.WriteTimeout != DefaultHTTPWriteTimeout || s.srv.MaxHeaderBytes != DefaultHTTPMaxHeaderBytes {
			t.Fatal("defaulted limits not applied to listener")
		}
	}
}

// countingTransport drops every send and counts them.
type countingTransport struct{ sends atomic.Int64 }

func (c *countingTransport) Scheme() string { return "cnt" }
func (c *countingTransport) Send(string, []byte, map[string]string) error {
	c.sends.Add(1)
	return nil // accepted by the wire, but no ack will ever arrive
}
func (c *countingTransport) Subscribe(string, Handler) (func(), error) {
	return func() {}, nil
}

func TestReliableCloseCancelsInFlightRetries(t *testing.T) {
	ct := &countingTransport{}
	send, err := NewReliable(ct, "cnt://a/out", time.Millisecond, 1000)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	send.SendAsync("cnt://b/in", []byte("x"), nil, func(err error) { done <- err })

	// Let a few retransmissions happen, then close mid-flight.
	time.Sleep(10 * time.Millisecond)
	send.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("completion should carry the close error")
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not fail the pending send")
	}
	// No transmission may happen on behalf of a cancelled send: the count
	// must stop moving once the already-armed timer has drained.
	time.Sleep(5 * time.Millisecond)
	before := ct.sends.Load()
	time.Sleep(50 * time.Millisecond)
	if after := ct.sends.Load(); after != before {
		t.Fatalf("%d transmissions after Close", after-before)
	}
}

func TestReliableBackoffGrowsAndCaps(t *testing.T) {
	r, err := NewReliable(&countingTransport{}, "cnt://a/out", 10*time.Millisecond, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.mu.Lock()
	defer r.mu.Unlock()
	prevMax := time.Duration(0)
	for tries := 1; tries <= 8; tries++ {
		// The jitter range for retransmission n is [base/2, base] with
		// base = min(interval * 2^(n-1), maxWait).
		base := 10 * time.Millisecond << (tries - 1)
		if base > r.maxWait {
			base = r.maxWait
		}
		for i := 0; i < 50; i++ {
			d := r.backoff(tries)
			if d < base/2 || d > base {
				t.Fatalf("backoff(%d) = %v outside [%v, %v]", tries, d, base/2, base)
			}
		}
		if base < prevMax {
			t.Fatalf("backoff ceiling shrank at try %d", tries)
		}
		prevMax = base
	}
	if prevMax != r.maxWait {
		t.Fatalf("backoff never reached the cap: %v vs %v", prevMax, r.maxWait)
	}
}
