package gateway

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHTTPBodyLimitRejected(t *testing.T) {
	tr := NewHTTPTransportOptions(HTTPOptions{MaxBodyBytes: 1024})
	defer tr.Close()
	addr := "http://127.0.0.1:39411/queues/in"
	unsub, err := tr.Subscribe(addr, func([]byte, map[string]string) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()

	resp, err := http.Post(addr, "application/xml", bytes.NewReader(make([]byte, 4096)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: got %s, want 413", resp.Status)
	}

	// A body exactly at the limit still goes through.
	resp, err = http.Post(addr, "application/xml", bytes.NewReader(make([]byte, 1024)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("at-limit body: got %s, want 202", resp.Status)
	}
}

func TestHTTPUnavailableShedsWith503(t *testing.T) {
	tr := NewHTTPTransport()
	defer tr.Close()
	addr := "http://127.0.0.1:39412/queues/in"
	unsub, err := tr.Subscribe(addr, func([]byte, map[string]string) error {
		return fmt.Errorf("engine: degraded read-only mode: %w", ErrUnavailable)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()

	resp, err := http.Post(addr, "application/xml", strings.NewReader("<m/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded handler: got %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response carries no Retry-After")
	}
}

func TestHTTPServerLimitsApplied(t *testing.T) {
	tr := NewHTTPTransportOptions(HTTPOptions{ReadTimeout: 7 * time.Second})
	defer tr.Close()
	addr := "http://127.0.0.1:39413/queues/in"
	unsub, err := tr.Subscribe(addr, func([]byte, map[string]string) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, s := range tr.servers {
		if s.srv.ReadTimeout != 7*time.Second {
			t.Fatalf("ReadTimeout %v not applied to listener", s.srv.ReadTimeout)
		}
		if s.srv.WriteTimeout != DefaultHTTPWriteTimeout || s.srv.MaxHeaderBytes != DefaultHTTPMaxHeaderBytes {
			t.Fatal("defaulted limits not applied to listener")
		}
	}
}

func TestHTTPOverloadedShedsWith429(t *testing.T) {
	tr := NewHTTPTransport()
	defer tr.Close()
	addr := "http://127.0.0.1:39414/queues/in"
	unsub, err := tr.Subscribe(addr, func([]byte, map[string]string) error {
		return fmt.Errorf("engine: ingest backlog full: %w", ErrOverloaded)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()

	resp, err := http.Post(addr, "application/xml", strings.NewReader("<m/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded handler: got %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response carries no Retry-After")
	}
}

// countingTransport drops every send and counts them.
type countingTransport struct{ sends atomic.Int64 }

func (c *countingTransport) Scheme() string { return "cnt" }
func (c *countingTransport) Send(string, []byte, map[string]string) error {
	c.sends.Add(1)
	return nil // accepted by the wire, but no ack will ever arrive
}
func (c *countingTransport) Subscribe(string, Handler) (func(), error) {
	return func() {}, nil
}

func TestReliableCloseCancelsInFlightRetries(t *testing.T) {
	ct := &countingTransport{}
	send, err := NewReliable(ct, "cnt://a/out", time.Millisecond, 1000)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	send.SendAsync("cnt://b/in", []byte("x"), nil, func(err error) { done <- err })

	// Let a few retransmissions happen, then close mid-flight.
	time.Sleep(10 * time.Millisecond)
	send.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("completion should carry the close error")
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not fail the pending send")
	}
	// No transmission may happen on behalf of a cancelled send: the count
	// must stop moving once the already-armed timer has drained.
	time.Sleep(5 * time.Millisecond)
	before := ct.sends.Load()
	time.Sleep(50 * time.Millisecond)
	if after := ct.sends.Load(); after != before {
		t.Fatalf("%d transmissions after Close", after-before)
	}
}

func TestReliableBackoffGrowsAndCaps(t *testing.T) {
	r, err := NewReliable(&countingTransport{}, "cnt://a/out", 10*time.Millisecond, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.mu.Lock()
	defer r.mu.Unlock()
	prevMax := time.Duration(0)
	for tries := 1; tries <= 8; tries++ {
		// The jitter range for retransmission n is [base/2, base] with
		// base = min(interval * 2^(n-1), maxWait).
		base := 10 * time.Millisecond << (tries - 1)
		if base > r.maxWait {
			base = r.maxWait
		}
		for i := 0; i < 50; i++ {
			d := r.backoff(tries)
			if d < base/2 || d > base {
				t.Fatalf("backoff(%d) = %v outside [%v, %v]", tries, d, base/2, base)
			}
		}
		if base < prevMax {
			t.Fatalf("backoff ceiling shrank at try %d", tries)
		}
		prevMax = base
	}
	if prevMax != r.maxWait {
		t.Fatalf("backoff never reached the cap: %v vs %v", prevMax, r.maxWait)
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestReliablePartitionHealRetransmitsResume cuts first the data direction,
// then the ack direction of a FaultNet link and asserts that capped-backoff
// retransmission rides out both partitions and that receiver dedup holds
// across the heal: every message is admitted exactly once even though the
// lost-ack phase forces duplicate deliveries.
func TestReliablePartitionHealRetransmitsResume(t *testing.T) {
	fn := NewFaultNet(3)
	recv, err := NewReliable(fn, "fnet://b/in", time.Millisecond, 10000)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	var mu sync.Mutex
	admitted := map[string]int{}
	if err := recv.Subscribe(func(p []byte, _ map[string]string) error {
		mu.Lock()
		admitted[string(p)]++
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	send, err := NewReliable(fn, "fnet://a/acks", time.Millisecond, 10000)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	if err := send.Subscribe(func([]byte, map[string]string) error { return nil }); err != nil {
		t.Fatal(err)
	}

	// Phase 1: data direction partitioned; sends must survive on retransmit.
	fn.Partition("fnet://b")
	acks := make(chan error, 8)
	for i := 0; i < 4; i++ {
		send.SendAsync("fnet://b/in", []byte(fmt.Sprintf("p1-%d", i)), nil, func(err error) { acks <- err })
	}
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	if len(admitted) != 0 {
		mu.Unlock()
		t.Fatal("messages crossed the data partition")
	}
	mu.Unlock()
	fn.HealPartition("fnet://b")
	for i := 0; i < 4; i++ {
		if err := <-acks; err != nil {
			t.Fatalf("phase-1 send failed after heal: %v", err)
		}
	}

	// Phase 2: ack direction partitioned; the receiver admits once, the
	// sender keeps retransmitting, dedup suppresses the replays.
	fn.Partition("fnet://a")
	for i := 0; i < 4; i++ {
		send.SendAsync("fnet://b/in", []byte(fmt.Sprintf("p2-%d", i)), nil, func(err error) { acks <- err })
	}
	waitUntil(t, time.Second, "phase-2 deliveries", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(admitted) == 8
	})
	time.Sleep(10 * time.Millisecond) // let replays hammer the dedup window
	fn.HealPartition("fnet://a")
	for i := 0; i < 4; i++ {
		if err := <-acks; err != nil {
			t.Fatalf("phase-2 send failed after heal: %v", err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(admitted) != 8 {
		t.Fatalf("admitted %d distinct messages, want 8", len(admitted))
	}
	for m, n := range admitted {
		if n != 1 {
			t.Fatalf("message %q admitted %d times", m, n)
		}
	}
	if _, retrans, _ := send.Stats(); retrans == 0 {
		t.Fatal("no retransmissions across two partitions")
	}
	if _, _, dups := recv.Stats(); dups == 0 {
		t.Fatal("lost-ack phase produced no suppressed duplicates")
	}
}

// memSessionStore is an in-memory SessionStore for sender-restart tests.
type memSessionStore struct {
	mu   sync.Mutex
	send map[string]uint64
	recv map[string][]RecvSession
}

func newMemSessionStore() *memSessionStore {
	return &memSessionStore{send: map[string]uint64{}, recv: map[string][]RecvSession{}}
}

func (m *memSessionStore) SendNext(source string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.send[source]
}

func (m *memSessionStore) ReserveSend(source string, upTo uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if upTo > m.send[source] {
		m.send[source] = upTo
	}
	return nil
}

func (m *memSessionStore) RecvSessions(endpoint string) []RecvSession {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recv[endpoint]
}

// TestReliableRestartedSenderResumesSequence is the regression test for the
// sender sequence restarting at 0 after reconstruction: without the durable
// next-seq reservation the second sender incarnation reissues sequence
// numbers 1..n, the receiver's window flags them as duplicates, re-acks,
// and the new messages are silently lost — acked but never admitted.
func TestReliableRestartedSenderResumesSequence(t *testing.T) {
	fn := NewFaultNet(5)
	store := newMemSessionStore()
	recv, err := NewReliable(fn, "fnet://b/in", time.Millisecond, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	var mu sync.Mutex
	var got []string
	if err := recv.Subscribe(func(p []byte, _ map[string]string) error {
		mu.Lock()
		got = append(got, string(p))
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	sendBatch := func(r *Reliable, label string, n int) {
		t.Helper()
		acks := make(chan error, n)
		for i := 0; i < n; i++ {
			r.SendAsync("fnet://b/in", []byte(fmt.Sprintf("%s-%d", label, i)), nil, func(err error) { acks <- err })
		}
		for i := 0; i < n; i++ {
			if err := <-acks; err != nil {
				t.Fatalf("%s send %d: %v", label, i, err)
			}
		}
	}

	s1, err := NewReliableOptions(fn, "fnet://a/acks", ReliableOptions{RetryInterval: time.Millisecond, MaxRetries: 1000, Session: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Subscribe(func([]byte, map[string]string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	sendBatch(s1, "gen1", 3)
	s1.Close()

	// Restart: a new incarnation of the same source, same session store.
	s2, err := NewReliableOptions(fn, "fnet://a/acks", ReliableOptions{RetryInterval: time.Millisecond, MaxRetries: 1000, Session: store})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Subscribe(func([]byte, map[string]string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	sendBatch(s2, "gen2", 3)

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 6 {
		t.Fatalf("receiver admitted %d messages, want 6 (restarted sender's messages dropped as duplicates?): %v", len(got), got)
	}
	seen := map[string]bool{}
	for _, m := range got {
		if seen[m] {
			t.Fatalf("duplicate admission of %q", m)
		}
		seen[m] = true
	}
}

// relayTransport hands the test direct access to a subscribed handler so a
// million protocol messages can be driven without timers or goroutines.
type relayTransport struct {
	mu       sync.Mutex
	handlers map[string]Handler
}

func (rt *relayTransport) Scheme() string { return "relay" }
func (rt *relayTransport) Send(dest string, payload []byte, props map[string]string) error {
	rt.mu.Lock()
	h := rt.handlers[dest]
	rt.mu.Unlock()
	if h != nil {
		_ = h(payload, props)
	}
	return nil
}
func (rt *relayTransport) Subscribe(addr string, h Handler) (func(), error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.handlers == nil {
		rt.handlers = map[string]Handler{}
	}
	rt.handlers[addr] = h
	return func() {
		rt.mu.Lock()
		delete(rt.handlers, addr)
		rt.mu.Unlock()
	}, nil
}

// TestReliableRecvWindowMemoryFlat replaces the old unbounded `seen` map
// check: after a million admitted transfers from one peer, the dedup state
// is still one fixed-size window, and old in-window duplicates are still
// suppressed.
func TestReliableRecvWindowMemoryFlat(t *testing.T) {
	rt := &relayTransport{}
	r, err := NewReliable(rt, "relay://b/in", time.Millisecond, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	admits := 0
	if err := r.Subscribe(func([]byte, map[string]string) error {
		admits++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rt.mu.Lock()
	deliver := rt.handlers["relay://b/in"]
	rt.mu.Unlock()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const n = 1_000_000
	for i := 1; i <= n; i++ {
		props := map[string]string{propSeq: strconv.FormatUint(uint64(i), 10), propSource: "relay://peer/acks"}
		if err := deliver(nil, props); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if admits != n {
		t.Fatalf("admitted %d of %d transfers", admits, n)
	}
	grown := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if grown > 4<<20 {
		t.Fatalf("heap grew %d bytes over %d transfers; dedup state is not flat", grown, n)
	}

	// In-window replays stay suppressed; ancient sequence numbers are
	// treated as long-acked duplicates, not re-admitted.
	for _, seq := range []uint64{n, n - 100, n - 1023, 1} {
		props := map[string]string{propSeq: strconv.FormatUint(seq, 10), propSource: "relay://peer/acks"}
		if err := deliver(nil, props); err != nil {
			t.Fatal(err)
		}
	}
	if admits != n {
		t.Fatalf("replays were re-admitted: %d admits after %d transfers", admits, n)
	}
	if _, _, dups := r.Stats(); dups != 4 {
		t.Fatalf("duplicate counter %d, want 4", dups)
	}
}
