package gateway

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Network is the simulated in-process network. Addresses have the form
// "sim://node/endpoint". Failure behavior is configurable per network and
// per destination, with a seeded generator for reproducible experiments
// (E9 sweeps the loss rate).
type Network struct {
	mu        sync.Mutex
	endpoints map[string]Handler
	rng       *rand.Rand
	latency   time.Duration
	lossRate  float64
	dupRate   float64
	down      map[string]bool
	delivered uint64
	dropped   uint64

	wg     sync.WaitGroup
	closed bool
}

// NewNetwork creates a simulator with a deterministic seed.
func NewNetwork(seed int64) *Network {
	return &Network{
		endpoints: map[string]Handler{},
		rng:       rand.New(rand.NewSource(seed)),
		down:      map[string]bool{},
	}
}

// SetLatency sets the one-way delivery delay.
func (n *Network) SetLatency(d time.Duration) {
	n.mu.Lock()
	n.latency = d
	n.mu.Unlock()
}

// SetLossRate drops the given fraction of messages silently.
func (n *Network) SetLossRate(p float64) {
	n.mu.Lock()
	n.lossRate = p
	n.mu.Unlock()
}

// SetDupRate duplicates the given fraction of messages.
func (n *Network) SetDupRate(p float64) {
	n.mu.Lock()
	n.dupRate = p
	n.mu.Unlock()
}

// SetDown marks an endpoint as (un)reachable; sends to a down endpoint fail
// with ErrDisconnected.
func (n *Network) SetDown(addr string, down bool) {
	n.mu.Lock()
	n.down[addr] = down
	n.mu.Unlock()
}

// Stats returns (delivered, dropped) counters.
func (n *Network) Stats() (delivered, dropped uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered, n.dropped
}

// Close waits for in-flight deliveries.
func (n *Network) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.wg.Wait()
}

// Scheme implements Transport.
func (n *Network) Scheme() string { return "sim" }

// Subscribe implements Transport.
func (n *Network) Subscribe(addr string, h Handler) (func(), error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.endpoints[addr]; ok {
		return nil, fmt.Errorf("gateway: endpoint %s already subscribed", addr)
	}
	n.endpoints[addr] = h
	return func() {
		n.mu.Lock()
		delete(n.endpoints, addr)
		n.mu.Unlock()
	}, nil
}

// Send implements Transport: asynchronous delivery with the configured
// latency/loss/duplication.
func (n *Network) Send(dest string, payload []byte, props map[string]string) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("gateway: network closed")
	}
	if n.down[dest] {
		n.mu.Unlock()
		return ErrDisconnected
	}
	h, ok := n.endpoints[dest]
	if !ok {
		n.mu.Unlock()
		return ErrDisconnected
	}
	copies := 1
	if n.lossRate > 0 && n.rng.Float64() < n.lossRate {
		copies = 0
		n.dropped++
	} else if n.dupRate > 0 && n.rng.Float64() < n.dupRate {
		copies = 2
	}
	latency := n.latency
	n.mu.Unlock()

	// Copy to decouple from the caller's buffers.
	p := append([]byte(nil), payload...)
	pr := make(map[string]string, len(props))
	for k, v := range props {
		pr[k] = v
	}
	for i := 0; i < copies; i++ {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			if latency > 0 {
				time.Sleep(latency)
			}
			if err := h(p, pr); err == nil {
				n.mu.Lock()
				n.delivered++
				n.mu.Unlock()
			}
		}()
	}
	return nil
}
