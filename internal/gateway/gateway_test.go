package gateway

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNetworkBasicDelivery(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	got := make(chan string, 1)
	unsub, err := n.Subscribe("sim://node/q", func(p []byte, props map[string]string) error {
		got <- string(p) + "|" + props["k"]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	if err := n.Send("sim://node/q", []byte("hello"), map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "hello|v" {
			t.Fatalf("delivered %q", s)
		}
	case <-time.After(time.Second):
		t.Fatal("not delivered")
	}
}

func TestNetworkUnknownAndDownEndpoints(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	if err := n.Send("sim://nowhere/q", nil, nil); err != ErrDisconnected {
		t.Fatalf("unknown endpoint: %v", err)
	}
	unsub, _ := n.Subscribe("sim://node/q", func([]byte, map[string]string) error { return nil })
	defer unsub()
	n.SetDown("sim://node/q", true)
	if err := n.Send("sim://node/q", nil, nil); err != ErrDisconnected {
		t.Fatalf("down endpoint: %v", err)
	}
	n.SetDown("sim://node/q", false)
	if err := n.Send("sim://node/q", nil, nil); err != nil {
		t.Fatalf("endpoint back up: %v", err)
	}
}

func TestNetworkLoss(t *testing.T) {
	n := NewNetwork(42)
	defer n.Close()
	var received atomic.Int64
	unsub, _ := n.Subscribe("sim://node/q", func([]byte, map[string]string) error {
		received.Add(1)
		return nil
	})
	defer unsub()
	n.SetLossRate(0.5)
	for i := 0; i < 200; i++ {
		n.Send("sim://node/q", []byte("x"), nil)
	}
	n.Close()
	got := received.Load()
	if got < 50 || got > 150 {
		t.Fatalf("with 50%% loss, received %d of 200", got)
	}
	_, dropped := n.Stats()
	if dropped == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestReliableDeliversDespiteLoss(t *testing.T) {
	n := NewNetwork(7)
	defer n.Close()
	n.SetLossRate(0.4)

	recv, err := NewReliable(n, "sim://b/in", 5*time.Millisecond, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	var mu sync.Mutex
	var got []string
	if err := recv.Subscribe(func(p []byte, _ map[string]string) error {
		mu.Lock()
		got = append(got, string(p))
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	send, err := NewReliable(n, "sim://a/out", 5*time.Millisecond, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	if err := send.Subscribe(func([]byte, map[string]string) error { return nil }); err != nil {
		t.Fatal(err)
	}

	const msgs = 30
	var wg sync.WaitGroup
	errs := make(chan error, msgs)
	for i := 0; i < msgs; i++ {
		wg.Add(1)
		send.SendAsync("sim://b/in", []byte(fmt.Sprintf("m%d", i)), nil, func(err error) {
			errs <- err
			wg.Done()
		})
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("send failed: %v", err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// At-least-once with dedup = exactly-once to the application.
	if len(got) != msgs {
		t.Fatalf("delivered %d unique messages, want %d", len(got), msgs)
	}
	seen := map[string]bool{}
	for _, m := range got {
		if seen[m] {
			t.Fatalf("duplicate delivered to application: %s", m)
		}
		seen[m] = true
	}
	_, retransmits, _ := send.Stats()
	if retransmits == 0 {
		t.Fatal("expected retransmissions under loss")
	}
}

func TestReliableDedupUnderDuplication(t *testing.T) {
	n := NewNetwork(3)
	defer n.Close()
	n.SetDupRate(0.8)
	recv, _ := NewReliable(n, "sim://b/in", 5*time.Millisecond, 50)
	defer recv.Close()
	var count atomic.Int64
	recv.Subscribe(func([]byte, map[string]string) error {
		count.Add(1)
		return nil
	})
	send, _ := NewReliable(n, "sim://a/out", 5*time.Millisecond, 50)
	defer send.Close()
	send.Subscribe(func([]byte, map[string]string) error { return nil })
	done := make(chan error, 10)
	for i := 0; i < 10; i++ {
		send.SendAsync("sim://b/in", []byte(fmt.Sprintf("%d", i)), nil, func(err error) { done <- err })
	}
	for i := 0; i < 10; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let duplicates land
	if got := count.Load(); got != 10 {
		t.Fatalf("application saw %d messages, want 10", got)
	}
}

func TestReliableDisconnectedFailsFast(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	send, _ := NewReliable(n, "sim://a/out", 5*time.Millisecond, 5)
	defer send.Close()
	send.Subscribe(func([]byte, map[string]string) error { return nil })
	done := make(chan error, 1)
	send.SendAsync("sim://gone/q", []byte("x"), nil, func(err error) { done <- err })
	select {
	case err := <-done:
		if err != ErrDisconnected {
			t.Fatalf("want ErrDisconnected, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("no completion")
	}
}

func TestReliableRetryBudgetExhausted(t *testing.T) {
	n := NewNetwork(5)
	defer n.Close()
	n.SetLossRate(1.0) // nothing gets through
	unsub, _ := n.Subscribe("sim://b/in", func([]byte, map[string]string) error { return nil })
	defer unsub()
	send, _ := NewReliable(n, "sim://a/out", time.Millisecond, 3)
	defer send.Close()
	send.Subscribe(func([]byte, map[string]string) error { return nil })
	done := make(chan error, 1)
	send.SendAsync("sim://b/in", []byte("x"), nil, func(err error) { done <- err })
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected failure after retry budget")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no completion")
	}
}

func TestSecuredSignsAndVerifies(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	key := []byte("shared-secret")
	recvTr := NewSecured(n, key)
	got := make(chan string, 1)
	unsub, err := recvTr.Subscribe("sim://node/q", func(p []byte, _ map[string]string) error {
		got <- string(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()

	sendTr := NewSecured(n, key)
	if err := sendTr.Send("sim://node/q", []byte("signed"), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "signed" {
			t.Fatal("payload mangled")
		}
	case <-time.After(time.Second):
		t.Fatal("signed message not delivered")
	}
	// Unsigned and wrongly-signed traffic is rejected before the handler.
	n.Send("sim://node/q", []byte("unsigned"), nil)
	wrong := NewSecured(n, []byte("other-key"))
	wrong.Send("sim://node/q", []byte("forged"), nil)
	select {
	case s := <-got:
		t.Fatalf("insecure message delivered: %q", s)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestHTTPTransportLoopback(t *testing.T) {
	tr := NewHTTPTransport()
	defer tr.Close()
	addr := "http://127.0.0.1:39401/queues/in"
	got := make(chan string, 1)
	unsub, err := tr.Subscribe(addr, func(p []byte, props map[string]string) error {
		got <- string(p) + "|" + props["Tag"]
		return nil
	})
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer unsub()
	if err := tr.Send(addr, []byte("<m/>"), map[string]string{"Tag": "t1"}); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "<m/>|t1" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery over HTTP")
	}
	// Unknown path 404s → send error.
	if err := tr.Send("http://127.0.0.1:39401/queues/none", []byte("x"), nil); err == nil {
		t.Fatal("expected error for unknown endpoint")
	}
}

func TestRegistry(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	r := NewRegistry(n)
	if _, err := r.For("sim://a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.For("smtp://x"); err == nil {
		t.Fatal("unknown scheme must fail")
	}
	if SchemeOf("http://x/y") != "http" || SchemeOf("plain") != "" {
		t.Fatal("SchemeOf")
	}
}
