package gateway

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// HTTPTransport is the real network binding: messages are POSTed as the
// request body with properties in X-Demaq-* headers — the shape of the
// paper's SOAP/HTTP binding without the envelope ceremony. Addresses have
// the form "http://host:port/path". One HTTPTransport can both serve local
// endpoints (it runs one shared listener per host:port it subscribes on)
// and send to remote ones.
type HTTPTransport struct {
	mu        sync.Mutex
	client    *http.Client
	servers   map[string]*httpServer // host:port → server
	endpoints map[string]Handler     // full address → handler

	bodies      sync.Pool // *[]byte request-body read buffers
	pooledBytes atomic.Uint64
}

type httpServer struct {
	ln  net.Listener
	srv *http.Server
}

// NewHTTPTransport creates an HTTP transport.
func NewHTTPTransport() *HTTPTransport {
	return &HTTPTransport{
		client:    &http.Client{Timeout: 30 * time.Second},
		servers:   map[string]*httpServer{},
		endpoints: map[string]Handler{},
	}
}

// Scheme implements Transport.
func (t *HTTPTransport) Scheme() string { return "http" }

const headerPrefix = "X-Demaq-"

// Send implements Transport.
func (t *HTTPTransport) Send(dest string, payload []byte, props map[string]string) error {
	req, err := http.NewRequest(http.MethodPost, dest, strings.NewReader(string(payload)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/xml")
	for k, v := range props {
		req.Header.Set(headerPrefix+k, v)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return ErrDisconnected
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("gateway: http endpoint returned %s", resp.Status)
	}
	return nil
}

// Subscribe implements Transport: it lazily starts a listener for the
// address's host:port and routes by path.
func (t *HTTPTransport) Subscribe(addr string, h Handler) (func(), error) {
	hostPort, _, err := splitHTTPAddr(addr)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.endpoints[addr]; dup {
		return nil, fmt.Errorf("gateway: endpoint %s already subscribed", addr)
	}
	if _, ok := t.servers[hostPort]; !ok {
		ln, err := net.Listen("tcp", hostPort)
		if err != nil {
			return nil, err
		}
		srv := &http.Server{Handler: http.HandlerFunc(t.serve)}
		t.servers[hostPort] = &httpServer{ln: ln, srv: srv}
		go srv.Serve(ln)
	}
	t.endpoints[addr] = h
	return func() {
		t.mu.Lock()
		delete(t.endpoints, addr)
		t.mu.Unlock()
	}, nil
}

// Close shuts down all listeners.
func (t *HTTPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.servers {
		s.srv.Close()
	}
	t.servers = map[string]*httpServer{}
}

// Pooled body buffers are returned to the pool only below this capacity:
// the occasional huge request must not pin its allocation forever.
const maxPooledBody = 1 << 20

// IngestBytesPooled reports how many request-body bytes were read through
// recycled buffers (surfaced as engine Stats.IngestBytesPooled).
func (t *HTTPTransport) IngestBytesPooled() uint64 { return t.pooledBytes.Load() }

// readBody reads r fully into buf (grown as needed), mirroring
// io.ReadAll without the fresh allocation per request.
func readBody(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func (t *HTTPTransport) serve(w http.ResponseWriter, r *http.Request) {
	addr := "http://" + r.Host + r.URL.Path
	t.mu.Lock()
	h, ok := t.endpoints[addr]
	t.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	// Read the body into a pooled buffer. Handlers receive the buffer for
	// the duration of the call only: the engine's streaming ingest copies
	// everything it keeps, so the buffer is recycled as soon as the
	// handler returns.
	bp, _ := t.bodies.Get().(*[]byte)
	if bp == nil {
		b := make([]byte, 0, 64<<10)
		bp = &b
	}
	body, err := readBody(io.LimitReader(r.Body, 64<<20), (*bp)[:0])
	*bp = body[:0]
	if err != nil {
		t.bodies.Put(bp)
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	props := map[string]string{}
	for k, vs := range r.Header {
		if strings.HasPrefix(k, headerPrefix) && len(vs) > 0 {
			props[k[len(headerPrefix):]] = vs[0]
		}
	}
	// Remote address as the sender when the peer did not identify itself.
	if props["Sender"] == "" {
		props["Sender"] = "http://" + r.RemoteAddr
	}
	herr := h(body, props)
	t.pooledBytes.Add(uint64(len(body)))
	if cap(body) <= maxPooledBody {
		t.bodies.Put(bp)
	}
	if herr != nil {
		http.Error(w, herr.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

func splitHTTPAddr(addr string) (hostPort, path string, err error) {
	rest, ok := strings.CutPrefix(addr, "http://")
	if !ok {
		return "", "", fmt.Errorf("gateway: not an http address: %s", addr)
	}
	i := strings.Index(rest, "/")
	if i < 0 {
		return rest, "/", nil
	}
	return rest[:i], rest[i:], nil
}
