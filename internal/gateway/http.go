package gateway

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// HTTPTransport is the real network binding: messages are POSTed as the
// request body with properties in X-Demaq-* headers — the shape of the
// paper's SOAP/HTTP binding without the envelope ceremony. Addresses have
// the form "http://host:port/path". One HTTPTransport can both serve local
// endpoints (it runs one shared listener per host:port it subscribes on)
// and send to remote ones.
type HTTPTransport struct {
	mu        sync.Mutex
	client    *http.Client
	opts      HTTPOptions
	servers   map[string]*httpServer // host:port → server
	endpoints map[string]Handler     // full address → handler

	bodies      sync.Pool // *[]byte request-body read buffers
	pooledBytes atomic.Uint64
}

type httpServer struct {
	ln  net.Listener
	srv *http.Server
}

// HTTPOptions bounds the transport's exposure to slow or oversized peers.
// Zero values take the defaults below.
type HTTPOptions struct {
	// ReadTimeout / WriteTimeout / IdleTimeout are applied to every
	// listener the transport starts; a peer that trickles a request body
	// or never drains a response cannot pin a connection forever.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
	// MaxHeaderBytes caps request header size (http.Server semantics).
	MaxHeaderBytes int
	// MaxBodyBytes caps the request body; larger ingests are rejected
	// with 413 Request Entity Too Large before the handler runs.
	MaxBodyBytes int64
}

// Defaults for HTTPOptions zero values.
const (
	DefaultHTTPReadTimeout    = 30 * time.Second
	DefaultHTTPWriteTimeout   = 30 * time.Second
	DefaultHTTPIdleTimeout    = 2 * time.Minute
	DefaultHTTPMaxHeaderBytes = 1 << 20
	DefaultHTTPMaxBodyBytes   = 64 << 20
)

func (o HTTPOptions) withDefaults() HTTPOptions {
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = DefaultHTTPReadTimeout
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = DefaultHTTPWriteTimeout
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = DefaultHTTPIdleTimeout
	}
	if o.MaxHeaderBytes <= 0 {
		o.MaxHeaderBytes = DefaultHTTPMaxHeaderBytes
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = DefaultHTTPMaxBodyBytes
	}
	return o
}

// NewHTTPTransport creates an HTTP transport with default limits.
func NewHTTPTransport() *HTTPTransport {
	return NewHTTPTransportOptions(HTTPOptions{})
}

// NewHTTPTransportOptions creates an HTTP transport with explicit limits.
func NewHTTPTransportOptions(opts HTTPOptions) *HTTPTransport {
	return &HTTPTransport{
		client:    &http.Client{Timeout: 30 * time.Second},
		opts:      opts.withDefaults(),
		servers:   map[string]*httpServer{},
		endpoints: map[string]Handler{},
	}
}

// Scheme implements Transport.
func (t *HTTPTransport) Scheme() string { return "http" }

const headerPrefix = "X-Demaq-"

// Send implements Transport.
func (t *HTTPTransport) Send(dest string, payload []byte, props map[string]string) error {
	req, err := http.NewRequest(http.MethodPost, dest, strings.NewReader(string(payload)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/xml")
	for k, v := range props {
		req.Header.Set(headerPrefix+k, v)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return ErrDisconnected
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("gateway: http endpoint returned %s", resp.Status)
	}
	return nil
}

// Subscribe implements Transport: it lazily starts a listener for the
// address's host:port and routes by path.
func (t *HTTPTransport) Subscribe(addr string, h Handler) (func(), error) {
	hostPort, _, err := splitHTTPAddr(addr)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.endpoints[addr]; dup {
		return nil, fmt.Errorf("gateway: endpoint %s already subscribed", addr)
	}
	if _, ok := t.servers[hostPort]; !ok {
		ln, err := net.Listen("tcp", hostPort)
		if err != nil {
			return nil, err
		}
		srv := &http.Server{
			Handler:        http.HandlerFunc(t.serve),
			ReadTimeout:    t.opts.ReadTimeout,
			WriteTimeout:   t.opts.WriteTimeout,
			IdleTimeout:    t.opts.IdleTimeout,
			MaxHeaderBytes: t.opts.MaxHeaderBytes,
		}
		t.servers[hostPort] = &httpServer{ln: ln, srv: srv}
		go srv.Serve(ln)
	}
	t.endpoints[addr] = h
	return func() {
		t.mu.Lock()
		delete(t.endpoints, addr)
		t.mu.Unlock()
	}, nil
}

// Close shuts down all listeners.
func (t *HTTPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.servers {
		s.srv.Close()
	}
	t.servers = map[string]*httpServer{}
}

// Pooled body buffers are returned to the pool only below this capacity:
// the occasional huge request must not pin its allocation forever.
const maxPooledBody = 1 << 20

// IngestBytesPooled reports how many request-body bytes were read through
// recycled buffers (surfaced as engine Stats.IngestBytesPooled).
func (t *HTTPTransport) IngestBytesPooled() uint64 { return t.pooledBytes.Load() }

// readBody reads r fully into buf (grown as needed), mirroring
// io.ReadAll without the fresh allocation per request.
func readBody(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func (t *HTTPTransport) serve(w http.ResponseWriter, r *http.Request) {
	addr := "http://" + r.Host + r.URL.Path
	t.mu.Lock()
	h, ok := t.endpoints[addr]
	t.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	// Read the body into a pooled buffer. Handlers receive the buffer for
	// the duration of the call only: the engine's streaming ingest copies
	// everything it keeps, so the buffer is recycled as soon as the
	// handler returns.
	bp, _ := t.bodies.Get().(*[]byte)
	if bp == nil {
		b := make([]byte, 0, 64<<10)
		bp = &b
	}
	// Read one byte past the limit so an at-limit body is distinguishable
	// from an oversized one.
	body, err := readBody(io.LimitReader(r.Body, t.opts.MaxBodyBytes+1), (*bp)[:0])
	*bp = body[:0]
	if err != nil {
		t.bodies.Put(bp)
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	if int64(len(body)) > t.opts.MaxBodyBytes {
		t.bodies.Put(bp)
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	props := map[string]string{}
	for k, vs := range r.Header {
		if strings.HasPrefix(k, headerPrefix) && len(vs) > 0 {
			props[k[len(headerPrefix):]] = vs[0]
		}
	}
	// Remote address as the sender when the peer did not identify itself.
	if props["Sender"] == "" {
		props["Sender"] = "http://" + r.RemoteAddr
	}
	herr := h(body, props)
	t.pooledBytes.Add(uint64(len(body)))
	if cap(body) <= maxPooledBody {
		t.bodies.Put(bp)
	}
	if errors.Is(herr, ErrOverloaded) {
		// Backlog full on a healthy node: the client should retry the same
		// request shortly. Checked before ErrUnavailable — overload wraps
		// neither, but the order documents that 429 is the more specific
		// verdict.
		w.Header().Set("Retry-After", "1")
		http.Error(w, herr.Error(), http.StatusTooManyRequests)
		return
	}
	if errors.Is(herr, ErrUnavailable) {
		// Degraded node: shed ingest and tell the sender when to retry.
		w.Header().Set("Retry-After", "5")
		http.Error(w, herr.Error(), http.StatusServiceUnavailable)
		return
	}
	if herr != nil {
		http.Error(w, herr.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

func splitHTTPAddr(addr string) (hostPort, path string, err error) {
	rest, ok := strings.CutPrefix(addr, "http://")
	if !ok {
		return "", "", fmt.Errorf("gateway: not an http address: %s", addr)
	}
	i := strings.Index(rest, "/")
	if i < 0 {
		return rest, "/", nil
	}
	return rest[:i], rest[i:], nil
}
