package gateway

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// HTTPTransport is the real network binding: messages are POSTed as the
// request body with properties in X-Demaq-* headers — the shape of the
// paper's SOAP/HTTP binding without the envelope ceremony. Addresses have
// the form "http://host:port/path". One HTTPTransport can both serve local
// endpoints (it runs one shared listener per host:port it subscribes on)
// and send to remote ones.
type HTTPTransport struct {
	mu        sync.Mutex
	client    *http.Client
	servers   map[string]*httpServer // host:port → server
	endpoints map[string]Handler     // full address → handler
}

type httpServer struct {
	ln  net.Listener
	srv *http.Server
}

// NewHTTPTransport creates an HTTP transport.
func NewHTTPTransport() *HTTPTransport {
	return &HTTPTransport{
		client:    &http.Client{Timeout: 30 * time.Second},
		servers:   map[string]*httpServer{},
		endpoints: map[string]Handler{},
	}
}

// Scheme implements Transport.
func (t *HTTPTransport) Scheme() string { return "http" }

const headerPrefix = "X-Demaq-"

// Send implements Transport.
func (t *HTTPTransport) Send(dest string, payload []byte, props map[string]string) error {
	req, err := http.NewRequest(http.MethodPost, dest, strings.NewReader(string(payload)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/xml")
	for k, v := range props {
		req.Header.Set(headerPrefix+k, v)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return ErrDisconnected
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("gateway: http endpoint returned %s", resp.Status)
	}
	return nil
}

// Subscribe implements Transport: it lazily starts a listener for the
// address's host:port and routes by path.
func (t *HTTPTransport) Subscribe(addr string, h Handler) (func(), error) {
	hostPort, _, err := splitHTTPAddr(addr)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.endpoints[addr]; dup {
		return nil, fmt.Errorf("gateway: endpoint %s already subscribed", addr)
	}
	if _, ok := t.servers[hostPort]; !ok {
		ln, err := net.Listen("tcp", hostPort)
		if err != nil {
			return nil, err
		}
		srv := &http.Server{Handler: http.HandlerFunc(t.serve)}
		t.servers[hostPort] = &httpServer{ln: ln, srv: srv}
		go srv.Serve(ln)
	}
	t.endpoints[addr] = h
	return func() {
		t.mu.Lock()
		delete(t.endpoints, addr)
		t.mu.Unlock()
	}, nil
}

// Close shuts down all listeners.
func (t *HTTPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.servers {
		s.srv.Close()
	}
	t.servers = map[string]*httpServer{}
}

func (t *HTTPTransport) serve(w http.ResponseWriter, r *http.Request) {
	addr := "http://" + r.Host + r.URL.Path
	t.mu.Lock()
	h, ok := t.endpoints[addr]
	t.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	props := map[string]string{}
	for k, vs := range r.Header {
		if strings.HasPrefix(k, headerPrefix) && len(vs) > 0 {
			props[k[len(headerPrefix):]] = vs[0]
		}
	}
	// Remote address as the sender when the peer did not identify itself.
	if props["Sender"] == "" {
		props["Sender"] = "http://" + r.RemoteAddr
	}
	if err := h(body, props); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

func splitHTTPAddr(addr string) (hostPort, path string, err error) {
	rest, ok := strings.CutPrefix(addr, "http://")
	if !ok {
		return "", "", fmt.Errorf("gateway: not an http address: %s", addr)
	}
	i := strings.Index(rest, "/")
	if i < 0 {
		return rest, "/", nil
	}
	return rest[:i], rest[i:], nil
}
