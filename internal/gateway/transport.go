// Package gateway implements the Demaq communication subsystem (paper
// Sec. 2.1.2/4.2): transports that back gateway queues, an at-least-once
// reliable-messaging layer standing in for WS-ReliableMessaging, and an
// HMAC message-integrity policy standing in for WS-Security.
//
// Two transports are provided. The simulated in-process network carries
// traffic between Demaq nodes in one process with configurable latency,
// loss, duplication and disconnected endpoints — the offline substitute
// for the paper's SOAP/HTTP/SMTP stack that makes failure injection
// deterministic (see DESIGN.md). The HTTP transport is a real loopback
// binding with the message payload as the request body and properties as
// X-Demaq-* headers.
package gateway

import (
	"errors"
	"fmt"
	"strings"
)

// Handler consumes an incoming message at an endpoint.
type Handler func(payload []byte, props map[string]string) error

// ErrDisconnected reports a permanently unreachable endpoint; the engine
// converts it into a <disconnectedTransport/> error message (Fig. 10).
var ErrDisconnected = errors.New("gateway: transport endpoint disconnected")

// ErrUnavailable reports that the receiving node cannot accept ingest
// right now — the engine wraps it into the error its degraded read-only
// mode returns, and the HTTP transport maps it to 503 with a Retry-After
// so well-behaved senders back off instead of hammering a dying node.
var ErrUnavailable = errors.New("gateway: service unavailable")

// ErrOverloaded reports that the node is healthy but its ingest backlog is
// at capacity — a transient overload, distinct from the degraded read-only
// ErrUnavailable. The HTTP transport maps it to 429 with a Retry-After:
// the client should retry the same request later, whereas a 503 signals
// the node itself may need operator attention.
var ErrOverloaded = errors.New("gateway: ingest overloaded")

// Transport moves messages between endpoint addresses.
type Transport interface {
	// Scheme returns the address scheme this transport serves ("sim",
	// "http").
	Scheme() string
	// Send delivers payload to dest asynchronously; an error reports
	// immediately-detectable failures (unknown address, disconnect).
	Send(dest string, payload []byte, props map[string]string) error
	// Subscribe registers a receiving endpoint; the returned function
	// unsubscribes.
	Subscribe(addr string, h Handler) (func(), error)
}

// SchemeOf extracts the scheme of an endpoint address.
func SchemeOf(addr string) string {
	if i := strings.Index(addr, "://"); i > 0 {
		return addr[:i]
	}
	return ""
}

// Registry dispatches sends/subscribes across transports by scheme.
type Registry struct {
	transports map[string]Transport
}

// NewRegistry builds a registry from transports.
func NewRegistry(ts ...Transport) *Registry {
	r := &Registry{transports: map[string]Transport{}}
	for _, t := range ts {
		r.transports[t.Scheme()] = t
	}
	return r
}

// Add registers another transport.
func (r *Registry) Add(t Transport) { r.transports[t.Scheme()] = t }

// For returns the transport serving an address.
func (r *Registry) For(addr string) (Transport, error) {
	scheme := SchemeOf(addr)
	t, ok := r.transports[scheme]
	if !ok {
		return nil, fmt.Errorf("gateway: no transport for scheme %q (address %s)", scheme, addr)
	}
	return t, nil
}

// IngestBytesPooled sums the pooled-ingest byte counters of the registered
// transports that report one (currently the HTTP transport, which reads
// request bodies into recycled buffers).
func (r *Registry) IngestBytesPooled() uint64 {
	var n uint64
	for _, t := range r.transports {
		if c, ok := t.(interface{ IngestBytesPooled() uint64 }); ok {
			n += c.IngestBytesPooled()
		}
	}
	return n
}
