package gateway

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// Reliable implements at-least-once delivery with receiver-side
// de-duplication over an unreliable Transport — the stand-in for
// WS-ReliableMessaging (paper Sec. 2.1.2). Each message carries a source
// address and sequence number; the receiver acknowledges over the same
// transport and suppresses replays. Senders retransmit until acknowledged
// or the retry budget is exhausted.
//
// The paper notes that reliable sending across system failures requires
// persistent queues: the engine keeps a sent message unprocessed in its
// persistent outgoing gateway queue until the ack arrives, so retransmission
// state survives crashes by construction.
type Reliable struct {
	tr     Transport
	source string // our ack endpoint address

	mu       sync.Mutex
	nextSeq  uint64
	pending  map[uint64]*pendingSend
	seen     map[string]map[uint64]bool // dedup per remote source
	interval time.Duration
	maxWait  time.Duration
	rng      *rand.Rand // per-sender jitter source (guarded by mu)
	retries  int
	closed   bool
	unsub    func()

	acked, retransmits, duplicates uint64
}

type pendingSend struct {
	dest    string
	payload []byte
	props   map[string]string
	done    func(error)
	tries   int
	timer   *time.Timer
}

// Property keys used by the reliability protocol.
const (
	propSeq    = "demaq-rm-seq"
	propSource = "demaq-rm-source"
	propAck    = "demaq-rm-ack"
)

// NewReliable layers reliability over tr. source is the address this side
// listens on for acknowledgements (and, when used bidirectionally, for
// application messages via Subscribe).
func NewReliable(tr Transport, source string, retryInterval time.Duration, maxRetries int) (*Reliable, error) {
	if retryInterval <= 0 {
		retryInterval = 50 * time.Millisecond
	}
	if maxRetries <= 0 {
		maxRetries = 20
	}
	// Each sender jitters its retransmit schedule independently — after a
	// receiver outage, senders seeded alike would otherwise retransmit in
	// lockstep and slam it in synchronized waves.
	h := fnv.New64a()
	h.Write([]byte(source))
	r := &Reliable{
		tr: tr, source: source,
		pending:  map[uint64]*pendingSend{},
		seen:     map[string]map[uint64]bool{},
		interval: retryInterval,
		maxWait:  16 * retryInterval,
		rng:      rand.New(rand.NewPCG(h.Sum64(), uint64(time.Now().UnixNano()))),
		retries:  maxRetries,
	}
	return r, nil
}

// backoff returns the jittered delay before retransmission number tries:
// capped exponential growth from the base interval, with the second half
// of each step randomized per sender. Called with r.mu held (the rng is
// not concurrency-safe).
func (r *Reliable) backoff(tries int) time.Duration {
	d := r.interval
	for i := 1; i < tries && d < r.maxWait; i++ {
		d *= 2
	}
	if d > r.maxWait {
		d = r.maxWait
	}
	return d/2 + time.Duration(r.rng.Int64N(int64(d/2)+1))
}

// Stats returns (acked sends, retransmissions, duplicate receives).
func (r *Reliable) Stats() (acked, retransmits, duplicates uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acked, r.retransmits, r.duplicates
}

// Close cancels pending retransmissions, failing their completions so no
// caller blocks on a send that will never be acknowledged.
func (r *Reliable) Close() {
	r.mu.Lock()
	r.closed = true
	pending := r.pending
	r.pending = map[uint64]*pendingSend{}
	for _, p := range pending {
		if p.timer != nil {
			p.timer.Stop()
		}
	}
	if r.unsub != nil {
		r.unsub()
		r.unsub = nil
	}
	r.mu.Unlock()
	for _, p := range pending {
		p.done(fmt.Errorf("gateway: reliable layer closed"))
	}
}

// SendAsync transmits payload to dest; done is called exactly once with nil
// after the acknowledgement arrives, or with an error when the retry budget
// is exhausted or the endpoint is disconnected.
func (r *Reliable) SendAsync(dest string, payload []byte, props map[string]string, done func(error)) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		done(fmt.Errorf("gateway: reliable layer closed"))
		return
	}
	r.nextSeq++
	seq := r.nextSeq
	pr := make(map[string]string, len(props)+2)
	for k, v := range props {
		pr[k] = v
	}
	pr[propSeq] = strconv.FormatUint(seq, 10)
	pr[propSource] = r.source
	ps := &pendingSend{dest: dest, payload: payload, props: pr, done: done}
	r.pending[seq] = ps
	r.mu.Unlock()
	r.transmit(seq, ps)
}

func (r *Reliable) transmit(seq uint64, ps *pendingSend) {
	// Check cancellation before touching the transport: once Close has
	// failed the completion, nothing may reach the wire on its behalf.
	r.mu.Lock()
	if _, stillPending := r.pending[seq]; !stillPending || r.closed {
		r.mu.Unlock()
		return
	}
	ps.tries++
	tries := ps.tries
	r.mu.Unlock()

	err := r.tr.Send(ps.dest, ps.payload, ps.props)
	if err == ErrDisconnected {
		// Immediate, permanent failure: report without retrying; the
		// application handles it (deadLink rule in Fig. 10).
		r.finish(seq, err)
		return
	}
	r.mu.Lock()
	if _, stillPending := r.pending[seq]; !stillPending || r.closed {
		r.mu.Unlock()
		return
	}
	if tries > r.retries {
		r.mu.Unlock()
		r.finish(seq, fmt.Errorf("gateway: no acknowledgement after %d attempts", tries-1))
		return
	}
	ps.timer = time.AfterFunc(r.backoff(tries), func() {
		r.mu.Lock()
		_, stillPending := r.pending[seq]
		if stillPending && !r.closed {
			r.retransmits++
		} else {
			stillPending = false
		}
		r.mu.Unlock()
		if stillPending {
			r.transmit(seq, ps)
		}
	})
	r.mu.Unlock()
}

func (r *Reliable) finish(seq uint64, err error) {
	r.mu.Lock()
	ps, ok := r.pending[seq]
	if ok {
		delete(r.pending, seq)
		if ps.timer != nil {
			ps.timer.Stop()
		}
		if err == nil {
			r.acked++
		}
	}
	r.mu.Unlock()
	if ok {
		ps.done(err)
	}
}

// Subscribe registers the receiving side: application messages are
// de-duplicated, acknowledged, and handed to h; acknowledgements complete
// pending sends.
func (r *Reliable) Subscribe(h Handler) error {
	unsub, err := r.tr.Subscribe(r.source, func(payload []byte, props map[string]string) error {
		if ackStr, isAck := props[propAck]; isAck {
			seq, err := strconv.ParseUint(ackStr, 10, 64)
			if err == nil {
				r.finish(seq, nil)
			}
			return nil
		}
		seqStr, hasSeq := props[propSeq]
		source := props[propSource]
		if !hasSeq || source == "" {
			// Not a reliable-protocol message; deliver as-is.
			return h(payload, props)
		}
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			return fmt.Errorf("gateway: bad sequence number %q", seqStr)
		}
		r.mu.Lock()
		seen := r.seen[source]
		if seen == nil {
			seen = map[uint64]bool{}
			r.seen[source] = seen
		}
		dup := seen[seq]
		if dup {
			r.duplicates++
		}
		r.mu.Unlock()
		if dup {
			// Re-acknowledge: the previous ack may have been lost.
			_ = r.tr.Send(source, nil, map[string]string{propAck: seqStr})
			return nil
		}
		if err := h(payload, props); err != nil {
			// No ack: the sender retransmits and the message is retried.
			return err
		}
		r.mu.Lock()
		seen[seq] = true
		r.mu.Unlock()
		_ = r.tr.Send(source, nil, map[string]string{propAck: seqStr})
		return nil
	})
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.unsub = unsub
	r.mu.Unlock()
	return nil
}
