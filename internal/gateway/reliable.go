package gateway

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// Reliable implements at-least-once delivery with receiver-side
// de-duplication over an unreliable Transport — the stand-in for
// WS-ReliableMessaging (paper Sec. 2.1.2). Each message carries a source
// address and sequence number; the receiver acknowledges over the same
// transport and suppresses replays. Senders retransmit until acknowledged
// or the retry budget is exhausted.
//
// The paper notes that reliable sending across system failures requires
// persistent queues: the engine keeps a sent message unprocessed in its
// persistent outgoing gateway queue until the ack arrives, so retransmission
// state survives crashes by construction. The de-duplication and sequencing
// state needs the same treatment — a SessionStore persists the receive
// high-water/window atomically with the enqueue each transfer triggers, and
// the sender's next sequence number in durable reservation blocks — so a
// whole-node crash-restart neither re-admits retransmitted duplicates nor
// reissues sequence numbers from zero.
type Reliable struct {
	tr      Transport
	source  string       // our ack endpoint address
	session SessionStore // nil: in-memory only (single-process lifetime)

	mu       sync.Mutex
	nextSeq  uint64
	pending  map[uint64]*pendingSend
	recv     map[string]*recvState // dedup per remote source
	interval time.Duration
	maxWait  time.Duration
	rng      *rand.Rand // per-sender jitter source (guarded by mu)
	retries  int
	closed   bool
	unsub    func()

	// resMu serializes durable send-block reservations so concurrent
	// senders do not interleave reservation writes out of order.
	resMu    sync.Mutex
	reserved uint64 // exclusive upper bound of the durable seq block

	acked, retransmits, duplicates uint64
}

type pendingSend struct {
	dest    string
	payload []byte
	props   map[string]string
	done    func(error)
	tries   int
	timer   *time.Timer
}

// recvWindowWords sizes the per-peer dedup bitmap: 16 words = 1024 sequence
// numbers below the high-water mark. Bit i (word i/64, bit i%64) is set iff
// sequence high-i was admitted; anything older than the window is treated
// as an already-acknowledged duplicate. The window is the whole per-peer
// state — memory stays flat no matter how many transfers a peer sends.
const recvWindowWords = 16

type recvState struct {
	mu     sync.Mutex
	high   uint64
	window [recvWindowWords]uint64

	// pending holds the post-admit snapshot between the dedup check and the
	// handler's return, so the handler can persist it in the transaction
	// that makes the transfer durable (PendingRecvSession). Written and
	// cleared under mu; the handler runs on the goroutine holding mu.
	pending *RecvSession
}

// RecvSession is the externally visible receive-session snapshot: the
// dedup state for one remote peer at one local endpoint.
type RecvSession struct {
	Peer   string
	High   uint64
	Window []uint64
}

// SessionStore persists reliable-session state across restarts. Implemented
// by the engine over the message store; nil keeps the pre-existing
// in-memory behavior.
type SessionStore interface {
	// SendNext returns the durable next sequence number of a local source
	// (0 when the source has never reserved).
	SendNext(source string) uint64
	// ReserveSend durably raises the source's reserved next-seq upper
	// bound (exclusive). It must not return until the reservation is
	// durable: a restarted sender resumes from the bound, so sequence
	// numbers below it must never be issued again.
	ReserveSend(source string, upTo uint64) error
	// RecvSessions returns the persisted receive sessions of a local
	// endpoint, one per remote peer.
	RecvSessions(endpoint string) []RecvSession
}

// sendReserveBlock is how many sequence numbers one durable reservation
// covers; a crash wastes at most one block (sequence gaps are harmless, the
// receive window is gap-tolerant).
const sendReserveBlock = 64

// Property keys used by the reliability protocol.
const (
	propSeq    = "demaq-rm-seq"
	propSource = "demaq-rm-source"
	propAck    = "demaq-rm-ack"
)

// ReliableOptions configure a reliable endpoint beyond the retry schedule.
type ReliableOptions struct {
	RetryInterval time.Duration
	MaxRetries    int
	Session       SessionStore
}

// NewReliable layers reliability over tr. source is the address this side
// listens on for acknowledgements (and, when used bidirectionally, for
// application messages via Subscribe).
func NewReliable(tr Transport, source string, retryInterval time.Duration, maxRetries int) (*Reliable, error) {
	return NewReliableOptions(tr, source, ReliableOptions{RetryInterval: retryInterval, MaxRetries: maxRetries})
}

// NewReliableOptions is NewReliable with a full option set. When a
// SessionStore is given, the sender's sequence counter and the per-peer
// receive windows are restored from it, so the endpoint resumes its
// sessions instead of starting new ones.
func NewReliableOptions(tr Transport, source string, opts ReliableOptions) (*Reliable, error) {
	if opts.RetryInterval <= 0 {
		opts.RetryInterval = 50 * time.Millisecond
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 20
	}
	// Each sender jitters its retransmit schedule independently — after a
	// receiver outage, senders seeded alike would otherwise retransmit in
	// lockstep and slam it in synchronized waves.
	h := fnv.New64a()
	h.Write([]byte(source))
	r := &Reliable{
		tr: tr, source: source,
		session:  opts.Session,
		pending:  map[uint64]*pendingSend{},
		recv:     map[string]*recvState{},
		interval: opts.RetryInterval,
		maxWait:  16 * opts.RetryInterval,
		rng:      rand.New(rand.NewPCG(h.Sum64(), uint64(time.Now().UnixNano()))),
		retries:  opts.MaxRetries,
	}
	if r.session != nil {
		if next := r.session.SendNext(source); next > 0 {
			r.nextSeq = next - 1
			r.reserved = next
		}
		for _, s := range r.session.RecvSessions(source) {
			rs := &recvState{high: s.High}
			// Persisted windows elide their all-ones tail (fully-admitted old
			// region), so absent words restore as all-ones: claiming "admitted"
			// for an old sequence re-acks a duplicate, while claiming "fresh"
			// would re-admit it.
			for i := 0; i < recvWindowWords; i++ {
				if i < len(s.Window) {
					rs.window[i] = s.Window[i]
				} else {
					rs.window[i] = ^uint64(0)
				}
			}
			r.recv[s.Peer] = rs
		}
	}
	return r, nil
}

// backoff returns the jittered delay before retransmission number tries:
// capped exponential growth from the base interval, with the second half
// of each step randomized per sender. Called with r.mu held (the rng is
// not concurrency-safe).
func (r *Reliable) backoff(tries int) time.Duration {
	d := r.interval
	for i := 1; i < tries && d < r.maxWait; i++ {
		d *= 2
	}
	if d > r.maxWait {
		d = r.maxWait
	}
	return d/2 + time.Duration(r.rng.Int64N(int64(d/2)+1))
}

// Stats returns (acked sends, retransmissions, duplicate receives).
func (r *Reliable) Stats() (acked, retransmits, duplicates uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acked, r.retransmits, r.duplicates
}

// Close cancels pending retransmissions, failing their completions so no
// caller blocks on a send that will never be acknowledged.
func (r *Reliable) Close() {
	r.mu.Lock()
	r.closed = true
	pending := r.pending
	r.pending = map[uint64]*pendingSend{}
	for _, p := range pending {
		if p.timer != nil {
			p.timer.Stop()
		}
	}
	if r.unsub != nil {
		r.unsub()
		r.unsub = nil
	}
	r.mu.Unlock()
	for _, p := range pending {
		p.done(fmt.Errorf("gateway: reliable layer closed"))
	}
}

// SendAsync transmits payload to dest; done is called exactly once with nil
// after the acknowledgement arrives, or with an error when the retry budget
// is exhausted or the endpoint is disconnected. Sequence numbers are drawn
// from the session counter; with a SessionStore, the number is covered by a
// durable reservation before it reaches the wire.
func (r *Reliable) SendAsync(dest string, payload []byte, props map[string]string, done func(error)) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		done(fmt.Errorf("gateway: reliable layer closed"))
		return
	}
	r.nextSeq++
	seq := r.nextSeq
	r.mu.Unlock()
	if r.session != nil {
		if err := r.reserve(seq); err != nil {
			done(fmt.Errorf("gateway: sequence reservation: %w", err))
			return
		}
	}
	r.sendSeq(dest, seq, payload, props, done)
}

// SendAsyncSeq is SendAsync with a caller-chosen sequence number. The
// engine's outgoing gateways use the durable message ID: a retransmit after
// a crash-restart then reuses the exact sequence number of the pre-crash
// attempt, and the receiver's window recognizes it — the one duplicate a
// restored send counter alone cannot suppress. Caller-chosen and automatic
// sequence numbers must not be mixed on one endpoint.
func (r *Reliable) SendAsyncSeq(dest string, seq uint64, payload []byte, props map[string]string, done func(error)) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		done(fmt.Errorf("gateway: reliable layer closed"))
		return
	}
	if seq > r.nextSeq {
		r.nextSeq = seq
	}
	r.mu.Unlock()
	r.sendSeq(dest, seq, payload, props, done)
}

// reserve extends the durable send block to cover seq. Serialized so
// concurrent senders extend the bound monotonically.
func (r *Reliable) reserve(seq uint64) error {
	r.resMu.Lock()
	defer r.resMu.Unlock()
	if seq < r.reserved {
		return nil
	}
	upTo := seq + sendReserveBlock
	if err := r.session.ReserveSend(r.source, upTo); err != nil {
		return err
	}
	r.reserved = upTo
	return nil
}

func (r *Reliable) sendSeq(dest string, seq uint64, payload []byte, props map[string]string, done func(error)) {
	pr := make(map[string]string, len(props)+2)
	for k, v := range props {
		pr[k] = v
	}
	pr[propSeq] = strconv.FormatUint(seq, 10)
	pr[propSource] = r.source
	ps := &pendingSend{dest: dest, payload: payload, props: pr, done: done}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		done(fmt.Errorf("gateway: reliable layer closed"))
		return
	}
	r.pending[seq] = ps
	r.mu.Unlock()
	r.transmit(seq, ps)
}

func (r *Reliable) transmit(seq uint64, ps *pendingSend) {
	// Check cancellation before touching the transport: once Close has
	// failed the completion, nothing may reach the wire on its behalf.
	r.mu.Lock()
	if _, stillPending := r.pending[seq]; !stillPending || r.closed {
		r.mu.Unlock()
		return
	}
	ps.tries++
	tries := ps.tries
	r.mu.Unlock()

	err := r.tr.Send(ps.dest, ps.payload, ps.props)
	if err == ErrDisconnected {
		// Immediate, permanent failure: report without retrying; the
		// application handles it (deadLink rule in Fig. 10).
		r.finish(seq, err)
		return
	}
	r.mu.Lock()
	if _, stillPending := r.pending[seq]; !stillPending || r.closed {
		r.mu.Unlock()
		return
	}
	if tries > r.retries {
		r.mu.Unlock()
		r.finish(seq, fmt.Errorf("gateway: no acknowledgement after %d attempts", tries-1))
		return
	}
	ps.timer = time.AfterFunc(r.backoff(tries), func() {
		r.mu.Lock()
		_, stillPending := r.pending[seq]
		if stillPending && !r.closed {
			r.retransmits++
		} else {
			stillPending = false
		}
		r.mu.Unlock()
		if stillPending {
			r.transmit(seq, ps)
		}
	})
	r.mu.Unlock()
}

func (r *Reliable) finish(seq uint64, err error) {
	r.mu.Lock()
	ps, ok := r.pending[seq]
	if ok {
		delete(r.pending, seq)
		if ps.timer != nil {
			ps.timer.Stop()
		}
		if err == nil {
			r.acked++
		}
	}
	r.mu.Unlock()
	if ok {
		ps.done(err)
	}
}

// recvStateFor returns (creating if needed) the dedup state of one peer.
func (r *Reliable) recvStateFor(peer string) *recvState {
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := r.recv[peer]
	if rs == nil {
		rs = &recvState{}
		r.recv[peer] = rs
	}
	return rs
}

// isDup reports whether seq was already admitted (or is older than the
// window, which is treated the same: the ack was sent long ago). Called
// with rs.mu held.
func (rs *recvState) isDup(seq uint64) bool {
	if seq > rs.high {
		return false
	}
	d := rs.high - seq
	if d >= recvWindowWords*64 {
		return true
	}
	return rs.window[d/64]&(1<<(d%64)) != 0
}

// admitted returns the window state after admitting seq. Called with rs.mu
// held; does not mutate rs (the caller commits after the handler succeeds).
func (rs *recvState) admitted(seq uint64) (uint64, [recvWindowWords]uint64) {
	high, w := rs.high, rs.window
	if seq > high {
		d := seq - high
		if d >= recvWindowWords*64 {
			w = [recvWindowWords]uint64{}
		} else {
			shift := int(d / 64)
			bits := uint(d % 64)
			for i := recvWindowWords - 1; i >= 0; i-- {
				var v uint64
				if i >= shift {
					v = w[i-shift] << bits
					if bits > 0 && i-shift-1 >= 0 {
						v |= w[i-shift-1] >> (64 - bits)
					}
				}
				w[i] = v
			}
		}
		high = seq
		w[0] |= 1
	} else {
		d := high - seq
		w[d/64] |= 1 << (d % 64)
	}
	return high, w
}

// PendingRecvSession returns the receive-session snapshot that admitting
// the transfer currently in the handler will produce. Valid only while the
// Subscribe handler for that transfer is running (the handler's goroutine
// holds the per-peer admit lock); the handler persists the snapshot in the
// same transaction as the transfer's effects, making "message durable" and
// "retransmit suppressed" one atomic fact.
func (r *Reliable) PendingRecvSession(props map[string]string) (RecvSession, bool) {
	peer := props[propSource]
	if peer == "" {
		return RecvSession{}, false
	}
	r.mu.Lock()
	rs := r.recv[peer]
	r.mu.Unlock()
	if rs == nil || rs.pending == nil {
		return RecvSession{}, false
	}
	return *rs.pending, true
}

// Subscribe registers the receiving side: application messages are
// de-duplicated, acknowledged, and handed to h; acknowledgements complete
// pending sends. The dedup check, the handler, and the window update run
// under the per-peer admit lock, so two concurrent deliveries of the same
// retransmitted transfer cannot both pass the check.
func (r *Reliable) Subscribe(h Handler) error {
	unsub, err := r.tr.Subscribe(r.source, func(payload []byte, props map[string]string) error {
		if ackStr, isAck := props[propAck]; isAck {
			seq, err := strconv.ParseUint(ackStr, 10, 64)
			if err == nil {
				r.finish(seq, nil)
			}
			return nil
		}
		seqStr, hasSeq := props[propSeq]
		source := props[propSource]
		if !hasSeq || source == "" {
			// Not a reliable-protocol message; deliver as-is.
			return h(payload, props)
		}
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			return fmt.Errorf("gateway: bad sequence number %q", seqStr)
		}
		rs := r.recvStateFor(source)
		rs.mu.Lock()
		if rs.isDup(seq) {
			rs.mu.Unlock()
			r.mu.Lock()
			r.duplicates++
			r.mu.Unlock()
			// Re-acknowledge: the previous ack may have been lost.
			_ = r.tr.Send(source, nil, map[string]string{propAck: seqStr})
			return nil
		}
		high, w := rs.admitted(seq)
		rs.pending = &RecvSession{Peer: source, High: high, Window: w[:]}
		err = h(payload, props)
		rs.pending = nil
		if err != nil {
			rs.mu.Unlock()
			// No ack: the sender retransmits and the message is retried.
			return err
		}
		rs.high, rs.window = high, w
		rs.mu.Unlock()
		_ = r.tr.Send(source, nil, map[string]string{propAck: seqStr})
		return nil
	})
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.unsub = unsub
	r.mu.Unlock()
	return nil
}
