package gateway

import (
	"fmt"
	"sync"
	"testing"
)

// run pushes n sends through a FaultNet with one subscribed endpoint and
// returns (trace, delivered payload strings).
func runFaultNet(t *testing.T, fn *FaultNet, n int) ([]NetOp, []string) {
	t.Helper()
	var mu sync.Mutex
	var got []string
	unsub, err := fn.Subscribe("fnet://b/in", func(p []byte, _ map[string]string) error {
		mu.Lock()
		got = append(got, string(p))
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	for i := 0; i < n; i++ {
		if err := fn.Send("fnet://b/in", []byte(fmt.Sprintf("m%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	return fn.Trace(), got
}

// TestFaultNetDeterministic: identical seed + identical op schedule =>
// identical fates and identical delivered sequence, op for op.
func TestFaultNetDeterministic(t *testing.T) {
	var traces [][]NetOp
	var deliveries [][]string
	for run := 0; run < 2; run++ {
		fn := NewFaultNet(7)
		fn.SetDropRate(0.2)
		fn.SetDupRate(0.1)
		fn.SetReorderRate(0.1)
		tr, got := runFaultNet(t, fn, 200)
		traces = append(traces, tr)
		deliveries = append(deliveries, got)
	}
	if len(traces[0]) != len(traces[1]) {
		t.Fatalf("trace lengths differ: %d vs %d", len(traces[0]), len(traces[1]))
	}
	for i := range traces[0] {
		if traces[0][i] != traces[1][i] {
			t.Fatalf("op %d differs: %v vs %v", i, traces[0][i], traces[1][i])
		}
	}
	if len(deliveries[0]) != len(deliveries[1]) {
		t.Fatalf("delivery counts differ: %d vs %d", len(deliveries[0]), len(deliveries[1]))
	}
	for i := range deliveries[0] {
		if deliveries[0][i] != deliveries[1][i] {
			t.Fatalf("delivery %d differs: %q vs %q", i, deliveries[0][i], deliveries[1][i])
		}
	}
	// The schedule must actually exercise every fate.
	fates := map[string]int{}
	for _, op := range traces[0] {
		fates[op.Fate]++
	}
	for _, f := range []string{"deliver", "drop", "dup", "hold"} {
		if fates[f] == 0 {
			t.Fatalf("fate %q never occurred in %v", f, fates)
		}
	}
}

// TestFaultNetFates: targeted single-op drop, duplication delivering twice,
// and a held transfer arriving after the send that follows it.
func TestFaultNetFates(t *testing.T) {
	fn := NewFaultNet(1)
	var got []string
	unsub, _ := fn.Subscribe("fnet://b/in", func(p []byte, _ map[string]string) error {
		got = append(got, string(p))
		return nil
	})
	defer unsub()

	fn.DropAt(2)
	fn.Send("fnet://b/in", []byte("a"), nil)
	fn.Send("fnet://b/in", []byte("lost"), nil)
	fn.Send("fnet://b/in", []byte("b"), nil)
	want := []string{"a", "b"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("after targeted drop: %v, want %v", got, want)
	}

	// Force a hold, then a normal send: held transfer arrives second.
	got = nil
	fn.SetReorderRate(1)
	fn.Send("fnet://b/in", []byte("first"), nil)
	fn.SetReorderRate(0)
	fn.Send("fnet://b/in", []byte("second"), nil)
	if len(got) != 2 || got[0] != "second" || got[1] != "first" {
		t.Fatalf("reorder: %v, want [second first]", got)
	}
}

// TestFaultNetVoidAndPartition: unsubscribed endpoints and partitioned
// destinations swallow transfers silently — the sender sees success and
// must rely on its own retransmission, exactly like a rebooting peer.
func TestFaultNetVoidAndPartition(t *testing.T) {
	fn := NewFaultNet(1)
	if err := fn.Send("fnet://nobody/in", []byte("x"), nil); err != nil {
		t.Fatalf("send to unsubscribed endpoint: %v, want silent drop", err)
	}

	delivered := 0
	unsub, _ := fn.Subscribe("fnet://b/in", func([]byte, map[string]string) error {
		delivered++
		return nil
	})
	defer unsub()
	fn.Partition("fnet://b")
	if err := fn.Send("fnet://b/in", []byte("x"), nil); err != nil {
		t.Fatalf("send into partition: %v, want silent drop", err)
	}
	if delivered != 0 {
		t.Fatal("transfer crossed the partition")
	}
	fn.HealPartition("fnet://b")
	fn.Send("fnet://b/in", []byte("x"), nil)
	if delivered != 1 {
		t.Fatalf("delivered %d after heal, want 1", delivered)
	}

	tr := fn.Trace()
	if tr[0].Fate != "void" || tr[1].Fate != "partitioned" || tr[2].Fate != "deliver" {
		t.Fatalf("fates %v %v %v, want void/partitioned/deliver", tr[0].Fate, tr[1].Fate, tr[2].Fate)
	}

	// Down endpoints keep the fail-fast contract.
	fn.SetDown("fnet://b/in", true)
	if err := fn.Send("fnet://b/in", nil, nil); err != ErrDisconnected {
		t.Fatalf("send to down endpoint: %v, want ErrDisconnected", err)
	}
}

// TestFaultNetOpHook: the hook sees every op with its final fate, in order,
// and can observe the op counter the torture harness arms crash sites on.
func TestFaultNetOpHook(t *testing.T) {
	fn := NewFaultNet(1)
	unsub, _ := fn.Subscribe("fnet://b/in", func([]byte, map[string]string) error { return nil })
	defer unsub()
	var ns []int
	fn.SetOpHook(func(op NetOp) { ns = append(ns, op.N) })
	for i := 0; i < 5; i++ {
		fn.Send("fnet://b/in", []byte("x"), nil)
	}
	if len(ns) != 5 {
		t.Fatalf("hook fired %d times, want 5", len(ns))
	}
	for i, n := range ns {
		if n != i+1 {
			t.Fatalf("hook op numbers %v not sequential", ns)
		}
	}
	if fn.Ops() != 5 {
		t.Fatalf("Ops() = %d, want 5", fn.Ops())
	}
}
