package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"demaq/internal/msgstore"
	"demaq/internal/qdl"
	"demaq/internal/xmldom"
)

// --- scheduler batch claiming ---

func TestSchedulerClaimBatchHalfOfBacklog(t *testing.T) {
	s := newScheduler()
	s.DeclareQueue("q", 0)
	for i := 1; i <= 8; i++ {
		s.Add("q", msgstore.MsgID(i))
	}
	// A claim takes at most half the backlog (rounded up): 8 → 4 → 2 → 1 → 1.
	want := [][]msgstore.MsgID{{1, 2, 3, 4}, {5, 6}, {7}, {8}}
	for _, ids := range want {
		queue, prio, got, ok := s.ClaimBatch(32, nil)
		if !ok || queue != "q" || prio != 0 {
			t.Fatalf("claim = (%s,%d,%v)", queue, prio, ok)
		}
		if len(got) != len(ids) {
			t.Fatalf("batch %v, want %v", got, ids)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("batch %v, want %v", got, ids)
			}
		}
		s.DoneN(len(got))
	}
	if !s.Idle() {
		t.Fatal("should be idle")
	}
}

func TestSchedulerClaimBatchRespectsMax(t *testing.T) {
	s := newScheduler()
	s.DeclareQueue("q", 0)
	for i := 1; i <= 100; i++ {
		s.Add("q", msgstore.MsgID(i))
	}
	_, _, ids, _ := s.ClaimBatch(16, nil)
	if len(ids) != 16 {
		t.Fatalf("claimed %d, want 16", len(ids))
	}
	if s.Backlog() != 84 {
		t.Fatalf("backlog %d", s.Backlog())
	}
	s.DoneN(len(ids))
}

func TestSchedulerClaimBatchSingleQueueAndPriority(t *testing.T) {
	s := newScheduler()
	s.DeclareQueue("low", 1)
	s.DeclareQueue("high", 10)
	s.Add("low", 1)
	s.Add("low", 2)
	s.Add("high", 3)
	s.Add("high", 4)
	queue, prio, ids, _ := s.ClaimBatch(32, nil)
	if queue != "high" || prio != 10 || len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("first batch (%s,%d,%v)", queue, prio, ids)
	}
	s.DoneN(1)
	queue, _, ids, _ = s.ClaimBatch(32, nil)
	if queue != "high" || len(ids) != 1 || ids[0] != 4 {
		t.Fatalf("second batch (%s,%v)", queue, ids)
	}
	s.DoneN(1)
	queue, _, ids, _ = s.ClaimBatch(32, nil)
	if queue != "low" || len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("third batch (%s,%v)", queue, ids)
	}
	s.DoneN(1)
}

func TestSchedulerRequeueFrontPreservesOrder(t *testing.T) {
	s := newScheduler()
	s.DeclareQueue("q", 0)
	for i := 1; i <= 8; i++ {
		s.Add("q", msgstore.MsgID(i))
	}
	_, _, ids, _ := s.ClaimBatch(32, nil) // {1,2,3,4}
	// Preempted after one message: give back the suffix in order.
	s.RequeueFront("q", ids[1:])
	s.DoneN(1)
	_, _, ids, _ = s.ClaimBatch(32, nil)
	// Backlog is {2,3,4,5,6,7,8}: half of 7 is 4.
	want := []msgstore.MsgID{2, 3, 4, 5}
	if len(ids) != len(want) {
		t.Fatalf("batch %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("batch %v, want %v", ids, want)
		}
	}
	s.DoneN(len(ids))
}

func TestSchedulerPreemptFor(t *testing.T) {
	s := newScheduler()
	s.DeclareQueue("low", 1)
	s.DeclareQueue("high", 10)
	s.Add("low", 1)
	if s.PreemptFor(1) {
		t.Fatal("own priority level must not preempt")
	}
	_, _, ids, _ := s.ClaimBatch(32, nil)
	if s.PreemptFor(1) {
		t.Fatal("empty scheduler must not preempt")
	}
	s.Add("high", 2)
	if !s.PreemptFor(1) {
		t.Fatal("higher-priority arrival must preempt a low batch")
	}
	if s.PreemptFor(10) {
		t.Fatal("equal priority must not preempt")
	}
	s.DoneN(len(ids))
}

// --- batch/single differential: identical final state ---

// pipelineDiffApp is the E7 pipeline plus an error-injecting rule: orders
// carrying <poison/> fail rule evaluation and must land in the error queue
// with no pipeline output, identically at every batch size.
const pipelineDiffApp = `
	create queue inbox kind basic mode persistent;
	create queue stage1 kind basic mode persistent;
	create queue stage2 kind basic mode persistent;
	create queue outbox kind basic mode persistent;
	create queue errs kind basic mode persistent;
	create rule s0 for inbox if (//order) then
	  do enqueue <checked>{//order/id}</checked> into stage1;
	create rule poison for inbox errorqueue errs
	  if (//order/poison) then do enqueue <x>{1 idiv 0}</x> into outbox;
	create rule s1 for stage1 if (//checked) then
	  do enqueue <priced>{//checked/id}</priced> into stage2;
	create rule s2 for stage2 if (//priced) then
	  do enqueue <done>{//priced/id}</done> into outbox;
`

// queueFingerprint summarizes a queue's final state order-insensitively:
// the sorted multiset of (document, processed flag, properties minus
// wall-clock timestamps). Message IDs and enqueue times differ between
// runs by construction and are excluded.
func queueFingerprint(t *testing.T, e *Engine, queue string) []string {
	t.Helper()
	msgs, err := e.MessageStore().Messages(queue)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(msgs))
	for _, m := range msgs {
		doc, err := e.MessageStore().Doc(m.ID)
		if err != nil {
			t.Fatal(err)
		}
		var props []string
		for k, v := range m.Props {
			if k == "demaq:created" {
				continue
			}
			props = append(props, k+"="+v.StringValue())
		}
		sort.Strings(props)
		out = append(out, fmt.Sprintf("processed=%v props=[%s] doc=%s",
			m.Processed, strings.Join(props, ","), xmldom.Serialize(doc)))
	}
	sort.Strings(out)
	return out
}

func runPipelineDiff(t *testing.T, batchSize, n int) (map[string][]string, Stats) {
	t.Helper()
	app := qdl.MustParse(pipelineDiffApp)
	cfg := Config{Dir: t.TempDir(), Workers: 8, BatchSize: batchSize}
	cfg.Store = msgstore.DefaultOptions()
	cfg.Store.Store.SyncCommits = false
	e, err := New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	e.Start()
	for i := 0; i < n; i++ {
		doc := fmt.Sprintf(`<order><id>%d</id></order>`, i)
		if i%6 == 5 {
			doc = fmt.Sprintf(`<order><id>%d</id><poison/></order>`, i)
		}
		if _, err := e.EnqueueXML("inbox", doc, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Drain(60 * time.Second) {
		t.Fatal("drain")
	}
	state := map[string][]string{}
	for _, q := range e.MessageStore().QueueNames() {
		state[q] = queueFingerprint(t, e, q)
	}
	return state, e.Stats()
}

// TestBatchSingleDifferential runs the same workload tuple-at-a-time
// (BatchSize 1) and set-oriented (BatchSize 32) and asserts identical
// final store state, error-queue contents and processed counts. Runs
// under -race in CI.
func TestBatchSingleDifferential(t *testing.T) {
	const n = 240
	single, singleStats := runPipelineDiff(t, 1, n)
	batch, batchStats := runPipelineDiff(t, 32, n)

	if len(single) != len(batch) {
		t.Fatalf("queue sets differ: %d vs %d", len(single), len(batch))
	}
	for q, want := range single {
		got, ok := batch[q]
		if !ok {
			t.Fatalf("queue %q missing in batch run", q)
		}
		if len(got) != len(want) {
			t.Fatalf("queue %q: %d messages batched vs %d single", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("queue %q message %d differs:\n  single: %s\n  batch:  %s", q, i, want[i], got[i])
			}
		}
	}
	if singleStats.Processed != batchStats.Processed {
		t.Errorf("processed: single %d, batch %d", singleStats.Processed, batchStats.Processed)
	}
	if singleStats.Errors != batchStats.Errors {
		t.Errorf("errors: single %d, batch %d", singleStats.Errors, batchStats.Errors)
	}
	if singleStats.Enqueued != batchStats.Enqueued {
		t.Errorf("enqueued: single %d, batch %d", singleStats.Enqueued, batchStats.Enqueued)
	}
	if want := uint64(n / 6); singleStats.Errors != want {
		t.Errorf("poison errors: %d, want %d", singleStats.Errors, want)
	}
	if batchStats.BatchesClaimed == 0 || batchStats.AvgBatchSize <= 1 {
		t.Errorf("batch run did not batch: %d claims, avg %.2f",
			batchStats.BatchesClaimed, batchStats.AvgBatchSize)
	}
}

// TestBatchSharedStateEquivalence replays the slice-join pattern — the
// worst case for set-oriented execution, where a rule's firing depends on
// updates of neighboring messages — across batch sizes: exactly one join
// output per key, however the inputs are grouped into batches.
func TestBatchSharedStateEquivalence(t *testing.T) {
	const app = `
		create queue in kind basic mode persistent;
		create queue joined kind basic mode persistent;
		create property key as xs:string fixed queue in value //key;
		create slicing byKey on key;
		create rule join for byKey
		  if (count(qs:slice()[/part]) >= 3) then
		    do enqueue <both><key>{qs:slicekey()}</key></both> into joined;
		create rule cleanup for byKey
		  if (count(qs:slice()[/part]) >= 3) then do reset;
	`
	for _, batch := range []int{1, 32} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			e := newEngine(t, app, func(c *Config) {
				c.Workers = 8
				c.BatchSize = batch
				c.Store = msgstore.DefaultOptions()
				c.Store.Store.SyncCommits = false
			})
			const keys, parts = 20, 3
			for p := 0; p < parts; p++ {
				for k := 0; k < keys; k++ {
					if _, err := e.EnqueueXML("in",
						fmt.Sprintf(`<part><key>k%d</key><n>%d</n></part>`, k, p), nil); err != nil {
						t.Fatal(err)
					}
				}
			}
			drain(t, e)
			joined, _ := e.MessageStore().Messages("joined")
			if len(joined) != keys {
				t.Fatalf("joined %d messages, want exactly %d (duplicate or missed joins)", len(joined), keys)
			}
		})
	}
}

// TestDeadlockExhaustionRequeues drives a workload whose transactions
// deadlock by construction (coarse queue locks plus symmetric cross-queue
// reads) with a minimal retry budget. Exhausting the budget must requeue
// the victim — counted in DeadlockRequeues — never route it to an error
// queue, and every message must still be processed exactly once.
func TestDeadlockExhaustionRequeues(t *testing.T) {
	e := newEngine(t, `
		create queue a kind basic mode persistent;
		create queue b kind basic mode persistent;
		create queue outA kind basic mode persistent;
		create queue outB kind basic mode persistent;
		create rule ra for a if (count(qs:queue("b")) >= 0) then do enqueue <x/> into outA;
		create rule rb for b if (count(qs:queue("a")) >= 0) then do enqueue <y/> into outB;
	`, func(c *Config) {
		c.Workers = 8
		c.Granularity = LockQueue
		c.MaxRetries = 1
		c.Store = msgstore.DefaultOptions()
		c.Store.Store.SyncCommits = false
	})
	const n = 120
	for i := 0; i < n; i++ {
		if _, err := e.EnqueueXML("a", `<m/>`, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := e.EnqueueXML("b", `<m/>`, nil); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, e)
	st := e.Stats()
	if st.Errors != 0 {
		t.Fatalf("deadlock exhaustion reached an error queue: %+v", st)
	}
	outA, _ := e.MessageStore().Messages("outA")
	outB, _ := e.MessageStore().Messages("outB")
	if len(outA) != n || len(outB) != n {
		t.Fatalf("outputs %d/%d, want %d/%d", len(outA), len(outB), n, n)
	}
	if st.Deadlocks > 0 {
		t.Logf("deadlocks=%d requeues=%d", st.Deadlocks, st.DeadlockRequeues)
	}
}
