package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"demaq/internal/qdl"
	"demaq/internal/xdm"
)

func newEngine(t *testing.T, src string, mutate func(*Config)) *Engine {
	t.Helper()
	app, err := qdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Dir: t.TempDir(), Workers: 4}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Stop() })
	e.Start()
	return e
}

func drain(t *testing.T, e *Engine) {
	t.Helper()
	if !e.Drain(10 * time.Second) {
		t.Fatal("engine did not drain")
	}
}

func queueBodies(t *testing.T, e *Engine, queue string) []string {
	t.Helper()
	docs, err := e.MessageStore().QueueDocs(queue)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, d := range docs {
		out = append(out, d.Root().Name.Local)
	}
	return out
}

const pingPongApp = `
create queue in kind basic mode persistent;
create queue out kind basic mode persistent;
create rule respond for in
  if (//ping) then
    do enqueue <pong>{//ping/text()}</pong> into out;
`

func TestBasicRuleFlow(t *testing.T) {
	e := newEngine(t, pingPongApp, nil)
	if _, err := e.EnqueueXML("in", `<ping>hello</ping>`, nil); err != nil {
		t.Fatal(err)
	}
	drain(t, e)
	docs, _ := e.MessageStore().QueueDocs("out")
	if len(docs) != 1 || docs[0].Root().Name.Local != "pong" || docs[0].StringValue() != "hello" {
		t.Fatalf("out: %v", queueBodies(t, e, "out"))
	}
	// The input message is processed exactly once.
	msgs, _ := e.MessageStore().Messages("in")
	if len(msgs) != 1 || !msgs[0].Processed {
		t.Fatalf("in: %+v", msgs)
	}
	st := e.Stats()
	if st.Processed < 1 || st.Enqueued < 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRuleChaining(t *testing.T) {
	e := newEngine(t, `
		create queue a kind basic mode persistent;
		create queue b kind basic mode persistent;
		create queue c kind basic mode persistent;
		create rule ab for a if (//go) then do enqueue <go/> into b;
		create rule bc for b if (//go) then do enqueue <done/> into c;
	`, nil)
	e.EnqueueXML("a", `<go/>`, nil)
	drain(t, e)
	if got := queueBodies(t, e, "c"); len(got) != 1 || got[0] != "done" {
		t.Fatalf("chain: %v", got)
	}
}

func TestMultipleRulesAllEvaluated(t *testing.T) {
	e := newEngine(t, `
		create queue in kind basic mode persistent;
		create queue out kind basic mode persistent;
		create rule r1 for in if (//m) then do enqueue <from1/> into out;
		create rule r2 for in if (//m) then do enqueue <from2/> into out;
		create rule r3 for in if (//never) then do enqueue <from3/> into out;
	`, nil)
	e.EnqueueXML("in", `<m/>`, nil)
	drain(t, e)
	got := queueBodies(t, e, "out")
	if len(got) != 2 || got[0] != "from1" || got[1] != "from2" {
		t.Fatalf("rules: %v", got)
	}
}

func TestConditionElseBranch(t *testing.T) {
	e := newEngine(t, `
		create queue in kind basic mode persistent;
		create queue yes kind basic mode persistent;
		create queue no kind basic mode persistent;
		create rule decide for in
		  if (//amount > 100) then do enqueue <big/> into yes
		  else do enqueue <small/> into no;
	`, nil)
	e.EnqueueXML("in", `<order><amount>500</amount></order>`, nil)
	e.EnqueueXML("in", `<order><amount>7</amount></order>`, nil)
	drain(t, e)
	if len(queueBodies(t, e, "yes")) != 1 || len(queueBodies(t, e, "no")) != 1 {
		t.Fatal("else branch")
	}
}

func TestPropertiesFlowThroughEnqueue(t *testing.T) {
	e := newEngine(t, `
		create queue in kind basic mode persistent;
		create queue out kind basic mode persistent;
		create property tag as xs:string inherited
		  queue in, out value "default";
		create rule fwd for in
		  if (//m) then do enqueue <fwd/> into out;
	`, nil)
	id, _ := e.EnqueueXML("in", `<m/>`, map[string]xdm.Value{"tag": xdm.NewString("custom")})
	drain(t, e)
	if v, ok := e.MessageStore().Property(id, "tag"); !ok || v.S != "custom" {
		t.Fatalf("explicit prop: %v", v)
	}
	// The forwarded message inherits "custom" from its trigger.
	out, _ := e.MessageStore().Messages("out")
	if len(out) != 1 {
		t.Fatal("no output")
	}
	if v, ok := out[0].Props["tag"]; !ok || v.S != "custom" {
		t.Fatalf("inherited prop: %+v", out[0].Props)
	}
	// System property: the creating rule.
	if v, ok := out[0].Props["demaq:rule"]; !ok || v.S != "fwd" {
		t.Fatalf("system prop: %+v", out[0].Props)
	}
}

func TestSliceJoinAcrossQueues(t *testing.T) {
	// A two-way join via a slicing: emit <both/> only once both parts for
	// the same key have arrived (the Fig. 7 pattern reduced to two inputs).
	e := newEngine(t, `
		create queue left kind basic mode persistent;
		create queue right kind basic mode persistent;
		create queue joined kind basic mode persistent;
		create property key as xs:string fixed
		  queue left, right value //key;
		create slicing byKey on key;
		create rule join for byKey
		  if (qs:slice()[/l] and qs:slice()[/r]) then
		    do enqueue <both><key>{qs:slicekey()}</key></both> into joined;
		create rule cleanup for byKey
		  if (qs:slice()[/l] and qs:slice()[/r]) then do reset;
	`, nil)
	e.EnqueueXML("left", `<l><key>k1</key></l>`, nil)
	e.EnqueueXML("right", `<r><key>k2</key></r>`, nil) // different key: no join
	drain(t, e)
	if got := queueBodies(t, e, "joined"); len(got) != 0 {
		t.Fatalf("premature join: %v", got)
	}
	e.EnqueueXML("right", `<r><key>k1</key></r>`, nil)
	drain(t, e)
	got := queueBodies(t, e, "joined")
	if len(got) != 1 || got[0] != "both" {
		t.Fatalf("join: %v", got)
	}
	docs, _ := e.MessageStore().QueueDocs("joined")
	if docs[0].StringValue() != "k1" {
		t.Fatalf("joined key: %q", docs[0].StringValue())
	}
	// The cleanup rule reset the slice: members are gone from slice view.
	if n := len(e.Slices().SliceMembers("byKey", "k1")); n != 0 {
		t.Fatalf("slice not reset: %d members", n)
	}
}

func TestRetentionGCAfterReset(t *testing.T) {
	e := newEngine(t, `
		create queue in kind basic mode persistent;
		create property k as xs:string fixed queue in value //k;
		create slicing byK on k;
		create rule done for byK
		  if (qs:slice()[/finish]) then do reset;
	`, nil)
	e.EnqueueXML("in", `<m><k>a</k></m>`, nil)
	e.EnqueueXML("in", `<m><k>a</k></m>`, nil)
	drain(t, e)
	if n, _ := e.CollectGarbage(); n != 0 {
		t.Fatalf("retained messages collected: %d", n)
	}
	e.EnqueueXML("in", `<finish><k>a</k></finish>`, nil)
	drain(t, e)
	n, err := e.CollectGarbage()
	if err != nil || n != 3 {
		t.Fatalf("gc after reset: %d %v", n, err)
	}
	msgs, _ := e.MessageStore().Messages("in")
	if len(msgs) != 0 {
		t.Fatalf("messages remain: %d", len(msgs))
	}
}

func TestErrorRoutedToRuleErrorQueue(t *testing.T) {
	e := newEngine(t, `
		create queue in kind basic mode persistent;
		create queue errs kind basic mode persistent;
		create queue out kind basic mode persistent;
		create rule bad for in errorqueue errs
		  if (//m) then do enqueue <x>{1 idiv 0}</x> into out;
	`, nil)
	e.EnqueueXML("in", `<m><zero>0</zero></m>`, nil)
	drain(t, e)
	docs, _ := e.MessageStore().QueueDocs("errs")
	if len(docs) != 1 {
		t.Fatalf("error queue: %v", queueBodies(t, e, "errs"))
	}
	root := docs[0].Root()
	if root.Name.Local != "error" {
		t.Fatal("error document shape")
	}
	if root.FirstChildElement("kind").StringValue() != "application" {
		t.Fatalf("error kind: %s", root.FirstChildElement("kind").StringValue())
	}
	if root.FirstChildElement("rule").StringValue() != "bad" {
		t.Fatal("error rule attribution")
	}
	if root.FirstChildElement("initialMessage") == nil {
		t.Fatal("initial message missing")
	}
	// The failing message is consumed (processed exactly once).
	msgs, _ := e.MessageStore().Messages("in")
	if !msgs[0].Processed {
		t.Fatal("failed message not consumed")
	}
}

func TestErrorHandlerRuleCompensates(t *testing.T) {
	// Fig. 10 pattern: a rule on the error queue reacts to failures.
	e := newEngine(t, `
		create queue in kind basic mode persistent;
		create queue errs kind basic mode persistent;
		create queue ops kind basic mode persistent;
		create queue out kind basic mode persistent;
		create rule bad for in errorqueue errs
		  if (//m) then do enqueue <x>{1 idiv 0}</x> into out;
		create rule notifyOps for errs
		  if (/error) then
		    do enqueue <ticket>{/error/description/text()}</ticket> into ops;
	`, nil)
	e.EnqueueXML("in", `<m/>`, nil)
	drain(t, e)
	got := queueBodies(t, e, "ops")
	if len(got) != 1 || got[0] != "ticket" {
		t.Fatalf("compensation: %v", got)
	}
}

func TestSchedulerPriorities(t *testing.T) {
	// Single worker: the high-priority queue must be served first even
	// though the low-priority messages arrived earlier.
	e := newEngine(t, `
		create queue low kind basic mode persistent priority 1;
		create queue high kind basic mode persistent priority 10;
		create queue outLow kind basic mode persistent;
		create queue outHigh kind basic mode persistent;
		create rule rl for low if (//m) then do enqueue <l/> into outLow;
		create rule rh for high if (//m) then do enqueue <h/> into outHigh;
	`, func(c *Config) { c.Workers = 1 })
	// Stop workers from racing the setup: enqueue a burst.
	for i := 0; i < 20; i++ {
		e.EnqueueXML("low", `<m/>`, nil)
	}
	e.EnqueueXML("high", `<m/>`, nil)
	drain(t, e)
	// Both completed; order was observed by message IDs in out queues.
	outHigh, _ := e.MessageStore().Messages("outHigh")
	outLow, _ := e.MessageStore().Messages("outLow")
	if len(outHigh) != 1 || len(outLow) != 20 {
		t.Fatalf("outputs: %d %d", len(outHigh), len(outLow))
	}
	// The high output must have been produced before the last low outputs:
	// its ID is smaller than at least one low output's ID.
	later := 0
	for _, m := range outLow {
		if m.ID > outHigh[0].ID {
			later++
		}
	}
	if later == 0 {
		t.Fatal("high-priority message was processed last")
	}
}

func TestEchoQueueTimeout(t *testing.T) {
	e := newEngine(t, `
		create queue echoQueue kind echo mode persistent;
		create queue target kind basic mode persistent;
		create queue out kind basic mode persistent;
		create rule onTimeout for target
		  if (//remind) then do enqueue <notified/> into out;
	`, nil)
	_, err := e.EnqueueXML("echoQueue", `<remind/>`, map[string]xdm.Value{
		"timeout": xdm.NewInteger(30), // ms
		"target":  xdm.NewString("target"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Not delivered yet.
	if got := queueBodies(t, e, "out"); len(got) != 0 {
		t.Fatal("echo fired too early")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(queueBodies(t, e, "out")) == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("echo message never delivered")
}

func TestRulesOnEchoQueuesRejected(t *testing.T) {
	app := qdl.MustParse(`
		create queue e kind echo mode persistent;
		create rule r for e if (//m) then do reset x key "1";
	`)
	if _, err := New(Config{Dir: t.TempDir()}, app); err == nil {
		t.Fatal("rules on echo queues must be rejected")
	}
}

func TestRestartResumesUnprocessed(t *testing.T) {
	dir := t.TempDir()
	app := qdl.MustParse(pingPongApp)
	e, err := New(Config{Dir: dir, Workers: 1}, app)
	if err != nil {
		t.Fatal(err)
	}
	// Engine NOT started: messages stay unprocessed.
	for i := 0; i < 5; i++ {
		if _, err := e.EnqueueXML("in", fmt.Sprintf(`<ping>%d</ping>`, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	e.MessageStore().Crash()

	e2, err := New(Config{Dir: dir, Workers: 2}, qdl.MustParse(pingPongApp))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Stop()
	e2.Start()
	if !e2.Drain(10 * time.Second) {
		t.Fatal("drain after restart")
	}
	out, _ := e2.MessageStore().Messages("out")
	if len(out) != 5 {
		t.Fatalf("recovered processing: %d pongs", len(out))
	}
}

func TestSchemaValidationOnEnqueue(t *testing.T) {
	e := newEngine(t, `
		create queue in kind basic mode persistent
		  schema "<xs:schema xmlns:xs=""http://www.w3.org/2001/XMLSchema"">
		            <xs:element name=""order"">
		              <xs:complexType>
		                <xs:sequence>
		                  <xs:element name=""id"" type=""xs:integer""/>
		                </xs:sequence>
		              </xs:complexType>
		            </xs:element>
		          </xs:schema>";
	`, nil)
	if _, err := e.EnqueueXML("in", `<order><id>42</id></order>`, nil); err != nil {
		t.Fatalf("valid message rejected: %v", err)
	}
	if _, err := e.EnqueueXML("in", `<order><id>nan</id></order>`, nil); err == nil {
		t.Fatal("invalid typed content accepted")
	}
	if _, err := e.EnqueueXML("in", `<other/>`, nil); err == nil {
		t.Fatal("undeclared root accepted")
	}
}

func TestConcurrentProcessingBothGranularities(t *testing.T) {
	for _, g := range []LockGranularity{LockSlice, LockQueue} {
		g := g
		t.Run(fmt.Sprintf("granularity=%d", g), func(t *testing.T) {
			e := newEngine(t, `
				create queue in kind basic mode persistent;
				create queue out kind basic mode persistent;
				create property k as xs:string fixed queue in value //k;
				create slicing byK on k;
				create rule fwd for in
				  if (//m) then do enqueue <done/> into out;
			`, func(c *Config) { c.Workers = 8; c.Granularity = g })
			const n = 200
			for i := 0; i < n; i++ {
				e.EnqueueXML("in", fmt.Sprintf(`<m><k>k%d</k></m>`, i%10), nil)
			}
			drain(t, e)
			out, _ := e.MessageStore().Messages("out")
			if len(out) != n {
				t.Fatalf("outputs: %d, want %d (lost or duplicated work)", len(out), n)
			}
		})
	}
}

// TestProcurementEndToEnd runs the paper's complete case study (Figs. 3-10):
// a customer offer request forks into three checks, the slicing joins the
// results, and an offer is sent to the customer; a request with restricted
// items is refused.
func TestProcurementEndToEnd(t *testing.T) {
	e := newEngine(t, qdl.ProcurementApp, nil)

	// Master data the join rule consults.
	if err := e.MessageStore().AddToCollection("crm", mustDoc(t, `<pricelist><discount>3%</discount></pricelist>`)); err != nil {
		t.Fatal(err)
	}

	// Request 1: clean order → offer.
	e.EnqueueXML("crm", `
		<offerRequest>
		  <requestID>r1</requestID>
		  <customerID>77</customerID>
		  <items><item sku="A1" restricted="no"><qty>10</qty></item></items>
		</offerRequest>`, nil)
	drain(t, e)
	got := queueBodies(t, e, "customer")
	if len(got) != 1 || got[0] != "offer" {
		t.Fatalf("customer queue after r1: %v", got)
	}

	// Request 2: restricted item → refusal.
	e.EnqueueXML("crm", `
		<offerRequest>
		  <requestID>r2</requestID>
		  <customerID>78</customerID>
		  <items><item sku="U235" restricted="yes"><qty>1</qty></item></items>
		</offerRequest>`, nil)
	drain(t, e)
	got = queueBodies(t, e, "customer")
	if len(got) != 2 || got[1] != "refusal" {
		t.Fatalf("customer queue after r2: %v", got)
	}

	// Request 3: customer with an unpaid invoice → refusal (Fig. 6).
	e.EnqueueXML("invoices", `<invoice><customerID>99</customerID><amount>1000</amount></invoice>`, nil)
	drain(t, e)
	e.EnqueueXML("crm", `
		<offerRequest>
		  <requestID>r3</requestID>
		  <customerID>99</customerID>
		  <items><item sku="A1" restricted="no"><qty>1</qty></item></items>
		</offerRequest>`, nil)
	drain(t, e)
	got = queueBodies(t, e, "customer")
	if len(got) != 3 || got[2] != "refusal" {
		t.Fatalf("customer queue after r3: %v", got)
	}

	// Request 4: capacity exceeded → refusal.
	e.EnqueueXML("crm", `
		<offerRequest>
		  <requestID>r4</requestID>
		  <customerID>11</customerID>
		  <items><item sku="A1" restricted="no"><qty>5000</qty></item></items>
		</offerRequest>`, nil)
	drain(t, e)
	got = queueBodies(t, e, "customer")
	if len(got) != 4 || got[3] != "refusal" {
		t.Fatalf("customer queue after r4: %v", got)
	}

	// Completed requests were reset (Fig. 8): slices are empty, GC reclaims
	// the correlated messages.
	for _, key := range []string{"r1", "r2", "r4"} {
		if n := len(e.Slices().SliceMembers("requestMsgs", key)); n != 0 {
			t.Fatalf("slice %s not reset: %d members", key, n)
		}
	}
	if n, _ := e.CollectGarbage(); n == 0 {
		t.Fatal("nothing collected after resets")
	}
}

// TestFigure9PaymentReminder exercises the echo-queue reminder flow: an
// invoice timeout without payment confirmation produces a reminder.
func TestFigure9PaymentReminder(t *testing.T) {
	e := newEngine(t, qdl.ProcurementApp, nil)
	e.EnqueueXML("invoices", `<invoice><requestID>inv9</requestID><amount>250</amount></invoice>`, nil)
	// Register the timeout at the echo queue (as the paper's invoice rule
	// would when sending the invoice).
	_, err := e.EnqueueXML("echoQueue",
		`<timeoutNotification><requestID>inv9</requestID></timeoutNotification>`,
		map[string]xdm.Value{
			"timeout": xdm.NewInteger(20),
			"target":  xdm.NewString("finance"),
		})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		docs, _ := e.MessageStore().QueueDocs("customer")
		if len(docs) == 1 {
			if docs[0].Root().Name.Local != "reminder" {
				t.Fatalf("expected reminder, got %s", docs[0].Root().Name.Local)
			}
			if !strings.Contains(docs[0].StringValue(), "inv9") {
				t.Fatalf("reminder content: %s", docs[0].StringValue())
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("reminder never sent")
}

// TestFigure9PaymentConfirmedNoReminder: when payment arrived before the
// timeout, no reminder is sent and the retention slice is reset.
func TestFigure9PaymentConfirmedNoReminder(t *testing.T) {
	e := newEngine(t, qdl.ProcurementApp, nil)
	e.EnqueueXML("invoices", `<invoice><requestID>inv10</requestID><amount>99</amount></invoice>`, nil)
	e.EnqueueXML("finance", `<paymentConfirmation><requestID>inv10</requestID></paymentConfirmation>`, nil)
	drain(t, e)
	_, err := e.EnqueueXML("echoQueue",
		`<timeoutNotification><requestID>inv10</requestID></timeoutNotification>`,
		map[string]xdm.Value{
			"timeout": xdm.NewInteger(10),
			"target":  xdm.NewString("finance"),
		})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	drain(t, e)
	if got := queueBodies(t, e, "customer"); len(got) != 0 {
		t.Fatalf("unexpected reminder: %v", got)
	}
	// The invoiceRetention slice was reset by resetPayedInvoices.
	if n := len(e.Slices().SliceMembers("invoiceRetention", "inv10")); n != 0 {
		t.Fatalf("invoiceRetention not reset: %d", n)
	}
}

func mustDoc(t *testing.T, src string) *docNode {
	t.Helper()
	d, err := parseDoc(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
