package engine

import (
	"sync"
	"testing"

	"demaq/internal/msgstore"
)

func TestSchedulerPriorityThenAge(t *testing.T) {
	s := newScheduler()
	s.DeclareQueue("low", 1)
	s.DeclareQueue("high", 10)
	s.DeclareQueue("mid", 5)
	s.Add("low", 1)
	s.Add("mid", 2)
	s.Add("high", 3)
	s.Add("high", 4)

	expect := []struct {
		queue string
		id    msgstore.MsgID
	}{
		{"high", 3}, {"high", 4}, {"mid", 2}, {"low", 1},
	}
	for i, want := range expect {
		q, id, ok := s.Claim()
		if !ok || q != want.queue || id != want.id {
			t.Fatalf("claim %d = (%s,%d), want (%s,%d)", i, q, id, want.queue, want.id)
		}
		s.Done()
	}
	if !s.Idle() {
		t.Fatal("should be idle")
	}
}

func TestSchedulerTieBreaksOnOldestHead(t *testing.T) {
	s := newScheduler()
	s.DeclareQueue("a", 5)
	s.DeclareQueue("b", 5)
	s.Add("b", 2)
	s.Add("a", 1)
	s.Add("b", 3)
	q, id, _ := s.Claim()
	if q != "a" || id != 1 {
		t.Fatalf("first claim (%s,%d)", q, id)
	}
	s.Done()
	q, id, _ = s.Claim()
	if q != "b" || id != 2 {
		t.Fatalf("second claim (%s,%d)", q, id)
	}
	s.Done()
	s.Claim()
	s.Done()
}

func TestSchedulerRequeuePreservesOrder(t *testing.T) {
	s := newScheduler()
	s.DeclareQueue("q", 0)
	s.Add("q", 10)
	s.Add("q", 11)
	_, id, _ := s.Claim()
	if id != 10 {
		t.Fatal("first")
	}
	s.Requeue("q", 10) // deadlock victim goes back to the front
	_, id, _ = s.Claim()
	if id != 10 {
		t.Fatalf("requeued message should be claimed first, got %d", id)
	}
	s.Done()
	_, id, _ = s.Claim()
	if id != 11 {
		t.Fatal("order after requeue")
	}
	s.Done()
}

func TestSchedulerCloseUnblocksClaimers(t *testing.T) {
	s := newScheduler()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, ok := s.Claim(); ok {
				t.Error("claim after close should report !ok")
			}
		}()
	}
	s.Close()
	wg.Wait()
}

func TestSchedulerWaitIdle(t *testing.T) {
	s := newScheduler()
	s.DeclareQueue("q", 0)
	s.Add("q", 1)
	done := make(chan struct{})
	go func() {
		s.WaitIdle()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("WaitIdle returned while work pending")
	default:
	}
	s.Claim()
	s.Done()
	<-done // must return now
	if s.Backlog() != 0 {
		t.Fatal("backlog")
	}
}

func TestSchedulerConcurrentProducersConsumers(t *testing.T) {
	s := newScheduler()
	s.DeclareQueue("q", 0)
	const n = 1000
	var claimed sync.Map
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, id, ok := s.Claim()
				if !ok {
					return
				}
				if _, dup := claimed.LoadOrStore(id, true); dup {
					t.Errorf("message %d claimed twice", id)
				}
				s.Done()
			}
		}()
	}
	for i := 1; i <= n; i++ {
		s.Add("q", msgstore.MsgID(i))
	}
	s.WaitIdle()
	s.Close()
	wg.Wait()
	count := 0
	claimed.Range(func(any, any) bool { count++; return true })
	if count != n {
		t.Fatalf("claimed %d of %d", count, n)
	}
}
