package engine

import (
	"container/heap"
	"math"
	"sync"
	"sync/atomic"

	"demaq/internal/msgstore"
)

// scheduler implements the execution model of Sec. 3.1/4.4.2: it maintains
// the set of unprocessed messages and hands them to workers — one at a
// time (Claim) or as same-queue batches (ClaimBatch) — honoring queue
// priorities first and temporal order (message ID) second —
// "a message in a high priority queue may be processed before another one
// stored in a queue with a lower priority, even if it has been created
// more recently".
//
// Dispatch is O(log #queues): non-empty queues live in a priority heap
// keyed (priority desc, head message ID asc), so Claim pops the best queue
// directly instead of scanning all queues. Each queue buffers its messages
// in a ring deque, making both Add (back) and Requeue (front, the deadlock
// victim path) O(1). Claimers and idle-waiters use separate condition
// variables so adding one message signals exactly one worker instead of
// waking the whole pool.
type scheduler struct {
	mu       sync.Mutex
	workCond *sync.Cond // waits in Claim; Signal per available message
	idleCond *sync.Cond // waits in WaitIdle; Broadcast on idle transitions
	queues   map[string]*schedQueue
	active   queueHeap // non-empty queues, best dispatch candidate on top
	pending  int
	inflight int
	closed   bool

	// topPrio mirrors the priority of the best runnable queue (MinInt64
	// when none), maintained on every heap mutation. Workers poll it with
	// PreemptFor between the messages of a claimed batch, without taking
	// the scheduler lock, so a batch of low-priority work yields to
	// higher-priority arrivals at message granularity.
	topPrio atomic.Int64
}

// schedQueue is one queue's dispatch state: a ring-buffer deque of message
// IDs plus its position in the active heap (-1 while empty).
type schedQueue struct {
	name     string
	priority int
	heapIdx  int

	buf  []msgstore.MsgID
	head int
	n    int
}

func (q *schedQueue) empty() bool           { return q.n == 0 }
func (q *schedQueue) front() msgstore.MsgID { return q.buf[q.head] }

func (q *schedQueue) grow() {
	if q.n < len(q.buf) {
		return
	}
	newCap := 2 * len(q.buf)
	if newCap < 8 {
		newCap = 8
	}
	nb := make([]msgstore.MsgID, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf, q.head = nb, 0
}

func (q *schedQueue) pushBack(id msgstore.MsgID) {
	q.grow()
	q.buf[(q.head+q.n)%len(q.buf)] = id
	q.n++
}

func (q *schedQueue) pushFront(id msgstore.MsgID) {
	q.grow()
	q.head = (q.head - 1 + len(q.buf)) % len(q.buf)
	q.buf[q.head] = id
	q.n++
}

func (q *schedQueue) popFront() msgstore.MsgID {
	id := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return id
}

// queueHeap orders active queues by priority (higher first), breaking ties
// on the oldest head message (smaller ID first).
type queueHeap []*schedQueue

func (h queueHeap) Len() int { return len(h) }
func (h queueHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].front() < h[j].front()
}
func (h queueHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *queueHeap) Push(x any) {
	q := x.(*schedQueue)
	q.heapIdx = len(*h)
	*h = append(*h, q)
}
func (h *queueHeap) Pop() any {
	old := *h
	q := old[len(old)-1]
	old[len(old)-1] = nil
	q.heapIdx = -1
	*h = old[:len(old)-1]
	return q
}

func newScheduler() *scheduler {
	s := &scheduler{queues: map[string]*schedQueue{}}
	s.workCond = sync.NewCond(&s.mu)
	s.idleCond = sync.NewCond(&s.mu)
	s.topPrio.Store(math.MinInt64)
	return s
}

// updateTopLocked refreshes the lock-free best-priority mirror. Caller
// holds s.mu; must run after every mutation of the active heap.
func (s *scheduler) updateTopLocked() {
	if len(s.active) > 0 {
		s.topPrio.Store(int64(s.active[0].priority))
	} else {
		s.topPrio.Store(math.MinInt64)
	}
}

// PreemptFor reports whether a queue with a priority strictly above the
// given one has runnable messages. Batch workers poll it between messages;
// equal-priority work never preempts a running batch.
func (s *scheduler) PreemptFor(priority int) bool {
	return s.topPrio.Load() > int64(priority)
}

// queueLocked returns (creating if needed) the dispatch state of a queue.
func (s *scheduler) queueLocked(name string) *schedQueue {
	q, ok := s.queues[name]
	if !ok {
		q = &schedQueue{name: name, heapIdx: -1}
		s.queues[name] = q
	}
	return q
}

// DeclareQueue registers a queue with its priority.
func (s *scheduler) DeclareQueue(name string, priority int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queueLocked(name)
	q.priority = priority
	if q.heapIdx >= 0 {
		heap.Fix(&s.active, q.heapIdx)
	}
	s.updateTopLocked()
}

// Add makes a message available for processing.
func (s *scheduler) Add(queue string, id msgstore.MsgID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queueLocked(queue)
	q.pushBack(id)
	if q.heapIdx < 0 {
		heap.Push(&s.active, q)
	}
	// A back-push of a non-empty queue leaves its head (the sort key)
	// unchanged, so no heap fix is needed.
	s.updateTopLocked()
	s.pending++
	s.workCond.Signal()
}

// Requeue returns a message to the front of its queue after a retryable
// failure (deadlock victim).
func (s *scheduler) Requeue(queue string, id msgstore.MsgID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queueLocked(queue)
	q.pushFront(id)
	if q.heapIdx < 0 {
		heap.Push(&s.active, q)
	} else {
		heap.Fix(&s.active, q.heapIdx) // head got older
	}
	s.updateTopLocked()
	s.pending++
	s.inflight--
	s.workCond.Signal()
}

// RequeueFront returns the unprocessed suffix of a claimed batch to the
// front of its queue, preserving order (ids must be in claim order). Used
// when a batch is preempted by higher-priority work after partial
// completion.
func (s *scheduler) RequeueFront(queue string, ids []msgstore.MsgID) {
	if len(ids) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queueLocked(queue)
	for i := len(ids) - 1; i >= 0; i-- {
		q.pushFront(ids[i])
	}
	if q.heapIdx < 0 {
		heap.Push(&s.active, q)
	} else {
		heap.Fix(&s.active, q.heapIdx) // head got older
	}
	s.updateTopLocked()
	s.pending += len(ids)
	s.inflight -= len(ids)
	for range ids {
		s.workCond.Signal()
	}
}

// Claim blocks until a message is available (or the scheduler closes) and
// returns the next message to process: from the highest-priority non-empty
// queue, oldest head first on ties.
func (s *scheduler) Claim() (queue string, id msgstore.MsgID, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return "", 0, false
		}
		if len(s.active) > 0 {
			best := s.active[0]
			id := best.popFront()
			if best.empty() {
				heap.Pop(&s.active)
			} else {
				heap.Fix(&s.active, 0) // head advanced to a newer message
			}
			s.updateTopLocked()
			s.pending--
			s.inflight++
			return best.name, id, true
		}
		s.workCond.Wait()
	}
}

// ClaimBatch blocks like Claim but pops up to max runnable messages from
// the best queue in one lock round, appending them to buf (callers reuse
// the buffer across rounds). The batch preserves the dispatch order —
// priority first, message ID second — and comes from a single queue, so
// the engine can process it under one home-queue lock. It also returns the
// queue's priority so the worker can poll PreemptFor between messages.
//
// A claim never takes more than half of a queue's runnable backlog
// (rounded up): a deep backlog still fills batches to the cap, but a
// shallow one is not drained by a single claimer — the remainder stays
// claimable by other workers and by the priority dispatch, so a
// higher-priority arrival overtakes it exactly as it would under
// tuple-at-a-time claiming. (A batch commits as one unit; once claimed,
// its messages are beyond preemption, so the claim itself must stay
// modest when the backlog is.)
func (s *scheduler) ClaimBatch(max int, buf []msgstore.MsgID) (queue string, priority int, ids []msgstore.MsgID, ok bool) {
	if max < 1 {
		max = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return "", 0, nil, false
		}
		if len(s.active) > 0 {
			best := s.active[0]
			n := (best.n + 1) / 2
			if n > max {
				n = max
			}
			ids = buf
			for i := 0; i < n; i++ {
				ids = append(ids, best.popFront())
			}
			if best.empty() {
				heap.Pop(&s.active)
			} else {
				heap.Fix(&s.active, 0) // head advanced to a newer message
			}
			s.updateTopLocked()
			s.pending -= n
			s.inflight += n
			return best.name, best.priority, ids, true
		}
		s.workCond.Wait()
	}
}

// Done reports completion of a claimed message.
func (s *scheduler) Done() { s.DoneN(1) }

// DoneN reports completion of n claimed messages (a batch, possibly a
// partial one after preemption).
func (s *scheduler) DoneN(n int) {
	s.mu.Lock()
	s.inflight -= n
	if s.pending == 0 && s.inflight == 0 {
		s.idleCond.Broadcast()
	}
	s.mu.Unlock()
}

// Close wakes all workers and stops further claims.
func (s *scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.workCond.Broadcast()
	s.idleCond.Broadcast()
	s.mu.Unlock()
}

// Idle reports whether no work is pending or in flight.
func (s *scheduler) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending == 0 && s.inflight == 0
}

// WaitIdle blocks until the scheduler is idle (tests, Drain).
func (s *scheduler) WaitIdle() {
	s.mu.Lock()
	for !(s.pending == 0 && s.inflight == 0) && !s.closed {
		s.idleCond.Wait()
	}
	s.mu.Unlock()
}

// Backlog returns the number of pending messages.
func (s *scheduler) Backlog() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}
