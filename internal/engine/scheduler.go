package engine

import (
	"sync"

	"demaq/internal/msgstore"
)

// scheduler implements the execution model of Sec. 3.1/4.4.2: it maintains
// the set of unprocessed messages and hands them to workers one at a time,
// honoring queue priorities first and temporal order (message ID) second —
// "a message in a high priority queue may be processed before another one
// stored in a queue with a lower priority, even if it has been created
// more recently".
type scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[string]*schedQueue
	pending  int
	inflight int
	closed   bool
}

type schedQueue struct {
	name     string
	priority int
	fifo     []msgstore.MsgID
}

func newScheduler() *scheduler {
	s := &scheduler{queues: map[string]*schedQueue{}}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// DeclareQueue registers a queue with its priority.
func (s *scheduler) DeclareQueue(name string, priority int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.queues[name]; ok {
		q.priority = priority
		return
	}
	s.queues[name] = &schedQueue{name: name, priority: priority}
}

// Add makes a message available for processing.
func (s *scheduler) Add(queue string, id msgstore.MsgID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[queue]
	if !ok {
		q = &schedQueue{name: queue}
		s.queues[queue] = q
	}
	q.fifo = append(q.fifo, id)
	s.pending++
	// Broadcast, not Signal: Claim and WaitIdle share the condition
	// variable, and a Signal could wake only a WaitIdle waiter.
	s.cond.Broadcast()
}

// Requeue returns a message to the front of its queue after a retryable
// failure (deadlock victim).
func (s *scheduler) Requeue(queue string, id msgstore.MsgID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[queue]
	if q == nil {
		q = &schedQueue{name: queue}
		s.queues[queue] = q
	}
	q.fifo = append([]msgstore.MsgID{id}, q.fifo...)
	s.pending++
	s.inflight--
	s.cond.Broadcast()
}

// Claim blocks until a message is available (or the scheduler closes) and
// returns the next message to process: from the highest-priority non-empty
// queue, oldest head first on ties.
func (s *scheduler) Claim() (queue string, id msgstore.MsgID, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return "", 0, false
		}
		var best *schedQueue
		for _, q := range s.queues {
			if len(q.fifo) == 0 {
				continue
			}
			if best == nil || q.priority > best.priority ||
				(q.priority == best.priority && q.fifo[0] < best.fifo[0]) {
				best = q
			}
		}
		if best != nil {
			id := best.fifo[0]
			best.fifo = best.fifo[1:]
			s.pending--
			s.inflight++
			return best.name, id, true
		}
		s.cond.Wait()
	}
}

// Done reports completion of a claimed message.
func (s *scheduler) Done() {
	s.mu.Lock()
	s.inflight--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Close wakes all workers and stops further claims.
func (s *scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Idle reports whether no work is pending or in flight.
func (s *scheduler) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending == 0 && s.inflight == 0
}

// WaitIdle blocks until the scheduler is idle (tests, Drain).
func (s *scheduler) WaitIdle() {
	s.mu.Lock()
	for !(s.pending == 0 && s.inflight == 0) && !s.closed {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Backlog returns the number of pending messages.
func (s *scheduler) Backlog() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}
