package engine

import (
	"fmt"
	"testing"
	"time"

	"demaq/internal/msgstore"
	"demaq/internal/qdl"
)

// dispatchDiffApp exercises every path the secondary index touches:
// property-prefiltered routing rules (index probes at dispatch), a slicing
// with a qs:slice join rule (index-backed merged slice access), and a
// poison rule feeding the error queue.
const dispatchDiffApp = `
	create queue inbox kind basic mode persistent;
	create queue eu kind basic mode persistent;
	create queue us kind basic mode persistent;
	create queue joined kind basic mode persistent;
	create queue errs kind basic mode persistent;
	create property region as xs:string queue inbox value //region;
	create property reqID as xs:string queue inbox value //rid;
	create slicing requests on reqID;
	create rule euRoute for inbox
	  if (qs:property("region") = "eu") then do enqueue <eu>{//id/text()}</eu> into eu;
	create rule usRoute for inbox
	  if (qs:property("region") = "us") then do enqueue <us>{//id/text()}</us> into us;
	create rule poison for inbox errorqueue errs
	  if (//order/poison) then do enqueue <x>{1 idiv 0}</x> into eu;
	create rule joinReq for requests
	  if (count(qs:slice()[/order/last]) > 0) then
	    do enqueue <joined>{qs:slicekey()}<n>{count(qs:slice())}</n></joined> into joined;
`

func runDispatchDiff(t *testing.T, batchSize, n int, scan bool) (map[string][]string, Stats) {
	t.Helper()
	app := qdl.MustParse(dispatchDiffApp)
	merged := false // merged slice access: the path the index vs queue scan decides
	cfg := Config{
		Dir: t.TempDir(), Workers: 8, BatchSize: batchSize,
		Materialized: &merged, ScanDispatch: scan,
	}
	cfg.Store = msgstore.DefaultOptions()
	cfg.Store.Store.SyncCommits = false
	cfg.Store.NoPropertyIndex = scan
	e, err := New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	// Preload the whole workload before starting the workers: rule outputs
	// like count(qs:slice()) depend on how much of the stream has arrived
	// when a rule fires, so racing enqueues against processing would make
	// the two runs diverge legitimately. With the backlog (and therefore
	// every slice membership) complete before the first evaluation, both
	// engines must produce byte-identical state.
	for i := 0; i < n; i++ {
		region := []string{"eu", "us", "apac"}[i%3]
		extra := ""
		if i%7 == 6 {
			extra = "<poison/>"
		}
		if i%10 == 9 {
			extra += "<last/>"
		}
		doc := fmt.Sprintf(`<order><id>%d</id><region>%s</region><rid>r%d</rid>%s</order>`,
			i, region, i%5, extra)
		if _, err := e.EnqueueXML("inbox", doc, nil); err != nil {
			t.Fatal(err)
		}
	}
	e.Start()
	if !e.Drain(60 * time.Second) {
		t.Fatal("drain")
	}
	state := map[string][]string{}
	for _, q := range e.MessageStore().QueueNames() {
		state[q] = queueFingerprint(t, e, q)
	}
	return state, e.Stats()
}

// TestIndexedScanDispatchDifferential runs the same workload through
// index-backed dispatch/slice access and through the scan baseline
// (ScanDispatch + NoPropertyIndex), at batch sizes 1 and 32, and asserts
// identical final store state — every queue including the error queue —
// and identical processed/error counts. Runs under -race in CI.
func TestIndexedScanDispatchDifferential(t *testing.T) {
	const n = 210
	for _, batch := range []int{1, 32} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			indexed, idxStats := runDispatchDiff(t, batch, n, false)
			scanned, scanStats := runDispatchDiff(t, batch, n, true)
			if len(indexed) != len(scanned) {
				t.Fatalf("queue sets differ: %d vs %d", len(indexed), len(scanned))
			}
			// The diff must not hold vacuously: every exercised path has
			// to have produced output.
			for _, q := range []string{"eu", "us", "joined", "errs"} {
				if len(scanned[q]) == 0 {
					t.Fatalf("queue %q empty — workload did not exercise its path", q)
				}
			}
			for q, want := range scanned {
				got, ok := indexed[q]
				if !ok {
					t.Fatalf("queue %q missing in indexed run", q)
				}
				if len(got) != len(want) {
					t.Fatalf("queue %q: %d messages indexed vs %d scanned", q, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("queue %q message %d differs:\n  scan:    %s\n  indexed: %s", q, i, want[i], got[i])
					}
				}
			}
			if idxStats.Processed != scanStats.Processed {
				t.Errorf("processed: indexed %d, scan %d", idxStats.Processed, scanStats.Processed)
			}
			if idxStats.Errors != scanStats.Errors {
				t.Errorf("errors: indexed %d, scan %d", idxStats.Errors, scanStats.Errors)
			}
			if want := uint64(n / 7); idxStats.Errors != want {
				t.Errorf("poison errors: %d, want %d", idxStats.Errors, want)
			}
		})
	}
}
