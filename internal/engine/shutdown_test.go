package engine

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"demaq/internal/gateway"
	"demaq/internal/qdl"
)

func newBasicEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	app, err := qdl.Parse(`
		create queue in kind basic mode persistent;
		create rule r for in if (//m) then do enqueue <ok/> into in;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	e, err := New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestIngestBackpressure: with MaxBacklog set, admission sheds
// deterministically once the scheduler backlog hits the bound, with the
// overload error (HTTP 429), not the degraded/unavailable one (503).
func TestIngestBackpressure(t *testing.T) {
	e := newBasicEngine(t, Config{Workers: 1, MaxBacklog: 3})
	defer e.Stop()
	// Workers not started: every enqueue stays in the backlog.
	for i := 0; i < 3; i++ {
		if _, err := e.EnqueueXML("in", "<m/>", nil); err != nil {
			t.Fatalf("enqueue %d below the bound: %v", i, err)
		}
	}
	_, err := e.EnqueueXML("in", "<m/>", nil)
	if !errors.Is(err, ErrOverloaded) || !errors.Is(err, gateway.ErrOverloaded) {
		t.Fatalf("enqueue at the bound: %v, want ErrOverloaded", err)
	}
	if errors.Is(err, gateway.ErrUnavailable) {
		t.Fatal("overload must be distinct from the degraded 503 verdict")
	}
	if shed := e.Stats().IngestShed; shed != 1 {
		t.Fatalf("IngestShed = %d, want 1", shed)
	}
}

// TestShutdownRefusesIngest: once shutdown begins, ingest is refused with
// an error transports map to 503 — the node is about to be gone.
func TestShutdownRefusesIngest(t *testing.T) {
	e := newBasicEngine(t, Config{Workers: 1})
	defer e.Stop()
	e.closing.Store(true)
	_, err := e.EnqueueXML("in", "<m/>", nil)
	if !errors.Is(err, ErrShutdown) || !errors.Is(err, gateway.ErrUnavailable) {
		t.Fatalf("enqueue while closing: %v, want ErrShutdown", err)
	}
}

// TestShutdownDrainsInFlight: Shutdown finishes the backlog within the
// drain budget before closing the store, and a reopened engine finds no
// unprocessed leftovers.
func TestShutdownDrainsInFlight(t *testing.T) {
	dir := t.TempDir()
	e := newBasicEngine(t, Config{Dir: dir, Workers: 2})
	e.Start()
	for i := 0; i < 50; i++ {
		if _, err := e.EnqueueXML("in", "<m/>", nil); err != nil {
			t.Fatal(err)
		}
	}
	drained, err := e.Shutdown(10 * time.Second)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !drained {
		t.Fatal("shutdown did not drain")
	}
	e2 := newBasicEngine(t, Config{Dir: dir, Workers: 1})
	defer e2.Stop()
	if got := e2.Stats().Backlog; got != 0 {
		t.Fatalf("reopened backlog = %d, want 0 after a drained shutdown", got)
	}
}

// TestGatewayRestartResubscribes: stopping an engine releases its incoming
// reliable endpoints, so an in-process restart on the same transport can
// subscribe them again — and exactly-once holds across the restart.
func TestGatewayRestartResubscribes(t *testing.T) {
	net := gateway.NewNetwork(47)
	defer net.Close()
	reg := gateway.NewRegistry(net)
	mk := func(dir, src string) *Engine {
		app, err := qdl.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{Dir: dir, Workers: 2, Resources: gatewayFiles, Transports: reg}, app)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	buyerDir, supDir := t.TempDir(), t.TempDir()
	buyer := mk(buyerDir, buyerApp)
	sup := mk(supDir, supplierApp)
	sup.Start()
	buyer.Start()
	defer buyer.Stop()

	send := func(id string) {
		if _, err := buyer.EnqueueXML("work",
			fmt.Sprintf(`<capacityRequest><requestID>%s</requestID><qty>5</qty></capacityRequest>`, id), nil); err != nil {
			t.Fatal(err)
		}
	}
	results := func() int {
		docs, _ := buyer.MessageStore().QueueDocs("results")
		return len(docs)
	}
	send("r1")
	waitFor(t, 10*time.Second, func() bool { return results() == 1 })

	if err := sup.Stop(); err != nil {
		t.Fatalf("supplier stop: %v", err)
	}
	sup = mk(supDir, supplierApp)
	sup.Start()
	defer sup.Stop()

	send("r2")
	waitFor(t, 10*time.Second, func() bool { return results() == 2 })
	// Exactly-once across the restart: each request answered once.
	docs, _ := buyer.MessageStore().QueueDocs("results")
	seen := map[string]bool{}
	for _, d := range docs {
		key := d.Root().FirstChildElement("requestID").StringValue()
		if seen[key] {
			t.Fatalf("duplicate result %s after supplier restart", key)
		}
		seen[key] = true
	}
}
