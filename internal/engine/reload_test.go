package engine

import (
	"testing"
	"time"

	"demaq/internal/qdl"
	"demaq/internal/xdm"
)

func TestReloadAddsRuleAtRuntime(t *testing.T) {
	e := newEngine(t, `
		create queue in kind basic mode persistent;
		create queue out kind basic mode persistent;
	`, nil)
	// No rules yet: messages just sit processed-but-ignored.
	e.EnqueueXML("in", `<m>first</m>`, nil)
	drain(t, e)
	if got := queueBodies(t, e, "out"); len(got) != 0 {
		t.Fatal("no rules should produce nothing")
	}
	// Evolve: add a rule and a new queue.
	app := qdl.MustParse(`
		create queue in kind basic mode persistent;
		create queue out kind basic mode persistent;
		create queue audit kind basic mode persistent;
		create rule fwd for in if (//m) then
		  (do enqueue <fwd/> into out, do enqueue <log/> into audit);
	`)
	if err := e.Reload(app); err != nil {
		t.Fatal(err)
	}
	e.EnqueueXML("in", `<m>second</m>`, nil)
	drain(t, e)
	if got := queueBodies(t, e, "out"); len(got) != 1 {
		t.Fatalf("new rule not active: %v", got)
	}
	if got := queueBodies(t, e, "audit"); len(got) != 1 {
		t.Fatalf("new queue not usable: %v", got)
	}
}

func TestReloadEvolutionGuards(t *testing.T) {
	e := newEngine(t, `
		create queue in kind basic mode persistent;
	`, nil)
	cases := []string{
		// remove a queue
		`create queue other kind basic mode persistent;`,
		// change mode
		`create queue in kind basic mode transient;`,
		// change kind
		`create queue in kind echo mode persistent;`,
		// add a gateway at runtime
		`create queue in kind basic mode persistent;
		 create queue gw kind outgoingGateway mode persistent interface x.wsdl;`,
	}
	for _, src := range cases {
		app, err := qdl.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if err := e.Reload(app); err == nil {
			t.Errorf("reload should have been rejected for %q", src)
		}
	}
}

func TestReloadRebuildSlicingState(t *testing.T) {
	e := newEngine(t, `
		create queue in kind basic mode persistent;
		create property k as xs:string fixed queue in value //k;
		create slicing byK on k;
	`, nil)
	e.EnqueueXML("in", `<m><k>a</k></m>`, nil)
	e.EnqueueXML("in", `<m><k>a</k></m>`, nil)
	drain(t, e)
	// Reload with a new rule over the existing slicing; memberships of
	// pre-existing messages must survive the rebuild.
	app := qdl.MustParse(`
		create queue in kind basic mode persistent;
		create queue joined kind basic mode persistent;
		create property k as xs:string fixed queue in value //k;
		create slicing byK on k;
		create rule pair for byK
		  if (count(qs:slice()) >= 3) then
		    do enqueue <trio>{qs:slicekey()}</trio> into joined;
	`)
	if err := e.Reload(app); err != nil {
		t.Fatal(err)
	}
	if n := len(e.Slices().SliceMembers("byK", "a")); n != 2 {
		t.Fatalf("memberships after reload: %d", n)
	}
	e.EnqueueXML("in", `<m><k>a</k></m>`, nil)
	drain(t, e)
	if got := queueBodies(t, e, "joined"); len(got) != 1 || got[0] != "trio" {
		t.Fatalf("slicing rule after reload: %v", got)
	}
}

func TestEchoTimersSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	app := `
		create queue echoQueue kind echo mode persistent;
		create queue target kind basic mode persistent;
	`
	e, err := New(Config{Dir: dir, Workers: 1}, qdl.MustParse(app))
	if err != nil {
		t.Fatal(err)
	}
	// Register a timer but crash before it fires (engine never started,
	// so the timer service is not running).
	_, err = e.EnqueueXML("echoQueue", `<wake/>`, map[string]xdm.Value{
		"timeout": xdm.NewInteger(30),
		"target":  xdm.NewString("target"),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.MessageStore().Crash()

	e2, err := New(Config{Dir: dir, Workers: 1}, qdl.MustParse(app))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Stop()
	e2.Start()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got := queueBodies(t, e2, "target"); len(got) == 1 && got[0] == "wake" {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("echo timer did not survive the restart")
}
