package engine

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"demaq/internal/qdl"
)

// TestSoakSustainedLoad is the sustained-load soak harness: 8 workers
// process a mixed workload (concurrent producers, rule-driven enqueues,
// retention GC, background fuzzy checkpoints) under a deliberately small
// WAL budget, so throttling, shedding and head advancement all engage. The
// run is time-bounded: a couple of seconds by default (the per-PR variant),
// or DEMAQ_SOAK (a Go duration, e.g. "10m") for the nightly job. It is
// meant to run under -race.
//
// Invariants checked while the load is on and afterwards:
//   - the engine never degrades and nothing panics;
//   - the live WAL stays within a small multiple of the hard budget —
//     sustained overload produces throttling and 429 shedding, never
//     unbounded log growth;
//   - checkpoints complete throughout the run;
//   - after a graceful shutdown the store verifies and reopens with zero
//     records to replay.
func TestSoakSustainedLoad(t *testing.T) {
	dur := 2 * time.Second
	if v := os.Getenv("DEMAQ_SOAK"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("DEMAQ_SOAK: %v", err)
		}
		dur = d
	} else if testing.Short() {
		dur = time.Second
	}

	app, err := qdl.Parse(`
		create queue in  kind basic mode persistent;
		create queue out kind basic mode persistent;
		create rule forward for in
		  if (//m) then do enqueue <done>{//m/text()}</done> into out;
	`)
	if err != nil {
		t.Fatal(err)
	}
	const (
		soft = int64(64 << 10)
		hard = int64(256 << 10)
	)
	dir := t.TempDir()
	e, err := New(Config{
		Dir:                dir,
		Workers:            8,
		Store:              budgetedOptions(soft, hard),
		GCInterval:         100 * time.Millisecond,
		CheckpointInterval: 100 * time.Millisecond,
	}, app)
	if err != nil {
		t.Fatal(err)
	}
	e.Start()

	deadline := time.Now().Add(dur)
	var produced, shed atomic.Uint64
	var fail atomic.Value
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			i := 0
			for time.Now().Before(deadline) {
				i++
				_, err := e.EnqueueXML("in", fmt.Sprintf("<m>p%d-%d</m>", p, i), nil)
				switch {
				case err == nil:
					produced.Add(1)
				case errors.Is(err, ErrOverloaded):
					// Backpressure working as intended: retry after a beat.
					shed.Add(1)
					time.Sleep(time.Millisecond)
				default:
					fail.Store(fmt.Errorf("producer %d: %w", p, err))
					return
				}
			}
		}(p)
	}

	// Monitor: the live WAL must stay within a small multiple of the hard
	// budget. Internal rule-driven enqueues bypass admission (only their
	// commits are throttled), so transient overshoot is expected — but not
	// unbounded growth.
	var peakLive uint64
	for time.Now().Before(deadline) {
		st := e.Stats()
		if st.WALLiveBytes > peakLive {
			peakLive = st.WALLiveBytes
		}
		if st.Degraded {
			t.Fatalf("engine degraded mid-soak: %s", st.StorageError)
		}
		if st.WALLiveBytes > uint64(4*hard) {
			t.Fatalf("live WAL grew unbounded under load: %d bytes (hard budget %d)", st.WALLiveBytes, hard)
		}
		time.Sleep(20 * time.Millisecond)
	}
	wg.Wait()
	if err, _ := fail.Load().(error); err != nil {
		t.Fatal(err)
	}

	checkpoints := e.Stats().Checkpoints
	drained, err := e.Shutdown(60 * time.Second)
	if err != nil {
		t.Fatalf("shutdown after soak: %v", err)
	}
	if !drained {
		t.Fatal("soak backlog did not drain within the shutdown budget")
	}
	if checkpoints == 0 {
		t.Fatal("no fuzzy checkpoint completed during the soak")
	}

	// Reopen: verify integrity, processed counts, and the clean-shutdown
	// zero-replay contract.
	e2, err := New(Config{Dir: dir, Workers: 1}, app)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Stop()
	st := e2.Stats()
	if st.RecoveryReplayed != 0 {
		t.Fatalf("clean shutdown after soak: reopened engine replayed %d records", st.RecoveryReplayed)
	}
	if err := e2.MessageStore().VerifyIntegrity(); err != nil {
		t.Fatalf("integrity after soak: %v", err)
	}
	// Retention GC ran throughout, so most results are already collected;
	// what remains must be free of duplicates (each admitted message was
	// processed at most once).
	outDocs, err := e2.MessageStore().QueueDocs("out")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range outDocs {
		key := d.StringValue()
		if seen[key] {
			t.Fatalf("duplicate result %q after soak", key)
		}
		seen[key] = true
	}
	t.Logf("soak %s: produced=%d shed=%d peak-live=%dKiB checkpoints=%d",
		dur, produced.Load(), shed.Load(), peakLive>>10, checkpoints)
}
