package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// The concurrent-commit stress application: persistent and transient
// queues, a rule fanning every input message out to both, so worker
// transactions (enqueue + mark-processed) commit concurrently with
// external Enqueue transactions.
const concurrentApp = `
create queue in kind basic mode persistent;
create queue flood kind basic mode transient;
create queue archive kind basic mode persistent;
create rule fanout for in
  if (//job) then (
    do enqueue <copy>{//job/text()}</copy> into flood,
    do enqueue <kept>{//job/text()}</kept> into archive
  );
`

// TestConcurrentEnqueueAndProcessing drives the full pipeline under -race:
// several producers enqueue while the worker pool processes, exercising
// the three-phase msgstore commit, the group-commit WAL path and the
// priority scheduler concurrently.
func TestConcurrentEnqueueAndProcessing(t *testing.T) {
	e := newEngine(t, concurrentApp, func(c *Config) { c.Workers = 8 })
	const producers, perProducer = 6, 40
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := e.EnqueueXML("in", fmt.Sprintf(`<job>%d-%d</job>`, p, i), nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	drain(t, e)

	const total = producers * perProducer
	for _, q := range []string{"flood", "archive"} {
		msgs, err := e.MessageStore().Messages(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != total {
			t.Fatalf("queue %s: %d messages, want %d", q, len(msgs), total)
		}
		for i := 1; i < len(msgs); i++ {
			if msgs[i-1].ID >= msgs[i].ID {
				t.Fatalf("queue %s out of ID order at %d", q, i)
			}
		}
	}
	in, _ := e.MessageStore().Messages("in")
	for _, m := range in {
		if !m.Processed {
			t.Fatalf("message %d not processed", m.ID)
		}
	}
	st := e.Stats()
	if st.Errors != 0 {
		t.Fatalf("unexpected errors: %+v", st)
	}
	if st.Processed < total {
		t.Fatalf("processed %d, want >= %d", st.Processed, total)
	}

	// The commit pipeline must have allowed fsync coalescing: with 8
	// workers and 6 producers the WAL cannot have synced once per commit.
	ps := e.MessageStore().PageStore().Stats()
	if ps.WALFsyncs > ps.Commits {
		t.Fatalf("fsyncs %d > commits %d", ps.WALFsyncs, ps.Commits)
	}
	if ps.WALCoalesced == 0 {
		t.Logf("warning: no coalesced commits observed (fsyncs=%d commits=%d)", ps.WALFsyncs, ps.Commits)
	}
}

// TestConcurrentProcessingSurvivesRestart crashes mid-stream and verifies
// exactly-once semantics across recovery with a concurrent workload.
func TestConcurrentProcessingSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	app := concurrentApp
	e := newEngineInDir(t, app, dir)
	const total = 60
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < total/3; i++ {
				if _, err := e.EnqueueXML("in", fmt.Sprintf(`<job>%d-%d</job>`, p, i), nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	drain(t, e)
	e.MessageStore().Crash()

	e2 := newEngineInDir(t, app, dir)
	if !e2.Drain(10 * time.Second) {
		t.Fatal("restarted engine did not drain")
	}
	arch, _ := e2.MessageStore().Messages("archive")
	if len(arch) != total {
		t.Fatalf("archive after restart: %d, want %d", len(arch), total)
	}
	in, _ := e2.MessageStore().Messages("in")
	if len(in) != total {
		t.Fatalf("in after restart: %d, want %d", len(in), total)
	}
	for _, m := range in {
		if !m.Processed {
			t.Fatalf("message %d lost its processed flag", m.ID)
		}
	}
}

func newEngineInDir(t *testing.T, src, dir string) *Engine {
	t.Helper()
	return newEngine(t, src, func(c *Config) {
		c.Dir = dir
		c.Workers = 8
	})
}
